// TPC-H example: runs a nested benchmark query (Q17 by default)
// incrementally and contrasts iOLAP against the HDA higher-order-delta
// baseline — the query class where uncertainty-aware delta updates pay off.
//
//	go run ./examples/tpch
//	go run ./examples/tpch -query Q18 -scale 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"iolap"
)

func main() {
	var (
		queryName = flag.String("query", "Q17", "TPC-H query (Q1,Q3,Q5,Q6,Q7,Q11,Q17,Q18,Q20,Q22)")
		scale     = flag.Int("scale", 10000, "lineorder rows")
		batches   = flag.Int("batches", 10, "mini-batches")
	)
	flag.Parse()

	session, queries := iolap.NewTPCHSession(*scale, 42)
	var query iolap.BenchQuery
	for _, q := range queries {
		if strings.EqualFold(q.Name, *queryName) {
			query = q
		}
	}
	if query.Name == "" {
		log.Fatalf("unknown query %q", *queryName)
	}
	fmt.Printf("TPC-H %s (streams %s, nested=%v):\n%s\n\n", query.Name, query.Stream, query.Nested, query.SQL)

	type runStats struct {
		totalMs    float64
		batchMs    []float64
		recomputed []int
	}
	run := func(mode iolap.Mode) runStats {
		cur, err := session.Query(query.SQL, &iolap.Options{
			Mode: mode, Batches: *batches, Trials: 50, Seed: 7, Stream: query.Stream,
		})
		if err != nil {
			log.Fatal(err)
		}
		var st runStats
		for cur.Next() {
			u := cur.Update()
			st.totalMs += u.DurationMillis
			st.batchMs = append(st.batchMs, u.DurationMillis)
			st.recomputed = append(st.recomputed, u.Recomputed)
		}
		if err := cur.Err(); err != nil {
			log.Fatal(err)
		}
		return st
	}

	io := run(iolap.ModeIOLAP)
	hda := run(iolap.ModeHDA)

	fmt.Printf("%-8s", "batch")
	for i := range io.batchMs {
		fmt.Printf("%8d", i+1)
	}
	fmt.Println()
	printRow := func(label string, xs []float64) {
		fmt.Printf("%-8s", label)
		for _, x := range xs {
			fmt.Printf("%8.2f", x)
		}
		fmt.Println()
	}
	printRow("iolap_ms", io.batchMs)
	printRow("hda_ms", hda.batchMs)
	fmt.Printf("%-8s", "recomp")
	for _, r := range io.recomputed {
		fmt.Printf("%8d", r)
	}
	fmt.Println()

	fmt.Printf("\ntotal: iOLAP %.1f ms, HDA %.1f ms (HDA/iOLAP = %.2fx)\n",
		io.totalMs, hda.totalMs, hda.totalMs/io.totalMs)
	if query.Nested {
		fmt.Println("nested query: expect the HDA/iOLAP ratio to grow with more batches/data,")
		fmt.Println("since HDA re-evaluates all previously seen data whenever the inner aggregate moves.")
	} else {
		fmt.Println("flat SPJA query: both engines reduce to classical delta rules; expect parity.")
	}
}
