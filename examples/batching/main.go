// Batching strategies: how the way mini-batches are drawn changes what the
// early answers look like. The paper's Section 2 offers block-wise
// randomness by default plus a pre-shuffle tool; this implementation adds
// proportional stratification (the paper's Section 9 future-work item).
//
// The demo streams a GROUP BY over data sorted by group — the worst case
// for contiguous batching — and shows per-strategy group coverage in the
// first batch, plus the per-operator statistics of the final plan.
//
//	go run ./examples/batching
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"iolap"
)

func main() {
	rows := make([][]interface{}, 0, 30000)
	rng := rand.New(rand.NewSource(2))
	regions := []string{"apac", "emea", "latam", "na"}
	for i := 0; i < 30000; i++ {
		r := regions[rng.Intn(len(regions))]
		rows = append(rows, []interface{}{r, 50 + rng.NormFloat64()*12})
	}
	// Adversarial layout: sorted by region, as a region-partitioned file
	// would be.
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i][0].(string) < rows[j][0].(string)
	})

	strategies := []struct {
		name string
		opts iolap.Options
	}{
		{"contiguous (default)", iolap.Options{}},
		{"block-wise (BlockRows=256)", iolap.Options{BlockRows: 256}},
		{"pre-shuffle", iolap.Options{PreShuffle: true}},
		{"stratified by region", iolap.Options{StratifyBy: "region"}},
	}

	fmt.Println("GROUP BY over region-sorted data; what does batch 1 (5%) see?")
	fmt.Println()
	for _, st := range strategies {
		s := iolap.NewSession()
		s.MustCreateTable("m", []iolap.Column{
			{Name: "region", Type: iolap.TString},
			{Name: "latency", Type: iolap.TFloat},
		}, iolap.Streamed)
		s.MustInsert("m", rows)
		opts := st.opts
		opts.Batches = 20
		opts.Trials = 60
		opts.Seed = 7
		cur, err := s.Query(
			"SELECT region, AVG(latency) AS avg_latency FROM m GROUP BY region",
			&opts)
		if err != nil {
			log.Fatal(err)
		}
		if !cur.Next() {
			log.Fatal(cur.Err())
		}
		u := cur.Update()
		fmt.Printf("%-28s batch 1 covers %d/4 regions:", st.name, len(u.Rows))
		for _, row := range u.Rows {
			fmt.Printf("  %s=%.1f±%.1f", row[0], row[1].(float64),
				u.Estimates[0][1].Stdev)
		}
		fmt.Println()
		// Drain so the cursor finishes cleanly.
		for cur.Next() {
		}
		if cur.Err() != nil {
			log.Fatal(cur.Err())
		}
	}

	fmt.Println()
	fmt.Println("Per-operator statistics of the stratified run's final batch")
	fmt.Println("(EXPLAIN ANALYZE-style; state = the delta-update memory):")
	s := iolap.NewSession()
	s.MustCreateTable("m", []iolap.Column{
		{Name: "region", Type: iolap.TString},
		{Name: "latency", Type: iolap.TFloat},
	}, iolap.Streamed)
	s.MustInsert("m", rows)
	cur, err := s.Query(`SELECT region, AVG(latency) AS a FROM m
		WHERE latency > (SELECT AVG(latency) FROM m) GROUP BY region`,
		&iolap.Options{Batches: 10, Trials: 60, Seed: 7, StratifyBy: "region"})
	if err != nil {
		log.Fatal(err)
	}
	for cur.Next() {
	}
	if cur.Err() != nil {
		log.Fatal(cur.Err())
	}
	for _, st := range cur.OpStats() {
		fmt.Printf("  [%-9s] news=%-6d unc=%-6d state=%dB\n",
			st.Kind, st.News, st.Unc, st.StateBytes)
	}
}
