// Conviva example: the accuracy/latency trade-off of Figure 7(a) on the
// video-quality workload, with early stopping — run C8 (a UDAF over the
// slow-buffering filter) and stop as soon as the bootstrap error estimate
// crosses the target, the way an interactive analyst would.
//
//	go run ./examples/conviva
//	go run ./examples/conviva -target 0.005 -scale 30000
package main

import (
	"flag"
	"fmt"
	"log"

	"iolap"
)

func main() {
	var (
		scale  = flag.Int("scale", 20000, "session rows")
		target = flag.Float64("target", 0.02, "stop when relative stdev falls below this")
	)
	flag.Parse()

	session, queries := iolap.NewConvivaSession(*scale, 11)
	var c8 iolap.BenchQuery
	for _, q := range queries {
		if q.Name == "C8" {
			c8 = q
		}
	}
	fmt.Printf("Conviva C8 (geometric mean of play time over slow-buffering sessions):\n%s\n\n", c8.SQL)

	cur, err := session.Query(c8.SQL, &iolap.Options{
		Batches: 40, Trials: 100, Seed: 3, Stream: c8.Stream,
	})
	if err != nil {
		log.Fatal(err)
	}
	var cumMs float64
	var stopped bool
	var answerAtStop float64
	var stopMs float64
	for cur.Next() {
		u := cur.Update()
		cumMs += u.DurationMillis
		rsd := u.MaxRelStdev()
		fmt.Printf("batch %2d  %5.1f%%  t=%8.2f ms  g_play=%8.2f  rel-stdev=%6.3f%%\n",
			u.Batch, 100*u.Fraction, cumMs, u.Rows[0][0].(float64), 100*rsd)
		if !stopped && rsd > 0 && rsd < *target {
			stopped = true
			answerAtStop = u.Rows[0][0].(float64)
			stopMs = cumMs
			fmt.Printf("          ^ error below %.1f%% — an interactive user stops HERE\n", 100**target)
			// Keep going to show the full curve and measure the speedup.
		}
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	if stopped {
		fmt.Printf("\nearly stop: %.2f after %.1f ms vs exact run %.1f ms — %.1fx faster\n",
			answerAtStop, stopMs, cumMs, cumMs/stopMs)
	}
}
