// SBI internals walkthrough: runs the paper's Example 1 on the exact
// Figure 2(b) data and narrates what the delta update algorithm does —
// the uncertainty annotations of Figure 3, the variation-range
// classification of Example 2, and the per-batch recomputation counts.
//
//	go run ./examples/sbi
package main

import (
	"fmt"
	"log"

	"iolap"
)

func main() {
	s := iolap.NewSession()
	s.MustCreateTable("sessions", []iolap.Column{
		{Name: "session_id", Type: iolap.TString},
		{Name: "buffer_time", Type: iolap.TFloat},
		{Name: "play_time", Type: iolap.TFloat},
	}, iolap.Streamed)

	// Figure 2(b): the six-tuple Sessions relation.
	s.MustInsert("sessions", [][]interface{}{
		{"id1", 36.0, 238.0},
		{"id2", 58.0, 135.0},
		{"id3", 17.0, 617.0},
		{"id4", 56.0, 194.0},
		{"id5", 19.0, 308.0},
		{"id6", 26.0, 319.0},
	})

	const sbi = `
		SELECT AVG(play_time) AS avg_play_time
		FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`

	cur, err := s.Query(sbi, &iolap.Options{
		Batches: 2, // ΔD1 = {t1,t2,t3}, ΔD2 = {t4,t5,t6} — the paper's split
		Trials:  100,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The Slow Buffering Impact query (paper Example 1):")
	fmt.Println(sbi)
	fmt.Println("\nCompiled online plan (paper Figure 2(a)):")
	fmt.Println(cur.Plan())
	fmt.Println(`How the delta update works (paper Sections 4-6):
 * The inner AVG(buffer_time) runs on incomplete data, so its output is an
   *uncertain attribute*; rows carry it as a lineage reference that always
   resolves to the latest aggregate value (lazy evaluation, §6).
 * The filter compares buffer_time against that uncertain value. Bootstrap
   replicates give a variation range R(u); rows whose buffer_time falls
   outside it (t2=58 high, t3=17 low in batch 1) are *near-deterministic* —
   decided once, never recomputed. Rows inside the range (t1=36) join the
   *non-deterministic set* and are the only ones re-evaluated per batch (§5).
 * The outer AVG folds near-deterministic rows into a sketch and recomputes
   only the non-deterministic contributions (§4.2).`)
	fmt.Println()
	for cur.Next() {
		u := cur.Update()
		val := "NaN (no qualifying sessions yet)"
		if len(u.Rows) > 0 {
			if f, ok := u.Rows[0][0].(float64); ok {
				val = fmt.Sprintf("%.2f", f)
			}
		}
		fmt.Printf("batch %d/%d: avg_play_time = %s   tuples recomputed this batch: %d\n",
			u.Batch, u.Batches, val, u.Recomputed)
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAfter batch 2 the answer is exact: AVG(play_time) over t1(238), t2(135),")
	fmt.Println("t4(194) — the sessions whose buffer_time exceeds the true average 35.33.")
}
