// Quickstart: the paper's running example (Example 1, "Slow Buffering
// Impact") on a small synthetic sessions table. The query asks how
// longer-than-average buffering impacts watch time — a nested aggregate
// query that classical delta processing cannot maintain incrementally.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"iolap"
)

func main() {
	s := iolap.NewSession()
	s.MustCreateTable("sessions", []iolap.Column{
		{Name: "session_id", Type: iolap.TString},
		{Name: "buffer_time", Type: iolap.TFloat},
		{Name: "play_time", Type: iolap.TFloat},
	}, iolap.Streamed)

	// Synthesise 50k sessions: heavy-tailed buffering, play time dropping
	// as buffering grows.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]interface{}, 50_000)
	for i := range rows {
		bt := 12 + rng.ExpFloat64()*20
		pt := 420 - 3*bt + rng.NormFloat64()*80
		if pt < 5 {
			pt = 5
		}
		rows[i] = []interface{}{fmt.Sprintf("id%06d", i), bt, pt}
	}
	s.MustInsert("sessions", rows)

	// The SBI query (paper Example 1).
	cur, err := s.Query(`
		SELECT AVG(play_time) AS avg_play_time
		FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
		&iolap.Options{Batches: 10, Trials: 100, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Slow Buffering Impact — average watch time of sessions that")
	fmt.Println("buffer longer than average, refined batch by batch:")
	fmt.Println()
	noted := false
	for cur.Next() {
		u := cur.Update()
		est := u.Estimates[0][0]
		fmt.Printf("batch %2d/%d  %5.1f%% of data  %8.2f ms  avg_play_time = %7.2f  (95%% CI [%.2f, %.2f], ±%.2f%%)\n",
			u.Batch, u.Batches, 100*u.Fraction, u.DurationMillis,
			u.Rows[0][0].(float64), est.CILo, est.CIHi, 100*est.RelStd)
		// A user happy with 1% relative error could stop here:
		if !noted && u.MaxRelStdev() < 0.01 && u.Fraction < 1 {
			noted = true
			fmt.Printf("        ^ already within 1%% after %.0f%% of the data — "+
				"an interactive user could stop now\n", 100*u.Fraction)
		}
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}

	// And the exact baseline for comparison.
	exact, err := s.Exec(`
		SELECT AVG(play_time) AS avg_play_time
		FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact batch answer: %.2f (the final incremental batch matches it exactly)\n",
		exact.Rows[0][0].(float64))
}
