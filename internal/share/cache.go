package share

import (
	"sync"
)

// Sized is implemented by shared values that can report their resident byte
// footprint. The cache uses it to account BytesSaved on hits and LiveBytes
// for live entries; values that do not implement it count as zero bytes.
type Sized interface {
	SharedBytes() int64
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits       int64 // Acquire calls satisfied by an existing entry
	Misses     int64 // Acquire calls that ran the build callback
	BytesSaved int64 // sum of SharedBytes() at each hit — state NOT rebuilt
	Evictions  int64 // entries removed when their refcount hit zero
	Live       int64 // entries currently held by at least one session
	LiveBytes  int64 // sum of SharedBytes() over live entries
	// PeakLiveBytes is the high-water LiveBytes mark over the cache's
	// lifetime — recorded at each acquisition, so it is deterministic even
	// when entries are evicted before an observer samples LiveBytes.
	PeakLiveBytes int64
}

// Cache is a refcounted shared-state cache keyed by plan fingerprints.
//
// Acquire either returns the existing value for a key (bumping its
// refcount) or runs the build callback exactly once — concurrent acquirers
// of the same key block until the first builder finishes, so a cohort
// opening N overlapping sessions builds the state once. Every successful
// Acquire returns a release func; when the last holder releases, the entry
// is evicted (refcount-gated eviction — state never outlives its sessions).
//
// The cache itself is only touched at session Open/Close; per-batch reads
// of the shared values are lock-free by construction (owners freeze or
// step the state under their own discipline, see internal/core).
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry

	hits       int64
	misses     int64
	bytesSaved int64
	evictions  int64
	peakLive   int64
}

type entry struct {
	key   string
	refs  int
	ready chan struct{} // closed when val/err are set
	val   any
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// Acquire returns the shared value for key, building it with build if no
// live entry exists. hit reports whether an existing entry was reused.
// On success release must be called exactly once when the holder is done
// with the value (calling it more than once is safe — extra calls are
// no-ops). If build fails the entry is removed, the error is returned to
// every waiter, and nothing needs releasing.
func (c *Cache) Acquire(key string, build func() (any, error)) (val any, release func(), hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.refs++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// Builder failed after we joined; drop our ref (the builder
			// already removed the entry from the map).
			return nil, nil, false, e.err
		}
		c.mu.Lock()
		c.hits++
		if s, ok := e.val.(Sized); ok {
			c.bytesSaved += s.SharedBytes()
		}
		c.notePeakLocked()
		c.mu.Unlock()
		return e.val, c.releaser(e), true, nil
	}
	e = &entry{key: key, refs: 1, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	// Build outside the cache lock: builds compile plans and replay scans,
	// and must not serialize unrelated keys behind each other.
	v, err := build()
	c.mu.Lock()
	if err != nil {
		delete(c.entries, key)
		e.err = err
		close(e.ready)
		c.mu.Unlock()
		return nil, nil, false, err
	}
	e.val = v
	close(e.ready)
	c.notePeakLocked()
	c.mu.Unlock()
	return v, c.releaser(e), false, nil
}

// releaser returns the once-guarded refcount decrement for e.
func (c *Cache) releaser(e *entry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			e.refs--
			if e.refs <= 0 {
				// Refcount-gated eviction: only remove if this entry is
				// still the one in the map (a failed build already
				// removed itself).
				if cur, ok := c.entries[e.key]; ok && cur == e {
					delete(c.entries, e.key)
					c.evictions++
				}
			}
			c.mu.Unlock()
		})
	}
}

// liveBytesLocked sums SharedBytes over ready live entries.
func (c *Cache) liveBytesLocked() int64 {
	var n int64
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				if s, ok := e.val.(Sized); ok {
					n += s.SharedBytes()
				}
			}
		default:
			// Still building: footprint unknown, count zero.
		}
	}
	return n
}

func (c *Cache) notePeakLocked() {
	if lb := c.liveBytesLocked(); lb > c.peakLive {
		c.peakLive = lb
	}
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		BytesSaved:    c.bytesSaved,
		Evictions:     c.evictions,
		Live:          int64(len(c.entries)),
		LiveBytes:     c.liveBytesLocked(),
		PeakLiveBytes: c.peakLive,
	}
}
