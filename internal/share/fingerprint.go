// Package share implements cross-session operator-state sharing for the
// serving engine: a canonical fingerprinter over plan subtrees and a
// refcounted cache keyed by those fingerprints.
//
// Sessions admitted to one serving engine ride the same mini-batch schedule,
// which makes every operator's state a deterministic function of its plan
// subtree (plus the execution parameters that shape randomness). Two
// sessions whose plans contain equivalent subtrees therefore build
// byte-identical state — the fingerprint is the equivalence key that lets
// them build it once.
//
// Canonicalization rules (what "equivalent" means):
//
//   - Alias names never matter: scans fingerprint by (table, streamed),
//     column references by index (the engine resolves names to positions at
//     plan time), projection output names are ignored.
//   - Commutative operators sort their operand fingerprints: AND, OR, =, <>,
//   - and * are order-normalized, and a > b rewrites to b < a (>= to <=)
//     so flipped comparisons collide. This is sound for state sharing
//     because the engine evaluates both operands of these nodes with no
//     side effects and IEEE addition/multiplication are commutative.
//   - Join key pairs sort by (left, right) index: the pair list order does
//     not change which rows join.
//   - IN lists sort their element fingerprints (membership is order-free).
//   - Union children do NOT sort: union emits left rows before right rows,
//     and downstream state is order-sensitive.
//   - Structure and table lineage are both part of the hash: the same
//     predicate over a different table never collides.
package share

import (
	"fmt"
	"sort"
	"strings"

	"iolap/internal/expr"
	"iolap/internal/plan"
)

// Fingerprint returns the canonical fingerprint of a plan subtree. The
// result is a readable S-expression string — equal strings mean the
// subtrees compute identical output (same rows, same order, same columns)
// over the same database and schedule. Callers scope cache keys further by
// appending the execution parameters that shape the state (seed, trials,
// mode, ...) when those matter for the shared state in question.
func Fingerprint(n plan.Node) string {
	var b strings.Builder
	fpNode(&b, n)
	return b.String()
}

func fpNode(b *strings.Builder, n plan.Node) {
	switch t := n.(type) {
	case *plan.Scan:
		// Alias ignored: σ(sessions s) and σ(sessions x) are one subtree.
		fmt.Fprintf(b, "scan(%q,stream=%v)", t.Table, t.Streamed)
	case *plan.Select:
		b.WriteString("sel(")
		b.WriteString(fpExpr(t.Pred))
		b.WriteByte(',')
		fpNode(b, t.Child)
		b.WriteByte(')')
	case *plan.Project:
		// Output names are display-only; the expressions define the state.
		b.WriteString("proj([")
		for i, e := range t.Exprs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(fpExpr(e))
		}
		b.WriteString("],")
		fpNode(b, t.Child)
		b.WriteByte(')')
	case *plan.Join:
		b.WriteString("join([")
		for i, p := range sortedKeyPairs(t.LKeys, t.RKeys) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%d:%d", p[0], p[1])
		}
		b.WriteString("],")
		fpNode(b, t.L)
		b.WriteByte(',')
		fpNode(b, t.R)
		b.WriteByte(')')
	case *plan.Union:
		// Bag union is commutative, but the operator emits L rows before R
		// rows and downstream state is order-sensitive — keep child order.
		b.WriteString("union(")
		fpNode(b, t.L)
		b.WriteByte(',')
		fpNode(b, t.R)
		b.WriteByte(')')
	case *plan.Aggregate:
		// GroupBy and Agg order fix the output column order — keep both.
		// Spec names are aliases and are dropped.
		b.WriteString("agg(by=[")
		for i, g := range t.GroupBy {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%d", g)
		}
		b.WriteString("],fns=[")
		for i, sp := range t.Aggs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(sp.Fn.Name)
			b.WriteByte('(')
			if sp.Arg != nil {
				b.WriteString(fpExpr(sp.Arg))
			}
			b.WriteByte(')')
		}
		b.WriteString("],")
		fpNode(b, t.Child)
		b.WriteByte(')')
	default:
		// Unknown node kinds still fingerprint deterministically, but only
		// collide with themselves (pointer-free Describe text).
		fmt.Fprintf(b, "node(%T:%s)", n, n.Describe())
	}
}

// sortedKeyPairs returns the join key pairs sorted by (left, right) index.
func sortedKeyPairs(l, r []int) [][2]int {
	pairs := make([][2]int, len(l))
	for i := range l {
		pairs[i] = [2]int{l[i], r[i]}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}

// fpExpr returns the canonical fingerprint of a scalar expression.
func fpExpr(e expr.Expr) string {
	switch t := e.(type) {
	case *expr.Col:
		// Index only: names carry aliases.
		return fmt.Sprintf("c%d", t.Idx)
	case *expr.Const:
		// Kind disambiguates 1 (int) from 1.0 (float) from '1'.
		return fmt.Sprintf("k%d:%s", t.V.Kind(), t.V.String())
	case *expr.Arith:
		l, r := fpExpr(t.L), fpExpr(t.R)
		if t.Op == expr.Add || t.Op == expr.Mul {
			if r < l {
				l, r = r, l
			}
		}
		return fmt.Sprintf("(%s%s%s)", l, t.Op, r)
	case *expr.Neg:
		return "(neg " + fpExpr(t.E) + ")"
	case *expr.Cmp:
		op, l, r := t.Op, fpExpr(t.L), fpExpr(t.R)
		// a > b ≡ b < a; a >= b ≡ b <= a.
		switch op {
		case expr.Gt:
			op, l, r = expr.Lt, r, l
		case expr.Ge:
			op, l, r = expr.Le, r, l
		}
		if (op == expr.Eq || op == expr.Ne) && r < l {
			l, r = r, l
		}
		return fmt.Sprintf("(%s%s%s)", l, op, r)
	case *expr.And:
		l, r := fpExpr(t.L), fpExpr(t.R)
		if r < l {
			l, r = r, l
		}
		return "(and " + l + " " + r + ")"
	case *expr.Or:
		l, r := fpExpr(t.L), fpExpr(t.R)
		if r < l {
			l, r = r, l
		}
		return "(or " + l + " " + r + ")"
	case *expr.Not:
		return "(not " + fpExpr(t.E) + ")"
	case *expr.Case:
		var b strings.Builder
		b.WriteString("(case")
		for _, w := range t.Whens {
			b.WriteString(" [")
			b.WriteString(fpExpr(w.Cond))
			b.WriteByte(' ')
			b.WriteString(fpExpr(w.Then))
			b.WriteByte(']')
		}
		if t.Else != nil {
			b.WriteString(" else ")
			b.WriteString(fpExpr(t.Else))
		}
		b.WriteByte(')')
		return b.String()
	case *expr.Func:
		// Scalar calls canonicalize by registered function name; argument
		// order is positional and kept.
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			args[i] = fpExpr(a)
		}
		return fmt.Sprintf("(fn %s %s)", t.F.Name, strings.Join(args, " "))
	case *expr.In:
		items := make([]string, len(t.List))
		for i, it := range t.List {
			items[i] = fpExpr(it)
		}
		sort.Strings(items)
		inv := ""
		if t.Inv {
			inv = "!"
		}
		return fmt.Sprintf("(%sin %s [%s])", inv, fpExpr(t.E), strings.Join(items, " "))
	default:
		// Unknown expression kinds fingerprint by their rendered text:
		// deterministic, no normalization.
		return fmt.Sprintf("expr(%T:%s)", e, e)
	}
}
