package share

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"iolap/internal/agg"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

func col(i int) *expr.Col           { return &expr.Col{Idx: i, Name: "c", Knd: rel.KFloat} }
func konst(v rel.Value) *expr.Const { return &expr.Const{V: v} }

func scan(table, alias string, streamed bool) *plan.Scan {
	return &plan.Scan{Table: table, Alias: alias, Streamed: streamed}
}

func TestFingerprintAliasInvariance(t *testing.T) {
	a := scan("sessions", "s", true)
	b := scan("sessions", "x", true)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("alias changed fingerprint: %q vs %q", Fingerprint(a), Fingerprint(b))
	}
	c := scan("other", "s", true)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatalf("different tables collided: %q", Fingerprint(a))
	}
	d := scan("sessions", "s", false)
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatalf("streamed flag ignored: %q", Fingerprint(a))
	}
}

func TestFingerprintCommutativeNormalization(t *testing.T) {
	base := scan("t", "", true)
	cases := []struct{ l, r expr.Expr }{
		{&expr.And{L: col(0), R: col(1)}, &expr.And{L: col(1), R: col(0)}},
		{&expr.Or{L: col(0), R: col(1)}, &expr.Or{L: col(1), R: col(0)}},
		{&expr.Cmp{Op: expr.Eq, L: col(0), R: col(1)}, &expr.Cmp{Op: expr.Eq, L: col(1), R: col(0)}},
		{&expr.Cmp{Op: expr.Ne, L: col(0), R: col(1)}, &expr.Cmp{Op: expr.Ne, L: col(1), R: col(0)}},
		// a > 5  ≡  5 < a
		{&expr.Cmp{Op: expr.Gt, L: col(0), R: konst(rel.Float(5))},
			&expr.Cmp{Op: expr.Lt, L: konst(rel.Float(5)), R: col(0)}},
		// a >= 5  ≡  5 <= a
		{&expr.Cmp{Op: expr.Ge, L: col(0), R: konst(rel.Float(5))},
			&expr.Cmp{Op: expr.Le, L: konst(rel.Float(5)), R: col(0)}},
		{&expr.Arith{Op: expr.Add, L: col(0), R: col(1)}, &expr.Arith{Op: expr.Add, L: col(1), R: col(0)}},
		{&expr.Arith{Op: expr.Mul, L: col(0), R: col(1)}, &expr.Arith{Op: expr.Mul, L: col(1), R: col(0)}},
		{&expr.In{E: col(0), List: []expr.Expr{konst(rel.Int(1)), konst(rel.Int(2))}},
			&expr.In{E: col(0), List: []expr.Expr{konst(rel.Int(2)), konst(rel.Int(1))}}},
	}
	for i, c := range cases {
		fl := Fingerprint(&plan.Select{Child: base, Pred: c.l})
		fr := Fingerprint(&plan.Select{Child: base, Pred: c.r})
		if fl != fr {
			t.Errorf("case %d: commutative forms did not collide:\n  %q\n  %q", i, fl, fr)
		}
	}
	// Non-commutative must NOT collide.
	sub := Fingerprint(&plan.Select{Child: base, Pred: &expr.Arith{Op: expr.Sub, L: col(0), R: col(1)}})
	bus := Fingerprint(&plan.Select{Child: base, Pred: &expr.Arith{Op: expr.Sub, L: col(1), R: col(0)}})
	if sub == bus {
		t.Fatalf("a-b collided with b-a: %q", sub)
	}
	lt := Fingerprint(&plan.Select{Child: base, Pred: &expr.Cmp{Op: expr.Lt, L: col(0), R: col(1)}})
	le := Fingerprint(&plan.Select{Child: base, Pred: &expr.Cmp{Op: expr.Le, L: col(0), R: col(1)}})
	if lt == le {
		t.Fatalf("< collided with <=: %q", lt)
	}
}

func TestFingerprintConstKinds(t *testing.T) {
	base := scan("t", "", true)
	fi := Fingerprint(&plan.Select{Child: base, Pred: &expr.Cmp{Op: expr.Eq, L: col(0), R: konst(rel.Int(1))}})
	ff := Fingerprint(&plan.Select{Child: base, Pred: &expr.Cmp{Op: expr.Eq, L: col(0), R: konst(rel.Float(1))}})
	if fi == ff {
		t.Fatalf("int and float constants collided: %q", fi)
	}
}

func TestFingerprintJoinKeyPairOrder(t *testing.T) {
	l, r := scan("fact", "f", true), scan("dim", "d", false)
	a := Fingerprint(&plan.Join{L: l, R: r, LKeys: []int{0, 2}, RKeys: []int{1, 0}})
	b := Fingerprint(&plan.Join{L: l, R: r, LKeys: []int{2, 0}, RKeys: []int{0, 1}})
	if a != b {
		t.Fatalf("join key pair order changed fingerprint:\n  %q\n  %q", a, b)
	}
	// Different pairing must not collide.
	c := Fingerprint(&plan.Join{L: l, R: r, LKeys: []int{0, 2}, RKeys: []int{0, 1}})
	if a == c {
		t.Fatalf("different key pairings collided: %q", a)
	}
	// Swapped join sides must not collide (schema order differs).
	d := Fingerprint(&plan.Join{L: r, R: l, LKeys: []int{1, 0}, RKeys: []int{0, 2}})
	if a == d {
		t.Fatalf("swapped join sides collided: %q", a)
	}
}

func TestFingerprintUnionOrderSensitive(t *testing.T) {
	l, r := scan("a", "", true), scan("b", "", true)
	if Fingerprint(&plan.Union{L: l, R: r}) == Fingerprint(&plan.Union{L: r, R: l}) {
		t.Fatal("union children sorted — emission order is load-bearing")
	}
}

func TestFingerprintAggregate(t *testing.T) {
	reg := agg.NewRegistry()
	avgFn, _ := reg.Lookup("AVG")
	sumFn, _ := reg.Lookup("SUM")
	child := scan("t", "", true)
	a := &plan.Aggregate{Child: child, GroupBy: []int{1},
		Aggs: []plan.AggSpec{{Fn: avgFn, Arg: col(0), Name: "x"}}}
	b := &plan.Aggregate{Child: child, GroupBy: []int{1},
		Aggs: []plan.AggSpec{{Fn: avgFn, Arg: col(0), Name: "totally_different"}}}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("output alias changed aggregate fingerprint")
	}
	c := &plan.Aggregate{Child: child, GroupBy: []int{1},
		Aggs: []plan.AggSpec{{Fn: sumFn, Arg: col(0), Name: "x"}}}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("AVG and SUM collided")
	}
	d := &plan.Aggregate{Child: child, GroupBy: []int{2},
		Aggs: []plan.AggSpec{{Fn: avgFn, Arg: col(0), Name: "x"}}}
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatal("different group-by collided")
	}
}

// ---------------------------------------------------------------------------
// Cache

type sizedVal struct{ n int64 }

func (s *sizedVal) SharedBytes() int64 { return s.n }

func TestCacheBuildOnce(t *testing.T) {
	c := NewCache()
	var builds int32
	build := func() (any, error) {
		atomic.AddInt32(&builds, 1)
		return &sizedVal{n: 100}, nil
	}
	v1, rel1, hit1, err := c.Acquire("k", build)
	if err != nil || hit1 {
		t.Fatalf("first acquire: hit=%v err=%v", hit1, err)
	}
	v2, rel2, hit2, err := c.Acquire("k", build)
	if err != nil || !hit2 {
		t.Fatalf("second acquire: hit=%v err=%v", hit2, err)
	}
	if v1 != v2 {
		t.Fatal("hit returned a different value")
	}
	if n := atomic.LoadInt32(&builds); n != 1 {
		t.Fatalf("build ran %d times", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesSaved != 100 || st.Live != 1 || st.LiveBytes != 100 {
		t.Fatalf("stats: %+v", st)
	}
	rel1()
	rel1() // double release is a no-op
	if st := c.Stats(); st.Live != 1 {
		t.Fatalf("entry evicted while still held: %+v", st)
	}
	rel2()
	st = c.Stats()
	if st.Live != 0 || st.LiveBytes != 0 || st.Evictions != 1 {
		t.Fatalf("after full release: %+v", st)
	}
	// Re-acquire after eviction rebuilds.
	_, rel3, hit3, err := c.Acquire("k", build)
	if err != nil || hit3 {
		t.Fatalf("post-eviction acquire: hit=%v err=%v", hit3, err)
	}
	if n := atomic.LoadInt32(&builds); n != 2 {
		t.Fatalf("build ran %d times after eviction", n)
	}
	rel3()
}

func TestCacheConcurrentAcquireBuildsOnce(t *testing.T) {
	c := NewCache()
	var builds int32
	const goroutines = 32
	var wg sync.WaitGroup
	rels := make([]func(), goroutines)
	vals := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, release, _, err := c.Acquire("k", func() (any, error) {
				atomic.AddInt32(&builds, 1)
				return &sizedVal{n: 8}, nil
			})
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			vals[i], rels[i] = v, release
		}(i)
	}
	wg.Wait()
	if n := atomic.LoadInt32(&builds); n != 1 {
		t.Fatalf("build ran %d times under contention", n)
	}
	for i := 1; i < goroutines; i++ {
		if vals[i] != vals[0] {
			t.Fatal("holders saw different values")
		}
	}
	for _, r := range rels {
		if r != nil {
			r()
		}
	}
	if st := c.Stats(); st.Live != 0 || st.LiveBytes != 0 {
		t.Fatalf("leak after concurrent release: %+v", st)
	}
}

func TestCacheBuildErrorPropagates(t *testing.T) {
	c := NewCache()
	boom := errors.New("boom")
	_, _, _, err := c.Acquire("k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Entry must be gone: next acquire rebuilds and can succeed.
	v, release, hit, err := c.Acquire("k", func() (any, error) { return &sizedVal{n: 1}, nil })
	if err != nil || hit || v == nil {
		t.Fatalf("acquire after failed build: hit=%v err=%v", hit, err)
	}
	release()
	if st := c.Stats(); st.Live != 0 {
		t.Fatalf("leak: %+v", st)
	}
}

func TestCacheKillCyclesNoLeak(t *testing.T) {
	c := NewCache()
	for cycle := 0; cycle < 100; cycle++ {
		// Two holders join, both "die" (release) in arbitrary order.
		_, r1, _, err := c.Acquire("k", func() (any, error) { return &sizedVal{n: 1 << 20}, nil })
		if err != nil {
			t.Fatal(err)
		}
		_, r2, hit, err := c.Acquire("k", func() (any, error) { return &sizedVal{n: 1 << 20}, nil })
		if err != nil || !hit {
			t.Fatalf("cycle %d: hit=%v err=%v", cycle, hit, err)
		}
		if cycle%2 == 0 {
			r1()
			r2()
		} else {
			r2()
			r1()
		}
	}
	st := c.Stats()
	if st.Live != 0 || st.LiveBytes != 0 {
		t.Fatalf("shared bytes leaked after 100 kill cycles: %+v", st)
	}
	if st.Evictions != 100 {
		t.Fatalf("evictions = %d, want 100", st.Evictions)
	}
}
