package bootstrap

import "testing"

// TestWeightsIntoZeroAllocs pins the per-tuple weight generation at zero
// allocations: the scan hands WeightsInto a slab-backed destination and
// must get the same weights Weights would return, heap-free.
func TestWeightsIntoZeroAllocs(t *testing.T) {
	const trials = 100
	src := NewPoissonSource(42, trials)
	dst := make([]float64, trials)
	var idx uint64
	if got := testing.AllocsPerRun(200, func() {
		src.WeightsInto(idx, dst)
		idx++
	}); got != 0 {
		t.Errorf("WeightsInto allocates %v per call, want 0", got)
	}
	// Same stream as the allocating form.
	want := src.Weights(7)
	got := src.WeightsInto(7, dst)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("WeightsInto(7)[%d] = %v, Weights(7)[%d] = %v", i, got[i], i, want[i])
		}
	}
}

// TestSummarizeIntoZeroAllocsSteadyState: after the scratch has grown to
// the replicate count once, repeated summaries reuse it allocation-free
// apart from nothing at all.
func TestSummarizeIntoZeroAllocs(t *testing.T) {
	reps := make([]float64, 100)
	for i := range reps {
		reps[i] = float64(i%17) * 1.5
	}
	_, scratch := SummarizeInto(10, reps, nil) // warm the scratch
	if got := testing.AllocsPerRun(200, func() {
		_, scratch = SummarizeInto(10, reps, scratch)
	}); got != 0 {
		t.Errorf("SummarizeInto with warm scratch allocates %v per call, want 0", got)
	}
	e, _ := SummarizeInto(10, reps, scratch)
	if want := Summarize(10, reps); e != want {
		t.Errorf("SummarizeInto = %+v, Summarize = %+v", e, want)
	}
}
