// Package bootstrap implements the poissonized bootstrap error estimation
// iOLAP piggybacks on query execution (Section 2 and Appendix C), and the
// variation-range machinery (Section 5.1) that turns replicate spreads into
// the non-deterministic / near-deterministic dichotomy.
//
// Each streamed tuple is assigned a vector of B i.i.d. Poisson(1) weights;
// every aggregate maintains B weighted replicate accumulators alongside the
// running value, so each replicate simulates one bootstrap trial (resampling
// |D_i| tuples with replacement from D_i).
package bootstrap

import (
	"math"
	"sort"
)

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// a small, fast, well-distributed PRNG used to derive per-tuple weight
// vectors deterministically from (seed, tupleIndex, trial).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniform maps a 64-bit state to (0,1).
func uniform(x uint64) float64 {
	u := splitmix64(x)
	return (float64(u>>11) + 0.5) / (1 << 53)
}

// PoissonSource derives deterministic Poisson(1) weight vectors. The same
// (seed, index) always yields the same vector, which keeps every engine mode
// and the failure-recovery replay bit-for-bit reproducible.
type PoissonSource struct {
	seed   uint64
	trials int
}

// NewPoissonSource returns a source producing vectors of the given number of
// bootstrap trials.
func NewPoissonSource(seed uint64, trials int) *PoissonSource {
	if trials <= 0 {
		panic("bootstrap: trials must be positive")
	}
	return &PoissonSource{seed: seed, trials: trials}
}

// Trials returns the replicate count B.
func (p *PoissonSource) Trials() int { return p.trials }

// Weights returns the Poisson(1) weight vector for the tuple with the given
// global index. The returned slice is freshly allocated. Each tuple gets an
// independent SplitMix64 stream seeded from (seed, index); draws within the
// vector advance the stream sequentially, which keeps the generator
// deterministic while costing one mix per uniform.
func (p *PoissonSource) Weights(index uint64) []float64 {
	return p.WeightsInto(index, make([]float64, p.trials))
}

// WeightsInto fills dst (which must have length Trials) with the weight
// vector for the given tuple index and returns it — the allocation-free form
// of Weights for callers that own scratch.
func (p *PoissonSource) WeightsInto(index uint64, dst []float64) []float64 {
	if len(dst) != p.trials {
		panic("bootstrap: WeightsInto dst length != trials")
	}
	state := splitmix64(p.seed ^ index*0x9e3779b97f4a7c15)
	for b := range dst {
		dst[b] = float64(poisson1(&state))
	}
	return dst
}

// poisson1 draws one Poisson(1) variate via Knuth's method, advancing the
// stream state. With lambda=1, e^-1 ~= 0.3679 and the loop runs ~2
// iterations in expectation.
func poisson1(state *uint64) int {
	const expNeg1 = 0.36787944117144233
	k := 0
	prod := 1.0
	for {
		*state += 0x9e3779b97f4a7c15
		z := *state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		prod *= (float64(z>>11) + 0.5) / (1 << 53)
		if prod <= expNeg1 {
			return k
		}
		k++
		if k > 64 { // numerically impossible tail guard
			return k
		}
	}
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stdev returns the sample standard deviation of xs (0 for <2 points).
func Stdev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the extrema of xs; it panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("bootstrap: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0<=q<=1) of xs by linear interpolation on
// a sorted copy; it panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("bootstrap: Quantile of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted interpolates a quantile over pre-sorted data.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Estimate summarises one uncertain value's bootstrap distribution.
type Estimate struct {
	Value  float64 // running value on D_i
	Stdev  float64 // bootstrap standard deviation
	CILo   float64 // 95% percentile confidence interval
	CIHi   float64
	RelStd float64 // relative standard deviation |stdev/value|
}

// Summarize computes an Estimate from the running value and its replicate
// outputs (one sort shared by both confidence bounds).
func Summarize(value float64, reps []float64) Estimate {
	e, _ := SummarizeInto(value, reps, nil)
	return e
}

// SummarizeInto is Summarize with a caller-owned sort buffer: reps is copied
// into scratch (grown as needed) and sorted there, so a caller summarising
// many groups pays one buffer for all of them instead of one sort-copy per
// call. The (possibly grown) scratch is returned for reuse; reps itself is
// never reordered.
func SummarizeInto(value float64, reps []float64, scratch []float64) (Estimate, []float64) {
	e := Estimate{Value: value}
	if len(reps) == 0 {
		return e, scratch
	}
	e.Stdev = Stdev(reps)
	if cap(scratch) < len(reps) {
		scratch = make([]float64, len(reps))
	}
	sorted := scratch[:len(reps)]
	copy(sorted, reps)
	sort.Float64s(sorted)
	e.CILo = quantileSorted(sorted, 0.025)
	e.CIHi = quantileSorted(sorted, 0.975)
	if value != 0 {
		e.RelStd = math.Abs(e.Stdev / value)
	} else {
		e.RelStd = e.Stdev
	}
	return e, scratch
}
