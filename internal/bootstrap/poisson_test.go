package bootstrap

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonSourceDeterministic(t *testing.T) {
	a := NewPoissonSource(42, 50)
	b := NewPoissonSource(42, 50)
	for i := uint64(0); i < 100; i++ {
		wa, wb := a.Weights(i), b.Weights(i)
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("weights not deterministic at tuple %d trial %d", i, j)
			}
		}
	}
}

func TestPoissonSourceSeedSensitivity(t *testing.T) {
	a := NewPoissonSource(1, 100)
	b := NewPoissonSource(2, 100)
	same := 0
	for i := uint64(0); i < 50; i++ {
		wa, wb := a.Weights(i), b.Weights(i)
		for j := range wa {
			if wa[j] == wb[j] {
				same++
			}
		}
	}
	// Poisson(1) collides often by chance; but identical across the board
	// would mean the seed is ignored.
	if same == 50*100 {
		t.Error("different seeds produced identical weight streams")
	}
}

func TestPoissonMoments(t *testing.T) {
	src := NewPoissonSource(7, 1)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		w := src.Weights(uint64(i))[0]
		if w < 0 || w != math.Trunc(w) {
			t.Fatalf("weight %v is not a non-negative integer", w)
		}
		sum += w
		sumSq += w * w
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("Poisson(1) mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("Poisson(1) variance = %v, want ~1", variance)
	}
}

func TestPoissonTrialsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive trials")
		}
	}()
	NewPoissonSource(1, 0)
}

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if m := Mean(xs); m != 3 {
		t.Errorf("Mean = %v", m)
	}
	if sd := Stdev(xs); math.Abs(sd-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Stdev = %v", sd)
	}
	lo, hi := MinMax(xs)
	if lo != 1 || hi != 5 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile([]float64{1, 2}, 0.5); q != 1.5 {
		t.Errorf("interpolated median = %v", q)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if Stdev([]float64{7}) != 0 {
		t.Error("Stdev of singleton should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile must not reorder its input")
	}
}

func TestSummarize(t *testing.T) {
	e := Summarize(10, []float64{9, 10, 11})
	if e.Value != 10 {
		t.Errorf("Value = %v", e.Value)
	}
	if e.Stdev != 1 {
		t.Errorf("Stdev = %v", e.Stdev)
	}
	if e.RelStd != 0.1 {
		t.Errorf("RelStd = %v", e.RelStd)
	}
	if e.CILo > e.CIHi {
		t.Error("CI bounds inverted")
	}
	zero := Summarize(0, []float64{-1, 0, 1})
	if zero.RelStd != zero.Stdev {
		t.Error("RelStd at zero value should fall back to stdev")
	}
	empty := Summarize(5, nil)
	if empty.Stdev != 0 || empty.Value != 5 {
		t.Error("Summarize with no reps should be a point estimate")
	}
}

func TestIntervalArithmetic(t *testing.T) {
	a := Interval{1, 2}
	b := Interval{3, 5}
	if got := a.Add(b); got != (Interval{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Interval{-4, -1}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != (Interval{3, 10}) {
		t.Errorf("Mul = %v", got)
	}
	neg := Interval{-2, 3}
	if got := neg.Mul(neg); got != (Interval{-6, 9}) {
		t.Errorf("Mul crossing zero = %v", got)
	}
	if got := a.Div(Interval{2, 4}); got != (Interval{0.25, 1}) {
		t.Errorf("Div = %v", got)
	}
	full := a.Div(Interval{-1, 1})
	if !math.IsInf(full.Lo, -1) || !math.IsInf(full.Hi, 1) {
		t.Errorf("Div by zero-straddling should be Full, got %v", full)
	}
	if got := a.Neg(); got != (Interval{-2, -1}) {
		t.Errorf("Neg = %v", got)
	}
}

func TestIntervalPredicates(t *testing.T) {
	a := Interval{1, 3}
	if !a.Intersects(Interval{3, 5}) {
		t.Error("touching intervals intersect")
	}
	if a.Intersects(Interval{3.1, 5}) {
		t.Error("disjoint intervals must not intersect")
	}
	if !a.Contains(2) || a.Contains(0.5) {
		t.Error("Contains wrong")
	}
	if !a.ContainsInterval(Interval{1.5, 2}) || a.ContainsInterval(Interval{0, 2}) {
		t.Error("ContainsInterval wrong")
	}
	if !Point(4).IsPoint() {
		t.Error("Point should be a point")
	}
	got := a.Intersect(Interval{2, 9})
	if got != (Interval{2, 3}) {
		t.Errorf("Intersect = %v", got)
	}
	empty := a.Intersect(Interval{7, 9})
	if !empty.IsPoint() {
		t.Errorf("empty intersection should collapse: %v", empty)
	}
}

// Property: interval arithmetic is sound — for values inside the operand
// intervals, the result of the scalar op lies inside the result interval.
func TestIntervalSoundnessProperty(t *testing.T) {
	clamp := func(x float64) float64 { return math.Mod(math.Abs(x), 50) }
	f := func(aLo, aW, bLo, bW, fa, fb float64) bool {
		a := Interval{clamp(aLo) - 25, clamp(aLo) - 25 + clamp(aW)}
		b := Interval{clamp(bLo) - 25, clamp(bLo) - 25 + clamp(bW)}
		// pick points inside via fractions in [0,1]
		pa := a.Lo + math.Mod(math.Abs(fa), 1)*(a.Hi-a.Lo)
		pb := b.Lo + math.Mod(math.Abs(fb), 1)*(b.Hi-b.Lo)
		const eps = 1e-9
		in := func(iv Interval, x float64) bool {
			return iv.Lo-eps <= x && x <= iv.Hi+eps
		}
		if !in(a.Add(b), pa+pb) || !in(a.Sub(b), pa-pb) || !in(a.Mul(b), pa*pb) {
			return false
		}
		if pb != 0 {
			if !in(a.Div(b), pa/pb) {
				return false
			}
		}
		return in(a.Neg(), -pa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRangeObserveNarrowsMonotonically(t *testing.T) {
	r := NewRange(2)
	ok, _ := r.Observe(1, 10, []float64{9, 11})
	if !ok {
		t.Fatal("first observation must succeed")
	}
	first := r.Current()
	ok, _ = r.Observe(2, 10, []float64{9.5, 10.5})
	if !ok {
		t.Fatal("contained observation must succeed")
	}
	second := r.Current()
	if !first.ContainsInterval(second) {
		t.Errorf("ranges must narrow: %v then %v", first, second)
	}
}

func TestRangeFailureDetection(t *testing.T) {
	r := NewRange(0.5)
	r.Observe(1, 10, []float64{9.9, 10.1})
	ok, j := r.Observe(2, 100, []float64{99, 101})
	if ok {
		t.Fatal("escaping observation must fail the integrity check")
	}
	if j != -1 {
		t.Errorf("nothing contains the new envelope, recoverTo = %d, want -1", j)
	}
	// After recovery re-seed, the new range covers the new value.
	if !r.Current().Contains(100) {
		t.Error("post-failure range must be re-seeded")
	}
}

func TestRangeFailureRecoversToAncestor(t *testing.T) {
	r := NewRange(1)
	r.Observe(1, 10, []float64{0, 30}) // wide range, batch 1
	r.Observe(2, 10, []float64{9, 11}) // narrow, batch 2
	ok, j := r.Observe(3, 25, []float64{24, 26})
	if ok {
		t.Fatal("escape from narrow range must fail")
	}
	if j != 1 {
		t.Errorf("recoverTo = %d, want batch 1 (the wide ancestor contains 25)", j)
	}
	if r.Batches() != 2 {
		t.Errorf("history should be truncated to ancestor+new, got %d", r.Batches())
	}
}

func TestRangeSnapshotIsolated(t *testing.T) {
	r := NewRange(2)
	r.Observe(1, 10, []float64{9, 11})
	snap := r.Snapshot()
	r.Observe(2, 10, []float64{9.9, 10.1})
	if snap.Batches() != 1 {
		t.Error("snapshot must be isolated from later observations")
	}
	if snap.Slack() != 2 {
		t.Error("snapshot must preserve slack")
	}
}

func TestRangeZeroSlackTightest(t *testing.T) {
	r := NewRange(0)
	r.Observe(1, 10, []float64{8, 12})
	cur := r.Current()
	if cur.Lo != 8 || cur.Hi != 12 {
		t.Errorf("zero slack should yield the tight envelope, got %v", cur)
	}
}

func TestRangeCurrentBeforeObserve(t *testing.T) {
	r := NewRange(2)
	cur := r.Current()
	if !math.IsInf(cur.Lo, -1) || !math.IsInf(cur.Hi, 1) {
		t.Errorf("pre-observation range should be Full, got %v", cur)
	}
}
