package bootstrap

import (
	"fmt"
	"math"
)

// Interval is a closed real interval. It is the representation of a
// variation range R(u) (Section 5.1) and the carrier of interval arithmetic
// used to classify predicate decisions as deterministic or not.
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval {x} — the variation range of a
// deterministic value.
func Point(x float64) Interval { return Interval{Lo: x, Hi: x} }

// Full returns the interval covering all reals; used when nothing is known.
func Full() Interval { return Interval{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// IsPoint reports whether the interval is a single value.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// Contains reports whether x lies within the interval.
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// ContainsInterval reports whether o is a subset of iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	return iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// Intersects reports whether the two intervals overlap. Per Section 5.1 a
// predicate x θ y is non-deterministic iff R(x) ∩ R(y) ≠ ∅ (for equality-like
// θ; ordering comparisons additionally resolve when disjoint).
func (iv Interval) Intersects(o Interval) bool {
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// Intersect returns the intersection; empty intersections collapse to the
// boundary point to keep downstream arithmetic finite.
func (iv Interval) Intersect(o Interval) Interval {
	lo := math.Max(iv.Lo, o.Lo)
	hi := math.Min(iv.Hi, o.Hi)
	if lo > hi {
		return Interval{Lo: lo, Hi: lo}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	return Interval{Lo: iv.Lo + o.Lo, Hi: iv.Hi + o.Hi}
}

// Sub returns the interval difference.
func (iv Interval) Sub(o Interval) Interval {
	return Interval{Lo: iv.Lo - o.Hi, Hi: iv.Hi - o.Lo}
}

// Mul returns the interval product.
func (iv Interval) Mul(o Interval) Interval {
	a, b := iv.Lo*o.Lo, iv.Lo*o.Hi
	c, d := iv.Hi*o.Lo, iv.Hi*o.Hi
	return Interval{
		Lo: math.Min(math.Min(a, b), math.Min(c, d)),
		Hi: math.Max(math.Max(a, b), math.Max(c, d)),
	}
}

// Div returns the interval quotient; denominators straddling zero widen to
// the full line (conservative, keeps classification sound).
func (iv Interval) Div(o Interval) Interval {
	if o.Contains(0) {
		return Full()
	}
	inv := Interval{Lo: 1 / o.Hi, Hi: 1 / o.Lo}
	return iv.Mul(inv)
}

// Neg returns the negated interval.
func (iv Interval) Neg() Interval { return Interval{Lo: -iv.Hi, Hi: -iv.Lo} }

func (iv Interval) String() string {
	return fmt.Sprintf("[%.6g, %.6g]", iv.Lo, iv.Hi)
}

// Range tracks the variation range R(u) of one uncertain value across
// batches (Section 5.1):
//
//   - R(u) is approximated per batch as
//     [min(û) − ε·stdev(û), max(û) + ε·stdev(û)] intersected with the
//     previous range, where û are the bootstrap outputs and ε the slack;
//   - a history of per-batch ranges supports the integrity check: at batch
//     i+1 the new replicate envelope must lie inside R(u_i), otherwise a
//     failure is reported together with the last batch j whose recorded
//     range still contains the new envelope (recovery replays from j+1).
type Range struct {
	slack   float64
	history []Interval // history[k] = R(u) as of the (k+1)-th observation
	labels  []int      // labels[k] = caller-provided batch number of observation k
}

// NewRange creates a tracker with the given slack parameter ε.
func NewRange(slack float64) *Range {
	return &Range{slack: slack}
}

// Slack returns ε.
func (r *Range) Slack() float64 { return r.slack }

// Batches returns how many observations have been recorded.
func (r *Range) Batches() int { return len(r.history) }

// Current returns the latest range; Full() before any observation.
func (r *Range) Current() Interval {
	if len(r.history) == 0 {
		return Full()
	}
	return r.history[len(r.history)-1]
}

// At returns the recorded range after observation k (0-based).
func (r *Range) At(k int) Interval { return r.history[k] }

// envelope builds [min−ε·σ, max+ε·σ] over the running value and replicates.
func (r *Range) envelope(value float64, reps []float64) Interval {
	lo, hi := value, value
	if len(reps) > 0 {
		rlo, rhi := MinMax(reps)
		lo = math.Min(lo, rlo)
		hi = math.Max(hi, rhi)
		sd := Stdev(reps)
		lo -= r.slack * sd
		hi += r.slack * sd
	}
	return Interval{Lo: lo, Hi: hi}
}

// Observe records the batch-labelled estimate of the uncertain value. It
// returns ok=false when the integrity check fails, i.e. the new replicate
// envelope escapes the current range; recoverTo is then the label of the
// last observation j whose recorded range still contains the new envelope,
// or -1 when none does (recover from scratch). On failure the history is
// truncated to observation j and re-seeded with the new envelope so
// processing can resume after the controller replays from batch j+1.
func (r *Range) Observe(batch int, value float64, reps []float64) (ok bool, recoverTo int) {
	env := r.envelope(value, reps)
	if len(r.history) == 0 {
		r.history = append(r.history, env)
		r.labels = append(r.labels, batch)
		return true, batch
	}
	cur := r.Current()
	// Integrity: [min(û), max(û)] (without slack) must stay inside R(u_i).
	tight := Interval{Lo: value, Hi: value}
	if len(reps) > 0 {
		lo, hi := MinMax(reps)
		tight.Lo = math.Min(tight.Lo, lo)
		tight.Hi = math.Max(tight.Hi, hi)
	}
	if cur.ContainsInterval(tight) {
		r.history = append(r.history, env.Intersect(cur))
		r.labels = append(r.labels, batch)
		return true, batch
	}
	// Failure: find the last observation whose range still contains the
	// new envelope.
	j := -1
	for k := len(r.history) - 1; k >= 0; k-- {
		if r.history[k].ContainsInterval(env) {
			j = k
			break
		}
	}
	if j >= 0 {
		label := r.labels[j]
		r.history = append(r.history[:j+1], env.Intersect(r.history[j]))
		r.labels = append(r.labels[:j+1], batch)
		return false, label
	}
	r.history = append(r.history[:0], env)
	r.labels = append(r.labels[:0], batch)
	return false, -1
}

// Snapshot returns a deep copy used by the controller's per-batch state
// snapshots (failure recovery replays restore these).
func (r *Range) Snapshot() *Range {
	h := make([]Interval, len(r.history))
	copy(h, r.history)
	l := make([]int, len(r.labels))
	copy(l, r.labels)
	return &Range{slack: r.slack, history: h, labels: l}
}
