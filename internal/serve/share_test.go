package serve

import (
	"errors"
	"sync"
	"testing"

	"iolap/internal/agg"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/rel"
	"iolap/internal/sql"
)

// dimDB extends the sessions fixture with a small static "cdns" dimension
// table so queries can join the streamed fact table against a static build
// side — the shape the shared-state cache deduplicates across sessions.
func dimDB(n int, seed int64) (*exec.DB, map[string]bool) {
	db := testDB(n, seed)
	cdns := rel.NewRelation(rel.Schema{
		{Name: "cdn", Type: rel.KString},
		{Name: "region", Type: rel.KString},
	})
	regions := []string{"us-east", "us-west", "europe", "apac"}
	for i := 0; i < 8; i++ {
		cdns.Append(rel.String("c"+string(rune('0'+i))), rel.String(regions[i%len(regions)]))
	}
	db.Put("cdns", cdns)
	return db, map[string]bool{"sessions": true}
}

// Join queries that share one build side (scan of cdns keyed on cdn) but
// differ in SQL text: alias names, filters, aggregate, and group-by column.
// The fingerprinter must land them all on the same cache entry.
var joinQueries = []string{
	`SELECT c.region, SUM(s.play_time) AS spt FROM sessions s, cdns c
		WHERE s.cdn = c.cdn GROUP BY c.region`,
	`SELECT d.region, AVG(x.play_time) AS apt FROM sessions x, cdns d
		WHERE x.cdn = d.cdn GROUP BY d.region`,
	`SELECT c.region, COUNT(*) AS n FROM sessions s, cdns c
		WHERE s.cdn = c.cdn AND s.buffer_time > 5 GROUP BY c.region`,
}

// Outer queries sharing one inner aggregate subquery over the streamed
// table (the §4 nested-aggregate shape). Sharing the inner state requires
// matching sampling parameters, so these run under one seed.
var innerAggQueries = []string{
	`SELECT AVG(play_time) AS apt FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
	`SELECT COUNT(*) AS n FROM sessions WHERE buffer_time <= (SELECT AVG(buffer_time) FROM sessions)`,
	`SELECT cdn, SUM(play_time) AS spt FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions) GROUP BY cdn`,
}

// TestSharedJoinBuildEquivalence is the tentpole contract for shared join
// state: 8 concurrent sessions over 3 join-query variants — different SQL
// text, aliases, filters, seeds, and Workers {1,4} — share one frozen build
// store, and every trajectory stays bit-identical to a solo run with fully
// private state.
func TestSharedJoinBuildEquivalence(t *testing.T) {
	const batches = 5
	db, streamed := dimDB(1000, 21)
	type slot struct {
		query string
		opts  SessionOptions
	}
	var slots []slot
	for i := 0; i < 8; i++ {
		slots = append(slots, slot{
			query: joinQueries[i%len(joinQueries)],
			opts:  SessionOptions{Trials: 10, Seed: uint64(500 + i), Workers: 1 + 3*(i%2)},
		})
	}
	oracles := make([][]*Update, len(slots))
	for i, sl := range slots {
		oracles[i] = soloTrajectoryStreamed(t, db, streamed, sl.query, sl.opts, batches)
	}

	eng := NewEngine(db, streamed, nil, nil, Config{Batches: batches})
	defer eng.Close()
	got := make([][]*Update, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	wg.Add(len(slots))
	for i, sl := range slots {
		go func(i int, sl slot) {
			defer wg.Done()
			s, err := eng.Open(sl.query, sl.opts)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = drain(s)
			errs[i] = s.Err()
		}(i, sl)
	}
	wg.Wait()
	for i := range slots {
		if errs[i] != nil {
			t.Fatalf("slot %d: %v", i, errs[i])
		}
		if !BitIdentical(got[i], oracles[i]) {
			t.Errorf("slot %d (workers=%d): shared-build trajectory differs from solo run",
				i, slots[i].opts.Workers)
		}
	}
	st := eng.Snapshot()
	// The first open builds the frozen store; opens that raced it either hit
	// the entry or waited for its build. At least one session must have hit.
	if st.SharedStateHits == 0 {
		t.Error("no shared-state hits across 8 overlapping join sessions")
	}
	if st.SharedStateHits > 0 && st.SharedStateBytesSaved <= 0 {
		t.Errorf("hits=%d but bytes saved=%d", st.SharedStateHits, st.SharedStateBytesSaved)
	}
}

// TestSharedInnerAggEquivalence: sessions whose outer queries differ but
// contain the same inner aggregate subquery share its state; staggered
// opens, a mid-stream cancel, and a kill (abandon without drain) leave every
// surviving trajectory bit-identical to its solo oracle.
func TestSharedInnerAggEquivalence(t *testing.T) {
	const batches = 5
	db, streamed := dimDB(900, 13)
	opts := func(w int) SessionOptions {
		return SessionOptions{Trials: 12, Seed: 77, Workers: w}
	}

	eng := NewEngine(db, streamed, nil, nil, Config{Batches: batches})
	defer eng.Close()

	// Wave 1: two sessions with different outer queries around the same
	// inner aggregate, plus one that is cancelled after its first update.
	s0, err := eng.Open(innerAggQueries[0], opts(1))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := eng.Open(innerAggQueries[1], opts(4))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := eng.Open(innerAggQueries[2], opts(1))
	if err != nil {
		t.Fatal(err)
	}
	var cancelled []*Update
	if sc.Next() {
		cancelled = append(cancelled, sc.Update())
	}
	sc.Cancel()
	cancelled = append(cancelled, drain(sc)...)
	if !errors.Is(sc.Err(), ErrCancelled) {
		t.Errorf("cancelled session err = %v, want ErrCancelled", sc.Err())
	}
	oracleC := soloTrajectoryStreamed(t, db, streamed, innerAggQueries[2], opts(1), batches)
	if !BitIdentical(cancelled, oracleC[:len(cancelled)]) {
		t.Error("cancelled session prefix differs from solo run")
	}

	// Wave 2 opens mid-run: one drained, one killed outright.
	s3, err := eng.Open(innerAggQueries[2], opts(4))
	if err != nil {
		t.Fatal(err)
	}
	sk, err := eng.Open(innerAggQueries[0], opts(1))
	if err != nil {
		t.Fatal(err)
	}
	sk.Close() // kill: no updates consumed

	for i, pair := range []struct {
		s     *Session
		query string
		w     int
	}{{s0, innerAggQueries[0], 1}, {s1, innerAggQueries[1], 4}, {s3, innerAggQueries[2], 4}} {
		got := drain(pair.s)
		if err := pair.s.Err(); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		oracle := soloTrajectoryStreamed(t, db, streamed, pair.query, opts(pair.w), batches)
		if !BitIdentical(got, oracle) {
			t.Errorf("session %d: trajectory differs from solo run", i)
		}
	}
	if st := eng.Snapshot(); st.SharedStateHits == 0 {
		t.Error("no shared-state hits across sessions sharing an inner aggregate")
	}
}

// TestSharedStateKillCyclesNoLeak: 100 cycles of open/kill over sessions
// holding shared state — every cycle must return the cache to zero live
// bytes. A single missed release would accumulate immediately.
func TestSharedStateKillCyclesNoLeak(t *testing.T) {
	db, streamed := dimDB(400, 5)
	eng := NewEngine(db, streamed, nil, nil, Config{Batches: 4})
	defer eng.Close()
	for i := 0; i < 100; i++ {
		a, err := eng.Open(joinQueries[i%len(joinQueries)], SessionOptions{Trials: 5, Seed: uint64(i)})
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		b, err := eng.Open(joinQueries[(i+1)%len(joinQueries)], SessionOptions{Trials: 5, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		switch i % 3 {
		case 0: // kill both mid-flight
			a.Close()
			b.Close()
		case 1: // kill one, drain the other
			a.Close()
			drain(b)
		default: // drain both
			drain(a)
			drain(b)
		}
		if n := eng.SessionCount(); n != 0 {
			t.Fatalf("cycle %d: %d sessions leaked", i, n)
		}
		if lb := eng.SharedLiveBytes(); lb != 0 {
			t.Fatalf("cycle %d: %d shared bytes leaked", i, lb)
		}
	}
	if st := eng.Snapshot(); st.SharedStateHits == 0 {
		t.Error("kill-cycle workload never hit the shared cache")
	}
}

// TestDisableStateSharing: the escape hatch really disables the cache, and
// results stay bit-identical to the shared path (sharing is memory-only).
func TestDisableStateSharing(t *testing.T) {
	const batches = 4
	db, streamed := dimDB(600, 17)
	opts := SessionOptions{Trials: 8, Seed: 3}

	run := func(disable bool) ([]*Update, Stats) {
		eng := NewEngine(db, streamed, nil, nil, Config{Batches: batches, DisableStateSharing: disable})
		defer eng.Close()
		s1, err := eng.Open(joinQueries[0], opts)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := eng.Open(joinQueries[1], opts)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(s1)
		drain(s2)
		if err := s1.Err(); err != nil {
			t.Fatal(err)
		}
		return got, eng.Snapshot()
	}

	shared, sharedStats := run(false)
	private, privateStats := run(true)
	if !BitIdentical(shared, private) {
		t.Error("shared and private runs diverged")
	}
	if privateStats.SharedStateHits != 0 || privateStats.SharedStateBytesSaved != 0 {
		t.Errorf("disabled sharing recorded hits=%d saved=%d",
			privateStats.SharedStateHits, privateStats.SharedStateBytesSaved)
	}
	_ = sharedStats
}

// soloTrajectoryStreamed is soloTrajectory with an explicit streamed-table
// map, for fixtures whose DB carries static dimension tables. The oracle
// runs on a dedicated core engine with fully private state — no cache.
func soloTrajectoryStreamed(t *testing.T, db *exec.DB, streamed map[string]bool, query string, opts SessionOptions, batches int) []*Update {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cat := sql.NewCatalog()
	for _, name := range db.Tables() {
		r, _ := db.Get(name)
		cat.AddTable(name, r.Schema, streamed[name])
	}
	node, pp, err := sql.NewPlanner(cat, expr.NewRegistry(), agg.NewRegistry()).Plan(stmt)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	eng, err := core.NewEngine(node, db, core.Options{
		Batches: batches, Mode: opts.Mode, Trials: opts.Trials, Slack: opts.Slack,
		Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		t.Fatalf("core engine: %v", err)
	}
	defer eng.Close()
	var out []*Update
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatalf("solo step: %v", err)
		}
		out = append(out, convertUpdate(u, pp))
	}
	return out
}
