package serve

import (
	"fmt"
	"math"

	"iolap/internal/bootstrap"
	"iolap/internal/dist"
	"iolap/internal/rel"
	"iolap/internal/storage"
)

// The session protocol: Open/Estimate/Cancel/Close frames layered on the
// dist package's length-prefixed frame format (4-byte big-endian length, one
// type byte, payload) and its hardened payload reader. One connection
// multiplexes many sessions — every frame after the Open handshake carries a
// session id — and floats travel as raw Float64bits, so a remote client's
// estimate trajectory is bit-identical to a local session's.
//
// Client→server: Open, Cancel, Close (Close ≡ Cancel; it exists so clients
// can distinguish teardown from user cancellation in traces).
// Server→client: OpenOK or OpenErr (answering the connection's oldest
// unanswered Open — clients serialize Opens), then per session any number of
// Estimate frames followed by exactly one Done.

// Session frame types. The byte values share nothing with the dist
// execution protocol — the two never share a connection — but start at 0x20
// so a stray cross-wired peer fails loudly on an unknown type instead of
// half-parsing.
const (
	frOpen     byte = 0x20 + iota // c→s: version, tenant, options, query
	frCancel                      // c→s: sid — tear the session down
	frClose                       // c→s: sid — client-side close (≡ Cancel)
	frOpenOK                      // s→c: sid, batches, queued
	frOpenErr                     // s→c: code, message
	frEstimate                    // s→c: sid + one Update
	frDone                        // s→c: sid, code, message
)

// sessionProtoVersion guards against mixed binaries, like the dist
// protocol's version byte.
const sessionProtoVersion = 1

// OpenErr / Done status codes.
const (
	codeOK        byte = 0 // Done: pass completed, exact answer delivered
	codeCancelled byte = 1 // Done: session cancelled
	codeError     byte = 2 // Done/OpenErr: failure, message attached
	codeBudget    byte = 3 // OpenErr: admission rejected (ErrBudgetExhausted)
)

// openReq is the decoded form of an Open frame.
type openReq struct {
	Tenant      string
	Stream      string
	Query       string
	Mode        byte
	Trials      int64
	SlackBits   uint64
	Seed        uint64
	Workers     uint64
	StateBudget int64
}

func appendOpen(dst []byte, o openReq) []byte {
	dst = append(dst, sessionProtoVersion)
	dst = dist.AppendString(dst, o.Tenant)
	dst = dist.AppendString(dst, o.Stream)
	dst = dist.AppendString(dst, o.Query)
	dst = append(dst, o.Mode)
	dst = dist.AppendVarint(dst, o.Trials)
	dst = dist.AppendU64(dst, o.SlackBits)
	dst = dist.AppendU64(dst, o.Seed)
	dst = dist.AppendUvarint(dst, o.Workers)
	dst = dist.AppendVarint(dst, o.StateBudget)
	return dst
}

func decodeOpen(p []byte) (openReq, error) {
	r := dist.NewWireReader(p)
	if v := r.Byte("open version"); r.Err() == nil && v != sessionProtoVersion {
		return openReq{}, fmt.Errorf("serve: session protocol version %d, want %d", v, sessionProtoVersion)
	}
	o := openReq{
		Tenant:      r.Str("open tenant"),
		Stream:      r.Str("open stream"),
		Query:       r.Str("open query"),
		Mode:        r.Byte("open mode"),
		Trials:      r.Varint("open trials"),
		SlackBits:   r.U64("open slack"),
		Seed:        r.U64("open seed"),
		Workers:     r.Uvarint("open workers"),
		StateBudget: r.Varint("open state budget"),
	}
	return o, r.Done("open")
}

func appendOpenOK(dst []byte, sid uint64, batches int, queued bool) []byte {
	dst = dist.AppendUvarint(dst, sid)
	dst = dist.AppendUvarint(dst, uint64(batches))
	dst = dist.AppendBool(dst, queued)
	return dst
}

func decodeOpenOK(p []byte) (sid uint64, batches int, queued bool, err error) {
	r := dist.NewWireReader(p)
	sid = r.Uvarint("openok sid")
	batches = int(r.Uvarint("openok batches"))
	queued = r.Bool("openok queued")
	return sid, batches, queued, r.Done("openok")
}

func appendStatus(dst []byte, code byte, msg string) []byte {
	dst = append(dst, code)
	return dist.AppendString(dst, msg)
}

func decodeStatus(p []byte) (code byte, msg string, err error) {
	r := dist.NewWireReader(p)
	code = r.Byte("status code")
	msg = r.Str("status message")
	return code, msg, r.Done("status")
}

func appendSID(dst []byte, sid uint64) []byte { return dist.AppendUvarint(dst, sid) }

func decodeSID(p []byte) (uint64, error) {
	r := dist.NewWireReader(p)
	sid := r.Uvarint("sid")
	return sid, r.Done("sid")
}

func appendDone(dst []byte, sid uint64, code byte, msg string) []byte {
	dst = dist.AppendUvarint(dst, sid)
	return appendStatus(dst, code, msg)
}

func decodeDone(p []byte) (sid uint64, code byte, msg string, err error) {
	r := dist.NewWireReader(p)
	sid = r.Uvarint("done sid")
	code = r.Byte("done code")
	msg = r.Str("done message")
	return sid, code, msg, r.Done("done")
}

// appendEstimate encodes one session update. Result tuples ride the
// fuzz-hardened spill-row codec (values + multiplicity, bit-exact floats);
// estimate cells are five raw Float64bits words each.
func appendEstimate(dst []byte, sid uint64, u *Update) ([]byte, error) {
	dst = dist.AppendUvarint(dst, sid)
	dst = dist.AppendUvarint(dst, uint64(u.Batch))
	dst = dist.AppendUvarint(dst, uint64(u.Batches))
	dst = dist.AppendU64(dst, math.Float64bits(u.Fraction))
	dst = dist.AppendU64(dst, math.Float64bits(u.DurationMillis))
	dst = dist.AppendUvarint(dst, uint64(u.Recomputed))
	dst = dist.AppendUvarint(dst, uint64(len(u.Columns)))
	for _, c := range u.Columns {
		dst = dist.AppendString(dst, c)
	}
	dst = dist.AppendUvarint(dst, uint64(u.Result.Len()))
	var rows []byte
	var err error
	for _, tp := range u.Result.Tuples {
		rows, err = storage.AppendSpillRow(rows, tp.Vals, tp.Mult, nil)
		if err != nil {
			return nil, fmt.Errorf("serve: encode result row: %w", err)
		}
	}
	dst = dist.AppendBytes(dst, rows)
	for i := range u.Result.Tuples {
		var es []bootstrap.Estimate
		if i < len(u.Estimates) {
			es = u.Estimates[i]
		}
		dst = dist.AppendUvarint(dst, uint64(len(es)))
		for _, e := range es {
			dst = dist.AppendU64(dst, math.Float64bits(e.Value))
			dst = dist.AppendU64(dst, math.Float64bits(e.Stdev))
			dst = dist.AppendU64(dst, math.Float64bits(e.CILo))
			dst = dist.AppendU64(dst, math.Float64bits(e.CIHi))
			dst = dist.AppendU64(dst, math.Float64bits(e.RelStd))
		}
	}
	return dst, nil
}

// maxEstimateCells bounds the decoded estimate matrix: a corrupt count can
// promise at most the cells its payload actually carries (5 words each), so
// the check is belt-and-braces against allocation bombs.
const maxEstimateCells = 1 << 22

func decodeEstimate(p []byte) (sid uint64, u *Update, err error) {
	r := dist.NewWireReader(p)
	sid = r.Uvarint("estimate sid")
	u = &Update{
		Batch:   int(r.Uvarint("estimate batch")),
		Batches: int(r.Uvarint("estimate batches")),
	}
	u.Fraction = math.Float64frombits(r.U64("estimate fraction"))
	u.DurationMillis = math.Float64frombits(r.U64("estimate duration"))
	u.Recomputed = int(r.Uvarint("estimate recomputed"))
	ncols := r.Count("estimate column count")
	if r.Err() != nil {
		return 0, nil, r.Err()
	}
	u.Columns = make([]string, ncols)
	for i := range u.Columns {
		u.Columns[i] = r.Str("estimate column name")
	}
	nrows := int(r.Uvarint("estimate row count"))
	rowsBlob := r.Bytes("estimate rows")
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	if nrows > len(rowsBlob) { // every encoded row costs >= 1 byte
		return 0, nil, fmt.Errorf("serve: estimate row count %d exceeds payload", nrows)
	}
	schema := make(rel.Schema, ncols)
	for i, c := range u.Columns {
		schema[i] = rel.Column{Name: c, Type: rel.KNull}
	}
	result := rel.NewRelation(schema)
	for i := 0; i < nrows; i++ {
		vals, mult, _, n, err := storage.DecodeSpillRow(rowsBlob)
		if err != nil {
			return 0, nil, fmt.Errorf("serve: estimate row %d: %w", i, err)
		}
		rowsBlob = rowsBlob[n:]
		if len(vals) != ncols {
			return 0, nil, fmt.Errorf("serve: estimate row %d has %d values, want %d", i, len(vals), ncols)
		}
		result.Tuples = append(result.Tuples, rel.Tuple{Vals: vals, Mult: mult})
		// Give the reconstructed schema the kinds of the first row so the
		// client-side relation renders like the server's.
		if i == 0 {
			for j, v := range vals {
				schema[j].Type = v.Kind()
			}
		}
	}
	if len(rowsBlob) != 0 {
		return 0, nil, fmt.Errorf("serve: estimate rows blob has %d trailing bytes", len(rowsBlob))
	}
	u.Result = result
	totalCells := 0
	u.Estimates = make([][]bootstrap.Estimate, nrows)
	for i := 0; i < nrows; i++ {
		nest := r.Count("estimate est count")
		if r.Err() != nil {
			return 0, nil, r.Err()
		}
		if nest == 0 {
			continue
		}
		totalCells += nest
		if totalCells > maxEstimateCells || nest*40 > r.Remaining() {
			return 0, nil, fmt.Errorf("serve: estimate cell count %d exceeds payload", nest)
		}
		es := make([]bootstrap.Estimate, nest)
		for j := range es {
			es[j] = bootstrap.Estimate{
				Value:  math.Float64frombits(r.U64("estimate value")),
				Stdev:  math.Float64frombits(r.U64("estimate stdev")),
				CILo:   math.Float64frombits(r.U64("estimate cilo")),
				CIHi:   math.Float64frombits(r.U64("estimate cihi")),
				RelStd: math.Float64frombits(r.U64("estimate relstd")),
			}
		}
		u.Estimates[i] = es
	}
	return sid, u, r.Done("estimate")
}
