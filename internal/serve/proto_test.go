package serve

import (
	"math"
	"testing"

	"iolap/internal/bootstrap"
	"iolap/internal/rel"
)

func testUpdate() *Update {
	result := rel.NewRelation(rel.Schema{
		{Name: "cdn", Type: rel.KString},
		{Name: "spt", Type: rel.KFloat},
		{Name: "n", Type: rel.KInt},
	})
	result.Tuples = append(result.Tuples,
		rel.Tuple{Vals: []rel.Value{rel.String("c1"), rel.Float(123.456), rel.Int(42)}, Mult: 2.5},
		rel.Tuple{Vals: []rel.Value{rel.String("c2"), rel.Float(math.Inf(1)), rel.Int(-7)}, Mult: 1},
		rel.Tuple{Vals: []rel.Value{rel.Null(), rel.Float(-0.0), rel.Int(0)}, Mult: 0.125},
	)
	return &Update{
		Batch: 3, Batches: 10, Fraction: 0.3,
		Columns: []string{"cdn", "spt", "n"},
		Result:  result,
		Estimates: [][]bootstrap.Estimate{
			{{}, {Value: 123.456, Stdev: 1.5, CILo: 120, CIHi: 126, RelStd: 0.012}, {}},
			nil, // rows without estimates stay without estimates
			{{}, {Value: math.NaN(), Stdev: math.SmallestNonzeroFloat64}, {}},
		},
	}
}

func TestEstimateRoundTrip(t *testing.T) {
	u := testUpdate()
	p, err := appendEstimate(nil, 99, u)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	sid, got, err := decodeEstimate(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sid != 99 {
		t.Fatalf("sid = %d, want 99", sid)
	}
	if !updateBitIdentical(got, u) {
		t.Fatal("round-trip changed the update")
	}
}

// TestEstimateTruncationRejected: every proper prefix of a valid estimate
// frame must fail to decode — no silent partial results.
func TestEstimateTruncationRejected(t *testing.T) {
	p, err := appendEstimate(nil, 7, testUpdate())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(p); i++ {
		if _, _, err := decodeEstimate(p[:i]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", i, len(p))
		}
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := openReq{
		Tenant: "acme", Stream: "sessions",
		Query: "SELECT COUNT(*) FROM sessions", Mode: 2,
		Trials: -1, SlackBits: math.Float64bits(2.5),
		Seed: 1 << 60, Workers: 8, StateBudget: -4096,
	}
	got, err := decodeOpen(appendOpen(nil, o))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != o {
		t.Fatalf("round-trip: got %+v, want %+v", got, o)
	}
	// A wrong protocol version is rejected outright.
	bad := appendOpen(nil, o)
	bad[0] = sessionProtoVersion + 1
	if _, err := decodeOpen(bad); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestControlFramesRoundTrip(t *testing.T) {
	sid, batches, queued, err := decodeOpenOK(appendOpenOK(nil, 12, 10, true))
	if err != nil || sid != 12 || batches != 10 || !queued {
		t.Fatalf("openok: %d %d %v %v", sid, batches, queued, err)
	}
	code, msg, err := decodeStatus(appendStatus(nil, codeBudget, "no budget"))
	if err != nil || code != codeBudget || msg != "no budget" {
		t.Fatalf("status: %d %q %v", code, msg, err)
	}
	dsid, dcode, dmsg, err := decodeDone(appendDone(nil, 3, codeCancelled, "bye"))
	if err != nil || dsid != 3 || dcode != codeCancelled || dmsg != "bye" {
		t.Fatalf("done: %d %d %q %v", dsid, dcode, dmsg, err)
	}
	csid, err := decodeSID(appendSID(nil, 1<<40))
	if err != nil || csid != 1<<40 {
		t.Fatalf("sid: %d %v", csid, err)
	}
	// Trailing garbage after any control frame is corruption.
	if _, _, _, err := decodeOpenOK(append(appendOpenOK(nil, 1, 2, false), 0)); err == nil {
		t.Fatal("openok trailing byte accepted")
	}
	if _, err := decodeSID(append(appendSID(nil, 5), 9)); err == nil {
		t.Fatal("sid trailing byte accepted")
	}
}

// FuzzSessionProto drives every session-protocol decoder with arbitrary
// payloads (first byte selects the frame type) and enforces the round-trip
// property: anything that decodes must re-encode to a payload that decodes
// to the same value, floats compared by bits. Decoders must reject
// truncation and corruption with an error, never panic or over-allocate.
func FuzzSessionProto(f *testing.F) {
	u := testUpdate()
	est, _ := appendEstimate(nil, 5, u)
	f.Add(append([]byte{frOpen}, appendOpen(nil, openReq{
		Tenant: "t", Stream: "sessions", Query: "SELECT 1", Trials: 10})...))
	f.Add(append([]byte{frEstimate}, est...))
	f.Add(append([]byte{frOpenOK}, appendOpenOK(nil, 1, 10, false)...))
	f.Add(append([]byte{frOpenErr}, appendStatus(nil, codeBudget, "over budget")...))
	f.Add(append([]byte{frDone}, appendDone(nil, 2, codeOK, "")...))
	f.Add(append([]byte{frCancel}, appendSID(nil, 3)...))
	f.Add(append([]byte{frEstimate}, est[:len(est)/2]...)) // truncation seed
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		typ, payload := data[0], data[1:]
		switch typ {
		case frOpen:
			o, err := decodeOpen(payload)
			if err != nil {
				return
			}
			o2, err := decodeOpen(appendOpen(nil, o))
			if err != nil || o2 != o {
				t.Fatalf("open re-roundtrip: %+v vs %+v (%v)", o2, o, err)
			}
		case frEstimate:
			sid, u, err := decodeEstimate(payload)
			if err != nil {
				return
			}
			p2, err := appendEstimate(nil, sid, u)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			sid2, u2, err := decodeEstimate(p2)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if sid2 != sid || !updateBitIdentical(u2, u) {
				t.Fatal("estimate re-roundtrip changed the update")
			}
		case frOpenOK:
			sid, batches, queued, err := decodeOpenOK(payload)
			if err != nil {
				return
			}
			sid2, b2, q2, err := decodeOpenOK(appendOpenOK(nil, sid, batches, queued))
			if err != nil || sid2 != sid || b2 != batches || q2 != queued {
				t.Fatal("openok re-roundtrip mismatch")
			}
		case frOpenErr:
			code, msg, err := decodeStatus(payload)
			if err != nil {
				return
			}
			c2, m2, err := decodeStatus(appendStatus(nil, code, msg))
			if err != nil || c2 != code || m2 != msg {
				t.Fatal("status re-roundtrip mismatch")
			}
		case frDone:
			sid, code, msg, err := decodeDone(payload)
			if err != nil {
				return
			}
			s2, c2, m2, err := decodeDone(appendDone(nil, sid, code, msg))
			if err != nil || s2 != sid || c2 != code || m2 != msg {
				t.Fatal("done re-roundtrip mismatch")
			}
		case frCancel, frClose:
			sid, err := decodeSID(payload)
			if err != nil {
				return
			}
			if s2, err := decodeSID(appendSID(nil, sid)); err != nil || s2 != sid {
				t.Fatal("sid re-roundtrip mismatch")
			}
		}
	})
}
