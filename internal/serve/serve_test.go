package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"iolap/internal/agg"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/rel"
	"iolap/internal/sql"
)

// testDB builds the sessions fixture: n rows over 8 cdns with deterministic
// float columns.
func testDB(n int, seed int64) *exec.DB {
	rng := rand.New(rand.NewSource(seed))
	db := exec.NewDB()
	sessions := rel.NewRelation(rel.Schema{
		{Name: "session_id", Type: rel.KString},
		{Name: "buffer_time", Type: rel.KFloat},
		{Name: "play_time", Type: rel.KFloat},
		{Name: "cdn", Type: rel.KString},
	})
	for i := 0; i < n; i++ {
		sessions.Append(
			rel.String("s"+strconv.Itoa(i)),
			rel.Float(float64(10+rng.Intn(500))/10),
			rel.Float(float64(300+rng.Intn(6000))/10),
			rel.String("c"+strconv.Itoa(rng.Intn(8))),
		)
	}
	db.Put("sessions", sessions)
	return db
}

var testStreamed = map[string]bool{"sessions": true}

// Test queries, mixed shapes: global aggregate, group-by, nested aggregate
// subquery, and ORDER BY/LIMIT post-processing.
var testQueries = []string{
	`SELECT COUNT(*) AS n, AVG(play_time) AS apt FROM sessions`,
	`SELECT cdn, SUM(play_time) AS spt FROM sessions GROUP BY cdn`,
	`SELECT AVG(play_time) AS apt FROM sessions WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`,
	`SELECT cdn, SUM(play_time) AS spt FROM sessions GROUP BY cdn ORDER BY spt DESC LIMIT 3`,
}

// soloTrajectory is the oracle: the same query and options on a dedicated
// core engine over the default contiguous schedule — exactly what the shared
// scan hands each session, so trajectories must match bit for bit.
func soloTrajectory(t *testing.T, db *exec.DB, query string, opts SessionOptions, batches int) []*Update {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cat := sql.NewCatalog()
	for _, name := range db.Tables() {
		r, _ := db.Get(name)
		cat.AddTable(name, r.Schema, testStreamed[name])
	}
	node, pp, err := sql.NewPlanner(cat, expr.NewRegistry(), agg.NewRegistry()).Plan(stmt)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	eng, err := core.NewEngine(node, db, core.Options{
		Batches: batches, Mode: opts.Mode, Trials: opts.Trials, Slack: opts.Slack,
		Seed: opts.Seed, Workers: opts.Workers,
	})
	if err != nil {
		t.Fatalf("core engine: %v", err)
	}
	defer eng.Close()
	var out []*Update
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatalf("solo step: %v", err)
		}
		out = append(out, convertUpdate(u, pp))
	}
	return out
}

func drain(s *Session) []*Update {
	var out []*Update
	for s.Next() {
		out = append(out, s.Update())
	}
	return out
}

// TestCrossSessionEquivalence is the tentpole contract: 8 concurrent
// sessions — mixed query shapes, mixed Workers, distinct seeds — over one
// shared scan, each bit-identical (math.Float64bits) to a solo run of the
// same query over the same batch schedule.
func TestCrossSessionEquivalence(t *testing.T) {
	const batches = 6
	db := testDB(1200, 42)
	type slot struct {
		query string
		opts  SessionOptions
	}
	var slots []slot
	for i, w := range []int{1, 4, 1, 4, 1, 4, 1, 4} {
		slots = append(slots, slot{
			query: testQueries[i%len(testQueries)],
			opts:  SessionOptions{Trials: 20, Seed: uint64(100 + i), Workers: w},
		})
	}
	oracles := make([][]*Update, len(slots))
	for i, sl := range slots {
		oracles[i] = soloTrajectory(t, db, sl.query, sl.opts, batches)
		if len(oracles[i]) != batches {
			t.Fatalf("slot %d: oracle has %d updates, want %d", i, len(oracles[i]), batches)
		}
	}

	eng := NewEngine(db, testStreamed, nil, nil, Config{Batches: batches})
	defer eng.Close()
	got := make([][]*Update, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	wg.Add(len(slots))
	for i, sl := range slots {
		go func(i int, sl slot) {
			defer wg.Done()
			s, err := eng.Open(sl.query, sl.opts)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = drain(s)
			errs[i] = s.Err()
		}(i, sl)
	}
	wg.Wait()
	for i := range slots {
		if errs[i] != nil {
			t.Fatalf("slot %d: %v", i, errs[i])
		}
		if !BitIdentical(got[i], oracles[i]) {
			t.Errorf("slot %d (workers=%d): shared-scan trajectory differs from solo run", i, slots[i].opts.Workers)
		}
	}
	if st := eng.Snapshot(); st.Completed != int64(len(slots)) {
		t.Errorf("completed = %d, want %d", st.Completed, len(slots))
	}
}

// TestStaggeredOpensAndCancels covers the cohort mechanics: sessions opened
// mid-run join later passes with full bit-identical trajectories, and a
// cancelled session's delivered prefix is a bit-identical prefix of its solo
// run, ending in ErrCancelled.
func TestStaggeredOpensAndCancels(t *testing.T) {
	const batches = 5
	db := testDB(900, 7)
	eng := NewEngine(db, testStreamed, nil, nil, Config{Batches: batches})
	defer eng.Close()

	optsAt := func(i int) SessionOptions {
		return SessionOptions{Trials: 10, Seed: uint64(i), Workers: 1 + 3*(i%2)}
	}

	// Wave 1: two full sessions plus one cancelled after its first update.
	s0, err := eng.Open(testQueries[0], optsAt(0))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := eng.Open(testQueries[1], optsAt(1))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := eng.Open(testQueries[2], optsAt(2))
	if err != nil {
		t.Fatal(err)
	}
	var cancelled []*Update
	if sc.Next() {
		cancelled = append(cancelled, sc.Update())
	}
	sc.Cancel()
	cancelled = append(cancelled, drain(sc)...)
	if !errors.Is(sc.Err(), ErrCancelled) {
		t.Errorf("cancelled session err = %v, want ErrCancelled", sc.Err())
	}
	if len(cancelled) >= batches {
		t.Errorf("cancelled session delivered %d updates, want < %d", len(cancelled), batches)
	}
	oracleC := soloTrajectory(t, db, testQueries[2], optsAt(2), batches)
	if !BitIdentical(cancelled, oracleC[:len(cancelled)]) {
		t.Error("cancelled session prefix differs from solo run")
	}

	// Wave 2 opens while wave 1 is (possibly) mid-pass.
	s3, err := eng.Open(testQueries[3], optsAt(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range []struct {
		s     *Session
		query string
		idx   int
	}{{s0, testQueries[0], 0}, {s1, testQueries[1], 1}, {s3, testQueries[3], 3}} {
		got := drain(pair.s)
		if err := pair.s.Err(); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if !BitIdentical(got, soloTrajectory(t, db, pair.query, optsAt(pair.idx), batches)) {
			t.Errorf("session %d: trajectory differs from solo run", i)
		}
	}
}

// holdScans marks a table's scan loop as already running without starting
// it, so admitted sessions stay in pending forever — admission decisions
// become fully deterministic for the budget tests. Close still works: the
// loop was never started, so the engine's WaitGroup is empty.
func holdScans(e *Engine, table string) {
	e.mu.Lock()
	e.loops[table] = true
	e.mu.Unlock()
}

func TestBudgetRejectBoundary(t *testing.T) {
	db := testDB(100, 1)
	eng := NewEngine(db, testStreamed, nil, nil, Config{
		Batches: 4, TenantBudgetBytes: 3 * DefaultSessionBytes,
	})
	holdScans(eng, "sessions")
	defer eng.Close()

	open := func(tenant string, budget int64) (*Session, error) {
		return eng.Open(testQueries[0], SessionOptions{Tenant: tenant, StateBudgetBytes: budget})
	}
	// Three default reservations exactly fill tenant a's budget.
	for i := 0; i < 3; i++ {
		if _, err := open("a", 0); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	if got := eng.TenantReserved("a"); got != 3*DefaultSessionBytes {
		t.Fatalf("reserved = %d, want %d", got, 3*DefaultSessionBytes)
	}
	// The boundary is exact: one more byte-equivalent session is rejected...
	if _, err := open("a", 0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("4th open err = %v, want ErrBudgetExhausted", err)
	}
	// ...while another tenant is untouched,
	if _, err := open("b", 0); err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	// and a rejected open reserves nothing.
	if got := eng.TenantReserved("a"); got != 3*DefaultSessionBytes {
		t.Fatalf("reserved after reject = %d, want %d", got, 3*DefaultSessionBytes)
	}
	st := eng.Snapshot()
	if st.Rejected != 1 || st.Opened != 4 {
		t.Errorf("stats = %+v, want Rejected=1 Opened=4", st)
	}
}

func TestBudgetQueueFIFO(t *testing.T) {
	db := testDB(100, 1)
	eng := NewEngine(db, testStreamed, nil, nil, Config{
		Batches: 4, TenantBudgetBytes: 2 * DefaultSessionBytes, QueueOnBudget: true,
	})
	holdScans(eng, "sessions")
	defer eng.Close()

	open := func() *Session {
		s, err := eng.Open(testQueries[1], SessionOptions{Tenant: "a"})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return s
	}
	s1, s2 := open(), open()
	q3, q4, q5 := open(), open(), open()
	_ = s2
	if q3.State() != StateQueued || q4.State() != StateQueued || q5.State() != StateQueued {
		t.Fatalf("states = %v %v %v, want all queued", q3.State(), q4.State(), q5.State())
	}
	if eng.QueueLen() != 3 {
		t.Fatalf("queue len = %d, want 3", eng.QueueLen())
	}

	// Cancelling a queued session finishes it immediately without touching
	// the budget.
	q4.Cancel()
	if got := drain(q4); len(got) != 0 {
		t.Fatalf("cancelled queued session delivered %d updates", len(got))
	}
	if !errors.Is(q4.Err(), ErrCancelled) {
		t.Fatalf("queued cancel err = %v", q4.Err())
	}
	if eng.QueueLen() != 2 {
		t.Fatalf("queue len after cancel = %d, want 2", eng.QueueLen())
	}

	// Releasing one reservation admits exactly the queue head (strict FIFO):
	// q3 becomes waiting, q5 stays queued.
	eng.finish(s1, nil, true)
	if q3.State() != StateWaiting {
		t.Errorf("q3 state = %v, want waiting after release", q3.State())
	}
	if q5.State() != StateQueued {
		t.Errorf("q5 state = %v, want still queued", q5.State())
	}
	if eng.QueueLen() != 1 {
		t.Errorf("queue len = %d, want 1", eng.QueueLen())
	}
	if got := eng.TenantReserved("a"); got != 2*DefaultSessionBytes {
		t.Errorf("reserved = %d, want %d", got, 2*DefaultSessionBytes)
	}
}

// TestCloseReleasesEverything: engine shutdown finishes queued, waiting and
// running sessions with ErrCancelled and zeroes all reservations.
func TestCloseReleasesEverything(t *testing.T) {
	db := testDB(100, 1)
	eng := NewEngine(db, testStreamed, nil, nil, Config{
		Batches: 4, TenantBudgetBytes: DefaultSessionBytes, QueueOnBudget: true,
	})
	holdScans(eng, "sessions")
	admitted, err := eng.Open(testQueries[0], SessionOptions{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := eng.Open(testQueries[0], SessionOptions{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Session{"admitted": admitted, "queued": queued} {
		drain(s)
		if !errors.Is(s.Err(), ErrCancelled) {
			t.Errorf("%s err = %v, want ErrCancelled", name, s.Err())
		}
	}
	if got := eng.TenantReserved("a"); got != 0 {
		t.Errorf("reserved after close = %d, want 0", got)
	}
	if eng.SessionCount() != 0 || eng.QueueLen() != 0 {
		t.Errorf("sessions=%d queue=%d after close, want 0/0", eng.SessionCount(), eng.QueueLen())
	}
	if _, err := eng.Open(testQueries[0], SessionOptions{}); !errors.Is(err, ErrClosed) {
		t.Errorf("open after close err = %v, want ErrClosed", err)
	}
}

// TestSessionLifecycleNoLeak: 100 open/close cycles — half abandoned
// mid-stream, half drained to completion — leave no session state and no
// reservation behind.
func TestSessionLifecycleNoLeak(t *testing.T) {
	db := testDB(400, 3)
	eng := NewEngine(db, testStreamed, nil, nil, Config{Batches: 4})
	defer eng.Close()
	for i := 0; i < 100; i++ {
		s, err := eng.Open(testQueries[i%len(testQueries)], SessionOptions{
			Tenant: "t", Trials: 5, Seed: uint64(i),
		})
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if i%2 == 0 {
			s.Close() // abandon: cancel + drain
		} else {
			drain(s)
			if err := s.Err(); err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
		}
		// Close/drain return only after finishLocked ran, so the release is
		// observable immediately — any leak trips on the exact cycle.
		if n := eng.SessionCount(); n != 0 {
			t.Fatalf("cycle %d: %d sessions leaked", i, n)
		}
		if r := eng.TenantReserved("t"); r != 0 {
			t.Fatalf("cycle %d: %d bytes leaked", i, r)
		}
	}
}

// TestConcurrentStress hammers one engine with concurrent Open / Next /
// Cancel / Close from many goroutines — the -race suite's serving workload.
func TestConcurrentStress(t *testing.T) {
	db := testDB(400, 9)
	eng := NewEngine(db, testStreamed, nil, nil, Config{
		Batches: 4, TenantBudgetBytes: 6 * DefaultSessionBytes, QueueOnBudget: true,
	})
	defer eng.Close()
	const goroutines = 12
	const iters = 6
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s, err := eng.Open(testQueries[(g+i)%len(testQueries)], SessionOptions{
					Tenant: fmt.Sprintf("t%d", g%3), Trials: 5, Seed: uint64(g*100 + i),
				})
				if err != nil {
					continue // budget races are expected shutdown-adjacent noise
				}
				switch i % 3 {
				case 0:
					drain(s)
				case 1:
					if s.Next() {
						_ = s.Update().MaxRelStdev()
					}
					s.Close()
				default:
					s.Cancel()
					drain(s)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := eng.SessionCount(); n != 0 {
		t.Errorf("%d sessions still live after stress", n)
	}
	for g := 0; g < 3; g++ {
		if r := eng.TenantReserved(fmt.Sprintf("t%d", g)); r != 0 {
			t.Errorf("tenant t%d: %d bytes still reserved", g, r)
		}
	}
}

// TestSameQuerySameSeedSessionsAgree: two concurrent sessions of the same
// query and seed deliver byte-for-byte the same stream — per-session
// randomness is isolated.
func TestSameQuerySameSeedSessionsAgree(t *testing.T) {
	db := testDB(800, 11)
	eng := NewEngine(db, testStreamed, nil, nil, Config{Batches: 5})
	defer eng.Close()
	opts := SessionOptions{Trials: 15, Seed: 77, Workers: 2}
	var got [2][]*Update
	var errs [2]error
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			s, err := eng.Open(testQueries[2], opts)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = drain(s)
			errs[i] = s.Err()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if !BitIdentical(got[0], got[1]) {
		t.Error("same query + same seed sessions diverged")
	}
}
