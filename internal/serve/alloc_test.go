package serve

import (
	"runtime"
	"sync"
	"testing"
)

// measureFanoutAllocsPerTuple pins the steady-state allocation cost of the
// shared-scan fan-out: k sessions of the same aggregate query sharing one
// batch schedule, each batch stepped through the same goroutine-per-session
// fan-out runPass uses. The scan loop is held (holdScans) so the pass is
// driven by hand — batch 1 is the warm-up (it builds each session's groups,
// scratch buffers and weight slab), batches 2..p are measured.
func measureFanoutAllocsPerTuple(t *testing.T, query string, n, k int) float64 {
	t.Helper()
	const batches = 8
	db := testDB(n, 42)
	eng := NewEngine(db, testStreamed, nil, nil, Config{Batches: batches})
	defer eng.Close()
	holdScans(eng, "sessions")
	for i := 0; i < k; i++ {
		if _, err := eng.Open(query, SessionOptions{Trials: 100, Seed: uint64(i), Workers: 1}); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	eng.mu.Lock()
	cohort := eng.pending["sessions"]
	eng.pending["sessions"] = nil
	eng.mu.Unlock()
	if len(cohort) != k {
		t.Fatalf("cohort = %d sessions, want %d", len(cohort), k)
	}
	for _, s := range cohort {
		s.setState(StateRunning)
		s.stepOnce() // warm-up batch
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var wg sync.WaitGroup
	for b := 1; b < batches; b++ {
		wg.Add(len(cohort))
		for _, s := range cohort {
			go func(s *Session) {
				defer wg.Done()
				s.stepOnce()
			}(s)
		}
		wg.Wait()
	}
	runtime.ReadMemStats(&after)
	for _, s := range cohort {
		s.mu.Lock()
		failed := s.err
		s.mu.Unlock()
		if failed != nil {
			t.Fatalf("session %d: %v", s.id, failed)
		}
		eng.finish(s, nil, true)
	}
	tuples := float64(n) * float64(batches-1) / float64(batches) * float64(k)
	return float64(after.Mallocs-before.Mallocs) / tuples
}

// TestFanoutAllocsPerTupleSteadyState bounds the per-tuple allocations of
// the multi-session fan-out. The per-tuple path inside each delta pipeline
// is allocation-free (see core's pin); what serve adds per batch — the
// goroutine spawn per session, the update conversion and the buffered
// channel send — is per-batch overhead that must amortize far below one
// allocation per streamed tuple. A regression that allocates per tuple in
// the fan-out (or re-copies batches per session) trips the bound at once.
func TestFanoutAllocsPerTupleSteadyState(t *testing.T) {
	const n = 16000
	const bound = 0.5
	queries := []struct{ name, q string }{
		{"global_agg", `SELECT COUNT(*) AS n, AVG(buffer_time) AS abt, SUM(play_time) AS spt FROM sessions`},
		{"group_by", `SELECT cdn, SUM(play_time) AS spt, STDDEV(buffer_time) AS sbt FROM sessions GROUP BY cdn`},
	}
	for _, q := range queries {
		for _, k := range []int{1, 4} {
			got := measureFanoutAllocsPerTuple(t, q.q, n, k)
			if got > bound {
				t.Errorf("%s sessions=%d: %.3f allocs/tuple, want <= %v", q.name, k, got, bound)
			}
		}
	}
}
