package serve

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"

	"iolap/internal/core"
	"iolap/internal/dist"
)

// Server accepts session-protocol connections and bridges them onto one
// serving Engine. Each connection may multiplex many sessions; when a
// connection drops — killed client, network partition — every session it
// opened is cancelled so its budget reservation is released.
type Server struct {
	e *Engine

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a serving engine for network access.
func NewServer(e *Engine) *Server {
	return &Server{e: e, conns: make(map[net.Conn]struct{})}
}

// Engine returns the wrapped serving engine.
func (sv *Server) Engine() *Engine { return sv.e }

// Serve accepts connections on lis until Close (or a listener error) and
// handles each on its own goroutine. It returns nil after Close.
func (sv *Server) Serve(lis net.Listener) error {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		lis.Close()
		return ErrClosed
	}
	sv.lis = lis
	sv.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			sv.mu.Lock()
			closed := sv.closed
			sv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sv.mu.Lock()
		if sv.closed {
			sv.mu.Unlock()
			conn.Close()
			return nil
		}
		sv.conns[conn] = struct{}{}
		sv.wg.Add(1)
		sv.mu.Unlock()
		go func() {
			defer sv.wg.Done()
			sv.handle(conn)
			sv.mu.Lock()
			delete(sv.conns, conn)
			sv.mu.Unlock()
		}()
	}
}

// Close stops accepting, drops every live connection (cancelling their
// sessions), and shuts the engine down. Idempotent.
func (sv *Server) Close() error {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil
	}
	sv.closed = true
	lis := sv.lis
	for conn := range sv.conns {
		conn.Close()
	}
	sv.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	sv.wg.Wait()
	return sv.e.Close()
}

// connState is one connection's server-side state: a write lock serializing
// the pump goroutines onto the socket, and the sessions the connection owns.
type connState struct {
	conn net.Conn
	e    *Engine

	wmu sync.Mutex // serializes whole frames onto conn

	mu       sync.Mutex
	sessions map[uint64]*Session
	pumps    sync.WaitGroup
}

// handle runs one connection: reads frames until the peer goes away, then
// cancels everything the connection opened.
func (sv *Server) handle(conn net.Conn) {
	h := &connState{conn: conn, e: sv.e, sessions: make(map[uint64]*Session)}
	var buf []byte
	for {
		typ, payload, err := dist.ReadFrameReuse(conn, &buf)
		if err != nil {
			break
		}
		if err := h.dispatch(typ, payload); err != nil {
			break
		}
	}
	// Peer gone (or sent garbage): tear down every session this connection
	// owns so their reservations free up. The pumps drain and exit on the
	// closed update streams; their writes to the dead socket fail harmlessly.
	h.mu.Lock()
	owned := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		owned = append(owned, s)
	}
	h.mu.Unlock()
	for _, s := range owned {
		s.Cancel()
	}
	conn.Close()
	h.pumps.Wait()
}

func (h *connState) dispatch(typ byte, payload []byte) error {
	switch typ {
	case frOpen:
		o, err := decodeOpen(payload)
		if err != nil {
			return err
		}
		h.open(o)
		return nil
	case frCancel, frClose:
		sid, err := decodeSID(payload)
		if err != nil {
			return err
		}
		h.mu.Lock()
		s := h.sessions[sid]
		h.mu.Unlock()
		if s != nil {
			s.Cancel()
		}
		return nil
	default:
		return fmt.Errorf("serve: unexpected frame type 0x%02x", typ)
	}
}

// open admits a session for the connection and starts its estimate pump.
func (h *connState) open(o openReq) {
	s, err := h.e.Open(o.Query, SessionOptions{
		Tenant:           o.Tenant,
		Stream:           o.Stream,
		Mode:             core.Mode(o.Mode),
		Trials:           int(o.Trials),
		Slack:            math.Float64frombits(o.SlackBits),
		Seed:             o.Seed,
		Workers:          int(o.Workers),
		StateBudgetBytes: o.StateBudget,
	})
	if err != nil {
		code := codeError
		if errors.Is(err, ErrBudgetExhausted) {
			code = codeBudget
		}
		h.writeFrame(frOpenErr, appendStatus(nil, code, err.Error()))
		return
	}
	h.mu.Lock()
	h.sessions[s.ID()] = s
	h.pumps.Add(1)
	h.mu.Unlock()
	h.writeFrame(frOpenOK, appendOpenOK(nil, s.ID(), s.Batches(), s.State() == StateQueued))
	go h.pump(s)
}

// pump streams one session's estimates to the client, then its Done frame.
func (h *connState) pump(s *Session) {
	defer h.pumps.Done()
	var scratch []byte
	for s.Next() {
		p, err := appendEstimate(scratch[:0], s.ID(), s.Update())
		if err != nil {
			s.Cancel()
			break
		}
		scratch = p
		if err := h.writeFrame(frEstimate, p); err != nil {
			// Client unreachable: stop burning budget on its session.
			s.Cancel()
			break
		}
	}
	for s.Next() { // drain whatever remains after a send failure
	}
	code, msg := codeOK, ""
	switch err := s.Err(); {
	case errors.Is(err, ErrCancelled):
		code, msg = codeCancelled, err.Error()
	case err != nil:
		code, msg = codeError, err.Error()
	}
	h.writeFrame(frDone, appendDone(nil, s.ID(), code, msg))
	h.mu.Lock()
	delete(h.sessions, s.ID())
	h.mu.Unlock()
}

func (h *connState) writeFrame(typ byte, payload []byte) error {
	h.wmu.Lock()
	defer h.wmu.Unlock()
	return dist.WriteFrame(h.conn, typ, payload)
}

// ListenAndServe listens on addr and serves the engine until Close; the
// returned Server controls shutdown. Errors other than listen failures are
// reported through srv.Serve's goroutine-internal handling (connection errors
// tear down only their connection).
func ListenAndServe(addr string, e *Engine) (*Server, net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	sv := NewServer(e)
	go func() {
		if err := sv.Serve(lis); err != nil && !errors.Is(err, io.EOF) {
			// Accept-loop failure: nothing to surface to; connections keep
			// draining and Close still works.
			_ = err
		}
	}()
	return sv, lis.Addr(), nil
}
