package serve

import (
	"errors"
	"net"
	"testing"
	"time"
)

// startTestServer listens on a loopback port and serves a fresh engine.
func startTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	db := testDB(800, 21)
	eng := NewEngine(db, testStreamed, nil, nil, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(eng)
	go sv.Serve(lis)
	t.Cleanup(func() { sv.Close() })
	return sv, lis.Addr().String()
}

// TestRemoteSessionBitIdentical: a session served over TCP delivers the same
// estimate stream, bit for bit, as the same query run locally — the wire
// codec (spill rows + Float64bits estimates) loses nothing.
func TestRemoteSessionBitIdentical(t *testing.T) {
	sv, addr := startTestServer(t, Config{Batches: 5})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i, query := range testQueries {
		opts := SessionOptions{Trials: 10, Seed: uint64(50 + i), Workers: 2}
		rs, err := c.Open(query, opts)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if rs.Batches() != 5 {
			t.Fatalf("query %d: batches = %d, want 5", i, rs.Batches())
		}
		var remote []*Update
		for rs.Next() {
			remote = append(remote, rs.Update())
		}
		if err := rs.Err(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		local, err := sv.Engine().Open(query, opts)
		if err != nil {
			t.Fatalf("query %d local: %v", i, err)
		}
		want := drain(local)
		if err := local.Err(); err != nil {
			t.Fatalf("query %d local: %v", i, err)
		}
		if !BitIdentical(remote, want) {
			t.Errorf("query %d: remote trajectory differs from local", i)
		}
	}
}

// TestRemoteConcurrentSessions: several sessions multiplexed on one client
// connection, drained from one goroutine via interleaved cursors.
func TestRemoteConcurrentSessions(t *testing.T) {
	sv, addr := startTestServer(t, Config{Batches: 4})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sessions []*ClientSession
	for i := 0; i < 4; i++ {
		s, err := c.Open(testQueries[i%len(testQueries)], SessionOptions{Trials: 5, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	for i, s := range sessions {
		n := 0
		for s.Next() {
			n++
		}
		if err := s.Err(); err != nil {
			t.Errorf("session %d: %v", i, err)
		}
		if n != 4 {
			t.Errorf("session %d: %d updates, want 4", i, n)
		}
	}
	waitIdle(t, sv.Engine())
}

// TestRemoteCancel: a client-side cancel ends the stream with ErrCancelled
// and releases the server-side session.
func TestRemoteCancel(t *testing.T) {
	sv, addr := startTestServer(t, Config{Batches: 6})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Open(testQueries[1], SessionOptions{Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	for s.Next() {
	}
	if err := s.Err(); err != nil && !errors.Is(err, ErrCancelled) {
		t.Errorf("err = %v, want nil (already finished) or ErrCancelled", err)
	}
	waitIdle(t, sv.Engine())
}

// TestRemoteBudgetError: an admission rejection crosses the wire as an error
// that still unwraps to ErrBudgetExhausted.
func TestRemoteBudgetError(t *testing.T) {
	_, addr := startTestServer(t, Config{Batches: 4, MaxSessions: 1, TenantBudgetBytes: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Open(testQueries[0], SessionOptions{}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// The connection stays healthy after a rejected open.
	s, err := c.Open(testQueries[0], SessionOptions{StateBudgetBytes: 1})
	if err != nil {
		t.Fatalf("second open: %v", err)
	}
	for s.Next() {
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestKilledClientReleasesState: 100 cycles of connect / open / kill the
// connection without reading. Every kill must cancel the connection's
// server-side sessions and release their reservations — no leak.
func TestKilledClientReleasesState(t *testing.T) {
	sv, addr := startTestServer(t, Config{Batches: 6})
	eng := sv.Engine()
	for i := 0; i < 100; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if _, err := c.Open(testQueries[i%len(testQueries)], SessionOptions{
			Tenant: "killer", Trials: 5, Seed: uint64(i),
		}); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		c.Close() // kill without reading a single estimate
	}
	waitIdle(t, eng)
	if r := eng.TenantReserved("killer"); r != 0 {
		t.Errorf("%d bytes still reserved after 100 killed clients", r)
	}
}

// waitIdle polls until the engine holds no sessions (teardown after a conn
// drop is asynchronous: the server cancels, the pass drops at a boundary).
func waitIdle(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if e.SessionCount() == 0 && e.QueueLen() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("engine not idle: %d sessions, %d queued", e.SessionCount(), e.QueueLen())
}

// TestServerCloseEndsClients: closing the server ends remote streams rather
// than hanging them.
func TestServerCloseEndsClients(t *testing.T) {
	sv, addr := startTestServer(t, Config{Batches: 4})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := c.Open(testQueries[0], SessionOptions{Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	sv.Close()
	done := make(chan struct{})
	go func() {
		for s.Next() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after server close")
	}
}
