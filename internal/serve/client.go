package serve

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"

	"iolap/internal/dist"
)

// Client speaks the session protocol to a serving endpoint. One client
// multiplexes many remote sessions over one connection; Open is serialized
// (the protocol answers opens in order) while estimate streams of different
// sessions interleave freely.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes whole frames onto conn

	openMu sync.Mutex      // one outstanding Open at a time
	openCh chan openResult // the reader's answer to the outstanding Open

	mu       sync.Mutex
	sessions map[uint64]*ClientSession
	readErr  error
	closed   bool
	readerWG sync.WaitGroup
}

type openResult struct {
	s   *ClientSession
	err error
}

// Dial connects to a serving endpoint.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. a net.Pipe end in tests).
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		openCh:   make(chan openResult, 1),
		sessions: make(map[uint64]*ClientSession),
	}
	c.readerWG.Add(1)
	go c.readLoop()
	return c
}

// Close drops the connection; the server cancels every session this client
// opened, releasing their budget. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.readerWG.Wait()
	return err
}

// Open admits a remote session and returns its estimate stream. The returned
// error unwraps to ErrBudgetExhausted when admission was refused at the
// tenant budget boundary.
func (c *Client) Open(query string, opts SessionOptions) (*ClientSession, error) {
	c.openMu.Lock()
	defer c.openMu.Unlock()
	req := appendOpen(nil, openReq{
		Tenant:      opts.Tenant,
		Stream:      opts.Stream,
		Query:       query,
		Mode:        byte(opts.Mode),
		Trials:      int64(opts.Trials),
		SlackBits:   math.Float64bits(opts.Slack),
		Seed:        opts.Seed,
		Workers:     uint64(opts.Workers),
		StateBudget: opts.StateBudgetBytes,
	})
	if err := c.writeFrame(frOpen, req); err != nil {
		return nil, err
	}
	res, ok := <-c.openCh
	if !ok {
		return nil, c.connErr()
	}
	if res.err != nil {
		return nil, res.err
	}
	return res.s, nil
}

func (c *Client) connErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("serve: connection closed")
}

// readLoop routes incoming frames: open answers to the waiting Open call,
// estimates and dones to their session.
func (c *Client) readLoop() {
	defer c.readerWG.Done()
	var err error
	for {
		var typ byte
		var payload []byte
		// No buffer reuse: decoded updates alias nothing, but the open
		// results and done messages are tiny and estimates dominate; a fresh
		// payload per frame keeps decode free of aliasing rules.
		typ, payload, err = dist.ReadFrame(c.conn)
		if err != nil {
			break
		}
		if err = c.route(typ, payload); err != nil {
			break
		}
	}
	c.mu.Lock()
	c.readErr = err
	sessions := make([]*ClientSession, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.sessions = map[uint64]*ClientSession{}
	c.mu.Unlock()
	for _, s := range sessions {
		s.finish(fmt.Errorf("serve: connection lost: %w", err))
	}
	close(c.openCh)
}

func (c *Client) route(typ byte, payload []byte) error {
	switch typ {
	case frOpenOK:
		sid, batches, queued, err := decodeOpenOK(payload)
		if err != nil {
			return err
		}
		// Register the session here, before any later frame is read: the
		// server may stream estimates (or Done) immediately after OpenOK, and
		// routing must already know the sid or those frames would be lost.
		s := &ClientSession{
			c:       c,
			id:      sid,
			batches: batches,
			queued:  queued,
			updates: make(chan *Update, batches+1),
		}
		c.mu.Lock()
		c.sessions[sid] = s
		c.mu.Unlock()
		c.openCh <- openResult{s: s}
		return nil
	case frOpenErr:
		code, msg, err := decodeStatus(payload)
		if err != nil {
			return err
		}
		oerr := errors.New(msg)
		if code == codeBudget {
			oerr = fmt.Errorf("%w: %s", ErrBudgetExhausted, msg)
		}
		c.openCh <- openResult{err: oerr}
		return nil
	case frEstimate:
		sid, u, err := decodeEstimate(payload)
		if err != nil {
			return err
		}
		c.mu.Lock()
		s := c.sessions[sid]
		c.mu.Unlock()
		if s == nil {
			return nil // session already closed locally; drop late estimates
		}
		select {
		case s.updates <- u:
		default:
			// The channel holds a full pass; overflow means a protocol bug,
			// not a slow consumer. Fail loudly rather than block the reader.
			return fmt.Errorf("serve: session %d estimate overflow", sid)
		}
		return nil
	case frDone:
		sid, code, msg, err := decodeDone(payload)
		if err != nil {
			return err
		}
		c.mu.Lock()
		s := c.sessions[sid]
		delete(c.sessions, sid)
		c.mu.Unlock()
		if s == nil {
			return nil
		}
		switch code {
		case codeOK:
			s.finish(nil)
		case codeCancelled:
			s.finish(ErrCancelled)
		default:
			s.finish(errors.New(msg))
		}
		return nil
	default:
		return fmt.Errorf("serve: unexpected frame type 0x%02x", typ)
	}
}

func (c *Client) writeFrame(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return dist.WriteFrame(c.conn, typ, payload)
}

// ClientSession is the remote mirror of Session: the same Next / Update /
// Err / Cancel / Close cursor over an estimate stream, fed by the client's
// read loop. Estimates arrive bit-identical to a local session's.
type ClientSession struct {
	c       *Client
	id      uint64
	batches int
	queued  bool

	updates chan *Update
	cur     *Update

	mu       sync.Mutex
	err      error
	finished bool
}

// ID returns the server-assigned session id.
func (s *ClientSession) ID() uint64 { return s.id }

// Batches returns the shared schedule's mini-batch count.
func (s *ClientSession) Batches() int { return s.batches }

// Queued reports whether admission queued the session for budget (it will
// start once a reservation frees up).
func (s *ClientSession) Queued() bool { return s.queued }

// Next blocks for the next estimate; false when the stream ends (see Err).
func (s *ClientSession) Next() bool {
	u, ok := <-s.updates
	if !ok {
		return false
	}
	s.cur = u
	return true
}

// Update returns the current estimate.
func (s *ClientSession) Update() *Update { return s.cur }

// Err returns the terminal error: nil after a completed pass, ErrCancelled
// after cancellation, the transport error if the connection died. Valid once
// Next has returned false.
func (s *ClientSession) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Cancel asks the server to tear the session down; the stream still ends
// with a Done frame (Next returns false, Err reports ErrCancelled).
func (s *ClientSession) Cancel() { s.c.writeFrame(frCancel, appendSID(nil, s.id)) }

// Close cancels the session and drains any undelivered estimates.
func (s *ClientSession) Close() error {
	s.Cancel()
	for s.Next() {
	}
	return nil
}

// finish terminates the stream with err (first finish wins).
func (s *ClientSession) finish(err error) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.err = err
	s.mu.Unlock()
	close(s.updates)
}
