package serve

import (
	"math"

	"iolap/internal/bootstrap"
	"iolap/internal/rel"
)

// BitIdentical reports whether two estimate trajectories are the same run:
// same length, and every update equal batch for batch with floats compared
// by math.Float64bits — the repo's equivalence contract. The equivalence
// suite and cmd/benchserve use it to prove that sharing a scan with N-1
// other sessions never perturbs a session's results.
func BitIdentical(a, b []*Update) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !updateBitIdentical(a[i], b[i]) {
			return false
		}
	}
	return true
}

func updateBitIdentical(a, b *Update) bool {
	if a.Batch != b.Batch || a.Batches != b.Batches ||
		math.Float64bits(a.Fraction) != math.Float64bits(b.Fraction) {
		return false
	}
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	return relBitIdentical(a.Result, b.Result) && estsBitIdentical(a.Estimates, b.Estimates)
}

func relBitIdentical(a, b *rel.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Tuples {
		ta, tb := a.Tuples[i], b.Tuples[i]
		if math.Float64bits(ta.Mult) != math.Float64bits(tb.Mult) || len(ta.Vals) != len(tb.Vals) {
			return false
		}
		for j := range ta.Vals {
			if !valueBitIdentical(ta.Vals[j], tb.Vals[j]) {
				return false
			}
		}
	}
	return true
}

func valueBitIdentical(a, b rel.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case rel.KInt:
		return a.Int() == b.Int()
	case rel.KFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case rel.KString:
		return a.Str() == b.Str()
	case rel.KBool:
		return a.Bool() == b.Bool()
	case rel.KNull:
		return true
	}
	// Refs never reach delivered results (the sink resolves them); treat a
	// surviving pair as different so the suite fails loudly.
	return false
}

func estsBitIdentical(a, b [][]bootstrap.Estimate) bool {
	// Trailing nil rows and absent rows are the same "no estimates" shape.
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var ra, rb []bootstrap.Estimate
		if i < len(a) {
			ra = a[i]
		}
		if i < len(b) {
			rb = b[i]
		}
		if len(ra) != len(rb) {
			return false
		}
		for j := range ra {
			ea, eb := ra[j], rb[j]
			if math.Float64bits(ea.Value) != math.Float64bits(eb.Value) ||
				math.Float64bits(ea.Stdev) != math.Float64bits(eb.Stdev) ||
				math.Float64bits(ea.CILo) != math.Float64bits(eb.CILo) ||
				math.Float64bits(ea.CIHi) != math.Float64bits(eb.CIHi) ||
				math.Float64bits(ea.RelStd) != math.Float64bits(eb.RelStd) {
				return false
			}
		}
	}
	return true
}
