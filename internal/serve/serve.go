// Package serve is the multi-query serving engine: a long-lived process
// admits many concurrent online-aggregation sessions over shared tables and
// drives them from one shared mini-batch scan.
//
// The unit of sharing is the batch schedule. Each streamed table is
// partitioned into mini-batches exactly once (core.ContiguousDeltas), and
// every session's engine receives the same delta slices through
// core.Options.Deltas — so N concurrent sessions scan one copy of the data,
// not N. Sessions on the same table ride the scan in cohorts: a pass over
// the table fans each mini-batch out to every session in the cohort (one
// independent delta pipeline per session), sessions opened mid-pass join the
// next pass, and a cohort's sessions finish together after the final batch
// with the exact answer.
//
// Because each session's pipeline is a private core.Engine over the shared
// schedule, a session's estimate trajectory is bit-identical to a solo run
// of the same query with the same options — concurrency changes wall clock
// and memory footprint, never results. The equivalence suite enforces this
// with math.Float64bits comparisons.
//
// Admission control is budget-based: every session reserves
// StateBudgetBytes (or DefaultSessionBytes) against its tenant's budget at
// Open. Sessions that would overflow the tenant budget are rejected — or
// queued FIFO when Config.QueueOnBudget is set — and a finished, cancelled
// or killed session releases its reservation, admitting queued sessions
// deterministically in arrival order.
package serve

import (
	"errors"
	"fmt"
	"sync"

	"iolap/internal/agg"
	"iolap/internal/bootstrap"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
	"iolap/internal/share"
	"iolap/internal/sql"
)

// DefaultSessionBytes is the admission reservation of a session that does
// not declare StateBudgetBytes.
const DefaultSessionBytes = 1 << 20

// Sentinel errors surfaced by Open and Session.Err.
var (
	// ErrBudgetExhausted rejects an Open that would overflow the tenant
	// budget (Config.QueueOnBudget off) or the session cap.
	ErrBudgetExhausted = errors.New("serve: tenant state budget exhausted")
	// ErrCancelled reports a session torn down by Cancel, a dropped client
	// connection, or engine shutdown before its pass completed.
	ErrCancelled = errors.New("serve: session cancelled")
	// ErrClosed rejects operations on a closed engine.
	ErrClosed = errors.New("serve: engine closed")
)

// Config tunes the serving engine.
type Config struct {
	// Batches is the shared mini-batch count p per streamed table
	// (default 10). The schedule is engine-level, not per-session: sharing
	// one scan requires every session on a table to agree on its batches.
	Batches int
	// TenantBudgetBytes caps the summed state reservations of one tenant's
	// live sessions (0 = unlimited).
	TenantBudgetBytes int64
	// QueueOnBudget queues sessions FIFO at the budget boundary instead of
	// rejecting them; a released reservation admits the queue head(s) in
	// arrival order.
	QueueOnBudget bool
	// MaxSessions caps concurrently admitted sessions across all tenants
	// (0 = unlimited). The cap follows the same reject-or-queue policy as
	// the byte budget.
	MaxSessions int
	// DefaultSessionBytes overrides the default admission reservation
	// (default DefaultSessionBytes).
	DefaultSessionBytes int64
	// DisableStateSharing turns off the cross-session shared-state cache
	// (DESIGN.md §13): every session builds private operator state, as
	// before PR 9. Sharing never changes results — this switch exists for
	// benchmarking the memory multiplier and as an operational escape
	// hatch.
	DisableStateSharing bool
}

func (c Config) withDefaults() Config {
	if c.Batches <= 0 {
		c.Batches = 10
	}
	if c.DefaultSessionBytes <= 0 {
		c.DefaultSessionBytes = DefaultSessionBytes
	}
	return c
}

// SessionOptions tunes one session. Schedule-shaping options (batch count,
// shuffling, stratification) are deliberately absent: the scan schedule
// belongs to the engine so sessions can share it.
type SessionOptions struct {
	// Tenant names the budget the session's reservation is charged to
	// (empty = the anonymous tenant).
	Tenant string
	// Stream overrides which table is processed online for this query.
	Stream string
	// Mode selects the delta algorithm (default core.ModeIOLAP).
	Mode core.Mode
	// Trials is the bootstrap replicate count (default 100; negative
	// disables bootstrap).
	Trials int
	// Slack is the variation-range slack ε (default 2.0).
	Slack float64
	// Seed drives the session's bootstrap randomness.
	Seed uint64
	// Workers bounds the session's partition parallelism.
	Workers int
	// StateBudgetBytes is the session's state reservation: admission
	// charges it against the tenant budget, and when positive the
	// session's engine enforces it as the resident join-state budget
	// (spilling beyond it). Zero reserves Config.DefaultSessionBytes for
	// admission and leaves spilling off.
	StateBudgetBytes int64
}

// Update is one refined partial result of a session, with ORDER BY / LIMIT
// applied and estimates aligned with the result rows.
type Update struct {
	Batch, Batches int
	Fraction       float64
	Columns        []string
	Result         *rel.Relation
	Estimates      [][]bootstrap.Estimate
	DurationMillis float64
	Recomputed     int
	// StateBytes is the session's private operator-state footprint after
	// the batch; SharedStateBytes is the footprint of cache-owned shared
	// state the session references (held once per cache entry, reported by
	// every holder). Both are memory diagnostics — bit-identity
	// comparisons (BitIdentical) exclude them.
	StateBytes       int
	SharedStateBytes int
}

// MaxRelStdev returns the worst relative standard deviation across all
// uncertain cells — a single accuracy number to stop on.
func (u *Update) MaxRelStdev() float64 {
	worst := 0.0
	for _, row := range u.Estimates {
		for _, e := range row {
			if e.Stdev > 0 && e.RelStd > worst {
				worst = e.RelStd
			}
		}
	}
	return worst
}

// SessionState is the lifecycle position of a session.
type SessionState int32

// Session lifecycle states.
const (
	// StateQueued: waiting for tenant budget (QueueOnBudget).
	StateQueued SessionState = iota
	// StateWaiting: admitted, waiting to join the next scan pass.
	StateWaiting
	// StateRunning: riding a pass.
	StateRunning
	// StateDone: finished (exact answer delivered), failed, or cancelled.
	StateDone
)

func (s SessionState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateWaiting:
		return "waiting"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	}
	return fmt.Sprintf("SessionState(%d)", int32(s))
}

// Session is one admitted (or queued) online-aggregation query. Next /
// Update / Err iterate its estimate stream cursor-style; the stream is
// buffered for the full pass, so a slow consumer never stalls the shared
// scan or its cohort peers.
type Session struct {
	id      uint64
	tenant  string
	query   string
	table   string
	reserve int64
	opts    SessionOptions

	e   *Engine
	eng *core.Engine
	pp  *sql.PostProcess

	// updates carries every batch result; capacity = the full pass, so the
	// scan loop's send never blocks.
	updates chan *Update
	cur     *Update

	mu        sync.Mutex
	state     SessionState
	err       error
	cancelled bool
	finished  bool
}

// ID returns the engine-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Tenant returns the budget the session is charged to.
func (s *Session) Tenant() string { return s.tenant }

// Table returns the streamed table the session scans.
func (s *Session) Table() string { return s.table }

// Batches returns the shared schedule's mini-batch count for the session's
// table.
func (s *Session) Batches() int { return cap(s.updates) }

// State returns the session's lifecycle position.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Next blocks for the next estimate; it returns false when the stream ends
// (exact answer delivered, session cancelled, or error — see Err).
func (s *Session) Next() bool {
	u, ok := <-s.updates
	if !ok {
		return false
	}
	s.cur = u
	return true
}

// Update returns the current estimate.
func (s *Session) Update() *Update { return s.cur }

// Err returns the session's terminal error: nil after a completed pass,
// ErrCancelled after Cancel/teardown, or the engine error that stopped it.
// Valid once Next has returned false.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Cancel tears the session down: a queued session finishes immediately, a
// waiting or running one is dropped at the next batch boundary (its
// reservation released either way). Idempotent; already-delivered estimates
// remain readable.
func (s *Session) Cancel() { s.e.cancel(s) }

// Close cancels the session and drains any undelivered estimates. Always
// call it when abandoning a session early; it is a no-op after normal
// completion.
func (s *Session) Close() error {
	s.Cancel()
	for s.Next() {
	}
	return nil
}

// fail records the terminal error (first one wins).
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *Session) isCancelled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cancelled || s.err != nil
}

func (s *Session) setState(st SessionState) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// stepOnce advances the session's pipeline by one shared mini-batch and
// delivers the refined estimate. It runs on the scan loop's fan-out
// goroutines; a failure marks the session for removal at the batch boundary.
func (s *Session) stepOnce() {
	u, err := s.eng.Step()
	if err != nil {
		s.fail(err)
		return
	}
	s.updates <- convertUpdate(u, s.pp)
}

func convertUpdate(u *core.Update, pp *sql.PostProcess) *Update {
	result, ests := pp.ApplyWithEstimates(u.Result, u.Estimates)
	return &Update{
		Batch:            u.Batch,
		Batches:          u.Batches,
		Fraction:         u.Fraction,
		Columns:          result.Schema.Names(),
		Result:           result,
		Estimates:        ests,
		DurationMillis:   float64(u.Duration.Microseconds()) / 1000,
		Recomputed:       u.Recomputed,
		StateBytes:       u.JoinStateBytes + u.OtherStateBytes,
		SharedStateBytes: u.SharedStateBytes,
	}
}

// Engine is the long-lived serving engine: shared tables, per-table batch
// schedules, tenant budgets, and one scan loop per streamed table fanning
// batches out to the admitted sessions.
type Engine struct {
	cfg   Config
	db    *exec.DB
	funcs *expr.Registry
	aggs  *agg.Registry

	mu        sync.Mutex
	cond      *sync.Cond
	streamed  map[string]bool
	schedules map[string][]*rel.Relation
	loops     map[string]bool
	pending   map[string][]*Session // admitted, waiting for the next pass
	queue     []*Session            // waiting for budget, FIFO
	sessions  map[uint64]*Session   // admitted and not yet finished
	tenants   map[string]int64      // reserved bytes per tenant
	nextID    uint64
	closed    bool
	wg        sync.WaitGroup

	// cache owns cross-session shared operator state (nil when
	// Config.DisableStateSharing): sessions whose plans contain equivalent
	// subtrees share one frozen join build store or inner-aggregate entry,
	// refcounted per session and evicted when the last holder finishes.
	cache *share.Cache

	stats Stats
}

// Stats are cumulative engine counters (monotonic; read with Snapshot).
type Stats struct {
	Opened    int64 // sessions admitted or queued
	Rejected  int64 // opens refused at the budget boundary
	Queued    int64 // opens that entered the budget queue
	Completed int64 // sessions that delivered their exact answer
	Cancelled int64 // sessions torn down before completion
	// SharedStateHits counts shared-state acquisitions satisfied by an
	// existing cache entry; SharedStateBytesSaved sums the state bytes
	// those hits did not rebuild (both 0 with DisableStateSharing).
	SharedStateHits       int64
	SharedStateBytesSaved int64
}

// NewEngine builds a serving engine over a database snapshot. streamed flags
// the tables processed online (the fan-out tables sessions share); funcs and
// aggs may be nil for the builtin registries. The table set is frozen at
// construction (db is cloned), so the caller may keep loading tables into
// its own DB without racing the scan loops.
func NewEngine(db *exec.DB, streamed map[string]bool, funcs *expr.Registry, aggs *agg.Registry, cfg Config) *Engine {
	if funcs == nil {
		funcs = expr.NewRegistry()
	}
	if aggs == nil {
		aggs = agg.NewRegistry()
	}
	e := &Engine{
		cfg:       cfg.withDefaults(),
		db:        db.Clone(),
		funcs:     funcs,
		aggs:      aggs,
		streamed:  make(map[string]bool, len(streamed)),
		schedules: make(map[string][]*rel.Relation),
		loops:     make(map[string]bool),
		pending:   make(map[string][]*Session),
		sessions:  make(map[uint64]*Session),
		tenants:   make(map[string]int64),
	}
	if !e.cfg.DisableStateSharing {
		e.cache = share.NewCache()
	}
	for name, st := range streamed {
		e.streamed[name] = st
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// catalog builds the SQL catalog with the session's stream override applied.
func (e *Engine) catalog(streamOverride string) *sql.Catalog {
	cat := sql.NewCatalog()
	for _, name := range e.db.Tables() {
		r, _ := e.db.Get(name)
		st := e.streamed[name]
		if streamOverride != "" {
			st = name == streamOverride
		}
		cat.AddTable(name, r.Schema, st)
	}
	return cat
}

// scheduleLocked returns (building if needed) the shared batch schedule of a
// streamed table. Callers hold e.mu.
func (e *Engine) scheduleLocked(table string) ([]*rel.Relation, error) {
	if d, ok := e.schedules[table]; ok {
		return d, nil
	}
	src, ok := e.db.Get(table)
	if !ok {
		return nil, fmt.Errorf("serve: unknown table %q", table)
	}
	d := core.ContiguousDeltas(src, e.cfg.Batches)
	e.schedules[table] = d
	if !e.loops[table] {
		e.loops[table] = true
		e.wg.Add(1)
		go e.scanLoop(table)
	}
	return d, nil
}

// Open admits a new online-aggregation session for the query. The session
// joins the next scan pass of its streamed table; if the tenant budget is
// exhausted it is rejected with ErrBudgetExhausted, or queued FIFO when
// Config.QueueOnBudget is set. Open never blocks on other sessions.
func (e *Engine) Open(query string, opts SessionOptions) (*Session, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	pl := sql.NewPlanner(e.catalog(opts.Stream), e.funcs, e.aggs)
	node, pp, err := pl.Plan(stmt)
	if err != nil {
		return nil, err
	}
	table, err := streamedTable(node)
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	deltas, err := e.scheduleLocked(table)
	if err != nil {
		e.mu.Unlock()
		return nil, err
	}
	reserve := opts.StateBudgetBytes
	if reserve <= 0 {
		reserve = e.cfg.DefaultSessionBytes
	}
	e.nextID++
	s := &Session{
		id:      e.nextID,
		tenant:  opts.Tenant,
		query:   query,
		table:   table,
		reserve: reserve,
		opts:    opts,
		e:       e,
		pp:      pp,
		updates: make(chan *Update, len(deltas)),
	}
	e.mu.Unlock()

	// Build the session's delta pipeline outside the engine lock: plan
	// compilation is per-session work and must not stall admission or the
	// scan loops.
	copts := core.Options{
		Mode:             opts.Mode,
		Trials:           opts.Trials,
		Slack:            opts.Slack,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		StateBudgetBytes: opts.StateBudgetBytes,
		Deltas:           deltas,
	}
	if e.cache != nil {
		// Overlap detection: compilation fingerprints eligible subtrees and
		// acquires their state from the shared cache (guarded assignment —
		// a typed-nil interface would defeat the engine's nil check).
		copts.SharedState = e.cache
	}
	eng, err := core.NewEngine(node, e.db, copts)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	if hit := eng.SharedHitBytes(); hit > 0 {
		// Incremental charging: state served from the cache is already
		// paid for by the cohort; this session's reservation covers only
		// the state it actually adds.
		s.reserve -= hit
		if s.reserve < 0 {
			s.reserve = 0
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		eng.Close()
		return nil, ErrClosed
	}
	if e.fitsLocked(s) {
		e.stats.Opened++
		e.admitLocked(s)
		return s, nil
	}
	if !e.cfg.QueueOnBudget {
		e.stats.Rejected++
		eng.Close()
		return nil, fmt.Errorf("%w: tenant %q reserved %d of %d bytes, session wants %d",
			ErrBudgetExhausted, opts.Tenant, e.tenants[opts.Tenant], e.cfg.TenantBudgetBytes, reserve)
	}
	e.stats.Opened++
	e.stats.Queued++
	s.state = StateQueued
	e.queue = append(e.queue, s)
	return s, nil
}

// fitsLocked reports whether the session's reservation fits the tenant
// budget and the session cap. Callers hold e.mu.
func (e *Engine) fitsLocked(s *Session) bool {
	if e.cfg.MaxSessions > 0 && len(e.sessions) >= e.cfg.MaxSessions {
		return false
	}
	if e.cfg.TenantBudgetBytes > 0 && e.tenants[s.tenant]+s.reserve > e.cfg.TenantBudgetBytes {
		return false
	}
	return true
}

// admitLocked reserves the session's budget and stages it for the next scan
// pass. Callers hold e.mu.
func (e *Engine) admitLocked(s *Session) {
	e.tenants[s.tenant] += s.reserve
	e.sessions[s.id] = s
	s.setState(StateWaiting)
	e.pending[s.table] = append(e.pending[s.table], s)
	e.cond.Broadcast()
}

// admitQueuedLocked admits queued sessions in strict FIFO order, stopping at
// the first that does not fit — deterministic at the budget boundary.
// Cancelled queue entries are finished and skipped. Callers hold e.mu.
func (e *Engine) admitQueuedLocked() {
	for len(e.queue) > 0 {
		s := e.queue[0]
		if s.isCancelled() {
			e.queue = e.queue[1:]
			e.finishLocked(s, ErrCancelled, false)
			continue
		}
		if !e.fitsLocked(s) {
			return
		}
		e.queue = e.queue[1:]
		e.admitLocked(s)
	}
}

// cancel implements Session.Cancel.
func (e *Engine) cancel(s *Session) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.cancelled = true
	wasQueued := s.state == StateQueued
	s.mu.Unlock()
	if !wasQueued {
		// Waiting/running sessions are dropped by the scan loop at the
		// next batch boundary (runPass filters on isCancelled).
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, q := range e.queue {
		if q == s {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.finishLocked(s, ErrCancelled, false)
			return
		}
	}
}

// finishLocked terminates a session: records the terminal error, releases
// its reservation when it held one, closes its pipeline and its estimate
// stream, and admits queued sessions into the freed budget. Callers hold
// e.mu.
func (e *Engine) finishLocked(s *Session, err error, reserved bool) {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	if s.err == nil {
		s.err = err
	}
	terr := s.err
	s.state = StateDone
	s.mu.Unlock()
	if reserved {
		e.tenants[s.tenant] -= s.reserve
		if e.tenants[s.tenant] == 0 {
			delete(e.tenants, s.tenant)
		}
		delete(e.sessions, s.id)
	}
	if s.eng != nil {
		s.eng.Close()
	}
	if terr != nil {
		e.stats.Cancelled++
	} else {
		e.stats.Completed++
	}
	close(s.updates)
	e.admitQueuedLocked()
}

// finish is finishLocked for callers not holding e.mu.
func (e *Engine) finish(s *Session, err error, reserved bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.finishLocked(s, err, reserved)
}

// scanLoop drives one streamed table: it waits for admitted sessions, takes
// them as a cohort, and runs one pass over the shared schedule — each
// mini-batch read once and fanned out to every session's delta pipeline.
// Sessions admitted mid-pass form the next cohort.
func (e *Engine) scanLoop(table string) {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for !e.closed && len(e.pending[table]) == 0 {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		cohort := e.pending[table]
		e.pending[table] = nil
		deltas := e.schedules[table]
		e.mu.Unlock()
		e.runPass(cohort, len(deltas))
	}
}

// runPass fans p mini-batches out to the cohort: per batch, one goroutine
// per live session steps that session's pipeline, with a barrier between
// batches (the shared scan advances batch-synchronously). Cancelled or
// failed sessions are dropped at batch boundaries; survivors finish with
// the exact answer after batch p.
func (e *Engine) runPass(cohort []*Session, p int) {
	live := cohort
	var wg sync.WaitGroup
	for b := 0; b < p; b++ {
		// Compact in place at the boundary: drop cancelled/failed sessions
		// and release their budget, reusing the cohort backing array so the
		// steady-state fan-out allocates nothing per batch.
		kept := live[:0]
		for _, s := range live {
			if s.isCancelled() {
				e.finish(s, ErrCancelled, true)
				continue
			}
			kept = append(kept, s)
		}
		live = kept
		if len(live) == 0 {
			return
		}
		if b == 0 {
			for _, s := range live {
				s.setState(StateRunning)
			}
		}
		if len(live) == 1 {
			// No fan-out needed: step on the scan goroutine itself.
			live[0].stepOnce()
			continue
		}
		wg.Add(len(live))
		for _, s := range live {
			go func(s *Session) {
				defer wg.Done()
				s.stepOnce()
			}(s)
		}
		wg.Wait()
	}
	for _, s := range live {
		s.mu.Lock()
		failed := s.err
		s.mu.Unlock()
		e.finish(s, failed, true)
	}
}

// SessionCount returns how many sessions are admitted and unfinished.
func (e *Engine) SessionCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.sessions)
}

// QueueLen returns how many sessions wait for budget.
func (e *Engine) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// TenantReserved returns a tenant's currently reserved bytes.
func (e *Engine) TenantReserved(tenant string) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tenants[tenant]
}

// Snapshot returns the cumulative engine counters.
func (e *Engine) Snapshot() Stats {
	e.mu.Lock()
	st := e.stats
	e.mu.Unlock()
	if e.cache != nil {
		cs := e.cache.Stats()
		st.SharedStateHits = cs.Hits
		st.SharedStateBytesSaved = cs.BytesSaved
	}
	return st
}

// SharedLiveBytes returns the current footprint of the shared-state cache:
// bytes held once regardless of how many sessions reference them (0 with
// DisableStateSharing).
func (e *Engine) SharedLiveBytes() int64 {
	if e.cache == nil {
		return 0
	}
	return e.cache.Stats().LiveBytes
}

// SharedPeakBytes returns the high-water mark of the shared cache footprint
// over the engine's lifetime. Unlike SharedLiveBytes it is monotonic, so it
// can be read after sessions finish — short-lived sessions evict their
// entries before an observer would catch LiveBytes non-zero.
func (e *Engine) SharedPeakBytes() int64 {
	if e.cache == nil {
		return 0
	}
	return e.cache.Stats().PeakLiveBytes
}

// Batches returns the shared schedule length for a table (0 until a session
// first streams it).
func (e *Engine) Batches(table string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.schedules[table])
}

// Close shuts the engine down: queued sessions finish with ErrCancelled,
// running cohorts are dropped at the next batch boundary, and the scan
// loops exit. Close blocks until the loops are gone; it is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for len(e.queue) > 0 {
		s := e.queue[0]
		e.queue = e.queue[1:]
		e.finishLocked(s, ErrCancelled, false)
	}
	for _, s := range e.sessions {
		s.mu.Lock()
		s.cancelled = true
		s.mu.Unlock()
	}
	// Waiting sessions that never joined a pass are finished here; running
	// ones are dropped by their pass at the next boundary.
	for table, pend := range e.pending {
		for _, s := range pend {
			e.finishLocked(s, ErrCancelled, true)
		}
		e.pending[table] = nil
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
	// The loops are gone; any sessions still marked live were mid-pass and
	// have been finished by their pass teardown.
	return nil
}

// streamedTable resolves the one streamed table of a planned query.
func streamedTable(root plan.Node) (string, error) {
	seen := map[string]bool{}
	var names []string
	for _, sc := range plan.StreamedScans(root) {
		if !seen[sc.Table] {
			seen[sc.Table] = true
			names = append(names, sc.Table)
		}
	}
	if len(names) != 1 {
		return "", fmt.Errorf("serve: exactly one streamed table required, query has %d (%v)", len(names), names)
	}
	return names[0], nil
}
