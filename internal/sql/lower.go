package sql

import (
	"fmt"
	"strconv"
	"strings"

	"iolap/internal/agg"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e ExprNode) []ExprNode {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []ExprNode{e}
}

// hasSubquery reports whether the expression contains a subquery operand.
func hasSubquery(e ExprNode) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *Subquery:
		return true
	case *InExpr:
		if t.Sub != nil {
			return true
		}
		for _, item := range t.List {
			if hasSubquery(item) {
				return true
			}
		}
		return hasSubquery(t.E)
	case *BinOp:
		return hasSubquery(t.L) || hasSubquery(t.R)
	case *UnOp:
		return hasSubquery(t.E)
	case *CaseExpr:
		for _, w := range t.Whens {
			if hasSubquery(w.Cond) || hasSubquery(w.Then) {
				return true
			}
		}
		return hasSubquery(t.Else)
	case *BetweenExpr:
		return hasSubquery(t.E) || hasSubquery(t.Lo) || hasSubquery(t.Hi)
	case *FuncCall:
		for _, a := range t.Args {
			if hasSubquery(a) {
				return true
			}
		}
		return false
	}
	return false
}

// walkAggCalls visits every outermost aggregate call in the expression.
func walkAggCalls(e ExprNode, isAgg func(string) bool, fn func(*FuncCall) error) error {
	switch t := e.(type) {
	case nil:
		return nil
	case *FuncCall:
		if isAgg(strings.ToUpper(t.Name)) {
			return fn(t)
		}
		for _, a := range t.Args {
			if err := walkAggCalls(a, isAgg, fn); err != nil {
				return err
			}
		}
		return nil
	case *BinOp:
		if err := walkAggCalls(t.L, isAgg, fn); err != nil {
			return err
		}
		return walkAggCalls(t.R, isAgg, fn)
	case *UnOp:
		return walkAggCalls(t.E, isAgg, fn)
	case *CaseExpr:
		for _, w := range t.Whens {
			if err := walkAggCalls(w.Cond, isAgg, fn); err != nil {
				return err
			}
			if err := walkAggCalls(w.Then, isAgg, fn); err != nil {
				return err
			}
		}
		return walkAggCalls(t.Else, isAgg, fn)
	case *BetweenExpr:
		if err := walkAggCalls(t.E, isAgg, fn); err != nil {
			return err
		}
		if err := walkAggCalls(t.Lo, isAgg, fn); err != nil {
			return err
		}
		return walkAggCalls(t.Hi, isAgg, fn)
	case *InExpr:
		if err := walkAggCalls(t.E, isAgg, fn); err != nil {
			return err
		}
		for _, item := range t.List {
			if err := walkAggCalls(item, isAgg, fn); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// astKey renders a canonical string for an expression AST, used to dedupe
// aggregate calls.
func astKey(e ExprNode) string {
	switch t := e.(type) {
	case nil:
		return "<nil>"
	case *Ident:
		return strings.ToLower(t.String())
	case *Lit:
		switch t.Kind {
		case LitString:
			return "'" + t.Str + "'"
		case LitNull:
			return "NULL"
		case LitBool:
			return strconv.FormatBool(t.Bool)
		default:
			return strconv.FormatFloat(t.Num, 'g', -1, 64)
		}
	case *BinOp:
		return "(" + astKey(t.L) + t.Op + astKey(t.R) + ")"
	case *UnOp:
		return "(" + t.Op + astKey(t.E) + ")"
	case *FuncCall:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = astKey(a)
		}
		star := ""
		if t.Star {
			star = "*"
		}
		if t.Distinct {
			star = "DISTINCT "
		}
		return strings.ToUpper(t.Name) + "(" + star + strings.Join(parts, ",") + ")"
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range t.Whens {
			b.WriteString("W" + astKey(w.Cond) + "T" + astKey(w.Then))
		}
		b.WriteString("E" + astKey(t.Else))
		return b.String()
	case *BetweenExpr:
		return "BETWEEN(" + astKey(t.E) + "," + astKey(t.Lo) + "," + astKey(t.Hi) + ")"
	case *InExpr:
		parts := make([]string, len(t.List))
		for i, a := range t.List {
			parts[i] = astKey(a)
		}
		return "IN(" + astKey(t.E) + ";" + strings.Join(parts, ",") + ")"
	case *LikeExpr:
		return "LIKE(" + astKey(t.E) + ",'" + t.Pattern + "')"
	case *Subquery:
		return "SUBQ"
	}
	return "?"
}

// aggFunc resolves an aggregate call's implementation, mapping
// COUNT(DISTINCT x) onto the COUNTD accumulator.
func (pl *Planner) aggFunc(fc *FuncCall) (*agg.Func, error) {
	name := strings.ToUpper(fc.Name)
	if fc.Distinct {
		if name != "COUNT" {
			return nil, fmt.Errorf("sql: DISTINCT is only supported inside COUNT")
		}
		name = "COUNTD"
	}
	fn, ok := pl.aggs.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sql: unknown aggregate %q", name)
	}
	return fn, nil
}

// lowerConjuncts lowers and conjoins a list of predicates.
func (pl *Planner) lowerConjuncts(conjs []ExprNode, schema rel.Schema, aggMap map[string]int, _ map[int]int) (expr.Expr, error) {
	var out expr.Expr
	for _, c := range conjs {
		e, err := pl.lowerExpr(c, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = e
		} else {
			out = expr.NewAnd(out, e)
		}
	}
	return out, nil
}

// lowerExpr lowers an AST expression against a schema. aggMap, when present,
// maps canonical aggregate-call keys to output columns (post-aggregation
// lowering for HAVING and select items).
func (pl *Planner) lowerExpr(e ExprNode, schema rel.Schema, aggMap map[string]int, _ map[int]int) (expr.Expr, error) {
	switch t := e.(type) {
	case *Ident:
		idx, err := schema.Resolve(t.Qual, t.Name)
		if err != nil {
			return nil, err
		}
		return expr.NewCol(idx, t.String(), schema[idx].Type), nil
	case *Lit:
		switch t.Kind {
		case LitNumber:
			if t.IsInt {
				return expr.NewConst(rel.Int(t.Int)), nil
			}
			return expr.NewConst(rel.Float(t.Num)), nil
		case LitString:
			return expr.NewConst(rel.String(t.Str)), nil
		case LitBool:
			return expr.NewConst(rel.Bool(t.Bool)), nil
		default:
			return expr.NewConst(rel.Null()), nil
		}
	case *BinOp:
		l, err := pl.lowerExpr(t.L, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		r, err := pl.lowerExpr(t.R, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "+":
			return expr.NewArith(expr.Add, l, r), nil
		case "-":
			return expr.NewArith(expr.Sub, l, r), nil
		case "*":
			return expr.NewArith(expr.Mul, l, r), nil
		case "/":
			return expr.NewArith(expr.Div, l, r), nil
		case "%":
			return expr.NewArith(expr.Mod, l, r), nil
		case "=":
			return expr.NewCmp(expr.Eq, l, r), nil
		case "<>":
			return expr.NewCmp(expr.Ne, l, r), nil
		case "<":
			return expr.NewCmp(expr.Lt, l, r), nil
		case "<=":
			return expr.NewCmp(expr.Le, l, r), nil
		case ">":
			return expr.NewCmp(expr.Gt, l, r), nil
		case ">=":
			return expr.NewCmp(expr.Ge, l, r), nil
		case "AND":
			return expr.NewAnd(l, r), nil
		case "OR":
			return expr.NewOr(l, r), nil
		}
		return nil, fmt.Errorf("sql: unknown operator %q", t.Op)
	case *UnOp:
		inner, err := pl.lowerExpr(t.E, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		if t.Op == "-" {
			return expr.NewNeg(inner), nil
		}
		return expr.NewNot(inner), nil
	case *FuncCall:
		if pl.isAgg(t.Name) {
			if aggMap == nil {
				return nil, fmt.Errorf("sql: aggregate %s not allowed here", t.Name)
			}
			idx, ok := aggMap[astKey(t)]
			if !ok {
				return nil, fmt.Errorf("sql: aggregate %s not collected", astKey(t))
			}
			return expr.NewCol(idx, astKey(t), rel.KFloat), nil
		}
		f, ok := pl.funcs.Lookup(t.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown function %q", t.Name)
		}
		args := make([]expr.Expr, len(t.Args))
		for i, a := range t.Args {
			arg, err := pl.lowerExpr(a, schema, aggMap, nil)
			if err != nil {
				return nil, err
			}
			args[i] = arg
		}
		return expr.NewFunc(f, args)
	case *CaseExpr:
		var pairs []expr.Expr
		for _, w := range t.Whens {
			cond, err := pl.lowerExpr(w.Cond, schema, aggMap, nil)
			if err != nil {
				return nil, err
			}
			then, err := pl.lowerExpr(w.Then, schema, aggMap, nil)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, cond, then)
		}
		var elseE expr.Expr
		if t.Else != nil {
			var err error
			elseE, err = pl.lowerExpr(t.Else, schema, aggMap, nil)
			if err != nil {
				return nil, err
			}
		}
		return expr.NewCase(pairs, elseE), nil
	case *BetweenExpr:
		v, err := pl.lowerExpr(t.E, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		lo, err := pl.lowerExpr(t.Lo, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		hi, err := pl.lowerExpr(t.Hi, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		if t.Inv {
			return expr.NewOr(expr.NewCmp(expr.Lt, v, lo), expr.NewCmp(expr.Gt, v, hi)), nil
		}
		return expr.NewAnd(expr.NewCmp(expr.Ge, v, lo), expr.NewCmp(expr.Le, v, hi)), nil
	case *InExpr:
		if t.Sub != nil {
			return nil, fmt.Errorf("sql: IN (subquery) only supported as a WHERE conjunct")
		}
		v, err := pl.lowerExpr(t.E, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(t.List))
		for i, item := range t.List {
			li, err := pl.lowerExpr(item, schema, aggMap, nil)
			if err != nil {
				return nil, err
			}
			list[i] = li
		}
		return expr.NewIn(v, list, t.Inv), nil
	case *LikeExpr:
		v, err := pl.lowerExpr(t.E, schema, aggMap, nil)
		if err != nil {
			return nil, err
		}
		f := likeFunc(t.Pattern, t.Inv)
		return expr.NewFunc(f, []expr.Expr{v})
	case *Subquery:
		return nil, fmt.Errorf("sql: scalar subquery only supported as a WHERE/HAVING comparison operand")
	}
	return nil, fmt.Errorf("sql: cannot lower %T", e)
}

// likeFunc builds an ad-hoc scalar function implementing the '%'-wildcard
// subset of LIKE.
func likeFunc(pattern string, inv bool) *expr.ScalarFunc {
	match := compileLike(pattern)
	return &expr.ScalarFunc{
		Name: "LIKE", MinArgs: 1, MaxArgs: 1, RetType: rel.KBool,
		Fn: func(args []rel.Value) rel.Value {
			if args[0].IsNull() {
				return rel.Bool(false)
			}
			return rel.Bool(match(args[0].Str()) != inv)
		},
	}
}

// compileLike supports patterns with '%' wildcards (no '_').
func compileLike(pattern string) func(string) bool {
	parts := strings.Split(pattern, "%")
	return func(s string) bool {
		if len(parts) == 1 {
			return s == pattern
		}
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
		for _, mid := range parts[1 : len(parts)-1] {
			if mid == "" {
				continue
			}
			i := strings.Index(s, mid)
			if i < 0 {
				return false
			}
			s = s[i+len(mid):]
		}
		last := parts[len(parts)-1]
		return strings.HasSuffix(s, last)
	}
}

// ---------------------------------------------------------------------------
// Subquery conjuncts (nested aggregates)

// attachSubqueryConjunct joins a WHERE conjunct containing a subquery into
// the current tree:
//
//   - x IN (SELECT ...)       -> equi-join against the deduplicated subquery
//   - e cmp (SELECT agg ...)  -> join (cross or decorrelated) + comparison
func (pl *Planner) attachSubqueryConjunct(node plan.Node, c ExprNode, outer rel.Schema) (plan.Node, error) {
	switch t := c.(type) {
	case *InExpr:
		if t.Sub == nil {
			return nil, fmt.Errorf("sql: internal: IN conjunct without subquery")
		}
		if t.Inv {
			return nil, fmt.Errorf("sql: NOT IN (subquery) requires set difference, outside the positive algebra (paper §3.3)")
		}
		id, ok := t.E.(*Ident)
		if !ok {
			return nil, fmt.Errorf("sql: IN (subquery) requires a bare column on the left")
		}
		keyIdx, err := node.Schema().Resolve(id.Qual, id.Name)
		if err != nil {
			return nil, err
		}
		sub, _, err := pl.planSelect(t.Sub, nil)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema()) != 1 {
			return nil, fmt.Errorf("sql: IN subquery must produce one column")
		}
		// Deduplicate so the join is a semijoin, then hide the key
		// column under a unique qualifier and name so it can never
		// shadow (or be ambiguous with) an outer column.
		dedup := plan.NewAggregate(sub, []int{0}, nil)
		pl.subqSeq++
		dedup.Out = dedup.Out.WithTable(fmt.Sprintf("__subq%d", pl.subqSeq))
		dedup.Out[0].Name = fmt.Sprintf("__in_key%d", pl.subqSeq)
		return plan.NewJoin(node, dedup, []int{keyIdx}, []int{0}), nil

	case *BinOp:
		ops := map[string]expr.CmpOp{"=": expr.Eq, "<>": expr.Ne, "<": expr.Lt,
			"<=": expr.Le, ">": expr.Gt, ">=": expr.Ge}
		op, ok := ops[t.Op]
		if !ok {
			return nil, fmt.Errorf("sql: unsupported subquery predicate %q", t.Op)
		}
		lhs, sub := t.L, t.R
		if _, isSub := t.L.(*Subquery); isSub {
			// Normalise: subquery on the right, flipping the operator.
			lhs, sub = t.R, t.L
			switch op {
			case expr.Lt:
				op = expr.Gt
			case expr.Le:
				op = expr.Ge
			case expr.Gt:
				op = expr.Lt
			case expr.Ge:
				op = expr.Le
			}
		}
		sq, isSub := sub.(*Subquery)
		if !isSub {
			return nil, fmt.Errorf("sql: unsupported subquery conjunct shape")
		}
		subNode, innerKeys, outerIdents, valIdx, err := pl.planScalarSubquery(sq.Stmt, node.Schema())
		if err != nil {
			return nil, err
		}
		pl.subqSeq++
		requalify(subNode, fmt.Sprintf("__subq%d", pl.subqSeq))
		outerKeys := make([]int, len(outerIdents))
		for i, oid := range outerIdents {
			idx, err := node.Schema().Resolve(oid.Qual, oid.Name)
			if err != nil {
				return nil, fmt.Errorf("sql: correlated column %s: %w", oid, err)
			}
			outerKeys[i] = idx
		}
		width := len(node.Schema())
		joined := plan.NewJoin(node, subNode, outerKeys, innerKeys)
		l, err := pl.lowerExpr(lhs, node.Schema(), nil, nil)
		if err != nil {
			return nil, err
		}
		valCol := expr.NewCol(width+valIdx, "__subval", rel.KFloat)
		return plan.NewSelect(joined, expr.NewCmp(op, l, valCol)), nil
	}
	return nil, fmt.Errorf("sql: unsupported subquery conjunct %T", c)
}

// requalify rewrites a node's visible output qualifiers and names to fresh
// ones so joined subquery columns can never shadow or be ambiguous with
// outer columns (subquery outputs are addressed positionally afterwards).
func requalify(n plan.Node, q string) {
	rename := func(s rel.Schema) rel.Schema {
		out := s.WithTable(q)
		for i := range out {
			out[i].Name = q + "_" + out[i].Name
		}
		return out
	}
	switch t := n.(type) {
	case *plan.Project:
		t.Out = rename(t.Out)
	case *plan.Aggregate:
		t.Out = rename(t.Out)
	case *plan.Scan:
		t.Out = rename(t.Out)
	case *plan.Select:
		requalify(t.Child, q)
	}
}

// attachHavingSubquery handles a HAVING conjunct containing a scalar
// subquery (e.g. TPC-H Q11): join the aggregate output with the subquery and
// filter.
func (pl *Planner) attachHavingSubquery(cur plan.Node, c ExprNode, aggMap map[string]int, _ map[int]int, _ rel.Schema) (plan.Node, error) {
	b, ok := c.(*BinOp)
	if !ok {
		return nil, fmt.Errorf("sql: unsupported HAVING subquery conjunct %T", c)
	}
	ops := map[string]expr.CmpOp{"=": expr.Eq, "<>": expr.Ne, "<": expr.Lt,
		"<=": expr.Le, ">": expr.Gt, ">=": expr.Ge}
	op, ok := ops[b.Op]
	if !ok {
		return nil, fmt.Errorf("sql: unsupported HAVING operator %q", b.Op)
	}
	lhs, sub := b.L, b.R
	if _, isSub := b.L.(*Subquery); isSub {
		lhs, sub = b.R, b.L
		switch op {
		case expr.Lt:
			op = expr.Gt
		case expr.Le:
			op = expr.Ge
		case expr.Gt:
			op = expr.Lt
		case expr.Ge:
			op = expr.Le
		}
	}
	sq, isSub := sub.(*Subquery)
	if !isSub {
		return nil, fmt.Errorf("sql: HAVING conjunct must compare against a scalar subquery")
	}
	subNode, _, err := pl.planSelect(sq.Stmt, nil)
	if err != nil {
		return nil, err
	}
	if len(subNode.Schema()) != 1 {
		return nil, fmt.Errorf("sql: scalar subquery must produce one column")
	}
	pl.subqSeq++
	requalify(subNode, fmt.Sprintf("__subq%d", pl.subqSeq))
	width := len(cur.Schema())
	joined := plan.NewJoin(cur, subNode, nil, nil)
	l, err := pl.lowerExpr(lhs, cur.Schema(), aggMap, nil)
	if err != nil {
		return nil, err
	}
	valCol := expr.NewCol(width, "__subval", rel.KFloat)
	return plan.NewSelect(joined, expr.NewCmp(op, l, valCol)), nil
}

// planScalarSubquery plans a scalar subquery. Uncorrelated subqueries use
// the full planner recursively (cross join at the caller). Subqueries with
// equality correlation to the outer scope are decorrelated (Appendix B,
// Eq. 4): correlation columns become group-by keys, and the caller joins on
// them. Returns (plan, inner join key columns, outer correlated idents,
// value column index).
func (pl *Planner) planScalarSubquery(stmt *SelectStmt, outer rel.Schema) (plan.Node, []int, []*Ident, int, error) {
	if stmt.UnionAll != nil || stmt.Having != nil || len(stmt.GroupBy) > 0 {
		// Uncorrelated general form only.
		node, _, err := pl.planSelect(stmt, nil)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if len(node.Schema()) != 1 {
			return nil, nil, nil, 0, fmt.Errorf("sql: scalar subquery must produce one column")
		}
		return node, nil, nil, 0, nil
	}
	// Detect correlation by probing the WHERE conjuncts against the
	// subquery's own FROM schema.
	entries := make([]plan.Node, len(stmt.From))
	inner := rel.Schema{}
	for i, ref := range stmt.From {
		n, err := pl.planTableRef(ref, nil)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		entries[i] = n
		inner = inner.Concat(n.Schema())
	}
	type corr struct {
		innerID *Ident
		outerID *Ident
	}
	var corrs []corr
	var innerConjs []ExprNode
	for _, c := range splitConjuncts(stmt.Where) {
		if _, err := pl.lowerExpr(c, inner, nil, nil); err == nil {
			innerConjs = append(innerConjs, c)
			continue
		}
		// Correlated pattern: innerCol = outerCol (either order).
		b, ok := c.(*BinOp)
		if ok && b.Op == "=" {
			li, lok := b.L.(*Ident)
			ri, rok := b.R.(*Ident)
			if lok && rok {
				_, lInnerErr := inner.Resolve(li.Qual, li.Name)
				_, rInnerErr := inner.Resolve(ri.Qual, ri.Name)
				_, lOuterErr := outer.Resolve(li.Qual, li.Name)
				_, rOuterErr := outer.Resolve(ri.Qual, ri.Name)
				switch {
				case lInnerErr == nil && rOuterErr == nil:
					corrs = append(corrs, corr{innerID: li, outerID: ri})
					continue
				case rInnerErr == nil && lOuterErr == nil:
					corrs = append(corrs, corr{innerID: ri, outerID: li})
					continue
				}
			}
		}
		return nil, nil, nil, 0, fmt.Errorf("sql: unsupported correlated predicate %s", astKey(c))
	}
	if len(corrs) == 0 {
		// Uncorrelated after all: recurse with the full planner.
		node, _, err := pl.planSelect(stmt, nil)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		if len(node.Schema()) != 1 {
			return nil, nil, nil, 0, fmt.Errorf("sql: scalar subquery must produce one column")
		}
		return node, nil, nil, 0, nil
	}
	// Correlated: rebuild the inner tree, then group by the correlation
	// columns (decorrelation).
	synthetic := &SelectStmt{From: stmt.From, Limit: -1}
	for _, c := range innerConjs {
		synthetic.Where = conjoin(synthetic.Where, c)
	}
	synthetic.Items = []SelectItem{{Expr: &Lit{Kind: LitNumber}}} // placeholder
	base, err := pl.planFromJoin(synthetic, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	baseSchema := base.Schema()
	groupIdx := make([]int, len(corrs))
	for i, cr := range corrs {
		idx, err := baseSchema.Resolve(cr.innerID.Qual, cr.innerID.Name)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		groupIdx[i] = idx
	}
	// The select item must contain exactly one aggregate call; the value
	// expression re-applies any surrounding arithmetic over it.
	if len(stmt.Items) != 1 {
		return nil, nil, nil, 0, fmt.Errorf("sql: scalar subquery must have one select item")
	}
	item := stmt.Items[0].Expr
	var calls []*FuncCall
	if err := walkAggCalls(item, pl.isAgg, func(fc *FuncCall) error {
		calls = append(calls, fc)
		return nil
	}); err != nil {
		return nil, nil, nil, 0, err
	}
	if len(calls) == 0 {
		return nil, nil, nil, 0, fmt.Errorf("sql: correlated scalar subquery must aggregate")
	}
	var specs []plan.AggSpec
	aggMap := map[string]int{}
	for _, fc := range calls {
		key := astKey(fc)
		if _, ok := aggMap[key]; ok {
			continue
		}
		fn, err := pl.aggFunc(fc)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		spec := plan.AggSpec{Fn: fn, Name: fmt.Sprintf("sub_%s_%d", strings.ToLower(fn.Name), len(specs))}
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, nil, nil, 0, fmt.Errorf("sql: aggregate %s takes one argument", fc.Name)
			}
			arg, err := pl.lowerExpr(fc.Args[0], baseSchema, nil, nil)
			if err != nil {
				return nil, nil, nil, 0, err
			}
			spec.Arg = arg
		}
		aggMap[key] = len(groupIdx) + len(specs)
		specs = append(specs, spec)
	}
	aggNode := plan.NewAggregate(base, groupIdx, specs)
	// Project: [group keys..., value expression].
	exprs := make([]expr.Expr, 0, len(groupIdx)+1)
	names := make([]string, 0, len(groupIdx)+1)
	for i := range groupIdx {
		c := aggNode.Schema()[i]
		exprs = append(exprs, expr.NewCol(i, c.Name, c.Type))
		names = append(names, c.Name)
	}
	valExpr, err := pl.lowerExpr(item, aggNode.Schema(), aggMap, nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	exprs = append(exprs, valExpr)
	names = append(names, "subval")
	proj := plan.NewProject(aggNode, exprs, names)
	innerKeys := make([]int, len(corrs))
	outerIdents := make([]*Ident, len(corrs))
	for i, cr := range corrs {
		innerKeys[i] = i
		outerIdents[i] = cr.outerID
	}
	return proj, innerKeys, outerIdents, len(corrs), nil
}
