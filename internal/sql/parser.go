package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement (optionally a UNION ALL chain).
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("trailing input starting with %q", p.cur().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return Token{}, p.errf("expected %s, got %q", want, p.cur().Text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().Pos,
		fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	p.accept(TokKeyword, "DISTINCT") // tolerated; dedup via GROUP BY shape
	// Select list.
	for {
		if p.accept(TokOp, "*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
			if !p.accept(TokOp, ",") {
				break
			}
			continue
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e}
		if p.accept(TokKeyword, "AS") {
			t, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			item.Alias = t.Text
		} else if p.at(TokIdent, "") {
			item.Alias = p.next().Text
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	// FROM.
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		refs, joinOn, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, refs...)
		// Explicit JOIN ... ON chains desugar to comma-FROM + WHERE.
		for _, on := range joinOn {
			stmt.Where = conjoin(stmt.Where, on)
		}
		if !p.accept(TokOp, ",") {
			break
		}
	}
	// WHERE.
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = conjoin(stmt.Where, e)
	}
	// GROUP BY.
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	// HAVING.
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	// ORDER BY.
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	// LIMIT.
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	// UNION ALL chain.
	if p.accept(TokKeyword, "UNION") {
		if _, err := p.expect(TokKeyword, "ALL"); err != nil {
			return nil, p.errf("only UNION ALL is supported (positive algebra)")
		}
		rest, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.UnionAll = rest
	}
	return stmt, nil
}

// parseTableRef parses one FROM entry plus any explicit JOIN ... ON chain
// hanging off it. Chained join operands flatten into the FROM list and their
// ON conditions desugar into WHERE conjuncts (the planner re-extracts
// equi-join keys from the WHERE clause).
func (p *parser) parseTableRef() ([]TableRef, []ExprNode, error) {
	ref, err := p.parseSingleRef()
	if err != nil {
		return nil, nil, err
	}
	refs := []TableRef{ref}
	var ons []ExprNode
	for {
		p.accept(TokKeyword, "INNER")
		if !p.accept(TokKeyword, "JOIN") {
			break
		}
		right, err := p.parseSingleRef()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(TokKeyword, "ON"); err != nil {
			return nil, nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		refs = append(refs, right)
		ons = append(ons, cond)
	}
	return refs, ons, nil
}

func (p *parser) parseSingleRef() (TableRef, error) {
	if p.accept(TokOp, "(") {
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Subquery: sub}
		p.accept(TokKeyword, "AS")
		if p.at(TokIdent, "") {
			ref.Alias = p.next().Text
		} else {
			return TableRef{}, p.errf("derived table requires an alias")
		}
		return ref, nil
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: t.Text, Alias: t.Text}
	p.accept(TokKeyword, "AS")
	if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func conjoin(a, b ExprNode) ExprNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &BinOp{Op: "AND", L: a, R: b}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() (ExprNode, error) { return p.parseOr() }

func (p *parser) parseOr() (ExprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ExprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (ExprNode, error) {
	if p.accept(TokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (ExprNode, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// NOT IN / NOT BETWEEN / NOT LIKE
	inv := false
	if p.at(TokKeyword, "NOT") {
		nt := p.toks[p.pos+1]
		if nt.Kind == TokKeyword && (nt.Text == "IN" || nt.Text == "BETWEEN" || nt.Text == "LIKE") {
			p.next()
			inv = true
		}
	}
	switch {
	case p.accept(TokKeyword, "IN"):
		if _, err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		if p.at(TokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &InExpr{E: l, Sub: sub, Inv: inv}, nil
		}
		var list []ExprNode
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Inv: inv}, nil
	case p.accept(TokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Inv: inv}, nil
	case p.accept(TokKeyword, "LIKE"):
		t, err := p.expect(TokString, "")
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: t.Text, Inv: inv}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(TokOp, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (ExprNode, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokOp, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "+", L: l, R: r}
		case p.accept(TokOp, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (ExprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "*", L: l, R: r}
		case p.accept(TokOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "/", L: l, R: r}
		case p.accept(TokOp, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (ExprNode, error) {
	if p.accept(TokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ExprNode, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if !strings.ContainsAny(t.Text, ".eE") {
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err == nil {
				return &Lit{Kind: LitNumber, IsInt: true, Int: n, Num: float64(n)}, nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Lit{Kind: LitNumber, Num: f}, nil
	case t.Kind == TokString:
		p.next()
		return &Lit{Kind: LitString, Str: t.Text}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &Lit{Kind: LitNull}, nil
	case t.Kind == TokKeyword && (t.Text == "TRUE" || t.Text == "FALSE"):
		p.next()
		return &Lit{Kind: LitBool, Bool: t.Text == "TRUE"}, nil
	case t.Kind == TokKeyword && t.Text == "CASE":
		return p.parseCase()
	case t.Kind == TokOp && t.Text == "(":
		p.next()
		if p.at(TokKeyword, "SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &Subquery{Stmt: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		// Function call?
		if p.accept(TokOp, "(") {
			call := &FuncCall{Name: t.Text}
			if p.accept(TokOp, "*") {
				call.Star = true
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.accept(TokKeyword, "DISTINCT") {
				call.Distinct = true
			}
			if !p.accept(TokOp, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if _, err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(TokOp, ".") {
			c, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &Ident{Qual: t.Text, Name: c.Text}, nil
		}
		return &Ident{Name: t.Text}, nil
	}
	return nil, p.errf("unexpected token %q", t.Text)
}

func (p *parser) parseCase() (ExprNode, error) {
	if _, err := p.expect(TokKeyword, "CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return c, nil
}
