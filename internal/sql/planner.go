package sql

import (
	"fmt"
	"sort"
	"strings"

	"iolap/internal/agg"
	"iolap/internal/bootstrap"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// Catalog holds table schemas and the set of streamed tables (the paper lets
// the user specify which input relations are processed online; typically the
// fact table — Section 2).
type Catalog struct {
	schemas  map[string]rel.Schema
	streamed map[string]bool
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{schemas: make(map[string]rel.Schema), streamed: make(map[string]bool)}
}

// AddTable registers a table schema; streamed tables are processed in
// mini-batches, others read fully at batch 1.
func (c *Catalog) AddTable(name string, schema rel.Schema, streamed bool) {
	key := strings.ToLower(name)
	c.schemas[key] = schema
	c.streamed[key] = streamed
}

// Schema looks up a table schema.
func (c *Catalog) Schema(name string) (rel.Schema, bool) {
	s, ok := c.schemas[strings.ToLower(name)]
	return s, ok
}

// Streamed reports whether the table is processed online.
func (c *Catalog) Streamed(name string) bool {
	return c.streamed[strings.ToLower(name)]
}

// PostProcess carries ORDER BY / LIMIT, applied to materialised results
// outside the incremental plan (ordering is presentation, not algebra).
type PostProcess struct {
	Keys  []OrderKey
	Limit int // -1 when absent
}

// OrderKey is one ORDER BY column resolved to an output position.
type OrderKey struct {
	Col  int
	Desc bool
}

// Apply sorts and truncates a materialised result in place and returns it.
func (pp *PostProcess) Apply(r *rel.Relation) *rel.Relation {
	if pp == nil {
		return r
	}
	if len(pp.Keys) > 0 {
		sort.SliceStable(r.Tuples, func(i, j int) bool {
			for _, k := range pp.Keys {
				c := r.Tuples[i].Vals[k.Col].Compare(r.Tuples[j].Vals[k.Col])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if pp.Limit >= 0 && pp.Limit < len(r.Tuples) {
		r.Tuples = r.Tuples[:pp.Limit]
	}
	return r
}

// ApplyWithEstimates is Apply for an incremental result whose rows carry
// aligned bootstrap error estimates: the estimate rows are sorted and
// truncated alongside the tuples, so estimate [i][j] keeps describing row i
// after ORDER BY / LIMIT. The inputs are not modified; a nil or no-op
// post-process returns them unchanged.
func (pp *PostProcess) ApplyWithEstimates(r *rel.Relation, ests [][]bootstrap.Estimate) (*rel.Relation, [][]bootstrap.Estimate) {
	if pp == nil || (len(pp.Keys) == 0 && pp.Limit < 0) {
		return r, ests
	}
	type pair struct {
		t rel.Tuple
		e []bootstrap.Estimate
	}
	pairs := make([]pair, r.Len())
	for i, t := range r.Tuples {
		var e []bootstrap.Estimate
		if i < len(ests) {
			e = ests[i]
		}
		pairs[i] = pair{t: t, e: e}
	}
	if len(pp.Keys) > 0 {
		sort.SliceStable(pairs, func(i, j int) bool {
			a, b := pairs[i], pairs[j]
			for _, k := range pp.Keys {
				c := a.t.Vals[k.Col].Compare(b.t.Vals[k.Col])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	limit := len(pairs)
	if pp.Limit >= 0 && pp.Limit < limit {
		limit = pp.Limit
	}
	out := rel.NewRelation(r.Schema)
	var outE [][]bootstrap.Estimate
	for _, p := range pairs[:limit] {
		out.Tuples = append(out.Tuples, p.t)
		outE = append(outE, p.e)
	}
	return out, outE
}

// Planner lowers parsed statements onto logical plans.
type Planner struct {
	cat     *Catalog
	funcs   *expr.Registry
	aggs    *agg.Registry
	subqSeq int // suffix source for generated subquery qualifiers
}

// NewPlanner builds a planner over a catalog and function registries.
func NewPlanner(cat *Catalog, funcs *expr.Registry, aggs *agg.Registry) *Planner {
	return &Planner{cat: cat, funcs: funcs, aggs: aggs}
}

// Plan lowers a statement to a finalized, validated plan plus its
// post-processing spec.
func (pl *Planner) Plan(stmt *SelectStmt) (plan.Node, *PostProcess, error) {
	node, pp, err := pl.planSelect(stmt, nil)
	if err != nil {
		return nil, nil, err
	}
	plan.Finalize(node)
	if err := plan.Validate(node); err != nil {
		return nil, nil, err
	}
	return node, pp, nil
}

func (pl *Planner) isAgg(name string) bool {
	_, ok := pl.aggs.Lookup(name)
	return ok
}

// planSelect lowers one SELECT (and any UNION ALL chain). outer is the
// enclosing scope schema for correlated subqueries (nil at top level).
func (pl *Planner) planSelect(stmt *SelectStmt, outer rel.Schema) (plan.Node, *PostProcess, error) {
	node, err := pl.planSingle(stmt, outer)
	if err != nil {
		return nil, nil, err
	}
	for u := stmt.UnionAll; u != nil; u = u.UnionAll {
		right, err := pl.planSingle(u, outer)
		if err != nil {
			return nil, nil, err
		}
		if !node.Schema().Equal(right.Schema()) {
			return nil, nil, fmt.Errorf("sql: UNION ALL schema mismatch: %s vs %s",
				node.Schema(), right.Schema())
		}
		node = plan.NewUnion(node, right)
	}
	pp := &PostProcess{Limit: stmt.Limit}
	for _, o := range stmt.OrderBy {
		idx, err := pl.resolveOrderKey(o.Expr, node.Schema(), stmt)
		if err != nil {
			return nil, nil, err
		}
		pp.Keys = append(pp.Keys, OrderKey{Col: idx, Desc: o.Desc})
	}
	return node, pp, nil
}

func (pl *Planner) resolveOrderKey(e ExprNode, out rel.Schema, stmt *SelectStmt) (int, error) {
	id, ok := e.(*Ident)
	if !ok {
		return 0, fmt.Errorf("sql: ORDER BY supports output column names only")
	}
	if idx, err := out.Resolve(id.Qual, id.Name); err == nil {
		return idx, nil
	}
	// Fall back to select-item position by alias.
	for i, item := range stmt.Items {
		if strings.EqualFold(item.Alias, id.Name) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sql: unknown ORDER BY column %q", id)
}

// planSingle lowers one SELECT block (no UNION chain).
func (pl *Planner) planSingle(stmt *SelectStmt, outer rel.Schema) (plan.Node, error) {
	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("sql: empty select list")
	}
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sql: FROM is required")
	}
	// 1. FROM nodes.
	node, err := pl.planFromJoin(stmt, outer)
	if err != nil {
		return nil, err
	}
	return pl.finishSelect(stmt, node, outer)
}

// planFromJoin builds the join tree over the FROM list, consuming equi-join
// and residual WHERE conjuncts; subquery conjuncts are attached afterwards.
func (pl *Planner) planFromJoin(stmt *SelectStmt, outer rel.Schema) (plan.Node, error) {
	type fromEntry struct {
		node plan.Node
	}
	entries := make([]fromEntry, len(stmt.From))
	for i, ref := range stmt.From {
		n, err := pl.planTableRef(ref, outer)
		if err != nil {
			return nil, err
		}
		entries[i] = fromEntry{node: n}
	}
	conjuncts := splitConjuncts(stmt.Where)
	// Classify conjuncts.
	var joinPreds []*BinOp
	var residual []ExprNode
	var subqueryConjs []ExprNode
	fullSchema := rel.Schema{}
	var offsets []int
	for _, e := range entries {
		offsets = append(offsets, len(fullSchema))
		fullSchema = fullSchema.Concat(e.node.Schema())
	}
	tableIdx := func(col int) int {
		for i := len(offsets) - 1; i >= 0; i-- {
			if col >= offsets[i] {
				return i
			}
		}
		return -1
	}
	for _, c := range conjuncts {
		if hasSubquery(c) {
			subqueryConjs = append(subqueryConjs, c)
			continue
		}
		if b, ok := c.(*BinOp); ok && b.Op == "=" {
			li, lok := b.L.(*Ident)
			ri, rok := b.R.(*Ident)
			if lok && rok {
				lIdx, lErr := fullSchema.Resolve(li.Qual, li.Name)
				rIdx, rErr := fullSchema.Resolve(ri.Qual, ri.Name)
				if lErr == nil && rErr == nil &&
					tableIdx(lIdx) != tableIdx(rIdx) {
					joinPreds = append(joinPreds, b)
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	// 2. Left-deep join, greedily preferring tables connected to the
	// current tree by an equi-join predicate (avoids accidental cross
	// joins from unfavourable FROM order, e.g. TPC-H Q7).
	node := entries[0].node
	used := make([]bool, len(joinPreds))
	joined := make([]bool, len(entries))
	joined[0] = true
	// matchKeys collects the unused join predicates connecting the
	// current tree to candidate right (marking them used on success).
	matchKeys := func(rightSchema rel.Schema, commit bool) ([]int, []int) {
		var lKeys, rKeys []int
		for pi, jp := range joinPreds {
			if used[pi] {
				continue
			}
			li := jp.L.(*Ident)
			ri := jp.R.(*Ident)
			// Try left-in-tree / right-in-new and the swap.
			if lIdx, err := node.Schema().Resolve(li.Qual, li.Name); err == nil {
				if rIdx, err2 := rightSchema.Resolve(ri.Qual, ri.Name); err2 == nil {
					lKeys = append(lKeys, lIdx)
					rKeys = append(rKeys, rIdx)
					if commit {
						used[pi] = true
					}
					continue
				}
			}
			if lIdx, err := node.Schema().Resolve(ri.Qual, ri.Name); err == nil {
				if rIdx, err2 := rightSchema.Resolve(li.Qual, li.Name); err2 == nil {
					lKeys = append(lKeys, lIdx)
					rKeys = append(rKeys, rIdx)
					if commit {
						used[pi] = true
					}
					continue
				}
			}
		}
		return lKeys, rKeys
	}
	for remaining := len(entries) - 1; remaining > 0; remaining-- {
		// Prefer a connected table; fall back to FROM order (cross join).
		pick := -1
		for i, e := range entries {
			if joined[i] {
				continue
			}
			if lk, _ := matchKeys(e.node.Schema(), false); len(lk) > 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := range entries {
				if !joined[i] {
					pick = i
					break
				}
			}
		}
		right := entries[pick].node
		lKeys, rKeys := matchKeys(right.Schema(), true)
		node = plan.NewJoin(node, right, lKeys, rKeys)
		joined[pick] = true
	}
	for pi, jp := range joinPreds {
		if !used[pi] {
			// A join predicate that did not fit the left-deep order
			// becomes a residual filter.
			residual = append(residual, jp)
		}
	}
	// 3. Residual filters (deterministic, pre-subquery).
	if len(residual) > 0 {
		pred, err := pl.lowerConjuncts(residual, node.Schema(), nil, nil)
		if err != nil {
			return nil, err
		}
		node = plan.NewSelect(node, pred)
	}
	// 4. Subquery conjuncts (nested aggregates): each one joins the
	// subquery's aggregate output into the tree, Figure 2(a) style.
	for _, c := range subqueryConjs {
		var err error
		node, err = pl.attachSubqueryConjunct(node, c, outer)
		if err != nil {
			return nil, err
		}
	}
	return node, nil
}

// finishSelect applies aggregation, HAVING and the final projection.
func (pl *Planner) finishSelect(stmt *SelectStmt, node plan.Node, outer rel.Schema) (plan.Node, error) {
	inSchema := node.Schema()
	// Expand SELECT * into one item per visible column. Columns
	// synthesised by subquery compilation are hidden.
	if hasStar(stmt.Items) {
		var items []SelectItem
		for _, item := range stmt.Items {
			if !item.Star {
				items = append(items, item)
				continue
			}
			for _, c := range inSchema {
				if strings.HasPrefix(c.Table, "__subq") || strings.HasPrefix(c.Name, "__") {
					continue
				}
				items = append(items, SelectItem{
					Expr:  &Ident{Qual: c.Table, Name: c.Name},
					Alias: c.Name,
				})
			}
		}
		stmt = &SelectStmt{
			Items: items, From: stmt.From, Where: stmt.Where,
			GroupBy: stmt.GroupBy, Having: stmt.Having,
			OrderBy: stmt.OrderBy, Limit: stmt.Limit,
		}
	}
	needsAgg := len(stmt.GroupBy) > 0
	for _, item := range stmt.Items {
		if containsAggregate(item.Expr, pl.isAgg) {
			needsAgg = true
		}
	}
	if stmt.Having != nil && !needsAgg {
		return nil, fmt.Errorf("sql: HAVING requires aggregation")
	}
	if !needsAgg {
		// Plain projection.
		exprs := make([]expr.Expr, len(stmt.Items))
		names := make([]string, len(stmt.Items))
		for i, item := range stmt.Items {
			e, err := pl.lowerExpr(item.Expr, inSchema, nil, nil)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
			names[i] = itemName(item, i)
		}
		return plan.NewProject(node, exprs, names), nil
	}
	// Group-by keys: bare columns group directly; computed expressions are
	// pre-projected into synthetic columns (the keys must be deterministic
	// either way, paper §3.3). Select items that syntactically match a
	// computed group expression are mapped onto the projected column.
	groupIdx := make([]int, len(stmt.GroupBy))
	groupExprMap := map[string]int{} // astKey(group expr) -> group position
	var computed []ExprNode
	for i, g := range stmt.GroupBy {
		if id, ok := g.(*Ident); ok {
			idx, err := inSchema.Resolve(id.Qual, id.Name)
			if err != nil {
				return nil, err
			}
			groupIdx[i] = idx
			continue
		}
		if containsAggregate(g, pl.isAgg) || hasSubquery(g) {
			return nil, fmt.Errorf("sql: GROUP BY expression may not aggregate or nest subqueries")
		}
		groupIdx[i] = len(inSchema) + len(computed)
		groupExprMap[astKey(g)] = i
		computed = append(computed, g)
	}
	if len(computed) > 0 {
		exprs := make([]expr.Expr, 0, len(inSchema)+len(computed))
		names := make([]string, 0, len(inSchema)+len(computed))
		for i, c := range inSchema {
			exprs = append(exprs, expr.NewCol(i, c.QualifiedName(), c.Type))
			names = append(names, c.Name)
		}
		for j, g := range computed {
			e, err := pl.lowerExpr(g, inSchema, nil, nil)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
			names = append(names, fmt.Sprintf("__grp%d", j))
		}
		proj := plan.NewProject(node, exprs, names)
		// Keep the original qualifiers for the passthrough columns so
		// later name resolution still works.
		for i, c := range inSchema {
			proj.Out[i].Table = c.Table
		}
		node = proj
		inSchema = node.Schema()
	}
	// Collect aggregate calls from select items and HAVING.
	aggCalls := map[string]int{} // canonical key -> spec index
	var specs []plan.AggSpec
	collect := func(e ExprNode) error {
		return walkAggCalls(e, pl.isAgg, func(fc *FuncCall) error {
			key := astKey(fc)
			if _, ok := aggCalls[key]; ok {
				return nil
			}
			fn, err := pl.aggFunc(fc)
			if err != nil {
				return err
			}
			spec := plan.AggSpec{Fn: fn, Name: fmt.Sprintf("%s_%d", strings.ToLower(fn.Name), len(specs))}
			if fc.Star {
				if fn.Name != "COUNT" {
					return fmt.Errorf("sql: %s(*) is not valid", fn.Name)
				}
			} else {
				if len(fc.Args) != 1 {
					return fmt.Errorf("sql: aggregate %s takes one argument", fn.Name)
				}
				arg, err := pl.lowerExpr(fc.Args[0], inSchema, nil, nil)
				if err != nil {
					return err
				}
				spec.Arg = arg
			}
			aggCalls[key] = len(specs)
			specs = append(specs, spec)
			return nil
		})
	}
	for _, item := range stmt.Items {
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, err
		}
	}
	if len(specs) == 0 {
		// GROUP BY with no aggregates = DISTINCT over the group columns.
		specs = nil
	}
	aggNode := plan.NewAggregate(node, groupIdx, specs)
	var cur plan.Node = aggNode
	// Post-aggregation lowering maps: aggregate call -> output col,
	// group-by source col -> output col.
	aggMap := map[string]int{}
	for key, si := range aggCalls {
		aggMap[key] = len(groupIdx) + si
	}
	groupMap := map[int]int{}
	for outPos, srcIdx := range groupIdx {
		groupMap[srcIdx] = outPos
	}
	// HAVING: may itself contain scalar subqueries (e.g. TPC-H Q11).
	if stmt.Having != nil {
		havingConjs := splitConjuncts(stmt.Having)
		var plainConjs []ExprNode
		for _, c := range havingConjs {
			if hasSubquery(c) {
				var err error
				cur, err = pl.attachHavingSubquery(cur, c, aggMap, groupMap, inSchema)
				if err != nil {
					return nil, err
				}
			} else {
				plainConjs = append(plainConjs, c)
			}
		}
		if len(plainConjs) > 0 {
			pred, err := pl.lowerConjuncts(plainConjs, cur.Schema(), aggMap, groupMap)
			if err != nil {
				return nil, err
			}
			cur = plan.NewSelect(cur, pred)
		}
	}
	// Final projection over the aggregate output.
	exprs := make([]expr.Expr, len(stmt.Items))
	names := make([]string, len(stmt.Items))
	for i, item := range stmt.Items {
		if pos, ok := groupExprMap[astKey(item.Expr)]; ok {
			// The item is (syntactically) a computed group expression:
			// read the group key column directly.
			c := cur.Schema()[pos]
			exprs[i] = expr.NewCol(pos, c.Name, c.Type)
			names[i] = itemName(item, i)
			continue
		}
		e, err := pl.lowerExpr(item.Expr, cur.Schema(), aggMap, groupMap)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
		names[i] = itemName(item, i)
	}
	return plan.NewProject(cur, exprs, names), nil
}

func hasStar(items []SelectItem) bool {
	for _, item := range items {
		if item.Star {
			return true
		}
	}
	return false
}

func itemName(item SelectItem, i int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if id, ok := item.Expr.(*Ident); ok {
		return id.Name
	}
	if fc, ok := item.Expr.(*FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return fmt.Sprintf("col%d", i)
}

// planTableRef lowers one FROM entry.
func (pl *Planner) planTableRef(ref TableRef, outer rel.Schema) (plan.Node, error) {
	if ref.Subquery != nil {
		sub, _, err := pl.planSelect(ref.Subquery, outer)
		if err != nil {
			return nil, err
		}
		// Requalify the derived table's output columns with its alias.
		proj, ok := sub.(*plan.Project)
		if !ok {
			exprs := make([]expr.Expr, len(sub.Schema()))
			names := make([]string, len(sub.Schema()))
			for i, c := range sub.Schema() {
				exprs[i] = expr.NewCol(i, c.Name, c.Type)
				names[i] = c.Name
			}
			proj = plan.NewProject(sub, exprs, names)
		}
		proj.Out = proj.Out.WithTable(ref.Alias)
		return proj, nil
	}
	schema, ok := pl.cat.Schema(ref.Table)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", ref.Table)
	}
	return plan.NewScan(strings.ToLower(ref.Table), ref.Alias, schema, pl.cat.Streamed(ref.Table)), nil
}
