package sql

import "strings"

// The AST mirrors the supported SQL surface. Expression nodes are untyped;
// the planner resolves names and lowers them to internal/expr.

// Node is any AST node (marker).
type Node interface{ astNode() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   ExprNode
	GroupBy []ExprNode
	Having  ExprNode
	OrderBy []OrderItem
	Limit   int // -1 when absent
	// UnionAll chains another SELECT with bag-union semantics.
	UnionAll *SelectStmt
}

func (*SelectStmt) astNode() {}

// SelectItem is one output expression with an optional alias; Star marks
// SELECT *.
type SelectItem struct {
	Expr  ExprNode
	Alias string
	Star  bool
}

// TableRef is one FROM entry: either a named table or a derived table.
type TableRef struct {
	Table    string
	Alias    string
	Subquery *SelectStmt // non-nil for derived tables
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr ExprNode
	Desc bool
}

// ExprNode is an expression AST node.
type ExprNode interface {
	Node
	exprNode()
}

// Ident is a possibly-qualified column reference.
type Ident struct {
	Qual string // table or alias; may be empty
	Name string
}

func (*Ident) astNode()  {}
func (*Ident) exprNode() {}

func (id *Ident) String() string {
	if id.Qual == "" {
		return id.Name
	}
	return id.Qual + "." + id.Name
}

// Lit is a literal: number, string, boolean or NULL.
type Lit struct {
	Num   float64
	IsInt bool
	Int   int64
	Str   string
	Bool  bool
	Kind  LitKind
}

// LitKind discriminates literal types.
type LitKind uint8

// Literal kinds.
const (
	LitNumber LitKind = iota
	LitString
	LitBool
	LitNull
)

func (*Lit) astNode()  {}
func (*Lit) exprNode() {}

// BinOp is a binary operator application (arithmetic, comparison, logic).
type BinOp struct {
	Op   string // "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R ExprNode
}

func (*BinOp) astNode()  {}
func (*BinOp) exprNode() {}

// UnOp is unary minus or NOT.
type UnOp struct {
	Op string // "-", "NOT"
	E  ExprNode
}

func (*UnOp) astNode()  {}
func (*UnOp) exprNode() {}

// FuncCall is a scalar or aggregate function call; Star marks COUNT(*),
// Distinct marks COUNT(DISTINCT x).
type FuncCall struct {
	Name     string
	Args     []ExprNode
	Star     bool
	Distinct bool
}

func (*FuncCall) astNode()  {}
func (*FuncCall) exprNode() {}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []WhenClause
	Else  ExprNode
}

// WhenClause is one WHEN...THEN arm.
type WhenClause struct {
	Cond ExprNode
	Then ExprNode
}

func (*CaseExpr) astNode()  {}
func (*CaseExpr) exprNode() {}

// InExpr tests membership in a literal list or a subquery.
type InExpr struct {
	E    ExprNode
	List []ExprNode  // non-empty for IN (a, b, ...)
	Sub  *SelectStmt // non-nil for IN (SELECT ...)
	Inv  bool        // NOT IN (lists only; NOT IN subquery needs set difference)
}

func (*InExpr) astNode()  {}
func (*InExpr) exprNode() {}

// BetweenExpr is x BETWEEN lo AND hi (sugar for two comparisons).
type BetweenExpr struct {
	E, Lo, Hi ExprNode
	Inv       bool
}

func (*BetweenExpr) astNode()  {}
func (*BetweenExpr) exprNode() {}

// Subquery is a scalar subquery used as an expression operand.
type Subquery struct {
	Stmt *SelectStmt
}

func (*Subquery) astNode()  {}
func (*Subquery) exprNode() {}

// LikeExpr is a simple LIKE pattern match ('%' wildcards only).
type LikeExpr struct {
	E       ExprNode
	Pattern string
	Inv     bool
}

func (*LikeExpr) astNode()  {}
func (*LikeExpr) exprNode() {}

// containsAggregate reports whether the expression contains an aggregate
// call, consulting isAgg for UDAF names.
func containsAggregate(e ExprNode, isAgg func(name string) bool) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *Ident, *Lit, *Subquery:
		return false
	case *FuncCall:
		if isAgg(strings.ToUpper(t.Name)) {
			return true
		}
		for _, a := range t.Args {
			if containsAggregate(a, isAgg) {
				return true
			}
		}
		return false
	case *BinOp:
		return containsAggregate(t.L, isAgg) || containsAggregate(t.R, isAgg)
	case *UnOp:
		return containsAggregate(t.E, isAgg)
	case *CaseExpr:
		for _, w := range t.Whens {
			if containsAggregate(w.Cond, isAgg) || containsAggregate(w.Then, isAgg) {
				return true
			}
		}
		return containsAggregate(t.Else, isAgg)
	case *InExpr:
		if containsAggregate(t.E, isAgg) {
			return true
		}
		for _, item := range t.List {
			if containsAggregate(item, isAgg) {
				return true
			}
		}
		return false
	case *BetweenExpr:
		return containsAggregate(t.E, isAgg) || containsAggregate(t.Lo, isAgg) ||
			containsAggregate(t.Hi, isAgg)
	case *LikeExpr:
		return containsAggregate(t.E, isAgg)
	}
	return false
}
