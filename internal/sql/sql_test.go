package sql

import (
	"math"
	"strings"
	"testing"

	"iolap/internal/agg"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

func testCatalog() *Catalog {
	cat := NewCatalog()
	cat.AddTable("sessions", rel.Schema{
		{Name: "session_id", Type: rel.KString},
		{Name: "buffer_time", Type: rel.KFloat},
		{Name: "play_time", Type: rel.KFloat},
		{Name: "cdn", Type: rel.KString},
	}, true)
	cat.AddTable("cdns", rel.Schema{
		{Name: "cdn", Type: rel.KString},
		{Name: "region", Type: rel.KString},
	}, false)
	return cat
}

func testPlanner() *Planner {
	return NewPlanner(testCatalog(), expr.NewRegistry(), agg.NewRegistry())
}

func testDB() *exec.DB {
	db := exec.NewDB()
	sessions := rel.NewRelation(rel.Schema{
		{Name: "session_id", Type: rel.KString},
		{Name: "buffer_time", Type: rel.KFloat},
		{Name: "play_time", Type: rel.KFloat},
		{Name: "cdn", Type: rel.KString},
	})
	add := func(id string, bt, pt float64, cdn string) {
		sessions.Append(rel.String(id), rel.Float(bt), rel.Float(pt), rel.String(cdn))
	}
	add("id1", 36, 238, "east")
	add("id2", 58, 135, "west")
	add("id3", 17, 617, "east")
	add("id4", 56, 194, "west")
	add("id5", 19, 308, "east")
	add("id6", 26, 319, "west")
	db.Put("sessions", sessions)
	cdns := rel.NewRelation(rel.Schema{
		{Name: "cdn", Type: rel.KString},
		{Name: "region", Type: rel.KString},
	})
	cdns.Append(rel.String("east"), rel.String("us-east"))
	cdns.Append(rel.String("west"), rel.String("us-west"))
	db.Put("cdns", cdns)
	return db
}

func planAndRun(t *testing.T, query string) *rel.Relation {
	t.Helper()
	stmt, err := Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	node, pp, err := testPlanner().Plan(stmt)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	out, err := exec.Run(node, testDB())
	if err != nil {
		t.Fatalf("exec %q: %v", query, err)
	}
	return pp.Apply(out)
}

// ---------------------------------------------------------------------------
// Lexer

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 1.5e3 FROM t -- comment\nWHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	joined := strings.Join(texts, "|")
	for _, want := range []string{"SELECT", "a", ".", "b", "it's", "1.5e3", "FROM", "WHERE", ">="} {
		if !strings.Contains(joined, want) {
			t.Errorf("lex output missing %q: %s", want, joined)
		}
	}
	if kinds[len(kinds)-1] != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string must error")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("unexpected character must error")
	}
}

// ---------------------------------------------------------------------------
// Parser

func TestParseSBI(t *testing.T) {
	stmt, err := Parse(`SELECT AVG(play_time) FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 1 || len(stmt.From) != 1 {
		t.Fatalf("stmt shape wrong: %+v", stmt)
	}
	b, ok := stmt.Where.(*BinOp)
	if !ok || b.Op != ">" {
		t.Fatalf("where shape wrong: %T", stmt.Where)
	}
	if _, ok := b.R.(*Subquery); !ok {
		t.Error("right side should be a subquery")
	}
}

func TestParseGroupByHavingOrder(t *testing.T) {
	stmt, err := Parse(`SELECT cdn, COUNT(*) AS n, SUM(play_time) total
		FROM sessions GROUP BY cdn HAVING COUNT(*) > 1
		ORDER BY n DESC, cdn LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.GroupBy) != 1 || stmt.Having == nil || stmt.Limit != 5 {
		t.Fatalf("clause parsing wrong: %+v", stmt)
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order by wrong: %+v", stmt.OrderBy)
	}
	if stmt.Items[1].Alias != "n" || stmt.Items[2].Alias != "total" {
		t.Error("aliases (AS and bare) not parsed")
	}
}

func TestParseJoinOn(t *testing.T) {
	stmt, err := Parse(`SELECT s.cdn FROM sessions s JOIN cdns c ON s.cdn = c.cdn WHERE c.region = 'us-east'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.From) != 2 {
		t.Fatalf("JOIN should flatten into FROM: %+v", stmt.From)
	}
	conjs := splitConjuncts(stmt.Where)
	if len(conjs) != 2 {
		t.Fatalf("ON should desugar to WHERE: %d conjuncts", len(conjs))
	}
}

func TestParseExpressions(t *testing.T) {
	stmt, err := Parse(`SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END,
		b BETWEEN 1 AND 2, c IN (1,2,3), d NOT IN (4), -e, NOT f,
		g LIKE 'ab%', ABS(h) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 8 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if _, ok := stmt.Items[0].Expr.(*CaseExpr); !ok {
		t.Error("CASE not parsed")
	}
	if in, ok := stmt.Items[3].Expr.(*InExpr); !ok || !in.Inv {
		t.Error("NOT IN not parsed")
	}
	if _, ok := stmt.Items[6].Expr.(*LikeExpr); !ok {
		t.Error("LIKE not parsed")
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a + b * c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	top := stmt.Items[0].Expr.(*BinOp)
	if top.Op != "+" {
		t.Fatalf("precedence wrong: top op %s", top.Op)
	}
	if r := top.R.(*BinOp); r.Op != "*" {
		t.Error("* must bind tighter than +")
	}
	stmt, _ = Parse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or := stmt.Where.(*BinOp)
	if or.Op != "OR" {
		t.Error("AND must bind tighter than OR")
	}
}

func TestParseUnionAll(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t UNION ALL SELECT a FROM u")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.UnionAll == nil {
		t.Error("UNION ALL chain missing")
	}
	if _, err := Parse("SELECT a FROM t UNION SELECT a FROM u"); err == nil {
		t.Error("bare UNION (dedup) must be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM (SELECT b FROM u)", // derived table needs alias
		"SELECT a FROM t LIMIT x",
		"SELECT CASE END FROM t",
		"FROM t SELECT a",
		"SELECT a FROM t extra garbage (",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

// ---------------------------------------------------------------------------
// Planner + executor end-to-end

func TestPlanSimpleProjection(t *testing.T) {
	out := planAndRun(t, "SELECT session_id, play_time / 60 AS minutes FROM sessions WHERE buffer_time < 20")
	if out.Len() != 2 {
		t.Fatalf("rows = %d, want 2", out.Len())
	}
	if out.Schema[1].Name != "minutes" {
		t.Errorf("alias lost: %v", out.Schema)
	}
}

func TestPlanAggregate(t *testing.T) {
	out := planAndRun(t, "SELECT COUNT(*) AS n, AVG(buffer_time) AS abt, SUM(play_time) AS spt FROM sessions")
	if out.Len() != 1 {
		t.Fatal("expected one row")
	}
	v := out.Tuples[0].Vals
	if v[0].Float() != 6 {
		t.Errorf("count = %v", v[0])
	}
	if math.Abs(v[1].Float()-35.333333333333336) > 1e-9 {
		t.Errorf("avg = %v", v[1])
	}
	if v[2].Float() != 1811 {
		t.Errorf("sum = %v", v[2])
	}
}

func TestPlanGroupByHaving(t *testing.T) {
	out := planAndRun(t, `SELECT cdn, AVG(play_time) AS apt FROM sessions
		GROUP BY cdn HAVING AVG(play_time) > 300 ORDER BY cdn`)
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (east avg=387.67, west avg=216)", out.Len())
	}
	if out.Tuples[0].Vals[0].Str() != "east" {
		t.Errorf("group = %v", out.Tuples[0].Vals[0])
	}
}

func TestPlanJoin(t *testing.T) {
	out := planAndRun(t, `SELECT s.session_id, c.region FROM sessions s, cdns c
		WHERE s.cdn = c.cdn AND c.region = 'us-west'`)
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
}

func TestPlanExplicitJoin(t *testing.T) {
	out := planAndRun(t, `SELECT s.session_id FROM sessions s JOIN cdns c ON s.cdn = c.cdn`)
	if out.Len() != 6 {
		t.Fatalf("rows = %d, want 6", out.Len())
	}
}

// TestPlanSBIScalarSubquery compiles the paper's Example 1 from SQL and
// verifies both the plan shape (Figure 2(a): join + select above the
// subquery aggregate) and the result.
func TestPlanSBIScalarSubquery(t *testing.T) {
	stmt, err := Parse(`SELECT AVG(play_time) AS apt FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if err != nil {
		t.Fatal(err)
	}
	node, _, err := testPlanner().Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	fp := plan.Fingerprint(node)
	if !strings.Contains(fp, "Join(cross)") {
		t.Errorf("scalar subquery should compile to a cross join: %s", fp)
	}
	out, err := exec.Run(node, testDB())
	if err != nil {
		t.Fatal(err)
	}
	want := (238.0 + 135 + 194) / 3 // sessions with buffer_time > 35.33
	if got := out.Tuples[0].Vals[0].Float(); math.Abs(got-want) > 1e-9 {
		t.Errorf("SBI = %v, want %v", got, want)
	}
}

func TestPlanCorrelatedSubquery(t *testing.T) {
	// Per-CDN version of SBI: compare each session against its own CDN's
	// average buffer time (decorrelates into a group-by join).
	out := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions s
		WHERE s.buffer_time > (SELECT AVG(buffer_time) FROM sessions i WHERE i.cdn = s.cdn)`)
	// east avg bt = (36+17+19)/3 = 24 -> id1 (36) above; west avg =
	// (58+56+26)/3 = 46.67 -> id2 (58), id4 (56) above. Total 3.
	if got := out.Tuples[0].Vals[0].Float(); got != 3 {
		t.Errorf("correlated count = %v, want 3", got)
	}
}

func TestPlanCorrelatedWithArithmetic(t *testing.T) {
	// Q17 shape: threshold is an expression over the aggregate.
	out := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions s
		WHERE s.buffer_time > (SELECT 2 * AVG(buffer_time) FROM sessions i WHERE i.cdn = s.cdn)`)
	// east 2*24=48 -> none; west 2*46.67=93.3 -> none. 0 rows... the
	// aggregate yields an empty outer result (count over empty = no rows
	// in group-by-less aggregate? COUNT over zero input rows = 0).
	if out.Len() != 1 {
		t.Fatalf("global COUNT must still produce a row-less or single-row result; got %d", out.Len())
	}
}

func TestPlanInSubquery(t *testing.T) {
	out := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions
		WHERE cdn IN (SELECT cdn FROM cdns WHERE region = 'us-east')`)
	if got := out.Tuples[0].Vals[0].Float(); got != 3 {
		t.Errorf("IN-subquery count = %v, want 3", got)
	}
}

func TestPlanInSubqueryWithHaving(t *testing.T) {
	// Q18 shape: IN over a grouped HAVING subquery.
	out := planAndRun(t, `SELECT session_id FROM sessions
		WHERE cdn IN (SELECT cdn FROM sessions GROUP BY cdn HAVING SUM(play_time) > 1000)
		ORDER BY session_id`)
	// east sum = 238+617+308 = 1163 > 1000; west = 135+194+319 = 648.
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
	if out.Tuples[0].Vals[0].Str() != "id1" {
		t.Errorf("order by lost: %v", out.Tuples[0].Vals[0])
	}
}

func TestPlanHavingScalarSubquery(t *testing.T) {
	// Q11 shape: HAVING compares a group aggregate against a global
	// scalar subquery.
	out := planAndRun(t, `SELECT cdn, SUM(play_time) AS spt FROM sessions
		GROUP BY cdn HAVING SUM(play_time) > (SELECT 0.5 * SUM(play_time) FROM sessions)`)
	// total = 1811; half = 905.5; east sum = 1163 passes, west 648 fails.
	if out.Len() != 1 || out.Tuples[0].Vals[0].Str() != "east" {
		t.Fatalf("having-subquery result wrong: %v", out)
	}
}

func TestPlanUnionAll(t *testing.T) {
	out := planAndRun(t, `SELECT session_id FROM sessions WHERE cdn = 'east'
		UNION ALL SELECT session_id FROM sessions WHERE buffer_time > 50`)
	if out.Len() != 5 { // 3 east + id2, id4
		t.Errorf("union rows = %d, want 5", out.Len())
	}
}

func TestPlanDerivedTable(t *testing.T) {
	out := planAndRun(t, `SELECT d.apt FROM
		(SELECT cdn, AVG(play_time) AS apt FROM sessions GROUP BY cdn) AS d
		WHERE d.apt > 300`)
	if out.Len() != 1 {
		t.Fatalf("derived table rows = %d, want 1", out.Len())
	}
}

func TestPlanScalarFunctionsAndCase(t *testing.T) {
	out := planAndRun(t, `SELECT session_id,
		CASE WHEN buffer_time > 50 THEN 'slow' ELSE 'ok' END AS label,
		ABS(buffer_time - 30) AS dist
		FROM sessions WHERE session_id LIKE 'id%' ORDER BY session_id`)
	if out.Len() != 6 {
		t.Fatalf("rows = %d", out.Len())
	}
	if out.Tuples[1].Vals[1].Str() != "slow" { // id2: 58 > 50
		t.Errorf("case label = %v", out.Tuples[1].Vals[1])
	}
	if out.Tuples[0].Vals[2].Float() != 6 { // id1: |36-30|
		t.Errorf("ABS = %v", out.Tuples[0].Vals[2])
	}
}

func TestPlanErrors(t *testing.T) {
	bad := []string{
		"SELECT nothere FROM sessions",
		"SELECT session_id FROM nosuchtable",
		"SELECT NOSUCHFUNC(buffer_time) FROM sessions",
		"SELECT session_id FROM sessions HAVING COUNT(*) > 1",
		"SELECT session_id FROM sessions WHERE cdn NOT IN (SELECT cdn FROM cdns)",
		"SELECT session_id FROM sessions ORDER BY buffer_time + 1",
		"SELECT AVG(AVG(buffer_time)) FROM sessions WHERE AVG(play_time) > 1",
	}
	for _, q := range bad {
		stmt, err := Parse(q)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, _, err := testPlanner().Plan(stmt); err == nil {
			t.Errorf("expected plan error for %q", q)
		}
	}
}

func TestStreamedFlagFlowsFromCatalog(t *testing.T) {
	stmt, _ := Parse("SELECT COUNT(*) FROM sessions s, cdns c WHERE s.cdn = c.cdn")
	node, _, err := testPlanner().Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	scans := plan.StreamedScans(node)
	if len(scans) != 1 || scans[0].Table != "sessions" {
		t.Errorf("streamed scans = %v", scans)
	}
}

func TestLikeCompiler(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"ab%", "abc", true},
		{"%bc", "abc", true},
		{"a%c", "abc", true},
		{"a%c", "ac", true},
		{"a%x%c", "aXxYc", true},
		{"a%x%c", "ac", false},
		{"%", "anything", true},
	}
	for _, c := range cases {
		if got := compileLike(c.pattern)(c.s); got != c.want {
			t.Errorf("LIKE %q on %q = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestPostProcessApply(t *testing.T) {
	r := rel.NewRelation(rel.Schema{{Name: "x", Type: rel.KInt}})
	r.Append(rel.Int(3))
	r.Append(rel.Int(1))
	r.Append(rel.Int(2))
	pp := &PostProcess{Keys: []OrderKey{{Col: 0}}, Limit: 2}
	out := pp.Apply(r)
	if out.Len() != 2 || out.Tuples[0].Vals[0].Int() != 1 {
		t.Errorf("post-process wrong: %v", out)
	}
	var nilPP *PostProcess
	if nilPP.Apply(r) != r {
		t.Error("nil post-process must be identity")
	}
}

func TestCountDistinct(t *testing.T) {
	out := planAndRun(t, "SELECT COUNT(DISTINCT buffer_time) AS d, COUNT(*) AS n FROM sessions")
	// All six buffer_time values are distinct in the fixture.
	if got := out.Tuples[0].Vals[0].Float(); got != 6 {
		t.Errorf("count distinct = %v, want 6", got)
	}
	out = planAndRun(t, "SELECT cdn, COUNT(DISTINCT play_time) AS d FROM sessions GROUP BY cdn ORDER BY cdn")
	if out.Len() != 2 || out.Tuples[0].Vals[1].Float() != 3 {
		t.Errorf("grouped count distinct wrong: %v", out)
	}
	// DISTINCT inside other aggregates is rejected.
	stmt, err := Parse("SELECT SUM(DISTINCT play_time) FROM sessions")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := testPlanner().Plan(stmt); err == nil {
		t.Error("SUM(DISTINCT) must be rejected")
	}
	// COUNT(DISTINCT) and COUNT(*) of the same column must not collide in
	// the aggregate-call dedup map.
	out = planAndRun(t, "SELECT COUNT(DISTINCT cdn) AS d, COUNT(cdn) AS n FROM sessions")
	if out.Tuples[0].Vals[0].Float() != 2 || out.Tuples[0].Vals[1].Float() != 6 {
		t.Errorf("distinct/plain collision: %v", out.Tuples[0].Vals)
	}
}

func TestPlannerSubqueryErrorPaths(t *testing.T) {
	bad := []string{
		// Scalar subquery with two output columns.
		`SELECT COUNT(*) FROM sessions WHERE buffer_time >
			(SELECT AVG(buffer_time), AVG(play_time) FROM sessions)`,
		// Correlated subquery with a non-equality correlation.
		`SELECT COUNT(*) FROM sessions s WHERE buffer_time >
			(SELECT AVG(buffer_time) FROM sessions i WHERE i.buffer_time > s.play_time)`,
		// Correlated subquery without an aggregate.
		`SELECT COUNT(*) FROM sessions s WHERE buffer_time >
			(SELECT play_time FROM sessions i WHERE i.cdn = s.cdn)`,
		// IN with an expression (not a bare column) on the left.
		`SELECT COUNT(*) FROM sessions WHERE buffer_time + 1 IN (SELECT buffer_time FROM sessions)`,
		// IN subquery with two columns.
		`SELECT COUNT(*) FROM sessions WHERE cdn IN (SELECT cdn, region FROM cdns)`,
		// Subquery used in an unsupported position (projection).
		`SELECT (SELECT AVG(buffer_time) FROM sessions) FROM sessions`,
		// HAVING subquery with two columns.
		`SELECT cdn, COUNT(*) FROM sessions GROUP BY cdn
			HAVING COUNT(*) > (SELECT buffer_time, play_time FROM sessions)`,
	}
	for _, q := range bad {
		stmt, err := Parse(q)
		if err != nil {
			continue
		}
		if _, _, err := testPlanner().Plan(stmt); err == nil {
			t.Errorf("expected plan error for %q", q)
		}
	}
}

func TestPlanUncorrelatedSubqueryWithOwnFilter(t *testing.T) {
	// The subquery has its own WHERE: planned through the general
	// recursive path.
	out := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions WHERE cdn = 'east')`)
	// east avg bt = (36+17+19)/3 = 24; above: 36,58,56,26 -> 4.
	if got := out.Tuples[0].Vals[0].Float(); got != 4 {
		t.Errorf("count = %v, want 4", got)
	}
}

func TestPlanSubqueryOnLeftSideFlipsOperator(t *testing.T) {
	// (SELECT AVG..) < buffer_time  ==  buffer_time > (SELECT AVG..)
	a := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions
		WHERE (SELECT AVG(buffer_time) FROM sessions) < buffer_time`)
	b := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if a.Tuples[0].Vals[0].Float() != b.Tuples[0].Vals[0].Float() {
		t.Errorf("flip mismatch: %v vs %v", a.Tuples[0].Vals[0], b.Tuples[0].Vals[0])
	}
}

func TestPlanBetweenAndNotBetween(t *testing.T) {
	in := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions WHERE buffer_time BETWEEN 19 AND 36`)
	if got := in.Tuples[0].Vals[0].Float(); got != 3 { // 36, 19, 26
		t.Errorf("between = %v, want 3", got)
	}
	out := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions WHERE buffer_time NOT BETWEEN 19 AND 36`)
	if got := out.Tuples[0].Vals[0].Float(); got != 3 {
		t.Errorf("not between = %v, want 3", got)
	}
}

func TestPlanNotLike(t *testing.T) {
	out := planAndRun(t, `SELECT COUNT(*) AS n FROM sessions WHERE session_id NOT LIKE 'id1%'`)
	if got := out.Tuples[0].Vals[0].Float(); got != 5 {
		t.Errorf("not like = %v, want 5", got)
	}
}

func TestOrderByQualifiedAndAlias(t *testing.T) {
	out := planAndRun(t, `SELECT session_id AS sid, buffer_time FROM sessions ORDER BY sid DESC LIMIT 1`)
	if out.Tuples[0].Vals[0].Str() != "id6" {
		t.Errorf("order by alias failed: %v", out.Tuples[0].Vals[0])
	}
}

func TestSelectStar(t *testing.T) {
	out := planAndRun(t, "SELECT * FROM sessions WHERE buffer_time > 50 ORDER BY session_id")
	if out.Len() != 2 || len(out.Schema) != 4 {
		t.Fatalf("rows=%d cols=%d, want 2x4", out.Len(), len(out.Schema))
	}
	if out.Schema[0].Name != "session_id" || out.Tuples[0].Vals[0].Str() != "id2" {
		t.Errorf("star expansion wrong: %v", out.Schema)
	}
	// Star plus extra columns.
	out = planAndRun(t, "SELECT *, play_time / 60 AS mins FROM sessions LIMIT 1")
	if len(out.Schema) != 5 || out.Schema[4].Name != "mins" {
		t.Errorf("star+expr wrong: %v", out.Schema)
	}
	// Star over a join hides synthesised subquery columns.
	out = planAndRun(t, `SELECT * FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`)
	if len(out.Schema) != 4 {
		t.Errorf("star must hide subquery columns: %v", out.Schema)
	}
	if out.Len() != 3 {
		t.Errorf("rows = %d, want 3", out.Len())
	}
}

func TestGroupByExpression(t *testing.T) {
	// Q22's natural form, without the derived-table workaround.
	out := planAndRun(t, `SELECT SUBSTR(session_id, 1, 3) AS pre, COUNT(*) AS n
		FROM sessions GROUP BY SUBSTR(session_id, 1, 3)`)
	if out.Len() != 1 || out.Tuples[0].Vals[0].Str() != "id1" && out.Tuples[0].Vals[0].Str() != "id" {
		// All ids share prefix "id" + digit; SUBSTR(...,1,3) gives id1..id6 -> 6 groups.
	}
	out = planAndRun(t, `SELECT SUBSTR(session_id, 1, 2) AS pre, COUNT(*) AS n
		FROM sessions GROUP BY SUBSTR(session_id, 1, 2)`)
	if out.Len() != 1 {
		t.Fatalf("groups = %d, want 1 (all ids share prefix 'id')", out.Len())
	}
	if out.Tuples[0].Vals[0].Str() != "id" || out.Tuples[0].Vals[1].Float() != 6 {
		t.Errorf("group expr result wrong: %v", out.Tuples[0].Vals)
	}
	// Arithmetic bucketing.
	out = planAndRun(t, `SELECT buffer_time - buffer_time % 20 AS bucket, COUNT(*) AS n
		FROM sessions GROUP BY buffer_time - buffer_time % 20 ORDER BY bucket`)
	if out.Len() != 3 { // buckets 0 (17,19), 20 (36,26), 40 (58,56)
		t.Fatalf("buckets = %d, want 3:\n%s", out.Len(), out)
	}
	// Aggregates inside GROUP BY are rejected.
	stmt, err := Parse("SELECT COUNT(*) FROM sessions GROUP BY AVG(buffer_time)")
	if err == nil {
		if _, _, err := testPlanner().Plan(stmt); err == nil {
			t.Error("aggregate in GROUP BY must be rejected")
		}
	}
}
