// Package sql implements the SQL front end: a lexer, a recursive-descent
// parser, and a planner that lowers the AST onto the positive relational
// algebra of internal/plan. Nested aggregate subqueries — the query class
// the paper is about — compile to joins against the subquery's aggregate
// output, exactly as in the paper's Figure 2(a):
//
//   - an uncorrelated scalar subquery becomes a cross join;
//   - an equality-correlated scalar subquery is decorrelated into a
//     group-by aggregate joined on the correlation keys (Appendix B, Eq. 4);
//   - IN (subquery) becomes an equi-join against the deduplicated subquery.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // operators and punctuation
)

// Token is one lexical token with its source position (1-based offset).
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "JOIN": true,
	"ON": true, "UNION": true, "ALL": true, "ASC": true, "DESC": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"DISTINCT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"INNER": true, "LIKE": true,
}

// Lex tokenizes a SQL string. It returns an error on unterminated strings or
// unexpected characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			// scientific notation
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && unicode.IsDigit(rune(input[j])) {
					i = j
					for i < n && unicode.IsDigit(rune(input[i])) {
						i++
					}
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start + 1})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start+1)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start + 1})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start + 1})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start + 1})
			}
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: start + 1})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '.', '+', '-', '*', '/', '%', '<', '>', '=':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start + 1})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, start+1)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n + 1})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
