package cluster

import (
	"testing"
	"time"
)

// TestCostSnapshotSeedRoundTrip checks that a profile exported by Snapshot
// reproduces the model's state when seeded into a fresh one — the contract
// the CLI's -cost-profile persistence relies on.
func TestCostSnapshotSeedRoundTrip(t *testing.T) {
	m := NewCostModel(0)
	// Teach the model something the cold-start priors don't know.
	m.Observe(CostSelect, 10_000, 5*time.Millisecond, 1)
	m.Observe(CostJoinProbe, 10_000, 20*time.Millisecond, 1)
	snap := m.Snapshot()
	if len(snap) != int(numOpClasses) {
		t.Fatalf("snapshot has %d classes, want %d", len(snap), numOpClasses)
	}

	fresh := NewCostModel(0)
	fresh.Seed(snap)
	for c := OpClass(0); c < numOpClasses; c++ {
		if got, want := fresh.PerRowNs(c), m.PerRowNs(c); got != want {
			t.Errorf("%v: seeded %v, want %v", c, got, want)
		}
		if got, want := fresh.Threshold(c), m.Threshold(c); got != want {
			t.Errorf("%v: threshold %d, want %d", c, got, want)
		}
	}
}

// TestCostSeedRejectsGarbage: unknown names are ignored, non-positive values
// cannot poison a class, and a nil model is safe.
func TestCostSeedRejectsGarbage(t *testing.T) {
	m := NewCostModel(0)
	before := m.Snapshot()
	m.Seed(map[string]float64{
		"no-such-class": 123,
		"select":        -5,
		"join-probe":    0,
	})
	after := m.Snapshot()
	for k, v := range before {
		if after[k] != v {
			t.Errorf("%s: changed %v -> %v by garbage profile", k, v, after[k])
		}
	}
	var nilModel *CostModel
	nilModel.Seed(map[string]float64{"select": 1}) // must not panic
	if nilModel.Snapshot() != nil {
		t.Error("nil model snapshot should be nil")
	}
}

// TestCostSnapshotSeedPartialProfile: an old profile missing classes seeds
// only the classes it names.
func TestCostSnapshotSeedPartialProfile(t *testing.T) {
	m := NewCostModel(0)
	def := m.PerRowNs(CostSink)
	m.Seed(map[string]float64{"select": 99.5})
	if got := m.PerRowNs(CostSelect); got != 99.5 {
		t.Errorf("select: %v, want 99.5", got)
	}
	if got := m.PerRowNs(CostSink); got != def {
		t.Errorf("sink: %v, want untouched default %v", got, def)
	}
}
