package cluster

import "time"

// OpClass labels a parallel site by operator work class so the cost model
// can learn a distinct per-row cost for each: a bootstrap fold row
// (O(trials) accumulator adds) costs orders of magnitude more than a scan
// weight derivation, so a single global row-count threshold is wrong in
// both directions — it keeps small expensive batches sequential and fans
// out large cheap ones.
type OpClass int

// Operator work classes.
const (
	// CostScan is streamed-scan weight derivation.
	CostScan OpClass = iota
	// CostSelect is predicate evaluation / ND-set reclassification.
	CostSelect
	// CostProject is projection expression evaluation.
	CostProject
	// CostJoinBuild is hash-store build (key encode + shard append).
	CostJoinBuild
	// CostJoinProbe is hash-join probe + emit.
	CostJoinProbe
	// CostFold is bootstrap accumulator folding (sketch and scratch).
	CostFold
	// CostSink is sink materialisation (estimate summarisation).
	CostSink
	// CostProbePart is a hash-join probe against a partitioned (non-replicated)
	// build store: the exchange geometry is partition buckets, not row spans.
	CostProbePart
	numOpClasses
)

var opClassNames = [numOpClasses]string{
	"scan", "select", "project", "join-build", "join-probe", "fold", "sink",
	"probe-part",
}

func (c OpClass) String() string {
	if c >= 0 && int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "op?"
}

// parallelWorkNs is the amount of single-threaded work below which fanning
// out is not worth the dispatch cost (goroutine spawn + deque traffic for a
// pool's worth of workers, ~5–20µs on commodity hardware, with margin).
const parallelWorkNs = 100_000

// Threshold clamps: never fan out fewer rows than minCutover (dispatch
// dominates no matter how expensive the rows), never demand more than
// maxCutover (even free-looking rows amortise eventually; also guards a
// corrupted EWMA).
const (
	minCutover = 32
	maxCutover = 1 << 20
)

// coldStartNs seeds the per-class EWMA so the cutover is sane before the
// first observation: the values reproduce the PR-1 fixed thresholds
// (~512 rows in core, ~2048 in exec) for the cheap classes and open the
// parallel path earlier for fold-heavy work.
var coldStartNs = [numOpClasses]float64{
	CostScan:      50,  // ~2000-row cutover
	CostSelect:    200, // ~500-row cutover
	CostProject:   100,
	CostJoinBuild: 150,
	CostJoinProbe: 200,
	CostFold:      800, // O(trials) adds per row: fan out early
	CostSink:      800,
	CostProbePart: 200, // same kernel as CostJoinProbe, bucket-routed
}

// CostModel picks the sequential/parallel cutover per operator class from an
// exponentially weighted moving average of measured per-row cost. It is
// engine/executor state, not a package global: every Engine and Executor
// owns one, so tests and concurrent engines cannot race on it, and each
// engine's model adapts to its own query's row widths and trial counts.
//
// The model only ever influences *whether* a site fans out; every gated
// parallel path is bit-identical to its sequential fallback, so adapting the
// cutover from wall-clock measurements cannot perturb results, estimates, or
// metrics (the DESIGN.md §7 invariant).
//
// Methods are not safe for concurrent use; callers observe from the
// coordinating goroutine only (operators run one batch at a time).
type CostModel struct {
	perRowNs [numOpClasses]float64
	fixed    int
}

// ewmaAlpha is the smoothing factor: new observations move the estimate a
// fifth of the way, so one garbage-collected outlier batch cannot flip the
// cutover by itself.
const ewmaAlpha = 0.2

// NewCostModel returns a model seeded with the cold-start priors. fixed > 0
// pins every class's cutover to that row count (the test/benchmark hook that
// replaces the old mutable package-level parThreshold); fixed <= 0 enables
// the adaptive EWMA.
func NewCostModel(fixed int) *CostModel {
	m := &CostModel{fixed: fixed}
	m.perRowNs = coldStartNs
	return m
}

// Threshold returns the row-count cutover for the class: at or above it a
// site should fan out. Nil-safe (returns a conservative default).
func (m *CostModel) Threshold(c OpClass) int {
	if m == nil {
		return 2048
	}
	if m.fixed > 0 {
		return m.fixed
	}
	ns := m.perRowNs[c]
	if ns <= 0 {
		return 2048
	}
	t := int(parallelWorkNs / ns)
	if t < minCutover {
		t = minCutover
	}
	if t > maxCutover {
		t = maxCutover
	}
	return t
}

// Observe folds a measured run into the class EWMA. workers is the
// parallelism the run used (1 for sequential): the wall clock of a parallel
// run is scaled back up to approximate single-threaded work, which
// overestimates under imperfect balance — a safe bias, since it lowers the
// cutover and skew is exactly when fanning out pays. Zero-row or
// zero-duration runs (clock granularity) are discarded.
func (m *CostModel) Observe(c OpClass, rows int, d time.Duration, workers int) {
	if m == nil || m.fixed > 0 || rows <= 0 || d <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	perRow := float64(d.Nanoseconds()) * float64(workers) / float64(rows)
	m.perRowNs[c] += ewmaAlpha * (perRow - m.perRowNs[c])
}

// Timed runs f, feeds the measurement into the class EWMA, and returns f's
// wall clock (handy for callers that also report durations).
func (m *CostModel) Timed(c OpClass, rows, workers int, f func()) time.Duration {
	t0 := time.Now()
	f()
	d := time.Since(t0)
	m.Observe(c, rows, d, workers)
	return d
}

// PerRowNs exposes the current estimate for diagnostics and tests.
func (m *CostModel) PerRowNs(c OpClass) float64 {
	if m == nil {
		return 0
	}
	return m.perRowNs[c]
}

// Snapshot exports the per-class EWMA estimates keyed by class name, for
// persisting across processes (the CLI's -cost-profile file). Keying by name
// rather than ordinal keeps a saved profile valid across class reorderings.
func (m *CostModel) Snapshot() map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, int(numOpClasses))
	for c := OpClass(0); c < numOpClasses; c++ {
		out[c.String()] = m.perRowNs[c]
	}
	return out
}

// Seed replaces the cold-start priors with estimates from a previous run's
// Snapshot, so the first batches of a fresh process already fan out at the
// cutovers the last run converged to. Unknown class names are ignored (old
// profiles survive class additions) and non-positive values are dropped (a
// corrupt profile cannot pin a class sequential forever). Like every cost
// input, seeding affects scheduling only, never results.
func (m *CostModel) Seed(profile map[string]float64) {
	if m == nil || len(profile) == 0 {
		return
	}
	for c := OpClass(0); c < numOpClasses; c++ {
		if v, ok := profile[c.String()]; ok && v > 0 {
			m.perRowNs[c] = v
		}
	}
}
