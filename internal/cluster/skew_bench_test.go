package cluster

import (
	"fmt"
	"testing"
)

// TestSkewWorkloadSchedulesAgree proves the two fold schedules (and every
// worker count) produce bit-identical accumulators: the benchmark compares
// scheduling cost only, never different answers.
func TestSkewWorkloadSchedulesAgree(t *testing.T) {
	wl := NewSkewWorkload(1<<12, 64, 16)
	ref := wl.RunSteal(NewPool(1))
	for _, w := range []int{1, 2, 8} {
		p := NewPool(w)
		if got := wl.RunSteal(p); got != ref {
			t.Errorf("RunSteal workers=%d: checksum %v, want %v", w, got, ref)
		}
		if got := wl.RunAtomic(p); got != ref {
			t.Errorf("RunAtomic workers=%d: checksum %v, want %v", w, got, ref)
		}
	}
	if s := wl.TopShare(); s < 0.7 {
		t.Errorf("fixture lost its skew: head group holds %.0f%% of rows", s*100)
	}
}

// TestSkewBalanceSpeedupSeparates pins the acceptance numbers on the zipf
// fixture in the machine-independent placement metric (see BalanceSpeedup):
// at 8 workers the stealing schedule must reach at least 2x while the
// atomic shard-ownership schedule stays under 1.3x, because the head group
// pins one shard. Wall-clock benchmarks converge to these figures on hosts
// with enough free cores; the placement metric holds on any host.
func TestSkewBalanceSpeedupSeparates(t *testing.T) {
	wl := NewSkewWorkload(1<<15, 256, 64)
	steal, atomic := wl.BalanceSpeedup(8)
	if steal < 2.0 {
		t.Errorf("steal schedule balance speedup at 8 workers = %.2fx, want >= 2x", steal)
	}
	if atomic >= 1.3 {
		t.Errorf("atomic schedule balance speedup at 8 workers = %.2fx, want < 1.3x", atomic)
	}
	if s1, a1 := wl.BalanceSpeedup(1); s1 != 1 || a1 != 1 {
		t.Errorf("single-worker balance speedup = %.2f/%.2f, want 1/1", s1, a1)
	}
	// The metric must be monotone non-decreasing for the stealing schedule:
	// more workers can only shorten the critical path of its placement.
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8} {
		s, _ := wl.BalanceSpeedup(w)
		if s < prev {
			t.Errorf("steal balance speedup regressed at %d workers: %.2f < %.2f", w, s, prev)
		}
		prev = s
	}
}

var benchSink float64

func benchSkew(b *testing.B, run func(*SkewWorkload, *Pool) float64) {
	wl := NewSkewWorkload(1<<15, 256, 64)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := NewPool(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = run(wl, p)
			}
		})
	}
}

// BenchmarkSkewSteal measures the zipf fold under the work-stealing schedule
// (heavy-group replicate split + size-hinted light tail).
func BenchmarkSkewSteal(b *testing.B) {
	benchSkew(b, func(wl *SkewWorkload, p *Pool) float64 { return wl.RunSteal(p) })
}

// BenchmarkSkewAtomic measures the same fold under the PR-1 atomic-counter
// shard-ownership schedule; on this fixture its speedup plateaus near 1×
// because the head group pins a single worker.
func BenchmarkSkewAtomic(b *testing.B) {
	benchSkew(b, func(wl *SkewWorkload, p *Pool) float64 { return wl.RunAtomic(p) })
}
