package cluster

// SkewWorkload is the zipf-skewed aggregate-fold fixture used by the
// in-package skew benchmarks and cmd/benchskew. It reproduces, at the
// scheduling layer, the shape that motivated the work-stealing scheduler: a
// grouped bootstrap fold where group sizes follow a steep zipf law and the
// head group holds most of the batch (~83% at the default exponent), so any
// scheme that assigns whole groups to workers by hash degenerates to
// single-worker execution.
//
// Two fold schedules are provided over identical data:
//
//   - RunSteal is the current engine schedule: groups heavier than an even
//     per-worker share split their replicate dimension across workers
//     (each accumulator slot still receives its adds in row order), and the
//     light tail is size-hinted tasks on the work-stealing pool.
//   - RunAtomic is the PR-1 schedule: w ownership shards, groups dealt to
//     shards round-robin, dispatched by the atomic-counter scheduler.
//
// Both produce bit-identical accumulators (and therefore checksums) at any
// worker count — the benchmark measures scheduling, never results.
type SkewWorkload struct {
	Rows   []float64 // per-row values
	Groups [][]int32 // row indices per group, head-heavy zipf sizes
	Trials int       // replicate count per accumulator
}

// NewSkewWorkload builds a deterministic fixture: group g receives a share
// of the rows proportional to 1/(g+1)^3 (at 256 groups the head group holds
// ~83% of the rows), and row values come from a SplitMix64 stream.
func NewSkewWorkload(nRows, nGroups, trials int) *SkewWorkload {
	weights := make([]float64, nGroups)
	sum := 0.0
	for g := 0; g < nGroups; g++ {
		weights[g] = 1 / float64((g+1)*(g+1)*(g+1))
		sum += weights[g]
	}
	wl := &SkewWorkload{
		Rows:   make([]float64, nRows),
		Groups: make([][]int32, nGroups),
		Trials: trials,
	}
	state := uint64(0x5eed)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range wl.Rows {
		wl.Rows[i] = float64(next()%1000) / 10
	}
	// Deal rows to groups by cumulative zipf share; every group gets at
	// least one row so the light tail is populated.
	row := 0
	for g := 0; g < nGroups && row < nRows; g++ {
		take := int(weights[g] / sum * float64(nRows))
		if take < 1 {
			take = 1
		}
		if rem := nRows - row - (nGroups - g - 1); take > rem {
			take = rem
		}
		for k := 0; k < take; k++ {
			wl.Groups[g] = append(wl.Groups[g], int32(row))
			row++
		}
	}
	for ; row < nRows; row++ {
		wl.Groups[0] = append(wl.Groups[0], int32(row))
	}
	return wl
}

// TopShare returns the head group's fraction of the rows (fixture
// diagnostics for benchmark reports).
func (wl *SkewWorkload) TopShare() float64 {
	return float64(len(wl.Groups[0])) / float64(len(wl.Rows))
}

func (wl *SkewWorkload) newAccs() [][]float64 {
	accs := make([][]float64, len(wl.Groups))
	for g := range accs {
		accs[g] = make([]float64, wl.Trials)
	}
	return accs
}

// foldRows folds the given rows into the trial slots [tlo, thi) of acc, in
// row order — the accumulator discipline every scheme must preserve.
func (wl *SkewWorkload) foldRows(acc []float64, rows []int32, tlo, thi int) {
	for _, ri := range rows {
		v := wl.Rows[ri]
		for t := tlo; t < thi; t++ {
			acc[t] += v * float64(t+1)
		}
	}
}

func checksum(accs [][]float64) float64 {
	s := 0.0
	for _, acc := range accs {
		for _, v := range acc {
			s += v
		}
	}
	return s
}

// RunSteal folds with the current engine schedule (heavy-group replicate
// split + size-hinted light tail on the stealing scheduler).
func (wl *SkewWorkload) RunSteal(p *Pool) float64 {
	w := p.Workers()
	total := len(wl.Rows)
	accs := wl.newAccs()
	var heavy, light []int
	for g, rows := range wl.Groups {
		if len(rows)*w > total {
			heavy = append(heavy, g)
		} else {
			light = append(light, g)
		}
	}
	for _, g := range heavy {
		rows, acc := wl.Groups[g], accs[g]
		p.Map(w, func(k int) {
			wl.foldRows(acc, rows, k*wl.Trials/w, (k+1)*wl.Trials/w)
		})
	}
	if len(light) > 0 {
		p.MapSized(len(light),
			func(i int) int { return len(wl.Groups[light[i]]) },
			func(i int) {
				g := light[i]
				wl.foldRows(accs[g], wl.Groups[g], 0, wl.Trials)
			})
	}
	return checksum(accs)
}

// RunAtomic folds with the PR-1 schedule: one ownership shard per worker,
// groups dealt round-robin, atomic-counter dispatch. On the zipf fixture the
// head group pins one shard while the counter has nothing left to hand the
// other workers.
func (wl *SkewWorkload) RunAtomic(p *Pool) float64 {
	w := p.Workers()
	accs := wl.newAccs()
	p.MapAtomic(w, func(shard int) {
		for g := shard; g < len(wl.Groups); g += w {
			wl.foldRows(accs[g], wl.Groups[g], 0, wl.Trials)
		}
	})
	return checksum(accs)
}

// BalanceSpeedup returns the parallel speedup each schedule's work placement
// implies at the given worker count: total work divided by the busiest
// worker's share (the critical path), in units of row×trial-slot adds. For
// the atomic schedule the shard ownership is static, so the figure is exact.
// For the stealing schedule it is computed from the initial size-hinted
// placement, which stealing can only improve — a lower bound. The figure is
// machine-independent: it is what the wall-clock benchmark converges to on
// hardware with at least `workers` free cores, and it is the honest skew
// metric on hosts with fewer.
func (wl *SkewWorkload) BalanceSpeedup(workers int) (steal, atomic float64) {
	w := workers
	if w < 1 {
		w = 1
	}
	total := int64(len(wl.Rows)) * int64(wl.Trials)
	perWorker := make([]int64, w)

	// Steal schedule: heavy groups split trial slots across the w map
	// indices; the light tail follows MapSized's seeding.
	nRows := len(wl.Rows)
	var light []int
	for g, rows := range wl.Groups {
		if len(rows)*w > nRows {
			for k := 0; k < w; k++ {
				slots := (k+1)*wl.Trials/w - k*wl.Trials/w
				perWorker[k] += int64(len(rows)) * int64(slots)
			}
		} else {
			light = append(light, g)
		}
	}
	if len(light) > 0 && w > 1 {
		sizes := make([]int, len(light))
		sum := 0
		for i, g := range light {
			sizes[i] = len(wl.Groups[g])
			sum += sizes[i]
		}
		for k, chunks := range sizedAssign(len(light), w, sizes, sum) {
			for _, c := range chunks {
				for i := c.lo; i < c.hi; i++ {
					perWorker[k] += int64(sizes[i]) * int64(wl.Trials)
				}
			}
		}
	} else {
		for _, g := range light {
			perWorker[0] += int64(len(wl.Groups[g])) * int64(wl.Trials)
		}
	}
	steal = float64(total) / float64(maxI64(perWorker))

	// Atomic schedule: static round-robin shard ownership.
	shardWork := make([]int64, w)
	for g, rows := range wl.Groups {
		shardWork[g%w] += int64(len(rows)) * int64(wl.Trials)
	}
	atomic = float64(total) / float64(maxI64(shardWork))
	return steal, atomic
}

func maxI64(xs []int64) int64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
