package cluster

import (
	"sync/atomic"
	"testing"

	"iolap/internal/rel"
)

func intRel(n int) *rel.Relation {
	r := rel.NewRelation(rel.Schema{{Name: "x", Type: rel.KInt}})
	for i := 0; i < n; i++ {
		r.Append(rel.Int(int64(i)))
	}
	return r
}

func TestPoolMapRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var count atomic.Int64
		seen := make([]atomic.Bool, 100)
		p.Map(100, func(i int) {
			count.Add(1)
			seen[i].Store(true)
		})
		if count.Load() != 100 {
			t.Errorf("workers=%d: ran %d tasks, want 100", workers, count.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Errorf("workers=%d: task %d not run", workers, i)
			}
		}
	}
}

func TestPoolMapZeroAndDefaults(t *testing.T) {
	p := NewPool(0)
	if p.Workers() <= 0 {
		t.Error("default pool must have positive parallelism")
	}
	p.Map(0, func(int) { t.Error("no tasks expected") })
}

func TestPartitionRoundRobin(t *testing.T) {
	parts := Partition(intRel(10), 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != 10 {
		t.Errorf("partition lost tuples: %d", total)
	}
	if parts[0].Len() != 4 || parts[1].Len() != 3 || parts[2].Len() != 3 {
		t.Errorf("round-robin sizes = %d,%d,%d", parts[0].Len(), parts[1].Len(), parts[2].Len())
	}
	if got := Partition(intRel(5), 0); len(got) != 1 {
		t.Error("p<=0 collapses to one partition")
	}
}

func TestPartitionByKeyIsDeterministicAndComplete(t *testing.T) {
	r := intRel(100)
	a := PartitionByKey(r, []int{0}, 4)
	b := PartitionByKey(r, []int{0}, 4)
	total := 0
	for i := range a {
		total += a[i].Len()
		if a[i].Len() != b[i].Len() {
			t.Error("hash partitioning must be deterministic")
		}
	}
	if total != 100 {
		t.Errorf("lost tuples: %d", total)
	}
	// Same key lands in the same partition.
	dup := rel.NewRelation(r.Schema)
	dup.Append(rel.Int(7))
	dup.Append(rel.Int(7))
	parts := PartitionByKey(dup, []int{0}, 8)
	nonEmpty := 0
	for _, p := range parts {
		if p.Len() > 0 {
			nonEmpty++
			if p.Len() != 2 {
				t.Error("equal keys must colocate")
			}
		}
	}
	if nonEmpty != 1 {
		t.Error("equal keys split across partitions")
	}
}

func TestPartitionByKeyAllocs(t *testing.T) {
	// The partition hot path must not allocate a key string per tuple
	// (PR 5 zero-alloc budget): rel.EncodeKeyInto with a reused scratch
	// buffer leaves only the output relations and their amortised slice
	// growth, far below one alloc per tuple.
	r := intRel(1000)
	keys := []int{0}
	allocs := testing.AllocsPerRun(10, func() {
		PartitionByKey(r, keys, 4)
	})
	if allocs > 120 {
		t.Errorf("PartitionByKey allocates %.0f times for 1000 tuples; key encoding is allocating per tuple", allocs)
	}
}

func TestKeyBucketMatchesPartitionByKey(t *testing.T) {
	// Probe-side routing (KeyBucket over encoded key bytes) must agree with
	// build-side placement for every tuple.
	r := intRel(200)
	keys := []int{0}
	const p = 8
	parts := PartitionByKey(r, keys, p)
	want := make(map[int64]int)
	for b, part := range parts {
		for _, t := range part.Tuples {
			want[t.Vals[0].Int()] = b
		}
	}
	var scratch []byte
	for _, tp := range r.Tuples {
		scratch = rel.EncodeKeyInto(scratch[:0], tp.Vals, keys)
		if got := KeyBucket(scratch, p); got != want[tp.Vals[0].Int()] {
			t.Fatalf("KeyBucket(%d) = %d, PartitionByKey placed it in %d", tp.Vals[0].Int(), got, want[tp.Vals[0].Int()])
		}
	}
	if KeyBucket([]byte("x"), 0) != 0 || KeyBucket([]byte("x"), 1) != 0 {
		t.Error("p <= 1 collapses to bucket 0")
	}
}

func TestShuffleIsPermutationAndDeterministic(t *testing.T) {
	r := intRel(50)
	s1 := Shuffle(r, 42)
	s2 := Shuffle(r, 42)
	s3 := Shuffle(r, 43)
	if !rel.EqualBag(r, s1, 0) {
		t.Error("shuffle must be a permutation")
	}
	same := true
	diff43 := false
	for i := range s1.Tuples {
		if s1.Tuples[i].Vals[0].Int() != s2.Tuples[i].Vals[0].Int() {
			same = false
		}
		if s1.Tuples[i].Vals[0].Int() != s3.Tuples[i].Vals[0].Int() {
			diff43 = true
		}
	}
	if !same {
		t.Error("same seed must give same permutation")
	}
	if !diff43 {
		t.Error("different seeds should differ")
	}
	// Original untouched.
	if r.Tuples[0].Vals[0].Int() != 0 {
		t.Error("Shuffle must not mutate its input")
	}
}

func TestMetrics(t *testing.T) {
	var m Metrics
	r := intRel(10)
	m.RecordShuffle(r)
	m.RecordBroadcast(r)
	m.RecordShuffleBytes(100)
	if m.ShuffleBytes() != int64(r.SizeBytes())+100 {
		t.Errorf("shuffle bytes = %d", m.ShuffleBytes())
	}
	if m.BroadcastBytes() != int64(r.SizeBytes()) {
		t.Errorf("broadcast bytes = %d", m.BroadcastBytes())
	}
	if m.ShuffleRows() != 10 {
		t.Errorf("shuffle rows = %d", m.ShuffleRows())
	}
	if m.TotalBytes() != m.ShuffleBytes()+m.BroadcastBytes() {
		t.Error("total mismatch")
	}
	m.Reset()
	if m.TotalBytes() != 0 {
		t.Error("reset failed")
	}
	// nil metrics are no-ops.
	var nilM *Metrics
	nilM.RecordShuffle(r)
	nilM.RecordBroadcast(r)
	nilM.RecordShuffleBytes(5)
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	p := NewPool(8)
	p.Map(1000, func(int) { m.RecordShuffleBytes(1) })
	if m.ShuffleBytes() != 1000 {
		t.Errorf("concurrent accounting lost updates: %d", m.ShuffleBytes())
	}
}
