// Package cluster is the execution substrate standing in for the paper's
// Spark deployment (20 r3.2xlarge machines): an in-process partitioned
// runtime with a worker pool, data partitioning utilities (including the
// random pre-shuffle tool of Section 2), and exchange accounting that
// records how many bytes a real deployment would ship over the network —
// the "data shipped at query time" metric of Figures 9(c) and 10(d).
//
// The algorithms in internal/core do not depend on real network transport:
// operator state, delta updates and lineage are machine-local concepts in
// the mini-batch model (Section 7), so a faithful single-process runtime
// preserves every behaviour the evaluation measures except absolute wall
// clock.
package cluster

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"iolap/internal/rel"
)

// Pool is a bounded worker pool for partition-parallel execution.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given parallelism; n <= 0 selects
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the parallelism.
func (p *Pool) Workers() int { return p.workers }

// chunkSplit is how many MapChunks chunks each worker gets beyond its even
// share: extra granularity lets the work-stealing scheduler rebalance
// chunks whose per-row cost is skewed (a probe chunk full of heavy-group
// matches, a classify chunk of wide rows).
const chunkSplit = 4

// Chunks returns the number of contiguous chunks MapChunks would use for n
// items: min(chunkSplit·workers, n) on a parallel pool, 1 otherwise. It
// depends only on (n, workers), never on scheduling, so callers can
// pre-allocate per-chunk outputs.
func (p *Pool) Chunks(n int) int {
	if p.workers == 1 || n <= 1 {
		return 1
	}
	c := p.workers * chunkSplit
	if c > n {
		c = n
	}
	return c
}

// MapChunks splits [0, n) into Chunks(n) contiguous index ranges of
// near-equal size and runs fn(chunk, lo, hi) for each on the pool. Because
// the chunk boundaries are a pure function of (n, workers), a caller that
// writes each chunk's results into its own slot and concatenates the slots
// in chunk order obtains output bit-identical to the sequential loop — the
// deterministic shard → ordered merge discipline every parallel operator in
// this repository follows.
func (p *Pool) MapChunks(n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	c := p.Chunks(n)
	p.Map(c, func(i int) {
		fn(i, i*n/c, (i+1)*n/c)
	})
}

// Partition splits a relation into p partitions round-robin (block-wise
// assignment is what the paper's default block randomness gives; callers
// that need value-hash partitioning use PartitionByKey).
func Partition(r *rel.Relation, p int) []*rel.Relation {
	if p <= 0 {
		p = 1
	}
	out := make([]*rel.Relation, p)
	for i := range out {
		out[i] = rel.NewRelation(r.Schema)
	}
	for i, t := range r.Tuples {
		out[i%p].Tuples = append(out[i%p].Tuples, t)
	}
	return out
}

// PartitionByKey splits a relation into p partitions by hashing the given
// key columns, the placement a distributed shuffle would produce.
func PartitionByKey(r *rel.Relation, keys []int, p int) []*rel.Relation {
	if p <= 0 {
		p = 1
	}
	out := make([]*rel.Relation, p)
	for i := range out {
		out[i] = rel.NewRelation(r.Schema)
	}
	var scratch []byte
	for _, t := range r.Tuples {
		scratch = rel.EncodeKeyInto(scratch[:0], t.Vals, keys)
		b := KeyBucket(scratch, p)
		out[b].Tuples = append(out[b].Tuples, t)
	}
	return out
}

// KeyHash is the FNV-1a hash over canonical key bytes (rel.EncodeKeyInto)
// that defines the PartitionByKey placement. Exported so probe-side code
// (partitioned join shipping in internal/core) can route probe rows to the
// same bucket as the build rows they match.
func KeyHash(key []byte) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return h
}

// KeyBucket maps canonical key bytes to one of p partitions, the shared
// routing function for build-side placement and probe-side shipping.
func KeyBucket(key []byte, p int) int {
	if p <= 1 {
		return 0
	}
	return int(KeyHash(key) % uint64(p))
}

// Shuffle returns a deterministic pseudo-random permutation of the
// relation's tuples — the pre-processing tool the paper offers when block
// randomness does not hold (Section 2: "iOLAP also provides data
// pre-processing tools to randomly shuffle the entire input dataset").
func Shuffle(r *rel.Relation, seed uint64) *rel.Relation {
	out := rel.NewRelation(r.Schema)
	out.Tuples = make([]rel.Tuple, len(r.Tuples))
	copy(out.Tuples, r.Tuples)
	// Fisher-Yates with a SplitMix64-derived stream.
	state := seed
	nextU64 := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	// Unbiased bounded sampling (Lemire's multiply-with-rejection): a plain
	// nextU64()%n favours small residues when n does not divide 2^64. The
	// rejection zone is [0, 2^64 mod n), hit with probability < n/2^64, so
	// retries are vanishingly rare for realistic relation sizes.
	boundedU64 := func(n uint64) uint64 {
		hi, lo := bits.Mul64(nextU64(), n)
		if lo < n {
			thresh := -n % n
			for lo < thresh {
				hi, lo = bits.Mul64(nextU64(), n)
			}
		}
		return hi
	}
	for i := len(out.Tuples) - 1; i > 0; i-- {
		j := int(boundedU64(uint64(i + 1)))
		out.Tuples[i], out.Tuples[j] = out.Tuples[j], out.Tuples[i]
	}
	return out
}

// Metrics accumulates exchange traffic. All methods are safe for concurrent
// use. Alongside bytes it counts *events* (non-empty exchanges): per-op
// averages derived from the counters (bytes per shuffle, shuffles per
// batch) are only meaningful when zero-byte records don't inflate the
// denominator, so empty records are dropped at the source — Record* with
// nothing to ship is a no-op.
type Metrics struct {
	shuffleBytes    atomic.Int64
	broadcastBytes  atomic.Int64
	shuffleRows     atomic.Int64
	shuffleEvents   atomic.Int64
	broadcastEvents atomic.Int64
	spillWritten    atomic.Int64
	spillRead       atomic.Int64
	spillProbeSkips atomic.Int64
	spillBloomSkips atomic.Int64
	wireShuffle     atomic.Int64
	wireBroadcast   atomic.Int64
}

// RecordShuffle notes bytes that a hash repartition would ship.
func (m *Metrics) RecordShuffle(r *rel.Relation) {
	if m == nil || r.Len() == 0 {
		return
	}
	m.shuffleBytes.Add(int64(r.SizeBytes()))
	m.shuffleRows.Add(int64(r.Len()))
	m.shuffleEvents.Add(1)
}

// RecordShuffleBytes notes raw shuffle bytes. Empty exchanges (n <= 0) are
// not recorded: they would contribute nothing to the byte totals but skew
// every per-event shuffle statistic.
func (m *Metrics) RecordShuffleBytes(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.shuffleBytes.Add(int64(n))
	m.shuffleEvents.Add(1)
}

// RecordBroadcast notes bytes that a broadcast join would replicate to every
// worker (counted once; the per-worker fan-out is a constant factor).
func (m *Metrics) RecordBroadcast(r *rel.Relation) {
	if m == nil || r.Len() == 0 {
		return
	}
	m.broadcastBytes.Add(int64(r.SizeBytes()))
	m.broadcastEvents.Add(1)
}

// RecordBroadcastBytes notes raw broadcast bytes (n <= 0 is a no-op, as for
// RecordShuffleBytes).
func (m *Metrics) RecordBroadcastBytes(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.broadcastBytes.Add(int64(n))
	m.broadcastEvents.Add(1)
}

// RecordSpillWrite notes bytes written to spill files when join state is
// evicted under memory pressure. Spill traffic is local disk I/O, not
// exchange, so it is excluded from TotalBytes.
func (m *Metrics) RecordSpillWrite(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.spillWritten.Add(int64(n))
}

// RecordSpillRead notes bytes read back from spill files by probes.
func (m *Metrics) RecordSpillRead(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.spillRead.Add(int64(n))
}

// RecordSpillProbeSkip notes a probe that the per-run min-max key filters
// resolved without touching the spill index or disk: the shard holds spilled
// rows, but no run's key range covers the probed key. The count is a pure
// function of the probe multiset and the (deterministic) spill schedule, so
// it is identical at every worker count.
func (m *Metrics) RecordSpillProbeSkip() {
	if m == nil {
		return
	}
	m.spillProbeSkips.Add(1)
}

// SpillProbeSkips returns how many probes the min-max filters short-circuited.
func (m *Metrics) SpillProbeSkips() int64 { return m.spillProbeSkips.Load() }

// RecordSpillBloomSkip notes a probe that fell inside some run's min-max key
// range but that every covering run's Bloom filter rejected — the sparse
// in-range miss the min-max filters cannot catch. Like the min-max skips,
// the count is a pure function of the probe multiset and the deterministic
// spill schedule, so it is identical at every worker count.
func (m *Metrics) RecordSpillBloomSkip() {
	if m == nil {
		return
	}
	m.spillBloomSkips.Add(1)
}

// SpillBloomSkips returns how many probes the per-run Bloom filters
// short-circuited after the min-max filters passed.
func (m *Metrics) SpillBloomSkips() int64 { return m.spillBloomSkips.Load() }

// RecordWireShuffle notes bytes actually measured on a transport connection
// carrying partition results toward the coordinator (the distributed
// analogue of shuffle traffic). Unlike the modeled Record*Bytes counters,
// wire counters report what a real deployment shipped, frame headers
// included.
func (m *Metrics) RecordWireShuffle(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.wireShuffle.Add(int64(n))
}

// RecordWireBroadcast notes measured bytes fanning out from the coordinator
// to workers (setup, batch control, merged results).
func (m *Metrics) RecordWireBroadcast(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.wireBroadcast.Add(int64(n))
}

// WireShuffleBytes returns measured worker-to-coordinator wire bytes.
func (m *Metrics) WireShuffleBytes() int64 { return m.wireShuffle.Load() }

// WireBroadcastBytes returns measured coordinator-to-worker wire bytes.
func (m *Metrics) WireBroadcastBytes() int64 { return m.wireBroadcast.Load() }

// SpillBytesWritten returns total bytes written to spill files.
func (m *Metrics) SpillBytesWritten() int64 { return m.spillWritten.Load() }

// SpillBytesRead returns total bytes read back from spill files.
func (m *Metrics) SpillBytesRead() int64 { return m.spillRead.Load() }

// ShuffleBytes returns total shuffled bytes.
func (m *Metrics) ShuffleBytes() int64 { return m.shuffleBytes.Load() }

// BroadcastBytes returns total broadcast bytes.
func (m *Metrics) BroadcastBytes() int64 { return m.broadcastBytes.Load() }

// ShuffleRows returns total shuffled physical rows.
func (m *Metrics) ShuffleRows() int64 { return m.shuffleRows.Load() }

// ShuffleEvents returns the number of non-empty shuffle exchanges recorded.
func (m *Metrics) ShuffleEvents() int64 { return m.shuffleEvents.Load() }

// BroadcastEvents returns the number of non-empty broadcasts recorded.
func (m *Metrics) BroadcastEvents() int64 { return m.broadcastEvents.Load() }

// TotalBytes returns all bytes shipped.
func (m *Metrics) TotalBytes() int64 { return m.ShuffleBytes() + m.BroadcastBytes() }

// Reset zeroes the counters.
func (m *Metrics) Reset() {
	m.shuffleBytes.Store(0)
	m.broadcastBytes.Store(0)
	m.shuffleRows.Store(0)
	m.shuffleEvents.Store(0)
	m.broadcastEvents.Store(0)
	m.spillWritten.Store(0)
	m.spillRead.Store(0)
	m.spillProbeSkips.Store(0)
	m.spillBloomSkips.Store(0)
	m.wireShuffle.Store(0)
	m.wireBroadcast.Store(0)
}
