package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the Pool's scheduler: a chunked, deque-based
// work-stealing loop replacing the PR-1 atomic-counter fan-out. Tasks are
// grouped into contiguous chunks; each worker owns a deque of chunks seeded
// with a contiguous share of the index space and pops from the front in
// order (cache-friendly sequential walks), while idle workers steal the back
// half of a victim's deque. Because every chunk is an independent,
// deterministic unit of work whose outputs land in caller-owned slots keyed
// by index, stealing reorders only *execution*, never the merge — the
// bit-identical-at-any-worker-count invariant of DESIGN.md §7 is untouched.
//
// Two scheduling pathologies of the atomic counter motivated the change:
//
//   - contention: with per-index dispatch every worker hammers one shared
//     cache line; tiny tasks (scan weight derivation, sink emits) spend more
//     time in the CAS loop than in fn.
//   - skew: call sites that fan out over a handful of ownership units (hash
//     store shards, per-group folds) see one heavy unit pin a worker while
//     the counter hands the idle workers nothing — there is nothing left to
//     hand out. Size-hinted chunking (MapSized) packs the initial deques by
//     measured unit cost, and stealing rebalances whatever the hints missed.

// chunk is a half-open range of task indices owned by one worker at a time.
type chunk struct{ lo, hi int }

// deque is one worker's chunk queue. The owner pops from the front; thieves
// take the back half. A plain mutex suffices: pops are per-chunk (not
// per-index), so the lock is touched a few dozen times per Map call.
type deque struct {
	mu     sync.Mutex
	chunks []chunk
	head   int
}

// popFront removes the front chunk (owner side).
func (d *deque) popFront() (chunk, bool) {
	d.mu.Lock()
	if d.head >= len(d.chunks) {
		d.mu.Unlock()
		return chunk{}, false
	}
	c := d.chunks[d.head]
	d.head++
	d.mu.Unlock()
	return c, true
}

// stealBack removes the back half (rounded up) of the deque (thief side).
// The caller deposits the surplus into its own deque afterwards; the two
// locks are never held together, so steal chains cannot deadlock.
func (d *deque) stealBack() []chunk {
	d.mu.Lock()
	avail := len(d.chunks) - d.head
	if avail <= 0 {
		d.mu.Unlock()
		return nil
	}
	take := (avail + 1) / 2
	stolen := d.chunks[len(d.chunks)-take:]
	d.chunks = d.chunks[:len(d.chunks)-take]
	d.mu.Unlock()
	return stolen
}

// deposit replaces the deque contents with the given chunks (thief side;
// called only when the deque is empty).
func (d *deque) deposit(cs []chunk) {
	d.mu.Lock()
	d.chunks = cs
	d.head = 0
	d.mu.Unlock()
}

// Scheduler tuning. chunksPerWorker bounds dispatch overhead (a worker
// takes its fair share in ~chunksPerWorker pops when nothing is stolen)
// while leaving enough granularity for thieves to rebalance skew.
// stealSpins bounds the busy rescan of a worker that sees queued work it
// cannot reach (chunks in transit between deques) before it parks.
const (
	chunksPerWorker = 8
	stealSpins      = 64
	parkDelay       = 20 * time.Microsecond
)

// runSteal executes every chunk in assign exactly once on len(assign)
// workers. assign[g] seeds worker g's deque; queued is the total chunk
// count. A worker whose deque runs dry scans the other deques in ring order
// and steals the back half of the first non-empty victim; when the global
// queued count hits zero no stealable work can ever appear again (chunks
// move between deques but are never created), so the worker exits. A panic
// in fn aborts the remaining chunks and is re-raised on the caller's
// goroutine after all workers have stopped.
func runSteal(assign [][]chunk, run func(lo, hi int)) {
	w := len(assign)
	deques := make([]*deque, w)
	var queued atomic.Int64
	for g := range deques {
		deques[g] = &deque{chunks: assign[g]}
		queued.Add(int64(len(assign[g])))
	}
	var (
		wg       sync.WaitGroup
		aborted  atomic.Bool
		panicked atomic.Bool
		panicVal interface{}
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// First panic wins; the value is re-raised by the
					// caller so a panicking partition can neither deadlock
					// the pool nor die silently on its own goroutine.
					if panicked.CompareAndSwap(false, true) {
						panicVal = r
					}
					aborted.Store(true)
				}
			}()
			self := deques[g]
			for !aborted.Load() {
				c, ok := self.popFront()
				if !ok {
					c, ok = steal(deques, g, self, &queued, &aborted)
					if !ok {
						return
					}
				}
				queued.Add(-1)
				run(c.lo, c.hi)
			}
		}(g)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// steal finds work for worker g: it scans the other deques in ring order,
// takes the back half of the first non-empty victim, keeps the first stolen
// chunk for itself and deposits the rest locally. It spins (bounded) while
// queued work is in transit between deques, then parks briefly; it returns
// ok=false once no queued work remains anywhere.
func steal(deques []*deque, g int, self *deque, queued *atomic.Int64, aborted *atomic.Bool) (chunk, bool) {
	w := len(deques)
	for spins := 0; ; spins++ {
		if queued.Load() == 0 || aborted.Load() {
			return chunk{}, false
		}
		for k := 1; k < w; k++ {
			if stolen := deques[(g+k)%w].stealBack(); len(stolen) > 0 {
				if len(stolen) > 1 {
					self.deposit(stolen[1:])
				}
				return stolen[0], true
			}
		}
		if spins < stealSpins {
			runtime.Gosched()
		} else {
			time.Sleep(parkDelay)
		}
	}
}

// evenChunks splits [0, n) into per-worker chunk lists: worker g's deque is
// seeded with the contiguous range [g·n/w, (g+1)·n/w), cut into up to
// chunksPerWorker chunks. Pure function of (n, w).
func evenChunks(n, w int) [][]chunk {
	assign := make([][]chunk, w)
	for g := 0; g < w; g++ {
		lo, hi := g*n/w, (g+1)*n/w
		assign[g] = cutRange(lo, hi, chunksPerWorker)
	}
	return assign
}

// cutRange splits [lo, hi) into at most parts near-equal chunks.
func cutRange(lo, hi, parts int) []chunk {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]chunk, 0, parts)
	for i := 0; i < parts; i++ {
		out = append(out, chunk{lo + i*n/parts, lo + (i+1)*n/parts})
	}
	return out
}

// Map runs fn(i) for i in [0, n) on the pool and blocks until all complete.
// Execution order is unspecified; callers must make fn(i) independent of
// scheduling (every call site in this repository writes to slot i or an
// owned shard). If fn panics, the first panic is re-raised on the caller's
// goroutine after all workers have stopped.
func (p *Pool) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	runSteal(evenChunks(n, w), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// MapSized runs fn(i) for i in [0, n) like Map, but seeds the initial
// distribution from per-task size hints (arbitrary non-negative cost units,
// e.g. row counts): worker boundaries follow the size prefix sums instead of
// the index space, and a task heavier than a fair chunk becomes its own
// chunk so a thief can pick off its siblings. The hints affect scheduling
// only — results are identical to Map for any hint function.
func (p *Pool) MapSized(n int, size func(i int) int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	total := 0
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		s := size(i)
		if s < 0 {
			s = 0
		}
		sizes[i] = s
		total += s
	}
	if total == 0 {
		runSteal(evenChunks(n, w), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fn(i)
			}
		})
		return
	}
	runSteal(sizedAssign(n, w, sizes, total), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// sizedAssign seeds per-worker deques from size hints: the index space is
// cut wherever the cumulative size crosses a chunk budget
// (total / (w · chunksPerWorker)), so chunks carry near-equal cost, and each
// worker is seeded with a contiguous run of chunks of near-equal cumulative
// cost. Pure function of its inputs — cmd/benchskew's placement analysis
// relies on reproducing exactly the seeding MapSized uses.
func sizedAssign(n, w int, sizes []int, total int) [][]chunk {
	budget := total/(w*chunksPerWorker) + 1
	var cuts []chunk
	acc, lo := 0, 0
	for i := 0; i < n; i++ {
		acc += sizes[i]
		if acc >= budget {
			cuts = append(cuts, chunk{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	if lo < n {
		cuts = append(cuts, chunk{lo, n})
	}
	assign := make([][]chunk, w)
	share := total/w + 1
	acc, g := 0, 0
	for _, c := range cuts {
		assign[g] = append(assign[g], c)
		for i := c.lo; i < c.hi; i++ {
			acc += sizes[i]
		}
		if acc >= share && g < w-1 {
			g, acc = g+1, 0
		}
	}
	return assign
}

// MapAtomic is the PR-1 scheduler — one shared atomic counter, per-index
// dispatch — kept as the reference baseline for the skew benchmarks
// (BenchmarkSkew*, cmd/benchskew). Production call sites use Map/MapSized.
func (p *Pool) MapAtomic(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	w := p.workers
	if w > n {
		w = n
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// String implements fmt.Stringer for debugging.
func (c chunk) String() string { return fmt.Sprintf("[%d,%d)", c.lo, c.hi) }
