package cluster

import (
	"sync/atomic"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Work-stealing scheduler

func TestMapRunsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			p := NewPool(workers)
			counts := make([]atomic.Int32, n)
			p.Map(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestMapSizedRunsEachIndexOnce(t *testing.T) {
	hints := map[string]func(i int) int{
		"uniform":  func(i int) int { return 1 },
		"zero":     func(i int) int { return 0 },
		"negative": func(i int) int { return -5 },
		// One task dwarfs the rest: the seeding must still cover every index.
		"skewed": func(i int) int {
			if i == 3 {
				return 1 << 20
			}
			return 1
		},
		"ramp": func(i int) int { return i },
	}
	for name, size := range hints {
		for _, workers := range []int{1, 2, 8} {
			for _, n := range []int{0, 1, 5, 100, 257} {
				p := NewPool(workers)
				counts := make([]atomic.Int32, n)
				p.MapSized(n, size, func(i int) { counts[i].Add(1) })
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("hint=%s workers=%d n=%d: index %d ran %d times", name, workers, n, i, got)
					}
				}
			}
		}
	}
}

func TestMapAtomicRunsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		counts := make([]atomic.Int32, 500)
		p.MapAtomic(500, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestMapPanicPropagates pins the satellite bugfix: a panic inside fn must
// surface on the caller's goroutine — the old scheduler let it kill a worker
// goroutine and take the process down — and the pool must remain usable.
func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var recovered interface{}
		func() {
			defer func() { recovered = recover() }()
			p.Map(100, func(i int) {
				if i == 37 {
					panic("partition 37 exploded")
				}
			})
		}()
		if recovered != "partition 37 exploded" {
			t.Fatalf("workers=%d: recovered %v, want the partition's panic value", workers, recovered)
		}
		// The pool is stateless across calls: the next Map must work.
		var ran atomic.Int32
		p.Map(50, func(int) { ran.Add(1) })
		if ran.Load() != 50 {
			t.Fatalf("workers=%d: pool unusable after panic: ran %d/50", workers, ran.Load())
		}
	}
}

// TestMapManyPanics: when several partitions panic, exactly one value is
// re-raised and every worker still exits (no deadlock on the WaitGroup).
func TestMapManyPanics(t *testing.T) {
	p := NewPool(8)
	done := make(chan interface{}, 1)
	go func() {
		defer func() { done <- recover() }()
		p.Map(64, func(i int) { panic(i) })
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("panic swallowed")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Map deadlocked after panics")
	}
}

func TestDequeOwnerAndThief(t *testing.T) {
	d := &deque{chunks: []chunk{{0, 1}, {1, 2}, {2, 3}, {3, 4}}}
	// Owner pops from the front in order.
	c, ok := d.popFront()
	if !ok || c != (chunk{0, 1}) {
		t.Fatalf("popFront = %v, %v", c, ok)
	}
	// Thief takes the back half of what remains (3 chunks → 2 stolen).
	stolen := d.stealBack()
	if len(stolen) != 2 || stolen[0] != (chunk{2, 3}) || stolen[1] != (chunk{3, 4}) {
		t.Fatalf("stealBack = %v", stolen)
	}
	// Owner keeps the front remainder.
	c, ok = d.popFront()
	if !ok || c != (chunk{1, 2}) {
		t.Fatalf("popFront after steal = %v, %v", c, ok)
	}
	if _, ok := d.popFront(); ok {
		t.Fatal("deque should be empty")
	}
	if s := d.stealBack(); s != nil {
		t.Fatalf("steal from empty deque = %v", s)
	}
}

func TestEvenChunksPartitionTheRange(t *testing.T) {
	for _, n := range []int{1, 2, 16, 100, 1023} {
		for _, w := range []int{1, 2, 8} {
			assign := evenChunks(n, w)
			if len(assign) != w {
				t.Fatalf("n=%d w=%d: %d workers", n, w, len(assign))
			}
			next := 0
			for _, cs := range assign {
				for _, c := range cs {
					if c.lo != next || c.hi <= c.lo {
						t.Fatalf("n=%d w=%d: chunk %v not contiguous at %d", n, w, c, next)
					}
					next = c.hi
				}
			}
			if next != n {
				t.Fatalf("n=%d w=%d: chunks cover [0,%d), want [0,%d)", n, w, next, n)
			}
		}
	}
}

func TestChunksIsPureAndBounded(t *testing.T) {
	p := NewPool(4)
	if got := p.Chunks(1000); got != 16 {
		t.Errorf("Chunks(1000) = %d, want workers*chunkSplit = 16", got)
	}
	if got := p.Chunks(5); got != 5 {
		t.Errorf("Chunks(5) = %d, want n when n < workers*chunkSplit", got)
	}
	if got := NewPool(1).Chunks(1000); got != 1 {
		t.Errorf("sequential pool Chunks = %d, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// Adaptive cutover model

func TestCostModelFixedPinsEveryClass(t *testing.T) {
	m := NewCostModel(7)
	for c := OpClass(0); c < numOpClasses; c++ {
		if got := m.Threshold(c); got != 7 {
			t.Errorf("class %s: fixed threshold = %d, want 7", c, got)
		}
	}
	// Observations are ignored while pinned.
	m.Observe(CostFold, 1000, time.Second, 1)
	if got := m.Threshold(CostFold); got != 7 {
		t.Errorf("fixed threshold drifted to %d after Observe", got)
	}
}

func TestCostModelAdaptsFromObservations(t *testing.T) {
	m := NewCostModel(0)
	before := m.Threshold(CostSelect)
	// Feed consistently expensive rows: 10µs per row should drive the
	// cutover down to the minimum clamp.
	for i := 0; i < 100; i++ {
		m.Observe(CostSelect, 1000, 10*time.Millisecond, 1)
	}
	after := m.Threshold(CostSelect)
	if after >= before {
		t.Fatalf("threshold did not drop: %d -> %d", before, after)
	}
	if after != minCutover {
		t.Fatalf("expensive rows should clamp to minCutover %d, got %d", minCutover, after)
	}
	// Feed near-free rows: the cutover must rise and clamp at the maximum.
	for i := 0; i < 200; i++ {
		m.Observe(CostSelect, 1_000_000, time.Microsecond, 1)
	}
	if got := m.Threshold(CostSelect); got != maxCutover {
		t.Fatalf("free rows should clamp to maxCutover %d, got %d", maxCutover, got)
	}
}

func TestCostModelScalesParallelObservations(t *testing.T) {
	seq, par := NewCostModel(0), NewCostModel(0)
	// The same wall clock at workers=8 represents ~8x the single-threaded
	// work, so the parallel observation must infer a higher per-row cost.
	seq.Observe(CostFold, 1000, time.Millisecond, 1)
	par.Observe(CostFold, 1000, time.Millisecond, 8)
	if par.PerRowNs(CostFold) <= seq.PerRowNs(CostFold) {
		t.Fatalf("parallel observation (%v ns/row) should exceed sequential (%v ns/row)",
			par.PerRowNs(CostFold), seq.PerRowNs(CostFold))
	}
}

func TestCostModelIgnoresDegenerateObservations(t *testing.T) {
	m := NewCostModel(0)
	before := m.PerRowNs(CostScan)
	m.Observe(CostScan, 0, time.Second, 1)  // zero rows
	m.Observe(CostScan, 100, 0, 1)          // zero duration (clock granularity)
	m.Observe(CostScan, -5, time.Second, 1) // negative rows
	if m.PerRowNs(CostScan) != before {
		t.Fatal("degenerate observations moved the EWMA")
	}
}

func TestCostModelNilSafe(t *testing.T) {
	var m *CostModel
	if got := m.Threshold(CostFold); got <= 0 {
		t.Fatalf("nil model threshold = %d", got)
	}
	m.Observe(CostFold, 10, time.Second, 1) // must not panic
	if m.PerRowNs(CostFold) != 0 {
		t.Fatal("nil model per-row cost should read 0")
	}
}

func TestCostModelTimedFeedsEWMA(t *testing.T) {
	m := NewCostModel(0)
	before := m.PerRowNs(CostSink)
	d := m.Timed(CostSink, 100, 1, func() { time.Sleep(2 * time.Millisecond) })
	if d < 2*time.Millisecond {
		t.Fatalf("Timed returned %v for a 2ms body", d)
	}
	if m.PerRowNs(CostSink) == before {
		t.Fatal("Timed did not feed the EWMA")
	}
}

// ---------------------------------------------------------------------------
// Exchange accounting regression (satellite: zero-byte events)

// TestMetricsDropEmptyExchanges pins the accounting bugfix: recording an
// empty relation or zero/negative byte count must change neither the byte
// totals nor the event counters, so per-event statistics (bytes per shuffle)
// cannot be skewed by phantom exchanges.
func TestMetricsDropEmptyExchanges(t *testing.T) {
	var m Metrics
	empty := intRel(0)
	m.RecordShuffle(empty)
	m.RecordBroadcast(empty)
	m.RecordShuffleBytes(0)
	m.RecordShuffleBytes(-10)
	m.RecordBroadcastBytes(0)
	m.RecordBroadcastBytes(-1)
	if m.TotalBytes() != 0 {
		t.Errorf("empty exchanges contributed %d bytes", m.TotalBytes())
	}
	if m.ShuffleEvents() != 0 || m.BroadcastEvents() != 0 {
		t.Errorf("empty exchanges counted as events: %d shuffles, %d broadcasts",
			m.ShuffleEvents(), m.BroadcastEvents())
	}

	// Real traffic books bytes and events on the right counters.
	r := intRel(10)
	m.RecordShuffle(r)
	m.RecordShuffleBytes(100)
	m.RecordBroadcast(r)
	m.RecordBroadcastBytes(7)
	if got, want := m.ShuffleEvents(), int64(2); got != want {
		t.Errorf("shuffle events = %d, want %d", got, want)
	}
	if got, want := m.BroadcastEvents(), int64(2); got != want {
		t.Errorf("broadcast events = %d, want %d", got, want)
	}
	wantTotal := 2*int64(r.SizeBytes()) + 100 + 7
	if m.TotalBytes() != wantTotal {
		t.Errorf("TotalBytes = %d, want %d", m.TotalBytes(), wantTotal)
	}
	m.Reset()
	if m.ShuffleEvents() != 0 || m.BroadcastEvents() != 0 || m.TotalBytes() != 0 {
		t.Error("Reset left event counters behind")
	}
}
