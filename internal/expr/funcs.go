package expr

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"iolap/internal/bootstrap"
	"iolap/internal/rel"
)

// ScalarFunc describes a (possibly user-defined) scalar function. The paper
// supports UDFs inside online queries (Section 1, workload C6/C7); they work
// here in all three evaluation modes — replicates call Fn per trial, and
// intervals use IntervalFn when provided or the conservative full range.
type ScalarFunc struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 for variadic
	RetType rel.Kind
	Fn      func(args []rel.Value) rel.Value
	// IntervalFn, when non-nil, propagates variation ranges through the
	// function. Omitting it is always sound: unknown ranges widen to Full,
	// which can only enlarge the non-deterministic set, never corrupt
	// results.
	IntervalFn func(args []bootstrap.Interval) bootstrap.Interval
}

// Registry maps function names to implementations. The zero value is empty;
// NewRegistry returns one preloaded with the builtins.
type Registry struct {
	mu  sync.RWMutex
	fns map[string]*ScalarFunc
}

// NewRegistry returns a registry containing the builtin functions.
func NewRegistry() *Registry {
	r := &Registry{fns: make(map[string]*ScalarFunc)}
	for _, f := range builtins() {
		f := f
		r.fns[f.Name] = &f
	}
	return r
}

// Register installs (or replaces) a scalar function; names are
// case-insensitive.
func (r *Registry) Register(f ScalarFunc) error {
	if f.Name == "" || f.Fn == nil {
		return fmt.Errorf("expr: invalid function registration %q", f.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[strings.ToUpper(f.Name)] = &f
	return nil
}

// Lookup finds a function by name.
func (r *Registry) Lookup(name string) (*ScalarFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.fns[strings.ToUpper(name)]
	return f, ok
}

func num1(name string, fn func(float64) float64, ivFn func(bootstrap.Interval) bootstrap.Interval) ScalarFunc {
	sf := ScalarFunc{
		Name: name, MinArgs: 1, MaxArgs: 1, RetType: rel.KFloat,
		Fn: func(args []rel.Value) rel.Value {
			if args[0].IsNull() {
				return rel.Null()
			}
			return rel.Float(fn(args[0].Float()))
		},
	}
	if ivFn != nil {
		sf.IntervalFn = func(args []bootstrap.Interval) bootstrap.Interval {
			return ivFn(args[0])
		}
	}
	return sf
}

func monotone(fn func(float64) float64) func(bootstrap.Interval) bootstrap.Interval {
	return func(iv bootstrap.Interval) bootstrap.Interval {
		lo, hi := fn(iv.Lo), fn(iv.Hi)
		if lo > hi {
			lo, hi = hi, lo
		}
		return bootstrap.Interval{Lo: lo, Hi: hi}
	}
}

func builtins() []ScalarFunc {
	return []ScalarFunc{
		num1("ABS", math.Abs, func(iv bootstrap.Interval) bootstrap.Interval {
			if iv.Contains(0) {
				return bootstrap.Interval{Lo: 0, Hi: math.Max(math.Abs(iv.Lo), math.Abs(iv.Hi))}
			}
			lo, hi := math.Abs(iv.Lo), math.Abs(iv.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			return bootstrap.Interval{Lo: lo, Hi: hi}
		}),
		num1("SQRT", func(x float64) float64 {
			if x < 0 {
				return math.NaN()
			}
			return math.Sqrt(x)
		}, monotone(func(x float64) float64 {
			if x < 0 {
				return 0
			}
			return math.Sqrt(x)
		})),
		num1("LN", func(x float64) float64 {
			if x <= 0 {
				return math.Inf(-1)
			}
			return math.Log(x)
		}, nil),
		num1("EXP", math.Exp, monotone(math.Exp)),
		num1("FLOOR", math.Floor, monotone(math.Floor)),
		num1("CEIL", math.Ceil, monotone(math.Ceil)),
		num1("SIGN", func(x float64) float64 {
			switch {
			case x > 0:
				return 1
			case x < 0:
				return -1
			}
			return 0
		}, nil),
		{
			Name: "ROUND", MinArgs: 1, MaxArgs: 2, RetType: rel.KFloat,
			Fn: func(args []rel.Value) rel.Value {
				if args[0].IsNull() {
					return rel.Null()
				}
				x := args[0].Float()
				if len(args) == 2 && !args[1].IsNull() {
					p := math.Pow(10, float64(args[1].Int()))
					return rel.Float(math.Round(x*p) / p)
				}
				return rel.Float(math.Round(x))
			},
		},
		{
			Name: "POW", MinArgs: 2, MaxArgs: 2, RetType: rel.KFloat,
			Fn: func(args []rel.Value) rel.Value {
				if args[0].IsNull() || args[1].IsNull() {
					return rel.Null()
				}
				return rel.Float(math.Pow(args[0].Float(), args[1].Float()))
			},
		},
		{
			Name: "GREATEST", MinArgs: 2, MaxArgs: -1, RetType: rel.KFloat,
			Fn: func(args []rel.Value) rel.Value {
				best := math.Inf(-1)
				for _, a := range args {
					if a.IsNull() {
						continue
					}
					if v := a.Float(); v > best {
						best = v
					}
				}
				return rel.Float(best)
			},
			IntervalFn: func(args []bootstrap.Interval) bootstrap.Interval {
				out := args[0]
				for _, iv := range args[1:] {
					out.Lo = math.Max(out.Lo, iv.Lo)
					out.Hi = math.Max(out.Hi, iv.Hi)
				}
				return out
			},
		},
		{
			Name: "LEAST", MinArgs: 2, MaxArgs: -1, RetType: rel.KFloat,
			Fn: func(args []rel.Value) rel.Value {
				best := math.Inf(1)
				for _, a := range args {
					if a.IsNull() {
						continue
					}
					if v := a.Float(); v < best {
						best = v
					}
				}
				return rel.Float(best)
			},
			IntervalFn: func(args []bootstrap.Interval) bootstrap.Interval {
				out := args[0]
				for _, iv := range args[1:] {
					out.Lo = math.Min(out.Lo, iv.Lo)
					out.Hi = math.Min(out.Hi, iv.Hi)
				}
				return out
			},
		},
		{
			Name: "COALESCE", MinArgs: 1, MaxArgs: -1, RetType: rel.KFloat,
			Fn: func(args []rel.Value) rel.Value {
				for _, a := range args {
					if !a.IsNull() {
						return a
					}
				}
				return rel.Null()
			},
		},
		{
			Name: "IF", MinArgs: 3, MaxArgs: 3, RetType: rel.KFloat,
			Fn: func(args []rel.Value) rel.Value {
				if !args[0].IsNull() && args[0].Kind() == rel.KBool && args[0].Bool() {
					return args[1]
				}
				return args[2]
			},
			IntervalFn: func(args []bootstrap.Interval) bootstrap.Interval {
				return bootstrap.Interval{
					Lo: math.Min(args[1].Lo, args[2].Lo),
					Hi: math.Max(args[1].Hi, args[2].Hi),
				}
			},
		},
		{
			Name: "UPPER", MinArgs: 1, MaxArgs: 1, RetType: rel.KString,
			Fn: func(args []rel.Value) rel.Value {
				if args[0].IsNull() {
					return rel.Null()
				}
				return rel.String(strings.ToUpper(args[0].Str()))
			},
		},
		{
			Name: "LOWER", MinArgs: 1, MaxArgs: 1, RetType: rel.KString,
			Fn: func(args []rel.Value) rel.Value {
				if args[0].IsNull() {
					return rel.Null()
				}
				return rel.String(strings.ToLower(args[0].Str()))
			},
		},
		{
			Name: "LENGTH", MinArgs: 1, MaxArgs: 1, RetType: rel.KInt,
			Fn: func(args []rel.Value) rel.Value {
				if args[0].IsNull() {
					return rel.Null()
				}
				return rel.Int(int64(len(args[0].Str())))
			},
		},
		{
			Name: "SUBSTR", MinArgs: 3, MaxArgs: 3, RetType: rel.KString,
			Fn: func(args []rel.Value) rel.Value {
				if args[0].IsNull() {
					return rel.Null()
				}
				s := args[0].Str()
				start := int(args[1].Int()) - 1 // SQL is 1-based
				n := int(args[2].Int())
				if start < 0 {
					start = 0
				}
				if start > len(s) {
					start = len(s)
				}
				end := start + n
				if end > len(s) {
					end = len(s)
				}
				return rel.String(s[start:end])
			},
		},
		{
			Name: "CONCAT", MinArgs: 1, MaxArgs: -1, RetType: rel.KString,
			Fn: func(args []rel.Value) rel.Value {
				var b strings.Builder
				for _, a := range args {
					if !a.IsNull() {
						b.WriteString(a.String())
					}
				}
				return rel.String(b.String())
			},
		},
	}
}

// Func is a scalar function call node.
type Func struct {
	F    *ScalarFunc
	Args []Expr
}

// NewFunc builds a call after arity validation.
func NewFunc(f *ScalarFunc, args []Expr) (*Func, error) {
	if len(args) < f.MinArgs || (f.MaxArgs >= 0 && len(args) > f.MaxArgs) {
		return nil, fmt.Errorf("expr: %s expects %d..%d args, got %d",
			f.Name, f.MinArgs, f.MaxArgs, len(args))
	}
	return &Func{F: f, Args: args}, nil
}

func (e *Func) Eval(row []rel.Value, res Resolver) rel.Value {
	args := make([]rel.Value, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Eval(row, res)
	}
	return e.F.Fn(args)
}

func (e *Func) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	args := make([]rel.Value, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.EvalRep(row, res, b)
	}
	return e.F.Fn(args)
}

func (e *Func) Interval(row []rel.Value, res Resolver) bootstrap.Interval {
	if e.F.IntervalFn == nil {
		// Conservative: unknown propagation widens to the full line,
		// which only costs recomputation, never correctness.
		allPoint := true
		args := make([]bootstrap.Interval, len(e.Args))
		for i, a := range e.Args {
			if a.Type() == rel.KInt || a.Type() == rel.KFloat {
				args[i] = a.Interval(row, res)
				if !args[i].IsPoint() {
					allPoint = false
				}
			}
		}
		if allPoint {
			v := e.Eval(row, res)
			if v.IsNumeric() {
				return bootstrap.Point(v.Float())
			}
		}
		return bootstrap.Full()
	}
	args := make([]bootstrap.Interval, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.Interval(row, res)
	}
	return e.F.IntervalFn(args)
}

func (e *Func) Tri(row []rel.Value, res Resolver) Tri {
	v := e.Eval(row, res)
	if v.Kind() == rel.KBool {
		return FromBool(v.Bool())
	}
	return False
}

func (e *Func) Cols(dst []int) []int {
	for _, a := range e.Args {
		dst = a.Cols(dst)
	}
	return dst
}

func (e *Func) Type() rel.Kind { return e.F.RetType }

func (e *Func) String() string {
	var b strings.Builder
	b.WriteString(e.F.Name)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}
