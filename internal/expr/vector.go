// Columnar predicate evaluation (DESIGN.md §14). CompileVec lowers the
// deterministic predicate shapes the select operator sees most — columns,
// literals, comparisons and IN over them, AND/OR/NOT — into a form that
// evaluates whole column banks at a time, filling a selection slice
// instead of walking the expression tree per row. Everything outside that
// subset (arithmetic, CASE, UDFs) reports !ok and stays on the row path.
//
// Semantics are pinned to the row path's acceptance test: for every row,
// the compiled predicate produces exactly
//
//	v := e.Eval(row, nil); !v.IsNull() && v.Kind() == KBool && v.Bool()
//
// including NULL-rejects-comparison, NaN-matches-nothing, cross-kind
// ordering by Kind, and NOT IN's NULL behaviour. The caller must ensure
// the batch carries no unresolved refs (rel.Columns.HasRefs) — the
// columnar path has no Resolver.
package expr

import (
	"math"

	"iolap/internal/rel"
)

// Vectorized is a compiled columnar predicate. It is immutable after
// compilation and safe for concurrent EvalCols calls over disjoint spans.
type Vectorized struct{ root vecNode }

// EvalCols fills pass[i-lo] with the acceptance verdict of row i for rows
// [lo, hi) of c. len(pass) must be hi-lo.
func (v *Vectorized) EvalCols(c *rel.Columns, lo, hi int, pass []bool) {
	v.root.eval(c, lo, hi, pass)
}

// Cols appends the column indices the compiled predicate reads (with
// repeats) — the bank set a subset columnar view must materialise before
// EvalCols may run.
func (v *Vectorized) Cols(dst []int) []int { return v.root.cols(dst) }

// CompileVec compiles a predicate for columnar evaluation; ok=false means
// the expression is outside the vectorizable subset and the caller keeps
// the row path.
func CompileVec(e Expr) (*Vectorized, bool) {
	n, ok := compileVecNode(e)
	if !ok {
		return nil, false
	}
	return &Vectorized{root: n}, true
}

type vecNode interface {
	eval(c *rel.Columns, lo, hi int, pass []bool)
	cols(dst []int) []int
}

func compileVecNode(e Expr) (vecNode, bool) {
	switch e := e.(type) {
	case *Const:
		return vecConst{b: e.V.Kind() == rel.KBool && e.V.Bool()}, true
	case *Col:
		return vecBoolCol{idx: e.Idx}, true
	case *Cmp:
		return compileVecCmp(e)
	case *And:
		l, ok := compileVecNode(e.L)
		if !ok {
			return nil, false
		}
		r, ok := compileVecNode(e.R)
		if !ok {
			return nil, false
		}
		return vecAnd{l: l, r: r}, true
	case *Or:
		l, ok := compileVecNode(e.L)
		if !ok {
			return nil, false
		}
		r, ok := compileVecNode(e.R)
		if !ok {
			return nil, false
		}
		return vecOr{l: l, r: r}, true
	case *Not:
		n, ok := compileVecNode(e.E)
		if !ok {
			return nil, false
		}
		return vecNot{e: n}, true
	case *In:
		col, ok := e.E.(*Col)
		if !ok {
			return nil, false
		}
		items := make([]rel.Value, len(e.List))
		for i, item := range e.List {
			c, ok := item.(*Const)
			if !ok {
				return nil, false
			}
			items[i] = c.V
		}
		return vecIn{idx: col.Idx, items: items, inv: e.Inv}, true
	}
	return nil, false
}

func compileVecCmp(e *Cmp) (vecNode, bool) {
	lc, lIsCol := e.L.(*Col)
	rc, rIsCol := e.R.(*Col)
	lv, lIsConst := e.L.(*Const)
	rv, rIsConst := e.R.(*Const)
	switch {
	case lIsConst && rIsConst:
		return vecConst{b: cmpValues(e.Op, lv.V, rv.V).Bool()}, true
	case lIsCol && rIsConst:
		return colCmp{op: e.Op, idx: lc.Idx, cv: rv.V}, true
	case lIsConst && rIsCol:
		// const OP col normalises to col mirror(OP) const: Compare is
		// antisymmetric, so the verdicts are identical row for row.
		return colCmp{op: mirrorCmp(e.Op), idx: rc.Idx, cv: lv.V}, true
	case lIsCol && rIsCol:
		return colColCmp{op: e.Op, li: lc.Idx, ri: rc.Idx}, true
	}
	return nil, false
}

func mirrorCmp(op CmpOp) CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return op
}

// cmpVerdict applies a comparison operator to a three-way compare result —
// the tail of cmpValues.
func cmpVerdict(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

func fillPass(pass []bool, v bool) {
	for i := range pass {
		pass[i] = v
	}
}

// vecConst is a predicate with a row-independent verdict (literals and
// folded const-const comparisons).
type vecConst struct{ b bool }

func (n vecConst) eval(_ *rel.Columns, _, _ int, pass []bool) { fillPass(pass, n.b) }

// vecBoolCol accepts rows whose cell is a present boolean true — a bare
// column used as a predicate.
type vecBoolCol struct{ idx int }

func (n vecBoolCol) eval(c *rel.Columns, lo, hi int, pass []bool) {
	b := &c.Banks[n.idx]
	if b.Mixed != nil {
		for i := range pass {
			v := b.Mixed[lo+i]
			pass[i] = v.Kind() == rel.KBool && v.Bool()
		}
		return
	}
	if b.Kind != rel.KBool {
		fillPass(pass, false)
		return
	}
	ints := b.Ints[lo:hi]
	if b.Valid == nil {
		for i, x := range ints {
			pass[i] = x != 0
		}
		return
	}
	for i, x := range ints {
		pass[i] = x != 0 && b.Valid.Get(lo+i)
	}
}

// colCmp compares a column against a literal.
type colCmp struct {
	op  CmpOp
	idx int
	cv  rel.Value
}

func (n colCmp) eval(c *rel.Columns, lo, hi int, pass []bool) {
	b := &c.Banks[n.idx]
	if b.Mixed != nil {
		for i := range pass {
			pass[i] = cmpValues(n.op, b.Mixed[lo+i], n.cv).Bool()
		}
		return
	}
	if n.cv.IsNull() || b.Kind == rel.KNull {
		fillPass(pass, false)
		return
	}
	// A NaN operand rejects every comparison before cross-kind ordering is
	// even consulted (cmpValues checks NaN ahead of Compare).
	if n.cv.IsNumeric() && math.IsNaN(n.cv.Float()) {
		fillPass(pass, false)
		return
	}
	valid := b.Valid
	switch {
	case (b.Kind == rel.KInt || b.Kind == rel.KFloat) && n.cv.IsNumeric():
		cf := n.cv.Float()
		if b.Kind == rel.KFloat {
			floatCmpSpan(n.op, b.Floats[lo:hi], cf, pass)
		} else {
			intCmpSpan(n.op, b.Ints[lo:hi], cf, pass)
		}
		maskValid(pass, valid, lo)
	case b.Kind == rel.KString && n.cv.Kind() == rel.KString:
		// One three-way compare per dictionary entry, then a code-indexed
		// gather over the span — the dictionary encoding's native win.
		cs := n.cv.Str()
		verdict := make([]bool, len(b.Dict))
		for code, s := range b.Dict {
			c := 0
			switch {
			case s < cs:
				c = -1
			case s > cs:
				c = 1
			}
			verdict[code] = cmpVerdict(n.op, c)
		}
		codes := b.Codes[lo:hi]
		if valid == nil {
			for i, code := range codes {
				pass[i] = verdict[code]
			}
			return
		}
		for i, code := range codes {
			pass[i] = verdict[code] && valid.Get(lo+i)
		}
	case b.Kind == rel.KBool && n.cv.Kind() == rel.KBool:
		ci := int64(0)
		if n.cv.Bool() {
			ci = 1
		}
		ints := b.Ints[lo:hi]
		for i, x := range ints {
			c := 0
			switch {
			case x < ci:
				c = -1
			case x > ci:
				c = 1
			}
			pass[i] = cmpVerdict(n.op, c)
		}
		maskValid(pass, valid, lo)
	default:
		// Cross-kind, not both numeric: Compare orders by Kind, so every
		// present row gets the same verdict.
		kc := 0
		switch {
		case b.Kind < n.cv.Kind():
			kc = -1
		case b.Kind > n.cv.Kind():
			kc = 1
		}
		v := cmpVerdict(n.op, kc)
		if !v {
			fillPass(pass, false)
			return
		}
		if b.Kind == rel.KFloat {
			// Cross-kind against a float bank: NaN cells still match nothing.
			col := b.Floats[lo:hi]
			for i, x := range col {
				pass[i] = x == x && (valid == nil || valid.Get(lo+i))
			}
			return
		}
		if valid == nil {
			fillPass(pass, true)
			return
		}
		for i := range pass {
			pass[i] = valid.Get(lo + i)
		}
	}
}

// floatCmpSpan compares a float span against a finite literal. NULL cells
// are masked afterwards; NaN cells fail every operator inline (for Ne via
// the x == x self-test, the others naturally).
func floatCmpSpan(op CmpOp, col []float64, cf float64, pass []bool) {
	switch op {
	case Eq:
		for i, x := range col {
			pass[i] = x == cf
		}
	case Ne:
		for i, x := range col {
			pass[i] = x == x && x != cf
		}
	case Lt:
		for i, x := range col {
			pass[i] = x < cf
		}
	case Le:
		for i, x := range col {
			pass[i] = x <= cf
		}
	case Gt:
		for i, x := range col {
			pass[i] = x > cf
		}
	case Ge:
		for i, x := range col {
			pass[i] = x >= cf
		}
	}
}

// intCmpSpan compares an int span against a numeric literal. Compare
// widens both numeric operands to float64, so the span does too.
func intCmpSpan(op CmpOp, col []int64, cf float64, pass []bool) {
	switch op {
	case Eq:
		for i, x := range col {
			pass[i] = float64(x) == cf
		}
	case Ne:
		for i, x := range col {
			pass[i] = float64(x) != cf
		}
	case Lt:
		for i, x := range col {
			pass[i] = float64(x) < cf
		}
	case Le:
		for i, x := range col {
			pass[i] = float64(x) <= cf
		}
	case Gt:
		for i, x := range col {
			pass[i] = float64(x) > cf
		}
	case Ge:
		for i, x := range col {
			pass[i] = float64(x) >= cf
		}
	}
}

func maskValid(pass []bool, valid *rel.Bitmap, lo int) {
	if valid == nil {
		return
	}
	for i := range pass {
		pass[i] = pass[i] && valid.Get(lo+i)
	}
}

// colColCmp compares two columns row by row.
type colColCmp struct {
	op     CmpOp
	li, ri int
}

func (n colColCmp) eval(c *rel.Columns, lo, hi int, pass []bool) {
	for i := range pass {
		pass[i] = cmpValues(n.op, c.Value(n.li, lo+i), c.Value(n.ri, lo+i)).Bool()
	}
}

// vecIn is membership of a column in a literal list, with In's exact NULL
// semantics: a NULL cell matches only a NULL literal, so NOT IN accepts
// NULL rows when no NULL literal is present.
type vecIn struct {
	idx   int
	items []rel.Value
	inv   bool
}

func (n vecIn) verdictOf(v rel.Value) bool {
	found := false
	for _, item := range n.items {
		if v.Equal(item) {
			found = true
			break
		}
	}
	return found != n.inv
}

func (n vecIn) eval(c *rel.Columns, lo, hi int, pass []bool) {
	b := &c.Banks[n.idx]
	if b.Mixed == nil && b.Kind == rel.KString {
		verdict := make([]bool, len(b.Dict))
		for code, s := range b.Dict {
			verdict[code] = n.verdictOf(rel.String(s))
		}
		nullVerdict := n.verdictOf(rel.Null())
		codes := b.Codes[lo:hi]
		if b.Valid == nil {
			for i, code := range codes {
				pass[i] = verdict[code]
			}
			return
		}
		for i, code := range codes {
			if b.Valid.Get(lo + i) {
				pass[i] = verdict[code]
			} else {
				pass[i] = nullVerdict
			}
		}
		return
	}
	for i := range pass {
		pass[i] = n.verdictOf(c.Value(n.idx, lo+i))
	}
}

// vecAnd mirrors And.Eval: both sides evaluate (boolean, side-effect
// free), so computing both spans and conjoining matches the short-circuit
// row form verdict for verdict.
type vecAnd struct{ l, r vecNode }

func (n vecAnd) eval(c *rel.Columns, lo, hi int, pass []bool) {
	n.l.eval(c, lo, hi, pass)
	tmp := make([]bool, hi-lo)
	n.r.eval(c, lo, hi, tmp)
	for i := range pass {
		pass[i] = pass[i] && tmp[i]
	}
}

type vecOr struct{ l, r vecNode }

func (n vecOr) eval(c *rel.Columns, lo, hi int, pass []bool) {
	n.l.eval(c, lo, hi, pass)
	tmp := make([]bool, hi-lo)
	n.r.eval(c, lo, hi, tmp)
	for i := range pass {
		pass[i] = pass[i] || tmp[i]
	}
}

type vecNot struct{ e vecNode }

func (n vecNot) eval(c *rel.Columns, lo, hi int, pass []bool) {
	n.e.eval(c, lo, hi, pass)
	for i := range pass {
		pass[i] = !pass[i]
	}
}

// cols implementations: the column indices each node's eval reads.

func (n vecConst) cols(dst []int) []int   { return dst }
func (n vecBoolCol) cols(dst []int) []int { return append(dst, n.idx) }
func (n colCmp) cols(dst []int) []int     { return append(dst, n.idx) }
func (n colColCmp) cols(dst []int) []int  { return append(dst, n.li, n.ri) }
func (n vecIn) cols(dst []int) []int      { return append(dst, n.idx) }
func (n vecAnd) cols(dst []int) []int     { return n.r.cols(n.l.cols(dst)) }
func (n vecOr) cols(dst []int) []int      { return n.r.cols(n.l.cols(dst)) }
func (n vecNot) cols(dst []int) []int     { return n.e.cols(dst) }
