package expr

import (
	"math/rand"
	"testing"

	"iolap/internal/rel"
)

func TestSubstituteBasics(t *testing.T) {
	// e = $0 + 2*$1 ; subs = [$3, abs($4)]
	reg := NewRegistry()
	absF, _ := reg.Lookup("ABS")
	absCall, _ := NewFunc(absF, []Expr{NewCol(4, "", rel.KFloat)})
	e := NewArith(Add,
		NewCol(0, "", rel.KFloat),
		NewArith(Mul, NewConst(rel.Float(2)), NewCol(1, "", rel.KFloat)))
	out := Substitute(e, []Expr{NewCol(3, "", rel.KFloat), absCall})
	row := []rel.Value{rel.Float(0), rel.Float(0), rel.Float(0), rel.Float(10), rel.Float(-4)}
	if got := out.Eval(row, nil); got.Float() != 18 { // 10 + 2*|−4|
		t.Errorf("substituted eval = %v, want 18", got)
	}
	// The original must be untouched.
	row2 := []rel.Value{rel.Float(1), rel.Float(2), rel.Float(0), rel.Float(0), rel.Float(0)}
	if got := e.Eval(row2, nil); got.Float() != 5 {
		t.Errorf("original mutated: %v", got)
	}
}

func TestSubstituteAllNodeKinds(t *testing.T) {
	subs := []Expr{NewConst(rel.Float(7)), NewConst(rel.String("x"))}
	cases := []Expr{
		NewNeg(NewCol(0, "", rel.KFloat)),
		NewCmp(Lt, NewCol(0, "", rel.KFloat), NewConst(rel.Float(9))),
		NewAnd(NewConst(rel.Bool(true)), NewCmp(Eq, NewCol(1, "", rel.KString), NewConst(rel.String("x")))),
		NewOr(NewCmp(Eq, NewCol(1, "", rel.KString), NewConst(rel.String("y"))), NewConst(rel.Bool(false))),
		NewNot(NewCmp(Gt, NewCol(0, "", rel.KFloat), NewConst(rel.Float(100)))),
		NewCase([]Expr{
			NewCmp(Gt, NewCol(0, "", rel.KFloat), NewConst(rel.Float(5))),
			NewConst(rel.Float(1))}, NewConst(rel.Float(0))),
		NewIn(NewCol(1, "", rel.KString), []Expr{NewConst(rel.String("x"))}, false),
	}
	for _, e := range cases {
		out := Substitute(e, subs)
		// All column references must be gone (constants only).
		if cols := out.Cols(nil); len(cols) != 0 {
			t.Errorf("%s: substitution left columns %v", e, cols)
		}
		// Result should evaluate without a row at all.
		v := out.Eval(nil, nil)
		if v.IsNull() && e.Type() != rel.KNull {
			t.Errorf("%s: unexpected NULL after substitution", e)
		}
	}
}

func TestSubstituteOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range substitution")
		}
	}()
	Substitute(NewCol(3, "", rel.KFloat), []Expr{NewConst(rel.Float(1))})
}

// Property: for random arithmetic trees, Substitute(e, identity) evaluates
// identically to e.
func TestSubstituteIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	identity := []Expr{
		NewCol(0, "", rel.KFloat),
		NewCol(1, "", rel.KFloat),
		NewCol(2, "", rel.KFloat),
	}
	var gen func(depth int) Expr
	gen = func(depth int) Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return NewCol(rng.Intn(3), "", rel.KFloat)
			}
			return NewConst(rel.Float(float64(rng.Intn(20) - 10)))
		}
		ops := []ArithOp{Add, Sub, Mul}
		return NewArith(ops[rng.Intn(len(ops))], gen(depth-1), gen(depth-1))
	}
	for trial := 0; trial < 500; trial++ {
		e := gen(4)
		sub := Substitute(e, identity)
		row := []rel.Value{
			rel.Float(rng.Float64() * 10),
			rel.Float(rng.Float64() * 10),
			rel.Float(rng.Float64() * 10),
		}
		a, b := e.Eval(row, nil), sub.Eval(row, nil)
		if !a.Equal(b) {
			t.Fatalf("identity substitution changed semantics: %v vs %v for %s", a, b, e)
		}
	}
}

// Property: Substitute composes — substituting f into e then evaluating
// equals evaluating e over a row extended by f's values.
func TestSubstituteCompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		// e over 2 columns; subs computes those from a base row of 3.
		e := NewArith(Add,
			NewArith(Mul, NewCol(0, "", rel.KFloat), NewConst(rel.Float(2))),
			NewCol(1, "", rel.KFloat))
		subs := []Expr{
			NewArith(Sub, NewCol(2, "", rel.KFloat), NewCol(0, "", rel.KFloat)),
			NewArith(Mul, NewCol(1, "", rel.KFloat), NewCol(1, "", rel.KFloat)),
		}
		composed := Substitute(e, subs)
		base := []rel.Value{
			rel.Float(float64(rng.Intn(10))),
			rel.Float(float64(rng.Intn(10))),
			rel.Float(float64(rng.Intn(10))),
		}
		inner0 := subs[0].Eval(base, nil)
		inner1 := subs[1].Eval(base, nil)
		direct := e.Eval([]rel.Value{inner0, inner1}, nil)
		got := composed.Eval(base, nil)
		if !direct.Equal(got) {
			t.Fatalf("composition mismatch: %v vs %v", direct, got)
		}
	}
}
