package expr

import "fmt"

// Substitute returns a copy of e in which every column reference Col{i} is
// replaced by subs[i]. The online query rewriter uses it to inline PROJECT
// operators into their consumers so that rows flowing between online
// operators carry only base values and lineage references — the compiler
// half of the lineage propagation of Section 6.1 (deterministic
// sub-expressions are folded into the consumer, uncertain attributes stay
// behind references).
func Substitute(e Expr, subs []Expr) Expr {
	switch t := e.(type) {
	case *Col:
		if t.Idx < 0 || t.Idx >= len(subs) {
			panic(fmt.Sprintf("expr: substitute index %d out of range %d", t.Idx, len(subs)))
		}
		return subs[t.Idx]
	case *Const:
		return t
	case *Arith:
		return &Arith{Op: t.Op, L: Substitute(t.L, subs), R: Substitute(t.R, subs)}
	case *Neg:
		return &Neg{E: Substitute(t.E, subs)}
	case *Cmp:
		return &Cmp{Op: t.Op, L: Substitute(t.L, subs), R: Substitute(t.R, subs)}
	case *And:
		return &And{L: Substitute(t.L, subs), R: Substitute(t.R, subs)}
	case *Or:
		return &Or{L: Substitute(t.L, subs), R: Substitute(t.R, subs)}
	case *Not:
		return &Not{E: Substitute(t.E, subs)}
	case *Func:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = Substitute(a, subs)
		}
		return &Func{F: t.F, Args: args}
	case *Case:
		out := &Case{}
		for _, w := range t.Whens {
			out.Whens = append(out.Whens, struct {
				Cond Expr
				Then Expr
			}{Substitute(w.Cond, subs), Substitute(w.Then, subs)})
		}
		if t.Else != nil {
			out.Else = Substitute(t.Else, subs)
		}
		return out
	case *In:
		list := make([]Expr, len(t.List))
		for i, item := range t.List {
			list[i] = Substitute(item, subs)
		}
		return &In{E: Substitute(t.E, subs), List: list, Inv: t.Inv}
	}
	panic(fmt.Sprintf("expr: cannot substitute %T", e))
}
