package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"iolap/internal/bootstrap"
	"iolap/internal/rel"
)

// stubResolver maps a single ref to a fixed uncertain value.
type stubResolver struct {
	refs map[rel.Ref]UncValue
}

func (s *stubResolver) ResolveRef(r rel.Ref) (UncValue, bool) {
	uv, ok := s.refs[r]
	return uv, ok
}

func col(i int, k rel.Kind) *Col { return NewCol(i, "", k) }
func cf(f float64) *Const        { return NewConst(rel.Float(f)) }
func ci(i int64) *Const          { return NewConst(rel.Int(i)) }
func cs(s string) *Const         { return NewConst(rel.String(s)) }

func TestArithEval(t *testing.T) {
	row := []rel.Value{rel.Int(7), rel.Float(2)}
	cases := []struct {
		e    Expr
		want rel.Value
	}{
		{NewArith(Add, col(0, rel.KInt), ci(3)), rel.Int(10)},
		{NewArith(Sub, col(0, rel.KInt), ci(3)), rel.Int(4)},
		{NewArith(Mul, col(0, rel.KInt), ci(3)), rel.Int(21)},
		{NewArith(Div, col(0, rel.KInt), col(1, rel.KFloat)), rel.Float(3.5)},
		{NewArith(Mod, col(0, rel.KInt), ci(4)), rel.Int(3)},
		{NewArith(Add, col(0, rel.KInt), col(1, rel.KFloat)), rel.Float(9)},
		{NewNeg(col(0, rel.KInt)), rel.Int(-7)},
		{NewNeg(col(1, rel.KFloat)), rel.Float(-2)},
	}
	for _, c := range cases {
		got := c.e.Eval(row, nil)
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestArithNullAndDivZero(t *testing.T) {
	row := []rel.Value{rel.Null()}
	if !NewArith(Add, col(0, rel.KFloat), cf(1)).Eval(row, nil).IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
	if !NewArith(Div, cf(1), cf(0)).Eval(nil, nil).IsNull() {
		t.Error("1/0 should be NULL")
	}
	if !NewArith(Mod, ci(1), ci(0)).Eval(nil, nil).IsNull() {
		t.Error("1%0 should be NULL")
	}
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{NewCmp(Eq, ci(1), cf(1)), true},
		{NewCmp(Ne, ci(1), cf(1)), false},
		{NewCmp(Lt, ci(1), ci(2)), true},
		{NewCmp(Le, ci(2), ci(2)), true},
		{NewCmp(Gt, ci(3), ci(2)), true},
		{NewCmp(Ge, ci(1), ci(2)), false},
		{NewCmp(Eq, cs("a"), cs("a")), true},
		{NewCmp(Lt, cs("a"), cs("b")), true},
		{NewCmp(Eq, NewConst(rel.Null()), ci(1)), false},
	}
	for _, c := range cases {
		got := c.e.Eval(nil, nil)
		if got.Bool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLogicEval(t *testing.T) {
	tt := NewConst(rel.Bool(true))
	ff := NewConst(rel.Bool(false))
	if !NewAnd(tt, tt).Eval(nil, nil).Bool() || NewAnd(tt, ff).Eval(nil, nil).Bool() {
		t.Error("AND wrong")
	}
	if !NewOr(ff, tt).Eval(nil, nil).Bool() || NewOr(ff, ff).Eval(nil, nil).Bool() {
		t.Error("OR wrong")
	}
	if NewNot(tt).Eval(nil, nil).Bool() || !NewNot(ff).Eval(nil, nil).Bool() {
		t.Error("NOT wrong")
	}
}

func TestRefLazyResolution(t *testing.T) {
	ref := rel.Ref{Op: 1, Key: "", Col: 0}
	res := &stubResolver{refs: map[rel.Ref]UncValue{
		ref: {Value: rel.Float(37), Reps: []float64{35, 39}, Range: bootstrap.Interval{Lo: 21.1, Hi: 53.9}},
	}}
	row := []rel.Value{rel.NewRef(ref), rel.Float(58)}
	c := col(0, rel.KFloat)
	if got := c.Eval(row, res); got.Float() != 37 {
		t.Errorf("lazy value = %v, want 37", got)
	}
	if got := c.EvalRep(row, res, 0); got.Float() != 35 {
		t.Errorf("replicate 0 = %v, want 35", got)
	}
	if got := c.EvalRep(row, res, 1); got.Float() != 39 {
		t.Errorf("replicate 1 = %v, want 39", got)
	}
	// Replicate index beyond reps falls back to the running value.
	if got := c.EvalRep(row, res, 5); got.Float() != 37 {
		t.Errorf("replicate overflow = %v, want 37", got)
	}
	iv := c.Interval(row, res)
	if iv.Lo != 21.1 || iv.Hi != 53.9 {
		t.Errorf("interval = %v", iv)
	}
	// Unknown ref resolves to NULL.
	row2 := []rel.Value{rel.NewRef(rel.Ref{Op: 9}), rel.Float(1)}
	if !c.Eval(row2, res).IsNull() {
		t.Error("missing ref should resolve to NULL")
	}
}

// TestSBIClassification reproduces the paper's running example (Example 2):
// with R(AVG(buffer_time)) = [21.1, 53.9], buffer_time 58 is always
// selected, 17 always filtered, 36 non-deterministic.
func TestSBIClassification(t *testing.T) {
	ref := rel.Ref{Op: 1}
	res := &stubResolver{refs: map[rel.Ref]UncValue{
		ref: {Value: rel.Float(37), Range: bootstrap.Interval{Lo: 21.1, Hi: 53.9}},
	}}
	pred := NewCmp(Gt, col(0, rel.KFloat), col(1, rel.KFloat))
	mk := func(bt float64) []rel.Value {
		return []rel.Value{rel.Float(bt), rel.NewRef(ref)}
	}
	if got := pred.Tri(mk(58), res); got != True {
		t.Errorf("t2 (58) = %v, want true (always selected)", got)
	}
	if got := pred.Tri(mk(17), res); got != False {
		t.Errorf("t3 (17) = %v, want false (always filtered)", got)
	}
	if got := pred.Tri(mk(36), res); got != Unknown {
		t.Errorf("t1 (36) = %v, want unknown (non-deterministic)", got)
	}
}

func TestTriComparisons(t *testing.T) {
	mkRes := func(lo, hi float64) (Resolver, []rel.Value) {
		ref := rel.Ref{Op: 1}
		res := &stubResolver{refs: map[rel.Ref]UncValue{
			ref: {Value: rel.Float((lo + hi) / 2), Range: bootstrap.Interval{Lo: lo, Hi: hi}},
		}}
		return res, []rel.Value{rel.NewRef(ref)}
	}
	u := col(0, rel.KFloat)
	cases := []struct {
		op       CmpOp
		lo, hi   float64
		constant float64
		want     Tri
	}{
		{Lt, 1, 2, 3, True},
		{Lt, 4, 5, 3, False},
		{Lt, 2, 4, 3, Unknown},
		{Le, 1, 3, 3, True},
		{Gt, 4, 5, 3, True},
		{Gt, 1, 2, 3, False},
		{Ge, 3, 5, 3, True},
		{Eq, 1, 2, 3, False},
		{Eq, 2, 4, 3, Unknown},
		{Ne, 1, 2, 3, True},
		{Ne, 2, 4, 3, Unknown},
	}
	for _, c := range cases {
		res, row := mkRes(c.lo, c.hi)
		e := NewCmp(c.op, u, cf(c.constant))
		if got := e.Tri(row, res); got != c.want {
			t.Errorf("[%v,%v] %s %v = %v, want %v", c.lo, c.hi, c.op, c.constant, got, c.want)
		}
	}
}

func TestTriStringComparisonIsExact(t *testing.T) {
	e := NewCmp(Eq, cs("cdn1"), cs("cdn1"))
	if e.Tri(nil, nil) != True {
		t.Error("string equality should be deterministic True")
	}
}

func TestKleeneLogic(t *testing.T) {
	ref := rel.Ref{Op: 1}
	res := &stubResolver{refs: map[rel.Ref]UncValue{
		ref: {Value: rel.Float(3), Range: bootstrap.Interval{Lo: 2, Hi: 4}},
	}}
	row := []rel.Value{rel.NewRef(ref)}
	unk := NewCmp(Gt, col(0, rel.KFloat), cf(3)) // unknown
	tt := NewConst(rel.Bool(true))
	ff := NewConst(rel.Bool(false))
	if got := NewAnd(unk, ff).Tri(row, res); got != False {
		t.Errorf("unknown AND false = %v, want false", got)
	}
	if got := NewAnd(unk, tt).Tri(row, res); got != Unknown {
		t.Errorf("unknown AND true = %v, want unknown", got)
	}
	if got := NewOr(unk, tt).Tri(row, res); got != True {
		t.Errorf("unknown OR true = %v, want true", got)
	}
	if got := NewOr(unk, ff).Tri(row, res); got != Unknown {
		t.Errorf("unknown OR false = %v, want unknown", got)
	}
	if got := NewNot(unk).Tri(row, res); got != Unknown {
		t.Errorf("NOT unknown = %v, want unknown", got)
	}
}

func TestIntervalThroughArithmetic(t *testing.T) {
	ref := rel.Ref{Op: 1}
	res := &stubResolver{refs: map[rel.Ref]UncValue{
		ref: {Value: rel.Float(10), Range: bootstrap.Interval{Lo: 8, Hi: 12}},
	}}
	row := []rel.Value{rel.NewRef(ref)}
	// 2*u + 1 over [8,12] => [17,25]
	e := NewArith(Add, NewArith(Mul, cf(2), col(0, rel.KFloat)), cf(1))
	iv := e.Interval(row, res)
	if iv.Lo != 17 || iv.Hi != 25 {
		t.Errorf("interval = %v, want [17,25]", iv)
	}
}

func TestCaseEval(t *testing.T) {
	e := NewCase([]Expr{
		NewCmp(Gt, col(0, rel.KFloat), cf(10)), cs("big"),
		NewCmp(Gt, col(0, rel.KFloat), cf(5)), cs("mid"),
	}, cs("small"))
	if got := e.Eval([]rel.Value{rel.Float(20)}, nil); got.Str() != "big" {
		t.Errorf("case big = %v", got)
	}
	if got := e.Eval([]rel.Value{rel.Float(7)}, nil); got.Str() != "mid" {
		t.Errorf("case mid = %v", got)
	}
	if got := e.Eval([]rel.Value{rel.Float(1)}, nil); got.Str() != "small" {
		t.Errorf("case small = %v", got)
	}
	noElse := NewCase([]Expr{NewCmp(Gt, col(0, rel.KFloat), cf(10)), cs("x")}, nil)
	if !noElse.Eval([]rel.Value{rel.Float(1)}, nil).IsNull() {
		t.Error("case without else should yield NULL")
	}
}

func TestCaseIntervalUnions(t *testing.T) {
	ref := rel.Ref{Op: 1}
	res := &stubResolver{refs: map[rel.Ref]UncValue{
		ref: {Value: rel.Float(3), Range: bootstrap.Interval{Lo: 2, Hi: 4}},
	}}
	row := []rel.Value{rel.NewRef(ref)}
	// Condition is unknown, so the interval must cover both branches.
	e := NewCase([]Expr{NewCmp(Gt, col(0, rel.KFloat), cf(3)), cf(100)}, cf(0))
	iv := e.Interval(row, res)
	if iv.Lo > 0 || iv.Hi < 100 {
		t.Errorf("case interval = %v, want to cover [0,100]", iv)
	}
}

func TestInList(t *testing.T) {
	e := NewIn(col(0, rel.KString), []Expr{cs("a"), cs("b")}, false)
	if !e.Eval([]rel.Value{rel.String("a")}, nil).Bool() {
		t.Error("'a' IN ('a','b')")
	}
	if e.Eval([]rel.Value{rel.String("c")}, nil).Bool() {
		t.Error("'c' IN ('a','b') should be false")
	}
	inv := NewIn(col(0, rel.KString), []Expr{cs("a")}, true)
	if !inv.Eval([]rel.Value{rel.String("c")}, nil).Bool() {
		t.Error("'c' NOT IN ('a')")
	}
}

func TestFuncRegistry(t *testing.T) {
	r := NewRegistry()
	f, ok := r.Lookup("abs")
	if !ok {
		t.Fatal("ABS not found (case-insensitive lookup)")
	}
	call, err := NewFunc(f, []Expr{cf(-3)})
	if err != nil {
		t.Fatal(err)
	}
	if got := call.Eval(nil, nil); got.Float() != 3 {
		t.Errorf("ABS(-3) = %v", got)
	}
	if _, err := NewFunc(f, nil); err == nil {
		t.Error("arity check should reject 0 args")
	}
	if err := r.Register(ScalarFunc{}); err == nil {
		t.Error("registering an invalid function should fail")
	}
}

func TestBuiltins(t *testing.T) {
	r := NewRegistry()
	eval := func(name string, args ...Expr) rel.Value {
		t.Helper()
		f, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		call, err := NewFunc(f, args)
		if err != nil {
			t.Fatal(err)
		}
		return call.Eval(nil, nil)
	}
	if eval("SQRT", cf(9)).Float() != 3 {
		t.Error("SQRT")
	}
	if eval("FLOOR", cf(2.7)).Float() != 2 {
		t.Error("FLOOR")
	}
	if eval("CEIL", cf(2.1)).Float() != 3 {
		t.Error("CEIL")
	}
	if eval("ROUND", cf(2.456), ci(1)).Float() != 2.5 {
		t.Error("ROUND with precision")
	}
	if eval("POW", cf(2), cf(10)).Float() != 1024 {
		t.Error("POW")
	}
	if eval("GREATEST", cf(1), cf(9), cf(4)).Float() != 9 {
		t.Error("GREATEST")
	}
	if eval("LEAST", cf(1), cf(9), cf(4)).Float() != 1 {
		t.Error("LEAST")
	}
	if eval("COALESCE", NewConst(rel.Null()), cf(5)).Float() != 5 {
		t.Error("COALESCE")
	}
	if eval("UPPER", cs("abc")).Str() != "ABC" {
		t.Error("UPPER")
	}
	if eval("LOWER", cs("ABC")).Str() != "abc" {
		t.Error("LOWER")
	}
	if eval("LENGTH", cs("abcd")).Int() != 4 {
		t.Error("LENGTH")
	}
	if eval("SUBSTR", cs("hello"), ci(2), ci(3)).Str() != "ell" {
		t.Error("SUBSTR")
	}
	if eval("CONCAT", cs("a"), cs("b")).Str() != "ab" {
		t.Error("CONCAT")
	}
	if eval("SIGN", cf(-5)).Float() != -1 {
		t.Error("SIGN")
	}
	if eval("IF", NewConst(rel.Bool(true)), cf(1), cf(2)).Float() != 1 {
		t.Error("IF")
	}
	if eval("EXP", cf(0)).Float() != 1 {
		t.Error("EXP")
	}
	if eval("LN", cf(1)).Float() != 0 {
		t.Error("LN")
	}
}

func TestUDFRegistration(t *testing.T) {
	r := NewRegistry()
	err := r.Register(ScalarFunc{
		Name: "ENGAGEMENT", MinArgs: 2, MaxArgs: 2, RetType: rel.KFloat,
		Fn: func(args []rel.Value) rel.Value {
			// A Conviva-style UDF: play time discounted by buffering.
			return rel.Float(args[0].Float() / (1 + args[1].Float()))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := r.Lookup("engagement")
	call, _ := NewFunc(f, []Expr{cf(100), cf(3)})
	if got := call.Eval(nil, nil); got.Float() != 25 {
		t.Errorf("UDF = %v, want 25", got)
	}
}

// Property: Tri never contradicts exact evaluation — if Tri says True or
// False, evaluating with any value inside the operand ranges must agree.
func TestTriSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	for trial := 0; trial < 3000; trial++ {
		lo := float64(rng.Intn(20) - 10)
		hi := lo + float64(rng.Intn(8))
		c := float64(rng.Intn(20) - 10)
		op := ops[rng.Intn(len(ops))]
		ref := rel.Ref{Op: 1}
		// Pick a "true final value" inside the range.
		final := lo + rng.Float64()*(hi-lo)
		res := &stubResolver{refs: map[rel.Ref]UncValue{
			ref: {Value: rel.Float(final), Range: bootstrap.Interval{Lo: lo, Hi: hi}},
		}}
		row := []rel.Value{rel.NewRef(ref)}
		e := NewCmp(op, col(0, rel.KFloat), cf(c))
		tri := e.Tri(row, res)
		if tri == Unknown {
			continue
		}
		exact := e.Eval(row, res).Bool()
		if (tri == True) != exact {
			t.Fatalf("Tri=%v contradicts exact=%v for [%v,%v] %s %v (final=%v)",
				tri, exact, lo, hi, op, c, final)
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := NewAnd(
		NewCmp(Gt, NewCol(0, "buffer_time", rel.KFloat), cf(30)),
		NewNot(NewCmp(Eq, cs("x"), cs("y"))),
	)
	s := e.String()
	for _, want := range []string{"buffer_time", ">", "AND", "NOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestHasUncertain(t *testing.T) {
	e := NewArith(Add, col(0, rel.KFloat), col(2, rel.KFloat))
	if !HasUncertain(e, map[int]bool{2: true}) {
		t.Error("col 2 is uncertain")
	}
	if HasUncertain(e, map[int]bool{1: true}) {
		t.Error("col 1 unused")
	}
}

func TestFuncIntervalConservative(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("LN") // no IntervalFn
	ref := rel.Ref{Op: 1}
	res := &stubResolver{refs: map[rel.Ref]UncValue{
		ref: {Value: rel.Float(10), Range: bootstrap.Interval{Lo: 5, Hi: 20}},
	}}
	row := []rel.Value{rel.NewRef(ref)}
	call, _ := NewFunc(f, []Expr{col(0, rel.KFloat)})
	iv := call.Interval(row, res)
	if !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Errorf("uncertain arg without IntervalFn should widen to Full, got %v", iv)
	}
	// Deterministic args give a point even without IntervalFn.
	pt := func() bootstrap.Interval {
		call2, _ := NewFunc(f, []Expr{cf(math.E)})
		return call2.Interval(nil, nil)
	}()
	if math.Abs(pt.Lo-1) > 1e-12 || !pt.IsPoint() {
		t.Errorf("deterministic args should give a point interval, got %v", pt)
	}
}

func TestMonotoneIntervalFns(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("ABS")
	iv := f.IntervalFn([]bootstrap.Interval{{Lo: -3, Hi: 2}})
	if iv.Lo != 0 || iv.Hi != 3 {
		t.Errorf("ABS interval over [-3,2] = %v, want [0,3]", iv)
	}
	sq, _ := r.Lookup("SQRT")
	iv = sq.IntervalFn([]bootstrap.Interval{{Lo: 4, Hi: 9}})
	if iv.Lo != 2 || iv.Hi != 3 {
		t.Errorf("SQRT interval = %v, want [2,3]", iv)
	}
}
