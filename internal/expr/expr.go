// Package expr implements the scalar expression language of the engine.
//
// Expressions evaluate in three modes, all against the same AST:
//
//   - Eval: the running value on D_i. Uncertain attributes (rel.Ref values)
//     are resolved through a Resolver to the producing aggregate's current
//     output — this is the lineage-based lazy evaluation of Section 6.
//   - EvalRep: the b-th bootstrap replicate; refs resolve to the replicate
//     output of the source aggregate, so uncertainty propagates through
//     arbitrary expressions, UDFs included.
//   - Interval/Tri: interval arithmetic over variation ranges R(u); a
//     predicate evaluates to a Kleene tri-state where Unknown means
//     "R(x) ∩ R(y) ≠ ∅" — the tuple joins the non-deterministic set
//     (Section 5).
package expr

import (
	"fmt"
	"math"
	"strings"

	"iolap/internal/bootstrap"
	"iolap/internal/rel"
)

// UncValue is the resolved form of an uncertain attribute: the running
// value, its bootstrap replicate values, and its variation range.
type UncValue struct {
	Value rel.Value
	Reps  []float64
	Range bootstrap.Interval
}

// Resolver resolves lineage references against the current batch context.
type Resolver interface {
	// ResolveRef returns the current state of the referenced uncertain
	// aggregate output. ok=false means the group does not (yet) exist.
	ResolveRef(r rel.Ref) (UncValue, bool)
}

// Tri is Kleene three-valued logic.
type Tri uint8

const (
	False Tri = iota
	True
	Unknown
)

func (t Tri) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	}
	return "unknown"
}

// Not negates a tri-state.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// FromBool lifts a bool to a Tri.
func FromBool(b bool) Tri {
	if b {
		return True
	}
	return False
}

// Expr is a scalar expression over a row.
type Expr interface {
	// Eval computes the running value. Ref-valued inputs are resolved via
	// res; res may be nil when the expression is statically deterministic.
	Eval(row []rel.Value, res Resolver) rel.Value
	// EvalRep computes the b-th bootstrap replicate of the expression.
	EvalRep(row []rel.Value, res Resolver, b int) rel.Value
	// Interval computes the variation range of the (numeric) expression.
	Interval(row []rel.Value, res Resolver) bootstrap.Interval
	// Tri evaluates the expression as a predicate under variation ranges.
	Tri(row []rel.Value, res Resolver) Tri
	// Cols appends the row column indexes the expression reads.
	Cols(dst []int) []int
	// Type reports the static result kind.
	Type() rel.Kind
	String() string
}

// resolve unwraps a possibly-Ref value to its running value.
func resolve(v rel.Value, res Resolver) rel.Value {
	if !v.IsRef() {
		return v
	}
	if res == nil {
		panic("expr: ref encountered with nil resolver")
	}
	uv, ok := res.ResolveRef(v.Ref())
	if !ok {
		return rel.Null()
	}
	return uv.Value
}

// resolveRep unwraps a possibly-Ref value to its b-th replicate value.
func resolveRep(v rel.Value, res Resolver, b int) rel.Value {
	if !v.IsRef() {
		return v
	}
	uv, ok := res.ResolveRef(v.Ref())
	if !ok {
		return rel.Null()
	}
	if b < len(uv.Reps) {
		return rel.Float(uv.Reps[b])
	}
	return uv.Value
}

// resolveInterval returns the variation range of a possibly-Ref value.
func resolveInterval(v rel.Value, res Resolver) (bootstrap.Interval, bool) {
	if v.IsRef() {
		uv, ok := res.ResolveRef(v.Ref())
		if !ok {
			return bootstrap.Full(), true
		}
		return uv.Range, true
	}
	if v.IsNumeric() {
		return bootstrap.Point(v.Float()), true
	}
	return bootstrap.Interval{}, false
}

// ---------------------------------------------------------------------------
// Column reference

// Col reads a row column by index.
type Col struct {
	Idx  int
	Name string // display name, e.g. "sessions.buffer_time"
	Knd  rel.Kind
}

// NewCol builds a column reference.
func NewCol(idx int, name string, kind rel.Kind) *Col {
	return &Col{Idx: idx, Name: name, Knd: kind}
}

func (c *Col) Eval(row []rel.Value, res Resolver) rel.Value {
	return resolve(row[c.Idx], res)
}

func (c *Col) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	return resolveRep(row[c.Idx], res, b)
}

func (c *Col) Interval(row []rel.Value, res Resolver) bootstrap.Interval {
	iv, ok := resolveInterval(row[c.Idx], res)
	if !ok {
		panic(fmt.Sprintf("expr: interval of non-numeric column %s", c.Name))
	}
	return iv
}

func (c *Col) Tri(row []rel.Value, res Resolver) Tri {
	v := c.Eval(row, res)
	if v.Kind() == rel.KBool {
		return FromBool(v.Bool())
	}
	return False
}

func (c *Col) Cols(dst []int) []int { return append(dst, c.Idx) }
func (c *Col) Type() rel.Kind       { return c.Knd }
func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// ---------------------------------------------------------------------------
// Constant

// Const is a literal.
type Const struct{ V rel.Value }

// NewConst builds a literal expression.
func NewConst(v rel.Value) *Const { return &Const{V: v} }

func (c *Const) Eval([]rel.Value, Resolver) rel.Value         { return c.V }
func (c *Const) EvalRep([]rel.Value, Resolver, int) rel.Value { return c.V }
func (c *Const) Interval([]rel.Value, Resolver) bootstrap.Interval {
	if !c.V.IsNumeric() {
		panic("expr: interval of non-numeric constant")
	}
	return bootstrap.Point(c.V.Float())
}
func (c *Const) Tri([]rel.Value, Resolver) Tri {
	if c.V.Kind() == rel.KBool {
		return FromBool(c.V.Bool())
	}
	return False
}
func (c *Const) Cols(dst []int) []int { return dst }
func (c *Const) Type() rel.Kind       { return c.V.Kind() }
func (c *Const) String() string {
	if c.V.Kind() == rel.KString {
		return "'" + c.V.Str() + "'"
	}
	return c.V.String()
}

// ---------------------------------------------------------------------------
// Arithmetic

// ArithOp enumerates binary arithmetic operators.
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/", "%"}[op]
}

// Arith is a binary arithmetic node.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic expression.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

func arith(op ArithOp, l, r rel.Value) rel.Value {
	if l.IsNull() || r.IsNull() {
		return rel.Null()
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		panic(fmt.Sprintf("expr: arithmetic on %v and %v", l.Kind(), r.Kind()))
	}
	if l.Kind() == rel.KInt && r.Kind() == rel.KInt && op != Div {
		a, b := l.Int(), r.Int()
		switch op {
		case Add:
			return rel.Int(a + b)
		case Sub:
			return rel.Int(a - b)
		case Mul:
			return rel.Int(a * b)
		case Mod:
			if b == 0 {
				return rel.Null()
			}
			return rel.Int(a % b)
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case Add:
		return rel.Float(a + b)
	case Sub:
		return rel.Float(a - b)
	case Mul:
		return rel.Float(a * b)
	case Div:
		if b == 0 {
			return rel.Null()
		}
		return rel.Float(a / b)
	case Mod:
		if b == 0 {
			return rel.Null()
		}
		ai, bi := int64(a), int64(b)
		return rel.Int(ai % bi)
	}
	panic("unreachable")
}

func (e *Arith) Eval(row []rel.Value, res Resolver) rel.Value {
	return arith(e.Op, e.L.Eval(row, res), e.R.Eval(row, res))
}

func (e *Arith) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	return arith(e.Op, e.L.EvalRep(row, res, b), e.R.EvalRep(row, res, b))
}

func (e *Arith) Interval(row []rel.Value, res Resolver) bootstrap.Interval {
	a := e.L.Interval(row, res)
	b := e.R.Interval(row, res)
	switch e.Op {
	case Add:
		return a.Add(b)
	case Sub:
		return a.Sub(b)
	case Mul:
		return a.Mul(b)
	case Div:
		return a.Div(b)
	case Mod:
		return bootstrap.Full()
	}
	panic("unreachable")
}

func (e *Arith) Tri(row []rel.Value, res Resolver) Tri { return False }

func (e *Arith) Cols(dst []int) []int { return e.R.Cols(e.L.Cols(dst)) }
func (e *Arith) Type() rel.Kind {
	if e.Op == Div {
		return rel.KFloat
	}
	if e.L.Type() == rel.KInt && e.R.Type() == rel.KInt {
		return rel.KInt
	}
	return rel.KFloat
}
func (e *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// Neg is unary numeric negation.
type Neg struct{ E Expr }

// NewNeg builds a negation.
func NewNeg(e Expr) *Neg { return &Neg{E: e} }

func (n *Neg) Eval(row []rel.Value, res Resolver) rel.Value {
	v := n.E.Eval(row, res)
	if v.IsNull() {
		return v
	}
	if v.Kind() == rel.KInt {
		return rel.Int(-v.Int())
	}
	return rel.Float(-v.Float())
}
func (n *Neg) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	v := n.E.EvalRep(row, res, b)
	if v.IsNull() {
		return v
	}
	if v.Kind() == rel.KInt {
		return rel.Int(-v.Int())
	}
	return rel.Float(-v.Float())
}
func (n *Neg) Interval(row []rel.Value, res Resolver) bootstrap.Interval {
	return n.E.Interval(row, res).Neg()
}
func (n *Neg) Tri([]rel.Value, Resolver) Tri { return False }
func (n *Neg) Cols(dst []int) []int          { return n.E.Cols(dst) }
func (n *Neg) Type() rel.Kind                { return n.E.Type() }
func (n *Neg) String() string                { return "(-" + n.E.String() + ")" }

// ---------------------------------------------------------------------------
// Comparison

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Cmp is a binary comparison node.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison expression.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

func cmpValues(op CmpOp, l, r rel.Value) rel.Value {
	if l.IsNull() || r.IsNull() {
		return rel.Bool(false)
	}
	// NaN (e.g. AVG over an empty group) compares like NULL: no predicate
	// matches it. rel.Value.Compare would otherwise report NaN "equal" to
	// everything.
	if l.IsNumeric() && math.IsNaN(l.Float()) || r.IsNumeric() && math.IsNaN(r.Float()) {
		return rel.Bool(false)
	}
	c := l.Compare(r)
	var b bool
	switch op {
	case Eq:
		b = c == 0
	case Ne:
		b = c != 0
	case Lt:
		b = c < 0
	case Le:
		b = c <= 0
	case Gt:
		b = c > 0
	case Ge:
		b = c >= 0
	}
	return rel.Bool(b)
}

func (e *Cmp) Eval(row []rel.Value, res Resolver) rel.Value {
	return cmpValues(e.Op, e.L.Eval(row, res), e.R.Eval(row, res))
}

func (e *Cmp) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	return cmpValues(e.Op, e.L.EvalRep(row, res, b), e.R.EvalRep(row, res, b))
}

func (e *Cmp) Interval(row []rel.Value, res Resolver) bootstrap.Interval {
	panic("expr: Interval on boolean comparison")
}

// Tri resolves the comparison under variation ranges: when the operand
// ranges are disjoint the decision is deterministic across all remaining
// batches (the near-deterministic set of Section 5.1); otherwise Unknown.
func (e *Cmp) Tri(row []rel.Value, res Resolver) Tri {
	lNum := e.L.Type() == rel.KInt || e.L.Type() == rel.KFloat
	rNum := e.R.Type() == rel.KInt || e.R.Type() == rel.KFloat
	if !lNum || !rNum {
		// Non-numeric comparisons cannot involve uncertain attributes
		// (aggregates are numeric), so the point decision is final.
		v := e.Eval(row, res)
		return FromBool(!v.IsNull() && v.Bool())
	}
	a := e.L.Interval(row, res)
	b := e.R.Interval(row, res)
	switch e.Op {
	case Lt:
		if a.Hi < b.Lo {
			return True
		}
		if a.Lo >= b.Hi {
			return False
		}
	case Le:
		if a.Hi <= b.Lo {
			return True
		}
		if a.Lo > b.Hi {
			return False
		}
	case Gt:
		if a.Lo > b.Hi {
			return True
		}
		if a.Hi <= b.Lo {
			return False
		}
	case Ge:
		if a.Lo >= b.Hi {
			return True
		}
		if a.Hi < b.Lo {
			return False
		}
	case Eq:
		if a.IsPoint() && b.IsPoint() {
			return FromBool(a.Lo == b.Lo)
		}
		if !a.Intersects(b) {
			return False
		}
	case Ne:
		if a.IsPoint() && b.IsPoint() {
			return FromBool(a.Lo != b.Lo)
		}
		if !a.Intersects(b) {
			return True
		}
	}
	if a.IsPoint() && b.IsPoint() {
		// Overlapping points: exact decision.
		v := e.Eval(row, res)
		return FromBool(!v.IsNull() && v.Bool())
	}
	return Unknown
}

func (e *Cmp) Cols(dst []int) []int { return e.R.Cols(e.L.Cols(dst)) }
func (e *Cmp) Type() rel.Kind       { return rel.KBool }
func (e *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// ---------------------------------------------------------------------------
// Boolean connectives

// And is conjunction with Kleene semantics under uncertainty.
type And struct{ L, R Expr }

// NewAnd builds a conjunction.
func NewAnd(l, r Expr) *And { return &And{L: l, R: r} }

func evalBool(e Expr, row []rel.Value, res Resolver) bool {
	v := e.Eval(row, res)
	return !v.IsNull() && v.Kind() == rel.KBool && v.Bool()
}

func (e *And) Eval(row []rel.Value, res Resolver) rel.Value {
	return rel.Bool(evalBool(e.L, row, res) && evalBool(e.R, row, res))
}
func (e *And) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	l := e.L.EvalRep(row, res, b)
	r := e.R.EvalRep(row, res, b)
	return rel.Bool(!l.IsNull() && l.Bool() && !r.IsNull() && r.Bool())
}
func (e *And) Interval([]rel.Value, Resolver) bootstrap.Interval {
	panic("expr: Interval on boolean AND")
}
func (e *And) Tri(row []rel.Value, res Resolver) Tri {
	l := e.L.Tri(row, res)
	if l == False {
		return False
	}
	r := e.R.Tri(row, res)
	if r == False {
		return False
	}
	if l == True && r == True {
		return True
	}
	return Unknown
}
func (e *And) Cols(dst []int) []int { return e.R.Cols(e.L.Cols(dst)) }
func (e *And) Type() rel.Kind       { return rel.KBool }
func (e *And) String() string       { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }

// Or is disjunction with Kleene semantics under uncertainty.
type Or struct{ L, R Expr }

// NewOr builds a disjunction.
func NewOr(l, r Expr) *Or { return &Or{L: l, R: r} }

func (e *Or) Eval(row []rel.Value, res Resolver) rel.Value {
	return rel.Bool(evalBool(e.L, row, res) || evalBool(e.R, row, res))
}
func (e *Or) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	l := e.L.EvalRep(row, res, b)
	r := e.R.EvalRep(row, res, b)
	return rel.Bool((!l.IsNull() && l.Bool()) || (!r.IsNull() && r.Bool()))
}
func (e *Or) Interval([]rel.Value, Resolver) bootstrap.Interval {
	panic("expr: Interval on boolean OR")
}
func (e *Or) Tri(row []rel.Value, res Resolver) Tri {
	l := e.L.Tri(row, res)
	if l == True {
		return True
	}
	r := e.R.Tri(row, res)
	if r == True {
		return True
	}
	if l == False && r == False {
		return False
	}
	return Unknown
}
func (e *Or) Cols(dst []int) []int { return e.R.Cols(e.L.Cols(dst)) }
func (e *Or) Type() rel.Kind       { return rel.KBool }
func (e *Or) String() string       { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }

// Not is logical negation.
type Not struct{ E Expr }

// NewNot builds a negation.
func NewNot(e Expr) *Not { return &Not{E: e} }

func (e *Not) Eval(row []rel.Value, res Resolver) rel.Value {
	return rel.Bool(!evalBool(e.E, row, res))
}
func (e *Not) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	v := e.E.EvalRep(row, res, b)
	return rel.Bool(v.IsNull() || !v.Bool())
}
func (e *Not) Interval([]rel.Value, Resolver) bootstrap.Interval {
	panic("expr: Interval on boolean NOT")
}
func (e *Not) Tri(row []rel.Value, res Resolver) Tri {
	return e.E.Tri(row, res).Not()
}
func (e *Not) Cols(dst []int) []int { return e.E.Cols(dst) }
func (e *Not) Type() rel.Kind       { return rel.KBool }
func (e *Not) String() string       { return "(NOT " + e.E.String() + ")" }

// ---------------------------------------------------------------------------
// CASE WHEN

// Case is a searched CASE expression.
type Case struct {
	Whens []struct {
		Cond Expr
		Then Expr
	}
	Else Expr // may be nil (NULL)
}

// NewCase builds a searched CASE; pairs is (cond, then) alternating.
func NewCase(pairs []Expr, elseE Expr) *Case {
	if len(pairs)%2 != 0 || len(pairs) == 0 {
		panic("expr: NewCase needs (cond, then) pairs")
	}
	c := &Case{Else: elseE}
	for i := 0; i < len(pairs); i += 2 {
		c.Whens = append(c.Whens, struct {
			Cond Expr
			Then Expr
		}{pairs[i], pairs[i+1]})
	}
	return c
}

func (c *Case) Eval(row []rel.Value, res Resolver) rel.Value {
	for _, w := range c.Whens {
		if evalBool(w.Cond, row, res) {
			return w.Then.Eval(row, res)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row, res)
	}
	return rel.Null()
}

func (c *Case) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	for _, w := range c.Whens {
		v := w.Cond.EvalRep(row, res, b)
		if !v.IsNull() && v.Bool() {
			return w.Then.EvalRep(row, res, b)
		}
	}
	if c.Else != nil {
		return c.Else.EvalRep(row, res, b)
	}
	return rel.Null()
}

func (c *Case) Interval(row []rel.Value, res Resolver) bootstrap.Interval {
	// The branch taken may flip under uncertainty: union of all branch
	// intervals whose condition is not definitely False.
	out := bootstrap.Interval{Lo: 0, Hi: 0}
	first := true
	merge := func(iv bootstrap.Interval) {
		if first {
			out = iv
			first = false
			return
		}
		if iv.Lo < out.Lo {
			out.Lo = iv.Lo
		}
		if iv.Hi > out.Hi {
			out.Hi = iv.Hi
		}
	}
	for _, w := range c.Whens {
		t := w.Cond.Tri(row, res)
		if t == False {
			continue
		}
		merge(w.Then.Interval(row, res))
		if t == True {
			return out
		}
	}
	if c.Else != nil {
		merge(c.Else.Interval(row, res))
	} else {
		merge(bootstrap.Point(0))
	}
	return out
}

func (c *Case) Tri(row []rel.Value, res Resolver) Tri {
	v := c.Eval(row, res)
	if v.Kind() == rel.KBool {
		return FromBool(v.Bool())
	}
	return False
}

func (c *Case) Cols(dst []int) []int {
	for _, w := range c.Whens {
		dst = w.Cond.Cols(dst)
		dst = w.Then.Cols(dst)
	}
	if c.Else != nil {
		dst = c.Else.Cols(dst)
	}
	return dst
}

func (c *Case) Type() rel.Kind { return c.Whens[0].Then.Type() }

func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// ---------------------------------------------------------------------------
// IN (value list)

// In tests membership in a literal list.
type In struct {
	E    Expr
	List []Expr
	Inv  bool // NOT IN
}

// NewIn builds an IN-list predicate.
func NewIn(e Expr, list []Expr, inv bool) *In { return &In{E: e, List: list, Inv: inv} }

func (e *In) Eval(row []rel.Value, res Resolver) rel.Value {
	v := e.E.Eval(row, res)
	found := false
	for _, item := range e.List {
		if v.Equal(item.Eval(row, res)) {
			found = true
			break
		}
	}
	return rel.Bool(found != e.Inv)
}
func (e *In) EvalRep(row []rel.Value, res Resolver, b int) rel.Value {
	v := e.E.EvalRep(row, res, b)
	found := false
	for _, item := range e.List {
		if v.Equal(item.EvalRep(row, res, b)) {
			found = true
			break
		}
	}
	return rel.Bool(found != e.Inv)
}
func (e *In) Interval([]rel.Value, Resolver) bootstrap.Interval {
	panic("expr: Interval on IN")
}
func (e *In) Tri(row []rel.Value, res Resolver) Tri {
	v := e.Eval(row, res)
	return FromBool(v.Bool())
}
func (e *In) Cols(dst []int) []int {
	dst = e.E.Cols(dst)
	for _, item := range e.List {
		dst = item.Cols(dst)
	}
	return dst
}
func (e *In) Type() rel.Kind { return rel.KBool }
func (e *In) String() string {
	var b strings.Builder
	b.WriteString(e.E.String())
	if e.Inv {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for i, item := range e.List {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.String())
	}
	b.WriteByte(')')
	return b.String()
}

// HasUncertain reports whether any column read by e is listed in the
// uncertain-column set; used by compile-time uncertainty tagging (§4.1).
func HasUncertain(e Expr, uncertain map[int]bool) bool {
	for _, c := range e.Cols(nil) {
		if uncertain[c] {
			return true
		}
	}
	return false
}
