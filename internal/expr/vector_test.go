package expr

import (
	"math"
	"math/rand"
	"testing"

	"iolap/internal/rel"
)

// vecTestSchema covers every bank shape the columnar layer produces: a
// float column with NaN/±Inf and NULLs, ints, a dictionary string column,
// bools, an all-NULL column, and a mixed-kind column.
func vecTestSchema() rel.Schema {
	return rel.Schema{
		{Name: "f", Type: rel.KFloat},
		{Name: "i", Type: rel.KInt},
		{Name: "s", Type: rel.KString},
		{Name: "b", Type: rel.KBool},
		{Name: "allnull", Type: rel.KFloat},
		{Name: "mixed", Type: rel.KString},
	}
}

var vecTestWords = []string{"east", "west", "north", "south", ""}

func vecTestRelation(rng *rand.Rand, n int) *rel.Relation {
	r := rel.NewRelation(vecTestSchema())
	for row := 0; row < n; row++ {
		vals := make([]rel.Value, 0, 6)
		if rng.Intn(6) == 0 {
			vals = append(vals, rel.Null())
		} else {
			f := float64(rng.Intn(200)-100) / 4.0
			switch rng.Intn(12) {
			case 0:
				f = math.NaN()
			case 1:
				f = math.Inf(1 - 2*rng.Intn(2))
			}
			vals = append(vals, rel.Float(f))
		}
		if rng.Intn(6) == 0 {
			vals = append(vals, rel.Null())
		} else {
			vals = append(vals, rel.Int(rng.Int63n(100)-50))
		}
		if rng.Intn(6) == 0 {
			vals = append(vals, rel.Null())
		} else {
			vals = append(vals, rel.String(vecTestWords[rng.Intn(len(vecTestWords))]))
		}
		if rng.Intn(6) == 0 {
			vals = append(vals, rel.Null())
		} else {
			vals = append(vals, rel.Bool(rng.Intn(2) == 0))
		}
		vals = append(vals, rel.Null())
		switch rng.Intn(4) {
		case 0:
			vals = append(vals, rel.Int(int64(row%7)))
		case 1:
			vals = append(vals, rel.String(vecTestWords[rng.Intn(len(vecTestWords))]))
		case 2:
			vals = append(vals, rel.Bool(row%2 == 0))
		default:
			vals = append(vals, rel.Null())
		}
		r.Append(vals...)
	}
	return r
}

func vecTestConst(rng *rand.Rand) rel.Value {
	switch rng.Intn(8) {
	case 0:
		return rel.Null()
	case 1:
		return rel.Bool(rng.Intn(2) == 0)
	case 2:
		return rel.String(vecTestWords[rng.Intn(len(vecTestWords))])
	case 3:
		return rel.Int(rng.Int63n(100) - 50)
	case 4:
		return rel.Float(math.NaN())
	default:
		return rel.Float(float64(rng.Intn(200)-100) / 4.0)
	}
}

func vecTestOperand(rng *rand.Rand, nCols int) Expr {
	if rng.Intn(2) == 0 {
		return &Col{Idx: rng.Intn(nCols)}
	}
	return &Const{V: vecTestConst(rng)}
}

var vecTestOps = []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}

// vecTestPred generates a random predicate inside the vectorizable subset.
func vecTestPred(rng *rand.Rand, nCols, depth int) Expr {
	if depth > 0 && rng.Intn(2) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &And{L: vecTestPred(rng, nCols, depth-1), R: vecTestPred(rng, nCols, depth-1)}
		case 1:
			return &Or{L: vecTestPred(rng, nCols, depth-1), R: vecTestPred(rng, nCols, depth-1)}
		default:
			return &Not{E: vecTestPred(rng, nCols, depth-1)}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return &Const{V: vecTestConst(rng)}
	case 1:
		return &Col{Idx: rng.Intn(nCols)}
	case 2:
		items := make([]Expr, 1+rng.Intn(4))
		for i := range items {
			items[i] = &Const{V: vecTestConst(rng)}
		}
		return &In{E: &Col{Idx: rng.Intn(nCols)}, List: items, Inv: rng.Intn(2) == 0}
	default:
		return &Cmp{
			Op: vecTestOps[rng.Intn(len(vecTestOps))],
			L:  vecTestOperand(rng, nCols),
			R:  vecTestOperand(rng, nCols),
		}
	}
}

// TestCompileVecEquivalence drives randomized vectorizable predicates over
// randomized columnar batches in random chunk spans and demands verdict-
// for-verdict agreement with the row path's acceptance test (Eval, then
// keep when non-NULL boolean true).
func TestCompileVecEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		r := vecTestRelation(rng, 50+rng.Intn(150))
		cols := r.Columnar()
		for trial := 0; trial < 60; trial++ {
			pred := vecTestPred(rng, len(r.Schema), 3)
			vp, ok := CompileVec(pred)
			if !ok {
				t.Fatalf("seed %d: in-subset predicate %v did not compile", seed, pred)
			}
			for lo := 0; lo < r.Len(); {
				hi := lo + 1 + rng.Intn(r.Len()-lo)
				pass := make([]bool, hi-lo)
				vp.EvalCols(cols, lo, hi, pass)
				for i := lo; i < hi; i++ {
					v := pred.Eval(r.Tuples[i].Vals, nil)
					want := !v.IsNull() && v.Kind() == rel.KBool && v.Bool()
					if pass[i-lo] != want {
						t.Fatalf("seed %d trial %d row %d span [%d,%d): vectorized %v, row path %v\npred: %#v\nrow: %v",
							seed, trial, i, lo, hi, pass[i-lo], want, pred, r.Tuples[i].Vals)
					}
				}
				lo = hi
			}
		}
	}
}

// TestCompileVecRejects pins the shapes that must stay on the row path.
func TestCompileVecRejects(t *testing.T) {
	cases := []struct {
		name string
		e    Expr
	}{
		{"arith", &Cmp{Op: Gt, L: NewArith(Add, &Col{Idx: 0}, &Const{V: rel.Int(1)}), R: &Const{V: rel.Int(0)}}},
		{"case", &Case{Else: &Const{V: rel.Bool(true)}}},
		{"in-non-col", &In{E: &Const{V: rel.Int(1)}, List: []Expr{&Const{V: rel.Int(1)}}}},
		{"in-non-const-item", &In{E: &Col{Idx: 0}, List: []Expr{&Col{Idx: 1}}}},
		{"and-bad-side", &And{L: &Col{Idx: 0}, R: &Neg{E: &Col{Idx: 1}}}},
	}
	for _, c := range cases {
		if _, ok := CompileVec(c.e); ok {
			t.Errorf("%s: CompileVec accepted a non-vectorizable shape", c.name)
		}
	}
}

// TestCompileVecConstFold pins const-const comparison folding.
func TestCompileVecConstFold(t *testing.T) {
	for _, c := range []struct {
		op   CmpOp
		l, r rel.Value
		want bool
	}{
		{Lt, rel.Int(1), rel.Float(1.5), true},
		{Eq, rel.String("a"), rel.String("b"), false},
		{Ne, rel.Null(), rel.Int(1), false},     // NULL rejects every comparison
		{Eq, rel.Float(math.NaN()), rel.Float(math.NaN()), false}, // NaN matches nothing
	} {
		vp, ok := CompileVec(&Cmp{Op: c.op, L: &Const{V: c.l}, R: &Const{V: c.r}})
		if !ok {
			t.Fatalf("const-const did not compile")
		}
		if _, isConst := vp.root.(vecConst); !isConst {
			t.Fatalf("const-const comparison did not fold: %T", vp.root)
		}
		pass := make([]bool, 1)
		r := rel.NewRelation(rel.Schema{{Name: "x", Type: rel.KInt}})
		r.Append(rel.Int(0))
		vp.EvalCols(r.Columnar(), 0, 1, pass)
		if pass[0] != c.want {
			t.Fatalf("%v %v %v: folded verdict %v, want %v", c.l, c.op, c.r, pass[0], c.want)
		}
	}
}
