package expr

import (
	"math"
	"testing"

	"iolap/internal/bootstrap"
	"iolap/internal/rel"
)

// repFixture builds a resolver with one uncertain value (reps [9, 11],
// running 10, range [8, 12]) and a row [ref, 5.0].
func repFixture() (Resolver, []rel.Value) {
	ref := rel.Ref{Op: 1}
	res := &stubResolver{refs: map[rel.Ref]UncValue{
		ref: {Value: rel.Float(10), Reps: []float64{9, 11}, Range: bootstrap.Interval{Lo: 8, Hi: 12}},
	}}
	return res, []rel.Value{rel.NewRef(ref), rel.Float(5)}
}

func TestEvalRepThroughArithmetic(t *testing.T) {
	res, row := repFixture()
	// (u + $1) * 2: replicate 0 = (9+5)*2 = 28, replicate 1 = 32.
	e := NewArith(Mul,
		NewArith(Add, col(0, rel.KFloat), col(1, rel.KFloat)),
		cf(2))
	if got := e.EvalRep(row, res, 0).Float(); got != 28 {
		t.Errorf("rep0 = %v, want 28", got)
	}
	if got := e.EvalRep(row, res, 1).Float(); got != 32 {
		t.Errorf("rep1 = %v, want 32", got)
	}
	if got := e.Eval(row, res).Float(); got != 30 {
		t.Errorf("running = %v, want 30", got)
	}
}

func TestEvalRepThroughComparisonAndLogic(t *testing.T) {
	res, row := repFixture()
	// u > 10: rep0 (9) false, rep1 (11) true.
	gt := NewCmp(Gt, col(0, rel.KFloat), cf(10))
	if gt.EvalRep(row, res, 0).Bool() {
		t.Error("rep0: 9 > 10 should be false")
	}
	if !gt.EvalRep(row, res, 1).Bool() {
		t.Error("rep1: 11 > 10 should be true")
	}
	tt := NewConst(rel.Bool(true))
	if !NewAnd(gt, tt).EvalRep(row, res, 1).Bool() {
		t.Error("AND rep eval")
	}
	if !NewOr(gt, tt).EvalRep(row, res, 0).Bool() {
		t.Error("OR rep eval")
	}
	if NewNot(tt).EvalRep(row, res, 0).Bool() {
		t.Error("NOT rep eval")
	}
	if NewNeg(col(0, rel.KFloat)).EvalRep(row, res, 1).Float() != -11 {
		t.Error("Neg rep eval")
	}
}

func TestEvalRepThroughCaseInFunc(t *testing.T) {
	res, row := repFixture()
	// CASE WHEN u > 10 THEN 1 ELSE 0 END flips per replicate.
	c := NewCase([]Expr{NewCmp(Gt, col(0, rel.KFloat), cf(10)), cf(1)}, cf(0))
	if c.EvalRep(row, res, 0).Float() != 0 || c.EvalRep(row, res, 1).Float() != 1 {
		t.Error("CASE must evaluate per replicate")
	}
	// Case without else, rep path.
	noElse := NewCase([]Expr{NewCmp(Gt, col(0, rel.KFloat), cf(100)), cf(1)}, nil)
	if !noElse.EvalRep(row, res, 0).IsNull() {
		t.Error("CASE without ELSE should be NULL per replicate too")
	}
	// IN per replicate: 9 in (9) true; 11 in (9) false.
	in := NewIn(col(0, rel.KFloat), []Expr{cf(9)}, false)
	if !in.EvalRep(row, res, 0).Bool() || in.EvalRep(row, res, 1).Bool() {
		t.Error("IN must evaluate per replicate")
	}
	// Function call per replicate.
	reg := NewRegistry()
	absF, _ := reg.Lookup("ABS")
	call, _ := NewFunc(absF, []Expr{NewNeg(col(0, rel.KFloat))})
	if call.EvalRep(row, res, 1).Float() != 11 {
		t.Error("Func must evaluate per replicate")
	}
}

func TestTriOnNonComparisons(t *testing.T) {
	res, row := repFixture()
	// Tri on a Col holding a boolean.
	boolRow := []rel.Value{rel.Bool(true)}
	if col(0, rel.KBool).Tri(boolRow, nil) != True {
		t.Error("bool col tri")
	}
	// Tri on Const non-bool is False.
	if cf(3).Tri(nil, nil) != False {
		t.Error("numeric const tri should be false")
	}
	if NewConst(rel.Bool(true)).Tri(nil, nil) != True {
		t.Error("bool const tri")
	}
	// Tri on IN and Func and Case evaluates exactly.
	in := NewIn(cf(1), []Expr{cf(1)}, false)
	if in.Tri(nil, nil) != True {
		t.Error("IN tri")
	}
	reg := NewRegistry()
	f, _ := reg.Lookup("IF")
	call, _ := NewFunc(f, []Expr{NewConst(rel.Bool(true)), NewConst(rel.Bool(true)), NewConst(rel.Bool(false))})
	if call.Tri(nil, nil) != True {
		t.Error("Func tri")
	}
	caseB := NewCase([]Expr{NewConst(rel.Bool(true)), NewConst(rel.Bool(true))}, nil)
	if caseB.Tri(nil, nil) != True {
		t.Error("Case tri")
	}
	// Arith/Neg Tri is always False (not predicates).
	if NewArith(Add, cf(1), cf(1)).Tri(nil, nil) != False {
		t.Error("arith tri")
	}
	if NewNeg(cf(1)).Tri(row, res) != False {
		t.Error("neg tri")
	}
	_ = row
}

func TestIntervalPanicsOnBooleanNodes(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	b := NewCmp(Eq, cf(1), cf(1))
	mustPanic("cmp", func() { b.Interval(nil, nil) })
	mustPanic("and", func() { NewAnd(b, b).Interval(nil, nil) })
	mustPanic("or", func() { NewOr(b, b).Interval(nil, nil) })
	mustPanic("not", func() { NewNot(b).Interval(nil, nil) })
	mustPanic("in", func() { NewIn(cf(1), []Expr{cf(1)}, false).Interval(nil, nil) })
	mustPanic("string const", func() { cs("x").Interval(nil, nil) })
	mustPanic("string col", func() {
		col(0, rel.KString).Interval([]rel.Value{rel.String("x")}, nil)
	})
	mustPanic("nil resolver ref", func() {
		col(0, rel.KFloat).Eval([]rel.Value{rel.NewRef(rel.Ref{})}, nil)
	})
}

func TestIntervalDivAndModConservative(t *testing.T) {
	res, row := repFixture()
	// Division by an interval crossing zero widens to Full.
	e := NewArith(Div, cf(1), NewArith(Sub, col(0, rel.KFloat), cf(10)))
	iv := e.Interval(row, res) // u-10 spans [-2,2] around 0
	if !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Errorf("div across zero should be Full, got %v", iv)
	}
	// Mod is always conservative.
	m := NewArith(Mod, col(0, rel.KFloat), cf(3))
	iv = m.Interval(row, res)
	if !math.IsInf(iv.Lo, -1) {
		t.Errorf("mod interval should be Full, got %v", iv)
	}
}

func TestArithIntDivisionProducesFloat(t *testing.T) {
	e := NewArith(Div, ci(7), ci(2))
	if got := e.Eval(nil, nil); got.Float() != 3.5 {
		t.Errorf("7/2 = %v, want 3.5 (SQL-style real division)", got)
	}
	if e.Type() != rel.KFloat {
		t.Error("division type must be FLOAT")
	}
	if NewArith(Add, ci(1), ci(2)).Type() != rel.KInt {
		t.Error("int+int stays INT")
	}
	if NewArith(Add, ci(1), cf(2)).Type() != rel.KFloat {
		t.Error("int+float widens")
	}
}

func TestEvalRepDefaultsWithoutRefs(t *testing.T) {
	// Pure deterministic expressions: EvalRep == Eval for any b.
	e := NewArith(Mul, cf(3), cf(4))
	if e.EvalRep(nil, nil, 17).Float() != 12 {
		t.Error("deterministic EvalRep must match Eval")
	}
}

func TestCmpNaNNeverMatches(t *testing.T) {
	nan := NewConst(rel.Float(math.NaN()))
	for _, op := range []CmpOp{Lt, Le, Gt, Ge} {
		if NewCmp(op, nan, cf(1)).Eval(nil, nil).Bool() {
			t.Errorf("NaN %v 1 must be false", op)
		}
	}
}

func TestColStringAndOpStrings(t *testing.T) {
	if NewCol(3, "", rel.KFloat).String() != "$3" {
		t.Error("anonymous col rendering")
	}
	ops := map[string]Expr{
		"%": NewArith(Mod, ci(5), ci(2)),
		">": NewCmp(Gt, ci(1), ci(0)),
	}
	for want, e := range ops {
		if s := e.String(); !contains(s, want) {
			t.Errorf("%T rendering %q missing %q", e, s, want)
		}
	}
	if Unknown.String() != "unknown" || True.String() != "true" || False.String() != "false" {
		t.Error("Tri rendering")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
