package core

import (
	"runtime"
	"testing"
)

// measureAllocsPerTuple runs the engine over all batches of a fresh query
// and returns heap allocations per streamed tuple across the steady-state
// batches (the first batch is excluded: it builds the groups, scratch
// buffers, and weight slab capacity that later batches reuse).
func measureAllocsPerTuple(t *testing.T, query string, n, workers int) float64 {
	t.Helper()
	db := testDB(n, 42)
	root := planQuery(t, query)
	eng, err := NewEngine(root, db, Options{Batches: 8, Trials: 100, Workers: workers})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if _, err := eng.Step(); err != nil { // warm-up batch
		t.Fatalf("warm-up step: %v", err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	steps := 0
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
		steps++
	}
	runtime.ReadMemStats(&after)
	tuples := float64(n) * float64(steps) / 8.0
	return float64(after.Mallocs-before.Mallocs) / tuples
}

// TestEngineAllocsPerTupleSteadyState bounds end-to-end allocations per
// streamed tuple on the aggregate hot path, sequential and parallel. The
// per-tuple work — group lookup (EncodeKeyInto + no-copy map index),
// Poisson weights (slab-backed WeightsInto), and the bank kernels — is
// allocation-free; what remains is per-batch and per-group overhead
// (result materialization, the weight slab, update plumbing), which
// amortizes far below one allocation per tuple. A true per-tuple
// regression (one weight slice or key string per row costs >= 1/tuple)
// trips the bound at once.
func TestEngineAllocsPerTupleSteadyState(t *testing.T) {
	const n = 16000
	const bound = 0.5
	queries := []struct{ name, q string }{
		{"global_agg", `SELECT COUNT(*) AS n, AVG(buffer_time) AS abt, SUM(play_time) AS spt FROM sessions`},
		{"group_by", `SELECT cdn, SUM(play_time) AS spt, STDDEV(buffer_time) AS sbt FROM sessions GROUP BY cdn`},
		// Columnar scan -> vectorized select -> batched fold: the filter
		// narrows the batch through a selection vector, so the fold gathers
		// survivors straight from the scan's column banks.
		{"filter_group_by", `SELECT cdn, SUM(play_time) AS spt, MIN(buffer_time) AS mbt
			FROM sessions WHERE buffer_time > 25 GROUP BY cdn`},
	}
	for _, q := range queries {
		for _, workers := range []int{1, 4} {
			got := measureAllocsPerTuple(t, q.q, n, workers)
			if got > bound {
				t.Errorf("%s workers=%d: %.3f allocs/tuple, want <= %v", q.name, workers, got, bound)
			}
		}
	}
}
