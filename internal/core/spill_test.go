package core

import (
	"os"
	"strings"
	"testing"

	"iolap/internal/storage"
)

// The spill policy promises that Options.StateBudgetBytes changes only WHERE
// join state lives, never WHAT the engine computes: every update must stay
// bit-identical to the in-memory sequential oracle at any budget, including a
// zero-byte budget that forces the entire join state through spill files.
// This suite sweeps budget × worker count over the equivalence fixtures
// (including the skewed-group and failure-recovery shapes) and separately
// proves the engine recovers from spill-file faults via the Section 5.1
// snapshot/replay path.

// scrubSpillMetrics copies updates with the placement-dependent fields zeroed
// so runs at different budgets can be compared with assertUpdatesIdentical:
// a spilling run necessarily reports different resident/spill bytes than the
// in-memory oracle, and those three fields are exactly the ones a budget is
// allowed to change.
func scrubSpillMetrics(us []*Update) []*Update {
	out := make([]*Update, len(us))
	for i, u := range us {
		c := *u
		c.JoinStateResidentBytes = 0
		c.SpillBytesWritten = 0
		c.SpillBytesRead = 0
		out[i] = &c
	}
	return out
}

// assertResultsIdentical compares only the user-visible answer — batch
// labels, fraction, result relation, estimates — ignoring accounting metrics.
// It is the right comparison when one run recovered and the other did not:
// recovery legitimately changes Recomputed/ShuffleBytes/Recoveries, but the
// paper's replay protocol guarantees the answer itself is unchanged.
func assertResultsIdentical(t *testing.T, want, got []*Update) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("update counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Batch != b.Batch || a.Batches != b.Batches {
			t.Fatalf("update %d: batch labels differ: %d/%d vs %d/%d", i, a.Batch, a.Batches, b.Batch, b.Batches)
		}
		if !sameF(a.Fraction, b.Fraction) {
			t.Errorf("batch %d: Fraction %v vs %v", a.Batch, a.Fraction, b.Fraction)
		}
		if len(a.Result.Tuples) != len(b.Result.Tuples) {
			t.Fatalf("batch %d: result sizes differ: %d vs %d rows\nwant:\n%s\ngot:\n%s",
				a.Batch, len(a.Result.Tuples), len(b.Result.Tuples), a.Result, b.Result)
		}
		for ti := range a.Result.Tuples {
			ta, tb := a.Result.Tuples[ti], b.Result.Tuples[ti]
			if !sameF(ta.Mult, tb.Mult) || len(ta.Vals) != len(tb.Vals) {
				t.Fatalf("batch %d row %d: tuples differ: %v×%v vs %v×%v",
					a.Batch, ti, ta.Vals, ta.Mult, tb.Vals, tb.Mult)
			}
			for vi := range ta.Vals {
				if !sameValue(ta.Vals[vi], tb.Vals[vi]) {
					t.Fatalf("batch %d row %d col %d: %v vs %v", a.Batch, ti, vi, ta.Vals[vi], tb.Vals[vi])
				}
			}
		}
		if len(a.Estimates) != len(b.Estimates) {
			t.Fatalf("batch %d: estimate row counts differ: %d vs %d", a.Batch, len(a.Estimates), len(b.Estimates))
		}
		for ri := range a.Estimates {
			if len(a.Estimates[ri]) != len(b.Estimates[ri]) {
				t.Fatalf("batch %d: estimate row %d widths differ", a.Batch, ri)
			}
			for ci := range a.Estimates[ri] {
				if !sameEstimate(a.Estimates[ri][ci], b.Estimates[ri][ci]) {
					t.Fatalf("batch %d: estimate [%d][%d] differs: %+v vs %+v",
						a.Batch, ri, ci, a.Estimates[ri][ci], b.Estimates[ri][ci])
				}
			}
		}
	}
}

// TestBudgetEquivalenceSweep is the satellite-2 matrix: StateBudgetBytes in
// {zero-byte, tiny, unbounded} × Workers in {1, 2, 8}, each cell compared
// against the Workers=1 in-memory oracle. Within a budget, worker count must
// not even change the spill metrics — eviction order and run layout are
// deterministic — so same-budget pairs are compared unscrubbed.
func TestBudgetEquivalenceSweep(t *testing.T) {
	budgets := []struct {
		name   string
		budget int64
	}{
		{"full_spill", -1},     // zero-byte budget: all join state on disk
		{"tiny", 32 << 10},     // partial spill under pressure
		{"unbounded", 1 << 40}, // policy active, nothing ever evicted
	}
	cases := []struct {
		name      string
		query     string
		n         int
		dbSeed    int64
		opts      Options
		sorted    bool
		skewed    bool
		wantSpill bool // fixture has join state, so full_spill must hit disk
	}{
		{"flat_group_by", theoremQuery(t, "flat_group_by"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false, false},
		{"join_dim_group", theoremQuery(t, "join_dim_group"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false, true},
		{"sbi", sbiQuery, 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false, true},
		{"skewed_group/join", theoremQuery(t, "join_dim_group"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, true, true},
		// Adversarial order + zero slack: variation-range failures fire, so
		// snapshot restore and merged-delta replay run over spilled state.
		{"recovery", sbiQuery, 200, 7,
			Options{Mode: ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4}, true, false, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			oracleOpts := c.opts
			oracleOpts.Workers, oracleOpts.ParThreshold = 1, 1
			oracle, oracleEng := runEngineUpdates(t, c.query, c.n, c.dbSeed, oracleOpts, c.sorted, c.skewed)
			defer oracleEng.Close()
			oracleScrub := scrubSpillMetrics(oracle)
			for _, b := range budgets {
				b := b
				t.Run(b.name, func(t *testing.T) {
					var runs [][]*Update
					var engs []*Engine
					for _, w := range []int{1, 2, 8} {
						o := c.opts
						o.Workers, o.ParThreshold = w, 1
						o.StateBudgetBytes = b.budget
						o.SpillFS = storage.NewMemFS()
						us, eng := runEngineUpdates(t, c.query, c.n, c.dbSeed, o, c.sorted, c.skewed)
						defer eng.Close()
						// Budget changes placement, never results.
						assertUpdatesIdentical(t, oracleScrub, scrubSpillMetrics(us))
						runs = append(runs, us)
						engs = append(engs, eng)
					}
					// Same budget, different workers: everything must match,
					// spill metrics included.
					assertUpdatesIdentical(t, runs[0], runs[1])
					assertUpdatesIdentical(t, runs[0], runs[2])
					for i, eng := range engs {
						if eng.TotalRecoveries() != engs[0].TotalRecoveries() {
							t.Errorf("TotalRecoveries diverges across workers: %d vs %d",
								engs[0].TotalRecoveries(), eng.TotalRecoveries())
						}
						if c.wantSpill && b.budget < 0 && eng.TotalSpillBytesWritten() == 0 {
							t.Errorf("run %d: full-spill budget never wrote a spill file; the case tests nothing", i)
						}
						if !c.wantSpill && eng.TotalSpillBytesWritten() != 0 {
							t.Errorf("run %d: fixture without join state spilled %d bytes",
								i, eng.TotalSpillBytesWritten())
						}
					}
					if strings.HasPrefix(c.name, "recovery") && engs[0].TotalRecoveries() == 0 {
						t.Fatal("recovery fixture no longer triggers recoveries; the case tests nothing")
					}
				})
			}
		})
	}
}

// TestSpillTempDirLifecycle exercises the default OSFS path: with no SpillFS
// injected the engine creates its own temp directory, writes real spill
// files into it, and Close removes the whole thing. Results must still match
// the in-memory run bit for bit.
func TestSpillTempDirLifecycle(t *testing.T) {
	query := theoremQuery(t, "join_dim_group")
	opts := Options{Mode: ModeIOLAP, Batches: 4, Trials: 10, Seed: 3, Workers: 2, ParThreshold: 1}

	memOpts := opts
	want, memEng := runEngineUpdates(t, query, 240, 11, memOpts, false, false)
	defer memEng.Close()

	diskOpts := opts
	diskOpts.StateBudgetBytes = -1
	got, eng := runEngineUpdates(t, query, 240, 11, diskOpts, false, false)
	assertUpdatesIdentical(t, scrubSpillMetrics(want), scrubSpillMetrics(got))

	dir := eng.spillDirOwned
	if dir == "" {
		t.Fatal("engine with a budget and no SpillFS must own a temp spill dir")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read spill dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no spill files written to the owned dir")
	}
	if eng.TotalSpillBytesWritten() == 0 {
		t.Fatal("TotalSpillBytesWritten = 0 on a full-spill run")
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survives Close (stat err %v)", dir, err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close must be a no-op: %v", err)
	}
}

// TestSpillFaultEngineRecovery is the satellite-1 harness at the engine
// level: a write error, a torn write, or a failed fsync in the middle of a
// spill must surface as a recovery event — snapshot restore plus merged-delta
// replay — after which the run completes with answers bit-identical to the
// fault-free in-memory oracle.
func TestSpillFaultEngineRecovery(t *testing.T) {
	query := theoremQuery(t, "join_dim_group")
	base := Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3,
		Workers: 2, ParThreshold: 1, StateBudgetBytes: -1}

	oracleOpts := base
	oracleOpts.StateBudgetBytes = 0 // in-memory, no spill machinery at all
	oracle, oracleEng := runEngineUpdates(t, query, 240, 11, oracleOpts, false, false)
	defer oracleEng.Close()

	// A clean spill run counts the deterministic write/sync schedule the
	// fault scenarios then aim into the middle of.
	clean := storage.NewFaultFS(storage.NewMemFS())
	cleanOpts := base
	cleanOpts.SpillFS = clean
	cleanUs, cleanEng := runEngineUpdates(t, query, 240, 11, cleanOpts, false, false)
	defer cleanEng.Close()
	assertResultsIdentical(t, oracle, cleanUs)
	if cleanEng.TotalRecoveries() != 0 {
		t.Fatalf("clean spill run recovered %d times", cleanEng.TotalRecoveries())
	}
	writes, syncs := clean.Ops()
	if writes == 0 || syncs == 0 {
		t.Fatalf("fixture never spilled (writes %d, syncs %d)", writes, syncs)
	}

	scenarios := []struct {
		name string
		arm  func(fs *storage.FaultFS)
	}{
		{"write_error", func(fs *storage.FaultFS) { fs.FailWriteAt(max(1, writes/2), false) }},
		{"short_write", func(fs *storage.FaultFS) { fs.FailWriteAt(max(1, writes/2), true) }},
		{"sync_error", func(fs *storage.FaultFS) { fs.FailSyncAt(max(1, syncs/2)) }},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			ffs := storage.NewFaultFS(storage.NewMemFS())
			sc.arm(ffs)
			o := base
			o.SpillFS = ffs
			us, eng := runEngineUpdates(t, query, 240, 11, o, false, false)
			defer eng.Close()
			if eng.TotalRecoveries() == 0 {
				t.Fatal("injected spill fault triggered no recovery; the scenario tests nothing")
			}
			recovered := 0
			for _, u := range us {
				recovered += u.Recoveries
			}
			if recovered != eng.TotalRecoveries() {
				t.Errorf("per-update Recoveries sum %d != TotalRecoveries %d", recovered, eng.TotalRecoveries())
			}
			// The answer is untouched: replay rebuilds the exact state.
			assertResultsIdentical(t, oracle, us)
		})
	}
}
