package core

// Cross-session shared operator state (DESIGN.md §13).
//
// A serving engine's sessions all ride one mini-batch schedule, so any
// operator state that is a deterministic function of (plan subtree,
// schedule, execution parameters) is byte-identical across sessions whose
// plans contain equivalent subtrees. Options.SharedState is the seam: when
// set, compilation fingerprints eligible subtrees (internal/share) and
// acquires their state from the cache instead of building a private copy.
//
// Two shapes are shared:
//
//   - Join build sides over static, certain subtrees ("frozen stores"):
//     the build-side delta pipeline runs exactly once — at batch 1 it emits
//     every row and is silent forever after — so its HashStore is frozen
//     the moment it is built. The cache builds it once by stepping a
//     throwaway copy of the subtree's operators; every session's opJoin
//     probes the same store and never writes it, which is what makes
//     post-barrier reads lock-free. Snapshot/restore skip a frozen store
//     (restoring an immutable value is the identity), so §5.1 replay
//     "replays once, not per session" trivially.
//
//   - Inner (non-root) aggregate subtrees: a sharedAggEntry owns one copy
//     of the subtree's operators and steps them once per requested batch
//     range, memoizing each step's emissions and published table. The
//     first session to reach a batch is the designated owner that performs
//     the write; cohort peers arriving at the same (state, batch) get the
//     memoized result without touching operator state. Because §5.1
//     recovery replays merged batch ranges — and a replayed range leaves
//     different range-tracking state than stepping its batches one by one
//     — entry states are keyed by the *path* of ranges stepped, not the
//     batch label alone: sessions whose recovery histories diverge fork to
//     private paths and stay bit-identical to their solo oracles.
//
// Ownership is refcounted: every acquisition registers a release on the
// session's compiled plan, Engine.Close releases them (idempotently), and
// the cache evicts an entry when its last holder releases.

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"iolap/internal/cluster"
	"iolap/internal/delta"
	"iolap/internal/plan"
	"iolap/internal/rel"
	"iolap/internal/share"
)

// SharedStateCache is the state-provider seam between an engine and an
// external shared-state owner (the serving layer's share.Cache). Acquire
// either returns the live value for key or builds it exactly once; the
// returned release must be called when the holder is done (Engine.Close
// does this for every state acquired during compilation).
type SharedStateCache interface {
	Acquire(key string, build func() (any, error)) (val any, release func(), hit bool, err error)
}

// sharedSized reports the resident footprint of one shared resource; it
// mirrors share.Sized so cache hits can be credited in bytes.
type sharedSized interface {
	SharedBytes() int64
}

// releaseShared releases every shared-state acquisition of this plan.
// Idempotent: the underlying releases are once-guarded and the slice is
// cleared.
func (c *compiled) releaseShared() {
	for _, r := range c.releases {
		r()
	}
	c.releases = nil
}

// ---------------------------------------------------------------------------
// Frozen join build sides

// sharedStore is the cache value for a frozen join build side.
type sharedStore struct {
	store *delta.HashStore
}

func (s *sharedStore) SharedBytes() int64 { return int64(s.store.SizeBytes()) }

// opSharedBuild stands in for a join's build subtree whose output lives in
// a shared frozen store: it emits nothing (the store already holds every
// row) and carries no state.
type opSharedBuild struct {
	emitCounts
	node plan.Node
}

func (o *opSharedBuild) step(*batchContext) (output, error) { return output{}, nil }
func (o *opSharedBuild) snapshot() interface{}              { return nil }
func (o *opSharedBuild) restore(interface{})                {}
func (o *opSharedBuild) stateBytes() int                    { return 0 }
func (o *opSharedBuild) kind() string                       { return "shared-build" }

// staticCertainSubtree reports whether every scan under n is static and the
// shape contains only nodes whose single-step output is deterministic and
// certain (no aggregates: their outputs can be uncertain and batch-coupled).
func staticCertainSubtree(n plan.Node) bool {
	switch t := n.(type) {
	case *plan.Scan:
		return !t.Streamed
	case *plan.Select:
		return staticCertainSubtree(t.Child)
	case *plan.Project:
		return staticCertainSubtree(t.Child)
	case *plan.Join:
		return staticCertainSubtree(t.L) && staticCertainSubtree(t.R)
	case *plan.Union:
		return staticCertainSubtree(t.L) && staticCertainSubtree(t.R)
	}
	return false
}

// acquireSharedBuild tries to satisfy a join's build-side store from the
// shared cache. It returns (nil, false, nil) when the join is not eligible;
// eligibility is conservative — sharing must never change results:
//
//   - the right (build) side is a static, certain subtree, so the store's
//     content is schedule- and seed-independent and frozen after batch 1;
//   - only the right side caches (cacheR && !cacheL): a static certain
//     build side never forces a cached left, and the frozen-store argument
//     covers exactly this orientation;
//   - keyed joins only, local execution only (no dist exchange, no
//     partitioned shipping).
func (c *compiled) acquireSharedBuild(t *plan.Join, cacheL, cacheR bool, an *plan.Analysis, scaleExp []int, grow []bool, opts Options) (*delta.HashStore, bool, error) {
	if opts.SharedState == nil || opts.Exchange != nil || len(c.partKeys) > 0 {
		return nil, false, nil
	}
	if !cacheR || cacheL || len(t.RKeys) == 0 || !staticCertainSubtree(t.R) {
		return nil, false, nil
	}
	key := fmt.Sprintf("join|rk=%v|%s", t.RKeys, share.Fingerprint(t.R))
	v, release, hit, err := opts.SharedState.Acquire(key, func() (any, error) {
		st, err := c.buildFrozenStore(t.R, t.RKeys, an, scaleExp, grow, opts)
		if err != nil {
			return nil, err
		}
		return &sharedStore{store: st}, nil
	})
	if err != nil {
		return nil, false, err
	}
	ss := v.(*sharedStore)
	c.releases = append(c.releases, release)
	c.sharedRefs = append(c.sharedRefs, ss)
	if hit {
		c.sharedHits++
		c.sharedHitBytes += ss.SharedBytes()
	}
	return ss.store, true, nil
}

// buildFrozenStore builds the build-side subtree's operators privately,
// drives the single step that consumes the static tables, and freezes the
// emitted rows into a HashStore keyed like the join expects. The store's
// per-key insertion order is the subtree's emission (scan) order — the same
// order the solo engine's transient per-batch store sees, which is what
// makes probes against the frozen store byte-identical to a solo run.
func (c *compiled) buildFrozenStore(sub plan.Node, rkeys []int, an *plan.Analysis, scaleExp []int, grow []bool, opts Options) (*delta.HashStore, error) {
	b := &compiled{analysis: an, norm: c.norm, db: c.db}
	o2 := opts
	o2.SharedState = nil
	o2.Exchange = nil
	o2.PartitionTables = nil
	root, err := b.build(sub, an, scaleExp, grow, o2, false)
	if err != nil {
		return nil, err
	}
	bc := &batchContext{
		batch:  1,
		scale:  1,
		delta:  map[string]*rel.Relation{},
		dims:   c.db,
		tables: make(map[int]*aggTable),
		lazy:   o2.Mode == ModeIOLAP,
		prune:  o2.Mode != ModeHDA,
		hdaAgg: o2.Mode == ModeHDA,
		cost:   cluster.NewCostModel(0),
	}
	out, err := root.step(bc)
	if err != nil {
		return nil, err
	}
	if len(out.unc) != 0 {
		return nil, fmt.Errorf("core: shared build side emitted %d uncertain rows (subtree is not certain)", len(out.unc))
	}
	store := delta.NewHashStore(rkeys)
	store.AddBatch(out.news, true, nil)
	return store, nil
}

// ---------------------------------------------------------------------------
// Shared inner aggregates

// sharedAggIDs hands out operator ids for shared aggregate entries. They
// start far above any per-plan node id so a shared entry's published table
// and lineage refs can never collide with a session's private operators.
var sharedAggIDs atomic.Int64

const sharedAggIDBase = 1 << 20

func nextSharedAggID() int {
	return sharedAggIDBase + int(sharedAggIDs.Add(1))
}

// sharedStepResult is one memoized step of a shared aggregate subtree. All
// fields are immutable once memoized: op_agg allocates a fresh published
// table and fresh rows every step, so handing the same result to many
// sessions is safe.
type sharedStepResult struct {
	news, unc  []delta.Row
	table      *aggTable
	failures   []failure
	recomputed int
}

// sharedAggEntry owns one copy of an inner-aggregate subtree's operators
// and serves step results to every session whose plan contains an
// equivalent subtree. State evolution is keyed by path — the ":"-joined
// sequence of batch labels stepped so far — because a §5.1 merged replay
// leaves different range-tracking state than stepping the same batches one
// at a time; sessions with diverging recovery histories therefore fork to
// their own paths instead of silently sharing mismatched state.
type sharedAggEntry struct {
	id        int
	table     string // streamed table name
	deltas    []*rel.Relation
	totalRows int
	db        dbView
	opts      Options

	mu     sync.Mutex
	ops    []operator
	root   operator
	cur    string                       // path of the live operator state
	states map[string][]interface{}     // per-op snapshots by path
	memo   map[string]*sharedStepResult // step results by path+":"+to
	cost   *cluster.CostModel
	bytes  int64 // high-water resident footprint of ops (lock-free reads)
}

func pathKey(path string, to int) string {
	return path + ":" + strconv.Itoa(to)
}

// SharedBytes reports the entry's operator-state high-water footprint.
func (en *sharedAggEntry) SharedBytes() int64 {
	return atomic.LoadInt64(&en.bytes)
}

func (en *sharedAggEntry) updateBytesLocked() {
	n := 0
	for _, op := range en.ops {
		n += op.stateBytes()
	}
	if int64(n) > atomic.LoadInt64(&en.bytes) {
		atomic.StoreInt64(&en.bytes, int64(n))
	}
}

// stepRange advances the shared subtree from the state reached via path
// (which has consumed batches (0, from]) to batch to, consuming the merged
// delta (from, to] — exactly what a solo engine's subtree would do on that
// step, including a recovery replay. The first caller for a given
// (path, to) performs the write; later callers get the memoized result.
func (en *sharedAggEntry) stepRange(path string, from, to int) (*sharedStepResult, error) {
	en.mu.Lock()
	defer en.mu.Unlock()
	key := pathKey(path, to)
	if r, ok := en.memo[key]; ok {
		return r, nil
	}
	if en.cur != path {
		snap, ok := en.states[path]
		if !ok {
			return nil, fmt.Errorf("core: shared aggregate #%d: no state for path %q", en.id, path)
		}
		for i, op := range en.ops {
			op.restore(snap[i])
		}
		en.cur = path
	}
	merged := rel.NewRelation(en.deltas[0].Schema)
	seen := 0
	for b := 1; b <= to; b++ {
		n := en.deltas[b-1].Len()
		seen += n
		if b > from {
			merged.Tuples = append(merged.Tuples, en.deltas[b-1].Tuples...)
		}
	}
	scale := 1.0
	if seen > 0 {
		scale = float64(en.totalRows) / float64(seen)
	}
	bc := &batchContext{
		batch:  to,
		scale:  scale,
		scaleN: seen,
		exact:  seen >= en.totalRows,
		trials: en.opts.Trials,
		delta:  map[string]*rel.Relation{en.table: merged},
		dims:   en.db,
		tables: make(map[int]*aggTable),
		lazy:   en.opts.Mode == ModeIOLAP,
		prune:  en.opts.Mode != ModeHDA,
		hdaAgg: en.opts.Mode == ModeHDA,
		cost:   en.cost,
	}
	out, err := en.root.step(bc)
	if err != nil {
		return nil, err
	}
	res := &sharedStepResult{
		news:       out.news,
		unc:        out.unc,
		table:      bc.tables[en.id],
		failures:   bc.failures,
		recomputed: bc.recomputed,
	}
	en.cur = key
	if _, ok := en.states[key]; !ok {
		snap := make([]interface{}, len(en.ops))
		for i, op := range en.ops {
			snap[i] = op.snapshot()
		}
		en.states[key] = snap
	}
	en.memo[key] = res
	en.updateBytesLocked()
	return res, nil
}

// opSharedAgg is a session's view of a shared aggregate subtree: a
// stateless proxy that requests batch ranges from the entry and republishes
// the memoized table into the session's batch context. Its only state is
// the (seen, path) cursor, so session snapshot/restore — and through it
// §5.1 replay — costs nothing and never touches the shared operators.
type opSharedAgg struct {
	emitCounts
	node  *plan.Aggregate
	entry *sharedAggEntry
	seen  int
	path  string
}

type sharedAggSnap struct {
	seen int
	path string
}

func (o *opSharedAgg) step(bc *batchContext) (output, error) {
	res, err := o.entry.stepRange(o.path, o.seen, bc.batch)
	if err != nil {
		return output{}, err
	}
	o.path = pathKey(o.path, bc.batch)
	o.seen = bc.batch
	bc.publish(o.entry.id, res.table)
	bc.recomputed += res.recomputed
	bc.failures = append(bc.failures, res.failures...)
	out := output{news: res.news, unc: res.unc}
	o.record(out)
	return out, nil
}

func (o *opSharedAgg) snapshot() interface{} {
	return sharedAggSnap{seen: o.seen, path: o.path}
}

func (o *opSharedAgg) restore(snap interface{}) {
	s := snap.(sharedAggSnap)
	o.seen, o.path = s.seen, s.path
}

func (o *opSharedAgg) stateBytes() int { return 0 }
func (o *opSharedAgg) kind() string    { return "agg-shared" }

// hasAggregateBelow reports whether the subtree under n (exclusive of n)
// contains an Aggregate node.
func hasAggregateBelow(n plan.Node) bool {
	var walk func(plan.Node) bool
	walk = func(m plan.Node) bool {
		switch t := m.(type) {
		case *plan.Scan:
			return false
		case *plan.Select:
			return walk(t.Child)
		case *plan.Project:
			return walk(t.Child)
		case *plan.Join:
			return walk(t.L) || walk(t.R)
		case *plan.Union:
			return walk(t.L) || walk(t.R)
		case *plan.Aggregate:
			return true
		}
		return true // unknown node: assume the worst
	}
	switch t := n.(type) {
	case *plan.Aggregate:
		return walk(t.Child)
	}
	return walk(n)
}

// acquireSharedAgg tries to satisfy an inner aggregate subtree from the
// shared cache. Eligibility is conservative:
//
//   - never the plan root (root aggregates ARE the session's query; sharing
//     them would only dedupe byte-identical queries while perturbing the
//     budget arithmetic callers rely on — inner subquery aggregates are
//     where the overlap win lives);
//   - ModeIOLAP, local execution, caller-supplied schedule (the serving
//     engine), exactly one streamed scan and no nested aggregate below;
//   - the cache key carries every parameter that shapes the state: the
//     canonical subtree fingerprint, seed/trials/slack/min-support, range
//     tracking, and the schedule identity (table, batch count, total rows).
func (c *compiled) acquireSharedAgg(t *plan.Aggregate, an *plan.Analysis, scaleExp []int, grow []bool, opts Options, trackRanges bool) (operator, bool, error) {
	if opts.SharedState == nil || opts.Exchange != nil || len(c.partKeys) > 0 {
		return nil, false, nil
	}
	if t == c.norm || opts.Mode != ModeIOLAP || len(opts.Deltas) == 0 {
		return nil, false, nil
	}
	if hasAggregateBelow(t) {
		return nil, false, nil
	}
	streamed := map[string]bool{}
	for _, sc := range plan.StreamedScans(t) {
		streamed[sc.Table] = true
	}
	if len(streamed) != 1 {
		return nil, false, nil
	}
	var table string
	for name := range streamed {
		table = name
	}
	totalRows := 0
	for _, d := range opts.Deltas {
		totalRows += d.Len()
	}
	key := fmt.Sprintf("agg|mode=%d|trials=%d|seed=%d|slack=%g|minsup=%d|ranges=%v|table=%s|p=%d|n=%d|%s",
		opts.Mode, opts.Trials, opts.Seed, opts.Slack, opts.MinRangeSupport, trackRanges,
		table, len(opts.Deltas), totalRows, share.Fingerprint(t))
	v, release, hit, err := opts.SharedState.Acquire(key, func() (any, error) {
		return c.buildSharedAggEntry(t, table, totalRows, an, scaleExp, grow, opts, trackRanges)
	})
	if err != nil {
		return nil, false, err
	}
	en := v.(*sharedAggEntry)
	c.releases = append(c.releases, release)
	c.sharedRefs = append(c.sharedRefs, en)
	if hit {
		c.sharedHits++
		c.sharedHitBytes += en.SharedBytes()
	}
	op := &opSharedAgg{node: t, entry: en}
	return op, true, nil
}

// buildSharedAggEntry builds the entry's private copy of the subtree
// operators and takes the initial (empty-state) snapshot. The subtree's
// root aggregate publishes under the entry's id so lineage refs resolve the
// same way in every holding session.
func (c *compiled) buildSharedAggEntry(t *plan.Aggregate, table string, totalRows int, an *plan.Analysis, scaleExp []int, grow []bool, opts Options, trackRanges bool) (*sharedAggEntry, error) {
	b := &compiled{analysis: an, norm: c.norm, db: c.db}
	o2 := opts
	o2.SharedState = nil
	o2.Exchange = nil
	o2.PartitionTables = nil
	root, err := b.build(t, an, scaleExp, grow, o2, trackRanges)
	if err != nil {
		return nil, err
	}
	markColumnar(root, false, nil)
	en := &sharedAggEntry{
		id:        nextSharedAggID(),
		table:     table,
		deltas:    opts.Deltas,
		totalRows: totalRows,
		db:        c.db,
		opts:      o2,
		ops:       b.ops,
		root:      root,
		states:    make(map[string][]interface{}),
		memo:      make(map[string]*sharedStepResult),
		cost:      cluster.NewCostModel(0),
	}
	ra, ok := root.(*opAgg)
	if !ok {
		return nil, fmt.Errorf("core: shared aggregate subtree built %T, want *opAgg", root)
	}
	ra.pubID = en.id
	snap := make([]interface{}, len(en.ops))
	for i, op := range en.ops {
		snap[i] = op.snapshot()
	}
	en.states[""] = snap
	return en, nil
}
