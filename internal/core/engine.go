package core

import (
	"fmt"
	"os"
	"time"

	"iolap/internal/bootstrap"
	"iolap/internal/cluster"
	"iolap/internal/delta"
	"iolap/internal/exec"
	"iolap/internal/plan"
	"iolap/internal/rel"
	"iolap/internal/storage"
)

// Update is the refined partial result delivered after one mini-batch.
type Update struct {
	// Batch is the 1-based mini-batch number; Batches is the total p.
	Batch, Batches int
	// Fraction is |D_i| / |D| of the streamed table.
	Fraction float64
	// Result is the partial query result Q(D_i, m_i).
	Result *rel.Relation
	// Estimates holds, aligned with Result rows/columns, the bootstrap
	// error estimates of numeric outputs (zero-valued for exact columns).
	Estimates [][]bootstrap.Estimate
	// Duration is the wall-clock time of the batch (including recovery).
	Duration time.Duration
	// Recomputed counts the tuples re-evaluated this batch (the Fig 8(e,f)
	// metric): state refreshes plus pending re-aggregations.
	Recomputed int
	// NDSetRows is the total size of the non-deterministic sets held in
	// SELECT states after the batch.
	NDSetRows int
	// JoinStateBytes / OtherStateBytes split operator state memory as in
	// Figure 9(b). Both count this session's PRIVATE state only.
	JoinStateBytes, OtherStateBytes int
	// SharedStateBytes is the footprint of externally owned shared state
	// (Options.SharedState) this session references: frozen join build
	// stores and shared aggregate entries. Every holding session reports
	// the same figure, but the bytes exist once per cache entry — the
	// serving layer dedupes them via its cache stats.
	SharedStateBytes int
	// ShuffleBytes is the repartition traffic this batch: bytes a hash
	// shuffle would ship between workers.
	ShuffleBytes int64
	// BroadcastBytes is the replication traffic this batch: bytes shipped
	// once to every worker (published aggregate tables, scalar join sides).
	// ShuffleBytes + BroadcastBytes is the "data shipped at query time"
	// metric of Fig 9(c).
	BroadcastBytes int64
	// JoinStateResidentBytes is the in-memory share of JoinStateBytes: the
	// two differ exactly by the rows the StateBudgetBytes policy has
	// evicted to spill files.
	JoinStateResidentBytes int
	// SpillBytesWritten / SpillBytesRead are this batch's spill-file
	// traffic: bytes evicted to disk under the state budget and bytes read
	// back by probes. Local disk I/O, so not part of the data-shipped
	// metric.
	SpillBytesWritten, SpillBytesRead int64
	// WireShuffleBytes / WireBroadcastBytes are bytes actually measured on
	// transport connections by the distributed runtime this batch (frame
	// headers included): worker→coordinator traffic is shuffle,
	// coordinator→worker fan-out is broadcast. Zero for local runs. Unlike
	// ShuffleBytes/BroadcastBytes — the modeled exchange volume, which is
	// identical across local and distributed runs — these depend on the
	// live worker set, so equivalence comparisons exclude them.
	WireShuffleBytes, WireBroadcastBytes int64
	// Recoveries counts failure-recovery events triggered this batch
	// (variation-range integrity violations, Section 5.1, and failed spill
	// enforcement).
	Recoveries int
	// RecoveredFrom is the batch label whose snapshot the last recovery of
	// this step restored before replaying the merged delta (0 = pristine
	// state, i.e. recovery from scratch); -1 when no recovery happened.
	RecoveredFrom int
}

// MaxRelStdev returns the worst relative standard deviation across all
// uncertain numeric cells — the accuracy axis of Figure 7(a).
func (u *Update) MaxRelStdev() float64 {
	worst := 0.0
	for _, row := range u.Estimates {
		for _, e := range row {
			if e.Stdev > 0 && e.RelStd > worst {
				worst = e.RelStd
			}
		}
	}
	return worst
}

// Engine is the iOLAP query controller (Section 7): it partitions the
// streamed input into mini-batches, schedules the delta query on each batch,
// collects partial results, monitors variation-range integrity and runs
// failure recovery.
type Engine struct {
	opts Options
	comp *compiled
	db   *exec.DB

	streamedTable string
	deltas        []*rel.Relation
	totalRows     int
	seenRows      int
	batch         int

	snaps         []engineSnap
	base          engineSnap
	needSnapshots bool
	metrics       cluster.Metrics
	pool          *cluster.Pool
	// cost is the engine's adaptive parallel-cutover model; it lives on the
	// engine (not the batch context, not the package) so the per-class EWMA
	// keeps learning across batches and concurrent engines cannot race.
	cost *cluster.CostModel

	// spill is the join-state budget (nil when StateBudgetBytes is 0);
	// spillDirOwned is a temp directory the engine created for spill files
	// and removes on Close.
	spill         *delta.SpillPolicy
	spillDirOwned string

	// exch is the distributed transport hook (nil for local execution).
	exch Exchanger

	// committed* accumulate exchange and spill traffic of successful
	// attempts only: each batch's figures are measured per attempt and
	// folded in once the attempt commits, so §5.1 replays never double-count
	// (the totals always equal the sum of the per-batch Update figures).
	committedShuffle, committedBroadcast      int64
	committedSpillWritten, committedSpillRead int64

	totalRecoveries int
	lastBC          *batchContext
}

type engineSnap struct {
	afterBatch int // state is "after batch N" (0 = pristine)
	ops        []interface{}
	seenRows   int
}

// NewEngine compiles the plan and partitions the streamed table. The plan
// must be finalized (plan.Finalize) and reference exactly one streamed
// table (the paper streams the fact/largest table; dimension tables are
// read in full).
func NewEngine(root plan.Node, db *exec.DB, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	// The engine shell exists before compilation because the spill policy
	// the join stores register with points at the engine's metrics.
	e := &Engine{opts: opts, db: db}
	if err := e.initSpill(); err != nil {
		return nil, err
	}
	comp, err := compile(root, db, opts, e.spill)
	if err != nil {
		e.Close()
		return nil, err
	}
	// comp is attached before the remaining validation so every error path's
	// e.Close() releases any shared state the compilation acquired.
	e.comp = comp
	if len(comp.streamed) != 1 {
		e.Close()
		return nil, fmt.Errorf("core: exactly one streamed table required, plan has %d (%v)",
			len(comp.streamed), comp.streamed)
	}
	table := comp.streamed[0]
	src, ok := db.Get(table)
	if !ok {
		e.Close()
		return nil, fmt.Errorf("core: streamed table %q not in database", table)
	}
	totalRows := src.Len()
	var deltas []*rel.Relation
	if len(opts.Deltas) > 0 {
		// Caller-supplied schedule (the serving layer's shared scan): the
		// engine consumes the given slices verbatim and sizes itself by
		// them, so every session sharing the schedule sees the same |D|.
		deltas = opts.Deltas
		totalRows = 0
		for i, d := range deltas {
			if len(d.Schema) != len(src.Schema) {
				e.Close()
				return nil, fmt.Errorf("core: supplied delta %d schema width %d != streamed table %q width %d",
					i, len(d.Schema), table, len(src.Schema))
			}
			totalRows += d.Len()
		}
	} else {
		if opts.PreShuffle {
			src = cluster.Shuffle(src, opts.Seed)
		}
		if opts.BlockRows > 0 {
			// Block-wise randomness: permute whole blocks, keep rows within a
			// block together (Section 2's default).
			table := &storage.Table{Rel: src}
			for lo := 0; lo < src.Len(); lo += opts.BlockRows {
				table.BlockStarts = append(table.BlockStarts, lo)
			}
			src = table.ShuffleBlocks(opts.Seed ^ 0xb10c)
		}
		if opts.StratifyBy != "" {
			idx, err := src.Schema.Resolve("", opts.StratifyBy)
			if err != nil {
				e.Close()
				return nil, fmt.Errorf("core: stratify column: %w", err)
			}
			p := clampBatches(opts.Batches, src.Len())
			deltas = stratifyBatches(src, idx, p)
		} else {
			deltas = ContiguousDeltas(src, opts.Batches)
		}
	}
	e.streamedTable = table
	e.deltas = deltas
	e.totalRows = totalRows
	e.pool = cluster.NewPool(opts.Workers)
	e.cost = cluster.NewCostModel(opts.ParThreshold)
	e.cost.Seed(opts.CostSeed)
	e.exch = opts.Exchange
	e.needSnapshots = comp.nested && opts.Mode != ModeHDA && opts.Trials > 0
	e.base = e.takeSnapshot(0)
	return e, nil
}

// initSpill sets up the join-state budget from the options. A zero budget
// means spilling is disabled (no policy, no files, no temp dir).
func (e *Engine) initSpill() error {
	b := e.opts.StateBudgetBytes
	if b == 0 {
		return nil
	}
	fs := e.opts.SpillFS
	if fs == nil {
		dir := e.opts.SpillDir
		if dir == "" {
			d, err := os.MkdirTemp("", "iolap-spill-")
			if err != nil {
				return fmt.Errorf("core: spill dir: %w", err)
			}
			dir = d
			e.spillDirOwned = d
		}
		fs = storage.OSFS{Dir: dir}
	}
	e.spill = delta.NewSpillPolicy(b, fs, &e.metrics)
	return nil
}

// Close releases the engine's spill files (and the temp directory it created
// for them, if any). The engine remains usable for the join state still in
// memory, but any spilled rows are gone — call Close only when done
// stepping. Safe to call on an engine that never spilled, and idempotent.
func (e *Engine) Close() error {
	if e.comp != nil {
		// Drop this session's refs on shared state; the cache evicts an
		// entry when its last holder releases.
		e.comp.releaseShared()
	}
	err := e.spill.Close()
	e.spill = nil
	if e.spillDirOwned != "" {
		if rmErr := os.RemoveAll(e.spillDirOwned); rmErr != nil && err == nil {
			err = rmErr
		}
		e.spillDirOwned = ""
	}
	return err
}

// Batches returns the number of mini-batches p.
func (e *Engine) Batches() int { return len(e.deltas) }

// Done reports whether all batches have been processed.
func (e *Engine) Done() bool { return e.batch >= len(e.deltas) }

// Mode returns the configured delta algorithm.
func (e *Engine) Mode() Mode { return e.opts.Mode }

// Nested reports whether the compiled query contains nested
// (uncertainty-coupled) aggregates — the class where iOLAP's algorithm
// diverges from classical delta rules.
func (e *Engine) Nested() bool { return e.comp.nested }

// PlanString renders the normalized online plan with its Section 4.1
// uncertainty annotations (the paper's Figure 3 as a diagnostic).
func (e *Engine) PlanString() string {
	return plan.FormatAnnotated(e.comp.norm, e.comp.analysis)
}

// TotalRecoveries returns the failure-recovery count so far.
func (e *Engine) TotalRecoveries() int { return e.totalRecoveries }

func (e *Engine) takeSnapshot(afterBatch int) engineSnap {
	s := engineSnap{afterBatch: afterBatch, ops: make([]interface{}, len(e.comp.ops)), seenRows: e.seenRows}
	for i, op := range e.comp.ops {
		s.ops[i] = op.snapshot()
	}
	return s
}

func (e *Engine) restoreSnapshot(s engineSnap) {
	for i, op := range e.comp.ops {
		op.restore(s.ops[i])
	}
	e.seenRows = s.seenRows
}

func (e *Engine) newBatchContext(deltaRows *rel.Relation, seenAfter int) *batchContext {
	scale := 1.0
	if seenAfter > 0 {
		scale = float64(e.totalRows) / float64(seenAfter)
	}
	return &batchContext{
		batch:   e.batch,
		scale:   scale,
		scaleN:  seenAfter,
		exact:   seenAfter >= e.totalRows,
		trials:  e.opts.Trials,
		delta:   map[string]*rel.Relation{e.streamedTable: deltaRows},
		dims:    e.db,
		tables:  make(map[int]*aggTable),
		lazy:    e.opts.Mode == ModeIOLAP,
		prune:   e.opts.Mode != ModeHDA,
		hdaAgg:  e.opts.Mode == ModeHDA,
		metrics: &e.metrics,
		pool:    e.pool,
		cost:    e.cost,
		exch:    e.exch,
		vec:     !e.opts.NoVectorize,
	}
}

// mergeDeltas concatenates the deltas of batches (from, to] (1-based).
func (e *Engine) mergeDeltas(from, to int) *rel.Relation {
	out := rel.NewRelation(e.deltas[0].Schema)
	for b := from + 1; b <= to; b++ {
		out.Tuples = append(out.Tuples, e.deltas[b-1].Tuples...)
	}
	return out
}

// Step processes the next mini-batch and returns the refined partial
// result. It implements the controller loop of Section 7 including failure
// recovery: on a variation-range integrity violation the state is restored
// to the last consistent batch and the skipped batches are reprocessed as
// one merged delta (Section 5.1).
func (e *Engine) Step() (u *Update, err error) {
	if e.Done() {
		return nil, fmt.Errorf("core: all %d batches processed", len(e.deltas))
	}
	// A transport failure surfaces from deep inside an operator site as a
	// distPanic (operator signatures stay error-free); convert it into the
	// batch error here. Anything else keeps panicking.
	defer func() {
		if r := recover(); r != nil {
			dp, ok := r.(distPanic)
			if !ok {
				panic(r)
			}
			u, err = nil, dp.err
		}
	}()
	start := time.Now()
	// Exchange and spill baselines are re-read at the start of every
	// attempt, so the per-batch Update figures — and through them the
	// committed totals — cover the successful attempt only. Measuring from
	// the start of the step would count a failed attempt's traffic once in
	// this batch and again when the replay re-ships it.
	var shuffleBefore, broadcastBefore, spillWrittenBefore, spillReadBefore int64
	markAttempt := func() {
		shuffleBefore = e.metrics.ShuffleBytes()
		broadcastBefore = e.metrics.BroadcastBytes()
		spillWrittenBefore = e.metrics.SpillBytesWritten()
		spillReadBefore = e.metrics.SpillBytesRead()
	}
	var wireShuffleBefore, wireBroadcastBefore int64
	if e.exch != nil {
		wireShuffleBefore, wireBroadcastBefore = e.exch.WireStats()
	}
	// Snapshot the pre-batch state for recovery. Queries that track no
	// variation ranges can never fail an integrity check, so they skip
	// the snapshot cost entirely.
	if e.needSnapshots {
		snap := e.takeSnapshot(e.batch)
		e.snaps = append(e.snaps, snap)
		if len(e.snaps) > e.opts.SnapshotKeep {
			e.snaps = e.snaps[len(e.snaps)-e.opts.SnapshotKeep:]
		}
	}
	e.batch++
	// Inserts from here on are stamped with this batch's epoch — the
	// coldness key of the spill policy's eviction order. Written before any
	// pool work starts, so workers only ever read it.
	e.spill.Advance(e.batch)
	d := e.deltas[e.batch-1]
	e.seenRows += d.Len()
	bc := e.newBatchContext(d, e.seenRows)
	markAttempt()
	if _, err := e.comp.sink.step(bc); err != nil {
		return nil, err
	}
	recoveries := 0
	recoveredFrom := -1
	for attempt := 0; ; attempt++ {
		if len(bc.failures) == 0 {
			// The batch is consistent; now hold the resident-state budget.
			// A failed spill leaves its shard's memory authoritative, so
			// state is still correct — but the budget is not met, and the
			// write may have left dead bytes. Treat it exactly like an
			// integrity failure: restore a snapshot, replay the merged
			// delta, enforce again (transient faults heal; persistent
			// faults hit the attempt cap below).
			if err := e.spill.Enforce(); err == nil {
				break
			}
		}
		if attempt >= 4 {
			return nil, fmt.Errorf("core: failure recovery did not converge at batch %d", e.batch)
		}
		recoveries++
		e.totalRecoveries++
		// Pick the earliest consistent batch over all failures (spill
		// enforcement failures have no failure record and recover to the
		// previous batch).
		j := e.batch - 1
		for _, f := range bc.failures {
			if f.recoverTo < j {
				j = f.recoverTo
			}
		}
		if j < 0 || attempt >= 2 {
			j = 0 // recover from scratch
		}
		restored := false
		if j == 0 {
			e.restoreSnapshot(e.base)
			restored = true
		} else {
			for i := len(e.snaps) - 1; i >= 0; i-- {
				if e.snaps[i].afterBatch == j {
					e.restoreSnapshot(e.snaps[i])
					restored = true
					break
				}
			}
		}
		if !restored {
			// Snapshot evicted: recover from scratch.
			j = 0
			e.restoreSnapshot(e.base)
		}
		// Snapshots newer than the restore point describe state that the
		// replay will overwrite (join/sink snapshots are truncation-based);
		// drop them.
		keep := e.snaps[:0]
		for _, s := range e.snaps {
			if s.afterBatch <= j {
				keep = append(keep, s)
			}
		}
		e.snaps = keep
		recoveredFrom = j
		merged := e.mergeDeltas(j, e.batch)
		e.seenRows += merged.Len()
		bc = e.newBatchContext(merged, e.seenRows)
		markAttempt()
		if _, err := e.comp.sink.step(bc); err != nil {
			return nil, err
		}
	}
	e.lastBC = bc
	result, ests := e.comp.sink.materialize(bc)
	u = &Update{
		Batch:             e.batch,
		Batches:           len(e.deltas),
		Fraction:          float64(e.seenRows) / float64(max(1, e.totalRows)),
		Result:            result,
		Estimates:         ests,
		Duration:          time.Since(start),
		Recomputed:        bc.recomputed,
		NDSetRows:         e.ndSetRows(),
		ShuffleBytes:      e.metrics.ShuffleBytes() - shuffleBefore,
		BroadcastBytes:    e.metrics.BroadcastBytes() - broadcastBefore,
		SpillBytesWritten: e.metrics.SpillBytesWritten() - spillWrittenBefore,
		SpillBytesRead:    e.metrics.SpillBytesRead() - spillReadBefore,
		Recoveries:        recoveries,
		RecoveredFrom:     recoveredFrom,
	}
	e.committedShuffle += u.ShuffleBytes
	e.committedBroadcast += u.BroadcastBytes
	e.committedSpillWritten += u.SpillBytesWritten
	e.committedSpillRead += u.SpillBytesRead
	if e.exch != nil {
		ws, wb := e.exch.WireStats()
		u.WireShuffleBytes = ws - wireShuffleBefore
		u.WireBroadcastBytes = wb - wireBroadcastBefore
	}
	for _, op := range e.comp.ops {
		if op.kind() == "join" {
			u.JoinStateBytes += op.stateBytes()
			if j, ok := op.(*opJoin); ok {
				u.JoinStateResidentBytes += j.residentBytes()
			}
		} else {
			u.OtherStateBytes += op.stateBytes()
		}
	}
	for _, r := range e.comp.sharedRefs {
		u.SharedStateBytes += int(r.SharedBytes())
	}
	return u, nil
}

// SharedHits reports how many shared-state cache hits this engine's
// compilation got (state it referenced without building).
func (e *Engine) SharedHits() int { return e.comp.sharedHits }

// SharedHitBytes reports the bytes of shared state this engine referenced
// via cache hits — state it did NOT have to build or privately hold. The
// serving layer uses it to charge sessions only their incremental
// reservation.
func (e *Engine) SharedHitBytes() int64 { return e.comp.sharedHitBytes }

// SharedStateBytes reports the current footprint of all shared state this
// engine references (built or hit).
func (e *Engine) SharedStateBytes() int64 {
	var n int64
	for _, r := range e.comp.sharedRefs {
		n += r.SharedBytes()
	}
	return n
}

func (e *Engine) ndSetRows() int {
	n := 0
	for _, op := range e.comp.ops {
		if s, ok := op.(*opSelect); ok {
			n += s.state.Len()
		}
	}
	return n
}

// Run processes every remaining batch and returns all updates.
func (e *Engine) Run() ([]*Update, error) {
	var out []*Update
	for !e.Done() {
		u, err := e.Step()
		if err != nil {
			return out, err
		}
		out = append(out, u)
	}
	return out, nil
}

// TotalShuffleBytes returns cumulative repartition traffic. Totals cover
// committed (successful) attempts only, so they equal the sum of the
// per-batch Update figures and never double-count a §5.1 replay.
func (e *Engine) TotalShuffleBytes() int64 { return e.committedShuffle }

// TotalExchangeBytes returns cumulative exchange traffic of both kinds
// (shuffle + broadcast) — the Fig 9(c)/10(d) "data shipped" total.
// Committed attempts only (see TotalShuffleBytes).
func (e *Engine) TotalExchangeBytes() int64 { return e.committedShuffle + e.committedBroadcast }

// TotalSpillBytesWritten returns cumulative bytes evicted to spill files by
// committed attempts.
func (e *Engine) TotalSpillBytesWritten() int64 { return e.committedSpillWritten }

// TotalSpillBytesRead returns cumulative bytes probes of committed attempts
// read back from spill files.
func (e *Engine) TotalSpillBytesRead() int64 { return e.committedSpillRead }

// CostSnapshot exports the adaptive cost model's per-class estimates for
// persisting across runs (the CLI -cost-profile file; Options.CostSeed on
// the next run).
func (e *Engine) CostSnapshot() map[string]float64 { return e.cost.Snapshot() }

// WireStats returns the cumulative measured transport traffic of a
// distributed run (zero for local engines): worker→coordinator bytes as
// shuffle, coordinator→worker bytes as broadcast.
func (e *Engine) WireStats() (shuffle, broadcast int64) {
	if e.exch == nil {
		return 0, 0
	}
	return e.exch.WireStats()
}

// SpilledRows returns the join-state rows currently living on disk.
func (e *Engine) SpilledRows() int { return e.spill.SpilledRows() }

// OpStat is one operator's per-batch runtime statistics (EXPLAIN
// ANALYZE-style observability).
type OpStat struct {
	// Kind is the operator class (scan/select/project/join/union/
	// aggregate/sink).
	Kind string
	// News and Unc are the rows emitted by the last batch: certain
	// (permanent) and tuple-uncertain (re-derived) respectively.
	News, Unc int
	// StateBytes is the operator's current Section-4.2 state footprint.
	StateBytes int
	// SpilledRows is how many of a join's cached rows live in spill files
	// (always 0 without a state budget, and for non-join operators).
	SpilledRows int
}

// OpStats reports per-operator statistics for the most recent batch, in
// bottom-up plan order.
func (e *Engine) OpStats() []OpStat {
	out := make([]OpStat, 0, len(e.comp.ops))
	for _, op := range e.comp.ops {
		news, unc := op.lastCounts()
		st := OpStat{
			Kind:       op.kind(),
			News:       news,
			Unc:        unc,
			StateBytes: op.stateBytes(),
		}
		if j, ok := op.(*opJoin); ok {
			st.SpilledRows = j.spilledRows()
		}
		out = append(out, st)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// clampBatches bounds the requested batch count by the row count (a batch
// must hold at least one row) and floors it at one.
func clampBatches(p, rows int) int {
	if p > rows && rows > 0 {
		p = rows
	}
	if p <= 0 {
		p = 1
	}
	return p
}

// ContiguousDeltas partitions src into p contiguous mini-batches with the
// engine's default boundaries (i·n/p) — exactly the slices NewEngine derives
// when Options.Deltas is empty. Exported so a serving layer can partition a
// shared table once and hand every session's engine the same schedule via
// Options.Deltas: the slices alias src's backing array, so N sessions scan
// one copy of the data.
func ContiguousDeltas(src *rel.Relation, p int) []*rel.Relation {
	p = clampBatches(p, src.Len())
	deltas := make([]*rel.Relation, p)
	n := src.Len()
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		d := rel.NewRelation(src.Schema)
		// Full slice expression: capacity is clamped to the batch, so an
		// append through this delta can never scribble over the first
		// rows of the next batch in the shared backing array.
		d.Tuples = src.Tuples[lo:hi:hi]
		deltas[i] = d
	}
	return deltas
}

// stratifyBatches splits the streamed relation into p mini-batches that
// each contain the same fraction of every stratum (value of column idx),
// preserving within-stratum order. Proportional allocation keeps the
// uniform scale m_i = |D|/|D_i| exact while guaranteeing every stratum is
// represented from the first batch — the stratified-sampling extension of
// Section 9.
func stratifyBatches(src *rel.Relation, idx, p int) []*rel.Relation {
	strata := make(map[string][]rel.Tuple)
	var order []string
	for _, tp := range src.Tuples {
		k := tp.Vals[idx].String()
		if _, ok := strata[k]; !ok {
			order = append(order, k)
		}
		strata[k] = append(strata[k], tp)
	}
	deltas := make([]*rel.Relation, p)
	for i := 0; i < p; i++ {
		d := rel.NewRelation(src.Schema)
		for _, k := range order {
			rows := strata[k]
			lo := i * len(rows) / p
			hi := (i + 1) * len(rows) / p
			d.Tuples = append(d.Tuples, rows[lo:hi:hi]...)
		}
		deltas[i] = d
	}
	return deltas
}
