package core

import (
	"testing"

	"iolap/internal/rel"
)

// ---------------------------------------------------------------------------
// Mini-batch aliasing regression
//
// The engine slices the streamed table into mini-batches. Before the fix the
// slices used two-index expressions (src.Tuples[lo:hi]), so batch i's slice
// kept capacity reaching into batch i+1's backing array: a single append to
// one mini-batch silently overwrote its neighbour's first tuple. The full
// slice expression src.Tuples[lo:hi:hi] clamps capacity so appends reallocate.

func assertBatchesIndependent(t *testing.T, deltas []*rel.Relation) {
	t.Helper()
	sentinel := rel.Tuple{Vals: []rel.Value{rel.String("SENTINEL")}, Mult: -12345}
	for i := 0; i+1 < len(deltas); i++ {
		next := deltas[i+1]
		before := make([]rel.Tuple, len(next.Tuples))
		copy(before, next.Tuples)
		deltas[i].Tuples = append(deltas[i].Tuples, sentinel)
		for j, want := range before {
			got := next.Tuples[j]
			if got.Mult != want.Mult || len(got.Vals) != len(want.Vals) {
				t.Fatalf("append to batch %d clobbered batch %d row %d: %v×%v, want %v×%v",
					i, i+1, j, got.Vals, got.Mult, want.Vals, want.Mult)
			}
			for k := range want.Vals {
				if !got.Vals[k].Equal(want.Vals[k]) {
					t.Fatalf("append to batch %d clobbered batch %d row %d col %d: %v, want %v",
						i, i+1, j, k, got.Vals[k], want.Vals[k])
				}
			}
		}
	}
}

func TestMiniBatchSlicesDoNotAlias(t *testing.T) {
	t.Run("contiguous", func(t *testing.T) {
		eng, err := NewEngine(planQuery(t, `SELECT COUNT(*) AS n FROM sessions`),
			testDB(120, 3), Options{Batches: 4, Trials: -1})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		assertBatchesIndependent(t, eng.deltas)
	})
	t.Run("stratified", func(t *testing.T) {
		eng, err := NewEngine(planQuery(t, `SELECT COUNT(*) AS n FROM sessions`),
			testDB(120, 3), Options{Batches: 4, Trials: -1, StratifyBy: "cdn"})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		assertBatchesIndependent(t, eng.deltas)
	})
}

// ---------------------------------------------------------------------------
// Failure-recovery accounting
//
// After a variation-range recovery the Update must describe the replay run,
// not the aborted attempt: seenRows is the true prefix length (restore rewinds
// it, the merged delta re-advances it), Fraction = seenRows/|D|, and
// Recomputed counts the replay's re-evaluated tuples. The test cross-checks
// the recovered step against a from-scratch engine that is stepped cleanly to
// the restore point and then fed the same merged delta by hand.

func TestRecoveryAccounting(t *testing.T) {
	opts := Options{Mode: ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4}
	newFixture := func() (*Engine, error) {
		db := testDB(200, 7)
		sortSessionsByBufferTime(db)
		return NewEngine(planQuery(t, sbiQuery), db, opts)
	}
	eng, err := newFixture()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	total := 0
	for _, d := range eng.deltas {
		total += d.Len()
	}
	cum := 0
	cleanPrefix := true
	verified := false
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		cum += eng.deltas[u.Batch-1].Len()
		if eng.seenRows != cum {
			t.Errorf("batch %d: seenRows = %d after recovery, want prefix length %d", u.Batch, eng.seenRows, cum)
		}
		if want := float64(cum) / float64(total); u.Fraction != want {
			t.Errorf("batch %d: Fraction = %v, want %v", u.Batch, u.Fraction, want)
		}
		if u.Recoveries == 0 && u.RecoveredFrom != -1 {
			t.Errorf("batch %d: RecoveredFrom = %d without a recovery", u.Batch, u.RecoveredFrom)
		}
		if u.Recoveries == 1 && cleanPrefix && !verified {
			verified = true
			verifyRecoveryReplay(t, newFixture, u)
		}
		if u.Recoveries > 0 {
			cleanPrefix = false
		}
	}
	if eng.TotalRecoveries() == 0 {
		t.Fatalf("fixture triggered no recoveries; the test exercised nothing")
	}
	if !verified {
		t.Skipf("no single-recovery step on a clean prefix; accounting invariants above still checked")
	}
}

// verifyRecoveryReplay rebuilds the recovered step from scratch: a fresh
// engine is stepped through batches 1..RecoveredFrom (asserting the prefix is
// recovery-free, i.e. its state matches the snapshot the real engine
// restored), then the merged delta (RecoveredFrom, Batch] is pushed through
// the pipeline exactly the way Engine.Step's recovery loop does. Recomputed,
// seenRows and the materialised result must all match the reported Update.
func verifyRecoveryReplay(t *testing.T, newFixture func() (*Engine, error), u *Update) {
	t.Helper()
	fresh, err := newFixture()
	if err != nil {
		t.Fatalf("fresh engine: %v", err)
	}
	j := u.RecoveredFrom
	for b := 0; b < j; b++ {
		cu, err := fresh.Step()
		if err != nil {
			t.Fatalf("fresh step %d: %v", b+1, err)
		}
		if cu.Recoveries != 0 {
			t.Fatalf("prefix batch %d recovered in the fresh run; determinism broken", cu.Batch)
		}
	}
	fresh.batch = u.Batch
	merged := fresh.mergeDeltas(j, u.Batch)
	fresh.seenRows += merged.Len()
	bc := fresh.newBatchContext(merged, fresh.seenRows)
	if _, err := fresh.comp.sink.step(bc); err != nil {
		t.Fatalf("replay step: %v", err)
	}
	if len(bc.failures) > 0 {
		t.Fatalf("manual replay failed integrity where the engine's converged")
	}
	if bc.recomputed != u.Recomputed {
		t.Errorf("Recomputed: engine reported %d, from-scratch replay counted %d", u.Recomputed, bc.recomputed)
	}
	if got := float64(fresh.seenRows) / float64(fresh.totalRows); got != u.Fraction {
		t.Errorf("Fraction: engine reported %v, from-scratch replay %v", u.Fraction, got)
	}
	res, _ := fresh.comp.sink.materialize(bc)
	if !rel.EqualBag(res, u.Result, 0) {
		t.Errorf("recovered result diverges from from-scratch replay\nengine:\n%s\nreplay:\n%s", u.Result, res)
	}
}

// ---------------------------------------------------------------------------
// Column-kind agreement with the exact oracle
//
// The oracle (exec.Run over the scaled prefix) and the online engine must
// deliver the same column kinds, not just numerically equal values —
// otherwise downstream consumers see schema flapping between the streaming
// result and the final exact one.

func TestOracleEngineKindAgreement(t *testing.T) {
	for _, name := range []string{"flat_global_agg", "flat_group_by", "join_dim_group"} {
		name := name
		t.Run(name, func(t *testing.T) {
			query := theoremQuery(t, name)
			db := testDB(90, 5)
			root := planQuery(t, query)
			eng, err := NewEngine(root, db, Options{Batches: 3, Trials: 10, Seed: 2})
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			us, err := eng.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := us[len(us)-1].Result.Canon()
			want := oracle(t, root, db, "sessions", 90).Canon()
			if len(got.Tuples) != len(want.Tuples) {
				t.Fatalf("row counts differ: engine %d, oracle %d", len(got.Tuples), len(want.Tuples))
			}
			for i := range got.Tuples {
				gv, wv := got.Tuples[i].Vals, want.Tuples[i].Vals
				if len(gv) != len(wv) {
					t.Fatalf("row %d widths differ: %d vs %d", i, len(gv), len(wv))
				}
				for c := range gv {
					if gv[c].Kind() != wv[c].Kind() {
						t.Errorf("row %d col %d: engine kind %s, oracle kind %s (values %v vs %v)",
							i, c, gv[c].Kind(), wv[c].Kind(), gv[c], wv[c])
					}
				}
			}
		})
	}
}
