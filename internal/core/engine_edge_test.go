package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"iolap/internal/exec"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

func stepAll(t *testing.T, eng *Engine) []*Update {
	t.Helper()
	updates, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return updates
}

func TestMinMaxQueriesAreExactPerBatch(t *testing.T) {
	// MIN/MAX are not smooth (no bootstrap CIs), but the engine still
	// maintains them exactly per batch.
	db := testDB(180, 51)
	root := planQuery(t, `SELECT cdn, MIN(buffer_time) AS mn, MAX(play_time) AS mx
		FROM sessions GROUP BY cdn`)
	eng, err := NewEngine(root, db, Options{Batches: 5, Trials: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, db, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-9) {
			t.Fatalf("batch %d MIN/MAX diverged", u.Batch)
		}
	}
}

func TestNoBootstrapModeStillExact(t *testing.T) {
	// Trials < 0 disables bootstrap: no error estimates, no pruning
	// (ranges stay unbounded), but every partial result is still exact.
	db := testDB(150, 53)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{Batches: 5, Trials: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, db, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("batch %d diverged without bootstrap", u.Batch)
		}
		if u.MaxRelStdev() != 0 {
			t.Error("no bootstrap => no error estimates")
		}
	}
}

func TestPreShuffleStillConvergesToExact(t *testing.T) {
	db := testDB(160, 57)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{Batches: 4, Trials: 15, Seed: 9, PreShuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	updates := stepAll(t, eng)
	baseline, err := exec.Run(root, db)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.EqualBag(updates[len(updates)-1].Result, baseline, 1e-9) {
		t.Error("pre-shuffled stream must still converge to the exact answer")
	}
}

func TestMinRangeSupportControlsPruning(t *testing.T) {
	run := func(minSupport int) int {
		db := testDB(300, 61)
		root := planQuery(t, sbiQuery)
		eng, err := NewEngine(root, db, Options{
			Batches: 6, Trials: 25, Seed: 5, MinRangeSupport: minSupport,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, u := range stepAll(t, eng) {
			total += u.Recomputed
		}
		return total
	}
	// An absurdly high support threshold disables pruning -> much more
	// recomputation than the default.
	low := run(10)
	high := run(1_000_000)
	if high <= low*2 {
		t.Errorf("disabling range pruning should inflate recomputation: support10=%d support1M=%d", low, high)
	}
}

func TestDeepNestingINWithCorrelatedScalar(t *testing.T) {
	// Q20 shape on the sessions schema: IN-subquery containing a
	// correlated scalar subquery two levels down.
	q := `SELECT COUNT(*) AS n FROM sessions
		WHERE cdn IN (SELECT cdn FROM cdns
			WHERE region = 'us-east' OR region = 'us-west' OR region = 'europe')
		AND play_time > (SELECT 0.5 * AVG(play_time) FROM sessions i WHERE i.cdn = sessions.cdn)`
	theorem1(t, q, 200, Options{Batches: 5, Trials: 20, Seed: 6})
}

func TestMultipleSubqueriesInOneWhere(t *testing.T) {
	q := `SELECT COUNT(*) AS n FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)
		AND play_time < (SELECT AVG(play_time) FROM sessions)`
	theorem1(t, q, 200, Options{Batches: 5, Trials: 20, Seed: 7})
}

func TestAggregateOverDerivedAggregate(t *testing.T) {
	// Aggregate of an aggregate via a derived table.
	q := `SELECT AVG(d.apt) AS m FROM
		(SELECT cdn, AVG(play_time) AS apt FROM sessions GROUP BY cdn) AS d`
	theorem1(t, q, 200, Options{Batches: 5, Trials: 20, Seed: 8})
}

func TestVerySmallInputs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		db := testDB(n, 71)
		root := planQuery(t, `SELECT COUNT(*) AS n, AVG(buffer_time) AS a FROM sessions`)
		eng, err := NewEngine(root, db, Options{Batches: 5, Trials: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Batch count collapses to the row count.
		if eng.Batches() > n {
			t.Errorf("n=%d: batches %d > rows", n, eng.Batches())
		}
		updates := stepAll(t, eng)
		final := updates[len(updates)-1]
		if got := final.Result.Tuples[0].Vals[0].Float(); got != float64(n) {
			t.Errorf("n=%d: count = %v", n, got)
		}
	}
}

func TestEmptyStreamedTable(t *testing.T) {
	db := exec.NewDB()
	db.Put("sessions", rel.NewRelation(sessionsSchema()))
	cdns := rel.NewRelation(cdnsSchema())
	cdns.Append(rel.String("east"), rel.String("us-east"))
	db.Put("cdns", cdns)
	root := planQuery(t, `SELECT COUNT(*) AS n FROM sessions`)
	eng, err := NewEngine(root, db, Options{Batches: 3, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	u, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Result.Tuples[0].Vals[0].Float(); got != 0 {
		t.Errorf("count over empty table = %v", got)
	}
}

func TestEmptyInnerAggregateNaNSemantics(t *testing.T) {
	// The inner aggregate's filter excludes everything: AVG over empty
	// input is NaN, comparisons against NaN are false — engine and oracle
	// must agree.
	q := `SELECT COUNT(*) AS n FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions WHERE buffer_time > 1000000)`
	theorem1(t, q, 100, Options{Batches: 4, Trials: 10, Seed: 9})
}

func TestFilteredInnerSubqueryGroups(t *testing.T) {
	// The correlated inner has an extra filter, so some outer groups may
	// (temporarily or permanently) have no inner match — join semantics
	// must match the oracle.
	q := `SELECT COUNT(*) AS n FROM sessions s
		WHERE s.play_time > (SELECT AVG(play_time) FROM sessions i
			WHERE i.cdn = s.cdn AND i.buffer_time > 30)`
	theorem1(t, q, 220, Options{Batches: 6, Trials: 15, Seed: 10})
}

// TestTheorem1TemplateFuzz sweeps a parameterised family of nested queries
// over random datasets and batch counts.
func TestTheorem1TemplateFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rng := rand.New(rand.NewSource(99))
	templates := []string{
		`SELECT COUNT(*) AS n FROM sessions WHERE buffer_time > (SELECT %.2f * AVG(buffer_time) FROM sessions)`,
		`SELECT cdn, SUM(play_time) AS s FROM sessions WHERE play_time < (SELECT %.2f * AVG(play_time) FROM sessions) GROUP BY cdn`,
		`SELECT AVG(play_time) AS a FROM sessions WHERE buffer_time BETWEEN %.2f AND 60`,
	}
	for trial := 0; trial < 10; trial++ {
		tpl := templates[rng.Intn(len(templates))]
		factor := 0.5 + rng.Float64()
		q := fmt.Sprintf(tpl, factor)
		n := 80 + rng.Intn(150)
		p := 2 + rng.Intn(6)
		theorem1(t, q, n, Options{
			Batches: p, Trials: 10 + rng.Intn(20), Seed: uint64(trial + 1),
		})
	}
}

func TestRecomputedMonotoneUnderHDA(t *testing.T) {
	// HDA's recomputed set includes everything downstream of the inner
	// aggregate: it must grow with the accumulated data.
	db := testDB(400, 81)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{Mode: ModeHDA, Batches: 8, Trials: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	updates := stepAll(t, eng)
	first, last := updates[1].Recomputed, updates[len(updates)-1].Recomputed
	if last <= first {
		t.Errorf("HDA recomputation must grow: batch2=%d batch%d=%d", first, len(updates), last)
	}
}

func TestScaleFactorsAcrossBatches(t *testing.T) {
	// COUNT(*) scaled by m_i must always estimate the full table size.
	db := testDB(500, 83)
	root := planQuery(t, `SELECT COUNT(*) AS n FROM sessions`)
	eng, err := NewEngine(root, db, Options{Batches: 10, Trials: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range stepAll(t, eng) {
		if got := u.Result.Tuples[0].Vals[0].Float(); math.Abs(got-500) > 1e-9 {
			t.Fatalf("batch %d scaled count = %v, want 500", u.Batch, got)
		}
	}
}

func TestEngineSnapshotRestoreRoundTrip(t *testing.T) {
	// Restoring the base snapshot and replaying all batches as one merged
	// delta must reproduce the final result (the recovery machinery).
	db := testDB(150, 89)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{Batches: 4, Trials: 15, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	updates := stepAll(t, eng)
	final := updates[len(updates)-1].Result
	// Manually drive a scratch restore + merged replay.
	eng.restoreSnapshot(eng.base)
	merged := eng.mergeDeltas(0, eng.batch)
	eng.seenRows += merged.Len()
	bc := eng.newBatchContext(merged, eng.seenRows)
	if _, err := eng.comp.sink.step(bc); err != nil {
		t.Fatal(err)
	}
	replayed, _ := eng.comp.sink.materialize(bc)
	if !rel.EqualBag(final, replayed, 1e-9) {
		t.Errorf("merged replay diverges from incremental result\ninc:\n%s\nreplay:\n%s", final, replayed)
	}
}

func TestUnionOfTwoStreamedBranches(t *testing.T) {
	q := `SELECT SUM(play_time) AS s FROM sessions WHERE cdn = 'east'
		UNION ALL
		SELECT SUM(buffer_time) AS s FROM sessions WHERE cdn = 'west'`
	theorem1(t, q, 180, Options{Batches: 5, Trials: 15, Seed: 12})
}

func TestGroupByMultipleColumns(t *testing.T) {
	q := `SELECT cdn, session_id, COUNT(*) AS n FROM sessions
		WHERE buffer_time > 15 GROUP BY cdn, session_id`
	theorem1(t, q, 60, Options{Batches: 3, Trials: 10, Seed: 13})
}

func TestPlanFingerprintStableAcrossCompiles(t *testing.T) {
	db := testDB(50, 91)
	root := planQuery(t, sbiQuery)
	e1, err := NewEngine(root, db, Options{Batches: 2, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(root, db, Options{Batches: 2, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fingerprint(e1.comp.norm) != plan.Fingerprint(e2.comp.norm) {
		t.Error("normalization must be deterministic")
	}
}

func TestCountDistinctTheorem1(t *testing.T) {
	// COUNT(DISTINCT x) is exact on D_i (unscaled) and non-smooth: its
	// dependents stay non-deterministic but every partial result matches
	// the oracle.
	theorem1(t, `SELECT cdn, COUNT(DISTINCT play_time) AS d FROM sessions GROUP BY cdn`,
		120, Options{Batches: 4, Trials: 10, Seed: 31})
}

func TestStratifiedBatchingCoverageAndCorrectness(t *testing.T) {
	// Sort the data by cdn so un-stratified contiguous batches would see a
	// single stratum first; stratified batching must cover all three from
	// batch 1, and every partial result must still be Q(D_i, m_i) for the
	// engine's actual stream order.
	db := testDB(240, 107)
	sessions, _ := db.Get("sessions")
	sort.SliceStable(sessions.Tuples, func(i, j int) bool {
		return sessions.Tuples[i].Vals[3].Str() < sessions.Tuples[j].Vals[3].Str()
	})
	root := planQuery(t, `SELECT cdn, COUNT(*) AS n FROM sessions GROUP BY cdn`)
	eng, err := NewEngine(root, db, Options{
		Batches: 6, Trials: 10, Seed: 3, StratifyBy: "cdn",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle over the engine's stream order.
	streamed := rel.NewRelation(sessions.Schema)
	for _, d := range eng.deltas {
		streamed.Tuples = append(streamed.Tuples, d.Tuples...)
	}
	odb := exec.NewDB()
	odb.Put("sessions", streamed)
	cdns, _ := db.Get("cdns")
	odb.Put("cdns", cdns)
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, odb, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("stratified batch %d diverged", u.Batch)
		}
		// Stratified coverage: every batch's partial result has all 3 CDNs.
		if u.Result.Len() != 3 {
			t.Errorf("batch %d covers %d strata, want 3", u.Batch, u.Result.Len())
		}
	}
	// Contrast: without stratification on sorted data, batch 1 sees 1 cdn.
	eng2, err := NewEngine(root, db, Options{Batches: 6, Trials: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	u, err := eng2.Step()
	if err != nil {
		t.Fatal(err)
	}
	if u.Result.Len() >= 3 {
		t.Skip("sorted data unexpectedly covered all strata (generator change?)")
	}
}

func TestStratifyUnknownColumn(t *testing.T) {
	db := testDB(50, 109)
	root := planQuery(t, `SELECT COUNT(*) AS n FROM sessions`)
	if _, err := NewEngine(root, db, Options{StratifyBy: "nope"}); err == nil {
		t.Error("unknown stratify column must be rejected")
	}
}

func TestParallelFoldMatchesSequential(t *testing.T) {
	// Above the parallel-fold threshold, single-worker and multi-worker
	// engines must produce identical results (group sharding makes the
	// fold deterministic).
	db := testDB(6000, 113)
	root := planQuery(t, `SELECT cdn, SUM(play_time) AS s, AVG(buffer_time) AS a, COUNT(*) AS n
		FROM sessions GROUP BY cdn`)
	run := func(workers int) *rel.Relation {
		eng, err := NewEngine(root, db, Options{Batches: 2, Trials: 20, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		updates := stepAll(t, eng)
		return updates[len(updates)-1].Result
	}
	seq := run(1)
	par := run(8)
	if !rel.EqualBag(seq, par, 1e-9) {
		t.Errorf("parallel fold diverged\nseq:\n%s\npar:\n%s", seq, par)
	}
}

func TestBlockwiseBatchingCorrectAndBlockAligned(t *testing.T) {
	db := testDB(200, 127)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{
		Batches: 4, Trials: 15, Seed: 11, BlockRows: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle over the engine's actual (block-shuffled) stream order.
	sessions, _ := db.Get("sessions")
	streamed := rel.NewRelation(sessions.Schema)
	for _, d := range eng.deltas {
		streamed.Tuples = append(streamed.Tuples, d.Tuples...)
	}
	if !rel.EqualBag(sessions, streamed, 0) {
		t.Fatal("block shuffle must be a permutation of the table")
	}
	odb := exec.NewDB()
	odb.Put("sessions", streamed)
	cdns, _ := db.Get("cdns")
	odb.Put("cdns", cdns)
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, odb, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("block-wise batch %d diverged", u.Batch)
		}
	}
	// Rows within a block stay together in stream order: ids were
	// generated sequentially, so the first 10 streamed rows must be one
	// contiguous id run.
	first := streamed.Tuples[0].Vals[0].Str()
	if first == "s0" {
		t.Log("block 0 happened to land first (fine)")
	}
	for i := 1; i < 10; i++ {
		prev := streamed.Tuples[i-1].Vals[0].Str()
		cur := streamed.Tuples[i].Vals[0].Str()
		if !adjacentIDs(prev, cur) {
			t.Fatalf("rows within the first block not contiguous: %s then %s", prev, cur)
		}
	}
}

func adjacentIDs(a, b string) bool {
	// ids look like "s<number>"
	var x, y int
	fmt.Sscanf(a, "s%d", &x)
	fmt.Sscanf(b, "s%d", &y)
	return y == x+1
}

func TestFinalBatchEstimatesAreExact(t *testing.T) {
	// Once all data is processed the answer is exact (paper Section 1:
	// "delivers accurate query results just as a traditional DBMS"), so
	// the error estimates must collapse.
	db := testDB(100, 131)
	root := planQuery(t, `SELECT COUNT(*) AS n FROM sessions`)
	eng, err := NewEngine(root, db, Options{Batches: 4, Trials: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	updates := stepAll(t, eng)
	if got := updates[0].MaxRelStdev(); got <= 0 {
		t.Error("early batches must report uncertainty")
	}
	final := updates[len(updates)-1]
	if got := final.MaxRelStdev(); got != 0 {
		t.Errorf("final batch rel stdev = %v, want 0 (exact)", got)
	}
}

func TestConcurrentEnginesShareDatabase(t *testing.T) {
	// Multiple engines over the same (read-only) database must not
	// interfere; run under -race in CI.
	db := testDB(3000, 137)
	const n = 4
	results := make([]*rel.Relation, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			// Each goroutine compiles its own engine from the shared plan
			// is NOT safe (plan ids), so plan per goroutine.
			localRoot := planQuery(t, sbiQuery)
			eng, err := NewEngine(localRoot, db, Options{
				Batches: 4, Trials: 20, Seed: uint64(50 + i),
			})
			if err != nil {
				errs[i] = err
				return
			}
			updates, err := eng.Run()
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = updates[len(updates)-1].Result
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
	}
	// All engines process the same full data: final results identical.
	for i := 1; i < n; i++ {
		if !rel.EqualBag(results[0], results[i], 1e-9) {
			t.Errorf("engine %d final result differs", i)
		}
	}
}

func TestGroupByExpressionTheorem1(t *testing.T) {
	// Computed group keys flow through the engine exactly (the
	// pre-projection stays below the aggregate as a residual project).
	theorem1(t, `SELECT buffer_time - buffer_time % 10 AS bucket, COUNT(*) AS n, AVG(play_time) AS a
		FROM sessions GROUP BY buffer_time - buffer_time % 10`,
		200, Options{Batches: 5, Trials: 15, Seed: 41})
}
