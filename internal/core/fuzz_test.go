package core

import (
	"fmt"
	"math/rand"
	"testing"

	"iolap/internal/agg"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// TestTheorem1PlanFuzz generates random plans directly over the plan
// algebra (bypassing the SQL planner) and checks every engine batch against
// the exact oracle, across all three modes. This is the broadest Theorem-1
// net: shapes include flat aggregation, scalar-subquery crosses, grouped
// decorrelated joins, unions and HAVING filters, with random aggregate
// functions, comparison operators, constants and batch counts.
func TestTheorem1PlanFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		f := newPlanFuzzer(rng)
		root := f.gen()
		n := plan.Finalize(root)
		if _, err := plan.Analyze(root, n); err != nil {
			t.Fatalf("trial %d: generated invalid plan: %v\n%s", trial, err, plan.Format(root))
		}
		mode := []Mode{ModeIOLAP, ModeIOLAP, ModeOPT1, ModeHDA}[rng.Intn(4)]
		opts := Options{
			Mode:    mode,
			Batches: 2 + rng.Intn(5),
			Trials:  5 + rng.Intn(20),
			Seed:    uint64(trial + 1),
			Slack:   []float64{0.5, 1, 2}[rng.Intn(3)],
		}
		eng, err := NewEngine(root, f.db, opts)
		if err != nil {
			t.Fatalf("trial %d: engine: %v\n%s", trial, err, plan.Format(root))
		}
		seen := 0
		for !eng.Done() {
			u, err := eng.Step()
			if err != nil {
				t.Fatalf("trial %d batch: %v\n%s", trial, err, plan.Format(root))
			}
			seen += eng.deltas[u.Batch-1].Len()
			want := oracle(t, root, f.db, "fuzz", seen)
			if !rel.EqualBag(u.Result, want, 1e-6) {
				t.Fatalf("trial %d (%v, p=%d, seed=%d): batch %d diverged\nplan:\n%s\ngot:\n%s\nwant:\n%s",
					trial, mode, opts.Batches, opts.Seed, u.Batch,
					plan.Format(root), clipStr(u.Result.String()), clipStr(want.String()))
			}
		}
	}
}

func clipStr(s string) string {
	if len(s) > 800 {
		return s[:800] + "..."
	}
	return s
}

// planFuzzer builds random supported plans over a synthetic table.
type planFuzzer struct {
	rng    *rand.Rand
	db     *exec.DB
	schema rel.Schema
	aggs   *agg.Registry
}

func newPlanFuzzer(rng *rand.Rand) *planFuzzer {
	schema := rel.Schema{
		{Name: "g", Type: rel.KString}, // low-cardinality group key
		{Name: "a", Type: rel.KFloat},
		{Name: "b", Type: rel.KFloat},
		{Name: "c", Type: rel.KInt},
	}
	table := rel.NewRelation(schema)
	n := 60 + rng.Intn(120)
	groups := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		table.Append(
			rel.String(groups[rng.Intn(len(groups))]),
			rel.Float(float64(rng.Intn(2000))/10),
			rel.Float(float64(rng.Intn(500))/10),
			rel.Int(int64(rng.Intn(50))),
		)
	}
	db := exec.NewDB()
	db.Put("fuzz", table)
	return &planFuzzer{rng: rng, db: db, schema: schema, aggs: agg.NewRegistry()}
}

func (f *planFuzzer) scan() *plan.Scan {
	return plan.NewScan("fuzz", fmt.Sprintf("s%d", f.rng.Intn(1000)), f.schema, true)
}

func (f *planFuzzer) numCol() int { return 1 + f.rng.Intn(3) } // a, b or c

func (f *planFuzzer) aggSpec(argCol int, name string) plan.AggSpec {
	// Mostly smooth aggregates; occasionally MIN/MAX (exact, non-smooth).
	names := []string{"SUM", "COUNT", "AVG", "AVG", "VAR", "MIN", "MAX"}
	fn, _ := f.aggs.Lookup(names[f.rng.Intn(len(names))])
	sp := plan.AggSpec{Fn: fn, Name: name}
	if fn.TakesArg || f.rng.Intn(2) == 0 {
		sp.Arg = expr.NewCol(argCol, "", rel.KFloat)
	}
	if !fn.TakesArg {
		sp.Arg = nil
	}
	return sp
}

func (f *planFuzzer) cmpOp() expr.CmpOp {
	return []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge}[f.rng.Intn(4)]
}

// gen picks one of the supported query shapes.
func (f *planFuzzer) gen() plan.Node {
	switch f.rng.Intn(5) {
	case 0:
		return f.flat()
	case 1:
		return f.scalarSubquery()
	case 2:
		return f.groupedSubquery()
	case 3:
		return f.unionShape()
	default:
		return f.havingShape()
	}
}

// flat: γ_{maybe g}(σ_c(S))
func (f *planFuzzer) flat() plan.Node {
	var node plan.Node = f.scan()
	if f.rng.Intn(2) == 0 {
		node = plan.NewSelect(node, expr.NewCmp(f.cmpOp(),
			expr.NewCol(f.numCol(), "", rel.KFloat),
			expr.NewConst(rel.Float(float64(f.rng.Intn(100))))))
	}
	var groupBy []int
	if f.rng.Intn(2) == 0 {
		groupBy = []int{0}
	}
	return plan.NewAggregate(node, groupBy, []plan.AggSpec{
		f.aggSpec(f.numCol(), "agg0"),
		f.aggSpec(f.numCol(), "agg1"),
	})
}

// scalarSubquery: γ(σ_{col cmp k*AGG}(S × γ_AGG(S)))
func (f *planFuzzer) scalarSubquery() plan.Node {
	avg, _ := f.aggs.Lookup([]string{"AVG", "SUM", "COUNT"}[f.rng.Intn(3)])
	inner := plan.NewAggregate(f.scan(), nil, []plan.AggSpec{{
		Fn: avg, Arg: expr.NewCol(f.numCol(), "", rel.KFloat), Name: "sub"}})
	join := plan.NewJoin(f.scan(), inner, nil, nil)
	factor := 0.2 + f.rng.Float64()
	pred := expr.NewCmp(f.cmpOp(),
		expr.NewCol(f.numCol(), "", rel.KFloat),
		expr.NewArith(expr.Mul, expr.NewConst(rel.Float(factor)),
			expr.NewCol(4, "", rel.KFloat))) // the subquery column
	sel := plan.NewSelect(join, pred)
	return plan.NewAggregate(sel, nil, []plan.AggSpec{f.aggSpec(f.numCol(), "out")})
}

// groupedSubquery: γ(σ_{col cmp ref}(S ⋈_g γ_{g,AGG}(S))) — the
// decorrelated correlated-subquery shape.
func (f *planFuzzer) groupedSubquery() plan.Node {
	avg, _ := f.aggs.Lookup("AVG")
	inner := plan.NewAggregate(f.scan(), []int{0}, []plan.AggSpec{{
		Fn: avg, Arg: expr.NewCol(f.numCol(), "", rel.KFloat), Name: "gavg"}})
	join := plan.NewJoin(f.scan(), inner, []int{0}, []int{0})
	pred := expr.NewCmp(f.cmpOp(),
		expr.NewCol(f.numCol(), "", rel.KFloat),
		expr.NewCol(5, "", rel.KFloat)) // inner agg value (4=key, 5=gavg)
	sel := plan.NewSelect(join, pred)
	groupBy := []int{0}
	if f.rng.Intn(3) == 0 {
		groupBy = nil
	}
	return plan.NewAggregate(sel, groupBy, []plan.AggSpec{f.aggSpec(f.numCol(), "out")})
}

// unionShape: γ(σ(S) ∪ σ(S))
func (f *planFuzzer) unionShape() plan.Node {
	mkSide := func() plan.Node {
		return plan.NewSelect(f.scan(), expr.NewCmp(f.cmpOp(),
			expr.NewCol(f.numCol(), "", rel.KFloat),
			expr.NewConst(rel.Float(float64(f.rng.Intn(120))))))
	}
	u := plan.NewUnion(mkSide(), mkSide())
	return plan.NewAggregate(u, []int{0}, []plan.AggSpec{f.aggSpec(f.numCol(), "out")})
}

// havingShape: γ'(σ_{agg cmp const}(γ_{g,AGG}(S)))
func (f *planFuzzer) havingShape() plan.Node {
	sum, _ := f.aggs.Lookup("SUM")
	inner := plan.NewAggregate(f.scan(), []int{0}, []plan.AggSpec{
		{Fn: sum, Arg: expr.NewCol(f.numCol(), "", rel.KFloat), Name: "s"}})
	// Threshold near the expected per-group sum so HAVING flips groups as
	// data accumulates.
	threshold := float64(500 + f.rng.Intn(4000))
	having := plan.NewSelect(inner, expr.NewCmp(f.cmpOp(),
		expr.NewCol(1, "", rel.KFloat),
		expr.NewConst(rel.Float(threshold))))
	count, _ := f.aggs.Lookup("COUNT")
	return plan.NewAggregate(having, nil, []plan.AggSpec{
		{Fn: count, Name: "n"},
		f.aggSpec(1, "m"),
	})
}
