package core

import (
	"fmt"

	"iolap/internal/agg"
	"iolap/internal/delta"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// The online query rewriter (Section 7, step "online query rewriting").
// Three transformations happen at compile time:
//
//  1. PROJECT inlining: projection expressions are substituted into their
//     consumers, so rows flowing between online operators carry only base
//     attributes and lineage references. This folds deterministic
//     sub-expressions into consumers (Section 6.1 "folding deterministic
//     value") and makes lazy evaluation universal: any uncertain value is
//     recomputed from its lineage reference at use time.
//  2. Uncertainty tagging (Section 4.1) via plan.Analyze.
//  3. Operator replacement: each logical node becomes its online
//     counterpart, parameterised by the tagging (which predicate columns
//     are uncertain, which aggregate arguments are lazy, which join sides
//     need state).
//
// The root projection is absorbed into the SINK operator (Section 4.2 adds
// a virtual SINK at the end of every plan).

// compiled is the result of compiling a logical plan for online execution.
type compiled struct {
	sink     *opSink
	ops      []operator // all operators (for snapshot/state accounting)
	analysis *plan.Analysis
	norm     plan.Node // normalized plan (diagnostics)
	streamed []string  // distinct streamed table names
	nested   bool      // query has nested (uncertainty-coupled) aggregates
	// spill is the engine's join-state budget; persistent join stores are
	// registered with it at build time (nil = never spill).
	spill *delta.SpillPolicy
	// partKeys maps each partitioned-shipping table (Options.PartitionTables)
	// to its build-side join key columns, validated by partitionKeyColumns.
	partKeys map[string][]int

	// db is the database the plan compiles against; shared-state builds
	// (shared.go) need it to replay static subtrees at compile time.
	db *exec.DB
	// Shared-state bookkeeping (Options.SharedState): releases to run on
	// Close, the resources this plan references, and how much state cache
	// hits avoided rebuilding.
	releases       []func()
	sharedRefs     []sharedSized
	sharedHits     int
	sharedHitBytes int64
}

// compile builds the online operator tree for a finalized plan. spill, when
// non-nil, is the resident-state budget the persistent join stores register
// with; db backs compile-time shared-state builds (Options.SharedState).
func compile(root plan.Node, db *exec.DB, opts Options, spill *delta.SpillPolicy) (*compiled, error) {
	if opts.Mode == ModeHDA && !opts.NoViewletRewrites {
		// DBToaster-style higher-order delta: apply the Appendix-B
		// viewlet-transformation rewrites before execution.
		root = plan.NewRewriter(agg.NewRegistry()).Rewrite(root)
		plan.Finalize(root)
	}
	norm, rootExprs, rootNames, err := normalizePlan(root)
	if err != nil {
		return nil, err
	}
	n := plan.Finalize(norm)
	an, err := plan.Analyze(norm, n)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(norm); err != nil {
		return nil, err
	}
	if err := checkResidualProjects(norm, an); err != nil {
		return nil, err
	}
	scaleExp := plan.ScaleExp(norm, n)
	grow := mayGrow(norm, n, an)
	c := &compiled{analysis: an, norm: norm, spill: spill, db: db}
	if len(opts.PartitionTables) > 0 {
		if opts.Partitions <= 0 {
			return nil, fmt.Errorf("core: PartitionTables set but Partitions is %d (must be > 0)", opts.Partitions)
		}
		pk, err := partitionKeyColumns(norm, opts.PartitionTables)
		if err != nil {
			return nil, err
		}
		c.partKeys = pk
	}
	// Variation ranges exist to prune classification decisions; queries
	// without nested (uncertainty-coupled) aggregates never classify, so
	// tracking ranges there would only add overhead and spurious
	// integrity failures.
	c.nested = plan.HasNestedAggregates(norm, an)
	trackRanges := c.nested && opts.Mode != ModeHDA && opts.Trials > 0
	child, err := c.build(norm, an, scaleExp, grow, opts, trackRanges)
	if err != nil {
		// Shared state acquired before the failure must not leak its refs.
		c.releaseShared()
		return nil, err
	}
	if rootExprs == nil {
		// Identity projection over the child schema.
		cs := norm.Schema()
		rootExprs = make([]expr.Expr, len(cs))
		rootNames = make([]string, len(cs))
		for i, col := range cs {
			rootExprs[i] = expr.NewCol(i, col.QualifiedName(), col.Type)
			rootNames[i] = col.Name
		}
	}
	uncOut := make([]bool, len(rootExprs))
	info := an.Info[norm.ID()]
	for i, e := range rootExprs {
		for _, cidx := range e.Cols(nil) {
			if info.UncertainCols[cidx] {
				uncOut[i] = true
			}
		}
	}
	c.sink = &opSink{
		child:    child,
		exprs:    rootExprs,
		names:    rootNames,
		unc:      uncOut,
		schema:   sinkSchema(rootExprs, rootNames),
		scaleExp: scaleExp[norm.ID()],
	}
	c.ops = append(c.ops, c.sink)
	markColumnar(child, false, nil)
	seen := map[string]bool{}
	for _, s := range plan.StreamedScans(norm) {
		if !seen[s.Table] {
			seen[s.Table] = true
			c.streamed = append(c.streamed, s.Table)
		}
	}
	return c, nil
}

func sinkSchema(exprs []expr.Expr, names []string) rel.Schema {
	out := make(rel.Schema, len(exprs))
	for i, e := range exprs {
		out[i] = rel.Column{Name: names[i], Type: e.Type()}
	}
	return out
}

// normalizePlan inlines projections and splits off the root projection.
func normalizePlan(root plan.Node) (plan.Node, []expr.Expr, []string, error) {
	n, err := inlineProjects(root)
	if err != nil {
		return nil, nil, nil, err
	}
	if p, ok := n.(*plan.Project); ok {
		return p.Child, p.Exprs, p.Names, nil
	}
	return n, nil, nil, nil
}

// identityExprs builds pass-through expressions over a schema.
func identityExprs(s rel.Schema) []expr.Expr {
	out := make([]expr.Expr, len(s))
	for i, c := range s {
		out[i] = expr.NewCol(i, c.QualifiedName(), c.Type)
	}
	return out
}

// inlineProjects rewrites the plan so that Project nodes bubble to the root
// or disappear into consumers; Projects that cannot be inlined (under
// Union, or joins keyed on computed columns) remain in place.
func inlineProjects(n plan.Node) (plan.Node, error) {
	switch t := n.(type) {
	case *plan.Scan:
		// Clone: the normalized plan gets fresh operator ids, which must
		// never leak back into the caller's plan (a plan may be compiled
		// by several engines).
		s := plan.NewScan(t.Table, t.Alias, nil, t.Streamed)
		s.Out = t.Out
		return s, nil

	case *plan.Project:
		c, err := inlineProjects(t.Child)
		if err != nil {
			return nil, err
		}
		if p, ok := c.(*plan.Project); ok {
			// Compose Project over Project.
			exprs := make([]expr.Expr, len(t.Exprs))
			for i, e := range t.Exprs {
				exprs[i] = expr.Substitute(e, p.Exprs)
			}
			np := plan.NewProject(p.Child, exprs, t.Names)
			np.Out = t.Out
			return np, nil
		}
		np := plan.NewProject(c, t.Exprs, t.Names)
		np.Out = t.Out
		return np, nil

	case *plan.Select:
		c, err := inlineProjects(t.Child)
		if err != nil {
			return nil, err
		}
		if p, ok := c.(*plan.Project); ok {
			// Hoist: σθ(πE(R)) = πE(σ_{θ∘E}(R)).
			pred := expr.Substitute(t.Pred, p.Exprs)
			np := plan.NewProject(plan.NewSelect(p.Child, pred), p.Exprs, p.Names)
			np.Out = p.Out
			return np, nil
		}
		return plan.NewSelect(c, t.Pred), nil

	case *plan.Join:
		l, err := inlineProjects(t.L)
		if err != nil {
			return nil, err
		}
		r, err := inlineProjects(t.R)
		if err != nil {
			return nil, err
		}
		lp, lIsP := l.(*plan.Project)
		rp, rIsP := r.(*plan.Project)
		// Resolve keys through projections; bail out of inlining a side
		// whose key is computed.
		mapKeys := func(keys []int, p *plan.Project) ([]int, bool) {
			out := make([]int, len(keys))
			for i, k := range keys {
				col, ok := p.Exprs[k].(*expr.Col)
				if !ok {
					return nil, false
				}
				out[i] = col.Idx
			}
			return out, true
		}
		lKeys, rKeys := t.LKeys, t.RKeys
		var lExprs, rExprs []expr.Expr
		var lNames, rNames []string
		lChild, rChild := l, r
		if lIsP {
			if mk, ok := mapKeys(lKeys, lp); ok {
				lKeys = mk
				lExprs = lp.Exprs
				lNames = lp.Names
				lChild = lp.Child
			} else {
				lIsP = false
			}
		}
		if rIsP {
			if mk, ok := mapKeys(rKeys, rp); ok {
				rKeys = mk
				rExprs = rp.Exprs
				rNames = rp.Names
				rChild = rp.Child
			} else {
				rIsP = false
			}
		}
		if !lIsP && !rIsP {
			return plan.NewJoin(lChild, rChild, lKeys, rKeys), nil
		}
		// Hoist a combined projection above the join.
		if lExprs == nil {
			lExprs = identityExprs(lChild.Schema())
			lNames = lChild.Schema().Names()
		}
		if rExprs == nil {
			rExprs = identityExprs(rChild.Schema())
			rNames = rChild.Schema().Names()
		}
		lw := len(lChild.Schema())
		rShift := make([]expr.Expr, len(rChild.Schema()))
		for i, col := range rChild.Schema() {
			rShift[i] = expr.NewCol(lw+i, col.QualifiedName(), col.Type)
		}
		join := plan.NewJoin(lChild, rChild, lKeys, rKeys)
		exprs := make([]expr.Expr, 0, len(lExprs)+len(rExprs))
		names := make([]string, 0, len(lExprs)+len(rExprs))
		for i, e := range lExprs {
			exprs = append(exprs, e)
			names = append(names, lNames[i])
		}
		for i, e := range rExprs {
			exprs = append(exprs, expr.Substitute(e, rShift))
			names = append(names, rNames[i])
		}
		np := plan.NewProject(join, exprs, names)
		// Preserve the original qualified output schema.
		np.Out = t.Schema()
		return np, nil

	case *plan.Union:
		l, err := inlineProjects(t.L)
		if err != nil {
			return nil, err
		}
		r, err := inlineProjects(t.R)
		if err != nil {
			return nil, err
		}
		// Projects stay on the union sides (cannot hoist two different
		// projection lists); checkResidualProjects validates them.
		return plan.NewUnion(l, r), nil

	case *plan.Aggregate:
		c, err := inlineProjects(t.Child)
		if err != nil {
			return nil, err
		}
		if p, ok := c.(*plan.Project); ok {
			groupBy := make([]int, len(t.GroupBy))
			inlinable := true
			for i, g := range t.GroupBy {
				col, isCol := p.Exprs[g].(*expr.Col)
				if !isCol {
					inlinable = false
					break
				}
				groupBy[i] = col.Idx
			}
			if inlinable {
				specs := make([]plan.AggSpec, len(t.Aggs))
				for i, sp := range t.Aggs {
					ns := sp
					if sp.Arg != nil {
						ns.Arg = expr.Substitute(sp.Arg, p.Exprs)
					}
					specs[i] = ns
				}
				na := plan.NewAggregate(p.Child, groupBy, specs)
				// Preserve the aggregate's visible schema (names and
				// qualifiers from the original projection).
				na.Out = t.Schema()
				return na, nil
			}
		}
		na := plan.NewAggregate(c, t.GroupBy, t.Aggs)
		na.Out = t.Schema()
		return na, nil
	}
	return nil, fmt.Errorf("core: cannot normalize %T", n)
}

// checkResidualProjects verifies that any Project left in the plan (only
// possible under Union or above non-inlinable joins) does not compute new
// uncertain values: each uncertain output must be a bare reference to an
// aggregate output, otherwise downstream states would hold stale
// materialised values. This is a documented engine restriction; the planner
// never produces such shapes for the supported query class.
func checkResidualProjects(root plan.Node, an *plan.Analysis) error {
	var err error
	plan.Walk(root, func(n plan.Node) {
		if err != nil {
			return
		}
		p, ok := n.(*plan.Project)
		if !ok {
			return
		}
		info := an.Info[p.ID()]
		for i, unc := range info.UncertainCols {
			if unc && info.AggSource[i] < 0 {
				err = fmt.Errorf("core: unsupported plan: projection %q computes an uncertain value under a union/join barrier", p.Names[i])
			}
		}
	})
	return err
}

// partitionKeyColumns validates every requested partitioned-shipping table
// against the normalized plan and returns its build-side join key columns
// (indices into the table's schema, usable with cluster.PartitionByKey).
//
// Eligibility is deliberately narrow — the shapes where a replica holding
// only one hash partition of the table still computes bit-identical results
// through bucket-routed exchange spans:
//
//   - static (non-streamed): the partition is shipped once at setup;
//   - appears exactly once in the plan: a second scan of the same table
//     would need the full relation;
//   - the direct scan child of a keyed join's RIGHT (build) side: an
//     intervening operator (e.g. a pushed-down Select) would run a
//     row-parallel site over replica-divergent row counts, and a left-side
//     build would reorder emission against the probe stream.
func partitionKeyColumns(norm plan.Node, tables []string) (map[string][]int, error) {
	want := make(map[string]bool, len(tables))
	for _, t := range tables {
		if t == "" {
			return nil, fmt.Errorf("core: empty partitioned table name")
		}
		want[t] = true
	}
	scanCount := map[string]int{}
	keyCols := map[string][]int{}
	var walkErr error
	fail := func(format string, args ...interface{}) {
		if walkErr == nil {
			walkErr = fmt.Errorf(format, args...)
		}
	}
	plan.Walk(norm, func(n plan.Node) {
		switch t := n.(type) {
		case *plan.Scan:
			scanCount[t.Table]++
			if want[t.Table] && t.Streamed {
				fail("core: partitioned table %q is streamed; only static build sides can ship partitioned", t.Table)
			}
		case *plan.Join:
			if s, ok := t.L.(*plan.Scan); ok && want[s.Table] {
				fail("core: partitioned table %q is the probe (left) side of join #%d; only the build (right) side can ship partitioned", s.Table, t.ID())
			}
			if s, ok := t.R.(*plan.Scan); ok && want[s.Table] {
				if len(t.RKeys) == 0 {
					fail("core: partitioned table %q feeds a cross join; partitioned shipping needs join keys", s.Table)
				}
				keyCols[s.Table] = t.RKeys
			}
		}
	})
	if walkErr != nil {
		return nil, walkErr
	}
	for t := range want {
		switch {
		case scanCount[t] == 0:
			return nil, fmt.Errorf("core: partitioned table %q does not appear in the plan", t)
		case scanCount[t] > 1:
			return nil, fmt.Errorf("core: partitioned table %q appears %d times in the plan; partitioned shipping needs exactly one scan", t, scanCount[t])
		case keyCols[t] == nil:
			return nil, fmt.Errorf("core: partitioned table %q is not the direct scan child of a join's build side (predicates pushed onto the table also disqualify it)", t)
		}
	}
	return keyCols, nil
}

// PartitionKeys validates opts' partitioned-shipping request against a
// planned query and returns each partitioned table's build-side key columns.
// The dist coordinator uses it to slice setup payloads with exactly the
// routing compile wires into the replicas (same normalization pipeline).
func PartitionKeys(root plan.Node, opts Options) (map[string][]int, error) {
	if opts.Mode == ModeHDA && !opts.NoViewletRewrites {
		root = plan.NewRewriter(agg.NewRegistry()).Rewrite(root)
		plan.Finalize(root)
	}
	norm, _, _, err := normalizePlan(root)
	if err != nil {
		return nil, err
	}
	plan.Finalize(norm)
	return partitionKeyColumns(norm, opts.PartitionTables)
}

// mayGrow computes, per node, whether the operator can emit new
// certain-multiplicity rows after its first batch — the condition under
// which the opposite join side must keep state (Section 4.2's JOIN rule).
func mayGrow(root plan.Node, numOps int, an *plan.Analysis) []bool {
	grow := make([]bool, numOps)
	plan.Walk(root, func(n plan.Node) {
		switch t := n.(type) {
		case *plan.Scan:
			grow[n.ID()] = t.Streamed
		case *plan.Aggregate:
			child := an.Info[t.Child.ID()]
			if len(t.GroupBy) > 0 {
				grow[n.ID()] = child.Incomplete || child.TupleUncertain
			} else {
				// A global aggregate's single row exists from batch 1.
				grow[n.ID()] = false
			}
		default:
			for _, c := range n.Children() {
				if grow[c.ID()] {
					grow[n.ID()] = true
				}
			}
		}
	})
	return grow
}

// markColumnar decides, per streamed scan, whether attaching the columnar
// companion batch pays for itself — and which banks it must materialise.
// The batch flows scan → select → join probe and is consumed by a
// vectorized predicate (opSelect.vec), a batched key probe
// (opJoin.probeCB), or a batchable aggregate fold; every other operator
// drops it. A scan with no downstream consumer skips the columnar build
// entirely, and a consuming plan gets a subset view covering exactly the
// predicate, key, and argument columns — a high-cardinality column outside
// that set would otherwise pay a bank (worst case a dictionary insert per
// row) for nothing.
//
// wanted reports whether op's parent consumes its output batch, and need
// the columns the parent reads — in the coordinate space of op's output
// schema, which SELECT (the only operator that forwards a batch) shares
// with its child.
func markColumnar(op operator, wanted bool, need []bool) {
	switch o := op.(type) {
	case *opScan:
		o.wantCB = wanted
		o.cbNeed = need
	case *opSelect:
		// A compiled vector predicate consumes the batch itself and is the
		// only path that forwards a (narrowed) batch downstream; without
		// one the batch dies here no matter what the parent wants.
		if o.vec == nil {
			markColumnar(o.child, false, nil)
			return
		}
		childNeed := make([]bool, len(o.node.Schema()))
		if wanted {
			copy(childNeed, need)
		}
		for _, col := range o.vec.Cols(nil) {
			childNeed[col] = true
		}
		markColumnar(o.child, true, childNeed)
	case *opProject:
		markColumnar(o.child, false, nil)
	case *opUnion:
		markColumnar(o.l, false, nil)
		markColumnar(o.r, false, nil)
	case *opJoin:
		// probeCB consumes the probe (left) side's batch, reading only the
		// probe key columns; partitioned shipping routes through
		// probePartitioned, which stays on rows.
		leftNeed := make([]bool, o.lw)
		for _, col := range o.node.LKeys {
			leftNeed[col] = true
		}
		markColumnar(o.l, o.partBuckets == 0, leftNeed)
		markColumnar(o.r, false, nil)
	case *opAgg:
		childNeed := make([]bool, len(o.node.Child.Schema()))
		for _, col := range o.node.GroupBy {
			childNeed[col] = true
		}
		for _, col := range o.batchCols {
			if col >= 0 {
				childNeed[col] = true
			}
		}
		markColumnar(o.child, o.batchable, childNeed)
	case *opSink:
		markColumnar(o.child, false, nil)
	}
	// opSharedBuild and opSharedAgg are leaves here: shared subtrees own
	// their operators and are walked by their builders (shared.go).
}

// build constructs the online operator for a plan node.
func (c *compiled) build(n plan.Node, an *plan.Analysis, scaleExp []int, grow []bool, opts Options, trackRanges bool) (operator, error) {
	switch t := n.(type) {
	case *plan.Scan:
		op := newOpScan(t, opts)
		c.ops = append(c.ops, op)
		return op, nil

	case *plan.Select:
		child, err := c.build(t.Child, an, scaleExp, grow, opts, trackRanges)
		if err != nil {
			return nil, err
		}
		childInfo := an.Info[t.Child.ID()]
		uncPred := false
		for _, col := range t.Pred.Cols(nil) {
			if childInfo.UncertainCols[col] {
				uncPred = true
			}
		}
		op := &opSelect{node: t, child: child, predUncertain: uncPred}
		if !uncPred {
			// Deterministic predicate: compile the columnar form once. A
			// miss (shape outside CompileVec's subset) keeps vec nil and the
			// operator on the row path.
			if vp, ok := expr.CompileVec(t.Pred); ok {
				op.vec = vp
			}
		}
		c.ops = append(c.ops, op)
		return op, nil

	case *plan.Project:
		child, err := c.build(t.Child, an, scaleExp, grow, opts, trackRanges)
		if err != nil {
			return nil, err
		}
		op := &opProject{node: t, child: child}
		c.ops = append(c.ops, op)
		return op, nil

	case *plan.Join:
		l, err := c.build(t.L, an, scaleExp, grow, opts, trackRanges)
		if err != nil {
			return nil, err
		}
		lInfo, rInfo := an.Info[t.L.ID()], an.Info[t.R.ID()]
		cacheL := grow[t.R.ID()] || rInfo.TupleUncertain
		cacheR := grow[t.L.ID()] || lInfo.TupleUncertain
		if opts.Mode == ModeHDA {
			// HDA aggregates re-emit all groups every batch as
			// tuple-uncertain rows (delete+insert updates), so a side
			// facing an aggregate over incomplete data must be cached to
			// recompute the join.
			cacheL = cacheL || rInfo.Incomplete
			cacheR = cacheR || lInfo.Incomplete
		}
		if store, ok, err := c.acquireSharedBuild(t, cacheL, cacheR, an, scaleExp, grow, opts); err != nil {
			return nil, err
		} else if ok {
			// Frozen shared build side: the right subtree's rows live in
			// the cache's store; a stub replaces its operators and the
			// join probes the store read-only (shared.go).
			stub := &opSharedBuild{node: t.R}
			c.ops = append(c.ops, stub)
			op := &opJoin{node: t, l: l, r: stub, lw: len(t.L.Schema()), rStore: store, sharedR: true}
			c.ops = append(c.ops, op)
			return op, nil
		}
		r, err := c.build(t.R, an, scaleExp, grow, opts, trackRanges)
		if err != nil {
			return nil, err
		}
		op := newOpJoin(t, l, r, cacheL, cacheR, c.spill)
		if scan, ok := t.R.(*plan.Scan); ok && c.partKeys != nil {
			if _, isPart := c.partKeys[scan.Table]; isPart {
				if op.lStore != nil {
					// Cannot happen for an eligible shape (a static certain
					// right side never forces a cached left), but guard it:
					// probing replica-divergent partial ro.news into lStore
					// would break the SPMD exchange lockstep.
					return nil, fmt.Errorf("core: partitioned table %q: join #%d caches its left side", scan.Table, t.ID())
				}
				op.partBuckets = opts.Partitions
				op.partScan = r.(*opScan)
			}
		}
		c.ops = append(c.ops, op)
		return op, nil

	case *plan.Union:
		l, err := c.build(t.L, an, scaleExp, grow, opts, trackRanges)
		if err != nil {
			return nil, err
		}
		r, err := c.build(t.R, an, scaleExp, grow, opts, trackRanges)
		if err != nil {
			return nil, err
		}
		op := &opUnion{node: t, l: l, r: r}
		c.ops = append(c.ops, op)
		return op, nil

	case *plan.Aggregate:
		if op, ok, err := c.acquireSharedAgg(t, an, scaleExp, grow, opts, trackRanges); err != nil {
			return nil, err
		} else if ok {
			// Shared inner aggregate: the whole subtree's state lives in a
			// cached entry; the session keeps only a range cursor
			// (shared.go).
			c.ops = append(c.ops, op)
			return op, nil
		}
		child, err := c.build(t.Child, an, scaleExp, grow, opts, trackRanges)
		if err != nil {
			return nil, err
		}
		op := newOpAgg(t, child, an, scaleExp[t.Child.ID()], opts, trackRanges)
		c.ops = append(c.ops, op)
		return op, nil
	}
	return nil, fmt.Errorf("core: cannot build operator for %T", n)
}
