// Package core implements the iOLAP engine: the online query rewriter, the
// online operator implementations, and the query controller of Section 7,
// built on the uncertainty propagation theory of Section 4, the
// tuple-uncertainty partitioning of Section 5, and the lineage-based lazy
// evaluation of Section 6.
//
// Three engine modes share the operator framework:
//
//   - ModeIOLAP — the full system (variation-range pruning + lazy lineage).
//   - ModeOPT1 — pruning only; state rows are regenerated through a
//     rebuilt broadcast-join each batch instead of lazily dereferenced
//     (the middle bar of Figure 9(a)).
//   - ModeHDA — the DBToaster-style higher-order delta baseline: flat
//     sub-aggregates are delta-maintained, but every tuple whose predicate
//     depends on an uncertain aggregate is re-evaluated every batch, with
//     no variation ranges and no pruning (Section 8's HDA).
package core

import (
	"fmt"

	"iolap/internal/cluster"
	"iolap/internal/expr"
	"iolap/internal/rel"
	"iolap/internal/storage"
)

// Mode selects the delta update algorithm.
type Mode int

// Engine modes.
const (
	// ModeIOLAP is the full system: OPT1 (tuple-uncertainty partitioning
	// via variation ranges) + OPT2 (lineage propagation + lazy evaluation).
	ModeIOLAP Mode = iota
	// ModeOPT1 disables lazy lineage: state rows are regenerated through
	// a per-batch broadcast join against the aggregate outputs.
	ModeOPT1
	// ModeHDA is the higher-order delta baseline (DBToaster-style): no
	// uncertainty partitioning, no lineage; everything downstream of an
	// uncertain aggregate is recomputed over all previously seen data.
	ModeHDA
)

func (m Mode) String() string {
	switch m {
	case ModeIOLAP:
		return "iOLAP"
	case ModeOPT1:
		return "OPT1"
	case ModeHDA:
		return "HDA"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configures an Engine.
type Options struct {
	// Mode selects the delta algorithm (default ModeIOLAP).
	Mode Mode
	// Batches is the number of mini-batches p the streamed table is
	// partitioned into (default 10).
	Batches int
	// Trials is the bootstrap replicate count B (default 100; the paper
	// uses 100 trials). Negative disables bootstrap entirely (no error
	// estimates, no variation ranges).
	Trials int
	// Slack is the variation-range slack parameter ε (default 2.0, the
	// paper's recommended setting).
	Slack float64
	// Seed drives every random choice (Poisson streams, shuffles).
	Seed uint64
	// Workers bounds partition parallelism (default GOMAXPROCS).
	Workers int
	// SnapshotKeep is how many recent per-batch state snapshots the
	// controller retains for failure recovery (default 8). Failures
	// reaching further back recover from scratch.
	SnapshotKeep int
	// MinRangeSupport is the minimum number of input rows a group must
	// have accumulated before its variation ranges become binding
	// (default 20). Below it the range stays unbounded: dependent rows
	// remain non-deterministic (conservative and exact) and the
	// integrity check cannot spuriously fail on degenerate bootstrap
	// distributions of near-empty groups.
	MinRangeSupport int
	// PreShuffle randomly permutes the streamed table before batching
	// (the Section 2 pre-processing tool); off by default because the
	// workload generators already emit shuffled data.
	PreShuffle bool
	// NoViewletRewrites disables the Appendix-B viewlet-transformation
	// plan rewrites that ModeHDA applies by default (DBToaster's
	// higher-order delta = delta rules + viewlet transforms).
	NoViewletRewrites bool
	// BlockRows, when positive, enables the paper's default block-wise
	// randomness (Section 2): the streamed table is cut into blocks of
	// this many rows, whole blocks are randomly assigned to mini-batches
	// (seeded), and rows within a block stay together — the behaviour of
	// reading randomly partitioned HDFS blocks.
	BlockRows int
	// StratifyBy names a column of the streamed table for proportional
	// stratified batching: every mini-batch receives the same fraction of
	// each stratum, so rare groups are represented from batch 1 while the
	// uniform scale factor m_i stays exact. This implements the
	// stratified-sampling extension the paper leaves as future work
	// (Section 9).
	StratifyBy string
	// ParThreshold, when positive, pins the sequential/parallel cutover to
	// a fixed row count for every operator class. The default (0) is
	// adaptive: the engine learns an EWMA of measured per-row cost per
	// operator class and derives the cutover from it (cluster.CostModel).
	// Either way the cutover affects scheduling only, never results — the
	// equivalence suites pin it to 1 to force every parallel path onto
	// small fixtures.
	ParThreshold int
	// StateBudgetBytes bounds the resident (in-memory) join-state bytes.
	// When the cached join sides exceed it after a batch, the engine's
	// SpillPolicy evicts cold HashStore shards to per-shard spill files and
	// probes read them back transparently. 0 (the default) disables
	// spilling entirely; negative means a zero-byte budget — every
	// enforcement pushes all join state to disk. Like Workers and
	// ParThreshold, the budget affects placement only, never results: the
	// equivalence suites assert bit-identical output at every budget.
	StateBudgetBytes int64
	// SpillFS overrides where spill files live (fault-injection tests use
	// storage.MemFS / storage.FaultFS). Nil selects the real filesystem
	// under SpillDir, or a private temp directory — removed by Close — when
	// SpillDir is empty too.
	SpillFS storage.FS
	// SpillDir is the directory for spill files when SpillFS is nil.
	SpillDir string
	// Exchange connects the engine to a distributed transport
	// (internal/dist): row-parallel operator sites ship contiguous spans to
	// remote replicas and apply the merged results from identical bytes,
	// bit-identical to local execution (see exchange.go and DESIGN.md §9).
	// Nil (the default) means purely local execution.
	Exchange Exchanger
	// CostSeed seeds the adaptive cost model from a previous run's profile
	// (Engine.CostSnapshot / the CLI -cost-profile file), replacing the
	// cold-start priors. Scheduling only — never results.
	CostSeed map[string]float64
	// PartitionTables names static build-side tables shipped partitioned
	// (non-replicated) under distributed execution: each worker receives only
	// its hash partition (cluster.PartitionByKey over the build-side join
	// keys) and probes against it via bucket-routed exchange spans. Eligible
	// tables must be static, appear exactly once in the plan, and be the
	// direct scan child of a keyed join's right (build) side — compile
	// rejects anything else loudly. Unlike the scheduling-only options, this
	// changes the exchange call geometry, so it must be identical on every
	// replica (the dist setup message ships it).
	PartitionTables []string
	// Partitions is the number of hash partitions P for PartitionTables,
	// fixed for the query lifetime regardless of workers joining or leaving.
	// Worker rank r (1 ≤ r ≤ P) owns partition r-1; the coordinator computes
	// orphaned partitions locally. Required (> 0) when PartitionTables is
	// set.
	Partitions int
	// WireCompression flate-compresses distributed wire traffic: the Setup
	// table broadcast (columnar blocks) and span/merged payloads above a
	// size threshold. Transport-only — compression changes bytes on the
	// wire, never the decoded rows, so digests and the bit-identity
	// contract are unaffected. The dist setup message ships it so every
	// replica compresses symmetrically.
	WireCompression bool
	// Deltas, when non-empty, supplies the mini-batch schedule directly
	// instead of having the engine partition the streamed table itself:
	// element i is batch i+1's delta relation. This is the shared-scan seam
	// of the serving layer (internal/serve): the server partitions each
	// streamed table exactly once and hands every session's engine the same
	// slices, so N concurrent delta pipelines read one shared copy of the
	// data. Every element must carry the streamed table's schema; the
	// schedule overrides Batches, PreShuffle, BlockRows and StratifyBy. A
	// solo engine given the same schedule produces a bit-identical
	// trajectory — sharing changes memory layout, never results.
	Deltas []*rel.Relation
	// SharedState, when non-nil, lets compilation satisfy eligible operator
	// state (frozen join build sides, inner aggregate subtrees) from an
	// externally owned refcounted cache instead of building private copies
	// (shared.go). Sharing requires a caller-supplied schedule (Deltas) for
	// aggregate entries and is inert for solo engines. Results stay
	// bit-identical to a private build; only memory ownership changes.
	SharedState SharedStateCache
	// NoVectorize forces the row-at-a-time operator paths, disabling the
	// columnar mini-batch pipeline (DESIGN.md §14: scan-attached column
	// banks, selection-vector SELECT, batched join probes and aggregate
	// folds). The vectorized paths perform the same floating-point
	// operations in the same order as the row paths — the equivalence
	// suites run both and assert bit-identical updates — so this is an
	// execution-layout switch and a debugging oracle, never a semantic one.
	NoVectorize bool
}

func (o Options) withDefaults() Options {
	if o.Batches <= 0 {
		o.Batches = 10
	}
	if o.Trials == 0 {
		o.Trials = 100
	}
	if o.Trials < 0 {
		o.Trials = 0 // explicit opt-out of bootstrap
	}
	if o.Slack == 0 {
		o.Slack = 2.0
	}
	if o.SnapshotKeep <= 0 {
		o.SnapshotKeep = 8
	}
	if o.MinRangeSupport == 0 {
		o.MinRangeSupport = 20
	}
	if o.MinRangeSupport < 0 {
		o.MinRangeSupport = 0
	}
	return o
}

// aggPub is one group's published uncertain outputs (indexed by aggregate
// spec position).
type aggPub struct {
	vals []expr.UncValue
}

// aggTable is an aggregate operator's published output for lineage
// resolution: the "broadcast-joined" relation of Section 6.2.
type aggTable struct {
	groupCols int
	byKey     map[string]*aggPub
}

// batchContext carries one mini-batch's execution state. It implements
// expr.Resolver: resolving a rel.Ref against the producing aggregate's
// current output *is* the lazy evaluation of Section 6.2.
type batchContext struct {
	batch  int     // 1-based engine batch number
	scale  float64 // m_i = |D| / |D_i|
	scaleN int     // physical |D_i| (for diagnostics)
	trials int

	// delta holds this batch's new rows per streamed table name.
	delta map[string]*rel.Relation
	// dims holds the static tables (consumed at batch 1).
	dims dbView

	tables map[int]*aggTable // published aggregate outputs, by op id

	lazy  bool // OPT2: lazy lineage via refs
	prune bool // OPT1: variation-range pruning
	// exact marks the final batch (D_i = D): the delivered result is the
	// exact answer, so error estimates collapse to points.
	exact bool
	// hdaAgg makes aggregates with uncertain outputs re-emit ALL their
	// group rows (materialised values) every batch instead of emitting
	// stable lineage references once. This is the classical IVM treatment
	// of a value update as delete+insert (Section 4.3), and is what makes
	// the HDA baseline recompute everything downstream of an inner
	// aggregate on every batch.
	hdaAgg bool

	metrics    *cluster.Metrics
	recomputed int // tuples recomputed this batch (Fig 8(e,f))
	failures   []failure
	pool       *cluster.Pool
	// exch, when non-nil, distributes the row-parallel operator sites over
	// remote replicas (see exchange.go). Nil means purely local execution.
	exch Exchanger
	// cost is the engine's adaptive cutover model (engine state shared by
	// every batch, so the EWMA keeps learning across the run). The old
	// design — a mutable package-level parThreshold the tests overwrote —
	// was a data race under `go test -race -parallel`.
	cost *cluster.CostModel
	// vec enables the columnar batch pipeline (off under Options.NoVectorize):
	// streamed scans attach column banks to their output and downstream
	// operators take the batched paths where their gates allow.
	vec bool
}

// fanout reports whether a site of the given operator class processing n
// rows should use the worker pool. Every parallel path it gates is
// bit-identical to its sequential fallback (deterministic shard → ordered
// merge), so the answer affects only scheduling, never results — which is
// what makes a wall-clock-adaptive cutover safe.
func (bc *batchContext) fanout(c cluster.OpClass, n int) bool {
	return bc.pool != nil && bc.pool.Workers() > 1 && n >= bc.cost.Threshold(c)
}

// par returns the pool when a site with n rows should fan out, nil otherwise
// (for callees that take an optional pool, like delta.HashStore.AddBatch).
func (bc *batchContext) par(c cluster.OpClass, n int) *cluster.Pool {
	if bc.fanout(c, n) {
		return bc.pool
	}
	return nil
}

// mapChunks runs fill over [0, n) — chunk-parallel when the class cutover
// says the batch is worth fanning out — and feeds the measured per-row cost
// back into the engine's model.
func (bc *batchContext) mapChunks(c cluster.OpClass, n int, fill func(lo, hi int)) {
	if bc.fanout(c, n) {
		bc.cost.Timed(c, n, bc.pool.Workers(), func() {
			bc.pool.MapChunks(n, func(_, lo, hi int) { fill(lo, hi) })
		})
	} else {
		bc.cost.Timed(c, n, 1, func() { fill(0, n) })
	}
}

// weightArena returns one contiguous float64 arena of rows×trials for a
// scan's per-tuple bootstrap weight vectors. Rows retain their W slices past
// the batch (join state, lineage), so the arena cannot be recycled — but
// carving every vector out of one slab replaces rows allocations with one
// per scan per batch, and keeps a batch's weight vectors contiguous for the
// fold kernels' sequential reads.
func (bc *batchContext) weightArena(rows, trials int) []float64 {
	return make([]float64, rows*trials)
}

// failure records one variation-range integrity violation (Section 5.1).
type failure struct {
	op        int
	recoverTo int // batch label to restore; -1 = from scratch
}

// dbView abstracts table access for static scans.
type dbView interface {
	Get(name string) (*rel.Relation, bool)
}

// ResolveRef implements expr.Resolver.
func (bc *batchContext) ResolveRef(r rel.Ref) (expr.UncValue, bool) {
	t, ok := bc.tables[r.Op]
	if !ok {
		return expr.UncValue{}, false
	}
	g, ok := t.byKey[r.Key]
	if !ok {
		return expr.UncValue{}, false
	}
	idx := r.Col - t.groupCols
	if idx < 0 || idx >= len(g.vals) {
		return expr.UncValue{}, false
	}
	return g.vals[idx], true
}

// publish registers an aggregate's output table for the batch.
func (bc *batchContext) publish(op int, t *aggTable) { bc.tables[op] = t }

var _ expr.Resolver = (*batchContext)(nil)
