package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"iolap/internal/bootstrap"
	"iolap/internal/cluster"
	"iolap/internal/delta"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// output is what an online operator emits for one mini-batch:
//
//   - news: rows whose multiplicity is now final (u# = F). They are emitted
//     exactly once and downstream operators may fold them permanently into
//     sketches and join states. Uncertain *attributes* inside them are
//     lineage references, so they never go stale.
//   - unc: the operator's current tuple-uncertain rows (u# = T), re-derived
//     every batch. Downstream operators recompute their contribution from
//     scratch each batch (the pending part of the delta update algorithm).
//
// The operator's logical output at batch i is (∪ all news so far) ∪ unc.
type output struct {
	news []delta.Row
	unc  []delta.Row
	// cb, when non-nil, is the columnar view of news (DESIGN.md §14):
	// news[j] is row cb.src(j) of cb.cols, and its bootstrap weight window
	// lives at cb.slab[src·trials : (src+1)·trials]. Streamed scans attach
	// it; SELECT narrows it with a selection vector; every other operator
	// drops it (the zero value), falling back to the row form downstream.
	cb *colBatch
}

// colBatch is the columnar companion of an output's certain rows. The row
// form stays authoritative — cb is an accelerator view over the same
// tuples, so operators are free to ignore it.
type colBatch struct {
	cols *rel.Columns
	// sel maps output position to source row: news[j] ↔ cols row sel[j];
	// nil means the identity (news[j] ↔ row j).
	sel []int32
	// slab is the scan's weight arena, stride trials per source row.
	slab   []float64
	trials int
}

// src returns the source-row index of output position j.
func (cb *colBatch) src(j int) int {
	if cb.sel == nil {
		return j
	}
	return int(cb.sel[j])
}

// operator is one online operator (Section 7's "online operator
// implementations"): it processes a mini-batch, maintains its Section 4.2
// state, and supports snapshot/restore for failure recovery.
type operator interface {
	step(bc *batchContext) (output, error)
	snapshot() interface{}
	restore(snap interface{})
	stateBytes() int
	kind() string
	// lastCounts reports the rows emitted by the most recent step:
	// (certain news, tuple-uncertain re-emissions).
	lastCounts() (news, unc int)
}

// emitCounts is embedded by operators to satisfy lastCounts.
type emitCounts struct {
	newsN, uncN int
}

func (c *emitCounts) record(out output)      { c.newsN, c.uncN = len(out.news), len(out.unc) }
func (c *emitCounts) lastCounts() (int, int) { return c.newsN, c.uncN }

// evalTrue evaluates a predicate to a definite boolean under current values.
func evalTrue(pred expr.Expr, r delta.Row, bc *batchContext) bool {
	v := pred.Eval(r.Vals, bc)
	return !v.IsNull() && v.Kind() == rel.KBool && v.Bool()
}

// ---------------------------------------------------------------------------
// Scan

type opScan struct {
	emitCounts
	node    *plan.Scan
	poisson *bootstrap.PoissonSource // nil when trials == 0 or scan is static
	next    uint64                   // per-table tuple index for weight derivation
	done    bool                     // static side fully emitted
	// justEmitted is true exactly on the step where the static side emitted
	// its rows. Partitioned joins key their transient ΔL⋈ΔR branch off it
	// instead of len(ro.news) > 0, which would diverge across replicas
	// holding different (possibly empty) partitions of the table.
	justEmitted bool
	// wantCB marks that some downstream operator consumes the columnar
	// companion batch (markColumnar); scans whose plan has no vectorized
	// consumer skip the columnar build entirely. cbNeed is the column set
	// those consumers read — the subset view materialises only these banks.
	wantCB bool
	cbNeed []bool
}

type scanSnap struct {
	next        uint64
	done        bool
	justEmitted bool
}

func newOpScan(t *plan.Scan, opts Options) *opScan {
	op := &opScan{node: t}
	if t.Streamed && opts.Trials > 0 {
		// Salt by table name so distinct tables get independent Poisson
		// streams, while the multiple scans of one table (self joins via
		// subqueries) assign identical weights to identical tuples —
		// required for bootstrap correctness.
		salt := opts.Seed
		for _, ch := range t.Table {
			salt = salt*131 + uint64(ch)
		}
		op.poisson = bootstrap.NewPoissonSource(salt, opts.Trials)
	}
	return op
}

func (o *opScan) step(bc *batchContext) (output, error) {
	if o.node.Streamed {
		d, ok := bc.delta[o.node.Table]
		if !ok {
			return output{}, fmt.Errorf("core: no delta for streamed table %q", o.node.Table)
		}
		rows := make([]delta.Row, d.Len())
		base := o.next
		// One weight slab per batch: every tuple's vector is a capped
		// sub-slice filled in place, so weight derivation performs no
		// per-tuple allocation on either the sequential or parallel path
		// (disjoint sub-slices make the parallel fill race-free).
		var slab []float64
		trials := 0
		if o.poisson != nil {
			trials = o.poisson.Trials()
			slab = bc.weightArena(d.Len(), trials)
		}
		fill := func(i int) {
			tp := d.Tuples[i]
			var w []float64
			if o.poisson != nil {
				w = o.poisson.WeightsInto(base+uint64(i), slab[i*trials:(i+1)*trials:(i+1)*trials])
			}
			rows[i] = delta.Row{Vals: tp.Vals, Mult: tp.Mult, W: w}
		}
		// Weight derivation is per-tuple-index deterministic, so the
		// partition-parallel path is bit-identical to the sequential one.
		// Only weighted scans feed the scan EWMA: the unweighted fill is a
		// different (much cheaper) operation and would drag the estimate.
		if o.poisson != nil {
			bc.mapChunks(cluster.CostScan, d.Len(), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					fill(i)
				}
			})
		} else {
			for i := range rows {
				fill(i)
			}
		}
		o.next += uint64(d.Len())
		out := output{news: rows}
		if bc.vec && o.wantCB {
			// Columnar companion view over just the banks the plan's
			// consumers read; a storage-decoded delta arrives with a full
			// cached view and serves the subset for free. Unweighted scans
			// (Trials 0) attach it with an empty slab — the vectorized
			// select and probe don't read weights, and the batched
			// aggregate fold gates itself off a nil slab.
			out.cb = &colBatch{cols: d.ColumnarSubset(o.cbNeed), slab: slab, trials: trials}
		}
		o.record(out)
		return out, nil
	}
	if o.done {
		o.justEmitted = false
		o.record(output{})
		return output{}, nil
	}
	o.done = true
	o.justEmitted = true
	src, ok := bc.dims.Get(o.node.Table)
	if !ok {
		return output{}, fmt.Errorf("core: unknown table %q", o.node.Table)
	}
	rows := make([]delta.Row, 0, src.Len())
	for _, tp := range src.Tuples {
		rows = append(rows, delta.Row{Vals: tp.Vals, Mult: tp.Mult})
	}
	out := output{news: rows}
	o.record(out)
	return out, nil
}

func (o *opScan) snapshot() interface{} {
	return scanSnap{next: o.next, done: o.done, justEmitted: o.justEmitted}
}
func (o *opScan) restore(snap interface{}) {
	s := snap.(scanSnap)
	o.next, o.done, o.justEmitted = s.next, s.done, s.justEmitted
}
func (o *opScan) stateBytes() int { return 0 }
func (o *opScan) kind() string    { return "scan" }

// ---------------------------------------------------------------------------
// Select

// opSelect implements the SELECT delta rule (Sections 4.2 and 5.2): rows
// whose predicate decision is deterministic under the current variation
// ranges pass or drop permanently; the rest form the non-deterministic set
// U_i, saved in the operator state and re-evaluated every batch. When the
// range of the uncertain operand narrows enough, state rows are promoted
// (emitted as certain) or discarded.
type opSelect struct {
	emitCounts
	node          *plan.Select
	child         operator
	predUncertain bool
	// vec is the columnar form of the predicate, compiled at build time for
	// deterministic predicates inside expr.CompileVec's subset; nil keeps
	// the row path.
	vec   *expr.Vectorized
	state delta.RowSet // the non-deterministic set U_i
}

// vecBatch returns the input's columnar view when this step may take the
// vectorized filter: a compiled deterministic predicate, a dense (identity
// selection) batch with no unresolved refs (EvalCols has no Resolver), no
// distributed transport (span exchanges must keep the row path's message
// geometry), and no pending non-deterministic state (promoted state rows
// would interleave with the filtered news, breaking the selection
// vector's correspondence — with a deterministic predicate the state is
// always empty, so this is a pure invariant check).
func (o *opSelect) vecBatch(bc *batchContext, in output) *colBatch {
	cb := in.cb
	if o.vec == nil || cb == nil || !bc.vec || bc.exch != nil ||
		cb.sel != nil || cb.cols.HasRefs() || o.state.Len() > 0 {
		return nil
	}
	return cb
}

func (o *opSelect) classify(r delta.Row, bc *batchContext) expr.Tri {
	if !bc.prune {
		// HDA: no variation ranges — every decision involving an
		// uncertain aggregate stays non-deterministic forever.
		return expr.Unknown
	}
	return o.node.Pred.Tri(r.Vals, bc)
}

// selVerdict is one row's precomputed per-batch SELECT decision: its
// classification under the current variation ranges and — only when that is
// still non-deterministic — the current-value predicate outcome.
type selVerdict struct {
	tri  expr.Tri
	pass bool
}

// classifyAll computes verdicts for a row set. Classification and predicate
// evaluation are pure reads of the row and the published aggregate tables,
// so large sets fan out over contiguous chunks; writing verdict i into slot
// i keeps the subsequent (sequential) merge identical to the one-row-at-a-
// time loop. regen additionally pays the per-row regeneration cost of the
// non-lazy modes (ModeOPT1/ModeHDA state refresh).
func (o *opSelect) classifyAll(rows []delta.Row, bc *batchContext, regen bool) []selVerdict {
	vs := make([]selVerdict, len(rows))
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := rows[i]
			if regen && !bc.lazy {
				regenerate(r, bc)
			}
			v := selVerdict{tri: o.classify(r, bc)}
			if v.tri != expr.True && v.tri != expr.False {
				v.pass = evalTrue(o.node.Pred, r, bc)
			}
			vs[i] = v
		}
	}
	if bc.distSite(len(rows)) {
		// Distributed site: each replica classifies one contiguous span and
		// every replica applies the merged verdict bytes for all spans.
		bc.exchange(cluster.CostSelect, len(rows),
			func(lo, hi int) ([]byte, error) {
				bc.spanChunks(cluster.CostSelect, lo, hi, fill)
				return encodeVerdictSpan(vs, lo, hi), nil
			},
			func(lo, hi int, p []byte) error { return decodeVerdictSpan(vs, lo, hi, p) })
		return vs
	}
	bc.mapChunks(cluster.CostSelect, len(rows), fill)
	return vs
}

// filterAll evaluates the predicate under current values for every row,
// chunk-parallel for large sets.
func (o *opSelect) filterAll(rows []delta.Row, bc *batchContext) []bool {
	pass := make([]bool, len(rows))
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pass[i] = evalTrue(o.node.Pred, rows[i], bc)
		}
	}
	if bc.distSite(len(rows)) {
		bc.exchange(cluster.CostSelect, len(rows),
			func(lo, hi int) ([]byte, error) {
				bc.spanChunks(cluster.CostSelect, lo, hi, fill)
				return encodeBoolSpan(pass, lo, hi), nil
			},
			func(lo, hi int, p []byte) error { return decodeBoolSpan(pass, lo, hi, p) })
		return pass
	}
	bc.mapChunks(cluster.CostSelect, len(rows), fill)
	return pass
}

func (o *opSelect) step(bc *batchContext) (output, error) {
	in, err := o.child.step(bc)
	if err != nil {
		return output{}, err
	}
	var out output
	// 1. Refresh and re-classify the non-deterministic set (this is the
	// recomputation the paper's Figure 8(e,f) counts). Verdicts are
	// computed partition-parallel; promotion/pruning stays a sequential
	// ordered merge.
	if o.state.Len() > 0 {
		bc.recomputed += o.state.Len()
		vs := o.classifyAll(o.state.Rows, bc, true)
		kept := o.state.Rows[:0]
		for i, r := range o.state.Rows {
			switch vs[i].tri {
			case expr.True:
				out.news = append(out.news, r) // promoted: decision final
			case expr.False:
				// pruned permanently
			default:
				kept = append(kept, r)
				if vs[i].pass {
					out.unc = append(out.unc, r)
				}
			}
		}
		o.state.Rows = kept
	}
	// 2. New certain input rows.
	if len(in.news) > 0 && !o.predUncertain {
		var pass []bool
		if cb := o.vecBatch(bc, in); cb != nil {
			// Columnar filter: the predicate evaluates whole column spans
			// into the selection slice, chunk-parallel (EvalCols is
			// stateless). Verdict-identical to filterAll — CompileVec pins
			// the row path's acceptance test — so the appended rows and
			// their order match the row branch exactly.
			pass = make([]bool, len(in.news))
			bc.mapChunks(cluster.CostSelect, len(in.news), func(lo, hi int) {
				o.vec.EvalCols(cb.cols, lo, hi, pass[lo:hi])
			})
			sel := make([]int32, 0, len(in.news))
			for i, r := range in.news {
				if pass[i] {
					out.news = append(out.news, r)
					sel = append(sel, int32(i))
				}
			}
			out.cb = &colBatch{cols: cb.cols, sel: sel, slab: cb.slab, trials: cb.trials}
		} else {
			pass = o.filterAll(in.news, bc)
			for i, r := range in.news {
				if pass[i] {
					out.news = append(out.news, r)
				}
			}
		}
	} else if len(in.news) > 0 {
		vs := o.classifyAll(in.news, bc, false)
		for i, r := range in.news {
			switch vs[i].tri {
			case expr.True:
				out.news = append(out.news, r)
			case expr.False:
			default:
				o.state.Add(r.Clone())
				if vs[i].pass {
					out.unc = append(out.unc, r)
				}
			}
		}
	}
	// 3. Upstream tuple-uncertain rows: filter by current values; their
	// uncertainty is owned upstream, so they stay uncertain here.
	bc.recomputed += len(in.unc)
	if len(in.unc) > 0 {
		pass := o.filterAll(in.unc, bc)
		for i, r := range in.unc {
			if pass[i] {
				out.unc = append(out.unc, r)
			}
		}
	}
	o.record(out)
	return out, nil
}

// regenSink defeats dead-code elimination of the OPT1 regeneration work.
// Atomic because regeneration now runs inside partition-parallel loops.
var regenSink atomic.Int64

// regenerate simulates the non-lazy refresh of a state row (ModeOPT1 /
// ModeHDA): instead of dereferencing lineage in place, the row is rebuilt —
// cloned and its uncertain attributes re-fetched through the per-batch
// broadcast-joined aggregate output — which is what "regenerating the tuple
// from scratch" costs in-process (the paper's version additionally pays
// I/O and shuffle, which the cluster metrics account separately).
func regenerate(r delta.Row, bc *batchContext) {
	rr := r.Clone()
	for i, v := range rr.Vals {
		if v.IsRef() {
			if uv, ok := bc.ResolveRef(v.Ref()); ok {
				rr.Vals[i] = uv.Value
			}
		}
	}
	regenSink.Add(int64(len(rr.Vals)))
}

func (o *opSelect) snapshot() interface{}    { return o.state.Snapshot() }
func (o *opSelect) restore(snap interface{}) { o.state.Restore(snap.(*delta.RowSet)) }
func (o *opSelect) stateBytes() int          { return o.state.SizeBytes() }
func (o *opSelect) kind() string             { return "select" }

// ---------------------------------------------------------------------------
// Project

// opProject handles the projections that survive inlining (under unions, or
// above joins keyed on computed columns) and never holds state (Section 4.2:
// the PROJECT operator state is always empty). Bare column references pass
// values — including lineage refs — through untouched; computed expressions
// are evaluated (the compiler guarantees they are deterministic here).
type opProject struct {
	emitCounts
	node  *plan.Project
	child operator
}

func (o *opProject) apply(rows []delta.Row, bc *batchContext) []delta.Row {
	if len(rows) == 0 {
		return nil
	}
	// Rows are independent and the expressions deterministic, so large sets
	// fill output slots chunk-parallel (slot i from row i: order preserved).
	out := make([]delta.Row, len(rows))
	fill := func(lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			r := rows[ri]
			vals := make([]rel.Value, len(o.node.Exprs))
			for i, e := range o.node.Exprs {
				if col, ok := e.(*expr.Col); ok {
					vals[i] = r.Vals[col.Idx] // pass refs through
					continue
				}
				vals[i] = e.Eval(r.Vals, bc)
			}
			out[ri] = delta.Row{Vals: vals, Mult: r.Mult, W: r.W}
		}
	}
	bc.mapChunks(cluster.CostProject, len(rows), fill)
	return out
}

func (o *opProject) step(bc *batchContext) (output, error) {
	in, err := o.child.step(bc)
	if err != nil {
		return output{}, err
	}
	out := output{news: o.apply(in.news, bc), unc: o.apply(in.unc, bc)}
	o.record(out)
	return out, nil
}

func (o *opProject) snapshot() interface{} { return nil }
func (o *opProject) restore(interface{})   {}
func (o *opProject) stateBytes() int       { return 0 }
func (o *opProject) kind() string          { return "project" }

// ---------------------------------------------------------------------------
// Union

// opUnion is stateless (Section 4.2).
type opUnion struct {
	emitCounts
	node *plan.Union
	l, r operator
}

func (o *opUnion) step(bc *batchContext) (output, error) {
	lo, err := o.l.step(bc)
	if err != nil {
		return output{}, err
	}
	ro, err := o.r.step(bc)
	if err != nil {
		return output{}, err
	}
	out := output{
		news: append(lo.news, ro.news...),
		unc:  append(lo.unc, ro.unc...),
	}
	o.record(out)
	return out, nil
}

func (o *opUnion) snapshot() interface{} { return nil }
func (o *opUnion) restore(interface{})   {}
func (o *opUnion) stateBytes() int       { return 0 }
func (o *opUnion) kind() string          { return "union" }

// ---------------------------------------------------------------------------
// Join

// opJoin implements the JOIN delta rule (Section 4.2): each side's certain
// rows are cached iff the opposite side may still produce rows (new or
// tuple-uncertain) in later batches — so a streamed fact joined with static
// dimension tables caches only the dimensions, the optimization the paper
// calls out. The tuple-uncertain output combinations (U_L ⋈ C_R, C_L ⋈ U_R,
// U_L ⋈ U_R) are recomputed every batch.
type opJoin struct {
	emitCounts
	node           *plan.Join
	l, r           operator
	lStore, rStore *delta.HashStore
	lw             int // left schema width
	// partBuckets > 0 marks the right side as a partitioned-shipping table
	// (Options.PartitionTables): each distributed replica holds only one
	// hash partition of it, so probes route through bucket-geometry
	// exchanges (cluster.CostProbePart over partBuckets logical buckets)
	// instead of row spans. partScan is the right child's static scan, whose
	// justEmitted flag replaces the replica-divergent len(ro.news) guard.
	partBuckets int
	partScan    *opScan
	// sharedR marks rStore as a frozen store owned by the shared-state
	// cache (shared.go): the build subtree ran once at acquire time, so the
	// store is complete and immutable. The join never writes it, excludes
	// it from this session's state accounting, and skips it in
	// snapshot/restore — restoring an immutable value is the identity, so
	// §5.1 replay touches it once (at probe time), not per session.
	sharedR bool
}

// newOpJoin builds the join operator. The persistent side stores — the ones
// that accumulate across batches — register with the engine's spill policy;
// the transient per-batch stores step() builds stay memory-only.
func newOpJoin(t *plan.Join, l, r operator, cacheL, cacheR bool, spill *delta.SpillPolicy) *opJoin {
	op := &opJoin{node: t, l: l, r: r, lw: len(t.L.Schema())}
	if cacheL {
		op.lStore = delta.NewHashStore(t.LKeys)
		spill.Register(op.lStore)
	}
	if cacheR {
		op.rStore = delta.NewHashStore(t.RKeys)
		spill.Register(op.rStore)
	}
	return op
}

// spilledRows reports how many cached join rows currently live on disk.
func (o *opJoin) spilledRows() int {
	n := 0
	if o.lStore != nil {
		n += o.lStore.SpilledRows()
	}
	if o.rStore != nil && !o.sharedR {
		n += o.rStore.SpilledRows()
	}
	return n
}

// residentBytes is the in-memory share of stateBytes (they differ only when
// shards have spilled).
func (o *opJoin) residentBytes() int {
	n := 0
	if o.lStore != nil {
		n += o.lStore.MemBytes()
	}
	if o.rStore != nil && !o.sharedR {
		n += o.rStore.MemBytes()
	}
	return n
}

func (o *opJoin) joinRows(l, r delta.Row) delta.Row {
	vals := make([]rel.Value, 0, len(l.Vals)+len(r.Vals))
	vals = append(vals, l.Vals...)
	vals = append(vals, r.Vals...)
	return delta.Row{Vals: vals, Mult: l.Mult * r.Mult, W: delta.CombineWeights(l.W, r.W)}
}

// probeCB returns the probe side's columnar view when the batched key
// encoder may drive the probe: local execution only (exchange payloads
// keep the row path) and no unresolved refs (EncodeKeyInto from banks has
// no Resolver). A narrowed selection is fine — src() maps output position
// to source row.
func (o *opJoin) probeCB(bc *batchContext, in output) *colBatch {
	cb := in.cb
	if cb == nil || !bc.vec || bc.exch != nil || cb.cols.HasRefs() {
		return nil
	}
	return cb
}

// probeInto joins each probe-side row against the store and appends the
// matches to dst in probe order (store rows in insertion order per key —
// exactly the sequential nested loop's output). Large probe sets fan out
// over contiguous chunks whose per-chunk buffers are concatenated in chunk
// order; the store is read-only during the probe, so this is the
// deterministic shard → ordered merge pattern. probeIsLeft orients the
// output row (probe ⋈ match vs match ⋈ probe). cb, when non-nil, is the
// probe side's columnar view: keys encode straight from the column banks
// (byte-identical to the row encoder) and the probe skips the per-row
// value gather.
func (o *opJoin) probeInto(dst []delta.Row, probe []delta.Row, probeKeys []int, store *delta.HashStore, probeIsLeft bool, bc *batchContext, cb *colBatch) []delta.Row {
	join := func(p, m delta.Row) delta.Row {
		if probeIsLeft {
			return o.joinRows(p, m)
		}
		return o.joinRows(m, p)
	}
	// probeSpan probes rows [lo, hi) and returns the matches in probe order
	// (per-chunk buffers concatenated in chunk order — identical to the
	// sequential nested loop over the span).
	probeSpan := func(lo, hi int) []delta.Row {
		n := hi - lo
		if !bc.fanout(cluster.CostJoinProbe, n) {
			var buf []delta.Row
			bc.cost.Timed(cluster.CostJoinProbe, n, 1, func() {
				buf = o.probeRange(buf, probe, probeKeys, store, cb, join, lo, hi)
			})
			return buf
		}
		outs := make([][]delta.Row, bc.pool.Chunks(n))
		bc.cost.Timed(cluster.CostJoinProbe, n, bc.pool.Workers(), func() {
			bc.pool.MapChunks(n, func(c, a, b int) {
				outs[c] = o.probeRange(nil, probe, probeKeys, store, cb, join, lo+a, lo+b)
			})
		})
		var buf []delta.Row
		for _, b := range outs {
			buf = append(buf, b...)
		}
		return buf
	}
	if bc.distSite(len(probe)) {
		// Distributed shard shipping: each replica probes one span, the
		// joined rows travel as spill-codec payloads, and every replica
		// appends the merged spans in span order — the same ordered merge,
		// across machines.
		bc.exchange(cluster.CostJoinProbe, len(probe),
			func(lo, hi int) ([]byte, error) { return encodeRowSpan(probeSpan(lo, hi)) },
			func(lo, hi int, p []byte) error {
				rows, err := decodeRowSpan(p)
				if err != nil {
					return err
				}
				dst = append(dst, rows...)
				return nil
			})
		return dst
	}
	return append(dst, probeSpan(0, len(probe))...)
}

// probeRange is probeInto's inner loop over probe rows [lo, hi): the
// columnar form encodes each key from the banks and probes by bytes, the
// row form gathers values per row. Both index the same hot map with the
// same key bytes, so matches and their order are identical.
func (o *opJoin) probeRange(buf []delta.Row, probe []delta.Row, probeKeys []int, store *delta.HashStore, cb *colBatch, join func(p, m delta.Row) delta.Row, lo, hi int) []delta.Row {
	if cb != nil {
		var kb [96]byte
		key := kb[:0]
		for i := lo; i < hi; i++ {
			p := probe[i]
			key = cb.cols.EncodeKeyInto(key[:0], cb.src(i), probeKeys)
			for _, m := range store.ProbeKey(key) {
				buf = append(buf, join(p, m))
			}
		}
		return buf
	}
	for i := lo; i < hi; i++ {
		p := probe[i]
		for _, m := range store.Probe(p.Vals, probeKeys) {
			buf = append(buf, join(p, m))
		}
	}
	return buf
}

// probePartitioned probes a partitioned build store. Exchange geometry is
// the P hash buckets, not row spans: the replica owning partition b probes
// all probe rows routed to bucket b against its partition, which yields
// exactly the full store's matches for those rows (a key's rows live whole
// in one partition, in full-store insertion order). Merged payloads scatter
// matches back to probe indices, and the final append walks probe order —
// byte-identical to the sequential full-store loop. There is no MinRows
// gate: a replica with a partial store cannot fall back to local compute,
// so every replica must agree to exchange whenever a transport is attached.
func (o *opJoin) probePartitioned(dst []delta.Row, probe []delta.Row, probeKeys []int, store *delta.HashStore, bc *batchContext) []delta.Row {
	if len(probe) == 0 {
		// Identical on every replica: probe rows come from the streamed
		// delta, which all replicas hold whole.
		return dst
	}
	if bc.exch == nil {
		// Local execution holds the full table; the plain sequential probe
		// is the oracle the exchange path must match bit-for-bit.
		return o.probeInto(dst, probe, probeKeys, store, true, bc, nil)
	}
	buckets := make([]int, len(probe))
	var scratch []byte
	for i, p := range probe {
		scratch = rel.EncodeKeyInto(scratch[:0], p.Vals, probeKeys)
		buckets[i] = cluster.KeyBucket(scratch, o.partBuckets)
	}
	perProbe := make([][]delta.Row, len(probe))
	bc.exchange(cluster.CostProbePart, o.partBuckets,
		func(lo, hi int) ([]byte, error) {
			var idx []int
			var matches [][]delta.Row
			for i, b := range buckets {
				if b < lo || b >= hi {
					continue
				}
				p := probe[i]
				ms := store.Probe(p.Vals, probeKeys)
				if len(ms) == 0 {
					continue
				}
				joined := make([]delta.Row, len(ms))
				for j, m := range ms {
					joined[j] = o.joinRows(p, m)
				}
				idx = append(idx, i)
				matches = append(matches, joined)
			}
			return encodePartProbeSpan(idx, matches)
		},
		func(lo, hi int, p []byte) error {
			return decodePartProbeSpan(p, lo, hi, buckets, perProbe)
		})
	for i := range probe {
		dst = append(dst, perProbe[i]...)
	}
	return dst
}

func (o *opJoin) step(bc *batchContext) (output, error) {
	lo, err := o.l.step(bc)
	if err != nil {
		return output{}, err
	}
	ro, err := o.r.step(bc)
	if err != nil {
		return output{}, err
	}
	lKeys, rKeys := o.node.LKeys, o.node.RKeys
	var out output
	// Exchange accounting: a keyed join repartitions both inputs by key;
	// a cross join broadcasts the (small) right side.
	if bc.metrics != nil {
		n := 0
		for _, r := range lo.news {
			n += r.SizeBytes()
		}
		for _, r := range lo.unc {
			n += r.SizeBytes()
		}
		m := 0
		for _, r := range ro.news {
			m += r.SizeBytes()
		}
		for _, r := range ro.unc {
			m += r.SizeBytes()
		}
		if len(lKeys) == 0 {
			// Cross join: nothing repartitions. The scalar side is
			// replicated to every worker, which is broadcast traffic, not
			// shuffle — booking it as a shuffle (the old code even recorded
			// a phantom zero-byte shuffle alongside it) skewed every
			// per-event shuffle statistic. Empty sides are dropped by
			// RecordBroadcastBytes itself.
			bc.metrics.RecordBroadcastBytes(m)
		} else {
			bc.metrics.RecordShuffleBytes(n + m)
		}
	}
	partitioned := o.partBuckets > 0
	lcb := o.probeCB(bc, lo)
	// Certain deltas (classic delta-join over the certain parts):
	// ΔL ⋈ C_R(old), C_L(old) ⋈ ΔR, ΔL ⋈ ΔR. Probes run partition-parallel
	// over the probe side; builds run partition-parallel over shards.
	if o.rStore != nil {
		if partitioned {
			out.news = o.probePartitioned(out.news, lo.news, lKeys, o.rStore, bc)
		} else {
			out.news = o.probeInto(out.news, lo.news, lKeys, o.rStore, true, bc, lcb)
		}
	}
	if o.lStore != nil {
		out.news = o.probeInto(out.news, ro.news, rKeys, o.lStore, false, bc, nil)
	}
	// The transient ΔL⋈ΔR branch must take the same side on every replica:
	// a partitioned right side emits different (possibly zero) row counts per
	// replica, so the guard keys off the scan's emission step instead.
	rEmitted := len(ro.news) > 0
	if partitioned {
		rEmitted = o.partScan.justEmitted
	}
	if len(lo.news) > 0 && rEmitted {
		newR := delta.NewHashStore(rKeys)
		newR.AddBatch(ro.news, false, bc.par(cluster.CostJoinBuild, len(ro.news)))
		if partitioned {
			out.news = o.probePartitioned(out.news, lo.news, lKeys, newR, bc)
		} else {
			out.news = o.probeInto(out.news, lo.news, lKeys, newR, true, bc, lcb)
		}
	}
	// Fold this batch's certain rows into the stores (rows are cloned: store
	// contents are immutable once added).
	if o.lStore != nil {
		o.lStore.AddBatch(lo.news, true, bc.par(cluster.CostJoinBuild, len(lo.news)))
	}
	if o.rStore != nil && !o.sharedR {
		o.rStore.AddBatch(ro.news, true, bc.par(cluster.CostJoinBuild, len(ro.news)))
	}
	// Tuple-uncertain combinations, recomputed every batch:
	// U_L ⋈ C_R, C_L ⋈ U_R, U_L ⋈ U_R.
	bc.recomputed += len(lo.unc) + len(ro.unc)
	if len(lo.unc) > 0 {
		if o.rStore == nil && len(ro.news) == 0 && len(ro.unc) == 0 {
			return output{}, fmt.Errorf("core: join #%d: left tuple uncertainty requires a cached right side", o.node.ID())
		}
		if o.rStore != nil {
			if partitioned {
				out.unc = o.probePartitioned(out.unc, lo.unc, lKeys, o.rStore, bc)
			} else {
				out.unc = o.probeInto(out.unc, lo.unc, lKeys, o.rStore, true, bc, nil)
			}
		}
	}
	if len(ro.unc) > 0 && o.lStore != nil {
		out.unc = o.probeInto(out.unc, ro.unc, rKeys, o.lStore, false, bc, nil)
	}
	if len(lo.unc) > 0 && len(ro.unc) > 0 {
		uncR := delta.NewHashStore(rKeys)
		uncR.AddBatch(ro.unc, false, bc.par(cluster.CostJoinBuild, len(ro.unc)))
		out.unc = o.probeInto(out.unc, lo.unc, lKeys, uncR, true, bc, nil)
	}
	o.record(out)
	return out, nil
}

type joinSnap struct {
	l, r *delta.HashSnap
}

func (o *opJoin) snapshot() interface{} {
	s := joinSnap{}
	if o.lStore != nil {
		s.l = o.lStore.Snapshot()
	}
	if o.rStore != nil && !o.sharedR {
		s.r = o.rStore.Snapshot()
	}
	return s
}

func (o *opJoin) restore(snap interface{}) {
	s := snap.(joinSnap)
	if o.lStore != nil {
		o.lStore.Restore(s.l)
	}
	if o.rStore != nil && !o.sharedR {
		o.rStore.Restore(s.r)
	}
}

func (o *opJoin) stateBytes() int {
	n := 0
	if o.lStore != nil {
		n += o.lStore.SizeBytes()
	}
	if o.rStore != nil && !o.sharedR {
		n += o.rStore.SizeBytes()
	}
	return n
}

func (o *opJoin) kind() string { return "join" }

// ---------------------------------------------------------------------------
// Sink

// opSink is the virtual SINK operator (Section 4.2): it accumulates the
// certain result rows, re-receives the tuple-uncertain ones each batch, and
// materialises the partial result Q(D_i, m_i) with bootstrap error
// estimates.
type opSink struct {
	emitCounts
	child  operator
	exprs  []expr.Expr
	names  []string
	unc    []bool // which output columns can be uncertain
	schema rel.Schema
	// scaleExp is the root's streamed-scan exponent: result tuples of a
	// non-aggregated query logically carry multiplicity m_i^k (Section 2).
	scaleExp int

	certain delta.RowSet
	lastUnc []delta.Row
}

func (o *opSink) step(bc *batchContext) (output, error) {
	in, err := o.child.step(bc)
	if err != nil {
		return output{}, err
	}
	for _, r := range in.news {
		o.certain.Add(r.Clone())
	}
	bc.recomputed += len(in.unc)
	o.lastUnc = o.lastUnc[:0]
	for _, r := range in.unc {
		o.lastUnc = append(o.lastUnc, r.Clone())
	}
	o.newsN, o.uncN = len(in.news), len(in.unc)
	return output{}, nil
}

// materialize renders the current partial result with error estimates.
// Rows are independent, so large results materialise partition-parallel.
func (o *opSink) materialize(bc *batchContext) (*rel.Relation, [][]bootstrap.Estimate) {
	scale := 1.0
	for k := 0; k < o.scaleExp; k++ {
		scale *= bc.scale
	}
	rows := make([]delta.Row, 0, o.certain.Len()+len(o.lastUnc))
	rows = append(rows, o.certain.Rows...)
	rows = append(rows, o.lastUnc...)
	res := rel.NewRelation(o.schema)
	res.Tuples = make([]rel.Tuple, len(rows))
	ests := make([][]bootstrap.Estimate, len(rows))
	// emitRange renders rows [lo, hi) sharing one replicate buffer and one
	// SummarizeInto sort scratch per range — each (row, column) estimate
	// consumes its replicates before the next reuses the buffers, so a lane
	// pays two allocations total instead of two per uncertain cell.
	emitRange := func(lo, hi int) {
		var reps, scratch []float64
		if bc.trials > 0 {
			reps = make([]float64, bc.trials)
		}
		for idx := lo; idx < hi; idx++ {
			r := rows[idx]
			vals := make([]rel.Value, len(o.exprs))
			rowEst := make([]bootstrap.Estimate, len(o.exprs))
			for i, e := range o.exprs {
				v := e.Eval(r.Vals, bc)
				vals[i] = v
				if o.unc[i] && bc.trials > 0 && !bc.exact && v.IsNumeric() {
					for b := 0; b < bc.trials; b++ {
						rv := e.EvalRep(r.Vals, bc, b)
						if rv.IsNumeric() {
							reps[b] = rv.Float()
						} else {
							reps[b] = math.NaN()
						}
					}
					rowEst[i], scratch = bootstrap.SummarizeInto(v.Float(), reps, scratch)
				} else if v.IsNumeric() {
					rowEst[i] = bootstrap.Estimate{Value: v.Float()}
				}
			}
			res.Tuples[idx] = rel.Tuple{Vals: vals, Mult: r.Mult * scale}
			ests[idx] = rowEst
		}
	}
	if bc.distSite(len(rows)) {
		// Distributed site: each replica materialises one span (tuples and
		// bootstrap estimates), and every replica applies the merged spans
		// from the same bytes — so the delivered result, including estimate
		// bit patterns, is identical on all replicas.
		bc.exchange(cluster.CostSink, len(rows),
			func(lo, hi int) ([]byte, error) {
				bc.spanChunks(cluster.CostSink, lo, hi, emitRange)
				return encodeSinkSpan(res, ests, lo, hi, len(o.exprs))
			},
			func(lo, hi int, p []byte) error {
				return decodeSinkSpan(res, ests, lo, hi, len(o.exprs), p)
			})
		return res, ests
	}
	if bc.pool != nil && len(rows) >= 64 && bc.trials > 0 {
		bc.pool.MapChunks(len(rows), func(_, lo, hi int) { emitRange(lo, hi) })
	} else {
		emitRange(0, len(rows))
	}
	return res, ests
}

// sinkSnap is a truncation snapshot: the certain set is append-only with
// immutable rows (cloned on arrival), so its length suffices; lastUnc is
// transient and recomputed by the replay batch.
type sinkSnap struct {
	certainLen int
}

func (o *opSink) snapshot() interface{} {
	return sinkSnap{certainLen: o.certain.Len()}
}

func (o *opSink) restore(snap interface{}) {
	s := snap.(sinkSnap)
	o.certain.Rows = o.certain.Rows[:s.certainLen]
	o.lastUnc = o.lastUnc[:0]
}

func (o *opSink) stateBytes() int { return o.certain.SizeBytes() }
func (o *opSink) kind() string    { return "sink" }
