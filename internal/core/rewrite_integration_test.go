package core

import (
	"strings"
	"testing"

	"iolap/internal/plan"
	"iolap/internal/rel"
)

// TestHDAAppliesViewletRewrites checks that ModeHDA runs the Appendix-B
// viewlet transformation (DBToaster's higher-order delta) and that the
// rewritten plan still matches the oracle of the original query.
func TestHDAAppliesViewletRewrites(t *testing.T) {
	// γ_{cdn, SUM(play_time)}(sessions ⋈_cdn (grouped subquery)) — the
	// Eq. 1/4 decomposition shape via an IN-subquery.
	q := `SELECT cdn, SUM(play_time) AS s FROM sessions
		WHERE cdn IN (SELECT cdn FROM sessions GROUP BY cdn HAVING COUNT(*) > 2)
		GROUP BY cdn`
	db := testDB(150, 101)
	root := planQuery(t, q)
	eng, err := NewEngine(root, db, Options{Mode: ModeHDA, Batches: 4, Trials: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Fingerprint(eng.comp.norm), "__partial") {
		t.Log("decomposition did not fire on this shape (acceptable; pattern-based)")
	}
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, db, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("HDA with rewrites diverged at batch %d\ngot:\n%s\nwant:\n%s",
				u.Batch, u.Result, want)
		}
	}
	// And the rewrite can be disabled.
	eng2, err := NewEngine(root, db, Options{Mode: ModeHDA, Batches: 4, Trials: 10, Seed: 3,
		NoViewletRewrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Fingerprint(eng2.comp.norm), "__partial") {
		t.Error("NoViewletRewrites must suppress the decomposition")
	}
}

// TestDecomposableShapeUnderHDA drives the exact Eq. 1 pattern through the
// engine: SUM over a key join against a subquery aggregate.
func TestDecomposableShapeUnderHDA(t *testing.T) {
	q := `SELECT s.cdn, SUM(s.play_time) AS total FROM sessions s
		WHERE s.buffer_time < (SELECT AVG(buffer_time) + 20 FROM sessions i WHERE i.cdn = s.cdn)
		GROUP BY s.cdn`
	db := testDB(160, 103)
	root := planQuery(t, q)
	for _, noRewrite := range []bool{false, true} {
		eng, err := NewEngine(root, db, Options{
			Mode: ModeHDA, Batches: 4, Trials: 10, Seed: 5, NoViewletRewrites: noRewrite,
		})
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for !eng.Done() {
			u, err := eng.Step()
			if err != nil {
				t.Fatal(err)
			}
			seen += eng.deltas[u.Batch-1].Len()
			want := oracle(t, root, db, "sessions", seen)
			if !rel.EqualBag(u.Result, want, 1e-6) {
				t.Fatalf("noRewrite=%v: batch %d diverged", noRewrite, u.Batch)
			}
		}
	}
}
