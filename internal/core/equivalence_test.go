package core

import (
	"math"
	"sort"
	"testing"

	"iolap/internal/bootstrap"
	"iolap/internal/exec"
	"iolap/internal/rel"
)

// The partition-parallel delta pipeline promises bit-identical results at any
// worker count: every parallel site is a deterministic shard of the work whose
// outputs merge in a fixed order, so Workers only changes wall clock. This
// suite enforces the promise by running each query shape with Workers=1 and
// Workers=8 and comparing every Update exactly — relations in physical order
// (kinds, payloads, multiplicities), every bootstrap estimate field, and every
// accounting metric. parThreshold drops to 1 so the small fixtures exercise
// the parallel paths that production only enters on large batches.

// sameF is float equality that treats NaN as equal to itself: a replicate can
// legitimately produce NaN (e.g. AVG over an empty replicate), and the
// invariant is "both runs produce the same bits", which NaN==NaN under ==
// would falsely fail.
func sameF(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func sameValue(a, b rel.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == rel.KFloat {
		return sameF(a.Float(), b.Float())
	}
	return a.Equal(b)
}

func sameEstimate(a, b bootstrap.Estimate) bool {
	return sameF(a.Value, b.Value) && sameF(a.Stdev, b.Stdev) &&
		sameF(a.CILo, b.CILo) && sameF(a.CIHi, b.CIHi) && sameF(a.RelStd, b.RelStd)
}

func assertUpdatesIdentical(t *testing.T, seq, par []*Update) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("update counts differ: Workers=1 produced %d, Workers=8 produced %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Batch != b.Batch || a.Batches != b.Batches {
			t.Fatalf("update %d: batch labels differ: %d/%d vs %d/%d", i, a.Batch, a.Batches, b.Batch, b.Batches)
		}
		if !sameF(a.Fraction, b.Fraction) {
			t.Errorf("batch %d: Fraction %v vs %v", a.Batch, a.Fraction, b.Fraction)
		}
		if a.Recomputed != b.Recomputed {
			t.Errorf("batch %d: Recomputed %d vs %d", a.Batch, a.Recomputed, b.Recomputed)
		}
		if a.NDSetRows != b.NDSetRows {
			t.Errorf("batch %d: NDSetRows %d vs %d", a.Batch, a.NDSetRows, b.NDSetRows)
		}
		if a.JoinStateBytes != b.JoinStateBytes || a.OtherStateBytes != b.OtherStateBytes {
			t.Errorf("batch %d: state bytes (%d,%d) vs (%d,%d)", a.Batch,
				a.JoinStateBytes, a.OtherStateBytes, b.JoinStateBytes, b.OtherStateBytes)
		}
		if a.ShuffleBytes != b.ShuffleBytes {
			t.Errorf("batch %d: ShuffleBytes %d vs %d", a.Batch, a.ShuffleBytes, b.ShuffleBytes)
		}
		if a.Recoveries != b.Recoveries || a.RecoveredFrom != b.RecoveredFrom {
			t.Errorf("batch %d: recovery (%d from %d) vs (%d from %d)", a.Batch,
				a.Recoveries, a.RecoveredFrom, b.Recoveries, b.RecoveredFrom)
		}
		if len(a.Result.Tuples) != len(b.Result.Tuples) {
			t.Fatalf("batch %d: result sizes differ: %d vs %d rows\nseq:\n%s\npar:\n%s",
				a.Batch, len(a.Result.Tuples), len(b.Result.Tuples), a.Result, b.Result)
		}
		for ti := range a.Result.Tuples {
			ta, tb := a.Result.Tuples[ti], b.Result.Tuples[ti]
			if !sameF(ta.Mult, tb.Mult) || len(ta.Vals) != len(tb.Vals) {
				t.Fatalf("batch %d row %d: tuples differ: %v×%v vs %v×%v",
					a.Batch, ti, ta.Vals, ta.Mult, tb.Vals, tb.Mult)
			}
			for vi := range ta.Vals {
				if !sameValue(ta.Vals[vi], tb.Vals[vi]) {
					t.Fatalf("batch %d row %d col %d: %v (%s) vs %v (%s)", a.Batch, ti, vi,
						ta.Vals[vi], ta.Vals[vi].Kind(), tb.Vals[vi], tb.Vals[vi].Kind())
				}
			}
		}
		if len(a.Estimates) != len(b.Estimates) {
			t.Fatalf("batch %d: estimate row counts differ: %d vs %d", a.Batch, len(a.Estimates), len(b.Estimates))
		}
		for ri := range a.Estimates {
			ra, rb := a.Estimates[ri], b.Estimates[ri]
			if len(ra) != len(rb) {
				t.Fatalf("batch %d: estimate row %d widths differ: %d vs %d", a.Batch, ri, len(ra), len(rb))
			}
			for ci := range ra {
				if !sameEstimate(ra[ci], rb[ci]) {
					t.Fatalf("batch %d: estimate [%d][%d] differs: %+v vs %+v", a.Batch, ri, ci, ra[ci], rb[ci])
				}
			}
		}
	}
}

// sortSessionsByBufferTime orders the streamed table ascending by buffer_time,
// the adversarial arrival order that drives the running AVG(buffer_time)
// monotonically upward and forces variation-range failures under a tight
// slack (the recipe of TestTheorem1UnderRecovery).
func sortSessionsByBufferTime(db *exec.DB) {
	src, _ := db.Get("sessions")
	sort.SliceStable(src.Tuples, func(i, j int) bool {
		return src.Tuples[i].Vals[1].Float() < src.Tuples[j].Vals[1].Float()
	})
}

func runEngineUpdates(t *testing.T, query string, n int, dbSeed int64, opts Options, sorted bool) ([]*Update, *Engine) {
	t.Helper()
	db := testDB(n, dbSeed)
	if sorted {
		sortSessionsByBufferTime(db)
	}
	eng, err := NewEngine(planQuery(t, query), db, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	us, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return us, eng
}

func theoremQuery(t *testing.T, name string) string {
	t.Helper()
	for _, q := range theoremQueries {
		if q.name == name {
			return q.query
		}
	}
	t.Fatalf("no theorem query named %q", name)
	return ""
}

func TestWorkerEquivalenceDeltaPipeline(t *testing.T) {
	defer func(old int) { parThreshold = old }(parThreshold)
	parThreshold = 1

	cases := []struct {
		name   string
		query  string
		n      int
		dbSeed int64
		opts   Options
		sorted bool
	}{
		{"flat_group_by/iolap", theoremQuery(t, "flat_group_by"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false},
		{"join_dim_group/iolap", theoremQuery(t, "join_dim_group"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false},
		{"union_all/iolap", theoremQuery(t, "union_all"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false},
		{"case_expression/iolap", theoremQuery(t, "case_expression"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false},
		{"nested_correlated/iolap", theoremQuery(t, "nested_correlated"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false},
		{"sbi/iolap", sbiQuery, 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false},
		{"sbi/opt1", sbiQuery, 240, 11,
			Options{Mode: ModeOPT1, Batches: 6, Trials: 25, Seed: 3}, false},
		{"sbi/hda", sbiQuery, 240, 11,
			Options{Mode: ModeHDA, Batches: 6, Trials: 25, Seed: 3}, false},
		// Adversarial arrival order + tight slack: recovery (snapshot
		// restore + merged-delta replay) must also be worker-invariant.
		{"sbi/recovery", sbiQuery, 200, 7,
			Options{Mode: ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seqOpts, parOpts := c.opts, c.opts
			seqOpts.Workers = 1
			parOpts.Workers = 8
			seq, seqEng := runEngineUpdates(t, c.query, c.n, c.dbSeed, seqOpts, c.sorted)
			par, parEng := runEngineUpdates(t, c.query, c.n, c.dbSeed, parOpts, c.sorted)
			assertUpdatesIdentical(t, seq, par)
			if seqEng.TotalRecoveries() != parEng.TotalRecoveries() {
				t.Errorf("TotalRecoveries: %d vs %d", seqEng.TotalRecoveries(), parEng.TotalRecoveries())
			}
			if c.name == "sbi/recovery" && seqEng.TotalRecoveries() == 0 {
				t.Fatalf("recovery fixture no longer triggers recoveries; the case tests nothing")
			}
		})
	}
}

// TestWorkerEquivalenceAboveThreshold repeats one shape at the production
// parThreshold with batches large enough to cross it, so the gate itself
// (fanout on, threshold not artificially lowered) is covered too.
func TestWorkerEquivalenceAboveThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture")
	}
	query := theoremQuery(t, "join_dim_group")
	opts := Options{Mode: ModeIOLAP, Batches: 4, Trials: 10, Seed: 5}
	seqOpts, parOpts := opts, opts
	seqOpts.Workers = 1
	parOpts.Workers = 8
	// 4 batches × ~1600 rows each ≫ parThreshold (512).
	seq, _ := runEngineUpdates(t, query, 6400, 21, seqOpts, false)
	par, _ := runEngineUpdates(t, query, 6400, 21, parOpts, false)
	assertUpdatesIdentical(t, seq, par)
}
