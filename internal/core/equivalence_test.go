package core

import (
	"math"
	"sort"
	"strings"
	"testing"

	"iolap/internal/bootstrap"
	"iolap/internal/exec"
	"iolap/internal/rel"
)

// The partition-parallel delta pipeline promises bit-identical results at any
// worker count: every parallel site is a deterministic shard of the work whose
// outputs merge in a fixed order, so Workers only changes wall clock. This
// suite enforces the promise by running each query shape with Workers=1 and
// Workers=8 and comparing every Update exactly — relations in physical order
// (kinds, payloads, multiplicities), every bootstrap estimate field, and every
// accounting metric. Options.ParThreshold pins the cutover to 1 so the small
// fixtures exercise the parallel paths that production only enters on large
// batches.

// sameF is float equality that treats NaN as equal to itself: a replicate can
// legitimately produce NaN (e.g. AVG over an empty replicate), and the
// invariant is "both runs produce the same bits", which NaN==NaN under ==
// would falsely fail.
func sameF(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func sameValue(a, b rel.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == rel.KFloat {
		return sameF(a.Float(), b.Float())
	}
	return a.Equal(b)
}

func sameEstimate(a, b bootstrap.Estimate) bool {
	return sameF(a.Value, b.Value) && sameF(a.Stdev, b.Stdev) &&
		sameF(a.CILo, b.CILo) && sameF(a.CIHi, b.CIHi) && sameF(a.RelStd, b.RelStd)
}

func assertUpdatesIdentical(t *testing.T, seq, par []*Update) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("update counts differ: Workers=1 produced %d, Workers=8 produced %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Batch != b.Batch || a.Batches != b.Batches {
			t.Fatalf("update %d: batch labels differ: %d/%d vs %d/%d", i, a.Batch, a.Batches, b.Batch, b.Batches)
		}
		if !sameF(a.Fraction, b.Fraction) {
			t.Errorf("batch %d: Fraction %v vs %v", a.Batch, a.Fraction, b.Fraction)
		}
		if a.Recomputed != b.Recomputed {
			t.Errorf("batch %d: Recomputed %d vs %d", a.Batch, a.Recomputed, b.Recomputed)
		}
		if a.NDSetRows != b.NDSetRows {
			t.Errorf("batch %d: NDSetRows %d vs %d", a.Batch, a.NDSetRows, b.NDSetRows)
		}
		if a.JoinStateBytes != b.JoinStateBytes || a.OtherStateBytes != b.OtherStateBytes {
			t.Errorf("batch %d: state bytes (%d,%d) vs (%d,%d)", a.Batch,
				a.JoinStateBytes, a.OtherStateBytes, b.JoinStateBytes, b.OtherStateBytes)
		}
		if a.JoinStateResidentBytes != b.JoinStateResidentBytes {
			t.Errorf("batch %d: JoinStateResidentBytes %d vs %d", a.Batch,
				a.JoinStateResidentBytes, b.JoinStateResidentBytes)
		}
		if a.SpillBytesWritten != b.SpillBytesWritten || a.SpillBytesRead != b.SpillBytesRead {
			t.Errorf("batch %d: spill bytes (w %d, r %d) vs (w %d, r %d)", a.Batch,
				a.SpillBytesWritten, a.SpillBytesRead, b.SpillBytesWritten, b.SpillBytesRead)
		}
		if a.ShuffleBytes != b.ShuffleBytes {
			t.Errorf("batch %d: ShuffleBytes %d vs %d", a.Batch, a.ShuffleBytes, b.ShuffleBytes)
		}
		if a.BroadcastBytes != b.BroadcastBytes {
			t.Errorf("batch %d: BroadcastBytes %d vs %d", a.Batch, a.BroadcastBytes, b.BroadcastBytes)
		}
		if a.Recoveries != b.Recoveries || a.RecoveredFrom != b.RecoveredFrom {
			t.Errorf("batch %d: recovery (%d from %d) vs (%d from %d)", a.Batch,
				a.Recoveries, a.RecoveredFrom, b.Recoveries, b.RecoveredFrom)
		}
		if len(a.Result.Tuples) != len(b.Result.Tuples) {
			t.Fatalf("batch %d: result sizes differ: %d vs %d rows\nseq:\n%s\npar:\n%s",
				a.Batch, len(a.Result.Tuples), len(b.Result.Tuples), a.Result, b.Result)
		}
		for ti := range a.Result.Tuples {
			ta, tb := a.Result.Tuples[ti], b.Result.Tuples[ti]
			if !sameF(ta.Mult, tb.Mult) || len(ta.Vals) != len(tb.Vals) {
				t.Fatalf("batch %d row %d: tuples differ: %v×%v vs %v×%v",
					a.Batch, ti, ta.Vals, ta.Mult, tb.Vals, tb.Mult)
			}
			for vi := range ta.Vals {
				if !sameValue(ta.Vals[vi], tb.Vals[vi]) {
					t.Fatalf("batch %d row %d col %d: %v (%s) vs %v (%s)", a.Batch, ti, vi,
						ta.Vals[vi], ta.Vals[vi].Kind(), tb.Vals[vi], tb.Vals[vi].Kind())
				}
			}
		}
		if len(a.Estimates) != len(b.Estimates) {
			t.Fatalf("batch %d: estimate row counts differ: %d vs %d", a.Batch, len(a.Estimates), len(b.Estimates))
		}
		for ri := range a.Estimates {
			ra, rb := a.Estimates[ri], b.Estimates[ri]
			if len(ra) != len(rb) {
				t.Fatalf("batch %d: estimate row %d widths differ: %d vs %d", a.Batch, ri, len(ra), len(rb))
			}
			for ci := range ra {
				if !sameEstimate(ra[ci], rb[ci]) {
					t.Fatalf("batch %d: estimate [%d][%d] differs: %+v vs %+v", a.Batch, ri, ci, ra[ci], rb[ci])
				}
			}
		}
	}
}

// sortSessionsByBufferTime orders the streamed table ascending by buffer_time,
// the adversarial arrival order that drives the running AVG(buffer_time)
// monotonically upward and forces variation-range failures under a tight
// slack (the recipe of TestTheorem1UnderRecovery).
func sortSessionsByBufferTime(db *exec.DB) {
	src, _ := db.Get("sessions")
	sort.SliceStable(src.Tuples, func(i, j int) bool {
		return src.Tuples[i].Vals[1].Float() < src.Tuples[j].Vals[1].Float()
	})
}

// skewSessions rewrites the sessions table so one group dominates: ~90% of
// rows land on cdn "east". This is the fixture shape where hash-sharded group
// ownership degenerates to single-worker execution — the scheduling bug the
// heavy/light fold split fixes — and the equivalence suite must hold on it
// like on any other distribution.
func skewSessions(db *exec.DB) {
	src, _ := db.Get("sessions")
	for i := range src.Tuples {
		if i%10 != 0 {
			src.Tuples[i].Vals[3] = rel.String("east")
		}
	}
}

func runEngineUpdates(t *testing.T, query string, n int, dbSeed int64, opts Options, sorted, skewed bool) ([]*Update, *Engine) {
	t.Helper()
	db := testDB(n, dbSeed)
	if skewed {
		skewSessions(db)
	}
	if sorted {
		sortSessionsByBufferTime(db)
	}
	eng, err := NewEngine(planQuery(t, query), db, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	us, err := eng.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return us, eng
}

func theoremQuery(t *testing.T, name string) string {
	t.Helper()
	for _, q := range theoremQueries {
		if q.name == name {
			return q.query
		}
	}
	t.Fatalf("no theorem query named %q", name)
	return ""
}

func TestWorkerEquivalenceDeltaPipeline(t *testing.T) {
	cases := []struct {
		name   string
		query  string
		n      int
		dbSeed int64
		opts   Options
		sorted bool
		skewed bool
	}{
		{"flat_group_by/iolap", theoremQuery(t, "flat_group_by"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"join_dim_group/iolap", theoremQuery(t, "join_dim_group"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"union_all/iolap", theoremQuery(t, "union_all"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"case_expression/iolap", theoremQuery(t, "case_expression"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"nested_correlated/iolap", theoremQuery(t, "nested_correlated"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"sbi/iolap", sbiQuery, 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"sbi/opt1", sbiQuery, 240, 11,
			Options{Mode: ModeOPT1, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"sbi/hda", sbiQuery, 240, 11,
			Options{Mode: ModeHDA, Batches: 6, Trials: 25, Seed: 3}, false, false},
		// Adversarial arrival order + tight slack: recovery (snapshot
		// restore + merged-delta replay) must also be worker-invariant.
		{"sbi/recovery", sbiQuery, 200, 7,
			Options{Mode: ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4}, true, false},
		// One group holds ~90% of the rows: the heavy-group replicate-split
		// and size-hinted light-group scheduling must stay bit-identical to
		// the sequential fold under extreme skew.
		{"skewed_group/iolap", theoremQuery(t, "flat_group_by"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, true},
		{"skewed_group/join", theoremQuery(t, "join_dim_group"), 240, 11,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, true},
		// Skew + adversarial order + zero slack: the failure-recovery path
		// (snapshot restore, merged-delta replay) over a skewed fold.
		{"skewed_group/recovery", sbiQuery, 200, 7,
			Options{Mode: ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4}, true, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seqOpts, parOpts := c.opts, c.opts
			seqOpts.Workers, seqOpts.ParThreshold = 1, 1
			parOpts.Workers, parOpts.ParThreshold = 8, 1
			seq, seqEng := runEngineUpdates(t, c.query, c.n, c.dbSeed, seqOpts, c.sorted, c.skewed)
			par, parEng := runEngineUpdates(t, c.query, c.n, c.dbSeed, parOpts, c.sorted, c.skewed)
			assertUpdatesIdentical(t, seq, par)
			if seqEng.TotalRecoveries() != parEng.TotalRecoveries() {
				t.Errorf("TotalRecoveries: %d vs %d", seqEng.TotalRecoveries(), parEng.TotalRecoveries())
			}
			if strings.HasSuffix(c.name, "recovery") && seqEng.TotalRecoveries() == 0 {
				t.Fatalf("recovery fixture no longer triggers recoveries; the case tests nothing")
			}
		})
	}
}

// TestWorkerEquivalenceIntermediateWorkers sweeps the skewed fixture across
// worker counts: the deterministic-scheduling promise is per-count, not just
// at the 1-vs-8 extremes (a chunk-boundary bug could hide at w=2).
func TestWorkerEquivalenceIntermediateWorkers(t *testing.T) {
	query := theoremQuery(t, "flat_group_by")
	opts := Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3, ParThreshold: 1, Workers: 1}
	ref, _ := runEngineUpdates(t, query, 240, 11, opts, false, true)
	for _, w := range []int{2, 8} {
		w := w
		t.Run(itoa(w)+"_workers", func(t *testing.T) {
			o := opts
			o.Workers = w
			got, _ := runEngineUpdates(t, query, 240, 11, o, false, true)
			assertUpdatesIdentical(t, ref, got)
		})
	}
}

// TestWorkerEquivalenceAboveThreshold repeats one shape with the adaptive
// cutover (ParThreshold 0) and batches large enough to cross it, so the gate
// itself — EWMA-derived thresholds deciding mid-run which sites fan out —
// is covered too. The adaptive gate's timing-dependent choices must be
// invisible in the output because every gated path is bit-identical.
func TestWorkerEquivalenceAboveThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture")
	}
	query := theoremQuery(t, "join_dim_group")
	opts := Options{Mode: ModeIOLAP, Batches: 4, Trials: 10, Seed: 5}
	seqOpts, parOpts := opts, opts
	seqOpts.Workers = 1
	parOpts.Workers = 8
	// 4 batches × ~1600 rows each ≫ every cold-start cutover.
	seq, _ := runEngineUpdates(t, query, 6400, 21, seqOpts, false, false)
	par, _ := runEngineUpdates(t, query, 6400, 21, parOpts, false, false)
	assertUpdatesIdentical(t, seq, par)
}
