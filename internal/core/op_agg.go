package core

import (
	"math"

	"iolap/internal/agg"
	"iolap/internal/bootstrap"
	"iolap/internal/cluster"
	"iolap/internal/delta"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// opAgg implements the AGGREGATE delta rule with the three-tier state of
// Sections 4.2 and 5:
//
//   - sketch: certain-multiplicity inputs whose aggregated columns are
//     deterministic fold permanently into per-group accumulator vectors
//     (running value + B bootstrap replicates) — sub-linear space.
//   - lineage rows: certain-multiplicity inputs whose aggregated columns
//     are uncertain cannot be sketched (Section 4.2); the rows are kept and
//     their contributions recomputed each batch by lazily re-evaluating the
//     aggregate arguments against the carried lineage (Section 6.2).
//   - pending: tuple-uncertain inputs arrive fresh every batch from the
//     upstream non-deterministic sets and are folded into per-batch scratch
//     accumulators.
//
// Every batch the operator publishes its current output table (value,
// replicates, variation range per group and aggregate) for lineage
// resolution, observes the variation ranges R(u) (Section 5.1, reporting
// integrity failures to the controller), and emits each group's row exactly
// once — with lineage references in the uncertain columns — as soon as the
// group's existence is certain.
type opAgg struct {
	emitCounts
	node  *plan.Aggregate
	child operator

	// pubID is the id this aggregate publishes its table under and stamps
	// into lineage refs. Normally the plan node's id; a shared aggregate
	// entry (shared.go) overrides it with a session-independent id so
	// equivalent subtrees in different sessions resolve the same refs.
	pubID int

	specs       []aggSpecC
	hasLazy     bool
	scaleExp    int
	trials      int
	slack       float64
	minSupport  int
	trackRanges bool
	uncInput    map[int]bool // child columns that are uncertain

	groups map[string]*aggGroup
	order  []string

	// scratchPool reuses the per-batch pending/lazy accumulator vectors
	// across batches (epoch-tagged) to avoid re-allocating
	// O(groups x trials) accumulators every batch.
	scratchPool map[*aggGroup]*scratchEntry
	epoch       int
	// mergeBuf is a per-spec reusable vector used to read sketch+scratch
	// without cloning the sketch.
	mergeBuf []*agg.Vector
	// keyBuf is the group-key encoding scratch: lookups index the groups
	// map by string(keyBuf), which the compiler compiles to a no-copy,
	// no-allocation access; only a genuinely new group materialises the key.
	keyBuf []byte
	// batchable marks the operator for the columnar Phase A fold: every
	// aggregate argument is COUNT(*) or a bare column (batchCols holds the
	// index, -1 for COUNT(*)) and no spec is lazy, so arguments gather
	// straight from the column banks without expression evaluation.
	batchable bool
	batchCols []int32
	// gather is the batched fold's reusable argument-gather scratch (the
	// parallel heavy-group path; concurrent light-group tasks use per-task
	// buffers).
	gather gatherScratch
	// rowGroups is the batched fold's reusable row -> group map for one
	// batch, filled by the bookkeeping pass.
	rowGroups []*aggGroup
	// repsBuf is the sequential fold's reusable replicate-argument buffer.
	repsBuf []float64
	// groupBytes is the estimated per-group sketch footprint (constant per
	// operator), precomputed so stateBytes never allocates probe vectors.
	groupBytes int
}

// scratchEntry is one group's reusable scratch vectors.
type scratchEntry struct {
	vecs  []*agg.Vector
	epoch int
}

// aggSpecC is one compiled aggregate.
type aggSpecC struct {
	fn           *agg.Func
	arg          expr.Expr // nil for COUNT(*)
	argUncertain bool      // argument reads uncertain columns (lazy spec)
	uncertainOut bool      // output column carries attribute uncertainty
	outCol       int       // column index in the aggregate's output schema
}

type aggGroup struct {
	key    []rel.Value
	sketch []*agg.Vector // per spec (allocated lazily per group)
	lazy   delta.RowSet  // lineage rows (only when hasLazy)
	ranges []*bootstrap.Range
	// support counts the certain input rows folded so far; variation
	// ranges only become binding once it reaches the engine's
	// MinRangeSupport (degenerate bootstrap distributions of near-empty
	// groups would otherwise guarantee spurious integrity failures).
	support int
	certain bool
	emitted bool
}

func newOpAgg(t *plan.Aggregate, child operator, an *plan.Analysis, scaleExp int, opts Options, trackRanges bool) *opAgg {
	info := an.Info[t.ID()]
	childInfo := an.Info[t.Child.ID()]
	op := &opAgg{
		node:        t,
		child:       child,
		pubID:       t.ID(),
		scaleExp:    scaleExp,
		trials:      opts.Trials,
		slack:       opts.Slack,
		minSupport:  opts.MinRangeSupport,
		trackRanges: trackRanges,
		groups:      make(map[string]*aggGroup),
		uncInput:    make(map[int]bool),
	}
	for i, u := range childInfo.UncertainCols {
		if u {
			op.uncInput[i] = true
		}
	}
	op.batchable = true
	op.batchCols = make([]int32, len(t.Aggs))
	for i, sp := range t.Aggs {
		c := aggSpecC{
			fn:     sp.Fn,
			arg:    sp.Arg,
			outCol: len(t.GroupBy) + i,
		}
		c.uncertainOut = info.UncertainCols[c.outCol]
		if sp.Arg != nil {
			for _, col := range sp.Arg.Cols(nil) {
				if op.uncInput[col] {
					c.argUncertain = true
				}
			}
		}
		if c.argUncertain {
			op.hasLazy = true
		}
		op.batchCols[i] = -1
		if sp.Arg != nil {
			if col, ok := sp.Arg.(*expr.Col); ok {
				op.batchCols[i] = int32(col.Idx)
			} else {
				op.batchable = false
			}
		}
		op.specs = append(op.specs, c)
	}
	if op.hasLazy {
		// Lazy specs fold from lineage rows each batch and certain rows
		// must be cloned into the lineage sets — row-path bookkeeping.
		op.batchable = false
	}
	op.groupBytes = 64
	for i := range op.specs {
		op.groupBytes += agg.NewVector(op.specs[i].fn, op.trials).SizeBytes()
	}
	return op
}

// anyUncertainOut reports whether any aggregate column is uncertain.
func (o *opAgg) anyUncertainOut() bool {
	for i := range o.specs {
		if o.specs[i].uncertainOut {
			return true
		}
	}
	return false
}

func (o *opAgg) getGroup(vals []rel.Value, key string) *aggGroup {
	g, ok := o.groups[key]
	if !ok {
		keyVals := make([]rel.Value, len(o.node.GroupBy))
		for i, c := range o.node.GroupBy {
			keyVals[i] = vals[c]
		}
		g = o.newGroup(key, keyVals)
	}
	return g
}

// newGroup registers a group under key with the given grouping values.
func (o *opAgg) newGroup(key string, keyVals []rel.Value) *aggGroup {
	g := &aggGroup{
		key:    keyVals,
		sketch: make([]*agg.Vector, len(o.specs)),
		ranges: make([]*bootstrap.Range, len(o.specs)),
	}
	for i, sp := range o.specs {
		g.sketch[i] = agg.NewVector(sp.fn, o.trials)
		// Only smooth aggregates get variation ranges: MIN/MAX and
		// COUNT(DISTINCT) drift monotonically under insertions, so a
		// range would fail its integrity check on almost every batch;
		// their dependents simply stay non-deterministic.
		if sp.uncertainOut && sp.fn.Smooth {
			g.ranges[i] = bootstrap.NewRange(o.slack)
		}
	}
	o.groups[key] = g
	o.order = append(o.order, key)
	return g
}

// rowGroup resolves a row's group through the reusable key scratch: the map
// lookup indexes by string(keyBuf) without allocating; only a miss (a new
// group) pays for materialising the key string.
func (o *opAgg) rowGroup(vals []rel.Value) *aggGroup {
	o.keyBuf = rel.EncodeKeyInto(o.keyBuf[:0], vals, o.node.GroupBy)
	if g, ok := o.groups[string(o.keyBuf)]; ok {
		return g
	}
	return o.getGroup(vals, string(o.keyBuf))
}

// argValue evaluates one aggregate argument under current values.
// ok=false means NULL (the row is skipped for this aggregate).
func argValue(sp aggSpecC, r delta.Row, bc *batchContext) (float64, bool) {
	if sp.arg == nil {
		return 0, true // COUNT(*)
	}
	v := sp.arg.Eval(r.Vals, bc)
	if v.IsNull() {
		return 0, false
	}
	if sp.fn.AcceptsAny {
		return v.NumericKey(), true
	}
	if !v.IsNumeric() {
		return 0, false
	}
	return v.Float(), true
}

// argReps evaluates the per-replicate values of an uncertain argument into
// dst (grown as needed). Callers that fold the result immediately pass a
// reusable scratch; callers that retain it pass nil.
func argReps(sp aggSpecC, r delta.Row, bc *batchContext, dst []float64) []float64 {
	if bc.trials == 0 {
		return nil
	}
	if cap(dst) < bc.trials {
		dst = make([]float64, bc.trials)
	}
	reps := dst[:bc.trials]
	for b := 0; b < bc.trials; b++ {
		v := sp.arg.EvalRep(r.Vals, bc, b)
		if v.IsNumeric() {
			reps[b] = v.Float()
		} else {
			reps[b] = math.NaN()
		}
	}
	return reps
}

// gatherScratch holds one batched fold's gathered argument run: values,
// multiplicities, and source-row indexes (the AddBatch calling
// convention) for one (group, spec) pair at a time.
type gatherScratch struct {
	vals, mults []float64
	rows        []int32
}

func (sc *gatherScratch) reset(n int) {
	if cap(sc.vals) < n {
		sc.vals = make([]float64, 0, n)
		sc.mults = make([]float64, 0, n)
		sc.rows = make([]int32, 0, n)
	}
	sc.vals, sc.mults, sc.rows = sc.vals[:0], sc.mults[:0], sc.rows[:0]
}

// foldCB returns the input's columnar view when Phase A may fold batched:
// a batchable operator (bare-column arguments, no lazy specs), bootstrap
// enabled with a weight slab of matching stride, no unresolved refs, and
// no distributed transport.
func (o *opAgg) foldCB(bc *batchContext, in output) *colBatch {
	cb := in.cb
	if cb == nil || !bc.vec || !o.batchable || o.trials == 0 || len(in.news) == 0 ||
		bc.exch != nil || cb.slab == nil || cb.trials != o.trials || cb.cols.HasRefs() {
		return nil
	}
	return cb
}

// foldCertainBatch is Phase A over the columnar view: group bookkeeping
// stays a sequential pass in arrival order (same keys — the columnar key
// encoder is byte-identical to the row one). The sequential fold then walks
// rows in arrival order reading arguments straight from the column banks —
// the weight slab streams sequentially, exactly like the row path, with the
// expression layer gone. The parallel fold gathers each group's argument
// run and replicate-splits it via the batched kernels, mirroring the row
// path's heavy/light split. Per accumulator slot the floating-point operand
// sequence is exactly the row path's in both shapes, so results are
// bit-identical.
func (o *opAgg) foldCertainBatch(bc *batchContext, news []delta.Row, cb *colBatch) {
	cols := cb.cols
	total := len(news)
	if cap(o.rowGroups) < total {
		o.rowGroups = make([]*aggGroup, total)
	}
	rg := o.rowGroups[:total]
	for j := range news {
		src := cb.src(j)
		o.keyBuf = cols.EncodeKeyInto(o.keyBuf[:0], src, o.node.GroupBy)
		g, ok := o.groups[string(o.keyBuf)]
		if !ok {
			keyVals := make([]rel.Value, len(o.node.GroupBy))
			for i, c := range o.node.GroupBy {
				keyVals[i] = cols.Value(c, src)
			}
			g = o.newGroup(string(o.keyBuf), keyVals)
		}
		g.certain = true
		g.support++
		rg[j] = g
	}
	if !bc.fanout(cluster.CostFold, total) {
		bc.cost.Timed(cluster.CostFold, total, 1, func() {
			for j := range news {
				src := cb.src(j)
				r := &news[j]
				for si := range o.specs {
					val := 0.0
					if c := o.batchCols[si]; c >= 0 {
						v, ok := cols.ArgValue(int(c), src, o.specs[si].fn.AcceptsAny)
						if !ok {
							continue // NULL: the row is skipped for this aggregate
						}
						val = v
					}
					rg[j].sketch[si].Add(val, r.Mult, r.W)
				}
			}
		})
		return
	}
	w := bc.pool.Workers()
	var batchGroups []*aggGroup
	groupRows := make(map[*aggGroup][]int32)
	for j := range news {
		g := rg[j]
		if _, seen := groupRows[g]; !seen {
			batchGroups = append(batchGroups, g)
		}
		groupRows[g] = append(groupRows[g], int32(cb.src(j)))
	}
	var heavy, light []*aggGroup
	for _, g := range batchGroups {
		if len(groupRows[g])*w > total {
			heavy = append(heavy, g)
		} else {
			light = append(light, g)
		}
	}
	bc.cost.Timed(cluster.CostFold, total, w, func() {
		for _, g := range heavy {
			o.foldGroupBatch(g, cols, cb.slab, groupRows[g], &o.gather, bc.pool.Map, w)
		}
		if len(light) > 0 {
			bc.pool.MapSized(len(light),
				func(gi int) int { return len(groupRows[light[gi]]) },
				func(gi int) {
					// Light tasks run concurrently, so each gathers into
					// its own buffers.
					var sc gatherScratch
					o.foldGroupBatch(light[gi], cols, cb.slab, groupRows[light[gi]], &sc, nil, 0)
				})
		}
	})
}

// foldGroupBatch folds one group's source rows: per spec, gather the
// argument run (NULL rows skipped, exactly like argValue) and fold it in
// one batched call — replicate-split when pmap is non-nil.
func (o *opAgg) foldGroupBatch(g *aggGroup, cols *rel.Columns, slab []float64, rows []int32, sc *gatherScratch, pmap func(n int, fn func(i int)), parts int) {
	for si := range o.specs {
		sp := &o.specs[si]
		argCol := o.batchCols[si]
		sc.reset(len(rows))
		for _, src := range rows {
			val := 0.0
			if argCol >= 0 {
				v, ok := cols.ArgValue(int(argCol), int(src), sp.fn.AcceptsAny)
				if !ok {
					continue // NULL: the row is skipped for this aggregate
				}
				val = v
			}
			sc.vals = append(sc.vals, val)
			sc.mults = append(sc.mults, cols.Mult(int(src)))
			sc.rows = append(sc.rows, src)
		}
		if pmap != nil {
			g.sketch[si].AddBatchPar(sc.vals, sc.mults, slab, sc.rows, pmap, parts)
		} else {
			g.sketch[si].AddBatch(sc.vals, sc.mults, slab, sc.rows)
		}
	}
}

func (o *opAgg) step(bc *batchContext) (output, error) {
	in, err := o.child.step(bc)
	if err != nil {
		return output{}, err
	}
	// A grouped aggregate repartitions its input by key.
	if bc.metrics != nil && len(o.node.GroupBy) > 0 {
		n := 0
		for _, r := range in.news {
			n += r.SizeBytes()
		}
		for _, r := range in.unc {
			n += r.SizeBytes()
		}
		bc.metrics.RecordShuffleBytes(n)
	}
	// Global aggregates produce their single output row from batch 1
	// regardless of input (SQL semantics: the row always exists).
	if len(o.node.GroupBy) == 0 && len(o.groups) == 0 {
		g := o.getGroup(nil, "")
		g.certain = true
	}
	// Phase A: fold new certain rows. Group creation and bookkeeping are
	// sequential (deterministic group order); the sketch folding — the
	// expensive part, O(rows x trials) accumulator adds — runs
	// partition-parallel. Groups are split by batch share:
	//
	//   - A *heavy* group (rows·workers > batch rows, i.e. more rows than an
	//     even per-worker share) cannot be balanced by placement — under the
	//     old hash-sharded ownership one worker inherited nearly the whole
	//     batch on skewed keys. Its sketch folds via FoldPar, which splits
	//     the replicate dimension across workers; each accumulator still
	//     receives its adds in row order, so the result is bit-identical.
	//   - *Light* groups become one task each, scheduled over the
	//     work-stealing pool with their row counts as size hints, so many
	//     small groups pack evenly no matter how the keys hash.
	foldRow := func(g *aggGroup, r delta.Row) {
		for si := range o.specs {
			sp := &o.specs[si]
			if sp.argUncertain {
				continue // folded from lineage rows each batch
			}
			val, ok := argValue(*sp, r, bc)
			if !ok {
				continue
			}
			g.sketch[si].Add(val, r.Mult, r.W)
		}
	}
	if cb := o.foldCB(bc, in); cb != nil {
		o.foldCertainBatch(bc, in.news, cb)
	} else if bc.fanout(cluster.CostFold, len(in.news)) && o.trials > 0 {
		w := bc.pool.Workers()
		total := len(in.news)
		var batchGroups []*aggGroup
		groupRows := make(map[*aggGroup][]int32)
		for i, r := range in.news {
			g := o.rowGroup(r.Vals)
			g.certain = true
			g.support++
			if o.hasLazy {
				g.lazy.Add(r.Clone())
			}
			if _, ok := groupRows[g]; !ok {
				batchGroups = append(batchGroups, g)
			}
			groupRows[g] = append(groupRows[g], int32(i))
		}
		var heavy, light []*aggGroup
		for _, g := range batchGroups {
			if len(groupRows[g])*w > total {
				heavy = append(heavy, g)
			} else {
				light = append(light, g)
			}
		}
		bc.cost.Timed(cluster.CostFold, total, w, func() {
			var samples []agg.Sample
			for _, g := range heavy {
				for si := range o.specs {
					sp := &o.specs[si]
					if sp.argUncertain {
						continue // folded from lineage rows each batch
					}
					samples = samples[:0]
					for _, i := range groupRows[g] {
						r := in.news[i]
						val, ok := argValue(*sp, r, bc)
						if !ok {
							continue
						}
						samples = append(samples, agg.Sample{Val: val, Mult: r.Mult, W: r.W})
					}
					g.sketch[si].FoldPar(samples, bc.pool.Map, w)
				}
			}
			if len(light) > 0 {
				bc.pool.MapSized(len(light),
					func(gi int) int { return len(groupRows[light[gi]]) },
					func(gi int) {
						g := light[gi]
						for _, i := range groupRows[g] {
							foldRow(g, in.news[i])
						}
					})
			}
		})
	} else {
		seqFold := func() {
			for _, r := range in.news {
				g := o.rowGroup(r.Vals)
				g.certain = true
				g.support++
				if o.hasLazy {
					g.lazy.Add(r.Clone())
				}
				foldRow(g, r)
			}
		}
		if o.trials > 0 {
			bc.cost.Timed(cluster.CostFold, len(in.news), 1, seqFold)
		} else {
			// Trial-free folds cost ~1/(1+B) of a bootstrap fold per row;
			// feeding them into the fold EWMA would poison the cutover.
			seqFold()
		}
	}
	// Phase B: per-batch scratch contributions — lineage rows (lazy
	// re-evaluation) and pending tuple-uncertain rows. Scratch vectors are
	// pooled across batches and lazily reset on first touch of the epoch.
	o.epoch++
	if o.scratchPool == nil {
		o.scratchPool = make(map[*aggGroup]*scratchEntry)
	}
	scratchVec := func(g *aggGroup, si int) *agg.Vector {
		e := o.scratchPool[g]
		if e == nil {
			e = &scratchEntry{vecs: make([]*agg.Vector, len(o.specs))}
			o.scratchPool[g] = e
		}
		if e.epoch != o.epoch {
			e.epoch = o.epoch
			for _, v := range e.vecs {
				if v != nil {
					v.Reset()
				}
			}
		}
		if e.vecs[si] == nil {
			e.vecs[si] = agg.NewVector(o.specs[si].fn, o.trials)
		}
		return e.vecs[si]
	}
	liveScratch := func(g *aggGroup, si int) *agg.Vector {
		e := o.scratchPool[g]
		if e == nil || e.epoch != o.epoch {
			return nil
		}
		return e.vecs[si]
	}
	// The scratch worklist: lineage rows first (per group, in emission
	// order), then pending tuple-uncertain rows (in arrival order) — the
	// order the sequential loops use, which fixes each scratch vector's fold
	// order. Lineage rows fold only the lazy (uncertain-argument) specs;
	// pending rows fold every spec.
	type scratchRow struct {
		g    *aggGroup
		row  delta.Row
		pend bool
	}
	var work []scratchRow
	if o.hasLazy {
		for _, key := range o.order {
			g := o.groups[key]
			if g.lazy.Len() == 0 {
				continue
			}
			bc.recomputed += g.lazy.Len()
			for _, r := range g.lazy.Rows {
				work = append(work, scratchRow{g: g, row: r})
			}
		}
	}
	touched := make(map[*aggGroup]bool)
	bc.recomputed += len(in.unc)
	for _, r := range in.unc {
		g := o.rowGroup(r.Vals)
		touched[g] = true
		work = append(work, scratchRow{g: g, row: r, pend: true})
	}
	applies := func(wr *scratchRow, si int) bool {
		return wr.pend || o.specs[si].argUncertain
	}
	if !bc.fanout(cluster.CostFold, len(work)) || o.trials == 0 {
		for wi := range work {
			wr := &work[wi]
			if !wr.pend && !bc.lazy {
				regenerate(wr.row, bc)
			}
			for si := range o.specs {
				if !applies(wr, si) {
					continue
				}
				sp := &o.specs[si]
				val, ok := argValue(*sp, wr.row, bc)
				if !ok {
					continue
				}
				if sp.argUncertain {
					o.repsBuf = argReps(*sp, wr.row, bc, o.repsBuf)
					scratchVec(wr.g, si).AddRep(val, o.repsBuf, wr.row.Mult, wr.row.W)
				} else {
					scratchVec(wr.g, si).Add(val, wr.row.Mult, wr.row.W)
				}
			}
		}
	} else {
		// Parallel scratch fold, in three deterministic stages.
		// 1. Pre-create every scratch vector sequentially (pool-map mutation
		//    and epoch reset are not concurrency-safe).
		for wi := range work {
			wr := &work[wi]
			for si := range o.specs {
				if applies(wr, si) {
					scratchVec(wr.g, si)
				}
			}
		}
		// 2. Evaluate arguments and replicates chunk-parallel — the
		//    expensive part: argReps is O(trials) expression evaluations per
		//    row, and the non-lazy modes additionally regenerate each
		//    lineage row.
		type evalCell struct {
			val  float64
			reps []float64
			ok   bool
		}
		evals := make([][]evalCell, len(work))
		bc.pool.MapChunks(len(work), func(_, lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				wr := &work[wi]
				if !wr.pend && !bc.lazy {
					regenerate(wr.row, bc)
				}
				cells := make([]evalCell, len(o.specs))
				for si := range o.specs {
					if !applies(wr, si) {
						continue
					}
					sp := &o.specs[si]
					val, ok := argValue(*sp, wr.row, bc)
					if !ok {
						continue
					}
					cells[si] = evalCell{val: val, ok: true}
					if sp.argUncertain {
						// Retained until the gather stage — cannot reuse
						// a per-lane scratch here.
						cells[si].reps = argReps(*sp, wr.row, bc, nil)
					}
				}
				evals[wi] = cells
			}
		})
		// 3. Gather per-vector sample lists in work order and fold. Vectors
		//    split heavy/light exactly like Phase A: a vector holding more
		//    than an even per-worker share of the samples replicate-splits
		//    (FoldPar); the rest are size-hinted tasks for the stealing
		//    scheduler. Either way every vector folds its samples in the
		//    exact order the sequential loop would.
		type scratchItem struct {
			vec     *agg.Vector
			samples []agg.Sample
		}
		var items []*scratchItem
		byVec := make(map[*agg.Vector]*scratchItem)
		for wi := range work {
			wr := &work[wi]
			for si := range evals[wi] {
				cell := &evals[wi][si]
				if !cell.ok {
					continue
				}
				vec := scratchVec(wr.g, si)
				it := byVec[vec]
				if it == nil {
					it = &scratchItem{vec: vec}
					byVec[vec] = it
					items = append(items, it)
				}
				it.samples = append(it.samples, agg.Sample{Val: cell.val, Reps: cell.reps, Mult: wr.row.Mult, W: wr.row.W})
			}
		}
		w := bc.pool.Workers()
		totalSamples := 0
		for _, it := range items {
			totalSamples += len(it.samples)
		}
		var heavyIt, lightIt []*scratchItem
		for _, it := range items {
			if len(it.samples)*w > totalSamples {
				heavyIt = append(heavyIt, it)
			} else {
				lightIt = append(lightIt, it)
			}
		}
		for _, it := range heavyIt {
			it.vec.FoldPar(it.samples, bc.pool.Map, w)
		}
		if len(lightIt) > 0 {
			bc.pool.MapSized(len(lightIt),
				func(i int) int { return len(lightIt[i].samples) },
				func(i int) { lightIt[i].vec.Fold(lightIt[i].samples) })
		}
	}
	// Phase C: read results, observe variation ranges, publish the output
	// table, emit rows.
	scale := 1.0
	for k := 0; k < o.scaleExp; k++ {
		scale *= bc.scale
	}
	// HDA semantics (Section 4.3): an uncertain aggregate's output rows are
	// materialised values whose update is delete+insert, so every group is
	// re-emitted (tuple-uncertain) each batch and everything downstream
	// recomputes; there are no stable lineage references.
	hdaRecompute := bc.hdaAgg && o.anyUncertainOut()
	table := &aggTable{groupCols: len(o.node.GroupBy), byKey: make(map[string]*aggPub, len(o.groups))}
	var out output
	for _, key := range o.order {
		g := o.groups[key]
		pub := &aggPub{vals: make([]expr.UncValue, len(o.specs))}
		rowVals := make([]rel.Value, 0, len(g.key)+len(o.specs))
		rowVals = append(rowVals, g.key...)
		for si := range o.specs {
			sp := &o.specs[si]
			vec := g.sketch[si]
			if sv := liveScratch(g, si); sv != nil {
				// Read through a reusable merge buffer: reset + two
				// merges cost no allocation (vs cloning the sketch).
				if o.mergeBuf == nil {
					o.mergeBuf = make([]*agg.Vector, len(o.specs))
				}
				if o.mergeBuf[si] == nil {
					o.mergeBuf[si] = agg.NewVector(sp.fn, o.trials)
				}
				buf := o.mergeBuf[si]
				buf.Reset()
				buf.Merge(vec)
				buf.Merge(sv)
				vec = buf
			}
			val := vec.Result(scale)
			var reps []float64
			if o.trials > 0 {
				reps = vec.RepResults(scale, nil)
			}
			rng := bootstrap.Full()
			if o.trackRanges && sp.uncertainOut && g.ranges[si] != nil &&
				o.trials > 0 && bc.prune && g.support >= o.minSupport {
				ok, recoverTo := g.ranges[si].Observe(bc.batch, val, reps)
				if !ok {
					bc.failures = append(bc.failures, failure{op: o.pubID, recoverTo: recoverTo})
				}
				rng = g.ranges[si].Current()
			} else if !sp.uncertainOut {
				rng = bootstrap.Point(val)
			}
			pub.vals[si] = expr.UncValue{Value: rel.Float(val), Reps: reps, Range: rng}
			if sp.uncertainOut && !hdaRecompute {
				rowVals = append(rowVals, rel.NewRef(rel.Ref{Op: o.pubID, Key: key, Col: sp.outCol}))
			} else {
				rowVals = append(rowVals, rel.Float(val))
			}
		}
		table.byKey[key] = pub
		if hdaRecompute {
			// Delete+insert value updates: every live group flows as a
			// tuple-uncertain row, every batch.
			if g.certain || touched[g] {
				out.unc = append(out.unc, delta.Row{Vals: rowVals, Mult: 1})
			}
			continue
		}
		if g.certain {
			if !g.emitted {
				g.emitted = true
				out.news = append(out.news, delta.Row{Vals: rowVals, Mult: 1})
			}
		} else if touched[g] {
			out.unc = append(out.unc, delta.Row{Vals: rowVals, Mult: 1})
		}
	}
	o.record(out)
	bc.publish(o.pubID, table)
	// The published table is broadcast to workers for lazy evaluation
	// (Section 6.2's broadcast join) — replication traffic, not a
	// repartition, so it books as broadcast bytes.
	if bc.metrics != nil {
		n := 0
		for _, pub := range table.byKey {
			n += 48
			for _, uv := range pub.vals {
				n += 16 + 8*len(uv.Reps)
			}
		}
		bc.metrics.RecordBroadcastBytes(n)
	}
	return out, nil
}

// aggGroupSnap is one group's state in compact snapshot form: vector
// sketches are stored as bank slabs (agg.VectorSnap), not cloned Vectors —
// the snapshot holds one contiguous copy per sketch and restore replays it
// into the live group's banks in place.
type aggGroupSnap struct {
	key     []rel.Value
	sketch  []*agg.VectorSnap
	lazy    delta.RowSet
	ranges  []*bootstrap.Range
	support int
	certain bool
	emitted bool
}

type aggSnap struct {
	groups map[string]*aggGroupSnap
	order  []string
}

func (o *opAgg) snapshot() interface{} {
	s := aggSnap{groups: make(map[string]*aggGroupSnap, len(o.groups)), order: append([]string(nil), o.order...)}
	for k, g := range o.groups {
		ng := &aggGroupSnap{
			key:     append([]rel.Value(nil), g.key...),
			sketch:  make([]*agg.VectorSnap, len(g.sketch)),
			ranges:  make([]*bootstrap.Range, len(g.ranges)),
			support: g.support,
			certain: g.certain,
			emitted: g.emitted,
		}
		for i, v := range g.sketch {
			ng.sketch[i] = v.Snapshot()
		}
		for i, r := range g.ranges {
			if r != nil {
				ng.ranges[i] = r.Snapshot()
			}
		}
		ng.lazy.Restore(&g.lazy)
		s.groups[k] = ng
	}
	return s
}

func (o *opAgg) restore(snap interface{}) {
	s := snap.(aggSnap)
	// The scratch pool is keyed by group pointer; a restore can drop or
	// rebuild groups, so drop the pool rather than strand entries on dead
	// pointers.
	o.scratchPool = nil
	old := o.groups
	o.groups = make(map[string]*aggGroup, len(s.groups))
	o.order = append([]string(nil), s.order...)
	for k, g := range s.groups {
		// Reuse the live group where one survives: the sketch banks are
		// restored in place by a slab copy instead of reallocating. The
		// snapshot stays untouched either way — the same snap may be
		// replayed again by a later recovery attempt.
		ng := old[k]
		if ng == nil || len(ng.sketch) != len(g.sketch) {
			ng = &aggGroup{sketch: make([]*agg.Vector, len(g.sketch))}
		}
		ng.key = append(ng.key[:0], g.key...)
		ng.support, ng.certain, ng.emitted = g.support, g.certain, g.emitted
		for i, vs := range g.sketch {
			if ng.sketch[i] == nil || !vs.RestoreInto(ng.sketch[i]) {
				ng.sketch[i] = vs.Materialize()
			}
		}
		if len(ng.ranges) != len(g.ranges) {
			ng.ranges = make([]*bootstrap.Range, len(g.ranges))
		}
		for i, r := range g.ranges {
			if r != nil {
				ng.ranges[i] = r.Snapshot()
			} else {
				ng.ranges[i] = nil
			}
		}
		ng.lazy.Restore(&g.lazy)
		o.groups[k] = ng
	}
}

func (o *opAgg) stateBytes() int {
	// Sketch footprints are constant per spec (precomputed at construction
	// so this never allocates probe vectors).
	n := o.groupBytes * len(o.groups)
	if o.hasLazy {
		for _, g := range o.groups {
			n += g.lazy.SizeBytes()
		}
	}
	return n
}

func (o *opAgg) kind() string { return "aggregate" }
