package core

import (
	"math"

	"iolap/internal/agg"
	"iolap/internal/bootstrap"
	"iolap/internal/delta"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// opAgg implements the AGGREGATE delta rule with the three-tier state of
// Sections 4.2 and 5:
//
//   - sketch: certain-multiplicity inputs whose aggregated columns are
//     deterministic fold permanently into per-group accumulator vectors
//     (running value + B bootstrap replicates) — sub-linear space.
//   - lineage rows: certain-multiplicity inputs whose aggregated columns
//     are uncertain cannot be sketched (Section 4.2); the rows are kept and
//     their contributions recomputed each batch by lazily re-evaluating the
//     aggregate arguments against the carried lineage (Section 6.2).
//   - pending: tuple-uncertain inputs arrive fresh every batch from the
//     upstream non-deterministic sets and are folded into per-batch scratch
//     accumulators.
//
// Every batch the operator publishes its current output table (value,
// replicates, variation range per group and aggregate) for lineage
// resolution, observes the variation ranges R(u) (Section 5.1, reporting
// integrity failures to the controller), and emits each group's row exactly
// once — with lineage references in the uncertain columns — as soon as the
// group's existence is certain.
type opAgg struct {
	emitCounts
	node  *plan.Aggregate
	child operator

	specs       []aggSpecC
	hasLazy     bool
	scaleExp    int
	trials      int
	slack       float64
	minSupport  int
	trackRanges bool
	uncInput    map[int]bool // child columns that are uncertain

	groups map[string]*aggGroup
	order  []string

	// scratchPool reuses the per-batch pending/lazy accumulator vectors
	// across batches (epoch-tagged) to avoid re-allocating
	// O(groups x trials) accumulators every batch.
	scratchPool map[string]*scratchEntry
	epoch       int
	// mergeBuf is a per-spec reusable vector used to read sketch+scratch
	// without cloning the sketch.
	mergeBuf []*agg.Vector
}

// scratchEntry is one group's reusable scratch vectors.
type scratchEntry struct {
	vecs  []*agg.Vector
	epoch int
}

// aggSpecC is one compiled aggregate.
type aggSpecC struct {
	fn           *agg.Func
	arg          expr.Expr // nil for COUNT(*)
	argUncertain bool      // argument reads uncertain columns (lazy spec)
	uncertainOut bool      // output column carries attribute uncertainty
	outCol       int       // column index in the aggregate's output schema
}

type aggGroup struct {
	key    []rel.Value
	sketch []*agg.Vector // per spec (allocated lazily per group)
	lazy   delta.RowSet  // lineage rows (only when hasLazy)
	ranges []*bootstrap.Range
	// support counts the certain input rows folded so far; variation
	// ranges only become binding once it reaches the engine's
	// MinRangeSupport (degenerate bootstrap distributions of near-empty
	// groups would otherwise guarantee spurious integrity failures).
	support int
	certain bool
	emitted bool
}

func newOpAgg(t *plan.Aggregate, child operator, an *plan.Analysis, scaleExp int, opts Options, trackRanges bool) *opAgg {
	info := an.Info[t.ID()]
	childInfo := an.Info[t.Child.ID()]
	op := &opAgg{
		node:        t,
		child:       child,
		scaleExp:    scaleExp,
		trials:      opts.Trials,
		slack:       opts.Slack,
		minSupport:  opts.MinRangeSupport,
		trackRanges: trackRanges,
		groups:      make(map[string]*aggGroup),
		uncInput:    make(map[int]bool),
	}
	for i, u := range childInfo.UncertainCols {
		if u {
			op.uncInput[i] = true
		}
	}
	for i, sp := range t.Aggs {
		c := aggSpecC{
			fn:     sp.Fn,
			arg:    sp.Arg,
			outCol: len(t.GroupBy) + i,
		}
		c.uncertainOut = info.UncertainCols[c.outCol]
		if sp.Arg != nil {
			for _, col := range sp.Arg.Cols(nil) {
				if op.uncInput[col] {
					c.argUncertain = true
				}
			}
		}
		if c.argUncertain {
			op.hasLazy = true
		}
		op.specs = append(op.specs, c)
	}
	return op
}

// fnvShard hashes a group key onto one of w worker shards, so each group's
// sketch is mutated by exactly one worker during the parallel fold.
func fnvShard(key string, w int) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return h % uint64(w)
}

// anyUncertainOut reports whether any aggregate column is uncertain.
func (o *opAgg) anyUncertainOut() bool {
	for i := range o.specs {
		if o.specs[i].uncertainOut {
			return true
		}
	}
	return false
}

func (o *opAgg) getGroup(vals []rel.Value, key string) *aggGroup {
	g, ok := o.groups[key]
	if !ok {
		keyVals := make([]rel.Value, len(o.node.GroupBy))
		for i, c := range o.node.GroupBy {
			keyVals[i] = vals[c]
		}
		g = &aggGroup{
			key:    keyVals,
			sketch: make([]*agg.Vector, len(o.specs)),
			ranges: make([]*bootstrap.Range, len(o.specs)),
		}
		for i, sp := range o.specs {
			g.sketch[i] = agg.NewVector(sp.fn, o.trials)
			// Only smooth aggregates get variation ranges: MIN/MAX and
			// COUNT(DISTINCT) drift monotonically under insertions, so a
			// range would fail its integrity check on almost every batch;
			// their dependents simply stay non-deterministic.
			if sp.uncertainOut && sp.fn.Smooth {
				g.ranges[i] = bootstrap.NewRange(o.slack)
			}
		}
		o.groups[key] = g
		o.order = append(o.order, key)
	}
	return g
}

// argValue evaluates one aggregate argument under current values.
// ok=false means NULL (the row is skipped for this aggregate).
func argValue(sp aggSpecC, r delta.Row, bc *batchContext) (float64, bool) {
	if sp.arg == nil {
		return 0, true // COUNT(*)
	}
	v := sp.arg.Eval(r.Vals, bc)
	if v.IsNull() {
		return 0, false
	}
	if sp.fn.AcceptsAny {
		return v.NumericKey(), true
	}
	if !v.IsNumeric() {
		return 0, false
	}
	return v.Float(), true
}

// argReps evaluates the per-replicate values of an uncertain argument.
func argReps(sp aggSpecC, r delta.Row, bc *batchContext) []float64 {
	if bc.trials == 0 {
		return nil
	}
	reps := make([]float64, bc.trials)
	for b := 0; b < bc.trials; b++ {
		v := sp.arg.EvalRep(r.Vals, bc, b)
		if v.IsNumeric() {
			reps[b] = v.Float()
		} else {
			reps[b] = math.NaN()
		}
	}
	return reps
}

func (o *opAgg) step(bc *batchContext) (output, error) {
	in, err := o.child.step(bc)
	if err != nil {
		return output{}, err
	}
	// A grouped aggregate repartitions its input by key.
	if bc.metrics != nil && len(o.node.GroupBy) > 0 {
		n := 0
		for _, r := range in.news {
			n += r.SizeBytes()
		}
		for _, r := range in.unc {
			n += r.SizeBytes()
		}
		bc.metrics.RecordShuffleBytes(n)
	}
	// Global aggregates produce their single output row from batch 1
	// regardless of input (SQL semantics: the row always exists).
	if len(o.node.GroupBy) == 0 && len(o.groups) == 0 {
		g := o.getGroup(nil, "")
		g.certain = true
	}
	// Phase A: fold new certain rows. Group creation and bookkeeping are
	// sequential (deterministic group order); the sketch folding — the
	// expensive part, O(rows x trials) accumulator adds — runs
	// partition-parallel with groups sharded across workers, the
	// pre-aggregation pattern a distributed deployment uses.
	foldRow := func(g *aggGroup, r delta.Row) {
		for si := range o.specs {
			sp := &o.specs[si]
			if sp.argUncertain {
				continue // folded from lineage rows each batch
			}
			val, ok := argValue(*sp, r, bc)
			if !ok {
				continue
			}
			g.sketch[si].Add(val, r.Mult, r.W)
		}
	}
	if bc.fanout(len(in.news)) && o.trials > 0 {
		grps := make([]*aggGroup, len(in.news))
		shard := make([]int, len(in.news))
		w := bc.pool.Workers()
		var batchGroups []*aggGroup
		groupRows := make(map[*aggGroup][]int32)
		for i, r := range in.news {
			key := rel.EncodeKey(r.Vals, o.node.GroupBy)
			g := o.getGroup(r.Vals, key)
			g.certain = true
			g.support++
			if o.hasLazy {
				g.lazy.Add(r.Clone())
			}
			grps[i] = g
			shard[i] = int(fnvShard(key, w))
			if _, ok := groupRows[g]; !ok {
				batchGroups = append(batchGroups, g)
			}
			groupRows[g] = append(groupRows[g], int32(i))
		}
		if len(batchGroups)*2 <= w {
			// Few groups (a global aggregate being the extreme): sharding
			// groups across workers would idle most of the pool, so split
			// the replicate dimension instead. Each accumulator still
			// receives the same adds in row order — bit-identical.
			var samples []agg.Sample
			for _, g := range batchGroups {
				for si := range o.specs {
					sp := &o.specs[si]
					if sp.argUncertain {
						continue // folded from lineage rows each batch
					}
					samples = samples[:0]
					for _, i := range groupRows[g] {
						r := in.news[i]
						val, ok := argValue(*sp, r, bc)
						if !ok {
							continue
						}
						samples = append(samples, agg.Sample{Val: val, Mult: r.Mult, W: r.W})
					}
					g.sketch[si].FoldPar(samples, bc.pool.Map, w)
				}
			}
		} else {
			// Many groups: shard them across workers so each sketch is
			// mutated by exactly one worker, in row order — the
			// pre-aggregation pattern a distributed deployment uses.
			bc.pool.Map(w, func(worker int) {
				for i := range grps {
					if shard[i] == worker {
						foldRow(grps[i], in.news[i])
					}
				}
			})
		}
	} else {
		for _, r := range in.news {
			key := rel.EncodeKey(r.Vals, o.node.GroupBy)
			g := o.getGroup(r.Vals, key)
			g.certain = true
			g.support++
			if o.hasLazy {
				g.lazy.Add(r.Clone())
			}
			foldRow(g, r)
		}
	}
	// Phase B: per-batch scratch contributions — lineage rows (lazy
	// re-evaluation) and pending tuple-uncertain rows. Scratch vectors are
	// pooled across batches and lazily reset on first touch of the epoch.
	o.epoch++
	if o.scratchPool == nil {
		o.scratchPool = make(map[string]*scratchEntry)
	}
	scratchVec := func(key string, si int) *agg.Vector {
		e := o.scratchPool[key]
		if e == nil {
			e = &scratchEntry{vecs: make([]*agg.Vector, len(o.specs))}
			o.scratchPool[key] = e
		}
		if e.epoch != o.epoch {
			e.epoch = o.epoch
			for _, v := range e.vecs {
				if v != nil {
					v.Reset()
				}
			}
		}
		if e.vecs[si] == nil {
			e.vecs[si] = agg.NewVector(o.specs[si].fn, o.trials)
		}
		return e.vecs[si]
	}
	liveScratch := func(key string, si int) *agg.Vector {
		e := o.scratchPool[key]
		if e == nil || e.epoch != o.epoch {
			return nil
		}
		return e.vecs[si]
	}
	// The scratch worklist: lineage rows first (per group, in emission
	// order), then pending tuple-uncertain rows (in arrival order) — the
	// order the sequential loops use, which fixes each scratch vector's fold
	// order. Lineage rows fold only the lazy (uncertain-argument) specs;
	// pending rows fold every spec.
	type scratchRow struct {
		key  string
		row  delta.Row
		pend bool
	}
	var work []scratchRow
	if o.hasLazy {
		for _, key := range o.order {
			g := o.groups[key]
			if g.lazy.Len() == 0 {
				continue
			}
			bc.recomputed += g.lazy.Len()
			for _, r := range g.lazy.Rows {
				work = append(work, scratchRow{key: key, row: r})
			}
		}
	}
	touched := make(map[string]bool)
	bc.recomputed += len(in.unc)
	for _, r := range in.unc {
		key := rel.EncodeKey(r.Vals, o.node.GroupBy)
		o.getGroup(r.Vals, key)
		touched[key] = true
		work = append(work, scratchRow{key: key, row: r, pend: true})
	}
	applies := func(wr *scratchRow, si int) bool {
		return wr.pend || o.specs[si].argUncertain
	}
	if !bc.fanout(len(work)) || o.trials == 0 {
		for wi := range work {
			wr := &work[wi]
			if !wr.pend && !bc.lazy {
				regenerate(wr.row, bc)
			}
			for si := range o.specs {
				if !applies(wr, si) {
					continue
				}
				sp := &o.specs[si]
				val, ok := argValue(*sp, wr.row, bc)
				if !ok {
					continue
				}
				if sp.argUncertain {
					scratchVec(wr.key, si).AddRep(val, argReps(*sp, wr.row, bc), wr.row.Mult, wr.row.W)
				} else {
					scratchVec(wr.key, si).Add(val, wr.row.Mult, wr.row.W)
				}
			}
		}
	} else {
		// Parallel scratch fold, in three deterministic stages.
		// 1. Pre-create every scratch vector sequentially (pool-map mutation
		//    and epoch reset are not concurrency-safe).
		for wi := range work {
			wr := &work[wi]
			for si := range o.specs {
				if applies(wr, si) {
					scratchVec(wr.key, si)
				}
			}
		}
		// 2. Evaluate arguments and replicates chunk-parallel — the
		//    expensive part: argReps is O(trials) expression evaluations per
		//    row, and the non-lazy modes additionally regenerate each
		//    lineage row.
		type evalCell struct {
			val  float64
			reps []float64
			ok   bool
		}
		evals := make([][]evalCell, len(work))
		bc.pool.MapChunks(len(work), func(_, lo, hi int) {
			for wi := lo; wi < hi; wi++ {
				wr := &work[wi]
				if !wr.pend && !bc.lazy {
					regenerate(wr.row, bc)
				}
				cells := make([]evalCell, len(o.specs))
				for si := range o.specs {
					if !applies(wr, si) {
						continue
					}
					sp := &o.specs[si]
					val, ok := argValue(*sp, wr.row, bc)
					if !ok {
						continue
					}
					cells[si] = evalCell{val: val, ok: true}
					if sp.argUncertain {
						cells[si].reps = argReps(*sp, wr.row, bc)
					}
				}
				evals[wi] = cells
			}
		})
		// 3. Gather per-vector sample lists in work order and fold: one
		//    worker per vector when there are many, replicate-split when
		//    few. Either way every vector folds its samples in the exact
		//    order the sequential loop would.
		type scratchItem struct {
			vec     *agg.Vector
			samples []agg.Sample
		}
		var items []*scratchItem
		byVec := make(map[*agg.Vector]*scratchItem)
		for wi := range work {
			wr := &work[wi]
			for si := range evals[wi] {
				cell := &evals[wi][si]
				if !cell.ok {
					continue
				}
				vec := scratchVec(wr.key, si)
				it := byVec[vec]
				if it == nil {
					it = &scratchItem{vec: vec}
					byVec[vec] = it
					items = append(items, it)
				}
				it.samples = append(it.samples, agg.Sample{Val: cell.val, Reps: cell.reps, Mult: wr.row.Mult, W: wr.row.W})
			}
		}
		w := bc.pool.Workers()
		if len(items)*2 <= w {
			for _, it := range items {
				it.vec.FoldPar(it.samples, bc.pool.Map, w)
			}
		} else {
			bc.pool.Map(len(items), func(i int) {
				items[i].vec.Fold(items[i].samples)
			})
		}
	}
	// Phase C: read results, observe variation ranges, publish the output
	// table, emit rows.
	scale := 1.0
	for k := 0; k < o.scaleExp; k++ {
		scale *= bc.scale
	}
	// HDA semantics (Section 4.3): an uncertain aggregate's output rows are
	// materialised values whose update is delete+insert, so every group is
	// re-emitted (tuple-uncertain) each batch and everything downstream
	// recomputes; there are no stable lineage references.
	hdaRecompute := bc.hdaAgg && o.anyUncertainOut()
	table := &aggTable{groupCols: len(o.node.GroupBy), byKey: make(map[string]*aggPub, len(o.groups))}
	var out output
	for _, key := range o.order {
		g := o.groups[key]
		pub := &aggPub{vals: make([]expr.UncValue, len(o.specs))}
		rowVals := make([]rel.Value, 0, len(g.key)+len(o.specs))
		rowVals = append(rowVals, g.key...)
		for si := range o.specs {
			sp := &o.specs[si]
			vec := g.sketch[si]
			if sv := liveScratch(key, si); sv != nil {
				// Read through a reusable merge buffer: reset + two
				// merges cost no allocation (vs cloning the sketch).
				if o.mergeBuf == nil {
					o.mergeBuf = make([]*agg.Vector, len(o.specs))
				}
				if o.mergeBuf[si] == nil {
					o.mergeBuf[si] = agg.NewVector(sp.fn, o.trials)
				}
				buf := o.mergeBuf[si]
				buf.Reset()
				buf.Merge(vec)
				buf.Merge(sv)
				vec = buf
			}
			val := vec.Result(scale)
			var reps []float64
			if o.trials > 0 {
				reps = vec.RepResults(scale, nil)
			}
			rng := bootstrap.Full()
			if o.trackRanges && sp.uncertainOut && g.ranges[si] != nil &&
				o.trials > 0 && bc.prune && g.support >= o.minSupport {
				ok, recoverTo := g.ranges[si].Observe(bc.batch, val, reps)
				if !ok {
					bc.failures = append(bc.failures, failure{op: o.node.ID(), recoverTo: recoverTo})
				}
				rng = g.ranges[si].Current()
			} else if !sp.uncertainOut {
				rng = bootstrap.Point(val)
			}
			pub.vals[si] = expr.UncValue{Value: rel.Float(val), Reps: reps, Range: rng}
			if sp.uncertainOut && !hdaRecompute {
				rowVals = append(rowVals, rel.NewRef(rel.Ref{Op: o.node.ID(), Key: key, Col: sp.outCol}))
			} else {
				rowVals = append(rowVals, rel.Float(val))
			}
		}
		table.byKey[key] = pub
		if hdaRecompute {
			// Delete+insert value updates: every live group flows as a
			// tuple-uncertain row, every batch.
			if g.certain || touched[key] {
				out.unc = append(out.unc, delta.Row{Vals: rowVals, Mult: 1})
			}
			continue
		}
		if g.certain {
			if !g.emitted {
				g.emitted = true
				out.news = append(out.news, delta.Row{Vals: rowVals, Mult: 1})
			}
		} else if touched[key] {
			out.unc = append(out.unc, delta.Row{Vals: rowVals, Mult: 1})
		}
	}
	o.record(out)
	bc.publish(o.node.ID(), table)
	// The published table is broadcast to workers for lazy evaluation
	// (Section 6.2's broadcast join).
	if bc.metrics != nil {
		n := 0
		for _, pub := range table.byKey {
			n += 48
			for _, uv := range pub.vals {
				n += 16 + 8*len(uv.Reps)
			}
		}
		bc.metrics.RecordShuffleBytes(n)
	}
	return out, nil
}

type aggSnap struct {
	groups map[string]*aggGroup
	order  []string
}

func (o *opAgg) snapshot() interface{} {
	s := aggSnap{groups: make(map[string]*aggGroup, len(o.groups)), order: append([]string(nil), o.order...)}
	for k, g := range o.groups {
		ng := &aggGroup{
			key:     append([]rel.Value(nil), g.key...),
			sketch:  make([]*agg.Vector, len(g.sketch)),
			ranges:  make([]*bootstrap.Range, len(g.ranges)),
			support: g.support,
			certain: g.certain,
			emitted: g.emitted,
		}
		for i, v := range g.sketch {
			ng.sketch[i] = v.Clone()
		}
		for i, r := range g.ranges {
			if r != nil {
				ng.ranges[i] = r.Snapshot()
			}
		}
		ng.lazy.Restore(&g.lazy)
		s.groups[k] = ng
	}
	return s
}

func (o *opAgg) restore(snap interface{}) {
	s := snap.(aggSnap)
	o.groups = make(map[string]*aggGroup, len(s.groups))
	o.order = append([]string(nil), s.order...)
	for k, g := range s.groups {
		ng := &aggGroup{
			key:     append([]rel.Value(nil), g.key...),
			sketch:  make([]*agg.Vector, len(g.sketch)),
			ranges:  make([]*bootstrap.Range, len(g.ranges)),
			support: g.support,
			certain: g.certain,
			emitted: g.emitted,
		}
		for i, v := range g.sketch {
			ng.sketch[i] = v.Clone()
		}
		for i, r := range g.ranges {
			if r != nil {
				ng.ranges[i] = r.Snapshot()
			}
		}
		ng.lazy.Restore(&g.lazy)
		o.groups[k] = ng
	}
}

func (o *opAgg) stateBytes() int {
	// Sketch footprints are constant per spec; compute once instead of
	// walking every accumulator of every group.
	perGroup := 64
	for si := range o.specs {
		perGroup += 48 + (1+o.trials)*o.specs[si].fn.New().SizeBytes()
	}
	n := perGroup * len(o.groups)
	if o.hasLazy {
		for _, g := range o.groups {
			n += g.lazy.SizeBytes()
		}
	}
	return n
}

func (o *opAgg) kind() string { return "aggregate" }
