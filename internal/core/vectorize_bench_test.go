package core

import "testing"

func benchPipeline(b *testing.B, query string, trials int, noVec bool) {
	db := testDB(64000, 42)
	root := planQuery(b, query)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		eng, err := NewEngine(root, db, Options{Batches: 8, Trials: trials, Workers: 1, NoVectorize: noVec})
		if err != nil {
			b.Fatal(err)
		}
		for !eng.Done() {
			if _, err := eng.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkPipeRowAgg(b *testing.B) { benchPipeline(b, `SELECT cdn, SUM(play_time) AS s, AVG(buffer_time) AS a FROM sessions GROUP BY cdn`, 100, true) }
func BenchmarkPipeVecAgg(b *testing.B) { benchPipeline(b, `SELECT cdn, SUM(play_time) AS s, AVG(buffer_time) AS a FROM sessions GROUP BY cdn`, 100, false) }
func BenchmarkPipeRowFil(b *testing.B) { benchPipeline(b, `SELECT cdn, SUM(play_time) AS s FROM sessions WHERE buffer_time > 25 GROUP BY cdn`, 100, true) }
func BenchmarkPipeVecFil(b *testing.B) { benchPipeline(b, `SELECT cdn, SUM(play_time) AS s FROM sessions WHERE buffer_time > 25 GROUP BY cdn`, 100, false) }
func BenchmarkPipeRowMin(b *testing.B) { benchPipeline(b, `SELECT cdn, MIN(buffer_time) AS m, MAX(play_time) AS x FROM sessions GROUP BY cdn`, 100, true) }
func BenchmarkPipeVecMin(b *testing.B) { benchPipeline(b, `SELECT cdn, MIN(buffer_time) AS m, MAX(play_time) AS x FROM sessions GROUP BY cdn`, 100, false) }

func BenchmarkPipeRowFil0(b *testing.B) { benchPipeline(b, `SELECT cdn, SUM(play_time) AS s FROM sessions WHERE buffer_time > 25 AND cdn = 'east' GROUP BY cdn`, 0, true) }
func BenchmarkPipeVecFil0(b *testing.B) { benchPipeline(b, `SELECT cdn, SUM(play_time) AS s FROM sessions WHERE buffer_time > 25 AND cdn = 'east' GROUP BY cdn`, 0, false) }
func BenchmarkPipeRowJoin0(b *testing.B) { benchPipeline(b, `SELECT region, COUNT(*) AS c FROM sessions, cdns WHERE sessions.cdn = cdns.cdn AND buffer_time > 25 GROUP BY region`, 0, true) }
func BenchmarkPipeVecJoin0(b *testing.B) { benchPipeline(b, `SELECT region, COUNT(*) AS c FROM sessions, cdns WHERE sessions.cdn = cdns.cdn AND buffer_time > 25 GROUP BY region`, 0, false) }
