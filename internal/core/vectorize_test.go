package core

import (
	"fmt"
	"testing"
)

// The columnar batch pipeline (DESIGN.md §14) promises bit-identical
// updates to the row-at-a-time paths: the vectorized select fills its
// selection vector with exactly the row path's acceptance verdicts, the
// columnar join probe encodes byte-identical keys, and the batched
// aggregate fold performs the same floating-point operations per
// accumulator slot in the same order. This suite enforces the promise by
// running each query shape with Options.NoVectorize on and off — at
// Workers 1 and 4, so both the sequential and the parallel batched paths
// face their row-path twins — and comparing every Update field exactly
// (relations, bootstrap estimates, accounting metrics).
func TestVectorizeEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		query  string
		opts   Options
		sorted bool
		skewed bool
	}{
		{"flat_group_by", theoremQuery(t, "flat_group_by"),
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		// Deterministic WHERE over the streamed scan: the vectorized filter
		// feeds the batched fold through a narrowed selection vector.
		{"flat_filter_agg", theoremQuery(t, "flat_filter_agg"),
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		// Streamed fact ⋈ static dimension: the probe side carries column
		// banks, so keys encode straight from the banks (ProbeKey path).
		{"join_dim_group", theoremQuery(t, "join_dim_group"),
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"union_all", theoremQuery(t, "union_all"),
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"case_expression", theoremQuery(t, "case_expression"),
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"nested_correlated", theoremQuery(t, "nested_correlated"),
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"sbi/iolap", sbiQuery,
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, false},
		{"sbi/hda", sbiQuery,
			Options{Mode: ModeHDA, Batches: 6, Trials: 25, Seed: 3}, false, false},
		// ~90% of rows in one group: the heavy-group AddBatchPar
		// replicate-split against the row path's FoldPar.
		{"skewed_group", theoremQuery(t, "flat_group_by"),
			Options{Mode: ModeIOLAP, Batches: 6, Trials: 25, Seed: 3}, false, true},
		// Adversarial arrival order + zero slack: snapshot restore and
		// merged-delta replay run through the batched fold too.
		{"recovery", sbiQuery,
			Options{Mode: ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4}, true, false},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			c, workers := c, workers
			t.Run(fmt.Sprintf("%s/w%d", c.name, workers), func(t *testing.T) {
				vecOpts, rowOpts := c.opts, c.opts
				vecOpts.Workers, vecOpts.ParThreshold = workers, 1
				rowOpts.Workers, rowOpts.ParThreshold = workers, 1
				rowOpts.NoVectorize = true
				row, rowEng := runEngineUpdates(t, c.query, 240, 11, rowOpts, c.sorted, c.skewed)
				vec, vecEng := runEngineUpdates(t, c.query, 240, 11, vecOpts, c.sorted, c.skewed)
				assertUpdatesIdentical(t, row, vec)
				if rowEng.TotalRecoveries() != vecEng.TotalRecoveries() {
					t.Errorf("TotalRecoveries: row %d vs vectorized %d",
						rowEng.TotalRecoveries(), vecEng.TotalRecoveries())
				}
			})
		}
	}
}
