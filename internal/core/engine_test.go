package core

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"iolap/internal/agg"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
	"iolap/internal/sql"
)

// ---------------------------------------------------------------------------
// Test fixtures

func sessionsSchema() rel.Schema {
	return rel.Schema{
		{Name: "session_id", Type: rel.KString},
		{Name: "buffer_time", Type: rel.KFloat},
		{Name: "play_time", Type: rel.KFloat},
		{Name: "cdn", Type: rel.KString},
	}
}

func cdnsSchema() rel.Schema {
	return rel.Schema{
		{Name: "cdn", Type: rel.KString},
		{Name: "region", Type: rel.KString},
	}
}

// genSessions builds a deterministic synthetic sessions table.
func genSessions(n int, seed int64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := rel.NewRelation(sessionsSchema())
	cdns := []string{"east", "west", "eu"}
	for i := 0; i < n; i++ {
		bt := 10 + rng.ExpFloat64()*25
		pt := 30 + rng.Float64()*600
		r.Append(
			rel.String("s"+itoa(i)),
			rel.Float(math.Round(bt*10)/10),
			rel.Float(math.Round(pt*10)/10),
			rel.String(cdns[rng.Intn(len(cdns))]),
		)
	}
	return r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

func testDB(n int, seed int64) *exec.DB {
	db := exec.NewDB()
	db.Put("sessions", genSessions(n, seed))
	cdns := rel.NewRelation(cdnsSchema())
	cdns.Append(rel.String("east"), rel.String("us-east"))
	cdns.Append(rel.String("west"), rel.String("us-west"))
	cdns.Append(rel.String("eu"), rel.String("europe"))
	db.Put("cdns", cdns)
	return db
}

func testCatalog() *sql.Catalog {
	cat := sql.NewCatalog()
	cat.AddTable("sessions", sessionsSchema(), true)
	cat.AddTable("cdns", cdnsSchema(), false)
	return cat
}

func planQuery(t testing.TB, query string) plan.Node {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pl := sql.NewPlanner(testCatalog(), expr.NewRegistry(), agg.NewRegistry())
	node, _, err := pl.Plan(stmt)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return node
}

// oracle evaluates the query exactly on D_i (the first `seen` rows of the
// streamed table) with every streamed tuple carrying multiplicity m_i — the
// definition of Q(D_i, m_i) in Section 2 and the reference of Theorem 1.
func oracle(t testing.TB, root plan.Node, db *exec.DB, streamed string, seen int) *rel.Relation {
	t.Helper()
	src, _ := db.Get(streamed)
	total := src.Len()
	mi := 1.0
	if seen > 0 {
		mi = float64(total) / float64(seen)
	}
	part := rel.NewRelation(src.Schema)
	for _, tp := range src.Tuples[:seen] {
		part.AppendMult(mi*tp.Mult, tp.Vals...)
	}
	odb := exec.NewDB()
	for _, name := range db.Tables() {
		r, _ := db.Get(name)
		odb.Put(name, r)
	}
	odb.Put(streamed, part)
	out, err := exec.Run(root, odb)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return out
}

// theorem1 runs the engine over all batches and checks every partial result
// against the oracle.
func theorem1(t *testing.T, query string, n int, opts Options) *Engine {
	t.Helper()
	db := testDB(n, 42)
	root := planQuery(t, query)
	eng, err := NewEngine(root, db, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatalf("step %d: %v", eng.batch, err)
		}
		seen = int(math.Round(u.Fraction * float64(n)))
		want := oracle(t, root, db, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("batch %d (%s): result diverges from Q(D_i, m_i)\nquery: %s\ngot:\n%s\nwant:\n%s",
				u.Batch, opts.Mode, query, u.Result, want)
		}
	}
	return eng
}

// ---------------------------------------------------------------------------
// Theorem 1 across query shapes and modes

const sbiQuery = `SELECT AVG(play_time) AS apt FROM sessions
	WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`

var theoremQueries = []struct {
	name   string
	query  string
	nested bool
}{
	{"flat_global_agg", `SELECT COUNT(*) AS n, AVG(buffer_time) AS abt, SUM(play_time) AS spt FROM sessions`, false},
	{"flat_filter_agg", `SELECT SUM(play_time) AS s FROM sessions WHERE buffer_time > 25 AND cdn = 'east'`, false},
	{"flat_group_by", `SELECT cdn, COUNT(*) AS n, AVG(play_time) AS apt FROM sessions GROUP BY cdn`, false},
	{"join_dim_group", `SELECT c.region, SUM(s.play_time) AS spt FROM sessions s, cdns c
		WHERE s.cdn = c.cdn GROUP BY c.region`, false},
	{"sbi_nested_scalar", sbiQuery, true},
	{"nested_correlated", `SELECT COUNT(*) AS n FROM sessions s
		WHERE s.buffer_time > (SELECT AVG(buffer_time) FROM sessions i WHERE i.cdn = s.cdn)`, true},
	{"nested_in_having", `SELECT AVG(play_time) AS apt FROM sessions
		WHERE cdn IN (SELECT cdn FROM sessions GROUP BY cdn HAVING AVG(buffer_time) > 20)`, true},
	{"having_scalar_sub", `SELECT cdn, SUM(play_time) AS spt FROM sessions
		GROUP BY cdn HAVING SUM(play_time) > (SELECT 0.3 * SUM(play_time) FROM sessions)`, true},
	{"union_all", `SELECT play_time AS v FROM sessions WHERE cdn = 'east'
		UNION ALL SELECT buffer_time AS v FROM sessions WHERE buffer_time > 40`, false},
	{"case_expression", `SELECT cdn, SUM(CASE WHEN buffer_time > 30 THEN play_time ELSE 0 END) AS slow_pt
		FROM sessions GROUP BY cdn`, false},
	{"arith_over_nested", `SELECT COUNT(*) AS n FROM sessions
		WHERE play_time / 60 < (SELECT AVG(play_time) / 30 FROM sessions)`, true},
}

func TestTheorem1IOLAP(t *testing.T) {
	for _, q := range theoremQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			eng := theorem1(t, q.query, 240, Options{Mode: ModeIOLAP, Batches: 8, Trials: 40, Seed: 1})
			if eng.Nested() != q.nested {
				t.Errorf("nested classification = %v, want %v", eng.Nested(), q.nested)
			}
		})
	}
}

func TestTheorem1OPT1(t *testing.T) {
	for _, q := range theoremQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			theorem1(t, q.query, 160, Options{Mode: ModeOPT1, Batches: 5, Trials: 30, Seed: 2})
		})
	}
}

func TestTheorem1HDA(t *testing.T) {
	for _, q := range theoremQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			theorem1(t, q.query, 160, Options{Mode: ModeHDA, Batches: 5, Seed: 3})
		})
	}
}

// TestTheorem1ManySeeds fuzzes the SBI query across seeds and batch counts.
func TestTheorem1ManySeeds(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		for _, p := range []int{3, 7} {
			theorem1(t, sbiQuery, 150, Options{Mode: ModeIOLAP, Batches: p, Trials: 25, Seed: seed})
		}
	}
}

// TestTheorem1UnderRecovery feeds adversarially sorted data (ascending
// buffer_time) so the running inner average drifts monotonically, forcing
// variation-range integrity failures — and checks the recovered results are
// still exact.
func TestTheorem1UnderRecovery(t *testing.T) {
	db := testDB(200, 7)
	sessions, _ := db.Get("sessions")
	sort.Slice(sessions.Tuples, func(i, j int) bool {
		return sessions.Tuples[i].Vals[1].Float() < sessions.Tuples[j].Vals[1].Float()
	})
	root := planQuery(t, sbiQuery)
	// Slack 0 makes ranges as tight as possible: failures guaranteed.
	eng, err := NewEngine(root, db, Options{Mode: ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, db, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("batch %d diverged after recovery\ngot:\n%s\nwant:\n%s", u.Batch, u.Result, want)
		}
	}
	if eng.TotalRecoveries() == 0 {
		t.Error("adversarial order with zero slack should force failure-recovery")
	}
}

func TestRecoveryBeyondSnapshotWindow(t *testing.T) {
	db := testDB(200, 7)
	sessions, _ := db.Get("sessions")
	sort.Slice(sessions.Tuples, func(i, j int) bool {
		return sessions.Tuples[i].Vals[1].Float() < sessions.Tuples[j].Vals[1].Float()
	})
	root := planQuery(t, sbiQuery)
	// Keep only 2 snapshots: deep failures recover from scratch.
	eng, err := NewEngine(root, db, Options{Mode: ModeIOLAP, Batches: 12, Trials: 15, Slack: 0, Seed: 4, SnapshotKeep: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, db, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("batch %d diverged (snapshot eviction)", u.Batch)
		}
	}
}

// ---------------------------------------------------------------------------
// Behavioural properties

func TestFinalBatchMatchesBaseline(t *testing.T) {
	// After the last batch the partial result is the exact answer
	// (m_p = 1): the full-spectrum guarantee of Section 1.
	db := testDB(200, 11)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{Batches: 6, Trials: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	updates, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := exec.Run(root, db)
	if err != nil {
		t.Fatal(err)
	}
	final := updates[len(updates)-1]
	if !rel.EqualBag(final.Result, baseline, 1e-9) {
		t.Errorf("final result must equal the batch baseline\ngot:\n%s\nwant:\n%s", final.Result, baseline)
	}
	if final.Fraction != 1.0 {
		t.Errorf("final fraction = %v", final.Fraction)
	}
}

func TestErrorEstimatesShrink(t *testing.T) {
	db := testDB(600, 13)
	root := planQuery(t, `SELECT AVG(play_time) AS apt FROM sessions`)
	eng, err := NewEngine(root, db, Options{Batches: 10, Trials: 60, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	updates, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	first := updates[0].MaxRelStdev()
	last := updates[len(updates)-2].MaxRelStdev() // last-1: final batch is exact
	if first <= 0 {
		t.Fatal("first batch should report positive uncertainty")
	}
	if last >= first {
		t.Errorf("relative stdev should shrink: first %v, batch p-1 %v", first, last)
	}
	// CI should bracket the true answer at (say) batch 3.
	truth := oracleValue(t, root, db, 600)
	u := updates[2]
	est := u.Estimates[0][0]
	if est.CILo > truth || truth > est.CIHi {
		t.Logf("note: 95%% CI [%v,%v] missed truth %v (can happen ~5%% of the time)", est.CILo, est.CIHi, truth)
	}
}

func oracleValue(t *testing.T, root plan.Node, db *exec.DB, seen int) float64 {
	out := oracle(t, root, db, "sessions", seen)
	return out.Tuples[0].Vals[0].Float()
}

// TestNDSetShrinksWithIOLAP: the non-deterministic set shrinks (and
// recomputation stays bounded) under iOLAP, while HDA's recomputed set
// grows linearly — the Figure 8 contrast.
func TestNDSetShrinksAndHDADegrades(t *testing.T) {
	run := func(mode Mode) []int {
		db := testDB(400, 17)
		root := planQuery(t, sbiQuery)
		eng, err := NewEngine(root, db, Options{Mode: mode, Batches: 8, Trials: 30, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var recomputed []int
		for !eng.Done() {
			u, err := eng.Step()
			if err != nil {
				t.Fatal(err)
			}
			recomputed = append(recomputed, u.Recomputed)
		}
		return recomputed
	}
	io := run(ModeIOLAP)
	hda := run(ModeHDA)
	// HDA per-batch recomputation must grow ~linearly: last > 3x second.
	if hda[len(hda)-1] < 3*hda[1] {
		t.Errorf("HDA recomputation should grow linearly: %v", hda)
	}
	// iOLAP's final batches must recompute far less than HDA's.
	if io[len(io)-1]*4 > hda[len(hda)-1] {
		t.Errorf("iOLAP should recompute much less than HDA in late batches: iolap=%v hda=%v", io, hda)
	}
}

func TestJoinStateOptimization(t *testing.T) {
	// Fact ⋈ static dimension: only the dimension side may be cached
	// (Section 4.2's fact/dimension optimization).
	db := testDB(300, 19)
	root := planQuery(t, `SELECT c.region, SUM(s.play_time) AS spt FROM sessions s, cdns c
		WHERE s.cdn = c.cdn GROUP BY c.region`)
	eng, err := NewEngine(root, db, Options{Batches: 5, Trials: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	var joinOp *opJoin
	for _, op := range eng.comp.ops {
		if j, ok := op.(*opJoin); ok {
			joinOp = j
		}
	}
	if joinOp == nil {
		t.Fatal("no join operator")
	}
	if joinOp.lStore != nil {
		t.Error("fact side must not be cached when the dimension is static")
	}
	if joinOp.rStore == nil {
		t.Error("dimension side must be cached (fact keeps streaming)")
	}
	if joinOp.rStore.Len() != 3 {
		t.Errorf("dimension store rows = %d, want 3", joinOp.rStore.Len())
	}
}

func TestSBIJoinDoesNotCacheFactSide(t *testing.T) {
	// Figure 4 / Section 4.2: in SBI the fact side of the cross join is
	// not cached because the aggregate side has no tuple uncertainty and
	// cannot grow.
	db := testDB(100, 23)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{Batches: 4, Trials: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	for _, op := range eng.comp.ops {
		if j, ok := op.(*opJoin); ok {
			if j.lStore != nil {
				t.Error("SBI fact side must not be cached (paper Fig 4)")
			}
			if j.rStore == nil || j.rStore.Len() != 1 {
				t.Error("SBI aggregate side must be cached (1 row)")
			}
		}
	}
}

func TestUpdateMetadata(t *testing.T) {
	db := testDB(120, 29)
	root := planQuery(t, sbiQuery)
	eng, err := NewEngine(root, db, Options{Batches: 4, Trials: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	u1, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if u1.Batch != 1 || u1.Batches != 4 {
		t.Errorf("batch metadata wrong: %d/%d", u1.Batch, u1.Batches)
	}
	if u1.Fraction <= 0 || u1.Fraction > 0.3 {
		t.Errorf("fraction = %v", u1.Fraction)
	}
	// SBI's only exchanges are broadcasts: the scalar subquery side of the
	// cross join and the published aggregate tables replicate to every
	// worker; nothing repartitions by key, so shuffle bytes stay zero.
	if u1.BroadcastBytes <= 0 {
		t.Error("broadcast accounting missing")
	}
	if u1.ShuffleBytes != 0 {
		t.Errorf("scalar-subquery SBI should shuffle nothing, got %d bytes", u1.ShuffleBytes)
	}
	if got := eng.TotalExchangeBytes(); got != u1.ShuffleBytes+u1.BroadcastBytes {
		t.Errorf("TotalExchangeBytes = %d, want %d", got, u1.ShuffleBytes+u1.BroadcastBytes)
	}
	if u1.Duration <= 0 {
		t.Error("duration missing")
	}
	if u1.OtherStateBytes <= 0 {
		t.Error("state accounting missing")
	}
	if !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s := eng.PlanString(); !strings.Contains(s, "Aggregate") {
		t.Error("plan rendering broken")
	}
}

func TestEngineValidation(t *testing.T) {
	db := testDB(50, 31)
	// No streamed table: cdns only.
	stmt, _ := sql.Parse(`SELECT COUNT(*) AS n FROM cdns`)
	pl := sql.NewPlanner(testCatalog(), expr.NewRegistry(), agg.NewRegistry())
	node, _, err := pl.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(node, db, Options{}); err == nil {
		t.Error("plan without a streamed table must be rejected")
	}
	// Unknown streamed table in DB.
	root := planQuery(t, `SELECT COUNT(*) AS n FROM sessions`)
	if _, err := NewEngine(root, exec.NewDB(), Options{}); err == nil {
		t.Error("missing table must be rejected")
	}
	// Stepping past the end errors.
	eng, err := NewEngine(root, db, Options{Batches: 2, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err == nil {
		t.Error("Step past completion must error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *rel.Relation {
		db := testDB(150, 37)
		root := planQuery(t, sbiQuery)
		eng, err := NewEngine(root, db, Options{Batches: 5, Trials: 20, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		var last *Update
		for !eng.Done() {
			u, err := eng.Step()
			if err != nil {
				t.Fatal(err)
			}
			last = u
		}
		return last.Result
	}
	a, b := run(), run()
	if !rel.EqualBag(a, b, 0) {
		t.Error("engine must be deterministic for a fixed seed")
	}
}

func TestUDFAndUDAFQueries(t *testing.T) {
	// UDF in predicate and UDAF in aggregation, streaming end to end.
	funcs := expr.NewRegistry()
	if err := funcs.Register(expr.ScalarFunc{
		Name: "ENGAGEMENT", MinArgs: 2, MaxArgs: 2, RetType: rel.KFloat,
		Fn: func(args []rel.Value) rel.Value {
			if args[0].IsNull() || args[1].IsNull() {
				return rel.Null()
			}
			return rel.Float(args[0].Float() / (1 + args[1].Float()/60))
		},
	}); err != nil {
		t.Fatal(err)
	}
	aggs := agg.NewRegistry()
	if err := aggs.Register(agg.Func{
		Name: "GEOMEAN", TakesArg: true, Smooth: true, Invertible: true,
		New: func() agg.Accumulator { return &geoAcc{} },
	}); err != nil {
		t.Fatal(err)
	}
	pl := sql.NewPlanner(testCatalog(), funcs, aggs)
	stmt, err := sql.Parse(`SELECT cdn, GEOMEAN(play_time) AS g FROM sessions
		WHERE ENGAGEMENT(play_time, buffer_time) > 100 GROUP BY cdn`)
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := pl.Plan(stmt)
	if err != nil {
		t.Fatal(err)
	}
	db := testDB(200, 41)
	eng, err := NewEngine(root, db, Options{Batches: 5, Trials: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		seen += eng.deltas[u.Batch-1].Len()
		want := oracle(t, root, db, "sessions", seen)
		if !rel.EqualBag(u.Result, want, 1e-6) {
			t.Fatalf("UDF/UDAF batch %d diverged\ngot:\n%s\nwant:\n%s", u.Batch, u.Result, want)
		}
	}
}

// geoAcc is a geometric-mean UDAF accumulator used by the tests.
type geoAcc struct{ logSum, n float64 }

func (a *geoAcc) Add(v, w float64) {
	if v > 0 {
		a.logSum += math.Log(v) * w
		a.n += w
	}
}
func (a *geoAcc) Sub(v, w float64) {
	if v > 0 {
		a.logSum -= math.Log(v) * w
		a.n -= w
	}
}
func (a *geoAcc) Result(float64) float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return math.Exp(a.logSum / a.n)
}
func (a *geoAcc) Merge(o agg.Accumulator) {
	b := o.(*geoAcc)
	a.logSum += b.logSum
	a.n += b.n
}
func (a *geoAcc) Clone() agg.Accumulator { c := *a; return &c }
func (a *geoAcc) Reset()                 { a.logSum, a.n = 0, 0 }
func (a *geoAcc) SizeBytes() int         { return 16 }
