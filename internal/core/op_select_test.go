package core

import (
	"testing"

	"iolap/internal/bootstrap"
	"iolap/internal/cluster"
	"iolap/internal/delta"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

// stubOp feeds scripted outputs to a parent operator.
type stubOp struct {
	emitCounts
	script []output
	calls  int
}

func (s *stubOp) step(*batchContext) (output, error) {
	out := s.script[s.calls]
	s.calls++
	return out, nil
}
func (s *stubOp) snapshot() interface{} { return s.calls }
func (s *stubOp) restore(v interface{}) { s.calls = v.(int) }
func (s *stubOp) stateBytes() int       { return 0 }
func (s *stubOp) kind() string          { return "stub" }

// testBC builds a batch context with one published aggregate table whose
// single value has the given running value and variation range.
func testBC(batch int, val float64, lo, hi float64) *batchContext {
	bc := &batchContext{
		batch:  batch,
		scale:  1,
		trials: 0,
		tables: make(map[int]*aggTable),
		lazy:   true,
		prune:  true,
		pool:   cluster.NewPool(1),
	}
	bc.publish(7, &aggTable{
		groupCols: 0,
		byKey: map[string]*aggPub{
			"": {vals: []expr.UncValue{{
				Value: rel.Float(val),
				Range: bootstrap.Interval{Lo: lo, Hi: hi},
			}}},
		},
	})
	return bc
}

// selectFixture builds an opSelect over rows [x, ref] with predicate
// x > ref — the SBI filter shape.
func selectFixture(script []output) *opSelect {
	schema := rel.Schema{
		{Name: "x", Type: rel.KFloat},
		{Name: "avg", Type: rel.KFloat},
	}
	scan := plan.NewScan("t", "", schema, true)
	pred := expr.NewCmp(expr.Gt,
		expr.NewCol(0, "x", rel.KFloat),
		expr.NewCol(1, "avg", rel.KFloat))
	node := plan.NewSelect(scan, pred)
	plan.Finalize(node)
	return &opSelect{
		node:          node,
		child:         &stubOp{script: script},
		predUncertain: true,
	}
}

func rowWithRef(x float64) delta.Row {
	return delta.Row{
		Vals: []rel.Value{rel.Float(x), rel.NewRef(rel.Ref{Op: 7, Key: "", Col: 0})},
		Mult: 1,
	}
}

// TestSelectClassification reproduces the Example 2 state machine: with
// R = [21.1, 53.9], x=58 passes permanently, x=17 drops permanently, x=36
// joins the non-deterministic set and is re-emitted while currently true.
func TestSelectClassification(t *testing.T) {
	op := selectFixture([]output{
		{news: []delta.Row{rowWithRef(58), rowWithRef(17), rowWithRef(36)}},
		{}, // batch 2: no new input
	})
	bc := testBC(1, 37, 21.1, 53.9)
	out, err := op.step(bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.news) != 1 || out.news[0].Vals[0].Float() != 58 {
		t.Fatalf("batch 1 news = %v, want just x=58", out.news)
	}
	// x=36 < avg 37: in the ND set but not currently passing.
	if len(out.unc) != 0 {
		t.Fatalf("batch 1 unc = %v, want empty (36 < 37)", out.unc)
	}
	if op.state.Len() != 1 {
		t.Fatalf("ND set = %d rows, want 1", op.state.Len())
	}
	// Batch 2: the running average drops to 30 — x=36 now passes but the
	// range still straddles it, so it stays non-deterministic.
	bc2 := testBC(2, 30, 25, 45)
	out, err = op.step(bc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.unc) != 1 || out.unc[0].Vals[0].Float() != 36 {
		t.Fatalf("batch 2 unc = %v, want x=36 (currently passing)", out.unc)
	}
	if len(out.news) != 0 {
		t.Fatalf("batch 2 news = %v, want empty", out.news)
	}
}

// TestSelectPromotion: when the range narrows away from a state row's
// value, the row is promoted to certain (emitted once as news) or pruned —
// and leaves the state either way.
func TestSelectPromotion(t *testing.T) {
	op := selectFixture([]output{
		{news: []delta.Row{rowWithRef(36)}},
		{},
		{},
	})
	// Batch 1: wide range — 36 is non-deterministic.
	if _, err := op.step(testBC(1, 37, 21, 54)); err != nil {
		t.Fatal(err)
	}
	if op.state.Len() != 1 {
		t.Fatal("row should be in the ND set")
	}
	// Batch 2: the range narrows below 36 — promotion to certain.
	out, err := op.step(testBC(2, 33, 30, 35))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.news) != 1 || out.news[0].Vals[0].Float() != 36 {
		t.Fatalf("promotion should emit the row as news, got %v", out.news)
	}
	if op.state.Len() != 0 {
		t.Error("promoted row must leave the ND set")
	}
	// Batch 3: nothing left to do.
	out, err = op.step(testBC(3, 33, 31, 34))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.news)+len(out.unc) != 0 {
		t.Errorf("no further emissions expected, got %v/%v", out.news, out.unc)
	}
}

func TestSelectPrune(t *testing.T) {
	op := selectFixture([]output{
		{news: []delta.Row{rowWithRef(36)}},
		{},
	})
	if _, err := op.step(testBC(1, 37, 21, 54)); err != nil {
		t.Fatal(err)
	}
	// Range narrows above 36: the row can never pass — pruned silently.
	out, err := op.step(testBC(2, 40, 38, 44))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.news)+len(out.unc) != 0 {
		t.Errorf("pruned row must not be emitted: %v/%v", out.news, out.unc)
	}
	if op.state.Len() != 0 {
		t.Error("pruned row must leave the ND set")
	}
}

func TestSelectUpstreamUncPassThrough(t *testing.T) {
	// Upstream tuple-uncertain rows are re-filtered by current value and
	// never enter this operator's own state.
	op := selectFixture([]output{
		{unc: []delta.Row{rowWithRef(58), rowWithRef(17)}},
	})
	out, err := op.step(testBC(1, 37, 21, 54))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.unc) != 1 || out.unc[0].Vals[0].Float() != 58 {
		t.Fatalf("unc pass-through wrong: %v", out.unc)
	}
	if op.state.Len() != 0 {
		t.Error("upstream uncertainty is owned upstream")
	}
}

func TestSelectHDAKeepsEverything(t *testing.T) {
	op := selectFixture([]output{
		{news: []delta.Row{rowWithRef(58), rowWithRef(17), rowWithRef(36)}},
		{},
	})
	bc := testBC(1, 37, 21.1, 53.9)
	bc.prune = false // HDA: no variation-range classification
	out, err := op.step(bc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.news) != 0 {
		t.Error("HDA never promotes")
	}
	if op.state.Len() != 3 {
		t.Errorf("HDA keeps all rows in state: %d", op.state.Len())
	}
	if len(out.unc) != 1 { // only 58 currently passes
		t.Errorf("HDA current output = %v", out.unc)
	}
}
