// Distributed-site plumbing: the Exchanger seam the internal/dist transport
// plugs into, plus the span codecs for the three row-parallel operator sites
// that ship work across process boundaries.
//
// The execution model is SPMD replica lockstep: every participant
// (coordinator and each remote worker) holds a full deterministic engine
// replica and steps the same mini-batches in the same order. Aggregation and
// all other state transitions are replicated — identical inputs, identical
// fold order, identical floats — while the embarrassingly row-parallel sites
// (SELECT classification, join probe, sink materialisation) are partitioned:
// each participant computes one contiguous span of the site, the spans are
// collected and merged in span order, and the merged byte payloads are
// applied identically on every replica. Because span boundaries are a pure
// function of (n, participant count) — the same i·n/p arithmetic as
// cluster.Pool.MapChunks — and the codecs round-trip values bit-exactly,
// distributed output is bit-identical to the local Workers=1 run (the
// DESIGN.md §7 invariant extended across machines; see DESIGN.md §9).
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"iolap/internal/bootstrap"
	"iolap/internal/cluster"
	"iolap/internal/delta"
	"iolap/internal/expr"
	"iolap/internal/rel"
	"iolap/internal/storage"
)

// Exchanger connects an engine to a distributed transport. Implementations
// live in internal/dist (the interface is defined here so core does not
// import its own transport).
//
// Exchange runs one distributed site over n logical rows: compute(lo, hi)
// encodes the caller's result for one contiguous span, and merge(lo, hi,
// payload) applies one span's encoded result. The implementation must call
// merge exactly once per span, sequentially, in ascending span order, with
// the spans exactly covering [0, n) — that contract is what lets operator
// sites append merged rows and know the result equals the sequential loop.
// Every replica must apply the same payload bytes for the same span.
type Exchanger interface {
	Exchange(class cluster.OpClass, n int, compute func(lo, hi int) ([]byte, error), merge func(lo, hi int, payload []byte) error) error
	// MinRows is the smallest site worth shipping: below it the per-span
	// round-trip dominates and every replica computes the site locally
	// (deterministically — the gate depends only on n, never on clocks).
	MinRows() int
	// WireStats returns cumulative measured wire traffic: bytes received
	// from peers (shuffle) and bytes sent to peers (broadcast).
	WireStats() (shuffle, broadcast int64)
}

// distPanic aborts a batch from inside an operator when the transport fails.
// Operator signatures stay error-free (sites are deep inside pure compute
// paths); Engine.Step recovers the panic and surfaces it as the batch error.
type distPanic struct{ err error }

// distSite reports whether a site of n rows runs through the exchanger.
// Deterministic across replicas: every participant evaluates the same n
// against the same MinRows, so they agree on the exchange call sequence.
func (bc *batchContext) distSite(n int) bool {
	return bc.exch != nil && n >= bc.exch.MinRows()
}

// exchange runs a distributed site, converting transport failure into a
// batch abort.
func (bc *batchContext) exchange(class cluster.OpClass, n int, compute func(lo, hi int) ([]byte, error), merge func(lo, hi int, payload []byte) error) {
	if err := bc.exch.Exchange(class, n, compute, merge); err != nil {
		panic(distPanic{fmt.Errorf("core: distributed %v site (%d rows): %w", class, n, err)})
	}
}

// spanChunks runs fill over [lo, hi) — the replica's local share of a
// distributed site — fanning out over the local pool when the span alone
// clears the class cutover. Slot-indexed fills keep it order-independent.
func (bc *batchContext) spanChunks(c cluster.OpClass, lo, hi int, fill func(lo, hi int)) {
	n := hi - lo
	if bc.fanout(c, n) {
		bc.pool.MapChunks(n, func(_, a, b int) { fill(lo+a, lo+b) })
	} else if n > 0 {
		fill(lo, hi)
	}
}

// ---------------------------------------------------------------------------
// Span codecs. All decoders validate the full payload before mutating the
// caller's buffers, so a corrupt span from a failing worker can be recomputed
// without unwinding a partial merge.

// encodeVerdictSpan packs selVerdicts one byte per row: the tri-state in the
// low two bits, the current-value pass bit above.
func encodeVerdictSpan(vs []selVerdict, lo, hi int) []byte {
	out := make([]byte, hi-lo)
	for i := lo; i < hi; i++ {
		b := byte(vs[i].tri) & 3
		if vs[i].pass {
			b |= 4
		}
		out[i-lo] = b
	}
	return out
}

func decodeVerdictSpan(vs []selVerdict, lo, hi int, p []byte) error {
	if len(p) != hi-lo {
		return fmt.Errorf("core: verdict span [%d,%d): got %d bytes", lo, hi, len(p))
	}
	for i, b := range p {
		if b > 7 {
			return fmt.Errorf("core: verdict span: bad verdict byte %#x", b)
		}
		vs[lo+i] = selVerdict{tri: expr.Tri(b & 3), pass: b&4 != 0}
	}
	return nil
}

// encodeBoolSpan packs one byte per row (0/1).
func encodeBoolSpan(pass []bool, lo, hi int) []byte {
	out := make([]byte, hi-lo)
	for i := lo; i < hi; i++ {
		if pass[i] {
			out[i-lo] = 1
		}
	}
	return out
}

func decodeBoolSpan(pass []bool, lo, hi int, p []byte) error {
	if len(p) != hi-lo {
		return fmt.Errorf("core: bool span [%d,%d): got %d bytes", lo, hi, len(p))
	}
	for i, b := range p {
		if b > 1 {
			return fmt.Errorf("core: bool span: bad byte %#x", b)
		}
		pass[lo+i] = b == 1
	}
	return nil
}

// encodeRowSpan frames a probe span's joined rows with the storage spill-row
// codec (bit-exact floats, lineage refs included): a row count followed by
// the length-prefixed rows.
func encodeRowSpan(rows []delta.Row) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(rows)))
	var err error
	for _, r := range rows {
		out, err = storage.AppendSpillRow(out, r.Vals, r.Mult, r.W)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func decodeRowSpan(p []byte) ([]delta.Row, error) {
	n, k := binary.Uvarint(p)
	if k <= 0 {
		return nil, fmt.Errorf("core: row span: bad count")
	}
	p = p[k:]
	rows := make([]delta.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		vals, mult, w, sz, err := storage.DecodeSpillRow(p)
		if err != nil {
			return nil, fmt.Errorf("core: row span: %w", err)
		}
		rows = append(rows, delta.Row{Vals: vals, Mult: mult, W: w})
		p = p[sz:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("core: row span: %d trailing bytes", len(p))
	}
	return rows, nil
}

// encodeSinkSpan frames materialised result tuples with their bootstrap
// estimates: per row, the tuple as a spill row (final multiplicity baked in)
// followed by width estimates of five float64 bit patterns each.
func encodeSinkSpan(res *rel.Relation, ests [][]bootstrap.Estimate, lo, hi, width int) ([]byte, error) {
	var out []byte
	var err error
	for i := lo; i < hi; i++ {
		out, err = storage.AppendSpillRow(out, res.Tuples[i].Vals, res.Tuples[i].Mult, nil)
		if err != nil {
			return nil, err
		}
		for _, e := range ests[i] {
			out = appendF64(out, e.Value)
			out = appendF64(out, e.Stdev)
			out = appendF64(out, e.CILo)
			out = appendF64(out, e.CIHi)
			out = appendF64(out, e.RelStd)
		}
	}
	return out, nil
}

func decodeSinkSpan(res *rel.Relation, ests [][]bootstrap.Estimate, lo, hi, width int, p []byte) error {
	tuples := make([]rel.Tuple, hi-lo)
	rowEsts := make([][]bootstrap.Estimate, hi-lo)
	for i := 0; i < hi-lo; i++ {
		vals, mult, _, sz, err := storage.DecodeSpillRow(p)
		if err != nil {
			return fmt.Errorf("core: sink span: %w", err)
		}
		p = p[sz:]
		tuples[i] = rel.Tuple{Vals: vals, Mult: mult}
		re := make([]bootstrap.Estimate, width)
		for j := 0; j < width; j++ {
			if len(p) < 40 {
				return fmt.Errorf("core: sink span: truncated estimates")
			}
			re[j] = bootstrap.Estimate{
				Value:  takeF64(p[0:]),
				Stdev:  takeF64(p[8:]),
				CILo:   takeF64(p[16:]),
				CIHi:   takeF64(p[24:]),
				RelStd: takeF64(p[32:]),
			}
			p = p[40:]
		}
		rowEsts[i] = re
	}
	if len(p) != 0 {
		return fmt.Errorf("core: sink span: %d trailing bytes", len(p))
	}
	copy(res.Tuples[lo:hi], tuples)
	copy(ests[lo:hi], rowEsts)
	return nil
}

// encodePartProbeSpan frames one bucket span of a partitioned probe: an
// entry count, then per probe row with matches (ascending probe index) the
// index, its match count, and the joined rows as spill rows. Zero-match
// probe rows are omitted — absence decodes as no matches.
func encodePartProbeSpan(idx []int, matches [][]delta.Row) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(idx)))
	var err error
	for e, i := range idx {
		out = binary.AppendUvarint(out, uint64(i))
		out = binary.AppendUvarint(out, uint64(len(matches[e])))
		for _, r := range matches[e] {
			out, err = storage.AppendSpillRow(out, r.Vals, r.Mult, r.W)
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// decodePartProbeSpan scatters one bucket span's matches into perProbe,
// validating that every entry's probe row routes to a bucket inside
// [lo, hi) and that indices are strictly ascending. It must not assume a
// single bucket per span: a self-exchange (joiner catch-up replay) merges
// the whole [0, P) range in one payload.
func decodePartProbeSpan(p []byte, lo, hi int, buckets []int, perProbe [][]delta.Row) error {
	n, k := binary.Uvarint(p)
	if k <= 0 {
		return fmt.Errorf("core: part-probe span: bad entry count")
	}
	p = p[k:]
	prev := -1
	type entry struct {
		idx  int
		rows []delta.Row
	}
	entries := make([]entry, 0, n)
	for e := uint64(0); e < n; e++ {
		iv, k := binary.Uvarint(p)
		if k <= 0 {
			return fmt.Errorf("core: part-probe span: bad probe index")
		}
		p = p[k:]
		i := int(iv)
		if i <= prev || i >= len(buckets) {
			return fmt.Errorf("core: part-probe span: probe index %d out of order or range", i)
		}
		if buckets[i] < lo || buckets[i] >= hi {
			return fmt.Errorf("core: part-probe span [%d,%d): probe row %d routes to bucket %d", lo, hi, i, buckets[i])
		}
		prev = i
		cnt, k := binary.Uvarint(p)
		if k <= 0 {
			return fmt.Errorf("core: part-probe span: bad match count")
		}
		p = p[k:]
		rows := make([]delta.Row, 0, cnt)
		for j := uint64(0); j < cnt; j++ {
			vals, mult, w, sz, err := storage.DecodeSpillRow(p)
			if err != nil {
				return fmt.Errorf("core: part-probe span: %w", err)
			}
			rows = append(rows, delta.Row{Vals: vals, Mult: mult, W: w})
			p = p[sz:]
		}
		entries = append(entries, entry{idx: i, rows: rows})
	}
	if len(p) != 0 {
		return fmt.Errorf("core: part-probe span: %d trailing bytes", len(p))
	}
	for _, e := range entries {
		perProbe[e.idx] = e.rows
	}
	return nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func takeF64(p []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(p))
}
