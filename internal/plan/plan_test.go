package plan

import (
	"strings"
	"testing"

	"iolap/internal/agg"
	"iolap/internal/expr"
	"iolap/internal/rel"
)

var aggReg = agg.NewRegistry()

func sessionsSchema() rel.Schema {
	return rel.Schema{
		{Name: "session_id", Type: rel.KString},
		{Name: "buffer_time", Type: rel.KFloat},
		{Name: "play_time", Type: rel.KFloat},
	}
}

func mustAgg(t testing.TB, name string) *agg.Func {
	f, ok := aggReg.Lookup(name)
	if !ok {
		t.Fatalf("aggregate %s missing", name)
	}
	return f
}

// buildSBI constructs the paper's Figure 2(a) plan for Example 1:
//
//	SELECT AVG(play_time) FROM Sessions
//	WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)
func buildSBI(t testing.TB) (root Node, inner *Aggregate, sel *Select, outer *Aggregate) {
	t.Helper()
	avg := mustAgg(t, "AVG")
	innerScan := NewScan("sessions", "s_inner", sessionsSchema(), true)
	inner = NewAggregate(innerScan, nil, []AggSpec{{
		Fn:   avg,
		Arg:  expr.NewCol(1, "buffer_time", rel.KFloat),
		Name: "avg_buffer_time",
	}})
	outerScan := NewScan("sessions", "s", sessionsSchema(), true)
	join := NewJoin(outerScan, inner, nil, nil) // cross join, Fig 2(a) ¯
	sel = NewSelect(join, expr.NewCmp(expr.Gt,
		expr.NewCol(1, "buffer_time", rel.KFloat),
		expr.NewCol(3, "avg_buffer_time", rel.KFloat)))
	outer = NewAggregate(sel, nil, []AggSpec{{
		Fn:   avg,
		Arg:  expr.NewCol(2, "play_time", rel.KFloat),
		Name: "avg_play_time",
	}})
	return outer, inner, sel, outer
}

func TestSBISchemas(t *testing.T) {
	root, inner, sel, _ := buildSBI(t)
	if got := inner.Schema()[0].Name; got != "avg_buffer_time" {
		t.Errorf("inner agg schema = %v", inner.Schema())
	}
	if len(sel.Schema()) != 4 {
		t.Errorf("select schema width = %d, want 4", len(sel.Schema()))
	}
	if got := root.Schema()[0].Name; got != "avg_play_time" {
		t.Errorf("root schema = %v", root.Schema())
	}
}

func TestFinalizeAssignsUniqueIDs(t *testing.T) {
	root, _, _, _ := buildSBI(t)
	n := Finalize(root)
	if n != 6 {
		t.Fatalf("operator count = %d, want 6", n)
	}
	seen := map[int]bool{}
	Walk(root, func(nd Node) {
		if seen[nd.ID()] {
			t.Errorf("duplicate id %d", nd.ID())
		}
		seen[nd.ID()] = true
	})
	for i := 0; i < n; i++ {
		if !seen[i] {
			t.Errorf("missing id %d", i)
		}
	}
}

// TestSBIUncertaintyTagging checks the Section 4.1 propagation against the
// paper's Figure 3 annotations.
func TestSBIUncertaintyTagging(t *testing.T) {
	root, inner, sel, outer := buildSBI(t)
	n := Finalize(root)
	an, err := Analyze(root, n)
	if err != nil {
		t.Fatal(err)
	}
	// ­ (inner aggregate): output attribute uncertain, no tuple unc.
	ii := an.Info[inner.ID()]
	if !ii.UncertainCols[0] {
		t.Error("AVG(buffer_time) must be attribute-uncertain (Fig 3b)")
	}
	if ii.TupleUncertain {
		t.Error("inner aggregate output must not be tuple-uncertain (Fig 3b)")
	}
	if ii.AggSource[0] != inner.ID() {
		t.Errorf("lineage source = %d, want %d", ii.AggSource[0], inner.ID())
	}
	// ¯ (join): deterministic base columns + uncertain avg column, no
	// tuple uncertainty (Fig 3c).
	join := sel.Child
	ji := an.Info[join.ID()]
	wantUnc := []bool{false, false, false, true}
	for i, w := range wantUnc {
		if ji.UncertainCols[i] != w {
			t.Errorf("join col %d uncertain = %v, want %v", i, ji.UncertainCols[i], w)
		}
	}
	if ji.TupleUncertain {
		t.Error("join output must not be tuple-uncertain (Fig 3c)")
	}
	// ° (select): tuple-uncertain because the predicate reads the
	// uncertain average (Fig 3d).
	si := an.Info[sel.ID()]
	if !si.TupleUncertain {
		t.Error("select output must be tuple-uncertain (Fig 3d)")
	}
	// ± (outer aggregate): uncertain attribute and (conservatively)
	// tuple-uncertain output (Fig 3e).
	oi := an.Info[outer.ID()]
	if !oi.UncertainCols[0] {
		t.Error("AVG(play_time) must be attribute-uncertain (Fig 3e)")
	}
	if !oi.TupleUncertain {
		t.Error("outer aggregate must be (conservatively) tuple-uncertain")
	}
}

func TestFlatSPJAHasNoUncertainty(t *testing.T) {
	// SELECT AVG(play_time) FROM sessions WHERE buffer_time > 30
	scan := NewScan("sessions", "", sessionsSchema(), true)
	sel := NewSelect(scan, expr.NewCmp(expr.Gt,
		expr.NewCol(1, "buffer_time", rel.KFloat),
		expr.NewConst(rel.Float(30))))
	root := NewAggregate(sel, nil, []AggSpec{{
		Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(2, "", rel.KFloat), Name: "a"}})
	n := Finalize(root)
	an, err := Analyze(root, n)
	if err != nil {
		t.Fatal(err)
	}
	if an.Info[sel.ID()].TupleUncertain {
		t.Error("deterministic predicate must not create tuple uncertainty")
	}
	if !an.Info[root.ID()].UncertainCols[0] {
		t.Error("aggregate on streamed data is still attribute-uncertain")
	}
	if HasNestedAggregates(root, an) {
		t.Error("flat SPJA query misclassified as nested")
	}
}

func TestHasNestedAggregatesSBI(t *testing.T) {
	root, _, _, _ := buildSBI(t)
	n := Finalize(root)
	an, err := Analyze(root, n)
	if err != nil {
		t.Fatal(err)
	}
	if !HasNestedAggregates(root, an) {
		t.Error("SBI must be classified as nested")
	}
}

func TestStaticScanIsComplete(t *testing.T) {
	scan := NewScan("dim", "", rel.Schema{{Name: "k", Type: rel.KInt}}, false)
	root := NewAggregate(scan, nil, []AggSpec{{
		Fn: mustAgg(t, "SUM"), Arg: expr.NewCol(0, "", rel.KInt), Name: "s"}})
	n := Finalize(root)
	an, err := Analyze(root, n)
	if err != nil {
		t.Fatal(err)
	}
	if an.Info[root.ID()].UncertainCols[0] {
		t.Error("aggregate over a fully-read static table is exact")
	}
}

func TestUncertainGroupByRejected(t *testing.T) {
	// Grouping by an uncertain aggregate output is outside the paper's
	// supported class (Section 3.3) and must be rejected.
	scan := NewScan("sessions", "", sessionsSchema(), true)
	inner := NewAggregate(scan, nil, []AggSpec{{
		Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(1, "", rel.KFloat), Name: "a"}})
	root := NewAggregate(inner, []int{0}, []AggSpec{{
		Fn: mustAgg(t, "COUNT"), Name: "c"}})
	n := Finalize(root)
	if _, err := Analyze(root, n); err == nil {
		t.Error("uncertain group-by key must be rejected")
	}
}

func TestUncertainJoinKeyRejected(t *testing.T) {
	scan := NewScan("sessions", "", sessionsSchema(), true)
	inner := NewAggregate(scan, nil, []AggSpec{{
		Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(1, "", rel.KFloat), Name: "a"}})
	other := NewScan("sessions", "o", sessionsSchema(), true)
	join := NewJoin(other, inner, []int{1}, []int{0}) // join on uncertain avg
	n := Finalize(join)
	if _, err := Analyze(join, n); err == nil {
		t.Error("uncertain join key must be rejected")
	}
}

// TestSBILineageBlocks checks the Section 6.1 example: the SBI plan divides
// into two lineage blocks, {¬,­} and {®,¯,°,±}.
func TestSBILineageBlocks(t *testing.T) {
	root, inner, _, _ := buildSBI(t)
	Finalize(root)
	blocks := Blocks(root)
	if len(blocks) != 2 {
		t.Fatalf("block count = %d, want 2 (paper §6.1)", len(blocks))
	}
	var innerBlock, outerBlock *Block
	for i := range blocks {
		if blocks[i].CapAgg == inner.ID() {
			innerBlock = &blocks[i]
		} else {
			outerBlock = &blocks[i]
		}
	}
	if innerBlock == nil || len(innerBlock.Members) != 2 {
		t.Fatalf("inner block wrong: %+v", blocks)
	}
	if outerBlock == nil || len(outerBlock.Members) != 4 {
		t.Fatalf("outer block wrong: %+v", blocks)
	}
	if outerBlock.CapAgg != root.ID() {
		t.Errorf("outer block cap = %d, want root %d", outerBlock.CapAgg, root.ID())
	}
}

func TestScaleExp(t *testing.T) {
	root, inner, sel, _ := buildSBI(t)
	n := Finalize(root)
	exp := ScaleExp(root, n)
	if exp[inner.ID()] != 0 {
		t.Error("aggregate output resets the scale exponent")
	}
	if exp[sel.ID()] != 1 {
		t.Errorf("select exp = %d, want 1 (one streamed scan below)", exp[sel.ID()])
	}
	if exp[sel.Child.ID()] != 1 {
		t.Errorf("join exp = %d, want 1", exp[sel.Child.ID()])
	}
}

func TestValidateCatchesBadIndexes(t *testing.T) {
	scan := NewScan("sessions", "", sessionsSchema(), true)
	bad := NewSelect(scan, expr.NewCmp(expr.Gt,
		expr.NewCol(9, "", rel.KFloat), expr.NewConst(rel.Float(0))))
	Finalize(bad)
	if err := Validate(bad); err == nil {
		t.Error("out-of-range predicate column must be caught")
	}
	good := NewSelect(scan, expr.NewCmp(expr.Gt,
		expr.NewCol(1, "", rel.KFloat), expr.NewConst(rel.Float(0))))
	Finalize(good)
	if err := Validate(good); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestFormatAndDescribe(t *testing.T) {
	root, _, _, _ := buildSBI(t)
	Finalize(root)
	out := Format(root)
	for _, want := range []string{"Aggregate", "Select", "Join(cross)", "streamed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestStreamedScans(t *testing.T) {
	root, _, _, _ := buildSBI(t)
	Finalize(root)
	if got := len(StreamedScans(root)); got != 2 {
		t.Errorf("streamed scans = %d, want 2", got)
	}
}

func TestUnionSchemaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("union of mismatched schemas must panic")
		}
	}()
	a := NewScan("a", "", rel.Schema{{Name: "x", Type: rel.KInt}}, false)
	b := NewScan("b", "", rel.Schema{{Name: "y", Type: rel.KString}}, false)
	NewUnion(a, b)
}

func TestUnionPropagation(t *testing.T) {
	mk := func(streamed bool) Node {
		scan := NewScan("sessions", "", sessionsSchema(), streamed)
		return NewProject(scan,
			[]expr.Expr{expr.NewCol(1, "", rel.KFloat)}, []string{"bt"})
	}
	u := NewUnion(mk(true), mk(false))
	n := Finalize(u)
	an, err := Analyze(u, n)
	if err != nil {
		t.Fatal(err)
	}
	info := an.Info[u.ID()]
	if info.UncertainCols[0] {
		t.Error("projection of base columns stays deterministic")
	}
	if !info.Incomplete {
		t.Error("union with one streamed side is incomplete")
	}
}

func TestProjectPropagatesUncertainty(t *testing.T) {
	scan := NewScan("sessions", "", sessionsSchema(), true)
	inner := NewAggregate(scan, nil, []AggSpec{{
		Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(1, "", rel.KFloat), Name: "a"}})
	proj := NewProject(inner, []expr.Expr{
		expr.NewArith(expr.Mul, expr.NewCol(0, "a", rel.KFloat), expr.NewConst(rel.Float(2))),
		expr.NewConst(rel.Float(1)),
	}, []string{"double_avg", "one"})
	n := Finalize(proj)
	an, err := Analyze(proj, n)
	if err != nil {
		t.Fatal(err)
	}
	info := an.Info[proj.ID()]
	if !info.UncertainCols[0] {
		t.Error("expression over uncertain column must be uncertain")
	}
	if info.UncertainCols[1] {
		t.Error("constant column must stay deterministic")
	}
	// The computed column is not a bare reference: lineage source resets
	// and refresh re-evaluates the projection locally.
	if info.AggSource[0] != -1 {
		t.Error("computed columns should not claim a direct agg source")
	}
	// A bare column reference keeps the lineage source.
	bare := NewProject(inner, []expr.Expr{expr.NewCol(0, "a", rel.KFloat)}, []string{"a2"})
	n = Finalize(bare)
	an, err = Analyze(bare, n)
	if err != nil {
		t.Fatal(err)
	}
	if an.Info[bare.ID()].AggSource[0] != inner.ID() {
		t.Error("bare reference must keep its lineage source")
	}
}

// ---------------------------------------------------------------------------
// Appendix B rewrites

func TestDecomposeRewrite(t *testing.T) {
	// γ_{key, SUM(val)}( fact ⋈_key (subquery aggregate) )  — the Eq. 1/4
	// shape: the rewrite pushes a partial SUM below the join.
	factSchema := rel.Schema{
		{Name: "key", Type: rel.KInt},
		{Name: "val", Type: rel.KFloat},
	}
	fact := NewScan("fact", "", factSchema, true)
	sub := NewAggregate(NewScan("fact", "f2", factSchema, true), []int{0},
		[]AggSpec{{Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(1, "", rel.KFloat), Name: "a"}})
	join := NewJoin(fact, sub, []int{0}, []int{0})
	root := NewAggregate(join, []int{0}, []AggSpec{{
		Fn: mustAgg(t, "SUM"), Arg: expr.NewCol(1, "", rel.KFloat), Name: "total"}})
	rw := NewRewriter(aggReg)
	out := rw.Rewrite(root)
	fp := Fingerprint(out)
	if !strings.Contains(fp, "__partial") {
		t.Errorf("decomposition did not fire:\n%s", fp)
	}
	// The top must still be an aggregate producing "total".
	top, ok := out.(*Aggregate)
	if !ok || top.Aggs[0].Name != "total" {
		t.Errorf("rewritten root wrong: %s", fp)
	}
	// And a partial aggregate must now sit below the join.
	j, ok := top.Child.(*Join)
	if !ok {
		t.Fatalf("expected join under root, got %s", fp)
	}
	if _, ok := j.L.(*Aggregate); !ok {
		t.Errorf("expected partial aggregate on the left join input: %s", fp)
	}
}

func TestDecomposeDoesNotFireOnAvg(t *testing.T) {
	factSchema := rel.Schema{
		{Name: "key", Type: rel.KInt},
		{Name: "val", Type: rel.KFloat},
	}
	fact := NewScan("fact", "", factSchema, true)
	sub := NewAggregate(NewScan("fact", "f2", factSchema, true), []int{0},
		[]AggSpec{{Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(1, "", rel.KFloat), Name: "a"}})
	join := NewJoin(fact, sub, []int{0}, []int{0})
	root := NewAggregate(join, []int{0}, []AggSpec{{
		Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(1, "", rel.KFloat), Name: "m"}})
	out := NewRewriter(aggReg).Rewrite(root)
	if strings.Contains(Fingerprint(out), "__partial") {
		t.Error("AVG is not decomposable by Eq. 1 and must not be rewritten")
	}
}

func TestFactorizationRewrite(t *testing.T) {
	dim := rel.Schema{{Name: "k", Type: rel.KInt}}
	mkScan := func(name string) Node { return NewScan(name, "", dim, false) }
	q := mkScan("q")
	j1 := NewJoin(q, mkScan("a"), []int{0}, []int{0})
	q2 := mkScan("q")
	j2 := NewJoin(q2, mkScan("b"), []int{0}, []int{0})
	u := NewUnion(j1, j2)
	out := NewRewriter(aggReg).Rewrite(u)
	if _, ok := out.(*Join); !ok {
		t.Errorf("factorization should hoist the shared join: %s", Fingerprint(out))
	}
	// Schema must be preserved.
	if !out.Schema().Equal(u.Schema()) {
		t.Errorf("rewrite changed schema: %s vs %s", out.Schema(), u.Schema())
	}
}

func TestRewriteIdentityOnSimplePlans(t *testing.T) {
	root, _, _, _ := buildSBI(t)
	before := Fingerprint(root)
	out := NewRewriter(aggReg).Rewrite(root)
	if Fingerprint(out) != before {
		t.Error("SBI (cross join on scalar subquery) should be unchanged")
	}
}

func TestScaleExpUnionTakesMax(t *testing.T) {
	// A union row is scaled once even when both sides stream.
	mk := func() Node { return NewScan("sessions", "", sessionsSchema(), true) }
	u := NewUnion(mk(), mk())
	n := Finalize(u)
	exp := ScaleExp(u, n)
	if exp[u.ID()] != 1 {
		t.Errorf("union scale exp = %d, want 1 (max, not sum)", exp[u.ID()])
	}
	// Joins multiply multiplicities: exponents add.
	j := NewJoin(mk(), mk(), nil, nil)
	n = Finalize(j)
	exp = ScaleExp(j, n)
	if exp[j.ID()] != 2 {
		t.Errorf("join scale exp = %d, want 2 (sum)", exp[j.ID()])
	}
}

func TestFingerprintIgnoresIDs(t *testing.T) {
	a, _, _, _ := buildSBI(t)
	b, _, _, _ := buildSBI(t)
	Finalize(a)
	// b never finalized: ids differ, fingerprints must not.
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint must be id-independent")
	}
}

func TestBlocksOnFlatPlan(t *testing.T) {
	// A flat SPJA query is a single lineage block capped by its aggregate.
	scan := NewScan("sessions", "", sessionsSchema(), true)
	sel := NewSelect(scan, expr.NewCmp(expr.Gt,
		expr.NewCol(1, "", rel.KFloat), expr.NewConst(rel.Float(0))))
	root := NewAggregate(sel, nil, []AggSpec{{
		Fn: mustAgg(t, "AVG"), Arg: expr.NewCol(2, "", rel.KFloat), Name: "a"}})
	Finalize(root)
	blocks := Blocks(root)
	if len(blocks) != 1 {
		t.Fatalf("flat plan blocks = %d, want 1", len(blocks))
	}
	if len(blocks[0].Members) != 3 || blocks[0].CapAgg != root.ID() {
		t.Errorf("block wrong: %+v", blocks[0])
	}
}

func TestFormatAnnotated(t *testing.T) {
	root, inner, _, _ := buildSBI(t)
	n := Finalize(root)
	an, err := Analyze(root, n)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatAnnotated(root, an)
	for _, want := range []string{
		"u#=T", // the select and outer aggregate are tuple-uncertain
		"uA{avg_buffer_time<-#" + itoa(inner.ID()) + "}", // lineage source
		"incomplete",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated plan missing %q:\n%s", want, out)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
