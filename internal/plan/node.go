// Package plan defines logical query plans and the compile-time analyses the
// paper performs on them: uncertainty tagging (Section 4.1), lineage block
// partitioning (Section 6.1), and the viewlet-transformation rewrites of
// Appendix B.
//
// Plans are built from the positive relational algebra the paper supports
// (Section 3.3): SELECT, PROJECT, JOIN (equi/natural), UNION and AGGREGATE.
// Nested aggregate subqueries are expressed — exactly as in the paper's
// Figure 2(a) — as a join between the outer block and the subquery's
// aggregate output.
package plan

import (
	"fmt"
	"strings"

	"iolap/internal/agg"
	"iolap/internal/expr"
	"iolap/internal/rel"
)

// Node is a logical plan operator.
type Node interface {
	// Schema is the operator's output schema.
	Schema() rel.Schema
	// Children returns the input operators.
	Children() []Node
	// ID is the plan-unique operator id (assigned by Finalize); it keys
	// lineage references and operator states.
	ID() int
	setID(id int)
	// Describe renders one line for plan printing.
	Describe() string
}

type base struct {
	id int
}

func (b *base) ID() int      { return b.id }
func (b *base) setID(id int) { b.id = id }

// Scan reads a base relation. Streamed scans are fed mini-batch by
// mini-batch; non-streamed ("dimension") scans are read fully at batch 1.
type Scan struct {
	base
	Table    string
	Alias    string
	Streamed bool
	Out      rel.Schema
}

// NewScan builds a scan node; alias defaults to the table name.
func NewScan(table, alias string, schema rel.Schema, streamed bool) *Scan {
	if alias == "" {
		alias = table
	}
	return &Scan{Table: table, Alias: alias, Streamed: streamed, Out: schema.WithTable(alias)}
}

func (s *Scan) Schema() rel.Schema { return s.Out }
func (s *Scan) Children() []Node   { return nil }
func (s *Scan) Describe() string {
	mode := "static"
	if s.Streamed {
		mode = "streamed"
	}
	return fmt.Sprintf("Scan(%s AS %s, %s)", s.Table, s.Alias, mode)
}

// Select filters rows by a predicate.
type Select struct {
	base
	Child Node
	Pred  expr.Expr
}

// NewSelect builds a filter node.
func NewSelect(child Node, pred expr.Expr) *Select {
	return &Select{Child: child, Pred: pred}
}

func (s *Select) Schema() rel.Schema { return s.Child.Schema() }
func (s *Select) Children() []Node   { return []Node{s.Child} }
func (s *Select) Describe() string   { return "Select(" + s.Pred.String() + ")" }

// Project computes output expressions (SQL projection, no dedup).
type Project struct {
	base
	Child Node
	Exprs []expr.Expr
	Names []string
	Out   rel.Schema
}

// NewProject builds a projection; names label the output columns.
func NewProject(child Node, exprs []expr.Expr, names []string) *Project {
	out := make(rel.Schema, len(exprs))
	for i, e := range exprs {
		out[i] = rel.Column{Name: names[i], Type: e.Type()}
	}
	return &Project{Child: child, Exprs: exprs, Names: names, Out: out}
}

func (p *Project) Schema() rel.Schema { return p.Out }
func (p *Project) Children() []Node   { return []Node{p.Child} }
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String() + " AS " + p.Names[i]
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Join is an equi-join (natural join after key resolution); empty key lists
// make it a cross join — the shape scalar subqueries compile to.
type Join struct {
	base
	L, R         Node
	LKeys, RKeys []int // parallel column-index lists; len 0 = cross join
	Out          rel.Schema
}

// NewJoin builds an equi-join on the given key column indexes.
func NewJoin(l, r Node, lKeys, rKeys []int) *Join {
	if len(lKeys) != len(rKeys) {
		panic("plan: join key arity mismatch")
	}
	return &Join{L: l, R: r, LKeys: lKeys, RKeys: rKeys,
		Out: l.Schema().Concat(r.Schema())}
}

func (j *Join) Schema() rel.Schema { return j.Out }
func (j *Join) Children() []Node   { return []Node{j.L, j.R} }
func (j *Join) Describe() string {
	if len(j.LKeys) == 0 {
		return "Join(cross)"
	}
	ls, rs := j.L.Schema(), j.R.Schema()
	parts := make([]string, len(j.LKeys))
	for i := range j.LKeys {
		parts[i] = ls[j.LKeys[i]].QualifiedName() + "=" + rs[j.RKeys[i]].QualifiedName()
	}
	return "Join(" + strings.Join(parts, " AND ") + ")"
}

// Union is bag union (UNION ALL).
type Union struct {
	base
	L, R Node
}

// NewUnion builds a bag union; the input schemas must be compatible.
func NewUnion(l, r Node) *Union {
	if !l.Schema().Equal(r.Schema()) {
		panic(fmt.Sprintf("plan: union schema mismatch: %s vs %s", l.Schema(), r.Schema()))
	}
	return &Union{L: l, R: r}
}

func (u *Union) Schema() rel.Schema { return u.L.Schema() }
func (u *Union) Children() []Node   { return []Node{u.L, u.R} }
func (u *Union) Describe() string   { return "Union" }

// AggSpec is one aggregate in an AGGREGATE operator.
type AggSpec struct {
	Fn   *agg.Func
	Arg  expr.Expr // nil for COUNT(*)
	Name string    // output column name
}

// Aggregate groups by column indexes and computes aggregates.
type Aggregate struct {
	base
	Child   Node
	GroupBy []int
	Aggs    []AggSpec
	Out     rel.Schema
}

// NewAggregate builds a group-by/aggregate node. Output schema is the
// group-by columns followed by one column per aggregate.
func NewAggregate(child Node, groupBy []int, aggs []AggSpec) *Aggregate {
	cs := child.Schema()
	out := make(rel.Schema, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		out = append(out, cs[g])
	}
	for _, a := range aggs {
		out = append(out, rel.Column{Name: a.Name, Type: rel.KFloat})
	}
	return &Aggregate{Child: child, GroupBy: groupBy, Aggs: aggs, Out: out}
}

func (a *Aggregate) Schema() rel.Schema { return a.Out }
func (a *Aggregate) Children() []Node   { return []Node{a.Child} }
func (a *Aggregate) Describe() string {
	cs := a.Child.Schema()
	var parts []string
	for _, g := range a.GroupBy {
		parts = append(parts, cs[g].QualifiedName())
	}
	for _, sp := range a.Aggs {
		arg := "*"
		if sp.Arg != nil {
			arg = sp.Arg.String()
		}
		parts = append(parts, fmt.Sprintf("%s(%s) AS %s", sp.Fn.Name, arg, sp.Name))
	}
	return "Aggregate(" + strings.Join(parts, ", ") + ")"
}

// Walk visits the plan bottom-up (children before parents).
func Walk(n Node, fn func(Node)) {
	for _, c := range n.Children() {
		Walk(c, fn)
	}
	fn(n)
}

// Finalize assigns plan-unique operator ids in bottom-up order and returns
// the number of operators. It must be called once before execution.
func Finalize(root Node) int {
	id := 0
	Walk(root, func(n Node) {
		n.setID(id)
		id++
	})
	return id
}

// Format renders the plan as an indented tree.
func Format(root Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "#%d %s\n", n.ID(), n.Describe())
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}

// Fingerprint renders the plan structure without operator ids; two plans
// with equal fingerprints are structurally identical. Used by the
// factorization rewrite and by tests.
func Fingerprint(n Node) string {
	var b strings.Builder
	var rec func(Node)
	rec = func(n Node) {
		b.WriteString(n.Describe())
		b.WriteByte('[')
		for i, c := range n.Children() {
			if i > 0 {
				b.WriteByte(',')
			}
			rec(c)
		}
		b.WriteByte(']')
	}
	rec(n)
	return b.String()
}

// StreamedScans returns the streamed scan nodes in the plan.
func StreamedScans(root Node) []*Scan {
	var out []*Scan
	Walk(root, func(n Node) {
		if s, ok := n.(*Scan); ok && s.Streamed {
			out = append(out, s)
		}
	})
	return out
}

// ScaleExp returns, per node id, the number of streamed scans in that node's
// subtree *below any intervening aggregate*. Aggregate outputs are values
// about D_i, so they reset the exponent: an extensive aggregate multiplies
// its raw result by m_i^k where k is its input's exponent.
func ScaleExp(root Node, numOps int) []int {
	exp := make([]int, numOps)
	Walk(root, func(n Node) {
		switch t := n.(type) {
		case *Scan:
			if t.Streamed {
				exp[n.ID()] = 1
			}
		case *Aggregate:
			exp[n.ID()] = 0
		case *Union:
			// A union row comes from one input, so it is scaled once:
			// take the max, not the sum. (Mixing streamed and static
			// union sides is outside the supported class.)
			for _, c := range n.Children() {
				if exp[c.ID()] > exp[n.ID()] {
					exp[n.ID()] = exp[c.ID()]
				}
			}
		default:
			// Joins multiply multiplicities: exponents add.
			for _, c := range n.Children() {
				exp[n.ID()] += exp[c.ID()]
			}
		}
	})
	return exp
}
