package plan

import (
	"fmt"
	"strings"

	"iolap/internal/expr"
)

// NodeInfo records the compile-time uncertainty tagging (Section 4.1) of one
// operator's output.
type NodeInfo struct {
	// UncertainCols[i] is true when output column i can carry attribute
	// uncertainty (uA may be T for some tuples).
	UncertainCols []bool
	// TupleUncertain is true when the operator can emit tuples whose
	// multiplicity may change across batches (u# may be T).
	TupleUncertain bool
	// Incomplete is true when the subtree reads a streamed relation, i.e.
	// aggregates above it run on incomplete data.
	Incomplete bool
	// AggSource[i], for uncertain columns produced directly by an
	// aggregate, is the id of that aggregate operator (lineage source);
	// -1 otherwise. Columns computed *from* uncertain columns keep -1 and
	// are recomputed via their operator's expressions on refresh.
	AggSource []int
}

// Analysis is the per-operator tagging for a finalized plan.
type Analysis struct {
	Info []NodeInfo // indexed by node ID
}

// Analyze runs the Section 4.1 uncertainty propagation rules over the plan
// and validates the Section 3.3 restrictions (deterministic join and
// group-by keys). Finalize must have been called.
func Analyze(root Node, numOps int) (*Analysis, error) {
	a := &Analysis{Info: make([]NodeInfo, numOps)}
	var err error
	Walk(root, func(n Node) {
		if err != nil {
			return
		}
		err = a.analyzeNode(n)
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

func newInfo(n int) NodeInfo {
	info := NodeInfo{UncertainCols: make([]bool, n), AggSource: make([]int, n)}
	for i := range info.AggSource {
		info.AggSource[i] = -1
	}
	return info
}

func (a *Analysis) analyzeNode(n Node) error {
	switch t := n.(type) {
	case *Scan:
		// Base relation: all attributes deterministic. Physical tuples
		// already seen have certain multiplicity (s(t;i)=1 is monotone),
		// so emitted rows carry u# = F.
		info := newInfo(len(t.Out))
		info.Incomplete = t.Streamed
		a.Info[n.ID()] = info

	case *Select:
		// SELECT propagates attribute uncertainty; it adds tuple
		// uncertainty when the predicate reads uncertain attributes.
		child := a.Info[t.Child.ID()]
		info := newInfo(len(child.UncertainCols))
		copy(info.UncertainCols, child.UncertainCols)
		copy(info.AggSource, child.AggSource)
		info.Incomplete = child.Incomplete
		info.TupleUncertain = child.TupleUncertain || a.predUncertain(t)
		a.Info[n.ID()] = info

	case *Project:
		// PROJECT propagates tuple uncertainty; an output column is
		// uncertain when its expression reads an uncertain input column.
		child := a.Info[t.Child.ID()]
		uncMap := colSet(child.UncertainCols)
		info := newInfo(len(t.Exprs))
		for i, e := range t.Exprs {
			for _, c := range e.Cols(nil) {
				if uncMap[c] {
					info.UncertainCols[i] = true
				}
			}
			// A bare column reference keeps its lineage source.
			if src := singleColSource(e, child); src >= 0 && info.UncertainCols[i] {
				info.AggSource[i] = src
			}
		}
		info.Incomplete = child.Incomplete
		info.TupleUncertain = child.TupleUncertain
		a.Info[n.ID()] = info

	case *Join:
		l, r := a.Info[t.L.ID()], a.Info[t.R.ID()]
		// Section 3.3: approximate join keys are unsupported.
		for _, k := range t.LKeys {
			if l.UncertainCols[k] {
				return fmt.Errorf("plan: uncertain join key %s",
					t.L.Schema()[k].QualifiedName())
			}
		}
		for _, k := range t.RKeys {
			if r.UncertainCols[k] {
				return fmt.Errorf("plan: uncertain join key %s",
					t.R.Schema()[k].QualifiedName())
			}
		}
		info := newInfo(len(l.UncertainCols) + len(r.UncertainCols))
		copy(info.UncertainCols, l.UncertainCols)
		copy(info.UncertainCols[len(l.UncertainCols):], r.UncertainCols)
		copy(info.AggSource, l.AggSource)
		copy(info.AggSource[len(l.AggSource):], r.AggSource)
		info.Incomplete = l.Incomplete || r.Incomplete
		info.TupleUncertain = l.TupleUncertain || r.TupleUncertain
		a.Info[n.ID()] = info

	case *Union:
		l, r := a.Info[t.L.ID()], a.Info[t.R.ID()]
		info := newInfo(len(l.UncertainCols))
		for i := range info.UncertainCols {
			info.UncertainCols[i] = l.UncertainCols[i] || r.UncertainCols[i]
			if l.AggSource[i] == r.AggSource[i] {
				info.AggSource[i] = l.AggSource[i]
			}
		}
		info.Incomplete = l.Incomplete || r.Incomplete
		info.TupleUncertain = l.TupleUncertain || r.TupleUncertain
		a.Info[n.ID()] = info

	case *Aggregate:
		child := a.Info[t.Child.ID()]
		cs := t.Child.Schema()
		// Section 3.3: approximate group-by keys are unsupported.
		for _, g := range t.GroupBy {
			if child.UncertainCols[g] {
				return fmt.Errorf("plan: uncertain group-by key %s",
					cs[g].QualifiedName())
			}
		}
		info := newInfo(len(t.GroupBy) + len(t.Aggs))
		// Group-by output columns are deterministic (validated above).
		// Aggregate result columns are uncertain when computed on
		// incomplete data, on tuple-uncertain input, or over uncertain
		// argument columns.
		uncMap := colSet(child.UncertainCols)
		for i, sp := range t.Aggs {
			out := len(t.GroupBy) + i
			unc := child.Incomplete || child.TupleUncertain
			if sp.Arg != nil {
				for _, c := range sp.Arg.Cols(nil) {
					if uncMap[c] {
						unc = true
					}
				}
			}
			info.UncertainCols[out] = unc
			if unc {
				info.AggSource[out] = n.ID()
			}
		}
		info.Incomplete = child.Incomplete
		// A group's existence is certain once any certain-multiplicity
		// input tuple contributes (u# = AND over the group). At compile
		// time this is refined per group at runtime; conservatively the
		// operator can emit tuple-uncertain rows only if its input can.
		info.TupleUncertain = child.TupleUncertain
		a.Info[n.ID()] = info

	default:
		return fmt.Errorf("plan: unknown node type %T", n)
	}
	return nil
}

// predUncertain reports whether a select's predicate reads any uncertain
// input column.
func (a *Analysis) predUncertain(s *Select) bool {
	child := a.Info[s.Child.ID()]
	for _, c := range s.Pred.Cols(nil) {
		if child.UncertainCols[c] {
			return true
		}
	}
	return false
}

func colSet(unc []bool) map[int]bool {
	m := make(map[int]bool)
	for i, u := range unc {
		if u {
			m[i] = true
		}
	}
	return m
}

// singleColSource returns the lineage source when e is a bare column
// reference into the child; -1 otherwise (computed columns are refreshed by
// re-evaluating their operator's expression locally).
func singleColSource(e interface{ Cols([]int) []int }, child NodeInfo) int {
	col, ok := e.(*expr.Col)
	if !ok {
		return -1
	}
	return child.AggSource[col.Idx]
}

// HasNestedAggregates reports whether the plan contains an aggregate whose
// result feeds another operator that must re-evaluate across batches — the
// query class (nested subqueries) on which classical delta rules degrade.
func HasNestedAggregates(root Node, a *Analysis) bool {
	nested := false
	Walk(root, func(n Node) {
		switch t := n.(type) {
		case *Select:
			if a.predUncertain(t) {
				nested = true
			}
		case *Aggregate:
			child := a.Info[t.Child.ID()]
			for _, sp := range t.Aggs {
				if sp.Arg == nil {
					continue
				}
				for _, c := range sp.Arg.Cols(nil) {
					if child.UncertainCols[c] {
						nested = true
					}
				}
			}
		}
	})
	return nested
}

// Validate checks structural invariants of a finalized plan: every column
// index in expressions, keys and group-by lists is within its input schema.
func Validate(root Node) error {
	var err error
	Walk(root, func(n Node) {
		if err != nil {
			return
		}
		check := func(cols []int, width int, what string) {
			for _, c := range cols {
				if c < 0 || c >= width {
					err = fmt.Errorf("plan: %s column %d out of range (width %d) at #%d %s",
						what, c, width, n.ID(), n.Describe())
				}
			}
		}
		switch t := n.(type) {
		case *Select:
			check(t.Pred.Cols(nil), len(t.Child.Schema()), "predicate")
		case *Project:
			for _, e := range t.Exprs {
				check(e.Cols(nil), len(t.Child.Schema()), "projection")
			}
		case *Join:
			check(t.LKeys, len(t.L.Schema()), "left key")
			check(t.RKeys, len(t.R.Schema()), "right key")
		case *Aggregate:
			check(t.GroupBy, len(t.Child.Schema()), "group-by")
			for _, sp := range t.Aggs {
				if sp.Arg != nil {
					check(sp.Arg.Cols(nil), len(t.Child.Schema()), "aggregate arg")
				}
			}
		}
	})
	return err
}

// FormatAnnotated renders the plan tree with its uncertainty tagging — the
// Figure 3 annotations as a diagnostic: per-operator tuple uncertainty and
// the uncertain output columns with their lineage sources.
func FormatAnnotated(root Node, an *Analysis) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		info := an.Info[n.ID()]
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "#%d %s", n.ID(), n.Describe())
		var tags []string
		if info.TupleUncertain {
			tags = append(tags, "u#=T")
		}
		var unc []string
		schema := n.Schema()
		for i, u := range info.UncertainCols {
			if !u {
				continue
			}
			col := schema[i].Name
			if src := info.AggSource[i]; src >= 0 {
				col += fmt.Sprintf("<-#%d", src)
			}
			unc = append(unc, col)
		}
		if len(unc) > 0 {
			tags = append(tags, "uA{"+strings.Join(unc, ",")+"}")
		}
		if info.Incomplete {
			tags = append(tags, "incomplete")
		}
		if len(tags) > 0 {
			fmt.Fprintf(&b, "   [%s]", strings.Join(tags, " "))
		}
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}
