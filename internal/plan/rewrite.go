package plan

import (
	"iolap/internal/agg"
	"iolap/internal/expr"
	"iolap/internal/rel"
)

// Appendix B: the viewlet-transformation optimizations of DBToaster,
// expressed as plan rewriting rules. Combined with the delta update rules of
// Section 4.2 these achieve DBToaster's higher-order delta updates; the HDA
// baseline engine applies them before execution.

// Rewriter applies viewlet rewrites until fixpoint.
type Rewriter struct {
	aggs *agg.Registry
}

// NewRewriter builds a rewriter using the given aggregate registry.
func NewRewriter(aggs *agg.Registry) *Rewriter { return &Rewriter{aggs: aggs} }

// Rewrite applies the rules bottom-up once per pass, iterating until no rule
// fires (bounded by plan depth). It returns the rewritten plan; Finalize
// must be re-run afterwards.
func (rw *Rewriter) Rewrite(root Node) Node {
	for pass := 0; pass < 8; pass++ {
		var changed bool
		root, changed = rw.pass(root)
		if !changed {
			return root
		}
	}
	return root
}

func (rw *Rewriter) pass(n Node) (Node, bool) {
	changed := false
	switch t := n.(type) {
	case *Select:
		c, ch := rw.pass(t.Child)
		if ch {
			t = NewSelect(c, t.Pred)
			changed = true
		}
		return t, changed
	case *Project:
		c, ch := rw.pass(t.Child)
		if ch {
			t = NewProject(c, t.Exprs, t.Names)
			changed = true
		}
		return t, changed
	case *Join:
		l, chL := rw.pass(t.L)
		r, chR := rw.pass(t.R)
		if chL || chR {
			t = NewJoin(l, r, t.LKeys, t.RKeys)
			changed = true
		}
		return t, changed
	case *Union:
		l, chL := rw.pass(t.L)
		r, chR := rw.pass(t.R)
		if chL || chR {
			t = NewUnion(l, r)
			changed = true
		}
		// Factorization (Appendix B, Eq. 2): (Q ⋈ Q1) ∪ (Q ⋈ Q2)
		// = Q ⋈ (Q1 ∪ Q2) when the shared side is structurally the
		// same subplan.
		if jl, okL := l.(*Join); okL {
			if jr, okR := r.(*Join); okR &&
				Fingerprint(jl.L) == Fingerprint(jr.L) &&
				keysEqual(jl.LKeys, jr.LKeys) && keysEqual(jl.RKeys, jr.RKeys) &&
				jl.R.Schema().Equal(jr.R.Schema()) {
				return NewJoin(jl.L, NewUnion(jl.R, jr.R), jl.LKeys, jl.RKeys), true
			}
		}
		return t, changed
	case *Aggregate:
		c, ch := rw.pass(t.Child)
		if ch {
			t = NewAggregate(c, t.GroupBy, t.Aggs)
			changed = true
		}
		if nt, fired := rw.decompose(t); fired {
			return nt, true
		}
		return t, changed
	default:
		return n, false
	}
}

func keysEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decompose implements Query Decomposition (Appendix B, Eq. 1): a SUM over
// a key-partitioned cross/equi join where every aggregate argument reads
// only one side pushes partial group-by aggregates below the join, shrinking
// the join state from |Q| to the number of distinct keys.
//
//	γ_{AB, SUM(f1*f2)}(Q1 ⋈ Q2)
//	  = γ_{AB, SUM(s1*s2)}(γ_{A,SUM(f1)}(Q1) ⋈ γ_{B,SUM(f2)}(Q2))
//
// The recognized pattern here is the common special case with a single SUM
// or COUNT whose argument reads only the left side, group-by columns split
// cleanly across sides, and equi-join keys that are all group-by columns.
func (rw *Rewriter) decompose(a *Aggregate) (Node, bool) {
	j, ok := a.Child.(*Join)
	if !ok || len(a.Aggs) != 1 {
		return nil, false
	}
	sp := a.Aggs[0]
	if sp.Fn.Name != "SUM" && sp.Fn.Name != "COUNT" {
		return nil, false
	}
	lw := len(j.L.Schema())
	// Aggregate argument must read only left-side columns.
	if sp.Arg != nil {
		for _, c := range sp.Arg.Cols(nil) {
			if c >= lw {
				return nil, false
			}
		}
	}
	// All group-by columns must be left-side and include all left join
	// keys (so pre-aggregation preserves the join).
	leftKeys := map[int]bool{}
	for _, k := range j.LKeys {
		leftKeys[k] = true
	}
	gbSet := map[int]bool{}
	for _, g := range a.GroupBy {
		if g >= lw {
			return nil, false
		}
		gbSet[g] = true
	}
	for k := range leftKeys {
		if !gbSet[k] {
			return nil, false
		}
	}
	// The right side must contribute only existence (no columns used):
	// recognized when the join is a semijoin-shaped filter. Require the
	// right side to be an Aggregate already (a subquery result), so the
	// rewrite is the nested-aggregate decorrelation shape of Eq. 4.
	if _, rAgg := j.R.(*Aggregate); !rAgg {
		return nil, false
	}
	// Push the aggregate below the join on the left side. The outer
	// aggregate always SUMs the partials (COUNT partials re-aggregate
	// with SUM).
	innerFn, _ := rw.aggs.Lookup(sp.Fn.Name)
	sumFn, _ := rw.aggs.Lookup("SUM")
	inner := NewAggregate(j.L, a.GroupBy, []AggSpec{{Fn: innerFn, Arg: sp.Arg, Name: "__partial"}})
	// New join: keys map from old left indexes to inner output positions.
	pos := make(map[int]int, len(a.GroupBy))
	for i, g := range a.GroupBy {
		pos[g] = i
	}
	newLKeys := make([]int, len(j.LKeys))
	for i, k := range j.LKeys {
		newLKeys[i] = pos[k]
	}
	nj := NewJoin(inner, j.R, newLKeys, j.RKeys)
	// Outer aggregate sums the partials, grouped by the same keys.
	outGB := make([]int, len(a.GroupBy))
	for i := range a.GroupBy {
		outGB[i] = i
	}
	partialCol := expr.NewCol(len(a.GroupBy), "__partial", rel.KFloat)
	outer := NewAggregate(nj, outGB, []AggSpec{{Fn: sumFn, Arg: partialCol, Name: sp.Name}})
	return outer, true
}
