package plan

// Lineage blocks (Section 6.1): a lineage block is a maximal SPJA subtree —
// any combination of select/project/join/union operators capped by (at most)
// one aggregate. Lineage is propagated in full within a block; across block
// boundaries only (aggregate reference, group-by key) pairs flow, which is
// what the rel.Ref value encodes. The partition below is used by the plan
// inspector, the state-size accounting, and tests; the runtime gets the same
// behaviour for free because aggregates emit Ref values for uncertain
// columns.

// Block is one lineage block: the ids of the member operators and the id of
// the capping aggregate (-1 when the block is capped by the query root).
type Block struct {
	Members []int
	CapAgg  int
}

// Blocks partitions the plan into lineage blocks, bottom-up. Every operator
// belongs to exactly one block; an aggregate caps the block containing its
// input subtree and starts lineage afresh above it.
func Blocks(root Node) []Block {
	var blocks []Block
	// blockOf[id] = index into blocks for the (open) block the node's
	// output belongs to.
	blockOf := make(map[int]int)
	open := func() int {
		blocks = append(blocks, Block{CapAgg: -1})
		return len(blocks) - 1
	}
	var mergeInto func(dst int, src int)
	mergeInto = func(dst, src int) {
		if dst == src {
			return
		}
		blocks[dst].Members = append(blocks[dst].Members, blocks[src].Members...)
		blocks[src].Members = nil
		for id, b := range blockOf {
			if b == src {
				blockOf[id] = dst
			}
		}
	}
	Walk(root, func(n Node) {
		switch t := n.(type) {
		case *Scan:
			b := open()
			blocks[b].Members = append(blocks[b].Members, n.ID())
			blockOf[n.ID()] = b
		case *Aggregate:
			// The aggregate caps its input's block; its own output
			// starts a new block above.
			b := blockOf[t.Child.ID()]
			blocks[b].Members = append(blocks[b].Members, n.ID())
			blocks[b].CapAgg = n.ID()
			nb := open()
			blockOf[n.ID()] = nb
		default:
			// SPJU: merge all children's open blocks and join them.
			cs := n.Children()
			b := blockOf[cs[0].ID()]
			for _, c := range cs[1:] {
				mergeInto(b, blockOf[c.ID()])
			}
			blocks[b].Members = append(blocks[b].Members, n.ID())
			blockOf[n.ID()] = b
		}
	})
	// Drop emptied (merged-away) blocks; blocks whose Members are empty
	// and were opened for aggregate outputs that feed nothing remain for
	// the root aggregate case — drop those too.
	out := blocks[:0]
	for _, b := range blocks {
		if len(b.Members) > 0 {
			out = append(out, b)
		}
	}
	return out
}
