// Package workload provides the two evaluation workloads of Section 8 at
// laptop scale:
//
//   - a TPC-H-like synthetic dataset denormalised onto an SSB-style schema
//     (lineitem ⋈ orders = lineorder, as the paper does), with the paper's
//     query selection: Q1, Q3, Q5, Q6, Q7 (flat SPJA) and Q11, Q17, Q18,
//     Q20, Q22 (nested aggregate subqueries);
//   - a Conviva-like video-session trace (the real 17 TB trace is
//     proprietary; the generator reproduces the columns and distributions
//     the paper's example queries use) with queries C1–C12 in the paper's
//     mix: flat SPJA (C3, C5, C11, C12), nested subqueries and HAVING
//     (C1, C2, C4, C6–C10), UDFs (C6, C7) and UDAFs (C8, C9, C10).
//
// All generators are deterministic in the seed and emit rows in random
// order (block-wise randomness holds, per Section 2).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"iolap/internal/agg"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/plan"
	"iolap/internal/rel"
	"iolap/internal/sql"
)

// Query is one benchmark query.
type Query struct {
	// Name is the paper's identifier (Q1..Q22, C1..C12).
	Name string
	// SQL is the query text in this repository's dialect. Deviations from
	// the official TPC-H text (denormalised schema, dropped ORDER BY /
	// LIMIT / NOT EXISTS) are documented in DESIGN.md.
	SQL string
	// Stream names the table processed online (the fact or largest table,
	// Section 8).
	Stream string
	// Nested marks queries with nested aggregate subqueries — the class
	// on which classical delta processing degrades.
	Nested bool
}

// Workload bundles a dataset with its query set and function registries.
type Workload struct {
	Name    string
	Tables  map[string]*rel.Relation
	Queries []Query
	Funcs   *expr.Registry
	Aggs    *agg.Registry
}

// DB materialises the workload tables as an executor database.
func (w *Workload) DB() *exec.DB {
	db := exec.NewDB()
	for name, r := range w.Tables {
		db.Put(name, r)
	}
	return db
}

// Catalog builds a SQL catalog streaming exactly the given table.
func (w *Workload) Catalog(streamed string) *sql.Catalog {
	cat := sql.NewCatalog()
	for name, r := range w.Tables {
		cat.AddTable(name, bareSchema(r.Schema), name == streamed)
	}
	return cat
}

func bareSchema(s rel.Schema) rel.Schema {
	out := make(rel.Schema, len(s))
	for i, c := range s {
		out[i] = rel.Column{Name: c.Name, Type: c.Type}
	}
	return out
}

// Query returns the named query.
func (w *Workload) Query(name string) (Query, bool) {
	for _, q := range w.Queries {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}

// Plan parses and plans one workload query.
func (w *Workload) Plan(q Query) (plan.Node, *sql.PostProcess, error) {
	stmt, err := sql.Parse(q.SQL)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s/%s: %w", w.Name, q.Name, err)
	}
	pl := sql.NewPlanner(w.Catalog(q.Stream), w.Funcs, w.Aggs)
	node, pp, err := pl.Plan(stmt)
	if err != nil {
		return nil, nil, fmt.Errorf("workload %s/%s: %w", w.Name, q.Name, err)
	}
	return node, pp, nil
}

// shuffleRel permutes rows deterministically (block randomness, Section 2).
func shuffleRel(r *rel.Relation, rng *rand.Rand) {
	rng.Shuffle(len(r.Tuples), func(i, j int) {
		r.Tuples[i], r.Tuples[j] = r.Tuples[j], r.Tuples[i]
	})
}

func round1(x float64) float64 { return math.Round(x*10) / 10 }
