package workload

// The paper's TPC-H selection (Section 8): every query with a nested
// subquery structure (Q11, Q17, Q18, Q20, Q22) plus a representative flat
// SPJA subset (Q1, Q3, Q5, Q6, Q7). Adapted to the denormalised lineorder
// schema; ORDER BY / LIMIT are presentation-only and omitted where the
// original has them on large outputs; Q22's NOT EXISTS anti-join is dropped
// (set difference is outside the positive algebra the paper supports,
// Section 3.3). Dates are day indexes (1..2520 ≈ 7 years).
func tpchQueries() []Query {
	return []Query{
		{
			Name:   "Q1",
			Stream: "lineorder",
			SQL: `SELECT l_returnflag, l_linestatus,
				SUM(l_quantity) AS sum_qty,
				SUM(l_extendedprice) AS sum_base_price,
				SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
				SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
				AVG(l_quantity) AS avg_qty,
				AVG(l_extendedprice) AS avg_price,
				AVG(l_discount) AS avg_disc,
				COUNT(*) AS count_order
			FROM lineorder
			WHERE l_shipdate <= 2400
			GROUP BY l_returnflag, l_linestatus`,
		},
		{
			Name:   "Q3",
			Stream: "lineorder",
			SQL: `SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
				o_orderdate, o_shippriority
			FROM customer, lineorder
			WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
				AND o_orderdate < 1800 AND l_shipdate > 1800
			GROUP BY l_orderkey, o_orderdate, o_shippriority`,
		},
		{
			Name:   "Q5",
			Stream: "lineorder",
			SQL: `SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM customer, supplier, nation, region, lineorder
			WHERE c_custkey = o_custkey AND l_suppkey = s_suppkey
				AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey
				AND n_regionkey = r_regionkey AND r_name = 'ASIA'
				AND o_orderdate >= 360 AND o_orderdate < 2160
			GROUP BY n_name`,
		},
		{
			Name:   "Q6",
			Stream: "lineorder",
			SQL: `SELECT SUM(l_extendedprice * l_discount) AS revenue
			FROM lineorder
			WHERE l_shipdate >= 360 AND l_shipdate < 720
				AND l_discount BETWEEN 0.02 AND 0.09 AND l_quantity < 24`,
		},
		{
			Name:   "Q7",
			Stream: "lineorder",
			SQL: `SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
				SUM(l_extendedprice * (1 - l_discount)) AS revenue
			FROM supplier, customer, nation n1, nation n2, lineorder
			WHERE s_suppkey = l_suppkey AND c_custkey = o_custkey
				AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey
				AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
					OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
			GROUP BY n1.n_name, n2.n_name`,
		},
		{
			Name:   "Q11",
			Stream: "partsupp",
			Nested: true,
			SQL: `SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
			FROM partsupp, supplier, nation
			WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
				AND n_name = 'GERMANY'
			GROUP BY ps_partkey
			HAVING SUM(ps_supplycost * ps_availqty) >
				(SELECT SUM(ps_supplycost * ps_availqty) * 0.05
				 FROM partsupp, supplier, nation
				 WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
					AND n_name = 'GERMANY')`,
		},
		{
			Name:   "Q17",
			Stream: "lineorder",
			Nested: true,
			SQL: `SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
			FROM lineorder, part
			WHERE p_partkey = l_partkey AND p_brand = 'Brand#23'
				AND p_container = 'MED BOX'
				AND l_quantity < (SELECT 0.9 * AVG(l_quantity)
					FROM lineorder WHERE l_partkey = p_partkey)`,
		},
		{
			Name:   "Q18",
			Stream: "lineorder",
			Nested: true,
			SQL: `SELECT o_custkey, l_orderkey, SUM(l_quantity) AS total_qty
			FROM lineorder
			WHERE l_orderkey IN (SELECT l_orderkey FROM lineorder
				GROUP BY l_orderkey HAVING SUM(l_quantity) > 180)
			GROUP BY o_custkey, l_orderkey`,
		},
		{
			Name:   "Q20",
			Stream: "lineorder",
			Nested: true,
			SQL: `SELECT s_name FROM supplier, nation
			WHERE s_suppkey IN
				(SELECT ps_suppkey FROM partsupp
				 WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')
				   AND ps_availqty > (SELECT 0.5 * SUM(l_quantity)
						FROM lineorder
						WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey))
				AND s_nationkey = n_nationkey AND n_name = 'CANADA'`,
		},
		{
			Name:   "Q22",
			Stream: "customer",
			Nested: true,
			SQL: `SELECT cntrycode, COUNT(*) AS numcust, SUM(acctbal) AS totacctbal
			FROM (SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, c_acctbal AS acctbal
				  FROM customer
				  WHERE SUBSTR(c_phone, 1, 2) IN ('13', '31', '23', '29', '30')
					AND c_acctbal > (SELECT AVG(c_acctbal) FROM customer
									 WHERE c_acctbal > 0.0)) AS custsale
			GROUP BY cntrycode`,
		},
	}
}
