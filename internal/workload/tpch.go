package workload

import (
	"fmt"
	"math/rand"

	"iolap/internal/agg"
	"iolap/internal/expr"
	"iolap/internal/rel"
)

// TPC-H-like generator. The schema follows the paper's setup (Section 8):
// lineitem and orders are pre-joined into a denormalised lineorder fact
// table (SSB style); part, supplier, customer, partsupp, nation and region
// are kept as dimension tables.

// TPCHScale sizes the synthetic dataset. Fact is the lineorder row count;
// dimension cardinalities derive from it with TPC-H-like ratios.
type TPCHScale struct {
	Fact int
	Seed int64
}

// Dimension cardinalities for a given fact size.
func (s TPCHScale) parts() int     { return maxi(20, s.Fact/25) }
func (s TPCHScale) suppliers() int { return maxi(10, s.Fact/80) }
func (s TPCHScale) customers() int { return maxi(20, s.Fact/20) }

// pickNation skews assignments toward the nations the benchmark predicates
// name — FRANCE/GERMANY (Q7), ASIA (Q5), CANADA (Q20) — so the queries stay
// selective but non-empty at laptop scale.
func pickNation(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.15:
		return 0 // FRANCE
	case r < 0.30:
		return 1 // GERMANY
	case r < 0.55:
		return 5 + rng.Intn(5) // ASIA block
	case r < 0.65:
		return 11 // CANADA
	default:
		return rng.Intn(len(tpchNations))
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var (
	tpchNations = []struct {
		name   string
		region int
	}{
		{"FRANCE", 0}, {"GERMANY", 0}, {"ROMANIA", 0}, {"RUSSIA", 0}, {"UNITED KINGDOM", 0},
		{"CHINA", 1}, {"INDIA", 1}, {"INDONESIA", 1}, {"JAPAN", 1}, {"VIETNAM", 1},
		{"UNITED STATES", 2}, {"CANADA", 2}, {"BRAZIL", 2}, {"ARGENTINA", 2}, {"PERU", 2},
		{"EGYPT", 3}, {"IRAN", 3}, {"IRAQ", 3}, {"JORDAN", 3}, {"SAUDI ARABIA", 3},
		{"ALGERIA", 4}, {"ETHIOPIA", 4}, {"KENYA", 4}, {"MOROCCO", 4}, {"MOZAMBIQUE", 4},
	}
	tpchRegions    = []string{"EUROPE", "ASIA", "AMERICA", "MIDDLE EAST", "AFRICA"}
	tpchSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	tpchBrands     = []string{"Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#45"}
	tpchContainers = []string{"SM CASE", "MED BOX", "LG BOX", "JUMBO PKG"}
	tpchTypes      = []string{"ECONOMY ANODIZED STEEL", "STANDARD BRUSHED COPPER", "PROMO BURNISHED NICKEL", "SMALL PLATED BRASS"}
	tpchNames      = []string{"forest linen", "forest chocolate", "lemon ivory", "midnight rose", "powder almond", "slate navy"}
	tpchPriority   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	tpchModes      = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"}
	tpchFlags      = []string{"A", "N", "R"}
	tpchStatus     = []string{"O", "F"}
)

// LineorderSchema is the denormalised fact schema (lineitem ⋈ orders).
func LineorderSchema() rel.Schema {
	return rel.Schema{
		{Name: "l_orderkey", Type: rel.KInt},
		{Name: "l_partkey", Type: rel.KInt},
		{Name: "l_suppkey", Type: rel.KInt},
		{Name: "l_quantity", Type: rel.KFloat},
		{Name: "l_extendedprice", Type: rel.KFloat},
		{Name: "l_discount", Type: rel.KFloat},
		{Name: "l_tax", Type: rel.KFloat},
		{Name: "l_returnflag", Type: rel.KString},
		{Name: "l_linestatus", Type: rel.KString},
		{Name: "l_shipdate", Type: rel.KInt},
		{Name: "l_shipmode", Type: rel.KString},
		// Denormalised order columns.
		{Name: "o_custkey", Type: rel.KInt},
		{Name: "o_orderdate", Type: rel.KInt},
		{Name: "o_orderpriority", Type: rel.KString},
		{Name: "o_shippriority", Type: rel.KInt},
	}
}

// TPCH generates the workload at the given scale.
func TPCH(scale TPCHScale) *Workload {
	if scale.Fact <= 0 {
		scale.Fact = 2000
	}
	rng := rand.New(rand.NewSource(scale.Seed + 7001))
	w := &Workload{
		Name:    "tpch",
		Tables:  make(map[string]*rel.Relation),
		Funcs:   expr.NewRegistry(),
		Aggs:    agg.NewRegistry(),
		Queries: tpchQueries(),
	}
	// region / nation
	region := rel.NewRelation(rel.Schema{
		{Name: "r_regionkey", Type: rel.KInt},
		{Name: "r_name", Type: rel.KString},
	})
	for i, name := range tpchRegions {
		region.Append(rel.Int(int64(i)), rel.String(name))
	}
	w.Tables["region"] = region

	nation := rel.NewRelation(rel.Schema{
		{Name: "n_nationkey", Type: rel.KInt},
		{Name: "n_name", Type: rel.KString},
		{Name: "n_regionkey", Type: rel.KInt},
	})
	for i, n := range tpchNations {
		nation.Append(rel.Int(int64(i)), rel.String(n.name), rel.Int(int64(n.region)))
	}
	w.Tables["nation"] = nation

	// part
	nParts := scale.parts()
	part := rel.NewRelation(rel.Schema{
		{Name: "p_partkey", Type: rel.KInt},
		{Name: "p_name", Type: rel.KString},
		{Name: "p_brand", Type: rel.KString},
		{Name: "p_type", Type: rel.KString},
		{Name: "p_size", Type: rel.KInt},
		{Name: "p_container", Type: rel.KString},
		{Name: "p_retailprice", Type: rel.KFloat},
	})
	for i := 0; i < nParts; i++ {
		part.Append(
			rel.Int(int64(i)),
			rel.String(tpchNames[rng.Intn(len(tpchNames))]+" "+fmt.Sprint(i)),
			rel.String(tpchBrands[rng.Intn(len(tpchBrands))]),
			rel.String(tpchTypes[rng.Intn(len(tpchTypes))]),
			rel.Int(int64(1+rng.Intn(50))),
			rel.String(tpchContainers[rng.Intn(len(tpchContainers))]),
			rel.Float(round1(900+rng.Float64()*1100)),
		)
	}
	w.Tables["part"] = part

	// supplier: the first suppliers cover the nations the query predicates
	// name (FRANCE=0, GERMANY=1, CANADA=11, ASIA=5..9) so small scales
	// still produce rows; the rest follow the skewed distribution.
	nSupp := scale.suppliers()
	seedNations := []int{0, 1, 11, 5, 6, 7, 10, 1, 0, 11}
	supplier := rel.NewRelation(rel.Schema{
		{Name: "s_suppkey", Type: rel.KInt},
		{Name: "s_name", Type: rel.KString},
		{Name: "s_nationkey", Type: rel.KInt},
		{Name: "s_acctbal", Type: rel.KFloat},
	})
	for i := 0; i < nSupp; i++ {
		nk := pickNation(rng)
		if i < len(seedNations) {
			nk = seedNations[i]
		}
		supplier.Append(
			rel.Int(int64(i)),
			rel.String(fmt.Sprintf("Supplier#%03d", i)),
			rel.Int(int64(nk)),
			rel.Float(round1(-999+rng.Float64()*11000)),
		)
	}
	w.Tables["supplier"] = supplier

	// customer (streamed by Q22)
	nCust := scale.customers()
	customer := rel.NewRelation(rel.Schema{
		{Name: "c_custkey", Type: rel.KInt},
		{Name: "c_name", Type: rel.KString},
		{Name: "c_nationkey", Type: rel.KInt},
		{Name: "c_acctbal", Type: rel.KFloat},
		{Name: "c_mktsegment", Type: rel.KString},
		{Name: "c_phone", Type: rel.KString},
	})
	for i := 0; i < nCust; i++ {
		nk := pickNation(rng)
		customer.Append(
			rel.Int(int64(i)),
			rel.String(fmt.Sprintf("Customer#%05d", i)),
			rel.Int(int64(nk)),
			rel.Float(round1(-999+rng.Float64()*11000)),
			rel.String(tpchSegments[rng.Intn(len(tpchSegments))]),
			rel.String(fmt.Sprintf("%02d-%03d-%03d", 10+nk, rng.Intn(1000), rng.Intn(1000))),
		)
	}
	shuffleRel(customer, rng)
	w.Tables["customer"] = customer

	// partsupp (streamed by Q11)
	partsupp := rel.NewRelation(rel.Schema{
		{Name: "ps_partkey", Type: rel.KInt},
		{Name: "ps_suppkey", Type: rel.KInt},
		{Name: "ps_availqty", Type: rel.KInt},
		{Name: "ps_supplycost", Type: rel.KFloat},
	})
	for p := 0; p < nParts; p++ {
		for k := 0; k < 2; k++ {
			partsupp.Append(
				rel.Int(int64(p)),
				rel.Int(int64(rng.Intn(nSupp))),
				rel.Int(int64(1+rng.Intn(9999))),
				rel.Float(round1(1+rng.Float64()*1000)),
			)
		}
	}
	shuffleRel(partsupp, rng)
	w.Tables["partsupp"] = partsupp

	// lineorder: generate per order until the fact size is reached, then
	// shuffle.
	lineorder := rel.NewRelation(LineorderSchema())
	for o := 0; lineorder.Len() < scale.Fact; o++ {
		orderDate := 1 + rng.Intn(2520) // ~7 years of day indexes
		custkey := rng.Intn(nCust)
		prio := tpchPriority[rng.Intn(len(tpchPriority))]
		shipPrio := 0
		lines := 1 + rng.Intn(7)
		for l := 0; l < lines && lineorder.Len() < scale.Fact; l++ {
			qty := float64(1 + rng.Intn(50))
			price := round1(qty * (900 + rng.Float64()*1100) / 10)
			lineorder.Append(
				rel.Int(int64(o)),
				rel.Int(int64(rng.Intn(nParts))),
				rel.Int(int64(rng.Intn(nSupp))),
				rel.Float(qty),
				rel.Float(price),
				rel.Float(round1(rng.Float64()*0.1*100)/100),
				rel.Float(round1(rng.Float64()*0.08*100)/100),
				rel.String(tpchFlags[rng.Intn(len(tpchFlags))]),
				rel.String(tpchStatus[rng.Intn(len(tpchStatus))]),
				rel.Int(int64(orderDate+1+rng.Intn(120))),
				rel.String(tpchModes[rng.Intn(len(tpchModes))]),
				rel.Int(int64(custkey)),
				rel.Int(int64(orderDate)),
				rel.String(prio),
				rel.Int(int64(shipPrio)),
			)
		}
	}
	shuffleRel(lineorder, rng)
	w.Tables["lineorder"] = lineorder
	return w
}
