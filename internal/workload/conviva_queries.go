package workload

// Conviva-like queries C1–C12 with the paper's mix (Section 8): simple SPJA
// (C3, C5, C11, C12), nested subqueries and HAVING (C1, C2, C4, C6–C10),
// UDFs (C6, C7) and UDAFs (C8, C9, C10). The nested shapes mirror the
// TPC-H benchmark's, as the paper notes.
func convivaQueries() []Query {
	return []Query{
		{
			Name:   "C1",
			Stream: "conviva_sessions",
			Nested: true,
			// SBI grouped by CDN: how slow buffering hurts retention per CDN.
			SQL: `SELECT cdn, AVG(play_time) AS avg_play
			FROM conviva_sessions
			WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva_sessions)
			GROUP BY cdn`,
		},
		{
			Name:   "C2",
			Stream: "conviva_sessions",
			Nested: true,
			// Sessions buffering above their own CDN's average (correlated).
			SQL: `SELECT s.cdn, COUNT(*) AS slow_sessions
			FROM conviva_sessions s
			WHERE s.buffer_time > (SELECT AVG(buffer_time)
				FROM conviva_sessions i WHERE i.cdn = s.cdn)
			GROUP BY s.cdn`,
		},
		{
			Name:   "C3",
			Stream: "conviva_sessions",
			SQL: `SELECT cdn, COUNT(*) AS sessions, AVG(bitrate) AS avg_bitrate
			FROM conviva_sessions WHERE country = 'US' GROUP BY cdn`,
		},
		{
			Name:   "C4",
			Stream: "conviva_sessions",
			Nested: true,
			SQL: `SELECT city, SUM(play_time) AS total_play
			FROM conviva_sessions
			GROUP BY city
			HAVING AVG(buffer_time) > (SELECT AVG(buffer_time) FROM conviva_sessions)`,
		},
		{
			Name:   "C5",
			Stream: "conviva_sessions",
			SQL: `SELECT isp, AVG(join_time) AS avg_join
			FROM conviva_sessions WHERE content_type = 'live' GROUP BY isp`,
		},
		{
			Name:   "C6",
			Stream: "conviva_sessions",
			Nested: true,
			// UDF in an uncertainty-coupled predicate.
			SQL: `SELECT cdn, COUNT(*) AS engaged
			FROM conviva_sessions
			WHERE ENGAGEMENT(play_time, buffer_time) >
				(SELECT 0.8 * AVG(play_time) FROM conviva_sessions)
			GROUP BY cdn`,
		},
		{
			Name:   "C7",
			Stream: "conviva_sessions",
			Nested: true,
			// UDF aggregated over a nested filter.
			SQL: `SELECT device, AVG(QUALITYSCORE(bitrate, failures)) AS quality
			FROM conviva_sessions
			WHERE buffer_time < (SELECT AVG(buffer_time) FROM conviva_sessions)
			GROUP BY device`,
		},
		{
			Name:   "C8",
			Stream: "conviva_sessions",
			Nested: true,
			// UDAF over the SBI filter — the query of Figure 7(a).
			SQL: `SELECT GEOMEAN(play_time) AS g_play
			FROM conviva_sessions
			WHERE buffer_time > (SELECT AVG(buffer_time) FROM conviva_sessions)`,
		},
		{
			Name:   "C9",
			Stream: "conviva_sessions",
			Nested: true,
			// UDAF with a HAVING threshold from a global subquery.
			SQL: `SELECT cdn, HARMONIC(bitrate) AS h_bitrate
			FROM conviva_sessions
			GROUP BY cdn
			HAVING COUNT(*) > (SELECT 0.05 * COUNT(*) FROM conviva_sessions)`,
		},
		{
			Name:   "C10",
			Stream: "conviva_sessions",
			Nested: true,
			// UDAF over failure-heavy sessions (nested threshold).
			SQL: `SELECT country, RMS(join_time) AS rms_join
			FROM conviva_sessions
			WHERE failures > (SELECT AVG(failures) FROM conviva_sessions)
			GROUP BY country`,
		},
		{
			Name:   "C11",
			Stream: "conviva_sessions",
			SQL: `SELECT country, SUM(play_time) AS total_play, COUNT(*) AS sessions
			FROM conviva_sessions WHERE bitrate > 2000 GROUP BY country`,
		},
		{
			Name:   "C12",
			Stream: "conviva_sessions",
			SQL: `SELECT COUNT(*) AS n, AVG(play_time) AS avg_play, STDDEV(buffer_time) AS sd_buffer
			FROM conviva_sessions WHERE device = 'mobile'`,
		},
	}
}
