package workload

import (
	"strings"
	"testing"

	"iolap/internal/rel"
)

// These tests validate the synthetic generators as data: referential
// integrity between fact and dimension tables, and value-domain invariants
// the benchmark queries rely on.

func keySet(r *rel.Relation, col string) map[int64]bool {
	idx := r.Schema.MustResolve("", col)
	out := make(map[int64]bool, r.Len())
	for _, tp := range r.Tuples {
		out[tp.Vals[idx].Int()] = true
	}
	return out
}

func TestTPCHReferentialIntegrity(t *testing.T) {
	w := TPCH(TPCHScale{Fact: 2000, Seed: 9})
	parts := keySet(w.Tables["part"], "p_partkey")
	supps := keySet(w.Tables["supplier"], "s_suppkey")
	custs := keySet(w.Tables["customer"], "c_custkey")
	nations := keySet(w.Tables["nation"], "n_nationkey")
	regions := keySet(w.Tables["region"], "r_regionkey")

	lo := w.Tables["lineorder"]
	check := func(col string, valid map[int64]bool) {
		t.Helper()
		idx := lo.Schema.MustResolve("", col)
		for _, tp := range lo.Tuples {
			if !valid[tp.Vals[idx].Int()] {
				t.Fatalf("dangling %s = %v", col, tp.Vals[idx])
			}
		}
	}
	check("l_partkey", parts)
	check("l_suppkey", supps)
	check("o_custkey", custs)

	ps := w.Tables["partsupp"]
	psPart := ps.Schema.MustResolve("", "ps_partkey")
	psSupp := ps.Schema.MustResolve("", "ps_suppkey")
	for _, tp := range ps.Tuples {
		if !parts[tp.Vals[psPart].Int()] || !supps[tp.Vals[psSupp].Int()] {
			t.Fatal("dangling partsupp key")
		}
	}
	// Suppliers and customers reference valid nations, nations valid
	// regions.
	for _, spec := range []struct {
		table, col string
		valid      map[int64]bool
	}{
		{"supplier", "s_nationkey", nations},
		{"customer", "c_nationkey", nations},
		{"nation", "n_regionkey", regions},
	} {
		r := w.Tables[spec.table]
		idx := r.Schema.MustResolve("", spec.col)
		for _, tp := range r.Tuples {
			if !spec.valid[tp.Vals[idx].Int()] {
				t.Fatalf("dangling %s.%s = %v", spec.table, spec.col, tp.Vals[idx])
			}
		}
	}
}

func TestTPCHValueDomains(t *testing.T) {
	w := TPCH(TPCHScale{Fact: 2000, Seed: 9})
	lo := w.Tables["lineorder"]
	qty := lo.Schema.MustResolve("", "l_quantity")
	disc := lo.Schema.MustResolve("", "l_discount")
	ship := lo.Schema.MustResolve("", "l_shipdate")
	odate := lo.Schema.MustResolve("", "o_orderdate")
	price := lo.Schema.MustResolve("", "l_extendedprice")
	for _, tp := range lo.Tuples {
		if q := tp.Vals[qty].Float(); q < 1 || q > 50 {
			t.Fatalf("l_quantity out of domain: %v", q)
		}
		if d := tp.Vals[disc].Float(); d < 0 || d > 0.1 {
			t.Fatalf("l_discount out of domain: %v", d)
		}
		if tp.Vals[price].Float() <= 0 {
			t.Fatal("non-positive extended price")
		}
		// Ship date follows the order date (1..120 days later).
		s, o := tp.Vals[ship].Int(), tp.Vals[odate].Int()
		if s <= o || s > o+120 {
			t.Fatalf("shipdate %d not within (orderdate, orderdate+120] = (%d, %d]", s, o, o+120)
		}
	}
	// The nations named by query predicates must have suppliers (the
	// seeded coverage that keeps Q5/Q7/Q11/Q20 non-empty at small scale).
	sup := w.Tables["supplier"]
	nk := sup.Schema.MustResolve("", "s_nationkey")
	seen := map[int64]bool{}
	for _, tp := range sup.Tuples {
		seen[tp.Vals[nk].Int()] = true
	}
	for _, nation := range []int64{0, 1, 11} { // FRANCE, GERMANY, CANADA
		if !seen[nation] {
			t.Errorf("no supplier in predicate nation %d", nation)
		}
	}
}

func TestConvivaValueDomains(t *testing.T) {
	w := Conviva(ConvivaScale{Sessions: 2000, Seed: 9})
	r := w.Tables["conviva_sessions"]
	bt := r.Schema.MustResolve("", "buffer_time")
	pt := r.Schema.MustResolve("", "play_time")
	br := r.Schema.MustResolve("", "bitrate")
	fl := r.Schema.MustResolve("", "failures")
	sid := r.Schema.MustResolve("", "session_id")
	ids := map[string]bool{}
	for _, tp := range r.Tuples {
		if tp.Vals[bt].Float() < 0 {
			t.Fatal("negative buffer time")
		}
		if v := tp.Vals[pt].Float(); v < 5 {
			t.Fatalf("play_time below floor: %v", v)
		}
		if v := tp.Vals[br].Float(); v < 800 || v > 5000 {
			t.Fatalf("bitrate out of domain: %v", v)
		}
		if v := tp.Vals[fl].Int(); v < 0 || v > 4 {
			t.Fatalf("failures out of domain: %v", v)
		}
		id := tp.Vals[sid].Str()
		if !strings.HasPrefix(id, "sess-") || ids[id] {
			t.Fatalf("session id invalid or duplicate: %q", id)
		}
		ids[id] = true
	}
}

func TestGeneratorsEmitShuffledData(t *testing.T) {
	// Section 2 assumes block-wise randomness; the generators pre-shuffle
	// so contiguous batches are random samples. Check the fact tables are
	// not sorted by their primary sequence.
	w := TPCH(TPCHScale{Fact: 1000, Seed: 3})
	lo := w.Tables["lineorder"]
	ok := lo.Schema.MustResolve("", "l_orderkey")
	sorted := true
	for i := 1; i < lo.Len(); i++ {
		if lo.Tuples[i].Vals[ok].Int() < lo.Tuples[i-1].Vals[ok].Int() {
			sorted = false
			break
		}
	}
	if sorted {
		t.Error("lineorder appears sorted: shuffle missing")
	}
	c := Conviva(ConvivaScale{Sessions: 1000, Seed: 3})
	cs := c.Tables["conviva_sessions"]
	sid := cs.Schema.MustResolve("", "session_id")
	sorted = true
	for i := 1; i < cs.Len(); i++ {
		if cs.Tuples[i].Vals[sid].Str() < cs.Tuples[i-1].Vals[sid].Str() {
			sorted = false
			break
		}
	}
	if sorted {
		t.Error("conviva sessions appear sorted: shuffle missing")
	}
}
