package workload

import (
	"testing"

	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/plan"
	"iolap/internal/rel"
)

func TestTPCHGeneratorShape(t *testing.T) {
	w := TPCH(TPCHScale{Fact: 1000, Seed: 1})
	for _, name := range []string{"lineorder", "part", "supplier", "customer", "partsupp", "nation", "region"} {
		r, ok := w.Tables[name]
		if !ok || r.Len() == 0 {
			t.Fatalf("table %s missing or empty", name)
		}
	}
	if got := w.Tables["lineorder"].Len(); got != 1000 {
		t.Errorf("fact rows = %d, want 1000", got)
	}
	if got := w.Tables["nation"].Len(); got != 25 {
		t.Errorf("nations = %d", got)
	}
	if got := w.Tables["region"].Len(); got != 5 {
		t.Errorf("regions = %d", got)
	}
	// Deterministic in the seed.
	w2 := TPCH(TPCHScale{Fact: 1000, Seed: 1})
	if !rel.EqualBag(w.Tables["lineorder"], w2.Tables["lineorder"], 0) {
		t.Error("generator must be deterministic")
	}
	w3 := TPCH(TPCHScale{Fact: 1000, Seed: 2})
	if rel.EqualBag(w.Tables["lineorder"], w3.Tables["lineorder"], 0) {
		t.Error("different seeds should differ")
	}
}

func TestConvivaGeneratorShape(t *testing.T) {
	w := Conviva(ConvivaScale{Sessions: 800, Seed: 1})
	r := w.Tables["conviva_sessions"]
	if r.Len() != 800 {
		t.Fatalf("sessions = %d", r.Len())
	}
	// The SBI effect must be present: sessions with above-average
	// buffering should have lower average play time.
	btIdx := r.Schema.MustResolve("", "buffer_time")
	ptIdx := r.Schema.MustResolve("", "play_time")
	var btSum float64
	for _, tp := range r.Tuples {
		btSum += tp.Vals[btIdx].Float()
	}
	avgBT := btSum / float64(r.Len())
	var slowPT, fastPT, slowN, fastN float64
	for _, tp := range r.Tuples {
		if tp.Vals[btIdx].Float() > avgBT {
			slowPT += tp.Vals[ptIdx].Float()
			slowN++
		} else {
			fastPT += tp.Vals[ptIdx].Float()
			fastN++
		}
	}
	if slowPT/slowN >= fastPT/fastN {
		t.Errorf("SBI effect missing: slow avg %v >= fast avg %v", slowPT/slowN, fastPT/fastN)
	}
}

func TestAllQueriesPlan(t *testing.T) {
	for _, w := range []*Workload{TPCH(TPCHScale{Fact: 400, Seed: 3}), Conviva(ConvivaScale{Sessions: 300, Seed: 3})} {
		for _, q := range w.Queries {
			node, _, err := w.Plan(q)
			if err != nil {
				t.Errorf("%s/%s: %v", w.Name, q.Name, err)
				continue
			}
			if node == nil {
				t.Errorf("%s/%s: nil plan", w.Name, q.Name)
			}
		}
	}
}

func TestAllQueriesRunOnBaseline(t *testing.T) {
	for _, w := range []*Workload{TPCH(TPCHScale{Fact: 600, Seed: 5}), Conviva(ConvivaScale{Sessions: 500, Seed: 5})} {
		db := w.DB()
		for _, q := range w.Queries {
			node, pp, err := w.Plan(q)
			if err != nil {
				t.Fatalf("%s/%s plan: %v", w.Name, q.Name, err)
			}
			out, err := exec.Run(node, db)
			if err != nil {
				t.Errorf("%s/%s exec: %v", w.Name, q.Name, err)
				continue
			}
			pp.Apply(out)
			if out.Len() == 0 && q.Name != "Q20" {
				// Q20's triple filter can legitimately be empty at tiny
				// scale; everything else must produce rows.
				t.Errorf("%s/%s: empty result at test scale", w.Name, q.Name)
			}
		}
	}
}

// oracleAt evaluates Q(D_i, m_i) exactly (the Theorem 1 reference).
func oracleAt(t *testing.T, node plan.Node, db *exec.DB, stream string, seen int) *rel.Relation {
	t.Helper()
	src, _ := db.Get(stream)
	mi := 1.0
	if seen > 0 {
		mi = float64(src.Len()) / float64(seen)
	}
	part := rel.NewRelation(src.Schema)
	for _, tp := range src.Tuples[:seen] {
		part.AppendMult(mi*tp.Mult, tp.Vals...)
	}
	odb := exec.NewDB()
	for _, name := range db.Tables() {
		r, _ := db.Get(name)
		odb.Put(name, r)
	}
	odb.Put(stream, part)
	out, err := exec.Run(node, odb)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return out
}

// TestTheorem1OnWorkloads is the heavyweight end-to-end check: every TPC-H
// and Conviva query, streamed through the iOLAP engine, must deliver at
// every batch exactly Q(D_i, m_i).
func TestTheorem1OnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	cases := []struct {
		w    *Workload
		fact int
	}{
		{TPCH(TPCHScale{Fact: 600, Seed: 8}), 600},
		{Conviva(ConvivaScale{Sessions: 500, Seed: 8}), 500},
	}
	for _, c := range cases {
		db := c.w.DB()
		for _, q := range c.w.Queries {
			q := q
			t.Run(c.w.Name+"/"+q.Name, func(t *testing.T) {
				node, _, err := c.w.Plan(q)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := core.NewEngine(node, db, core.Options{
					Batches: 5, Trials: 25, Seed: 21,
				})
				if err != nil {
					t.Fatal(err)
				}
				if eng.Nested() != q.Nested {
					t.Errorf("nested classification = %v, want %v", eng.Nested(), q.Nested)
				}
				src, _ := db.Get(q.Stream)
				seen := 0
				batchStart := 0
				for !eng.Done() {
					u, err := eng.Step()
					if err != nil {
						t.Fatalf("batch %d: %v", seen, err)
					}
					// Engine uses contiguous blocks of the source.
					batchStart++
					seen = batchStart * src.Len() / eng.Batches()
					want := oracleAt(t, node, db, q.Stream, seen)
					if !rel.EqualBag(u.Result, want, 1e-6) {
						t.Fatalf("batch %d diverges from Q(D_i, m_i)\ngot (%d rows):\n%s\nwant (%d rows):\n%s",
							u.Batch, u.Result.Len(), clip(u.Result.String()), want.Len(), clip(want.String()))
					}
				}
			})
		}
	}
}

func clip(s string) string {
	if len(s) > 1500 {
		return s[:1500] + "\n...(clipped)"
	}
	return s
}

func TestQueryLookup(t *testing.T) {
	w := TPCH(TPCHScale{Fact: 100, Seed: 1})
	if _, ok := w.Query("Q17"); !ok {
		t.Error("Q17 missing")
	}
	if _, ok := w.Query("Q99"); ok {
		t.Error("Q99 should not exist")
	}
}

func TestCatalogStreamsSelectedTable(t *testing.T) {
	w := TPCH(TPCHScale{Fact: 100, Seed: 1})
	cat := w.Catalog("partsupp")
	if !cat.Streamed("partsupp") {
		t.Error("partsupp should stream")
	}
	if cat.Streamed("lineorder") {
		t.Error("lineorder should not stream in Q11's catalog")
	}
}
