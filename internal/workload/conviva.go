package workload

import (
	"fmt"
	"math"
	"math/rand"

	"iolap/internal/agg"
	"iolap/internal/expr"
	"iolap/internal/rel"
)

// Conviva-like video-session workload. The paper's dataset is a proprietary
// 2 TB denormalised fact table of web video sessions ([1], Section 8); this
// generator reproduces the shape the paper's analyses (and [20, 29]) use:
// one wide sessions table with quality metrics (buffer_time, play_time,
// join_time, bitrate, failures) and dimensional attributes (cdn, city,
// country, isp, content_type, device). Buffering follows a heavy-tailed
// exponential and play time is negatively coupled to buffering — the "slow
// buffering impact" effect the SBI example query measures.

// ConvivaScale sizes the synthetic trace.
type ConvivaScale struct {
	Sessions int
	Seed     int64
}

var (
	convivaCDNs      = []string{"cdn_akam", "cdn_level3", "cdn_lime"}
	convivaCities    = []string{"NYC", "SF", "LA", "CHI", "SEA", "BOS", "AUS", "DEN"}
	convivaCountries = []string{"US", "CA", "UK", "DE", "BR"}
	convivaISPs      = []string{"comcast", "verizon", "att", "charter", "cox"}
	convivaContent   = []string{"live", "vod"}
	convivaDevices   = []string{"desktop", "mobile", "tv", "console"}
)

// SessionsSchema is the Conviva-like fact schema.
func SessionsSchema() rel.Schema {
	return rel.Schema{
		{Name: "session_id", Type: rel.KString},
		{Name: "customer_id", Type: rel.KInt},
		{Name: "city", Type: rel.KString},
		{Name: "country", Type: rel.KString},
		{Name: "isp", Type: rel.KString},
		{Name: "cdn", Type: rel.KString},
		{Name: "content_type", Type: rel.KString},
		{Name: "device", Type: rel.KString},
		{Name: "buffer_time", Type: rel.KFloat},
		{Name: "play_time", Type: rel.KFloat},
		{Name: "join_time", Type: rel.KFloat},
		{Name: "bitrate", Type: rel.KFloat},
		{Name: "failures", Type: rel.KInt},
	}
}

// Conviva generates the workload at the given scale.
func Conviva(scale ConvivaScale) *Workload {
	if scale.Sessions <= 0 {
		scale.Sessions = 4000
	}
	rng := rand.New(rand.NewSource(scale.Seed + 9001))
	w := &Workload{
		Name:    "conviva",
		Tables:  make(map[string]*rel.Relation),
		Funcs:   expr.NewRegistry(),
		Aggs:    agg.NewRegistry(),
		Queries: convivaQueries(),
	}
	registerConvivaUDFs(w.Funcs)
	RegisterConvivaUDAFs(w.Aggs)

	sessions := rel.NewRelation(SessionsSchema())
	for i := 0; i < scale.Sessions; i++ {
		cdn := convivaCDNs[rng.Intn(len(convivaCDNs))]
		// Per-CDN quality baseline: cdn_lime buffers more.
		base := 14.0
		if cdn == "cdn_lime" {
			base = 22.0
		}
		bt := round1(base + rng.ExpFloat64()*18)
		// Play time drops with buffering (the SBI effect) plus noise.
		pt := round1(math.Max(5, 420-3.2*bt+rng.NormFloat64()*90))
		jt := round1(0.4 + rng.ExpFloat64()*2.2)
		bitrate := round1(800 + rng.Float64()*4200)
		failures := 0
		if rng.Float64() < 0.15 {
			failures = 1 + rng.Intn(4)
		}
		sessions.Append(
			rel.String(fmt.Sprintf("sess-%07d", i)),
			rel.Int(int64(rng.Intn(maxi(10, scale.Sessions/40)))),
			rel.String(convivaCities[rng.Intn(len(convivaCities))]),
			rel.String(convivaCountries[rng.Intn(len(convivaCountries))]),
			rel.String(convivaISPs[rng.Intn(len(convivaISPs))]),
			rel.String(cdn),
			rel.String(convivaContent[rng.Intn(len(convivaContent))]),
			rel.String(convivaDevices[rng.Intn(len(convivaDevices))]),
			rel.Float(bt),
			rel.Float(pt),
			rel.Float(jt),
			rel.Float(bitrate),
			rel.Int(int64(failures)),
		)
	}
	shuffleRel(sessions, rng)
	w.Tables["conviva_sessions"] = sessions
	return w
}

// registerConvivaUDFs installs the scalar UDFs used by C6 and C7.
func registerConvivaUDFs(r *expr.Registry) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	// ENGAGEMENT discounts play time by buffering stalls.
	must(r.Register(expr.ScalarFunc{
		Name: "ENGAGEMENT", MinArgs: 2, MaxArgs: 2, RetType: rel.KFloat,
		Fn: func(args []rel.Value) rel.Value {
			if args[0].IsNull() || args[1].IsNull() {
				return rel.Null()
			}
			return rel.Float(args[0].Float() / (1 + args[1].Float()/60))
		},
	}))
	// QUALITYSCORE blends bitrate against failure count.
	must(r.Register(expr.ScalarFunc{
		Name: "QUALITYSCORE", MinArgs: 2, MaxArgs: 2, RetType: rel.KFloat,
		Fn: func(args []rel.Value) rel.Value {
			if args[0].IsNull() || args[1].IsNull() {
				return rel.Null()
			}
			return rel.Float(args[0].Float() / 1000 / (1 + args[1].Float()))
		},
	}))
}

// RegisterConvivaUDAFs installs the user-defined aggregates used by C8, C9
// and C10 (all smooth and sketchable, Section 3.3): geometric mean,
// harmonic mean and root-mean-square.
func RegisterConvivaUDAFs(r *agg.Registry) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.Register(agg.Func{
		Name: "GEOMEAN", TakesArg: true, Smooth: true, Invertible: true,
		New: func() agg.Accumulator { return &logMeanAcc{} },
	}))
	must(r.Register(agg.Func{
		Name: "HARMONIC", TakesArg: true, Smooth: true, Invertible: true,
		New: func() agg.Accumulator { return &harmonicAcc{} },
	}))
	must(r.Register(agg.Func{
		Name: "RMS", TakesArg: true, Smooth: true, Invertible: true,
		New: func() agg.Accumulator { return &rmsAcc{} },
	}))
}

// logMeanAcc sketches a geometric mean as a weighted mean of logs.
type logMeanAcc struct{ logSum, n float64 }

func (a *logMeanAcc) Add(v, w float64) {
	if v > 0 {
		a.logSum += math.Log(v) * w
		a.n += w
	}
}
func (a *logMeanAcc) Sub(v, w float64) {
	if v > 0 {
		a.logSum -= math.Log(v) * w
		a.n -= w
	}
}
func (a *logMeanAcc) Result(float64) float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return math.Exp(a.logSum / a.n)
}
func (a *logMeanAcc) Merge(o agg.Accumulator) {
	b := o.(*logMeanAcc)
	a.logSum += b.logSum
	a.n += b.n
}
func (a *logMeanAcc) Clone() agg.Accumulator { c := *a; return &c }
func (a *logMeanAcc) Reset()                 { a.logSum, a.n = 0, 0 }
func (a *logMeanAcc) SizeBytes() int         { return 16 }

// harmonicAcc sketches a harmonic mean as a weighted mean of reciprocals.
type harmonicAcc struct{ invSum, n float64 }

func (a *harmonicAcc) Add(v, w float64) {
	if v > 0 {
		a.invSum += w / v
		a.n += w
	}
}
func (a *harmonicAcc) Sub(v, w float64) {
	if v > 0 {
		a.invSum -= w / v
		a.n -= w
	}
}
func (a *harmonicAcc) Result(float64) float64 {
	if a.invSum == 0 {
		return math.NaN()
	}
	return a.n / a.invSum
}
func (a *harmonicAcc) Merge(o agg.Accumulator) {
	b := o.(*harmonicAcc)
	a.invSum += b.invSum
	a.n += b.n
}
func (a *harmonicAcc) Clone() agg.Accumulator { c := *a; return &c }
func (a *harmonicAcc) Reset()                 { a.invSum, a.n = 0, 0 }
func (a *harmonicAcc) SizeBytes() int         { return 16 }

// rmsAcc sketches a root-mean-square.
type rmsAcc struct{ sqSum, n float64 }

func (a *rmsAcc) Add(v, w float64) {
	a.sqSum += v * v * w
	a.n += w
}
func (a *rmsAcc) Sub(v, w float64) {
	a.sqSum -= v * v * w
	a.n -= w
}
func (a *rmsAcc) Result(float64) float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(a.sqSum / a.n)
}
func (a *rmsAcc) Merge(o agg.Accumulator) {
	b := o.(*rmsAcc)
	a.sqSum += b.sqSum
	a.n += b.n
}
func (a *rmsAcc) Clone() agg.Accumulator { c := *a; return &c }
func (a *rmsAcc) Reset()                 { a.sqSum, a.n = 0, 0 }
func (a *rmsAcc) SizeBytes() int         { return 16 }
