// Per-run Bloom filters for spilled HashStore shards. The min-max key
// filters (state.go) cut probes that fall outside every run's key interval,
// but a run built from a sparse key set covers a wide interval most of
// whose interior keys it does not contain — the "sparse in-range miss". A
// small Bloom filter per run, built over exactly the keys written to the
// run at spill time, rejects those probes before the run index and the
// spill file are touched.
//
// Correctness: a filter is built from the complete key set of its run and
// is never updated afterwards. Restore only removes rows, so the filter
// remains a superset of the run's live keys — false positives fall through
// to the exact spilled-key map (a wasted lookup, never a wrong answer) and
// false negatives are impossible. Filters are dropped together with the
// min-max ranges when a restore empties the shard's disk state. Hashing is
// fully deterministic (FNV-1a double hashing, no per-process seed), so
// skip counts are identical across runs and worker counts.
package delta

// bloomBitsPerKey sizes a filter at 12 bits per key (~0.3% false-positive
// rate with the 8 probes of bloomHashes).
const (
	bloomBitsPerKey = 12
	bloomHashes     = 8
)

// bloom is a fixed-size Bloom filter with power-of-two bit count, probed by
// Kirsch-Mitzenmacher double hashing: bit_i = h1 + i·h2.
type bloom struct {
	bits []uint64
	mask uint64 // bit-count − 1
}

// bloomHash derives the two independent 64-bit hashes of a key: FNV-1a for
// h1, and a SplitMix64 finalisation of h1 for h2 (forced odd so the probe
// stride never collapses on the power-of-two table).
func bloomHash(key string) (h1, h2 uint64) {
	h1 = 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		h1 ^= uint64(key[i])
		h1 *= 0x100000001b3
	}
	h2 = h1
	h2 = (h2 ^ (h2 >> 30)) * 0xbf58476d1ce4e5b9
	h2 = (h2 ^ (h2 >> 27)) * 0x94d049bb133111eb
	h2 ^= h2 >> 31
	h2 |= 1
	return h1, h2
}

// newBloom builds a filter over the given keys.
func newBloom(keys []string) *bloom {
	bits := uint64(len(keys) * bloomBitsPerKey)
	// Round up to a power of two, at least one word.
	size := uint64(64)
	for size < bits {
		size <<= 1
	}
	b := &bloom{bits: make([]uint64, size/64), mask: size - 1}
	for _, k := range keys {
		h1, h2 := bloomHash(k)
		for i := 0; i < bloomHashes; i++ {
			bit := (h1 + uint64(i)*h2) & b.mask
			b.bits[bit>>6] |= 1 << (bit & 63)
		}
	}
	return b
}

// has reports whether the key may be in the run (definitely not when false).
func (b *bloom) has(key string) bool {
	h1, h2 := bloomHash(key)
	for i := 0; i < bloomHashes; i++ {
		bit := (h1 + uint64(i)*h2) & b.mask
		if b.bits[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}
