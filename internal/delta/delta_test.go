package delta

import (
	"math/rand"
	"testing"

	"iolap/internal/expr"
	"iolap/internal/rel"
)

func row(vals ...rel.Value) Row { return Row{Vals: vals, Mult: 1} }

func TestRowCloneIsolation(t *testing.T) {
	r := row(rel.Int(1), rel.String("x"))
	c := r.Clone()
	c.Vals[0] = rel.Int(99)
	if r.Vals[0].Int() != 1 {
		t.Error("clone must not share value storage")
	}
}

func TestCombineWeights(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 0, 1}
	got := CombineWeights(a, b)
	want := []float64{2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("combine[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if CombineWeights(nil, b)[0] != 2 {
		t.Error("nil left must pass through right")
	}
	if CombineWeights(a, nil)[2] != 3 {
		t.Error("nil right must pass through left")
	}
	if CombineWeights(nil, nil) != nil {
		t.Error("both nil stays nil")
	}
}

func TestRowSetSnapshotRestore(t *testing.T) {
	var s RowSet
	s.Add(row(rel.Int(1)))
	s.Add(row(rel.Int(2)))
	snap := s.Snapshot()
	s.Add(row(rel.Int(3)))
	s.Rows[0].Vals[0] = rel.Int(99)
	if snap.Len() != 2 || snap.Rows[0].Vals[0].Int() != 1 {
		t.Error("snapshot must be isolated")
	}
	s.Restore(snap)
	if s.Len() != 2 || s.Rows[0].Vals[0].Int() != 1 {
		t.Error("restore must recover the snapshot contents")
	}
	// Restore re-clones: mutating restored state must not corrupt snap.
	s.Rows[0].Vals[0] = rel.Int(5)
	if snap.Rows[0].Vals[0].Int() != 1 {
		t.Error("restore must re-clone rows")
	}
	if s.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Error("clear failed")
	}
}

func TestHashStore(t *testing.T) {
	h := NewHashStore([]int{0})
	h.Add(row(rel.Int(1), rel.String("a")))
	h.Add(row(rel.Int(1), rel.String("b")))
	h.Add(row(rel.Int(2), rel.String("c")))
	if h.Len() != 3 {
		t.Fatalf("len = %d", h.Len())
	}
	probe := []rel.Value{rel.String("x"), rel.Int(1)} // key at index 1
	got := h.Probe(probe, []int{1})
	if len(got) != 2 {
		t.Errorf("probe matched %d rows, want 2", len(got))
	}
	miss := h.Probe([]rel.Value{rel.Int(9)}, []int{0})
	if len(miss) != 0 {
		t.Error("probe miss should be empty")
	}
	count := 0
	h.Each(func(Row) { count++ })
	if count != 3 {
		t.Errorf("Each visited %d", count)
	}
}

func TestHashStoreSnapshotRestore(t *testing.T) {
	h := NewHashStore([]int{0})
	h.Add(row(rel.Int(1)))
	sizeAtSnap := h.SizeBytes()
	snap := h.Snapshot()
	h.Add(row(rel.Int(2)))
	h.Add(row(rel.Int(1), rel.Int(99))) // second row under an existing key
	h.Restore(snap)
	if h.Len() != 1 || h.SizeBytes() != sizeAtSnap {
		t.Errorf("restore failed: len=%d", h.Len())
	}
	if len(h.Probe([]rel.Value{rel.Int(2)}, []int{0})) != 0 {
		t.Error("restored store should not contain post-snapshot keys")
	}
	if got := len(h.Probe([]rel.Value{rel.Int(1)}, []int{0})); got != 1 {
		t.Errorf("restored store must truncate per-key rows: %d", got)
	}
	// Replay after restore: adds land where the discarded rows were.
	h.Add(row(rel.Int(3)))
	if h.Len() != 2 {
		t.Error("store must accept rows after restore")
	}
}

func TestHashStoreSnapshotSurvivesReplayDivergence(t *testing.T) {
	// Classic recovery pattern: snapshot, extend, restore, extend with
	// DIFFERENT rows; the earlier snapshot's view must stay intact.
	h := NewHashStore([]int{0})
	h.Add(row(rel.Int(1), rel.String("a")))
	snap := h.Snapshot()
	h.Add(row(rel.Int(1), rel.String("b")))
	h.Restore(snap)
	h.Add(row(rel.Int(1), rel.String("c")))
	got := h.Probe([]rel.Value{rel.Int(1)}, []int{0})
	if len(got) != 2 || got[1].Vals[1].Str() != "c" {
		t.Errorf("replay after restore wrong: %v", got)
	}
}

// TestDeltaJoinEquivalence is the core subsumption property: processing a
// stream of row batches through DeltaJoin accumulates exactly the join of
// the full inputs.
func TestDeltaJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		l := NewHashStore([]int{0})
		r := NewHashStore([]int{0})
		var result []Row
		var allL, allR []Row
		batches := 1 + rng.Intn(5)
		for b := 0; b < batches; b++ {
			var d1, d2 []Row
			for i := 0; i < rng.Intn(6); i++ {
				d1 = append(d1, row(rel.Int(int64(rng.Intn(4))), rel.String("l")))
			}
			for i := 0; i < rng.Intn(6); i++ {
				d2 = append(d2, row(rel.Int(int64(rng.Intn(4))), rel.String("r")))
			}
			result = append(result, DeltaJoin(l, r, d1, d2, []int{0}, []int{0})...)
			for _, x := range d1 {
				l.Add(x)
				allL = append(allL, x)
			}
			for _, x := range d2 {
				r.Add(x)
				allR = append(allR, x)
			}
		}
		// Batch join of the full inputs.
		want := 0
		for _, a := range allL {
			for _, b := range allR {
				if a.Vals[0].Equal(b.Vals[0]) {
					want++
				}
			}
		}
		if len(result) != want {
			t.Fatalf("incremental join produced %d rows, batch join %d", len(result), want)
		}
	}
}

func TestDeltaSelectProjectUnion(t *testing.T) {
	pred := expr.NewCmp(expr.Gt, expr.NewCol(0, "", rel.KInt), expr.NewConst(rel.Int(2)))
	delta := []Row{row(rel.Int(1)), row(rel.Int(3)), row(rel.Int(5))}
	got := DeltaSelect(pred, delta, nil)
	if len(got) != 2 {
		t.Errorf("delta select kept %d, want 2", len(got))
	}
	proj := DeltaProject([]expr.Expr{
		expr.NewArith(expr.Mul, expr.NewCol(0, "", rel.KInt), expr.NewConst(rel.Int(10)))},
		delta, nil)
	if proj[1].Vals[0].Int() != 30 {
		t.Errorf("delta project = %v", proj[1].Vals[0])
	}
	u := DeltaUnion(delta[:1], delta[1:])
	if len(u) != 3 {
		t.Error("delta union wrong")
	}
}

func TestDeltaJoinCombinesWeights(t *testing.T) {
	l := NewHashStore([]int{0})
	r := NewHashStore([]int{0})
	d1 := []Row{{Vals: []rel.Value{rel.Int(1)}, Mult: 2, W: []float64{1, 2}}}
	d2 := []Row{{Vals: []rel.Value{rel.Int(1)}, Mult: 3, W: []float64{2, 2}}}
	out := DeltaJoin(l, r, d1, d2, []int{0}, []int{0})
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	if out[0].Mult != 6 {
		t.Errorf("mult = %v, want 6", out[0].Mult)
	}
	if out[0].W[0] != 2 || out[0].W[1] != 4 {
		t.Errorf("weights = %v", out[0].W)
	}
}
