// Package delta provides the operator-state machinery of the delta update
// algorithm (Section 4.2): the collections of tuples each online operator
// must remember between mini-batches, with snapshot/restore support for the
// failure-recovery protocol of Section 5.1, and byte accounting for the
// state-size experiments (Figures 9(b) and 10(c)).
//
// It also implements the classical delta update rules of Figure 1
// (rules.go), which iOLAP's algorithm subsumes on flat SPJA queries; the
// property tests in this package check that subsumption directly.
package delta

import (
	"iolap/internal/cluster"
	"iolap/internal/rel"
)

// Row is the unit of dataflow between online operators: a tuple, its
// bootstrap Poisson weight vector (nil for rows not derived from a streamed
// relation), and the key under which it entered the operator (memoised for
// cheap state management).
type Row struct {
	Vals []rel.Value
	Mult float64
	W    []float64
}

// Clone deep-copies the row's values (weights are immutable and shared).
func (r Row) Clone() Row {
	vals := make([]rel.Value, len(r.Vals))
	copy(vals, r.Vals)
	return Row{Vals: vals, Mult: r.Mult, W: r.W}
}

// SizeBytes estimates the row's memory footprint (weights counted: the paper
// ships bootstrap multiplicity columns with each tuple).
func (r Row) SizeBytes() int {
	n := 24 + 8*len(r.W)
	for _, v := range r.Vals {
		n += v.SizeBytes()
	}
	return n
}

// CombineWeights multiplies two Poisson weight vectors element-wise; nil
// means "all ones" (non-streamed provenance) and is absorbed.
func CombineWeights(a, b []float64) []float64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make([]float64, len(a))
	for i := range a {
		w := b[i]
		if i >= len(b) {
			w = 1
		}
		out[i] = a[i] * w
	}
	return out
}

// RowSet is an ordered collection of rows — the generic operator state (a
// select's non-deterministic set U_i, a sink's pending set, an aggregate's
// lineage rows).
type RowSet struct {
	Rows []Row
}

// Add appends a row.
func (s *RowSet) Add(r Row) { s.Rows = append(s.Rows, r) }

// Len returns the number of rows.
func (s *RowSet) Len() int { return len(s.Rows) }

// Clear empties the set, keeping capacity.
func (s *RowSet) Clear() { s.Rows = s.Rows[:0] }

// SizeBytes estimates the state footprint.
func (s *RowSet) SizeBytes() int {
	n := 24
	for _, r := range s.Rows {
		n += r.SizeBytes()
	}
	return n
}

// Snapshot deep-copies the set.
func (s *RowSet) Snapshot() *RowSet {
	out := &RowSet{Rows: make([]Row, len(s.Rows))}
	for i, r := range s.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// Restore replaces the contents with a snapshot (which must not be mutated
// afterwards; Restore re-clones).
func (s *RowSet) Restore(snap *RowSet) {
	s.Rows = make([]Row, len(snap.Rows))
	for i, r := range snap.Rows {
		s.Rows[i] = r.Clone()
	}
}

// storeShards is the fixed internal shard count of a HashStore. A key lives
// in exactly one shard (by FNV-1a of its encoding), which lets AddBatch give
// each shard to one worker while preserving per-key insertion order. The
// shard is also the spill unit: eviction moves one whole shard's hot rows to
// that shard's spill file.
const storeShards = 16

// shard is one of the 16 key-space partitions of a HashStore. Rows for a key
// live as an on-disk prefix (spilled, in run order) followed by an in-memory
// suffix (hot, in insertion order); eviction moves the entire hot suffix to
// disk, so the prefix/suffix split is the only invariant reads rely on.
type shard struct {
	hot     map[string][]Row
	spilled map[string][]spillRef // nil until the shard first spills
	// ranges holds one min-max key filter per spill run (eviction event):
	// runs encode keys in sorted order, so the first and last key bound
	// everything in the run. A probe whose key falls outside every range
	// cannot match any spilled row and skips the run index entirely. Ranges
	// are only ever a superset of the live runs (Restore keeps them as-is
	// while runs remain), which can cost a skip but never correctness.
	ranges []keyRange
	// blooms holds one Bloom filter per spill run, parallel to ranges,
	// built over exactly the run's keys at spill time. Consulted after the
	// min-max filter for sparse in-range misses; like ranges, filters stay
	// a superset of the live runs under Restore (bloom.go).
	blooms  []*bloom
	mem     int // resident bytes of hot rows
	disk    int // logical bytes of spilled rows
	onDisk  int // spilled row count
	lastAdd int // policy epoch of the last insert (coldness)
}

// keyRange is one spill run's [min, max] encoded-key interval.
type keyRange struct {
	min, max string
}

// covers reports whether any run's key range could contain k.
func (sh *shard) covers(k string) bool {
	for _, r := range sh.ranges {
		if k >= r.min && k <= r.max {
			return true
		}
	}
	return false
}

// mayContain refines covers with the per-run Bloom filters: the key can only
// be spilled if some run both spans it and bloom-admits it. A run without a
// filter (never happens today, but nil stays safe) counts as "maybe".
func (sh *shard) mayContain(k string) bool {
	for i, r := range sh.ranges {
		if k < r.min || k > r.max {
			continue
		}
		if i < len(sh.blooms) && sh.blooms[i] != nil && !sh.blooms[i].has(k) {
			continue
		}
		return true
	}
	return false
}

// HashStore is a join side's accumulated certain rows, hashed by join key
// (Section 4.2's JOIN state). Insertion order is preserved per key for
// deterministic replay. Internally the key space is split into a fixed
// number of shards so batch builds can run partition-parallel and eviction
// can spill cold shards wholesale.
type HashStore struct {
	keys   []int // key column indexes
	shards [storeShards]shard
	n      int
	size   int           // logical bytes of all rows, hot or spilled
	sp     *spillBackend // nil for memory-only stores
}

// NewHashStore builds a store hashing on the given column indexes.
func NewHashStore(keyCols []int) *HashStore {
	h := &HashStore{keys: keyCols}
	for i := range h.shards {
		h.shards[i].hot = make(map[string][]Row)
	}
	return h
}

func shardOf(key string) int {
	var f uint64 = 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		f ^= uint64(key[i])
		f *= 0x100000001b3
	}
	return int(f % storeShards)
}

// shardOfBytes is shardOf over the raw key bytes (same FNV-1a stream, so the
// two always agree for equal contents).
func shardOfBytes(key []byte) int {
	var f uint64 = 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		f ^= uint64(key[i])
		f *= 0x100000001b3
	}
	return int(f % storeShards)
}

// Add inserts a row under its key.
func (h *HashStore) Add(r Row) {
	k := rel.EncodeKey(r.Vals, h.keys)
	h.addKeyed(shardOf(k), k, r)
}

// addKeyed inserts a pre-hashed row. The caller must own shard s (the
// sequential path trivially does; AddBatch gives each shard to one worker).
func (h *HashStore) addKeyed(s int, k string, r Row) {
	sh := &h.shards[s]
	sh.hot[k] = append(sh.hot[k], r)
	sz := r.SizeBytes()
	sh.mem += sz
	if h.sp != nil {
		sh.lastAdd = h.sp.policy.epoch
	}
	h.n++
	h.size += sz
}

// AddBatch inserts a slice of rows, cloning each first when clone is set.
// With a multi-worker pool the build runs partition-parallel: keys are
// encoded chunk-parallel, rows are bucketed by shard in input order, and one
// worker owns each shard — so every key's row list ends up in exactly the
// order a sequential Add loop would produce, and the resulting store is
// indistinguishable from the sequential build.
func (h *HashStore) AddBatch(rows []Row, clone bool, pool *cluster.Pool) {
	if pool == nil || pool.Workers() == 1 || len(rows) < storeShards {
		for _, r := range rows {
			if clone {
				r = r.Clone()
			}
			h.Add(r)
		}
		return
	}
	keys := make([]string, len(rows))
	pool.MapChunks(len(rows), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = rel.EncodeKey(rows[i].Vals, h.keys)
		}
	})
	var byShard [storeShards][]int32
	for i, k := range keys {
		s := shardOf(k)
		byShard[s] = append(byShard[s], int32(i))
	}
	var ns, sizes [storeShards]int
	// Shard row counts are the size hints: with skewed keys a few shards
	// hold most of the batch, and the hints let the pool's stealing
	// scheduler seed the big shards across different workers instead of
	// dealing them round-robin.
	pool.MapSized(storeShards,
		func(s int) int { return len(byShard[s]) },
		func(s int) {
			if len(byShard[s]) == 0 {
				return
			}
			sh := &h.shards[s]
			for _, i := range byShard[s] {
				r := rows[i]
				if clone {
					r = r.Clone()
				}
				sh.hot[keys[i]] = append(sh.hot[keys[i]], r)
				ns[s]++
				sizes[s] += r.SizeBytes()
			}
			sh.mem += sizes[s]
			if h.sp != nil {
				sh.lastAdd = h.sp.policy.epoch
			}
		})
	for s := 0; s < storeShards; s++ {
		h.n += ns[s]
		h.size += sizes[s]
	}
}

// Probe returns the rows matching the key columns of probe (resolved through
// the probe-side key indexes). Read-only: safe for concurrent use while no
// Add/AddBatch/Restore/spill is in flight (spill file reads are positional).
// When part of the key's rows were evicted, Probe reads them back
// transparently; a spill-file read failure panics, because spill files are
// process-local scratch whose loss is unrecoverable within the process — the
// engine's §5.1 snapshot/replay handles process-level failures.
func (h *HashStore) Probe(probeVals []rel.Value, probeKeys []int) []Row {
	// Encode the probe key into a stack buffer: the hot-map access indexes
	// by string(buf), which the compiler compiles to a no-copy lookup, so
	// the common all-resident probe allocates nothing. Only a probe against
	// a shard with spilled rows materialises the key string.
	var kb [96]byte
	buf := rel.EncodeKeyInto(kb[:0], probeVals, probeKeys)
	return h.ProbeKey(buf)
}

// ProbeKey is Probe for callers that already hold the encoded key bytes —
// the columnar join path encodes keys straight from column banks
// (rel.Columns.EncodeKeyInto) and probes with the buffer, skipping the
// per-row value gather. Same concurrency contract as Probe.
func (h *HashStore) ProbeKey(buf []byte) []Row {
	s := shardOfBytes(buf)
	sh := &h.shards[s]
	hot := sh.hot[string(buf)]
	if sh.onDisk == 0 {
		return hot
	}
	k := string(buf)
	if !sh.covers(k) {
		// Min-max filtered: the key is outside every run's range, so no
		// spilled row can match. Counted so the experiments can report how
		// often the filters save the run-index walk.
		if h.sp != nil {
			h.sp.policy.metrics.RecordSpillProbeSkip()
		}
		return hot
	}
	if !sh.mayContain(k) {
		// Bloom filtered: inside some run's range, but every covering run's
		// filter rejects the key — the sparse in-range miss.
		if h.sp != nil {
			h.sp.policy.metrics.RecordSpillBloomSkip()
		}
		return hot
	}
	refs := sh.spilled[k]
	if len(refs) == 0 {
		return hot
	}
	return append(h.sp.readRefs(nil, s, refs), hot...)
}

// Each visits all stored rows, spilled prefix before hot suffix per key.
func (h *HashStore) Each(fn func(Row)) {
	for s := range h.shards {
		sh := &h.shards[s]
		for k, refs := range sh.spilled {
			if len(refs) == 0 {
				continue
			}
			for _, r := range h.sp.readRefs(nil, s, refs) {
				fn(r)
			}
			for _, r := range sh.hot[k] {
				fn(r)
			}
		}
		for k, rows := range sh.hot {
			if len(sh.spilled[k]) > 0 {
				continue // already visited above
			}
			for _, r := range rows {
				fn(r)
			}
		}
	}
}

// Len returns the number of stored rows.
func (h *HashStore) Len() int { return h.n }

// SizeBytes estimates the logical state footprint — all rows whether hot or
// spilled, so the Figure 9(b)/10(c) state metric is budget-invariant.
func (h *HashStore) SizeBytes() int { return 48 + h.size }

// MemBytes estimates the resident (hot, in-memory) footprint only: the
// quantity the SpillPolicy budgets.
func (h *HashStore) MemBytes() int {
	n := 48
	for s := range h.shards {
		n += h.shards[s].mem
	}
	return n
}

// SpilledRows returns how many rows currently live on disk.
func (h *HashStore) SpilledRows() int {
	n := 0
	for s := range h.shards {
		n += h.shards[s].onDisk
	}
	return n
}

// HashSnap is a truncation snapshot of a HashStore. The store is
// append-only and rows are immutable once added (Add clones), so a snapshot
// needs only the per-key TOTAL row counts — spilled prefix plus hot suffix —
// O(keys) instead of O(rows), which keeps the controller's per-batch
// snapshots cheap even when a join caches an entire fact side. Counting
// totals rather than in-memory lengths makes snapshots location-independent:
// eviction between Snapshot and Restore moves rows to disk but never
// reorders the per-key sequence, so the counts still identify the prefix to
// keep.
type HashSnap struct {
	perKey map[string]int
	n      int
	size   int
}

// Snapshot records the current per-key total row counts.
func (h *HashStore) Snapshot() *HashSnap {
	s := &HashSnap{perKey: make(map[string]int), n: h.n, size: h.size}
	for i := range h.shards {
		sh := &h.shards[i]
		for k, rows := range sh.hot {
			s.perKey[k] = len(rows)
		}
		for k, refs := range sh.spilled {
			n := 0
			for _, ref := range refs {
				n += ref.n
			}
			if n > 0 {
				s.perKey[k] += n
			}
		}
	}
	return s
}

// Restore truncates the store back to a snapshot taken from it. Only valid
// for snapshots of this store's own past (rows are never mutated in place,
// so truncation recovers the exact earlier contents). Per key, the first
// `want` rows of the spilled-then-hot sequence are kept: whole spill runs
// where possible, a run straddling the cut is trimmed at a row boundary by
// decoding its length prefixes, and the hot remainder is truncated last.
// Spill files shrink to the highest surviving run end — as hygiene, not
// correctness: the run index is the source of truth and orphaned bytes past
// the logical end are simply overwritten by the next spill.
func (h *HashStore) Restore(snap *HashSnap) {
	for s := range h.shards {
		h.restoreShard(s, snap)
	}
	h.n = snap.n
	h.size = snap.size
}

func (h *HashStore) restoreShard(s int, snap *HashSnap) {
	sh := &h.shards[s]
	var maxEnd int64
	for k, refs := range sh.spilled {
		want := snap.perKey[k] // 0 when the key postdates the snapshot
		kept := refs[:0]
		for _, ref := range refs {
			switch {
			case want >= ref.n:
				kept = append(kept, ref)
				want -= ref.n
			case want > 0:
				kept = append(kept, h.sp.trimRef(s, ref, want))
				want = 0
			}
		}
		if len(kept) == 0 {
			delete(sh.spilled, k)
		} else {
			sh.spilled[k] = kept
			if end := kept[len(kept)-1].off + kept[len(kept)-1].bytes; end > maxEnd {
				maxEnd = end
			}
		}
		// Hot rows survive only past the full spilled prefix.
		if hot := sh.hot[k]; len(hot) > 0 {
			if want < len(hot) {
				if want == 0 {
					delete(sh.hot, k)
				} else {
					sh.hot[k] = hot[:want]
				}
			}
		}
	}
	for k, rows := range sh.hot {
		if len(sh.spilled[k]) > 0 {
			continue // trimmed above
		}
		want, ok := snap.perKey[k]
		if !ok {
			delete(sh.hot, k)
			continue
		}
		if want < len(rows) {
			sh.hot[k] = rows[:want]
		}
	}
	// Recompute the derived accounting from the surviving contents.
	sh.mem = 0
	for _, rows := range sh.hot {
		for _, r := range rows {
			sh.mem += r.SizeBytes()
		}
	}
	sh.disk, sh.onDisk = 0, 0
	for _, refs := range sh.spilled {
		for _, ref := range refs {
			sh.disk += int(ref.bytes)
			sh.onDisk += ref.n
		}
	}
	if sh.onDisk == 0 {
		// No spilled rows survive; drop the stale min-max and Bloom filters
		// (while runs remain, both stay supersets, which is always safe).
		sh.ranges = nil
		sh.blooms = nil
	}
	if h.sp != nil {
		h.sp.truncateTo(s, maxEnd)
	}
}
