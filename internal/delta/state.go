// Package delta provides the operator-state machinery of the delta update
// algorithm (Section 4.2): the collections of tuples each online operator
// must remember between mini-batches, with snapshot/restore support for the
// failure-recovery protocol of Section 5.1, and byte accounting for the
// state-size experiments (Figures 9(b) and 10(c)).
//
// It also implements the classical delta update rules of Figure 1
// (rules.go), which iOLAP's algorithm subsumes on flat SPJA queries; the
// property tests in this package check that subsumption directly.
package delta

import (
	"iolap/internal/cluster"
	"iolap/internal/rel"
)

// Row is the unit of dataflow between online operators: a tuple, its
// bootstrap Poisson weight vector (nil for rows not derived from a streamed
// relation), and the key under which it entered the operator (memoised for
// cheap state management).
type Row struct {
	Vals []rel.Value
	Mult float64
	W    []float64
}

// Clone deep-copies the row's values (weights are immutable and shared).
func (r Row) Clone() Row {
	vals := make([]rel.Value, len(r.Vals))
	copy(vals, r.Vals)
	return Row{Vals: vals, Mult: r.Mult, W: r.W}
}

// SizeBytes estimates the row's memory footprint (weights counted: the paper
// ships bootstrap multiplicity columns with each tuple).
func (r Row) SizeBytes() int {
	n := 24 + 8*len(r.W)
	for _, v := range r.Vals {
		n += v.SizeBytes()
	}
	return n
}

// CombineWeights multiplies two Poisson weight vectors element-wise; nil
// means "all ones" (non-streamed provenance) and is absorbed.
func CombineWeights(a, b []float64) []float64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make([]float64, len(a))
	for i := range a {
		w := b[i]
		if i >= len(b) {
			w = 1
		}
		out[i] = a[i] * w
	}
	return out
}

// RowSet is an ordered collection of rows — the generic operator state (a
// select's non-deterministic set U_i, a sink's pending set, an aggregate's
// lineage rows).
type RowSet struct {
	Rows []Row
}

// Add appends a row.
func (s *RowSet) Add(r Row) { s.Rows = append(s.Rows, r) }

// Len returns the number of rows.
func (s *RowSet) Len() int { return len(s.Rows) }

// Clear empties the set, keeping capacity.
func (s *RowSet) Clear() { s.Rows = s.Rows[:0] }

// SizeBytes estimates the state footprint.
func (s *RowSet) SizeBytes() int {
	n := 24
	for _, r := range s.Rows {
		n += r.SizeBytes()
	}
	return n
}

// Snapshot deep-copies the set.
func (s *RowSet) Snapshot() *RowSet {
	out := &RowSet{Rows: make([]Row, len(s.Rows))}
	for i, r := range s.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// Restore replaces the contents with a snapshot (which must not be mutated
// afterwards; Restore re-clones).
func (s *RowSet) Restore(snap *RowSet) {
	s.Rows = make([]Row, len(snap.Rows))
	for i, r := range snap.Rows {
		s.Rows[i] = r.Clone()
	}
}

// storeShards is the fixed internal shard count of a HashStore. A key lives
// in exactly one shard (by FNV-1a of its encoding), which lets AddBatch give
// each shard to one worker while preserving per-key insertion order.
const storeShards = 16

// HashStore is a join side's accumulated certain rows, hashed by join key
// (Section 4.2's JOIN state). Insertion order is preserved per key for
// deterministic replay. Internally the key space is split into a fixed
// number of shards so batch builds can run partition-parallel.
type HashStore struct {
	keys   []int // key column indexes
	shards [storeShards]map[string][]Row
	n      int
	size   int
}

// NewHashStore builds a store hashing on the given column indexes.
func NewHashStore(keyCols []int) *HashStore {
	h := &HashStore{keys: keyCols}
	for i := range h.shards {
		h.shards[i] = make(map[string][]Row)
	}
	return h
}

func shardOf(key string) int {
	var f uint64 = 0xcbf29ce484222325
	for i := 0; i < len(key); i++ {
		f ^= uint64(key[i])
		f *= 0x100000001b3
	}
	return int(f % storeShards)
}

// Add inserts a row under its key.
func (h *HashStore) Add(r Row) {
	k := rel.EncodeKey(r.Vals, h.keys)
	m := h.shards[shardOf(k)]
	m[k] = append(m[k], r)
	h.n++
	h.size += r.SizeBytes()
}

// AddBatch inserts a slice of rows, cloning each first when clone is set.
// With a multi-worker pool the build runs partition-parallel: keys are
// encoded chunk-parallel, rows are bucketed by shard in input order, and one
// worker owns each shard — so every key's row list ends up in exactly the
// order a sequential Add loop would produce, and the resulting store is
// indistinguishable from the sequential build.
func (h *HashStore) AddBatch(rows []Row, clone bool, pool *cluster.Pool) {
	if pool == nil || pool.Workers() == 1 || len(rows) < storeShards {
		for _, r := range rows {
			if clone {
				r = r.Clone()
			}
			h.Add(r)
		}
		return
	}
	keys := make([]string, len(rows))
	pool.MapChunks(len(rows), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = rel.EncodeKey(rows[i].Vals, h.keys)
		}
	})
	var byShard [storeShards][]int32
	for i, k := range keys {
		s := shardOf(k)
		byShard[s] = append(byShard[s], int32(i))
	}
	var ns, sizes [storeShards]int
	// Shard row counts are the size hints: with skewed keys a few shards
	// hold most of the batch, and the hints let the pool's stealing
	// scheduler seed the big shards across different workers instead of
	// dealing them round-robin.
	pool.MapSized(storeShards,
		func(s int) int { return len(byShard[s]) },
		func(s int) {
			m := h.shards[s]
			for _, i := range byShard[s] {
				r := rows[i]
				if clone {
					r = r.Clone()
				}
				m[keys[i]] = append(m[keys[i]], r)
				ns[s]++
				sizes[s] += r.SizeBytes()
			}
		})
	for s := 0; s < storeShards; s++ {
		h.n += ns[s]
		h.size += sizes[s]
	}
}

// Probe returns the rows matching the key columns of probe (resolved through
// the probe-side key indexes). Read-only: safe for concurrent use while no
// Add/AddBatch/Restore is in flight.
func (h *HashStore) Probe(probeVals []rel.Value, probeKeys []int) []Row {
	k := rel.EncodeKey(probeVals, probeKeys)
	return h.shards[shardOf(k)][k]
}

// Each visits all stored rows.
func (h *HashStore) Each(fn func(Row)) {
	for _, m := range h.shards {
		for _, rows := range m {
			for _, r := range rows {
				fn(r)
			}
		}
	}
}

// Len returns the number of stored rows.
func (h *HashStore) Len() int { return h.n }

// SizeBytes estimates the state footprint.
func (h *HashStore) SizeBytes() int { return 48 + h.size }

// HashSnap is a truncation snapshot of a HashStore. The store is
// append-only and rows are immutable once added (Add clones), so a snapshot
// needs only the per-key lengths — O(keys) instead of O(rows), which keeps
// the controller's per-batch snapshots cheap even when a join caches an
// entire fact side.
type HashSnap struct {
	perKey map[string]int
	n      int
	size   int
}

// Snapshot records the current per-key lengths.
func (h *HashStore) Snapshot() *HashSnap {
	s := &HashSnap{perKey: make(map[string]int), n: h.n, size: h.size}
	for _, m := range h.shards {
		for k, rows := range m {
			s.perKey[k] = len(rows)
		}
	}
	return s
}

// Restore truncates the store back to a snapshot taken from it. Only valid
// for snapshots of this store's own past (rows are never mutated in place,
// so truncation recovers the exact earlier contents).
func (h *HashStore) Restore(snap *HashSnap) {
	for _, m := range h.shards {
		for k, rows := range m {
			want, ok := snap.perKey[k]
			if !ok {
				delete(m, k)
				continue
			}
			if want < len(rows) {
				m[k] = rows[:want]
			}
		}
	}
	h.n = snap.n
	h.size = snap.size
}
