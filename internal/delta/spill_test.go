package delta

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"iolap/internal/cluster"
	"iolap/internal/rel"
	"iolap/internal/storage"
)

// keyInt builds a one-int-column row whose first column is the join key.
func keyInt(k, payload int) Row {
	return Row{Vals: []rel.Value{rel.Int(int64(k)), rel.Int(int64(payload))}, Mult: 1.5, W: []float64{1, 2}}
}

func probeKey(h *HashStore, k int) []Row {
	return h.Probe([]rel.Value{rel.Int(int64(k))}, []int{0})
}

func sameRows(t *testing.T, got, want []Row, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if len(g.Vals) != len(w.Vals) || g.Mult != w.Mult || len(g.W) != len(w.W) {
			t.Fatalf("%s: row %d shape mismatch: %+v vs %+v", label, i, g, w)
		}
		for j := range w.Vals {
			if !g.Vals[j].Equal(w.Vals[j]) {
				t.Fatalf("%s: row %d val %d = %v, want %v", label, i, j, g.Vals[j], w.Vals[j])
			}
		}
		for j := range w.W {
			if g.W[j] != w.W[j] {
				t.Fatalf("%s: row %d weight %d = %v, want %v", label, i, j, g.W[j], w.W[j])
			}
		}
	}
}

// newSpillStore returns a store registered with a zero-budget policy over a
// MemFS, plus the policy and its metrics.
func newSpillStore(t *testing.T, budget int64) (*HashStore, *SpillPolicy, *cluster.Metrics) {
	t.Helper()
	var m cluster.Metrics
	p := NewSpillPolicy(budget, storage.NewMemFS(), &m)
	h := NewHashStore([]int{0})
	p.Register(h)
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("policy close: %v", err)
		}
	})
	return h, p, &m
}

// TestProbeTransparentAcrossSpill interleaves inserts and full evictions and
// checks that Probe and Each agree with a memory-only twin at every point:
// operators must not be able to tell whether state is resident.
func TestProbeTransparentAcrossSpill(t *testing.T) {
	h, p, m := newSpillStore(t, 0)
	twin := NewHashStore([]int{0})

	payload := 0
	addRound := func(epoch int, keys ...int) {
		p.Advance(epoch)
		for _, k := range keys {
			r := keyInt(k, payload)
			payload++
			h.Add(r.Clone())
			twin.Add(r.Clone())
		}
	}

	addRound(1, 1, 2, 3, 1, 1)
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	addRound(2, 1, 4, 2) // hot suffixes on top of spilled prefixes
	for _, k := range []int{1, 2, 3, 4, 99} {
		sameRows(t, probeKey(h, k), probeKey(twin, k), fmt.Sprintf("key %d after partial spill", k))
	}
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	addRound(3, 1)
	// Now key 1 has two spilled runs plus a hot row.
	for _, k := range []int{1, 2, 3, 4} {
		sameRows(t, probeKey(h, k), probeKey(twin, k), fmt.Sprintf("key %d after second spill", k))
	}

	if h.Len() != twin.Len() || h.SizeBytes() != twin.SizeBytes() {
		t.Fatalf("logical accounting drifted: (%d, %d) vs (%d, %d)",
			h.Len(), h.SizeBytes(), twin.Len(), twin.SizeBytes())
	}
	if h.SpilledRows() == 0 {
		t.Fatal("expected spilled rows under a zero budget")
	}
	if h.MemBytes() >= twin.MemBytes() {
		t.Fatalf("spilled store resident %d not below twin %d", h.MemBytes(), twin.MemBytes())
	}
	if m.SpillBytesWritten() == 0 || m.SpillBytesRead() == 0 {
		t.Fatalf("metrics: written %d read %d, want both > 0",
			m.SpillBytesWritten(), m.SpillBytesRead())
	}

	// Each must visit the same multiset, spilled prefix before hot suffix
	// per key — collect (key, payload) pairs and compare sorted by key with
	// per-key order preserved.
	collect := func(s *HashStore) []string {
		byKey := map[int64][]string{}
		var keys []int64
		s.Each(func(r Row) {
			k := r.Vals[0].Int()
			if len(byKey[k]) == 0 {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], r.Vals[1].String())
		})
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var out []string
		for _, k := range keys {
			out = append(out, fmt.Sprintf("%d:%v", k, byKey[k]))
		}
		return out
	}
	got, want := collect(h), collect(twin)
	if len(got) != len(want) {
		t.Fatalf("Each visited %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each key %d: %s, want %s", i, got[i], want[i])
		}
	}
}

// TestSnapshotSurvivesEviction is the satellite-4 regression: a snapshot
// taken while all rows were hot must restore correctly even after eviction
// moved those rows — plus newer ones — to disk in between. The key with
// rows on both sides of the snapshot boundary lands in a single spill run,
// forcing Restore to split a run at a row boundary (the straddling-ref
// case).
func TestSnapshotSurvivesEviction(t *testing.T) {
	h, p, _ := newSpillStore(t, 0)
	twin := NewHashStore([]int{0})
	add := func(k, payload int) {
		h.Add(keyInt(k, payload))
		twin.Add(keyInt(k, payload))
	}

	p.Advance(1)
	for i := 0; i < 5; i++ {
		add(1, i) // pre-snapshot rows of key 1
	}
	add(2, 100)
	snap, snapTwin := h.Snapshot(), twin.Snapshot()

	p.Advance(2)
	add(1, 5) // post-snapshot rows of key 1: same run as the 5 above
	add(1, 6)
	add(3, 200) // a key that postdates the snapshot entirely
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	if h.SpilledRows() != h.Len() {
		t.Fatalf("setup: %d of %d rows spilled, want all", h.SpilledRows(), h.Len())
	}

	h.Restore(snap)
	twin.Restore(snapTwin)

	if h.Len() != twin.Len() || h.SizeBytes() != twin.SizeBytes() {
		t.Fatalf("restored accounting (%d, %d) != twin (%d, %d)",
			h.Len(), h.SizeBytes(), twin.Len(), twin.SizeBytes())
	}
	for _, k := range []int{1, 2, 3} {
		sameRows(t, probeKey(h, k), probeKey(twin, k), fmt.Sprintf("key %d after restore", k))
	}

	// The store must remain fully usable: grow again, spill again, probe.
	p.Advance(3)
	add(1, 7)
	add(3, 300)
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		sameRows(t, probeKey(h, k), probeKey(twin, k), fmt.Sprintf("key %d after regrow", k))
	}
}

// TestRestoreOfSpilledPastIsRepeatable: snapshot AFTER a spill (the snapshot
// itself covers on-disk rows), then grow, spill more, restore — twice, since
// a Restore that corrupted the run index would only show on the second pass.
func TestRestoreOfSpilledPast(t *testing.T) {
	h, p, _ := newSpillStore(t, 0)
	twin := NewHashStore([]int{0})
	add := func(k, payload int) {
		h.Add(keyInt(k, payload))
		twin.Add(keyInt(k, payload))
	}
	p.Advance(1)
	add(1, 0)
	add(1, 1)
	add(2, 2)
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	p.Advance(2)
	add(1, 3) // hot on top of spilled
	snap, snapTwin := h.Snapshot(), twin.Snapshot()

	for round := 0; round < 2; round++ {
		p.Advance(3 + round)
		add(1, 10+round)
		add(2, 20+round)
		if err := p.Enforce(); err != nil {
			t.Fatal(err)
		}
		h.Restore(snap)
		twin.Restore(snapTwin)
		for _, k := range []int{1, 2} {
			sameRows(t, probeKey(h, k), probeKey(twin, k),
				fmt.Sprintf("round %d key %d", round, k))
		}
	}
}

// TestSpillFaultLeavesMemoryAuthoritative: a failed write or sync during
// eviction must leave the hot map byte-for-byte intact (no index entry, no
// lost rows), and a retry after the fault heals must succeed.
func TestSpillFaultLeavesMemoryAuthoritative(t *testing.T) {
	for _, tc := range []struct {
		name   string
		inject func(fs *storage.FaultFS)
	}{
		{"write-error", func(fs *storage.FaultFS) { fs.FailWriteAt(1, false) }},
		{"short-write", func(fs *storage.FaultFS) { fs.FailWriteAt(1, true) }},
		{"sync-error", func(fs *storage.FaultFS) { fs.FailSyncAt(1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var m cluster.Metrics
			fs := storage.NewFaultFS(storage.NewMemFS())
			p := NewSpillPolicy(0, fs, &m)
			h := NewHashStore([]int{0})
			p.Register(h)
			defer p.Close()

			p.Advance(1)
			for i := 0; i < 6; i++ {
				h.Add(keyInt(i%2, i))
			}
			memBefore := h.MemBytes()

			tc.inject(fs)
			err := p.Enforce()
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("Enforce error = %v, want injected fault", err)
			}
			if h.MemBytes() != memBefore || h.SpilledRows() != 0 {
				t.Fatalf("failed spill mutated state: mem %d->%d, spilled %d",
					memBefore, h.MemBytes(), h.SpilledRows())
			}
			if m.SpillBytesWritten() != 0 {
				t.Fatalf("failed spill recorded %d written bytes", m.SpillBytesWritten())
			}

			// Fault healed (N-th op schedules fire once): retry succeeds and
			// reads agree with a twin.
			if err := p.Enforce(); err != nil {
				t.Fatalf("retry after heal: %v", err)
			}
			if h.SpilledRows() != 6 {
				t.Fatalf("retry spilled %d rows, want 6", h.SpilledRows())
			}
			twin := NewHashStore([]int{0})
			for i := 0; i < 6; i++ {
				twin.Add(keyInt(i%2, i))
			}
			for _, k := range []int{0, 1} {
				sameRows(t, probeKey(h, k), probeKey(twin, k), fmt.Sprintf("key %d", k))
			}
		})
	}
}

// TestEvictionOrderColdestFirst: with a budget that only forces one shard
// out, the shard untouched for longer spills first even when the recently
// touched one is larger.
func TestEvictionOrderColdestFirst(t *testing.T) {
	// Find two keys living in different shards.
	coldK, hotK := -1, -1
	for i := 0; i < 64 && hotK < 0; i++ {
		s := shardOf(rel.EncodeKey([]rel.Value{rel.Int(int64(i))}, []int{0}))
		if coldK < 0 {
			coldK = i
			continue
		}
		if s != shardOf(rel.EncodeKey([]rel.Value{rel.Int(int64(coldK))}, []int{0})) {
			hotK = i
		}
	}
	if hotK < 0 {
		t.Fatal("could not find keys in distinct shards")
	}

	var m cluster.Metrics
	p := NewSpillPolicy(1, storage.NewMemFS(), &m) // tiny but nonzero
	h := NewHashStore([]int{0})
	p.Register(h)
	defer p.Close()

	p.Advance(1)
	h.Add(keyInt(coldK, 0))
	p.Advance(2)
	for i := 0; i < 5; i++ { // hot shard is 5x larger but recent
		h.Add(keyInt(hotK, i))
	}
	// Budget 1 byte: both shards eventually go, but order is observable via
	// a one-shard budget. Use a budget that fits the hot shard exactly.
	hotBytes := 0
	for i := 0; i < 5; i++ {
		hotBytes += keyInt(hotK, i).SizeBytes()
	}
	p.budget = int64(hotBytes + 48)
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	if got := h.SpilledRows(); got != 1 {
		t.Fatalf("spilled %d rows, want exactly the cold shard's 1", got)
	}
	// Probing the cold key reads disk; the hot key must not.
	readBefore := m.SpillBytesRead()
	probeKey(h, hotK)
	if m.SpillBytesRead() != readBefore {
		t.Fatal("hot key probe touched disk")
	}
	probeKey(h, coldK)
	if m.SpillBytesRead() == readBefore {
		t.Fatal("cold key probe did not read from disk")
	}
}

// TestAddBatchParallelMatchesSequentialUnderSpill: the worker-parallel build
// path must produce the same store as sequential Adds when spill state is
// present (spilled prefixes must never be disturbed by AddBatch).
func TestAddBatchParallelMatchesSequentialUnderSpill(t *testing.T) {
	h, p, _ := newSpillStore(t, 0)
	seq := NewHashStore([]int{0})

	p.Advance(1)
	var first []Row
	for i := 0; i < 40; i++ {
		first = append(first, keyInt(i%7, i))
	}
	h.AddBatch(first, true, cluster.NewPool(4))
	for _, r := range first {
		seq.Add(r.Clone())
	}
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}

	p.Advance(2)
	var second []Row
	for i := 40; i < 80; i++ {
		second = append(second, keyInt(i%7, i))
	}
	h.AddBatch(second, true, cluster.NewPool(4))
	for _, r := range second {
		seq.Add(r.Clone())
	}

	for k := 0; k < 7; k++ {
		sameRows(t, probeKey(h, k), probeKey(seq, k), fmt.Sprintf("key %d", k))
	}
	if h.Len() != seq.Len() || h.SizeBytes() != seq.SizeBytes() {
		t.Fatalf("accounting drifted: (%d, %d) vs (%d, %d)",
			h.Len(), h.SizeBytes(), seq.Len(), seq.SizeBytes())
	}
}

// TestMinMaxFilterSkipsAbsentKeys: probing a key outside every spill run's
// [min,max] key range must answer from memory alone — counted as a spill
// probe skip, with no disk read — while present keys still read their runs.
func TestMinMaxFilterSkipsAbsentKeys(t *testing.T) {
	h, p, m := newSpillStore(t, 0)
	p.Advance(1)
	for k := 100; k < 120; k++ {
		h.Add(keyInt(k, k))
	}
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	if h.SpilledRows() == 0 {
		t.Fatal("zero budget should have spilled everything")
	}

	// Present keys pass the filter and read their runs.
	readBefore := m.SpillBytesRead()
	for k := 100; k < 120; k++ {
		if got := probeKey(h, k); len(got) != 1 {
			t.Fatalf("key %d: %d rows, want 1", k, len(got))
		}
	}
	if m.SpillBytesRead() == readBefore {
		t.Fatal("present keys should have read spill runs")
	}
	if m.SpillProbeSkips() != 0 {
		t.Fatalf("present keys recorded %d skips", m.SpillProbeSkips())
	}

	// Hunt for absent keys whose encoding lands in a spilled shard but
	// outside its run ranges: the filter must cut them off before the run
	// index, recording a skip and reading nothing.
	readBefore = m.SpillBytesRead()
	filtered := 0
	for k := 100000; k < 101000 && filtered < 5; k++ {
		enc := rel.EncodeKey([]rel.Value{rel.Int(int64(k))}, []int{0})
		sh := &h.shards[shardOf(enc)]
		if sh.onDisk == 0 || sh.covers(enc) {
			continue
		}
		if got := probeKey(h, k); len(got) != 0 {
			t.Fatalf("absent key %d returned %d rows", k, len(got))
		}
		filtered++
	}
	if filtered == 0 {
		t.Fatal("no probe key fell outside the min-max ranges; fixture too narrow")
	}
	if got := m.SpillProbeSkips(); got != int64(filtered) {
		t.Fatalf("skips: %d, want %d", got, filtered)
	}
	if m.SpillBytesRead() != readBefore {
		t.Fatal("min-max filtered probes must not touch disk")
	}

	// The filter is also range-correct: after a restore that empties the
	// disk side, stale ranges must not linger.
	snap := h.Snapshot()
	h.Restore(snap)
	for s := range h.shards {
		if h.shards[s].onDisk == 0 && h.shards[s].ranges != nil {
			// Ranges may stay as a superset only while rows remain on disk.
			t.Fatalf("shard %d: empty disk side kept %d stale ranges", s, len(h.shards[s].ranges))
		}
	}
}

// TestBloomFilterSkipsSparseInRangeMisses: a probe key inside some run's
// [min,max] interval but absent from the run's key set must be cut off by
// the per-run Bloom filter — counted as a bloom skip, after the min-max
// filter passed, with no disk read — while present keys still read their
// runs without recording bloom skips.
func TestBloomFilterSkipsSparseInRangeMisses(t *testing.T) {
	h, p, m := newSpillStore(t, 0)
	p.Advance(1)
	// Even keys only: every odd key is a sparse in-range miss candidate.
	for k := 0; k < 2000; k += 2 {
		h.Add(keyInt(k, k))
	}
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	if h.SpilledRows() == 0 {
		t.Fatal("zero budget should have spilled everything")
	}

	// Present keys pass both filters, read their runs, and record no skips.
	for k := 0; k < 2000; k += 2 {
		if got := probeKey(h, k); len(got) != 1 {
			t.Fatalf("key %d: %d rows, want 1", k, len(got))
		}
	}
	if m.SpillProbeSkips() != 0 || m.SpillBloomSkips() != 0 {
		t.Fatalf("present keys recorded skips: minmax=%d bloom=%d",
			m.SpillProbeSkips(), m.SpillBloomSkips())
	}

	// Absent odd keys that fall inside a covering range must be rejected by
	// the Bloom filter (bar the occasional false positive, which falls
	// through to the exact run index and still answers from nothing).
	readBefore := m.SpillBytesRead()
	bloomFiltered := 0
	for k := 1; k < 2000 && bloomFiltered < 20; k += 2 {
		enc := rel.EncodeKey([]rel.Value{rel.Int(int64(k))}, []int{0})
		sh := &h.shards[shardOf(enc)]
		if sh.onDisk == 0 || !sh.covers(enc) {
			continue // min-max filtered or resident: not a bloom case
		}
		if sh.mayContain(enc) {
			continue // Bloom false positive: exact index still answers
		}
		if got := probeKey(h, k); len(got) != 0 {
			t.Fatalf("absent key %d returned %d rows", k, len(got))
		}
		bloomFiltered++
	}
	if bloomFiltered == 0 {
		t.Fatal("no odd key was bloom-filtered; fixture too narrow")
	}
	if got := m.SpillBloomSkips(); got != int64(bloomFiltered) {
		t.Fatalf("bloom skips: %d, want %d", got, bloomFiltered)
	}
	if m.SpillBytesRead() != readBefore {
		t.Fatal("bloom-filtered probes must not touch disk")
	}

	// After a restore that empties the disk side, filters must not linger.
	snap := h.Snapshot()
	h.Restore(snap)
	for s := range h.shards {
		if h.shards[s].onDisk == 0 && h.shards[s].blooms != nil {
			t.Fatalf("shard %d: empty disk side kept %d stale blooms", s, len(h.shards[s].blooms))
		}
	}
}

// TestBloomNoFalseNegatives: every key a filter was built over must be
// admitted — the property Probe's correctness rests on.
func TestBloomNoFalseNegatives(t *testing.T) {
	keys := make([]string, 0, 5000)
	for i := 0; i < 5000; i++ {
		keys = append(keys, fmt.Sprintf("2%d\x1f4key-%d", i*7, i))
	}
	b := newBloom(keys)
	for _, k := range keys {
		if !b.has(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	// And the filter actually filters: absent keys are mostly rejected.
	rejected := 0
	for i := 0; i < 5000; i++ {
		if !b.has(fmt.Sprintf("2%d\x1f4other-%d", i*7+3, i)) {
			rejected++
		}
	}
	if rejected < 4900 {
		t.Fatalf("only %d/5000 absent keys rejected; filter too weak", rejected)
	}
}

// TestSpillCompressedRuns pins spill-chunk compression end to end: a key
// whose per-key run exceeds the compression threshold spills as a flate
// chunk (fewer file bytes written than the raw row encoding), reads back
// identical rows, and a snapshot cut falling inside the compressed run
// restores correctly — the trim keeps the chunk whole and reduces only the
// decoded row count.
func TestSpillCompressedRuns(t *testing.T) {
	h, p, m := newSpillStore(t, 0)
	twin := NewHashStore([]int{0})
	mkRow := func(payload int) Row {
		return Row{Vals: []rel.Value{
			rel.Int(7),
			rel.String(fmt.Sprintf("session-payload-%03d-east-region", payload)),
		}, Mult: 1, W: []float64{1, 0.5}}
	}
	rawBytes := 0
	p.Advance(1)
	for i := 0; i < 48; i++ { // pre-snapshot rows, well past spillCompressMin
		r := mkRow(i)
		enc, err := storage.AppendSpillRow(nil, r.Vals, r.Mult, r.W)
		if err != nil {
			t.Fatal(err)
		}
		rawBytes += len(enc)
		h.Add(r.Clone())
		twin.Add(r.Clone())
	}
	snap, snapTwin := h.Snapshot(), twin.Snapshot()
	p.Advance(2)
	for i := 48; i < 64; i++ { // post-snapshot rows, same run after eviction
		h.Add(mkRow(i))
		twin.Add(mkRow(i))
	}
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	if h.SpilledRows() != h.Len() {
		t.Fatalf("setup: %d of %d rows spilled, want all", h.SpilledRows(), h.Len())
	}
	if w := m.SpillBytesWritten(); w == 0 || int(w) >= rawBytes {
		t.Fatalf("spill wrote %d bytes; want > 0 and < raw encoding %d (compression)", w, rawBytes)
	}
	sameRows(t, probeKey(h, 7), probeKey(twin, 7), "key 7 from compressed run")

	// Restore cuts inside the compressed run: 48 of 64 rows survive.
	h.Restore(snap)
	twin.Restore(snapTwin)
	if h.Len() != twin.Len() || h.SizeBytes() != twin.SizeBytes() {
		t.Fatalf("restored accounting (%d, %d) != twin (%d, %d)",
			h.Len(), h.SizeBytes(), twin.Len(), twin.SizeBytes())
	}
	sameRows(t, probeKey(h, 7), probeKey(twin, 7), "key 7 after compressed-run trim")

	// The store stays usable: grow, spill again, probe through both runs.
	p.Advance(3)
	h.Add(mkRow(100))
	twin.Add(mkRow(100))
	if err := p.Enforce(); err != nil {
		t.Fatal(err)
	}
	sameRows(t, probeKey(h, 7), probeKey(twin, 7), "key 7 after regrow")
}
