// Spill-to-disk for HashStore shards, so join state can exceed RAM: each
// shard owns one append-only spill file of length-prefixed rows (the codec
// in internal/storage), and a byte-budget SpillPolicy evicts the coldest,
// largest hot shards wholesale when the resident footprint crosses the
// budget. Correctness hinges on two invariants:
//
//  1. Per key, spilled rows are a strict prefix of the insertion sequence:
//     eviction always moves a shard's entire hot suffix, so a key's rows on
//     disk precede its rows in memory and per-key order — the property the
//     bit-identical replay oracle depends on — survives any spill schedule.
//  2. A run is indexed only after its bytes are written AND synced. A write
//     or sync failure leaves the hot map untouched (memory stays
//     authoritative) and at worst dead bytes past the logical file end,
//     which the next spill overwrites; the run index, not the file length,
//     is the source of truth.
package delta

import (
	"fmt"
	"sort"

	"iolap/internal/cluster"
	"iolap/internal/storage"
)

// spillRef locates one on-disk run: n rows encoded in bytes bytes starting
// at off in the owning shard's spill file. The run is either raw spill rows
// or one flate-compressed chunk (self-describing by storage.ChunkCompressed;
// a raw row can never start with the chunk magic byte). A ref may address
// fewer rows than its chunk holds (compressed-run trim): readRefs decodes
// exactly n rows and ignores the remainder.
type spillRef struct {
	off   int64
	bytes int64
	n     int
}

// spillCompressMin is the per-key run size below which spill chunks are
// written raw: tiny runs don't amortize the flate stream overhead, and the
// deflate call costs more than the bytes it saves.
const spillCompressMin = 256

// spillBackend is a registered store's connection to its SpillPolicy: the
// per-shard spill files, lazily created, plus the logical append pointer for
// each (the file may physically be longer after a failed write; writes are
// positional so the excess is harmless).
type spillBackend struct {
	policy   *SpillPolicy
	id       int
	files    [storeShards]storage.File
	names    [storeShards]string
	fileSize [storeShards]int64
}

func (sp *spillBackend) file(s int) (storage.File, error) {
	if sp.files[s] != nil {
		return sp.files[s], nil
	}
	name := fmt.Sprintf("store%03d-shard%02d.spill", sp.id, s)
	f, err := sp.policy.fs.Create(name)
	if err != nil {
		return nil, err
	}
	sp.files[s] = f
	sp.names[s] = name
	return f, nil
}

// readRefs reads the runs back into rows, appending to dst. Failures panic:
// spill files are process-local scratch, and losing one mid-run is not
// recoverable inside the process (see Probe).
func (sp *spillBackend) readRefs(dst []Row, s int, refs []spillRef) []Row {
	f := sp.files[s]
	if dst == nil {
		total := 0
		for _, ref := range refs {
			total += ref.n
		}
		dst = make([]Row, 0, total)
	}
	for _, ref := range refs {
		buf := make([]byte, ref.bytes)
		if _, err := f.ReadAt(buf, ref.off); err != nil {
			panic(fmt.Sprintf("delta: spill scratch read failed: %v", err))
		}
		sp.policy.metrics.RecordSpillRead(len(buf))
		if storage.ChunkCompressed(buf) {
			var err error
			if buf, err = storage.ExpandChunk(buf); err != nil {
				panic(fmt.Sprintf("delta: spill scratch corrupt: %v", err))
			}
		}
		for i := 0; i < ref.n; i++ {
			vals, mult, w, n, err := storage.DecodeSpillRow(buf)
			if err != nil {
				panic(fmt.Sprintf("delta: spill scratch corrupt: %v", err))
			}
			dst = append(dst, Row{Vals: vals, Mult: mult, W: w})
			buf = buf[n:]
		}
	}
	return dst
}

// trimRef cuts a run down to its first m rows (0 < m < ref.n), walking the
// row length prefixes to find the byte boundary. Used by Restore when a
// snapshot cut falls inside a run (rows either side of the snapshot were
// evicted together).
func (sp *spillBackend) trimRef(s int, ref spillRef, m int) spillRef {
	buf := make([]byte, ref.bytes)
	if _, err := sp.files[s].ReadAt(buf, ref.off); err != nil {
		panic(fmt.Sprintf("delta: spill scratch read failed: %v", err))
	}
	sp.policy.metrics.RecordSpillRead(len(buf))
	if storage.ChunkCompressed(buf) {
		// A compressed run cannot be byte-trimmed; keep the chunk whole and
		// reduce the row count — readRefs decodes exactly n rows.
		return spillRef{off: ref.off, bytes: ref.bytes, n: m}
	}
	cut := 0
	for i := 0; i < m; i++ {
		n, err := storage.SpillRowSize(buf[cut:])
		if err != nil {
			panic(fmt.Sprintf("delta: spill scratch corrupt: %v", err))
		}
		cut += n
	}
	return spillRef{off: ref.off, bytes: int64(cut), n: m}
}

// truncateTo shrinks shard s's spill file to end after a Restore dropped the
// runs past it. Truncation is hygiene: errors are ignored because orphaned
// bytes past the logical end are unreachable (no ref points at them) and the
// next spill's positional write overwrites them.
func (sp *spillBackend) truncateTo(s int, end int64) {
	if sp.files[s] == nil || end >= sp.fileSize[s] {
		return
	}
	_ = sp.files[s].Truncate(end)
	sp.fileSize[s] = end
}

// spillShard evicts shard s's entire hot map to its spill file: rows are
// encoded per key in sorted key order (determinism — the run layout is a
// pure function of contents, never of map iteration), written at the
// logical end, synced, and only then indexed. On error the shard is
// unchanged and the caller may retry or surface the failure.
func (h *HashStore) spillShard(s int) error {
	sh := &h.shards[s]
	if h.sp == nil || len(sh.hot) == 0 {
		return nil
	}
	keys := make([]string, 0, len(sh.hot))
	for k := range sh.hot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type span struct {
		start, bytes, n int
	}
	spans := make([]span, len(keys))
	var buf, raw []byte
	var err error
	for i, k := range keys {
		start := len(buf)
		rows := sh.hot[k]
		raw = raw[:0]
		for _, r := range rows {
			raw, err = storage.AppendSpillRow(raw, r.Vals, r.Mult, r.W)
			if err != nil {
				return err
			}
		}
		// Per-key runs above the threshold are written as one compressed
		// chunk. Deterministic (fixed flate level over a pure function of
		// contents), so the run layout stays worker-invariant.
		buf = append(buf, storage.CompressChunk(raw, spillCompressMin)...)
		spans[i] = span{start: start, bytes: len(buf) - start, n: len(rows)}
	}
	f, err := h.sp.file(s)
	if err != nil {
		return err
	}
	base := h.sp.fileSize[s]
	if _, err := f.WriteAt(buf, base); err != nil {
		_ = f.Truncate(base) // hygiene; the run is not indexed
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Truncate(base)
		return err
	}
	// Durable: commit the index and release the hot rows.
	if sh.spilled == nil {
		sh.spilled = make(map[string][]spillRef)
	}
	for i, k := range keys {
		sh.spilled[k] = append(sh.spilled[k], spillRef{
			off:   base + int64(spans[i].start),
			bytes: int64(spans[i].bytes),
			n:     spans[i].n,
		})
		sh.onDisk += spans[i].n
	}
	sh.disk += len(buf)
	// Keys were sorted above, so the run's min-max filter is its first and
	// last key; the Bloom filter is built over exactly the run's key set.
	sh.ranges = append(sh.ranges, keyRange{min: keys[0], max: keys[len(keys)-1]})
	sh.blooms = append(sh.blooms, newBloom(keys))
	sh.hot = make(map[string][]Row)
	sh.mem = 0
	h.sp.fileSize[s] = base + int64(len(buf))
	h.sp.policy.metrics.RecordSpillWrite(len(buf))
	return nil
}

// SpillPolicy holds the resident-byte budget for a set of HashStores and
// evicts shards to their spill files when the hot footprint exceeds it. A
// nil policy is valid everywhere and means "never spill". The policy is
// driven from the engine goroutine between batches; only reads (Probe)
// happen concurrently.
type SpillPolicy struct {
	budget  int64
	fs      storage.FS
	metrics *cluster.Metrics
	stores  []*HashStore
	epoch   int
}

// NewSpillPolicy budgets resident join-state bytes across the stores later
// Registered. budget <= 0 means a zero-byte budget: every enforcement
// spills all hot shards (the "force everything to disk" configuration the
// equivalence sweep exercises).
func NewSpillPolicy(budget int64, fs storage.FS, m *cluster.Metrics) *SpillPolicy {
	if budget < 0 {
		budget = 0
	}
	return &SpillPolicy{budget: budget, fs: fs, metrics: m}
}

// Budget returns the resident-byte budget.
func (p *SpillPolicy) Budget() int64 {
	if p == nil {
		return 0
	}
	return p.budget
}

// Register places a store under this policy's budget, enabling spill for it.
// Must be called before the store holds any rows. Nil-safe.
func (p *SpillPolicy) Register(h *HashStore) {
	if p == nil {
		return
	}
	h.sp = &spillBackend{policy: p, id: len(p.stores)}
	p.stores = append(p.stores, h)
}

// Advance sets the coldness epoch stamped on subsequent inserts — the
// engine calls it with the batch number, so "cold" means "not touched since
// an earlier batch". Deterministic across worker counts, unlike any
// clock-based recency.
func (p *SpillPolicy) Advance(epoch int) {
	if p != nil {
		p.epoch = epoch
	}
}

// MemBytes returns the resident footprint of all registered stores.
func (p *SpillPolicy) MemBytes() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for _, h := range p.stores {
		t += int64(h.MemBytes())
	}
	return t
}

// SpilledRows returns the row count currently on disk across stores.
func (p *SpillPolicy) SpilledRows() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, h := range p.stores {
		n += h.SpilledRows()
	}
	return n
}

// Enforce evicts hot shards — coldest epoch first, largest first within an
// epoch, store/shard index as the final tie-break, so the eviction schedule
// is identical at every worker count — until the resident footprint fits
// the budget or nothing evictable remains. An I/O error aborts enforcement;
// because failed spills leave their shard untouched, the engine treats it
// like any batch failure: restore a snapshot and replay.
func (p *SpillPolicy) Enforce() error {
	if p == nil {
		return nil
	}
	total := p.MemBytes()
	if total <= p.budget {
		return nil
	}
	type cand struct {
		h                        *HashStore
		store, shard, epoch, mem int
	}
	var cands []cand
	for si, h := range p.stores {
		for s := range h.shards {
			if h.shards[s].mem > 0 {
				cands = append(cands, cand{h, si, s, h.shards[s].lastAdd, h.shards[s].mem})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].epoch != cands[j].epoch {
			return cands[i].epoch < cands[j].epoch
		}
		if cands[i].mem != cands[j].mem {
			return cands[i].mem > cands[j].mem
		}
		if cands[i].store != cands[j].store {
			return cands[i].store < cands[j].store
		}
		return cands[i].shard < cands[j].shard
	})
	for _, c := range cands {
		if total <= p.budget {
			break
		}
		if err := c.h.spillShard(c.shard); err != nil {
			return fmt.Errorf("delta: spill store %d shard %d: %w", c.store, c.shard, err)
		}
		total -= int64(c.mem)
	}
	return nil
}

// Close closes and removes every spill file. The stores remain usable for
// their hot contents only; Close is for engine teardown.
func (p *SpillPolicy) Close() error {
	if p == nil {
		return nil
	}
	var first error
	for _, h := range p.stores {
		sp := h.sp
		if sp == nil {
			continue
		}
		for s := range sp.files {
			if sp.files[s] == nil {
				continue
			}
			if err := sp.files[s].Close(); err != nil && first == nil {
				first = err
			}
			if err := p.fs.Remove(sp.names[s]); err != nil && first == nil {
				first = err
			}
			sp.files[s] = nil
		}
	}
	p.stores = nil
	return first
}
