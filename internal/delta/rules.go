package delta

import (
	"iolap/internal/expr"
	"iolap/internal/rel"
)

// The classical delta update rules of Figure 1, stated over materialised
// relations:
//
//	Δ(σθ R)      = σθ(ΔR)
//	Δ(πA R)      = πA(ΔR)
//	Δ(R1 ⋈ R2)   = (ΔR1 ⋈ R2) ∪ (R1 ⋈ ΔR2) ∪ (ΔR1 ⋈ ΔR2)
//	Δ(R1 ∪ R2)   = ΔR1 ∪ ΔR2
//	Δ(γ_{A,sum}R) = γ_{A,sum}(ΔR)    (merged into the running aggregate)
//
// These functions exist for two reasons: they are the delta engine the OLA /
// IVM baselines reduce to on flat SPJA queries, and the package tests verify
// that applying them incrementally matches batch recomputation — the
// subsumption claim at the end of Section 4.2.

// DeltaSelect applies Δ(σθR) = σθ(ΔR).
func DeltaSelect(pred expr.Expr, delta []Row, res expr.Resolver) []Row {
	var out []Row
	for _, r := range delta {
		v := pred.Eval(r.Vals, res)
		if !v.IsNull() && v.Kind() == rel.KBool && v.Bool() {
			out = append(out, r)
		}
	}
	return out
}

// DeltaProject applies Δ(πA R) = πA(ΔR).
func DeltaProject(exprs []expr.Expr, delta []Row, res expr.Resolver) []Row {
	out := make([]Row, 0, len(delta))
	for _, r := range delta {
		vals := make([]rel.Value, len(exprs))
		for i, e := range exprs {
			vals[i] = e.Eval(r.Vals, res)
		}
		out = append(out, Row{Vals: vals, Mult: r.Mult, W: r.W})
	}
	return out
}

// DeltaJoin applies Δ(R1 ⋈ R2) = (ΔR1 ⋈ R2) ∪ (R1 ⋈ ΔR2) ∪ (ΔR1 ⋈ ΔR2),
// where r1Store/r2Store hold the relations as of the previous batch. The
// deltas must be added to the stores by the caller afterwards.
func DeltaJoin(r1Store, r2Store *HashStore, d1, d2 []Row, k1, k2 []int) []Row {
	var out []Row
	joinRows := func(l, r Row) Row {
		vals := make([]rel.Value, 0, len(l.Vals)+len(r.Vals))
		vals = append(vals, l.Vals...)
		vals = append(vals, r.Vals...)
		return Row{Vals: vals, Mult: l.Mult * r.Mult, W: CombineWeights(l.W, r.W)}
	}
	// ΔR1 ⋈ R2(old)
	for _, l := range d1 {
		for _, r := range r2Store.Probe(l.Vals, k1) {
			out = append(out, joinRows(l, r))
		}
	}
	// R1(old) ⋈ ΔR2
	for _, r := range d2 {
		for _, l := range r1Store.Probe(r.Vals, k2) {
			out = append(out, joinRows(l, r))
		}
	}
	// ΔR1 ⋈ ΔR2
	d2ByKey := make(map[string][]Row)
	for _, r := range d2 {
		d2ByKey[rel.EncodeKey(r.Vals, k2)] = append(d2ByKey[rel.EncodeKey(r.Vals, k2)], r)
	}
	for _, l := range d1 {
		for _, r := range d2ByKey[rel.EncodeKey(l.Vals, k1)] {
			out = append(out, joinRows(l, r))
		}
	}
	return out
}

// DeltaUnion applies Δ(R1 ∪ R2) = ΔR1 ∪ ΔR2.
func DeltaUnion(d1, d2 []Row) []Row {
	out := make([]Row, 0, len(d1)+len(d2))
	out = append(out, d1...)
	out = append(out, d2...)
	return out
}
