package agg

// Sample is one input row bound for a Vector, in the normal form shared by
// Add and AddRep: Reps==nil means every replicate folds Val (a certain
// argument); otherwise Reps[b] is the b-th replicate input (an uncertain
// argument whose per-trial values differ).
type Sample struct {
	Val  float64
	Reps []float64
	Mult float64
	W    []float64
}

// addSample folds one sample into one replicate accumulator with exactly the
// arithmetic of Vector.Add / Vector.AddRep.
func addSample(acc Accumulator, s *Sample, b int) {
	w := s.Mult
	if s.W != nil {
		w *= s.W[b]
	}
	x := s.Val
	if s.Reps != nil && b < len(s.Reps) {
		x = s.Reps[b]
	}
	acc.Add(x, w)
}

// Fold folds samples sequentially in order — the single-worker form of
// FoldPar, equivalent to calling Add/AddRep per sample.
func (v *Vector) Fold(samples []Sample) {
	if v.bank != nil {
		k, s := v.Fn.kind, v.slots()
		for i := range samples {
			sm := &samples[i]
			bankAddMain(k, v.bank, s, sm.Val, sm.Mult)
			bankAddRange(k, v.bank, s, 0, v.trials, sm.Val, sm.Reps, sm.Mult, sm.W)
		}
		return
	}
	for i := range samples {
		s := &samples[i]
		v.main.Add(s.Val, s.Mult)
		for b, acc := range v.reps {
			addSample(acc, s, b)
		}
	}
}

// FoldPar folds samples with the replicate dimension split across workers:
// pmap (typically cluster.Pool.Map) runs the given tasks concurrently, and
// each of the parts workers owns a contiguous range of replicate
// accumulators (one extra task owns Main). Every accumulator receives
// exactly the sequence of Adds the sequential Fold gives it — only which
// goroutine performs them changes — so the result is bit-identical. On the
// bank path each worker's range maps to disjoint slices of every field's
// contiguous run, so the same ownership argument holds slot-for-slot. This
// is the O(rows × trials) bootstrap arithmetic's parallel axis of choice
// when the batch touches few groups (a global aggregate being the extreme
// case), where sharding groups across workers would leave most of the pool
// idle.
func (v *Vector) FoldPar(samples []Sample, pmap func(n int, fn func(i int)), parts int) {
	B := v.trials
	if parts > B {
		parts = B
	}
	if parts <= 1 || pmap == nil {
		v.Fold(samples)
		return
	}
	if v.bank != nil {
		k, s := v.Fn.kind, v.slots()
		pmap(parts+1, func(p int) {
			if p == parts {
				for i := range samples {
					bankAddMain(k, v.bank, s, samples[i].Val, samples[i].Mult)
				}
				return
			}
			lo, hi := p*B/parts, (p+1)*B/parts
			for i := range samples {
				sm := &samples[i]
				bankAddRange(k, v.bank, s, lo, hi, sm.Val, sm.Reps, sm.Mult, sm.W)
			}
		})
		return
	}
	pmap(parts+1, func(p int) {
		if p == parts {
			for i := range samples {
				v.main.Add(samples[i].Val, samples[i].Mult)
			}
			return
		}
		lo, hi := p*B/parts, (p+1)*B/parts
		for i := range samples {
			s := &samples[i]
			for b := lo; b < hi; b++ {
				addSample(v.reps[b], s, b)
			}
		}
	})
}
