package agg

import (
	"math"
	"testing"
)

// fillVector folds a deterministic value stream with per-trial Poisson
// weights so main and every replicate hold distinct non-trivial state.
func fillVector(v *Vector, n int) {
	poisson := make([]float64, v.Trials())
	for i := 0; i < n; i++ {
		for b := range poisson {
			poisson[b] = float64((i+b)%3) * 0.5
		}
		v.Add(float64(i)*1.25+0.5, 1, poisson)
	}
}

func vectorsEqual(t *testing.T, a, b *Vector, label string) {
	t.Helper()
	if math.Float64bits(a.Result(1.5)) != math.Float64bits(b.Result(1.5)) {
		t.Errorf("%s: main result differs: %v vs %v", label, a.Result(1.5), b.Result(1.5))
	}
	ra := a.RepResults(1.5, nil)
	rb := b.RepResults(1.5, nil)
	for i := range ra {
		if math.Float64bits(ra[i]) != math.Float64bits(rb[i]) {
			t.Errorf("%s: replicate %d differs: %v vs %v", label, i, ra[i], rb[i])
		}
	}
}

// TestVectorSnapshotRoundTrip: for every builtin, on both the bank and the
// interface (oracle) path — snapshot, mutate, RestoreInto brings the vector
// back bit-identically; Materialize builds an equivalent fresh vector; the
// snap survives a second restore (replay may reuse it).
func TestVectorSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"SUM", "COUNT", "AVG", "VAR", "STDDEV", "MIN", "MAX", "COUNTD"} {
		fn, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("missing builtin %s", name)
		}
		for _, mk := range []struct {
			label string
			make  func() *Vector
		}{
			{"bank", func() *Vector { return NewVector(fn, 16) }},
			{"oracle", func() *Vector { return NewVectorOracle(fn, 16) }},
		} {
			v := mk.make()
			fillVector(v, 40)
			want := v.Clone()
			snap := v.Snapshot()

			fillVector(v, 25) // diverge past the snapshot point
			if ok := snap.RestoreInto(v); !ok {
				t.Fatalf("%s/%s: RestoreInto refused a matching vector", name, mk.label)
			}
			vectorsEqual(t, v, want, name+"/"+mk.label+"/restore")

			m := snap.Materialize()
			vectorsEqual(t, m, want, name+"/"+mk.label+"/materialize")

			// The snap must survive restore: replay it once more.
			fillVector(v, 7)
			if ok := snap.RestoreInto(v); !ok {
				t.Fatalf("%s/%s: second RestoreInto refused", name, mk.label)
			}
			vectorsEqual(t, v, want, name+"/"+mk.label+"/restore2")
		}
	}
}

// TestVectorSnapshotShapeMismatch: RestoreInto refuses vectors with a
// different function, trial count, or representation instead of silently
// corrupting state.
func TestVectorSnapshotShapeMismatch(t *testing.T) {
	r := NewRegistry()
	sum, _ := r.Lookup("SUM")
	cnt, _ := r.Lookup("COUNT")

	snap := NewVector(sum, 8).Snapshot()
	if snap.RestoreInto(NewVector(cnt, 8)) {
		t.Error("restored a SUM snap into a COUNT vector")
	}
	if snap.RestoreInto(NewVector(sum, 9)) {
		t.Error("restored across trial counts")
	}
	if snap.RestoreInto(NewVectorOracle(sum, 8)) {
		t.Error("restored a bank snap into an interface vector")
	}
}

// TestVectorSnapshotAllocs pins the bank path's snapshot cost: reusing a
// snap's slab via SnapshotInto and restoring in place via RestoreInto must
// not allocate at all.
func TestVectorSnapshotAllocs(t *testing.T) {
	r := NewRegistry()
	fn, _ := r.Lookup("VAR") // widest builtin bank (3 fields)
	v := NewVector(fn, 64)
	fillVector(v, 50)
	snap := v.Snapshot()

	if a := testing.AllocsPerRun(100, func() { v.SnapshotInto(snap) }); a != 0 {
		t.Errorf("SnapshotInto into reused snap: %v allocs/run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { snap.RestoreInto(v) }); a != 0 {
		t.Errorf("RestoreInto: %v allocs/run, want 0", a)
	}
}
