package agg

import (
	"math"
	"testing"
)

func TestDistinctAccumulator(t *testing.T) {
	r := NewRegistry()
	f, ok := r.Lookup("COUNTD")
	if !ok {
		t.Fatal("COUNTD not registered")
	}
	if !f.AcceptsAny || f.Smooth || f.Invertible {
		t.Errorf("COUNTD flags wrong: %+v", f)
	}
	a := f.New()
	a.Add(1, 1)
	a.Add(1, 2) // duplicate
	a.Add(2, 1)
	a.Add(3, 0) // zero weight: semantically absent
	if got := a.Result(1); got != 2 {
		t.Errorf("distinct = %v, want 2", got)
	}
	if got := a.Result(100); got != 2 {
		t.Error("COUNT(DISTINCT) must not scale with m_i")
	}
	// Merge unions the sets.
	b := f.New()
	b.Add(2, 1)
	b.Add(9, 1)
	a.Merge(b)
	if got := a.Result(1); got != 3 {
		t.Errorf("merged distinct = %v, want 3", got)
	}
	// Clone isolation.
	c := a.Clone()
	a.Add(50, 1)
	if c.Result(1) != 3 {
		t.Error("clone not isolated")
	}
	// Reset.
	a.Reset()
	if a.Result(1) != 0 {
		t.Error("reset failed")
	}
	if a.SizeBytes() <= 0 {
		t.Error("size must be positive")
	}
	defer func() {
		if recover() == nil {
			t.Error("COUNTD.Sub must panic")
		}
	}()
	c.Sub(1, 1)
}

func TestResetAllBuiltins(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"SUM", "COUNT", "AVG", "VAR", "STDDEV", "MIN", "MAX", "COUNTD"} {
		f, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		a := f.New()
		a.Add(7, 2)
		a.Reset()
		got := a.Result(1)
		switch name {
		case "SUM", "COUNT", "COUNTD":
			if got != 0 {
				t.Errorf("%s after reset = %v, want 0", name, got)
			}
		default:
			if !math.IsNaN(got) && got != 0 {
				t.Errorf("%s after reset = %v, want empty (NaN or 0)", name, got)
			}
		}
		// After reset the accumulator must be reusable.
		a.Add(3, 1)
		if name == "SUM" && a.Result(1) != 3 {
			t.Error("accumulator unusable after reset")
		}
	}
}

func TestVectorResetReusesAccumulators(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("SUM")
	v := NewVector(f, 3)
	v.Add(5, 1, []float64{1, 2, 0})
	v.Reset()
	if v.Result(1) != 0 {
		t.Error("vector main not reset")
	}
	for _, rep := range v.RepResults(1, nil) {
		if rep != 0 {
			t.Error("vector reps not reset")
		}
	}
	v.Add(4, 1, nil)
	if v.Result(1) != 4 {
		t.Error("vector unusable after reset")
	}
}

func TestVectorAddRepWithPoisson(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("SUM")
	v := NewVector(f, 2)
	// Uncertain input values per trial AND poisson weights combine.
	v.AddRep(10, []float64{8, 12}, 1, []float64{2, 0})
	reps := v.RepResults(1, nil)
	if reps[0] != 16 { // 8 * weight 2
		t.Errorf("rep0 = %v, want 16", reps[0])
	}
	if reps[1] != 0 { // weight 0
		t.Errorf("rep1 = %v, want 0", reps[1])
	}
	// Short rep slice falls back to the running value.
	v2 := NewVector(f, 3)
	v2.AddRep(10, []float64{8}, 1, nil)
	reps2 := v2.RepResults(1, nil)
	if reps2[0] != 8 || reps2[1] != 10 || reps2[2] != 10 {
		t.Errorf("short reps fallback wrong: %v", reps2)
	}
}

func TestRegistryLookupMiss(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("NOPE"); ok {
		t.Error("unknown aggregate found")
	}
}

func TestMinMaxMergeEmpty(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"MIN", "MAX"} {
		f, _ := r.Lookup(name)
		a := f.New()
		a.Add(5, 1)
		empty := f.New()
		a.Merge(empty) // merging an empty accumulator is a no-op
		if a.Result(1) != 5 {
			t.Errorf("%s merge with empty changed result", name)
		}
		empty2 := f.New()
		empty2.Merge(a)
		if empty2.Result(1) != 5 {
			t.Errorf("%s merge into empty lost value", name)
		}
	}
}

func TestStddevMergeAndReset(t *testing.T) {
	r := NewRegistry()
	f, _ := r.Lookup("STDDEV")
	a, b := f.New(), f.New()
	for _, x := range []float64{2, 4} {
		a.Add(x, 1)
	}
	for _, x := range []float64{4, 4, 5, 5, 7, 9} {
		b.Add(x, 1)
	}
	a.Merge(b)
	if got := a.Result(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("merged stddev = %v, want 2", got)
	}
	a.Reset()
	a.Add(3, 1)
	a.Add(3, 1)
	if got := a.Result(1); got != 0 {
		t.Errorf("stddev of constant after reset = %v, want 0", got)
	}
}
