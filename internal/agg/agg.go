// Package agg implements aggregate functions and their sketch accumulators.
//
// An aggregate's running state over the certain part of its input is a
// sketch (Section 4.2: "any aggregate function that can be computed using
// sub-linear space can maintain the state of AGGREGATE space-efficiently
// using sketches"). Every aggregate instance additionally maintains B
// bootstrap replicate accumulators fed with Poisson(1) weights, which is the
// piggybacked bootstrap of Appendix C.
//
// Scaling semantics (Section 2): the partial result at batch i is
// Q(D_i, m_i) with m_i = |D|/|D_i|. Sketches hold raw (unscaled)
// accumulations; extensive aggregates (SUM, COUNT) multiply by the current
// scale when read, intensive ones (AVG, VAR, ...) are scale-free, so the
// changing m_i never forces sketch rebuilds.
package agg

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Accumulator is the incremental state of one aggregate over one group.
type Accumulator interface {
	// Add folds in one value with the given weight (tuple multiplicity,
	// possibly multiplied by a bootstrap Poisson weight).
	Add(v float64, weight float64)
	// Sub removes a previously added value; used when a recomputed
	// non-deterministic contribution is retracted between batches.
	Sub(v float64, weight float64)
	// Result reads the raw aggregate given the extensive scale factor.
	Result(scale float64) float64
	// Merge folds another accumulator of the same type into this one.
	Merge(o Accumulator)
	// Clone deep-copies the accumulator (state snapshots).
	Clone() Accumulator
	// Reset returns the accumulator to its zero state (scratch reuse).
	Reset()
	// SizeBytes estimates the in-memory footprint.
	SizeBytes() int
}

// Func describes an aggregate function.
type Func struct {
	Name string
	// TakesArg is false for COUNT(*).
	TakesArg bool
	// Smooth marks Hadamard-differentiable aggregates whose bootstrap
	// error estimates are valid under sampling (Section 3.3). MIN/MAX are
	// not smooth; they are supported exactly but get one-sided monotone
	// variation ranges instead of bootstrap ranges.
	Smooth bool
	// Invertible marks aggregates whose Sub is exact, allowing retraction
	// without rebuilds (SUM/COUNT/AVG/VAR yes, MIN/MAX no).
	Invertible bool
	// AcceptsAny marks aggregates whose argument may be non-numeric
	// (COUNT(DISTINCT x)); callers feed rel.Value.NumericKey instead of
	// skipping non-numeric inputs.
	AcceptsAny bool
	// New allocates a fresh accumulator.
	New func() Accumulator
	// kind selects the fused SoA bank kernel (kernel.go). Only the builtins
	// set it; UDAF registrations leave the zero value (kOpaque) and stay on
	// the interface path, as does COUNT(DISTINCT), whose state is a map.
	kind kernelKind
}

// Registry maps aggregate names to implementations; it is preloaded with the
// builtins and accepts UDAF registrations (paper Section 1, workload C8-C10).
type Registry struct {
	mu  sync.RWMutex
	fns map[string]*Func
}

// NewRegistry returns a registry with the builtin aggregates.
func NewRegistry() *Registry {
	r := &Registry{fns: make(map[string]*Func)}
	for _, f := range builtinAggs() {
		f := f
		r.fns[f.Name] = &f
	}
	return r
}

// Register installs a user-defined aggregate function (UDAF).
func (r *Registry) Register(f Func) error {
	if f.Name == "" || f.New == nil {
		return fmt.Errorf("agg: invalid aggregate registration %q", f.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[strings.ToUpper(f.Name)] = &f
	return nil
}

// Lookup finds an aggregate by (case-insensitive) name.
func (r *Registry) Lookup(name string) (*Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.fns[strings.ToUpper(name)]
	return f, ok
}

// ---------------------------------------------------------------------------
// Builtin accumulators

// sumAcc accumulates a weighted sum; COUNT is a sum of weights.
type sumAcc struct{ sum float64 }

func (a *sumAcc) Add(v, w float64)             { a.sum += v * w }
func (a *sumAcc) Sub(v, w float64)             { a.sum -= v * w }
func (a *sumAcc) Result(scale float64) float64 { return a.sum * scale }
func (a *sumAcc) Merge(o Accumulator)          { a.sum += o.(*sumAcc).sum }
func (a *sumAcc) Clone() Accumulator           { c := *a; return &c }
func (a *sumAcc) Reset()                       { a.sum = 0 }
func (a *sumAcc) SizeBytes() int               { return 16 }

type countAcc struct{ n float64 }

func (a *countAcc) Add(_, w float64)             { a.n += w }
func (a *countAcc) Sub(_, w float64)             { a.n -= w }
func (a *countAcc) Result(scale float64) float64 { return a.n * scale }
func (a *countAcc) Merge(o Accumulator)          { a.n += o.(*countAcc).n }
func (a *countAcc) Clone() Accumulator           { c := *a; return &c }
func (a *countAcc) Reset()                       { a.n = 0 }
func (a *countAcc) SizeBytes() int               { return 16 }

// avgAcc is scale-free: sum/count cancels m_i.
type avgAcc struct{ sum, n float64 }

func (a *avgAcc) Add(v, w float64) { a.sum += v * w; a.n += w }
func (a *avgAcc) Sub(v, w float64) { a.sum -= v * w; a.n -= w }
func (a *avgAcc) Result(float64) float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / a.n
}
func (a *avgAcc) Merge(o Accumulator) {
	b := o.(*avgAcc)
	a.sum += b.sum
	a.n += b.n
}
func (a *avgAcc) Clone() Accumulator { c := *a; return &c }
func (a *avgAcc) Reset()             { a.sum, a.n = 0, 0 }
func (a *avgAcc) SizeBytes() int     { return 24 }

// varAcc computes the weighted population variance (scale-free).
type varAcc struct{ sum, sumSq, n float64 }

func (a *varAcc) Add(v, w float64) { a.sum += v * w; a.sumSq += v * v * w; a.n += w }
func (a *varAcc) Sub(v, w float64) { a.sum -= v * w; a.sumSq -= v * v * w; a.n -= w }
func (a *varAcc) Result(float64) float64 {
	if a.n == 0 {
		return math.NaN()
	}
	m := a.sum / a.n
	v := a.sumSq/a.n - m*m
	if v < 0 {
		v = 0 // numerical floor
	}
	return v
}
func (a *varAcc) Merge(o Accumulator) {
	b := o.(*varAcc)
	a.sum += b.sum
	a.sumSq += b.sumSq
	a.n += b.n
}
func (a *varAcc) Clone() Accumulator { c := *a; return &c }
func (a *varAcc) Reset()             { a.sum, a.sumSq, a.n = 0, 0, 0 }
func (a *varAcc) SizeBytes() int     { return 32 }

type stddevAcc struct{ varAcc }

func (a *stddevAcc) Result(scale float64) float64 {
	return math.Sqrt(a.varAcc.Result(scale))
}
func (a *stddevAcc) Merge(o Accumulator) { a.varAcc.Merge(&o.(*stddevAcc).varAcc) }
func (a *stddevAcc) Clone() Accumulator  { c := *a; return &c }

// minAcc / maxAcc are exact but non-invertible and non-smooth.
type minAcc struct {
	val float64
	set bool
}

func (a *minAcc) Add(v, w float64) {
	if w <= 0 {
		return
	}
	if !a.set || v < a.val {
		a.val = v
		a.set = true
	}
}
func (a *minAcc) Sub(float64, float64) {
	panic("agg: MIN does not support retraction")
}
func (a *minAcc) Result(float64) float64 {
	if !a.set {
		return math.NaN()
	}
	return a.val
}
func (a *minAcc) Merge(o Accumulator) {
	b := o.(*minAcc)
	if b.set {
		a.Add(b.val, 1)
	}
}
func (a *minAcc) Clone() Accumulator { c := *a; return &c }
func (a *minAcc) Reset()             { a.val, a.set = 0, false }
func (a *minAcc) SizeBytes() int     { return 16 }

type maxAcc struct {
	val float64
	set bool
}

func (a *maxAcc) Add(v, w float64) {
	if w <= 0 {
		return
	}
	if !a.set || v > a.val {
		a.val = v
		a.set = true
	}
}
func (a *maxAcc) Sub(float64, float64) {
	panic("agg: MAX does not support retraction")
}
func (a *maxAcc) Result(float64) float64 {
	if !a.set {
		return math.NaN()
	}
	return a.val
}
func (a *maxAcc) Merge(o Accumulator) {
	b := o.(*maxAcc)
	if b.set {
		a.Add(b.val, 1)
	}
}
func (a *maxAcc) Clone() Accumulator { c := *a; return &c }
func (a *maxAcc) Reset()             { a.val, a.set = 0, false }
func (a *maxAcc) SizeBytes() int     { return 16 }

// distinctAcc counts distinct (numeric) values exactly. It is not smooth
// (bootstrap resampling biases distinct counts) and its result does not
// scale with m_i: COUNT(DISTINCT x) on a partial prefix reports the
// distinct values seen so far, an exact answer about D_i.
type distinctAcc struct {
	seen map[float64]struct{}
}

func (a *distinctAcc) Add(v, w float64) {
	if w <= 0 {
		return
	}
	if a.seen == nil {
		a.seen = make(map[float64]struct{})
	}
	a.seen[v] = struct{}{}
}
func (a *distinctAcc) Sub(float64, float64) {
	panic("agg: COUNT(DISTINCT) does not support retraction")
}
func (a *distinctAcc) Result(float64) float64 { return float64(len(a.seen)) }
func (a *distinctAcc) Merge(o Accumulator) {
	b := o.(*distinctAcc)
	for v := range b.seen {
		a.Add(v, 1)
	}
}
func (a *distinctAcc) Clone() Accumulator {
	c := &distinctAcc{}
	if a.seen != nil {
		c.seen = make(map[float64]struct{}, len(a.seen))
		for v := range a.seen {
			c.seen[v] = struct{}{}
		}
	}
	return c
}
func (a *distinctAcc) Reset()         { a.seen = nil }
func (a *distinctAcc) SizeBytes() int { return 48 + 16*len(a.seen) }

func builtinAggs() []Func {
	return []Func{
		{Name: "SUM", TakesArg: true, Smooth: true, Invertible: true, kind: kSum,
			New: func() Accumulator { return &sumAcc{} }},
		{Name: "COUNT", TakesArg: false, Smooth: true, Invertible: true,
			AcceptsAny: true, // COUNT(expr) counts non-NULL rows of any type
			kind:       kCount,
			New:        func() Accumulator { return &countAcc{} }},
		{Name: "AVG", TakesArg: true, Smooth: true, Invertible: true, kind: kAvg,
			New: func() Accumulator { return &avgAcc{} }},
		{Name: "VAR", TakesArg: true, Smooth: true, Invertible: true, kind: kVar,
			New: func() Accumulator { return &varAcc{} }},
		{Name: "STDDEV", TakesArg: true, Smooth: true, Invertible: true, kind: kStddev,
			New: func() Accumulator { return &stddevAcc{} }},
		{Name: "MIN", TakesArg: true, Smooth: false, Invertible: false, kind: kMin,
			New: func() Accumulator { return &minAcc{} }},
		{Name: "COUNTD", TakesArg: true, Smooth: false, Invertible: false,
			AcceptsAny: true,
			New:        func() Accumulator { return &distinctAcc{} }},
		{Name: "MAX", TakesArg: true, Smooth: false, Invertible: false, kind: kMax,
			New: func() Accumulator { return &maxAcc{} }},
	}
}

// ---------------------------------------------------------------------------
// Replicate vectors

// Vector bundles the main accumulator with B bootstrap replicate
// accumulators for one (aggregate, group) pair. Builtin numeric aggregates
// store the whole vector as one contiguous SoA bank of (B+1)·stateWidth
// float64s driven by the fused kernels in kernel.go; UDAFs and
// COUNT(DISTINCT) fall back to one interface accumulator per replicate.
// Both representations perform identical floating-point operations in the
// same order, so results are bit-identical (NewVectorOracle forces the
// interface path for the equivalence suite).
type Vector struct {
	Fn     *Func
	trials int
	// bank is the SoA state (kernel path); nil on the interface path.
	bank []float64
	// main/reps are the interface path (oracle, UDAFs, COUNT(DISTINCT)).
	main Accumulator
	reps []Accumulator
}

// NewVector allocates a vector with the given replicate count, using the
// flat bank representation whenever the aggregate has a fused kernel.
func NewVector(fn *Func, trials int) *Vector {
	if w := fn.kind.width(); w > 0 {
		return &Vector{Fn: fn, trials: trials, bank: make([]float64, w*(trials+1))}
	}
	return NewVectorOracle(fn, trials)
}

// NewVectorOracle allocates a vector on the per-replicate interface path
// regardless of the aggregate's kernel — the reference implementation the
// kernel equivalence fuzz and the before/after benchmarks compare against.
func NewVectorOracle(fn *Func, trials int) *Vector {
	v := &Vector{Fn: fn, trials: trials, main: fn.New(), reps: make([]Accumulator, trials)}
	for i := range v.reps {
		v.reps[i] = fn.New()
	}
	return v
}

// slots returns the per-field bank length (main + B replicates).
func (v *Vector) slots() int { return v.trials + 1 }

// Trials returns the replicate count B.
func (v *Vector) Trials() int { return v.trials }

// Add folds one input value: mult into the main accumulator, mult times the
// Poisson weight into each replicate. poisson may be nil for inputs from
// non-streamed relations (constant weight 1 per trial).
func (v *Vector) Add(val, mult float64, poisson []float64) {
	if v.bank != nil {
		k, s := v.Fn.kind, v.slots()
		bankAddMain(k, v.bank, s, val, mult)
		bankAddRange(k, v.bank, s, 0, v.trials, val, nil, mult, poisson)
		return
	}
	v.main.Add(val, mult)
	for b, acc := range v.reps {
		w := mult
		if poisson != nil {
			w *= poisson[b]
		}
		acc.Add(val, w)
	}
}

// AddRep folds a value whose replicates differ per trial (the aggregated
// column itself is uncertain): vals[b] is the b-th replicate input value.
func (v *Vector) AddRep(val float64, vals []float64, mult float64, poisson []float64) {
	if v.bank != nil {
		k, s := v.Fn.kind, v.slots()
		bankAddMain(k, v.bank, s, val, mult)
		if vals == nil {
			bankAddRange(k, v.bank, s, 0, v.trials, val, nil, mult, poisson)
		} else {
			bankAddRange(k, v.bank, s, 0, v.trials, val, vals, mult, poisson)
		}
		return
	}
	v.main.Add(val, mult)
	for b, acc := range v.reps {
		w := mult
		if poisson != nil {
			w *= poisson[b]
		}
		x := val
		if b < len(vals) {
			x = vals[b]
		}
		acc.Add(x, w)
	}
}

// Sub retracts a previously added value (invertible aggregates only).
func (v *Vector) Sub(val, mult float64, poisson []float64) {
	if v.bank != nil {
		bankSub(v.Fn.kind, v.bank, v.slots(), val, mult, poisson)
		return
	}
	v.main.Sub(val, mult)
	for b, acc := range v.reps {
		w := mult
		if poisson != nil {
			w *= poisson[b]
		}
		acc.Sub(val, w)
	}
}

// Merge folds another vector (same function, same trial count, same
// representation — vectors only ever merge with vectors built by the same
// constructor).
func (v *Vector) Merge(o *Vector) {
	if v.bank != nil {
		if o.bank == nil {
			panic("agg: Merge across vector representations")
		}
		bankMerge(v.Fn.kind, v.bank, o.bank, v.slots())
		return
	}
	v.main.Merge(o.main)
	for b := range v.reps {
		v.reps[b].Merge(o.reps[b])
	}
}

// Result reads the running value under the given extensive scale.
func (v *Vector) Result(scale float64) float64 {
	if v.bank != nil {
		return bankResult(v.Fn.kind, v.bank, v.slots(), 0, scale)
	}
	return v.main.Result(scale)
}

// RepResult reads replicate b's value under the given scale.
func (v *Vector) RepResult(b int, scale float64) float64 {
	if v.bank != nil {
		return bankResult(v.Fn.kind, v.bank, v.slots(), 1+b, scale)
	}
	return v.reps[b].Result(scale)
}

// RepResults reads all replicate values under the given scale into dst
// (allocated when nil).
func (v *Vector) RepResults(scale float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, v.trials)
	}
	if v.bank != nil {
		k, s := v.Fn.kind, v.slots()
		for b := 0; b < v.trials; b++ {
			dst[b] = bankResult(k, v.bank, s, 1+b, scale)
		}
		return dst
	}
	for b, acc := range v.reps {
		dst[b] = acc.Result(scale)
	}
	return dst
}

// Reset zeroes every accumulator for scratch reuse across batches.
func (v *Vector) Reset() {
	if v.bank != nil {
		for i := range v.bank {
			v.bank[i] = 0
		}
		return
	}
	v.main.Reset()
	for _, r := range v.reps {
		r.Reset()
	}
}

// Clone deep-copies the vector (snapshot support).
func (v *Vector) Clone() *Vector {
	if v.bank != nil {
		c := &Vector{Fn: v.Fn, trials: v.trials, bank: make([]float64, len(v.bank))}
		copy(c.bank, v.bank)
		return c
	}
	c := &Vector{Fn: v.Fn, trials: v.trials, main: v.main.Clone(), reps: make([]Accumulator, len(v.reps))}
	for i, r := range v.reps {
		c.reps[i] = r.Clone()
	}
	return c
}

// SizeBytes estimates the vector's footprint.
func (v *Vector) SizeBytes() int {
	if v.bank != nil {
		return 72 + 8*len(v.bank)
	}
	n := 48 + v.main.SizeBytes()
	for _, r := range v.reps {
		n += r.SizeBytes()
	}
	return n
}

// Snapshots

// VectorSnap is a compact point-in-time copy of a Vector's state for the
// §5.1 snapshot/replay protocol. On the bank path it holds only the
// contiguous SoA slab — no Vector header, no per-accumulator boxes — and
// both SnapshotInto (slab reuse) and RestoreInto are allocation-free, which
// the AllocsPerRun regression test pins.
type VectorSnap struct {
	fn     *Func
	trials int
	bank   []float64
	main   Accumulator
	reps   []Accumulator
}

// Snapshot captures the vector's current state into a fresh VectorSnap.
func (v *Vector) Snapshot() *VectorSnap { return v.SnapshotInto(nil) }

// SnapshotInto captures state into s, reusing its slab (bank path) or
// replicate slice when the shape matches; s may be nil. Returns the snap.
func (v *Vector) SnapshotInto(s *VectorSnap) *VectorSnap {
	if s == nil {
		s = &VectorSnap{}
	}
	s.fn, s.trials = v.Fn, v.trials
	if v.bank != nil {
		if len(s.bank) != len(v.bank) {
			s.bank = make([]float64, len(v.bank))
		}
		copy(s.bank, v.bank)
		s.main, s.reps = nil, nil
		return s
	}
	s.bank = nil
	s.main = v.main.Clone()
	if len(s.reps) != len(v.reps) {
		s.reps = make([]Accumulator, len(v.reps))
	}
	for i, r := range v.reps {
		s.reps[i] = r.Clone()
	}
	return s
}

// RestoreInto copies the snapshot's state into v in place — a single slab
// copy on the bank path. Returns false when v's function, trial count, or
// representation doesn't match (caller should Materialize instead). The
// snapshot stays valid: the same snap can restore any number of times.
func (s *VectorSnap) RestoreInto(v *Vector) bool {
	if v.Fn != s.fn || v.trials != s.trials {
		return false
	}
	if s.bank != nil {
		if len(v.bank) != len(s.bank) {
			return false
		}
		copy(v.bank, s.bank)
		return true
	}
	if v.bank != nil || v.main == nil {
		return false
	}
	v.main = s.main.Clone()
	for i := range v.reps {
		v.reps[i] = s.reps[i].Clone()
	}
	return true
}

// Materialize builds a fresh Vector carrying the snapshot's state.
func (s *VectorSnap) Materialize() *Vector {
	v := &Vector{Fn: s.fn, trials: s.trials}
	if s.bank != nil {
		v.bank = make([]float64, len(s.bank))
		copy(v.bank, s.bank)
		return v
	}
	v.main = s.main.Clone()
	v.reps = make([]Accumulator, len(s.reps))
	for i, r := range s.reps {
		v.reps[i] = r.Clone()
	}
	return v
}
