package agg

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// kernelKinds are the builtins with a fused SoA bank kernel; COUNTD stays
// on the interface path by design and needs no equivalence check.
var kernelKinds = []string{"SUM", "COUNT", "AVG", "VAR", "STDDEV", "MIN", "MAX"}

// bitsEqual compares two vectors' full output surface — main result plus
// every replicate, at two scales — by float64 bit pattern (NaN == NaN).
func bitsEqual(t *testing.T, ctx string, kv, ov *Vector) {
	t.Helper()
	for _, scale := range []float64{1, 2.5} {
		if math.Float64bits(kv.Result(scale)) != math.Float64bits(ov.Result(scale)) {
			t.Fatalf("%s: main result diverged at scale %v: kernel %v oracle %v",
				ctx, scale, kv.Result(scale), ov.Result(scale))
		}
		kr := kv.RepResults(scale, nil)
		or := ov.RepResults(scale, nil)
		for b := range kr {
			if math.Float64bits(kr[b]) != math.Float64bits(or[b]) {
				t.Fatalf("%s: replicate %d diverged at scale %v: kernel %v (%016x) oracle %v (%016x)",
					ctx, b, scale, kr[b], math.Float64bits(kr[b]), or[b], math.Float64bits(or[b]))
			}
		}
	}
}

// randWeights draws a Poisson-like weight vector: mostly small non-negative
// integers with occasional zeros, the shape the bootstrap produces.
func randWeights(rng *rand.Rand, trials int) []float64 {
	w := make([]float64, trials)
	for i := range w {
		w[i] = float64(rng.Intn(4)) // 0..3, ~25% zeros
	}
	return w
}

// TestKernelOracleEquivalenceFuzz drives a kernel vector and an interface
// oracle vector through the same randomized operation sequence —
// Add/AddRep (with and without per-trial value vectors and weight
// vectors), Sub on invertible kinds, Merge, Clone, Reset — and demands
// bit-identical results after every step. This is the contract the whole
// PR rests on: the bank representation is a layout change, not a numeric
// one.
func TestKernelOracleEquivalenceFuzz(t *testing.T) {
	const trials = 37 // odd, not a multiple of anything interesting
	for _, name := range kernelKinds {
		t.Run(name, func(t *testing.T) {
			fn := lookup(t, name)
			if fn.kind == kOpaque {
				t.Fatalf("%s has no kernel", name)
			}
			for seed := int64(0); seed < 8; seed++ {
				rng := rand.New(rand.NewSource(seed*7919 + 1))
				kv, ov := NewVector(fn, trials), NewVectorOracle(fn, trials)
				if kv.bank == nil {
					t.Fatal("NewVector did not pick the bank path")
				}
				if ov.bank != nil {
					t.Fatal("NewVectorOracle picked the bank path")
				}
				// Retractions replay previously added (val, mult, weights)
				// triples so sums actually return to prior states.
				type added struct {
					val, mult float64
					w         []float64
				}
				var history []added
				for step := 0; step < 200; step++ {
					val := float64(rng.Intn(2000)-1000) / 8.0
					mult := float64(1 + rng.Intn(3))
					var w []float64
					if rng.Intn(4) > 0 {
						w = randWeights(rng, trials)
					}
					ctx := fmt.Sprintf("seed %d step %d", seed, step)
					switch op := rng.Intn(10); {
					case op < 4: // Add
						kv.Add(val, mult, w)
						ov.Add(val, mult, w)
						history = append(history, added{val, mult, w})
					case op < 6: // AddRep with a per-trial value vector
						reps := make([]float64, trials)
						for i := range reps {
							reps[i] = val + float64(rng.Intn(100))/16.0
						}
						kv.AddRep(val, reps, mult, w)
						ov.AddRep(val, reps, mult, w)
					case op < 7: // Sub (invertible kinds only)
						if fn.Invertible && len(history) > 0 {
							h := history[len(history)-1]
							history = history[:len(history)-1]
							kv.Sub(h.val, h.mult, h.w)
							ov.Sub(h.val, h.mult, h.w)
						}
					case op < 8: // Merge a freshly built pair
						ko, oo := NewVector(fn, trials), NewVectorOracle(fn, trials)
						for j := 0; j < 3; j++ {
							v2 := float64(rng.Intn(500)) / 4.0
							w2 := randWeights(rng, trials)
							ko.Add(v2, 1, w2)
							oo.Add(v2, 1, w2)
						}
						kv.Merge(ko)
						ov.Merge(oo)
					case op < 9: // Clone must be isolated and equivalent
						kc, oc := kv.Clone(), ov.Clone()
						bitsEqual(t, ctx+" (clone)", kc, oc)
						kc.Add(1, 1, nil)
						bitsEqual(t, ctx+" (clone isolation)", kv, ov)
					default: // Reset, occasionally, to re-seed the state
						if rng.Intn(4) == 0 {
							kv.Reset()
							ov.Reset()
							history = history[:0]
						}
					}
					bitsEqual(t, ctx, kv, ov)
				}
			}
		})
	}
}

// TestKernelFoldEquivalence checks Fold and FoldPar (sequential pmap and a
// real goroutine pmap) against per-sample oracle Adds, bit for bit. FoldPar
// splits the replicate dimension across workers over disjoint bank slices;
// each slot still receives its exact sequential Add sequence.
func TestKernelFoldEquivalence(t *testing.T) {
	const trials = 50
	rng := rand.New(rand.NewSource(99))
	samples := make([]Sample, 300)
	for i := range samples {
		samples[i] = Sample{
			Val:  float64(rng.Intn(4000)-2000) / 16.0,
			Mult: float64(1 + rng.Intn(2)),
			W:    randWeights(rng, trials),
		}
		if i%5 == 0 {
			reps := make([]float64, trials)
			for b := range reps {
				reps[b] = samples[i].Val + float64(b%7)
			}
			samples[i].Reps = reps
		}
	}
	goPmap := func(n int, fn func(i int)) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); fn(i) }(i)
		}
		wg.Wait()
	}
	seqPmap := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	for _, name := range kernelKinds {
		t.Run(name, func(t *testing.T) {
			fn := lookup(t, name)
			ov := NewVectorOracle(fn, trials)
			for i := range samples {
				s := &samples[i]
				ov.AddRep(s.Val, s.Reps, s.Mult, s.W)
			}
			kf := NewVector(fn, trials)
			kf.Fold(samples)
			bitsEqual(t, "Fold", kf, ov)
			for _, parts := range []int{2, 3, 7, trials + 5} {
				kp := NewVector(fn, trials)
				kp.FoldPar(samples, seqPmap, parts)
				bitsEqual(t, fmt.Sprintf("FoldPar seq parts=%d", parts), kp, ov)
				kg := NewVector(fn, trials)
				kg.FoldPar(samples, goPmap, parts)
				bitsEqual(t, fmt.Sprintf("FoldPar goroutines parts=%d", parts), kg, ov)
			}
		})
	}
}

// TestKernelSubPanicsMatchOracle pins the non-invertible kinds' panic
// behaviour to the interface accumulators' message.
func TestKernelSubPanicsMatchOracle(t *testing.T) {
	for _, name := range []string{"MIN", "MAX"} {
		fn := lookup(t, name)
		v := NewVector(fn, 4)
		func() {
			defer func() {
				want := "agg: " + name + " does not support retraction"
				if got := recover(); got != want {
					t.Errorf("%s Sub panic = %v, want %q", name, got, want)
				}
			}()
			v.Sub(1, 1, nil)
		}()
	}
}

// TestVectorAddZeroAllocs pins the per-tuple hot path: folding a value into
// a bank vector — main slot plus all B replicates, with a Poisson weight
// vector — must not allocate. This is the property the whole flat-bank
// design buys; any regression here multiplies by rows×aggregates×batches.
func TestVectorAddZeroAllocs(t *testing.T) {
	const trials = 100
	w := make([]float64, trials)
	for i := range w {
		w[i] = float64(i % 3)
	}
	reps := make([]float64, trials)
	for _, name := range kernelKinds {
		fn := lookup(t, name)
		v := NewVector(fn, trials)
		if got := testing.AllocsPerRun(100, func() {
			v.Add(3.25, 1, w)
		}); got != 0 {
			t.Errorf("%s Vector.Add allocates %v per call, want 0", name, got)
		}
		if got := testing.AllocsPerRun(100, func() {
			v.AddRep(3.25, reps, 1, w)
		}); got != 0 {
			t.Errorf("%s Vector.AddRep allocates %v per call, want 0", name, got)
		}
		if fn.Invertible {
			if got := testing.AllocsPerRun(100, func() {
				v.Sub(3.25, 1, w)
			}); got != 0 {
				t.Errorf("%s Vector.Sub allocates %v per call, want 0", name, got)
			}
		}
	}
}

// TestFoldZeroAllocs pins the steady-state batch fold at zero allocations
// per tuple, for the single-worker Fold and for FoldPar under a
// pre-warmed goroutine-free pmap (the engine's pool owns its goroutines;
// what must not allocate is the per-tuple arithmetic).
func TestFoldZeroAllocs(t *testing.T) {
	const trials, rows = 100, 512
	samples := make([]Sample, rows)
	w := make([]float64, rows*trials)
	for i := range samples {
		ws := w[i*trials : (i+1)*trials : (i+1)*trials]
		for b := range ws {
			ws[b] = float64((i + b) % 3)
		}
		samples[i] = Sample{Val: float64(i) / 7.0, Mult: 1, W: ws}
	}
	seqPmap := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	for _, name := range kernelKinds {
		fn := lookup(t, name)
		v := NewVector(fn, trials)
		if got := testing.AllocsPerRun(5, func() {
			v.Reset()
			v.Fold(samples)
		}); got != 0 {
			t.Errorf("%s Fold allocates %v per %d-row batch, want 0", name, got, rows)
		}
		// FoldPar spends exactly one allocation per batch on the closure it
		// hands the pool — O(1) per batch regardless of row count, never per
		// tuple. Pin it at that constant so a per-tuple regression (which
		// would show up as ~rows allocations) cannot hide behind it.
		if got := testing.AllocsPerRun(5, func() {
			v.Reset()
			v.FoldPar(samples, seqPmap, 4)
		}); got > 1 {
			t.Errorf("%s FoldPar allocates %v per %d-row batch, want <= 1 (the pmap closure)", name, got, rows)
		}
	}
}
