// Flat replicate kernels: structure-of-arrays accumulator banks for the
// builtin aggregates. The piggybacked bootstrap (Section 2, Appendix C)
// makes every input tuple touch B≈100 replicate accumulators per aggregate;
// with one heap-allocated interface object per replicate that is B virtual
// calls and B cache lines per tuple. A bank packs the whole (main + B
// replicates) state of one (aggregate, group) pair into a single
// []float64 of stateWidth×(B+1): field f occupies the contiguous run
// bank[f·(B+1) : (f+1)·(B+1)], slot 0 within a field is the main
// accumulator and slot 1+b is replicate b. The fused per-kind kernels
// below run the whole weight vector in one pass over those contiguous
// runs, so the inner loop is branch-free loads/FMAs the compiler keeps in
// registers.
//
// Bit-identity: every kernel performs exactly the floating-point
// operations of the corresponding interface accumulator (agg.go), on the
// same values, in the same order — w := mult·poisson[b] as one multiply,
// sum += v·w, sumSq += (v·v)·w, the same comparison and NaN branches for
// MIN/MAX — so a bank and the interface oracle produce byte-identical
// float64 results for any input sequence. The equivalence fuzz in
// kernel_test.go asserts this with math.Float64bits.
package agg

import "math"

// kernelKind selects a fused bank kernel; kOpaque means "no kernel" — the
// accumulator stays on the interface path (UDAFs, COUNT(DISTINCT)).
type kernelKind uint8

const (
	kOpaque kernelKind = iota
	kSum
	kCount
	kAvg
	kVar
	kStddev
	kMin
	kMax
)

// width returns the per-slot state width in float64s (0 = not bankable).
// MIN/MAX carry the value and a 0/1 "set" flag; VAR/STDDEV carry
// (sum, sumSq, n); AVG carries (sum, n).
func (k kernelKind) width() int {
	switch k {
	case kSum, kCount:
		return 1
	case kAvg, kMin, kMax:
		return 2
	case kVar, kStddev:
		return 3
	}
	return 0
}

// invertible reports whether the kernel supports Sub (mirrors Func.Invertible
// for the builtins; MIN/MAX panic exactly like their interface twins).
func (k kernelKind) invertible() bool {
	return k == kSum || k == kCount || k == kAvg || k == kVar || k == kStddev
}

// bankAddMain folds one input into the main slot (slot 0) with weight mult —
// the Main.Add(val, mult) of the interface path.
func bankAddMain(k kernelKind, bank []float64, slots int, val, mult float64) {
	switch k {
	case kSum:
		bank[0] += val * mult
	case kCount:
		bank[0] += mult
	case kAvg:
		bank[0] += val * mult
		bank[slots] += mult
	case kVar, kStddev:
		bank[0] += val * mult
		bank[slots] += val * val * mult
		bank[2*slots] += mult
	case kMin:
		if mult > 0 && (bank[slots] == 0 || val < bank[0]) {
			bank[0] = val
			bank[slots] = 1
		}
	case kMax:
		if mult > 0 && (bank[slots] == 0 || val > bank[0]) {
			bank[0] = val
			bank[slots] = 1
		}
	}
}

// bankAddRange folds one input into replicates [lo, hi): replicate b gets
// weight mult·poisson[b] (mult when poisson is nil) and value reps[b] when a
// per-trial value vector is given (falling back to val past its end), exactly
// like Vector.AddRep on the interface path. The range form is what lets
// FoldPar split the replicate dimension across workers over disjoint bank
// slices.
func bankAddRange(k kernelKind, bank []float64, slots, lo, hi int, val float64, reps []float64, mult float64, poisson []float64) {
	switch k {
	case kSum:
		s := bank[1+lo : 1+hi]
		switch {
		case reps == nil && poisson != nil:
			w := poisson[lo:hi]
			s := s[:len(w)]
			for i := range w {
				s[i] += val * (mult * w[i])
			}
		case reps == nil:
			for i := range s {
				s[i] += val * mult
			}
		default:
			for b := lo; b < hi; b++ {
				w := mult
				if poisson != nil {
					w *= poisson[b]
				}
				x := val
				if b < len(reps) {
					x = reps[b]
				}
				bank[1+b] += x * w
			}
		}
	case kCount:
		s := bank[1+lo : 1+hi]
		if poisson != nil {
			w := poisson[lo:hi]
			s := s[:len(w)]
			for i := range w {
				s[i] += mult * w[i]
			}
		} else {
			for i := range s {
				s[i] += mult
			}
		}
	case kAvg:
		sums := bank[1+lo : 1+hi]
		ns := bank[slots+1+lo : slots+1+hi]
		switch {
		case reps == nil && poisson != nil:
			w := poisson[lo:hi]
			sums, ns := sums[:len(w)], ns[:len(w)]
			for i := range w {
				ww := mult * w[i]
				sums[i] += val * ww
				ns[i] += ww
			}
		case reps == nil:
			for i := range sums {
				sums[i] += val * mult
				ns[i] += mult
			}
		default:
			for b := lo; b < hi; b++ {
				w := mult
				if poisson != nil {
					w *= poisson[b]
				}
				x := val
				if b < len(reps) {
					x = reps[b]
				}
				bank[1+b] += x * w
				bank[slots+1+b] += w
			}
		}
	case kVar, kStddev:
		sums := bank[1+lo : 1+hi]
		sqs := bank[slots+1+lo : slots+1+hi]
		ns := bank[2*slots+1+lo : 2*slots+1+hi]
		switch {
		case reps == nil && poisson != nil:
			// Reslicing every field run to the weight window proves the
			// indexes in bounds (no per-iteration checks); val·val is the
			// same subexpression each iteration, hoisted without changing
			// the (val·val)·w association the oracle uses.
			w := poisson[lo:hi]
			sums, sqs, ns := sums[:len(w)], sqs[:len(w)], ns[:len(w)]
			vv := val * val
			for i := range w {
				ww := mult * w[i]
				sums[i] += val * ww
				sqs[i] += vv * ww
				ns[i] += ww
			}
		case reps == nil:
			sqs, ns := sqs[:len(sums)], ns[:len(sums)]
			vv := val * val
			for i := range sums {
				sums[i] += val * mult
				sqs[i] += vv * mult
				ns[i] += mult
			}
		default:
			for b := lo; b < hi; b++ {
				w := mult
				if poisson != nil {
					w *= poisson[b]
				}
				x := val
				if b < len(reps) {
					x = reps[b]
				}
				bank[1+b] += x * w
				bank[slots+1+b] += x * x * w
				bank[2*slots+1+b] += w
			}
		}
	case kMin:
		vals := bank[1+lo : 1+hi]
		set := bank[slots+1+lo : slots+1+hi]
		if reps == nil && poisson != nil && mult > 0 {
			// Fast path: mult·w > 0 reduces to w > 0 (Poisson weights are
			// non-negative), so the weight product drops out entirely. The
			// value test runs before the weight test — same verdict (pure
			// conditions), but in steady state "val improves the slot" is
			// rare and predictable while w > 0 is a ~63/37 coin flip, so
			// short-circuiting on the value spares the branch predictor the
			// per-replicate weight check.
			w := poisson[lo:hi]
			vals, set := vals[:len(w)], set[:len(w)]
			for i := range w {
				if (set[i] == 0 || val < vals[i]) && w[i] > 0 {
					vals[i] = val
					set[i] = 1
				}
			}
			return
		}
		for i := range vals {
			b := lo + i
			w := mult
			if poisson != nil {
				w *= poisson[b]
			}
			if w <= 0 {
				continue
			}
			x := val
			if reps != nil && b < len(reps) {
				x = reps[b]
			}
			if set[i] == 0 || x < vals[i] {
				vals[i] = x
				set[i] = 1
			}
		}
	case kMax:
		vals := bank[1+lo : 1+hi]
		set := bank[slots+1+lo : slots+1+hi]
		if reps == nil && poisson != nil && mult > 0 {
			// Value test first for the branch predictor, as in kMin.
			w := poisson[lo:hi]
			vals, set := vals[:len(w)], set[:len(w)]
			for i := range w {
				if (set[i] == 0 || val > vals[i]) && w[i] > 0 {
					vals[i] = val
					set[i] = 1
				}
			}
			return
		}
		for i := range vals {
			b := lo + i
			w := mult
			if poisson != nil {
				w *= poisson[b]
			}
			if w <= 0 {
				continue
			}
			x := val
			if reps != nil && b < len(reps) {
				x = reps[b]
			}
			if set[i] == 0 || x > vals[i] {
				vals[i] = x
				set[i] = 1
			}
		}
	}
}

// bankSub retracts a previously added value from the main slot and every
// replicate — the Sub of invertible aggregates. Non-invertible kinds panic
// with the interface accumulators' message.
func bankSub(k kernelKind, bank []float64, slots int, val, mult float64, poisson []float64) {
	B := slots - 1
	switch k {
	case kSum:
		bank[0] -= val * mult
		s := bank[1 : 1+B]
		if poisson != nil {
			for i := range s {
				s[i] -= val * (mult * poisson[i])
			}
		} else {
			for i := range s {
				s[i] -= val * mult
			}
		}
	case kCount:
		bank[0] -= mult
		s := bank[1 : 1+B]
		if poisson != nil {
			for i := range s {
				s[i] -= mult * poisson[i]
			}
		} else {
			for i := range s {
				s[i] -= mult
			}
		}
	case kAvg:
		bank[0] -= val * mult
		bank[slots] -= mult
		for b := 0; b < B; b++ {
			w := mult
			if poisson != nil {
				w *= poisson[b]
			}
			bank[1+b] -= val * w
			bank[slots+1+b] -= w
		}
	case kVar, kStddev:
		bank[0] -= val * mult
		bank[slots] -= val * val * mult
		bank[2*slots] -= mult
		for b := 0; b < B; b++ {
			w := mult
			if poisson != nil {
				w *= poisson[b]
			}
			bank[1+b] -= val * w
			bank[slots+1+b] -= val * val * w
			bank[2*slots+1+b] -= w
		}
	case kMin:
		panic("agg: MIN does not support retraction")
	case kMax:
		panic("agg: MAX does not support retraction")
	}
}

// bankMerge folds bank o into bank a (same kind, same slot count). Additive
// kinds merge element-wise; MIN/MAX replay the interface Merge's
// "Add(other.val, 1) when other is set" per slot.
func bankMerge(k kernelKind, a, o []float64, slots int) {
	switch k {
	case kSum, kCount, kAvg, kVar, kStddev:
		for i := range a {
			a[i] += o[i]
		}
	case kMin:
		for i := 0; i < slots; i++ {
			if o[slots+i] != 0 && (a[slots+i] == 0 || o[i] < a[i]) {
				a[i] = o[i]
				a[slots+i] = 1
			}
		}
	case kMax:
		for i := 0; i < slots; i++ {
			if o[slots+i] != 0 && (a[slots+i] == 0 || o[i] > a[i]) {
				a[i] = o[i]
				a[slots+i] = 1
			}
		}
	}
}

// bankResult reads one slot's aggregate value under the extensive scale —
// the Result of the interface accumulators, formula for formula.
func bankResult(k kernelKind, bank []float64, slots, slot int, scale float64) float64 {
	switch k {
	case kSum, kCount:
		return bank[slot] * scale
	case kAvg:
		n := bank[slots+slot]
		if n == 0 {
			return math.NaN()
		}
		return bank[slot] / n
	case kVar, kStddev:
		n := bank[2*slots+slot]
		if n == 0 {
			return math.NaN()
		}
		m := bank[slot] / n
		v := bank[slots+slot]/n - m*m
		if v < 0 {
			v = 0 // numerical floor
		}
		if k == kStddev {
			return math.Sqrt(v)
		}
		return v
	case kMin, kMax:
		if bank[slots+slot] == 0 {
			return math.NaN()
		}
		return bank[slot]
	}
	return math.NaN()
}
