package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func lookup(t *testing.T, name string) *Func {
	t.Helper()
	r := NewRegistry()
	f, ok := r.Lookup(name)
	if !ok {
		t.Fatalf("aggregate %s not registered", name)
	}
	return f
}

func TestSum(t *testing.T) {
	a := lookup(t, "SUM").New()
	a.Add(10, 1)
	a.Add(5, 2)
	if got := a.Result(1); got != 20 {
		t.Errorf("sum = %v, want 20", got)
	}
	if got := a.Result(3); got != 60 {
		t.Errorf("scaled sum = %v, want 60", got)
	}
	a.Sub(5, 2)
	if got := a.Result(1); got != 10 {
		t.Errorf("after retraction = %v, want 10", got)
	}
}

func TestCount(t *testing.T) {
	a := lookup(t, "count").New()
	a.Add(999, 1)
	a.Add(0, 2.5)
	if got := a.Result(1); got != 3.5 {
		t.Errorf("count = %v, want 3.5 (value ignored, weights summed)", got)
	}
	if got := a.Result(2); got != 7 {
		t.Errorf("scaled count = %v", got)
	}
}

func TestAvgScaleFree(t *testing.T) {
	a := lookup(t, "AVG").New()
	a.Add(10, 1)
	a.Add(20, 1)
	a.Add(30, 2)
	want := (10.0 + 20 + 60) / 4
	if got := a.Result(1); got != want {
		t.Errorf("avg = %v, want %v", got, want)
	}
	if got := a.Result(100); got != want {
		t.Error("AVG must ignore the extensive scale")
	}
	empty := lookup(t, "AVG").New()
	if !math.IsNaN(empty.Result(1)) {
		t.Error("empty avg should be NaN")
	}
}

func TestVarStddev(t *testing.T) {
	v := lookup(t, "VAR").New()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		v.Add(x, 1)
	}
	if got := v.Result(1); math.Abs(got-4) > 1e-12 {
		t.Errorf("var = %v, want 4", got)
	}
	s := lookup(t, "STDDEV").New()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x, 1)
	}
	if got := s.Result(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
	// Numerical floor: identical values have zero variance.
	z := lookup(t, "VAR").New()
	z.Add(1e9, 1)
	z.Add(1e9, 1)
	if got := z.Result(1); got < 0 {
		t.Errorf("variance must be non-negative, got %v", got)
	}
}

func TestMinMax(t *testing.T) {
	mn := lookup(t, "MIN").New()
	mx := lookup(t, "MAX").New()
	for _, x := range []float64{5, 3, 9, 3} {
		mn.Add(x, 1)
		mx.Add(x, 1)
	}
	if mn.Result(1) != 3 || mx.Result(1) != 9 {
		t.Errorf("min/max = %v/%v", mn.Result(1), mx.Result(1))
	}
	// Zero-weight adds are ignored (tuple not really present).
	mn.Add(-100, 0)
	if mn.Result(1) != 3 {
		t.Error("zero-weight add must not affect MIN")
	}
	empty := lookup(t, "MIN").New()
	if !math.IsNaN(empty.Result(1)) {
		t.Error("empty MIN should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Error("MIN.Sub should panic (non-invertible)")
		}
	}()
	mn.Sub(3, 1)
}

func TestMergeEquivalence(t *testing.T) {
	// Property: splitting a stream across two accumulators and merging
	// equals accumulating everything in one — for every builtin.
	names := []string{"SUM", "COUNT", "AVG", "VAR", "STDDEV", "MIN", "MAX"}
	rng := rand.New(rand.NewSource(5))
	for _, name := range names {
		f := lookup(t, name)
		for trial := 0; trial < 50; trial++ {
			whole := f.New()
			a, b := f.New(), f.New()
			n := 1 + rng.Intn(20)
			for i := 0; i < n; i++ {
				v := rng.Float64()*100 - 50
				w := float64(1 + rng.Intn(3))
				whole.Add(v, w)
				if rng.Intn(2) == 0 {
					a.Add(v, w)
				} else {
					b.Add(v, w)
				}
			}
			a.Merge(b)
			got, want := a.Result(2), whole.Result(2)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("%s merge mismatch: %v vs %v", name, got, want)
			}
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	for _, name := range []string{"SUM", "COUNT", "AVG", "VAR", "MIN", "MAX"} {
		a := lookup(t, name).New()
		a.Add(5, 1)
		c := a.Clone()
		a.Add(100, 1)
		if c.Result(1) == a.Result(1) && name != "MIN" {
			t.Errorf("%s clone not isolated", name)
		}
	}
}

func TestSumInvertibleProperty(t *testing.T) {
	f := func(vals []float64) bool {
		a := (&sumAcc{})
		for _, v := range vals {
			a.Add(math.Mod(v, 1e6), 1)
		}
		for _, v := range vals {
			a.Sub(math.Mod(v, 1e6), 1)
		}
		return math.Abs(a.Result(1)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUDAFRegistration(t *testing.T) {
	r := NewRegistry()
	// Geometric mean: a smooth, sketchable UDAF (sum of logs).
	type geo struct{ logSum, n float64 }
	err := r.Register(Func{
		Name: "GEOMEAN", TakesArg: true, Smooth: true, Invertible: true,
		New: func() Accumulator { return &geoAcc{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = geo{}
	f, ok := r.Lookup("geomean")
	if !ok {
		t.Fatal("UDAF not found")
	}
	a := f.New()
	a.Add(2, 1)
	a.Add(8, 1)
	if got := a.Result(1); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", got)
	}
	if err := r.Register(Func{}); err == nil {
		t.Error("invalid UDAF should be rejected")
	}
}

// geoAcc is the test UDAF accumulator.
type geoAcc struct{ logSum, n float64 }

func (a *geoAcc) Add(v, w float64) {
	if v > 0 {
		a.logSum += math.Log(v) * w
		a.n += w
	}
}
func (a *geoAcc) Sub(v, w float64) {
	if v > 0 {
		a.logSum -= math.Log(v) * w
		a.n -= w
	}
}
func (a *geoAcc) Result(float64) float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return math.Exp(a.logSum / a.n)
}
func (a *geoAcc) Merge(o Accumulator) {
	b := o.(*geoAcc)
	a.logSum += b.logSum
	a.n += b.n
}
func (a *geoAcc) Clone() Accumulator { c := *a; return &c }
func (a *geoAcc) Reset()             { a.logSum, a.n = 0, 0 }
func (a *geoAcc) SizeBytes() int     { return 16 }

func TestVectorReplicates(t *testing.T) {
	f := lookup(t, "SUM")
	v := NewVector(f, 3)
	v.Add(10, 1, []float64{0, 1, 2})
	v.Add(20, 1, []float64{1, 1, 0})
	if got := v.Result(1); got != 30 {
		t.Errorf("main = %v, want 30", got)
	}
	reps := v.RepResults(1, nil)
	want := []float64{20, 30, 20}
	for i := range want {
		if reps[i] != want[i] {
			t.Errorf("rep[%d] = %v, want %v", i, reps[i], want[i])
		}
	}
	// nil poisson = weight 1 for every replicate.
	v2 := NewVector(f, 2)
	v2.Add(5, 2, nil)
	reps2 := v2.RepResults(1, nil)
	if reps2[0] != 10 || reps2[1] != 10 {
		t.Errorf("nil poisson reps = %v", reps2)
	}
}

func TestVectorAddRep(t *testing.T) {
	f := lookup(t, "SUM")
	v := NewVector(f, 2)
	// The aggregated column itself is uncertain: per-trial input values.
	v.AddRep(10, []float64{9, 11}, 1, nil)
	if v.Result(1) != 10 {
		t.Error("main uses running value")
	}
	reps := v.RepResults(1, nil)
	if reps[0] != 9 || reps[1] != 11 {
		t.Errorf("AddRep reps = %v", reps)
	}
}

func TestVectorSubMergeClone(t *testing.T) {
	f := lookup(t, "SUM")
	v := NewVector(f, 2)
	v.Add(10, 1, []float64{1, 2})
	snap := v.Clone()
	v.Sub(10, 1, []float64{1, 2})
	if v.Result(1) != 0 {
		t.Error("vector retraction failed")
	}
	if snap.Result(1) != 10 {
		t.Error("clone must be isolated")
	}
	o := NewVector(f, 2)
	o.Add(7, 1, nil)
	snap.Merge(o)
	if snap.Result(1) != 17 {
		t.Error("vector merge failed")
	}
	if snap.SizeBytes() <= 0 {
		t.Error("vector size must be positive")
	}
}

func TestScaledRepResultsDst(t *testing.T) {
	f := lookup(t, "COUNT")
	v := NewVector(f, 4)
	v.Add(0, 1, []float64{1, 0, 2, 1})
	dst := make([]float64, 4)
	out := v.RepResults(3, dst)
	if &out[0] != &dst[0] {
		t.Error("RepResults should reuse dst")
	}
	if out[2] != 6 {
		t.Errorf("scaled count rep = %v, want 6", out[2])
	}
}
