// Batched ingest for the flat replicate kernels: the columnar pipeline
// (DESIGN.md §14) hands each (group, aggregate) pair a run of already
// gathered argument values instead of calling Add per tuple, so the
// per-call dispatch, slot arithmetic, and weight-window slicing amortise
// across the run and the inner loops stay in registers across tuples.
//
// Bit-identity: AddBatch performs, per accumulator slot, exactly the
// floating-point operations of calling Add(vals[j], mults[j], w_j) for j in
// order, where w_j is the row's window of the scan's weight slab. Tuples
// are folded outer-loop-in-order and replicates inner, the same nesting as
// the per-tuple path, so every slot sees the same operand sequence. The
// only structural liberties are the ones Fold/FoldPar already take: mains
// may fold in a separate pass (each slot's own sequence is unchanged), and
// MIN/MAX may switch to a lean conditional-store loop once every replicate
// in the window is set — the flag is then invariant, so the dropped check
// and the unconditional store cannot change a value.
package agg

// rowWeights returns row j's weight window [lo, hi) of the slab, or nil
// when the batch carries no per-row weights.
func rowWeights(slab []float64, stride int, rows []int32, j, lo, hi int) []float64 {
	if slab == nil {
		return nil
	}
	base := int(rows[j]) * stride
	return slab[base+lo : base+hi]
}

// batchTile bounds how many rows the sequential AddBatch hands to each
// mains+replicates pass pair, so the second pass re-reads vals/mults from
// L1 instead of memory. Tiling cannot affect bit-identity: each slot still
// sees every row in batch order, only the interleaving across slots moves.
const batchTile = 512

// AddBatch folds a run of gathered inputs: entry j carries value vals[j],
// multiplicity mults[j], and — when slab is non-nil — the Poisson weight
// window slab[rows[j]·B : rows[j]·B+B] (B = Trials()). Equivalent to
// calling Add per entry in order; see the package comment for the
// bit-identity argument.
func (v *Vector) AddBatch(vals, mults, slab []float64, rows []int32) {
	if v.bank == nil {
		for j := range vals {
			v.Add(vals[j], mults[j], rowWeights(slab, v.trials, rows, j, 0, v.trials))
		}
		return
	}
	for t := 0; t < len(vals); t += batchTile {
		e := t + batchTile
		if e > len(vals) {
			e = len(vals)
		}
		var rt []int32
		if rows != nil {
			rt = rows[t:e]
		}
		v.AddBatchMain(vals[t:e], mults[t:e])
		v.AddBatchRange(0, v.trials, vals[t:e], mults[t:e], slab, rt)
	}
}

// AddBatchPar is AddBatch with the replicate dimension split across
// workers, the batched twin of FoldPar: parts workers own contiguous
// replicate ranges and one extra task owns the mains, so every slot still
// receives its sequential operand sequence.
func (v *Vector) AddBatchPar(vals, mults, slab []float64, rows []int32, pmap func(n int, fn func(i int)), parts int) {
	B := v.trials
	if parts > B {
		parts = B
	}
	if parts <= 1 || pmap == nil || v.bank == nil {
		v.AddBatch(vals, mults, slab, rows)
		return
	}
	pmap(parts+1, func(p int) {
		if p == parts {
			v.AddBatchMain(vals, mults)
			return
		}
		v.AddBatchRange(p*B/parts, (p+1)*B/parts, vals, mults, slab, rows)
	})
}

// AddBatchMain folds the run into the main slots only (the mains task of
// AddBatchPar).
func (v *Vector) AddBatchMain(vals, mults []float64) {
	if v.bank == nil {
		for j := range vals {
			v.main.Add(vals[j], mults[j])
		}
		return
	}
	// The main slot is one accumulator against B≈100 replicates, so there
	// is nothing to amortise: reuse the per-tuple kernel verbatim. (This
	// also keeps the exact compiled expression shape — a hand-rolled
	// register accumulator is free to commute the adds' operand order,
	// which flips which NaN payload survives when both operands are NaN.)
	k, slots := v.Fn.kind, v.slots()
	for j := range vals {
		bankAddMain(k, v.bank, slots, vals[j], mults[j])
	}
}

// AddBatchRange folds the run into replicates [lo, hi) only. Row j's
// replicate b gets weight mults[j]·slab[rows[j]·B+b] (mults[j] alone when
// slab is nil), exactly like bankAddRange per tuple.
//
// The arithmetic kinds delegate to bankAddRange per row rather than
// open-coding the accumulation loop here: a second compiled copy of
// `s[i] += …` is free to commute the add's operand order, and when both
// the accumulator and the addend are NaN the hardware keeps the first
// operand's payload — so a re-compiled loop can bit-diverge from the
// oracle on NaN inputs even though the source-level FP ops are identical
// (the same reason AddBatchMain reuses bankAddMain). Routing every row
// through the per-tuple kernel's own body keeps the one instruction
// sequence the equivalence fuzz already pins. MIN/MAX instead run the
// dedicated batch loop below: they do no FP arithmetic (compares and bit
// copies only), so they carry no NaN tie-break to preserve.
func (v *Vector) AddBatchRange(lo, hi int, vals, mults, slab []float64, rows []int32) {
	if v.bank == nil {
		for j := range vals {
			w := rowWeights(slab, v.trials, rows, j, 0, v.trials)
			val, mult := vals[j], mults[j]
			for b := lo; b < hi; b++ {
				x := mult
				if w != nil {
					x *= w[b]
				}
				v.reps[b].Add(val, x)
			}
		}
		return
	}
	switch v.Fn.kind {
	case kMin:
		v.batchMinMax(lo, hi, vals, mults, slab, rows, false)
		return
	case kMax:
		v.batchMinMax(lo, hi, vals, mults, slab, rows, true)
		return
	}
	k, bank, slots, stride := v.Fn.kind, v.bank, v.slots(), v.trials
	for j := range vals {
		var w []float64
		if slab != nil {
			base := int(rows[j]) * stride
			w = slab[base : base+stride]
		}
		bankAddRange(k, bank, slots, lo, hi, vals[j], nil, mults[j], w)
	}
}

// batchMinMax is the shared MIN/MAX replicate-range kernel. Rows with
// mult ≤ 0 fold nothing (every weight product mult·poisson is then ≤ 0,
// Poisson weights being non-negative — the same reduction bankAddRange's
// fast path makes). While some replicate in the window is still unset the
// guarded loop runs, counting open slots as it goes; once the window is
// fully set it switches to a lean compare-and-select loop with an
// unconditional store, which the compiler keeps branch-free.
func (v *Vector) batchMinMax(lo, hi int, vals, mults, slab []float64, rows []int32, max bool) {
	bank, slots, stride := v.bank, v.slots(), v.trials
	cur := bank[1+lo : 1+hi]
	set := bank[slots+1+lo : slots+1+hi]
	j := 0
	for ; j < len(vals); j++ {
		val := vals[j]
		if mults[j] <= 0 {
			continue
		}
		open := 0
		if slab == nil {
			for i := range cur {
				nv, ns := cur[i], set[i]
				better := val < nv
				if max {
					better = val > nv
				}
				if ns == 0 || better {
					nv, ns = val, 1
				}
				cur[i], set[i] = nv, ns
				if ns == 0 {
					open++
				}
			}
		} else {
			w := rowWeights(slab, stride, rows, j, lo, hi)
			cc, st := cur[:len(w)], set[:len(w)]
			for i := range w {
				nv, ns := cc[i], st[i]
				better := val < nv
				if max {
					better = val > nv
				}
				// Value test before the weight test (same verdict; see the
				// kernel fast path): the weight is the unpredictable branch.
				if (ns == 0 || better) && w[i] > 0 {
					nv, ns = val, 1
				}
				cc[i], st[i] = nv, ns
				if ns == 0 {
					open++
				}
			}
		}
		if open == 0 {
			j++
			break
		}
	}
	if j >= len(vals) {
		return
	}
	// Every slot in the window is set: the set flags are invariant from here
	// on, so the remaining rows run the lean loops.
	if max {
		for ; j < len(vals); j++ {
			val := vals[j]
			if mults[j] <= 0 {
				continue
			}
			if slab == nil {
				for i := range cur {
					nv := cur[i]
					if val > nv {
						nv = val
					}
					cur[i] = nv
				}
				continue
			}
			w := rowWeights(slab, stride, rows, j, lo, hi)
			cc := cur[:len(w)]
			for i := range w {
				nv := cc[i]
				if val > nv && w[i] > 0 {
					nv = val
				}
				cc[i] = nv
			}
		}
		return
	}
	for ; j < len(vals); j++ {
		val := vals[j]
		if mults[j] <= 0 {
			continue
		}
		if slab == nil {
			for i := range cur {
				nv := cur[i]
				if val < nv {
					nv = val
				}
				cur[i] = nv
			}
			continue
		}
		w := rowWeights(slab, stride, rows, j, lo, hi)
		cc := cur[:len(w)]
		for i := range w {
			nv := cc[i]
			if val < nv && w[i] > 0 {
				nv = val
			}
			cc[i] = nv
		}
	}
}
