package agg

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// batchCase is one randomized columnar batch: a weight slab over nRows
// physical rows and a gathered run (vals/mults/rows) indexing into it. The
// run models what the columnar gather hands AddBatch after NULL filtering:
// a skewed, gappy, possibly duplicated selection of the physical rows, with
// NaN/±Inf values and zero/negative multiplicities mixed in.
type batchCase struct {
	trials int
	slab   []float64
	vals   []float64
	mults  []float64
	rows   []int32
}

func randomBatch(rng *rand.Rand, withSlab bool) batchCase {
	c := batchCase{trials: 1 + rng.Intn(96)}
	nRows := 1 + rng.Intn(200)
	if withSlab {
		c.slab = make([]float64, nRows*c.trials)
		for i := range c.slab {
			c.slab[i] = float64(rng.Intn(4)) // Poisson-like: 0..3, ~25% zeros
		}
	}
	// Special values are NaN-flavored or Inf-flavored per case, never both:
	// NaN inputs propagate math.NaN's payload while Inf combinations
	// (Inf·0 against a zero weight, Inf + -Inf) mint the hardware's
	// indefinite NaN, and when an accumulator add meets two NaNs with
	// different payloads, which one survives is unspecified in Go —
	// codegen-dependent (it flips under -race), not a bit the kernels can
	// promise. One flavor per case keeps every NaN payload-identical, so
	// propagation stays bit-deterministic and both semantic classes keep
	// full coverage.
	nanFlavor := rng.Intn(2) == 0
	// Skewed selection: walk the physical rows with random gaps (dropped
	// "NULL" rows) and occasional repeats, so the run is neither dense nor
	// uniform.
	for r := 0; r < nRows; {
		if rng.Intn(3) == 0 { // gap
			r += 1 + rng.Intn(4)
			continue
		}
		val := float64(rng.Intn(4000)-2000) / 16.0
		switch rng.Intn(24) {
		case 0, 1:
			if nanFlavor {
				val = math.NaN()
			} else {
				val = math.Inf(1)
			}
		case 2:
			if nanFlavor {
				val = math.NaN()
			} else {
				val = math.Inf(-1)
			}
		}
		mult := float64(1 + rng.Intn(3))
		if rng.Intn(10) == 0 {
			mult = float64(rng.Intn(3) - 1) // 0 and negatives must fold like the row path
		}
		c.vals = append(c.vals, val)
		c.mults = append(c.mults, mult)
		c.rows = append(c.rows, int32(r))
		if rng.Intn(5) != 0 { // occasional duplicate keeps r in place
			r++
		}
	}
	return c
}

func (c batchCase) weights(j int) []float64 {
	if c.slab == nil {
		return nil
	}
	r := int(c.rows[j])
	return c.slab[r*c.trials : (r+1)*c.trials]
}

// batchBuiltins is every builtin aggregate: the seven kernel kinds plus
// COUNTD, which stays on the interface path and must round through
// AddBatch's per-entry fallback unchanged.
var batchBuiltins = append(append([]string{}, kernelKinds...), "COUNTD")

// FuzzAddBatchEquivalence drives AddBatch, AddBatchPar (sequential and
// goroutine pmaps), and the per-tuple Add path through the same randomized
// batches for every builtin aggregate, demanding bit-identical results
// against the interface oracle. This is the columnar pipeline's half of the
// kernel contract: batching changes how many tuples one call carries, never
// a single floating-point op.
func FuzzAddBatchEquivalence(f *testing.F) {
	for s := int64(0); s < 12; s++ {
		f.Add(s)
	}
	goPmap := func(n int, fn func(i int)) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); fn(i) }(i)
		}
		wg.Wait()
	}
	seqPmap := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for _, withSlab := range []bool{true, false} {
			c := randomBatch(rng, withSlab)
			for _, name := range batchBuiltins {
				fn := lookup(t, name)
				ov := NewVectorOracle(fn, c.trials)
				for j := range c.vals {
					ov.Add(c.vals[j], c.mults[j], c.weights(j))
				}
				ctx := fmt.Sprintf("%s seed=%d slab=%v n=%d trials=%d", name, seed, withSlab, len(c.vals), c.trials)
				kb := NewVector(fn, c.trials)
				kb.AddBatch(c.vals, c.mults, c.slab, c.rows)
				bitsEqual(t, ctx+" AddBatch", kb, ov)
				for _, parts := range []int{2, 7, c.trials + 3} {
					kp := NewVector(fn, c.trials)
					kp.AddBatchPar(c.vals, c.mults, c.slab, c.rows, seqPmap, parts)
					bitsEqual(t, fmt.Sprintf("%s AddBatchPar seq parts=%d", ctx, parts), kp, ov)
					kg := NewVector(fn, c.trials)
					kg.AddBatchPar(c.vals, c.mults, c.slab, c.rows, goPmap, parts)
					bitsEqual(t, fmt.Sprintf("%s AddBatchPar goroutines parts=%d", ctx, parts), kg, ov)
				}
			}
		}
	})
}

// TestAddBatchIncremental checks batching respects prior state: splitting
// one input sequence across several AddBatch calls (including empty ones)
// lands on the same bits as one per-tuple pass.
func TestAddBatchIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := randomBatch(rng, true)
	for _, name := range batchBuiltins {
		fn := lookup(t, name)
		ov := NewVectorOracle(fn, c.trials)
		for j := range c.vals {
			ov.Add(c.vals[j], c.mults[j], c.weights(j))
		}
		kb := NewVector(fn, c.trials)
		for lo := 0; lo < len(c.vals); {
			hi := lo + rng.Intn(len(c.vals)-lo+1)
			kb.AddBatch(c.vals[lo:hi], c.mults[lo:hi], c.slab, c.rows[lo:hi])
			lo = hi
		}
		bitsEqual(t, name+" incremental", kb, ov)
	}
}

// TestAddBatchZeroAllocs pins the batched fold: folding a pre-gathered run
// into a bank vector must not allocate, for any kernel kind.
func TestAddBatchZeroAllocs(t *testing.T) {
	const trials, rows = 100, 512
	slab := make([]float64, rows*trials)
	vals := make([]float64, rows)
	mults := make([]float64, rows)
	idx := make([]int32, rows)
	for i := 0; i < rows; i++ {
		vals[i] = float64(i) / 7.0
		mults[i] = 1
		idx[i] = int32(i)
		for b := 0; b < trials; b++ {
			slab[i*trials+b] = float64((i + b) % 3)
		}
	}
	seqPmap := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	for _, name := range kernelKinds {
		fn := lookup(t, name)
		v := NewVector(fn, trials)
		if got := testing.AllocsPerRun(5, func() {
			v.Reset()
			v.AddBatch(vals, mults, slab, idx)
		}); got != 0 {
			t.Errorf("%s AddBatch allocates %v per %d-row batch, want 0", name, got, rows)
		}
		// Like FoldPar, AddBatchPar may spend one allocation per batch on
		// the closure handed to the pool — never per tuple.
		if got := testing.AllocsPerRun(5, func() {
			v.Reset()
			v.AddBatchPar(vals, mults, slab, idx, seqPmap, 4)
		}); got > 1 {
			t.Errorf("%s AddBatchPar allocates %v per %d-row batch, want <= 1", name, got, rows)
		}
	}
}
