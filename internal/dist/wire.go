package dist

import "io"

// Exported wire helpers: the serving session protocol (internal/serve) is
// layered on the same length-prefixed frame format and payload primitives as
// the distributed-execution protocol, so the framing and the hardened
// truncation/corruption-rejecting reader live here once. The two protocols
// never share a connection — a dist worker speaks msgSetup/msgStep/... frames,
// a serving endpoint speaks the serve package's frame types — they share only
// the byte-level grammar.

// WriteFrame sends one frame — 4-byte big-endian length, one type byte, then
// the payload — as a single Write, so counting wrappers see whole frames.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	return writeFrame(w, typ, payload)
}

// ReadFrame reads one frame, returning its type and a freshly allocated
// payload.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	return readFrame(r)
}

// ReadFrameReuse reads one frame into *buf (grown as needed and kept for the
// next call), returning its type and payload. The payload aliases *buf and is
// valid only until the next ReadFrameReuse with the same buffer — decoders
// that retain payload bytes past the call must copy.
func ReadFrameReuse(r io.Reader, buf *[]byte) (byte, []byte, error) {
	return readFrameReuse(r, buf)
}

// Payload append primitives (the encode side of WireReader).

// AppendUvarint appends an unsigned varint.
func AppendUvarint(dst []byte, v uint64) []byte { return appendUvarint(dst, v) }

// AppendVarint appends a zig-zag signed varint.
func AppendVarint(dst []byte, v int64) []byte { return appendVarint(dst, v) }

// AppendString appends a uvarint length followed by the bytes.
func AppendString(dst []byte, s string) []byte { return appendString(dst, s) }

// AppendBytes appends a uvarint length followed by the bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(dst []byte, b bool) []byte { return appendBool(dst, b) }

// AppendU64 appends a fixed-width little-endian uint64 (Float64bits carrier:
// fixed width keeps float payloads bit-exact and varint-free).
func AppendU64(dst []byte, v uint64) []byte { return appendU64(dst, v) }

// WireReader decodes payload primitives with first-error latching: callers
// chain reads and check Done once at the end. Every length-prefixed read is
// bounded by the remaining payload, so corrupt counts cannot drive huge
// allocations.
type WireReader struct {
	r reader
}

// NewWireReader wraps a payload for decoding.
func NewWireReader(b []byte) *WireReader { return &WireReader{r: reader{b: b}} }

// Uvarint reads an unsigned varint; what labels the error.
func (w *WireReader) Uvarint(what string) uint64 { return w.r.uvarint(what) }

// Varint reads a zig-zag signed varint.
func (w *WireReader) Varint(what string) int64 { return w.r.varint(what) }

// Count reads a uvarint bounded by the remaining payload length.
func (w *WireReader) Count(what string) int { return w.r.count(what) }

// Str reads a length-prefixed string.
func (w *WireReader) Str(what string) string { return w.r.str(what) }

// Bytes reads a length-prefixed byte slice aliasing the payload.
func (w *WireReader) Bytes(what string) []byte { return w.r.bytes(what) }

// Bool reads one strict boolean byte (values other than 0/1 are corrupt).
func (w *WireReader) Bool(what string) bool { return w.r.boolean(what) }

// Byte reads one raw byte.
func (w *WireReader) Byte(what string) byte { return w.r.byteVal(what) }

// U64 reads a fixed-width little-endian uint64.
func (w *WireReader) U64(what string) uint64 { return w.r.u64(what) }

// Remaining returns how many undecoded bytes are left.
func (w *WireReader) Remaining() int { return len(w.r.b) }

// Done returns the latched error, or an error if trailing bytes remain.
func (w *WireReader) Done(what string) error { return w.r.done(what) }

// Err returns the latched error without requiring the payload be consumed.
func (w *WireReader) Err() error { return w.r.err }
