// Transport construction: dialing real TCP workers, spinning up in-process
// loopback workers over net.Pipe (so every test runs hermetically, no ports),
// and a byte-counting conn wrapper the wire-accounting tests use to check
// that reported shuffle+broadcast bytes equal bytes actually on the wire.
package dist

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dial connects to each worker address in order. On any failure it closes
// the connections already made and returns the error: a coordinator that
// starts with fewer workers than asked would silently change the span
// assignment, so partial dial success is an error, not a degradation.
func Dial(addrs []string, timeout time.Duration) ([]net.Conn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conns := make([]net.Conn, 0, len(addrs))
	for _, addr := range addrs {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			for _, prev := range conns {
				prev.Close()
			}
			return nil, fmt.Errorf("dist: dial worker %s: %w", addr, err)
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// StartLoopback runs n in-process workers over synchronous in-memory pipes
// and returns the coordinator-side connections plus a stop function that
// closes them and waits for the worker goroutines to drain. net.Pipe supports
// deadlines, so the failure-detection paths are exercised identically to TCP.
func StartLoopback(n int, opts WorkerOptions) ([]net.Conn, func()) {
	conns := make([]net.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		c, s := net.Pipe()
		conns[i] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ServeConn(s, opts)
			s.Close()
		}()
	}
	return conns, func() {
		for _, c := range conns {
			c.Close()
		}
		wg.Wait()
	}
}

// countingConn wraps a conn with atomic byte counters. The wire-equality test
// hands these to the coordinator and asserts that the coordinator's reported
// WireStats equal the counted totals exactly.
type countingConn struct {
	net.Conn
	read, written atomic.Int64
}

func newCountingConn(inner net.Conn) *countingConn { return &countingConn{Conn: inner} }

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written.Add(int64(n))
	return n, err
}

// Totals returns bytes read from and written to the underlying conn.
func (c *countingConn) Totals() (read, written int64) {
	return c.read.Load(), c.written.Load()
}
