package dist

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/rel"
	"iolap/internal/storage"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		typ, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("frame %d: type %d payload %d bytes, want type %d payload %d bytes",
				i, typ, len(got), i+1, len(p))
		}
	}
}

func TestFrameRejectsBadLength(t *testing.T) {
	// A zero length and an oversized length are both protocol corruption.
	for _, hdr := range [][]byte{{0, 0, 0, 0}, {0xff, 0xff, 0xff, 0xff}} {
		if _, _, err := readFrame(bytes.NewReader(hdr)); err == nil {
			t.Fatalf("header %x: expected error", hdr)
		}
	}
}

func TestAssignSpansCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 101} {
		for p := 1; p <= 5; p++ {
			spans := assignSpans(n, p)
			if len(spans) != p {
				t.Fatalf("n=%d p=%d: %d spans", n, p, len(spans))
			}
			prev := 0
			for _, sp := range spans {
				if sp[0] != prev || sp[1] < sp[0] {
					t.Fatalf("n=%d p=%d: bad span %v after %d", n, p, sp, prev)
				}
				prev = sp[1]
			}
			if prev != n {
				t.Fatalf("n=%d p=%d: spans cover [0,%d)", n, p, prev)
			}
		}
	}
}

func TestSetupRoundTrip(t *testing.T) {
	db := exec.NewDB()
	r := rel.NewRelation(rel.Schema{
		{Table: "s", Name: "id", Type: rel.KString},
		{Name: "v", Type: rel.KFloat},
		{Name: "k", Type: rel.KInt},
	})
	r.Append(rel.String("a"), rel.Float(1.25), rel.Int(-3))
	r.AppendMult(2.5, rel.String("b"), rel.Float(0.1), rel.Int(9))
	db.Put("stream", r)
	dim := rel.NewRelation(rel.Schema{{Name: "k", Type: rel.KInt}})
	dim.Append(rel.Int(1))
	db.Put("dim", dim)

	opts := core.Options{
		Mode: core.ModeOPT1, Batches: 7, Trials: -1, Slack: 1.5, Seed: 42,
		SnapshotKeep: 3, MinRangeSupport: 5, PreShuffle: true,
		NoViewletRewrites: true, BlockRows: 4, StratifyBy: "k",
	}
	p, err := encodeSetup(2, 16, opts, "SELECT 1", db, map[string]bool{"stream": true}, 4, 17, 0xfeed, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := decodeSetup(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.rank != 2 || s.minRows != 16 || s.sqlText != "SELECT 1" {
		t.Fatalf("header: %+v", s)
	}
	if s.catchUp != 4 || s.startSeq != 17 || s.lastDigest != 0xfeed {
		t.Fatalf("catch-up fields: %+v", s)
	}
	if !reflect.DeepEqual(s.opts, opts) {
		t.Fatalf("options: got %+v want %+v", s.opts, opts)
	}
	if len(s.tables) != 2 {
		t.Fatalf("tables: %d", len(s.tables))
	}
	// db.Tables() is sorted: dim first, stream second.
	if s.tables[0].name != "dim" || s.tables[0].streamed || !s.tables[1].streamed {
		t.Fatalf("table flags: %+v", s.tables)
	}
	got := s.tables[1].rel
	if !reflect.DeepEqual(got.Schema, r.Schema) {
		t.Fatalf("schema: %v want %v", got.Schema, r.Schema)
	}
	if !reflect.DeepEqual(got.Tuples, r.Tuples) {
		t.Fatalf("tuples: %v want %v", got.Tuples, r.Tuples)
	}
}

func TestSetupRejectsCorruptPayload(t *testing.T) {
	db := exec.NewDB()
	db.Put("t", rel.NewRelation(rel.Schema{{Name: "x", Type: rel.KInt}}))
	p, err := encodeSetup(1, 32, core.Options{}, "q", db, nil, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSetup(p[:len(p)/2]); err == nil {
		t.Error("truncated setup: expected error")
	}
	if _, err := decodeSetup(append(append([]byte{}, p...), 0)); err == nil {
		t.Error("trailing bytes: expected error")
	}
}

func TestMessageCodecs(t *testing.T) {
	p := encodeStep(5, []int{1, 3, 4}, []int{16, 16, 8, 32})
	b, live, ws, err := decodeStep(p)
	if err != nil || b != 5 || !reflect.DeepEqual(live, []int{1, 3, 4}) || !reflect.DeepEqual(ws, []int{16, 16, 8, 32}) {
		t.Fatalf("step: %d %v %v %v", b, live, ws, err)
	}
	// The weight vector must stay aligned with the live list: one entry for
	// the coordinator plus one per rank.
	if _, _, _, err := decodeStep(encodeStep(5, []int{1, 3}, []int{16, 16})); err == nil {
		t.Fatal("misaligned weights: expected error")
	}

	sm, err := decodeSpan(encodeSpan(9, 10, 20, 1234, []byte{7, 8}, false))
	if err != nil || sm.seq != 9 || sm.lo != 10 || sm.hi != 20 || sm.nanos != 1234 || !bytes.Equal(sm.payload, []byte{7, 8}) {
		t.Fatalf("span: %+v %v", sm, err)
	}

	seq, lo, hi, err := decodeCompute(encodeCompute(3, 4, 5))
	if err != nil || seq != 3 || lo != 4 || hi != 5 {
		t.Fatalf("compute: %d %d %d %v", seq, lo, hi, err)
	}

	spans := [][2]int{{0, 2}, {2, 2}, {2, 5}}
	payloads := [][]byte{{1, 2}, nil, {3, 4, 5}}
	mseq, got, err := decodeMerged(encodeMerged(11, spans, payloads, false))
	if err != nil || mseq != 11 || len(got) != 3 {
		t.Fatalf("merged: %d %d %v", mseq, len(got), err)
	}
	for i, sm := range got {
		if sm.lo != spans[i][0] || sm.hi != spans[i][1] || !bytes.Equal(sm.payload, payloads[i]) {
			t.Fatalf("merged span %d: %+v", i, sm)
		}
	}

	batch, dg, err := decodeBatchDone(encodeBatchDone(6, 0xdeadbeefcafe))
	if err != nil || batch != 6 || dg != 0xdeadbeefcafe {
		t.Fatalf("batchDone: %d %#x %v", batch, dg, err)
	}
}

func TestFaultConn(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := NewFaultConn(a)
	fc.FailWriteAt(2)
	fc.FailReadAt(1)

	go func() { // peer drains one successful write
		buf := make([]byte, 8)
		b.Read(buf)
	}()
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := fc.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v, want ErrInjected", err)
	}
	if _, err := fc.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 1: %v, want ErrInjected", err)
	}
	reads, writes, closes := fc.Ops()
	if reads != 1 || writes != 2 || closes != 0 {
		t.Fatalf("ops: %d %d %d", reads, writes, closes)
	}

	fc.FailCloseAt(1)
	if err := fc.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close: %v, want ErrInjected", err)
	}
	if _, _, closes = fc.Ops(); closes != 1 {
		t.Fatalf("closes: %d", closes)
	}
}

func TestFaultConnKillOnFault(t *testing.T) {
	a, b := net.Pipe()
	fc := NewFaultConn(a)
	fc.KillOnFault(true)
	fc.FailReadAt(1)
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read: %v", err)
	}
	// The underlying conn is closed, so the peer observes the death.
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil || isTimeout(err) {
		t.Fatalf("peer read after kill: %v, want closed-pipe error", err)
	}
}

// TestDecodeTableRejectsLyingCounts pins the bounds-guarded count fix: a row
// or block count promising more entries than the remaining payload could
// possibly hold must be rejected up front, never trusted.
func TestDecodeTableRejectsLyingCounts(t *testing.T) {
	schema := rel.Schema{{Name: "x", Type: rel.KInt}}
	row, err := storage.AppendSpillRow(nil, []rel.Value{rel.Int(1)}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := append([]byte{tableFormatRows}, appendUvarint(nil, 1<<40)...)
	rows = append(rows, row...)
	r := &reader{b: rows}
	decodeTable(r, "t", schema)
	if r.err == nil {
		t.Error("lying row count accepted")
	}

	blocks := append([]byte{tableFormatBlock}, appendUvarint(nil, 1<<40)...)
	r = &reader{b: blocks}
	decodeTable(r, "t", schema)
	if r.err == nil {
		t.Error("lying block count accepted")
	}

	r = &reader{b: []byte{0x7f}}
	decodeTable(r, "t", schema)
	if r.err == nil {
		t.Error("unknown table format accepted")
	}
}

// TestSetupRowFallbackForRefs: a table holding lineage references — which the
// block codec rejects — round-trips through the per-table row-codec fallback,
// with compression enabled everywhere else.
func TestSetupRowFallbackForRefs(t *testing.T) {
	db := exec.NewDB()
	r := rel.NewRelation(rel.Schema{{Name: "v", Type: rel.KFloat}})
	r.Append(rel.NewRef(rel.Ref{Op: 3, Key: "g|x", Col: 1}))
	r.Append(rel.Float(2.5))
	db.Put("refs", r)
	opts := core.Options{WireCompression: true}
	p, err := encodeSetup(1, 8, opts, "q", db, nil, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := decodeSetup(p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.opts.WireCompression {
		t.Error("WireCompression option did not survive the round trip")
	}
	if len(s.tables) != 1 || !reflect.DeepEqual(s.tables[0].rel.Tuples, r.Tuples) {
		t.Fatalf("ref table did not round-trip: %+v", s.tables)
	}
}

// TestSpanPayloadOwnership pins the frame-buffer-reuse contract: decoded span
// and merged payloads must not alias the input buffer, which readFrameReuse
// overwrites on the next frame.
func TestSpanPayloadOwnership(t *testing.T) {
	enc := encodeSpan(1, 0, 4, 9, []byte{1, 2, 3, 4}, false)
	sm, err := decodeSpan(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xee
	}
	if !bytes.Equal(sm.payload, []byte{1, 2, 3, 4}) {
		t.Fatalf("span payload aliases the frame buffer: %v", sm.payload)
	}

	menc := encodeMerged(2, [][2]int{{0, 3}}, [][]byte{{9, 8, 7}}, false)
	_, spans, err := decodeMerged(menc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range menc {
		menc[i] = 0xee
	}
	if !bytes.Equal(spans[0].payload, []byte{9, 8, 7}) {
		t.Fatalf("merged payload aliases the frame buffer: %v", spans[0].payload)
	}
}

// TestSpanBlobCompression: payloads past the threshold ship flate-compressed
// and decode to identical bytes; sub-threshold payloads stay raw even with
// compression on.
func TestSpanBlobCompression(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 512) // 4 KiB, compressible
	raw := encodeSpan(1, 0, 9, 7, payload, false)
	comp := encodeSpan(1, 0, 9, 7, payload, true)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed span frame %d B not below raw %d B", len(comp), len(raw))
	}
	sm, err := decodeSpan(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sm.payload, payload) {
		t.Fatal("compressed span payload did not round-trip")
	}
	small := []byte{1, 2, 3}
	if got := encodeSpan(1, 0, 9, 7, small, true); !bytes.Equal(got, encodeSpan(1, 0, 9, 7, small, false)) {
		t.Fatal("sub-threshold payload was not left raw")
	}
}
