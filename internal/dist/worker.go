// The worker side: one workerSession per coordinator connection. The session
// decodes the Setup blueprint, builds a full engine replica (catalog →
// planner → engine, exactly the construction path the root package uses), and
// then steps it in lockstep with the coordinator, serving as the engine's
// core.Exchanger: at every distributed site it computes its own span, ships
// it, and applies the merged bytes the coordinator broadcasts.
package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"iolap/internal/agg"
	"iolap/internal/cluster"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/sql"
)

// errShutdown signals an orderly coordinator-requested teardown.
var errShutdown = errors.New("dist: shutdown requested")

// WorkerOptions configures a worker process.
type WorkerOptions struct {
	// Workers bounds the replica engine's local pool parallelism
	// (default GOMAXPROCS). Scheduling only — never results.
	Workers int
	// IdleTimeout is how long the session waits for the next coordinator
	// frame before giving up (default 5 minutes). It doubles as the
	// patience for mid-site waits, where the coordinator may legitimately
	// be busy computing.
	IdleTimeout time.Duration
	// Logf, when set, receives diagnostics (default: discard).
	Logf func(format string, args ...interface{})
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// ListenAndServe runs a worker: it listens on addr and serves each inbound
// coordinator connection in its own goroutine. This is the body of
// `iolap -worker addr`. It returns only on listener failure.
func ListenAndServe(addr string, opts WorkerOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(l, opts)
}

// Serve accepts coordinator connections from l until Accept fails.
func Serve(l net.Listener, opts WorkerOptions) error {
	opts = opts.withDefaults()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := ServeConn(conn, opts); err != nil {
				opts.Logf("dist: worker session ended: %v", err)
			}
			conn.Close()
		}()
	}
}

// ServeConn runs one coordinator session to completion on conn. It returns
// nil on orderly shutdown (msgShutdown or the coordinator hanging up between
// batches) and the fatal error otherwise.
func ServeConn(conn net.Conn, opts WorkerOptions) error {
	w := &workerSession{conn: conn, opts: opts.withDefaults()}
	err := w.run()
	if errors.Is(err, errShutdown) {
		return nil
	}
	return err
}

// workerSession is one coordinator connection's state. Everything runs on the
// serving goroutine: the engine's Exchange calls re-enter the session's frame
// loop, so no locking is needed.
type workerSession struct {
	conn    net.Conn
	opts    WorkerOptions
	rank    int
	minRows int
	live    []int  // frozen live ranks of the current batch
	weights []int  // frozen span weights ([0] coordinator, [i+1] live[i])
	seq     uint64 // exchange sequence number, lockstep with the coordinator
	// selfMode runs exchanges without the coordinator: compute the whole
	// site, merge it, no frames. Used during a joiner's catch-up replay —
	// merges are span-decomposition insensitive, so one [0, n) span leaves
	// the replica state bit-identical to the original distributed run.
	selfMode bool
	// compress mirrors the coordinator's WireCompression option (shipped in
	// Setup): span payloads above the threshold go out flate-compressed.
	compress bool
	// rbuf is the session's reusable frame-read buffer; read's payloads
	// alias it and are fully decoded (with copying readers) before the next
	// read.
	rbuf []byte

	wireShuffle   int64 // bytes sent toward the coordinator
	wireBroadcast int64 // bytes received from the coordinator
}

func (w *workerSession) run() error {
	typ, pl, err := w.read()
	if err != nil {
		return fmt.Errorf("dist: worker awaiting setup: %w", err)
	}
	if typ != msgSetup {
		return fmt.Errorf("dist: worker expected setup, got frame type %d", typ)
	}
	s, err := decodeSetup(pl)
	if err != nil {
		w.sendError(err)
		return err
	}
	eng, err := buildReplica(s, w.opts, w)
	if err != nil {
		w.sendError(err)
		return err
	}
	defer eng.Close()
	w.rank, w.minRows = s.rank, s.minRows
	w.compress = s.opts.WireCompression
	if s.catchUp > 0 {
		// Mid-query joiner: replay every completed batch against the full
		// tables we were shipped, then prove convergence against the
		// coordinator's last digest before reporting ready. The replay runs
		// before msgSetupOK, so admission cost lands on the joiner, not on
		// the incumbents' batch cadence.
		w.selfMode = true
		var lastDg uint64
		for b := 0; b < s.catchUp; b++ {
			u, err := eng.Step()
			if err != nil {
				w.sendError(fmt.Errorf("dist: catch-up replay batch %d: %w", b+1, err))
				return err
			}
			lastDg = 0
			if u != nil {
				if lastDg, err = resultDigest(u); err != nil {
					w.sendError(err)
					return err
				}
			}
		}
		w.selfMode = false
		if lastDg != s.lastDigest {
			err := fmt.Errorf("dist: catch-up replay diverged after %d batches: digest %#x, want %#x", s.catchUp, lastDg, s.lastDigest)
			w.sendError(err)
			return err
		}
		w.seq = s.startSeq
		w.opts.Logf("dist: worker rank %d caught up (%d batches replayed)", w.rank, s.catchUp)
	}
	if err := w.send(msgSetupOK, nil); err != nil {
		return err
	}
	w.opts.Logf("dist: worker rank %d ready (%d tables, %d batches)", w.rank, len(s.tables), s.opts.Batches)

	for {
		typ, pl, err := w.read()
		if err != nil {
			// A hangup between batches is an orderly end: the coordinator
			// closes connections on teardown.
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch typ {
		case msgPing:
			if err := w.send(msgPong, nil); err != nil {
				return err
			}
		case msgShutdown:
			return errShutdown
		case msgStep:
			batch, live, weights, err := decodeStep(pl)
			if err != nil {
				return err
			}
			w.live, w.weights = live, weights
			u, err := eng.Step()
			if err != nil {
				if errors.Is(err, errShutdown) {
					return errShutdown
				}
				w.sendError(err)
				return err
			}
			var dg uint64
			if u != nil {
				if dg, err = resultDigest(u); err != nil {
					w.sendError(err)
					return err
				}
			}
			if err := w.send(msgBatchDone, encodeBatchDone(batch, dg)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: worker got unexpected frame type %d between batches", typ)
		}
	}
}

// buildReplica constructs the worker's engine from the Setup blueprint,
// following the same catalog → planner → engine path the root package uses,
// so plan shape and operator numbering match the coordinator exactly.
// Scheduling-only options are chosen locally: replicas run memory-only (no
// spill budget) and size their own pools.
func buildReplica(s *setupMsg, wopts WorkerOptions, exch core.Exchanger) (*core.Engine, error) {
	db := exec.NewDB()
	cat := sql.NewCatalog()
	for _, t := range s.tables {
		db.Put(t.name, t.rel)
		cat.AddTable(t.name, t.rel.Schema, t.streamed)
	}
	stmt, err := sql.Parse(s.sqlText)
	if err != nil {
		return nil, fmt.Errorf("dist: worker parse: %w", err)
	}
	// Fresh registries: queries using custom UDFs/UDAs cannot run
	// distributed (the planner errors here and Setup fails loudly).
	node, _, err := sql.NewPlanner(cat, expr.NewRegistry(), agg.NewRegistry()).Plan(stmt)
	if err != nil {
		return nil, fmt.Errorf("dist: worker plan: %w", err)
	}
	opts := s.opts
	opts.Exchange = exch
	opts.Workers = wopts.Workers
	opts.ParThreshold = 0
	opts.StateBudgetBytes = 0
	opts.SpillFS = nil
	opts.SpillDir = ""
	opts.CostSeed = nil
	return core.NewEngine(node, db, opts)
}

// Exchange implements core.Exchanger for the worker side of a site: compute
// this replica's span (derived from its position in the frozen live list and
// the batch's weight vector, or — for a partitioned probe — from bucket
// ownership by rank), ship it with its measured compute nanos, then serve
// compute requests (re-dispatched spans of dead peers) until the merged site
// arrives, and apply it. In selfMode (catch-up replay) the whole site is
// computed and merged locally with no frames.
func (w *workerSession) Exchange(class cluster.OpClass, n int, compute func(lo, hi int) ([]byte, error), merge func(lo, hi int, payload []byte) error) error {
	if w.selfMode {
		pl, err := compute(0, n)
		if err != nil {
			return err
		}
		return merge(0, n, pl)
	}
	seq := w.seq
	w.seq++
	var lo, hi int
	if class == cluster.CostProbePart {
		// Partitioned-probe geometry: n is the bucket count and rank r owns
		// bucket r-1. Ranks beyond the partition count (joiners, extra
		// workers) ship an empty span as a liveness marker.
		if w.rank >= 1 && w.rank <= n {
			lo, hi = w.rank-1, w.rank
		}
	} else {
		p := len(w.live) + 1
		idx := -1
		for i, rk := range w.live {
			if rk == w.rank {
				idx = i + 1
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("dist: worker rank %d missing from live set %v", w.rank, w.live)
		}
		var spans [][2]int
		if len(w.weights) == p {
			spans = weightedSpans(n, w.weights)
		} else {
			spans = assignSpans(n, p)
		}
		lo, hi = spans[idx][0], spans[idx][1]
	}
	t0 := time.Now()
	pl, err := compute(lo, hi)
	if err != nil {
		return err
	}
	nanos := uint64(time.Since(t0).Nanoseconds())
	// Empty spans still ship: the frame doubles as a liveness signal and
	// keeps the collection sequence identical on both ends.
	if err := w.send(msgSpan, encodeSpan(seq, lo, hi, nanos, pl, w.compress)); err != nil {
		return err
	}
	for {
		typ, fp, err := w.read()
		if err != nil {
			return err
		}
		switch typ {
		case msgPing:
			if err := w.send(msgPong, nil); err != nil {
				return err
			}
		case msgCompute:
			cseq, clo, chi, err := decodeCompute(fp)
			if err != nil {
				return err
			}
			if cseq != seq {
				return fmt.Errorf("dist: compute request for seq %d during seq %d", cseq, seq)
			}
			ct0 := time.Now()
			cpl, err := compute(clo, chi)
			if err != nil {
				return err
			}
			if err := w.send(msgSpan, encodeSpan(seq, clo, chi, uint64(time.Since(ct0).Nanoseconds()), cpl, w.compress)); err != nil {
				return err
			}
		case msgMerged:
			mseq, msSpans, err := decodeMerged(fp)
			if err != nil {
				return err
			}
			if mseq != seq {
				return fmt.Errorf("dist: merged site for seq %d during seq %d", mseq, seq)
			}
			for _, sm := range msSpans {
				if err := merge(sm.lo, sm.hi, sm.payload); err != nil {
					return err
				}
			}
			return nil
		case msgShutdown:
			return errShutdown
		default:
			return fmt.Errorf("dist: worker got unexpected frame type %d mid-site", typ)
		}
	}
}

// MinRows implements core.Exchanger.
func (w *workerSession) MinRows() int { return w.minRows }

// WireStats implements core.Exchanger: from the worker's perspective, bytes
// it sends toward the coordinator are shuffle (collection) and bytes it
// receives are broadcast (fan-out) — the same classification the coordinator
// applies to the same frames.
func (w *workerSession) WireStats() (shuffle, broadcast int64) {
	return w.wireShuffle, w.wireBroadcast
}

// read and send clear their deadline after a successful frame: a stale
// armed deadline would otherwise expire during long local compute (a span, a
// catch-up replay) and poison the connection for any later I/O issued
// without an explicit deadline of its own.
func (w *workerSession) read() (byte, []byte, error) {
	w.conn.SetReadDeadline(time.Now().Add(w.opts.IdleTimeout))
	typ, pl, err := readFrameReuse(w.conn, &w.rbuf)
	if err != nil {
		return 0, nil, err
	}
	w.conn.SetReadDeadline(time.Time{})
	w.wireBroadcast += int64(frameOverhead + len(pl))
	return typ, pl, nil
}

func (w *workerSession) send(typ byte, payload []byte) error {
	w.conn.SetWriteDeadline(time.Now().Add(w.opts.IdleTimeout))
	if err := writeFrame(w.conn, typ, payload); err != nil {
		return err
	}
	w.conn.SetWriteDeadline(time.Time{})
	w.wireShuffle += int64(frameOverhead + len(payload))
	return nil
}

// sendError best-effort ships a fatal error to the coordinator so it can
// report the cause instead of a bare timeout.
func (w *workerSession) sendError(err error) {
	_ = w.send(msgError, []byte(err.Error()))
}
