// The worker side: one workerSession per coordinator connection. The session
// decodes the Setup blueprint, builds a full engine replica (catalog →
// planner → engine, exactly the construction path the root package uses), and
// then steps it in lockstep with the coordinator, serving as the engine's
// core.Exchanger: at every distributed site it computes its own span, ships
// it, and applies the merged bytes the coordinator broadcasts.
package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"iolap/internal/agg"
	"iolap/internal/cluster"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/sql"
)

// errShutdown signals an orderly coordinator-requested teardown.
var errShutdown = errors.New("dist: shutdown requested")

// WorkerOptions configures a worker process.
type WorkerOptions struct {
	// Workers bounds the replica engine's local pool parallelism
	// (default GOMAXPROCS). Scheduling only — never results.
	Workers int
	// IdleTimeout is how long the session waits for the next coordinator
	// frame before giving up (default 5 minutes). It doubles as the
	// patience for mid-site waits, where the coordinator may legitimately
	// be busy computing.
	IdleTimeout time.Duration
	// Logf, when set, receives diagnostics (default: discard).
	Logf func(format string, args ...interface{})
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// ListenAndServe runs a worker: it listens on addr and serves each inbound
// coordinator connection in its own goroutine. This is the body of
// `iolap -worker addr`. It returns only on listener failure.
func ListenAndServe(addr string, opts WorkerOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(l, opts)
}

// Serve accepts coordinator connections from l until Accept fails.
func Serve(l net.Listener, opts WorkerOptions) error {
	opts = opts.withDefaults()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			if err := ServeConn(conn, opts); err != nil {
				opts.Logf("dist: worker session ended: %v", err)
			}
			conn.Close()
		}()
	}
}

// ServeConn runs one coordinator session to completion on conn. It returns
// nil on orderly shutdown (msgShutdown or the coordinator hanging up between
// batches) and the fatal error otherwise.
func ServeConn(conn net.Conn, opts WorkerOptions) error {
	w := &workerSession{conn: conn, opts: opts.withDefaults()}
	err := w.run()
	if errors.Is(err, errShutdown) {
		return nil
	}
	return err
}

// workerSession is one coordinator connection's state. Everything runs on the
// serving goroutine: the engine's Exchange calls re-enter the session's frame
// loop, so no locking is needed.
type workerSession struct {
	conn    net.Conn
	opts    WorkerOptions
	rank    int
	minRows int
	live    []int  // frozen live ranks of the current batch
	seq     uint64 // exchange sequence number, lockstep with the coordinator

	wireShuffle   int64 // bytes sent toward the coordinator
	wireBroadcast int64 // bytes received from the coordinator
}

func (w *workerSession) run() error {
	typ, pl, err := w.read()
	if err != nil {
		return fmt.Errorf("dist: worker awaiting setup: %w", err)
	}
	if typ != msgSetup {
		return fmt.Errorf("dist: worker expected setup, got frame type %d", typ)
	}
	s, err := decodeSetup(pl)
	if err != nil {
		w.sendError(err)
		return err
	}
	eng, err := buildReplica(s, w.opts, w)
	if err != nil {
		w.sendError(err)
		return err
	}
	defer eng.Close()
	w.rank, w.minRows = s.rank, s.minRows
	if err := w.send(msgSetupOK, nil); err != nil {
		return err
	}
	w.opts.Logf("dist: worker rank %d ready (%d tables, %d batches)", w.rank, len(s.tables), s.opts.Batches)

	for {
		typ, pl, err := w.read()
		if err != nil {
			// A hangup between batches is an orderly end: the coordinator
			// closes connections on teardown.
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch typ {
		case msgPing:
			if err := w.send(msgPong, nil); err != nil {
				return err
			}
		case msgShutdown:
			return errShutdown
		case msgStep:
			batch, live, err := decodeStep(pl)
			if err != nil {
				return err
			}
			w.live = live
			u, err := eng.Step()
			if err != nil {
				if errors.Is(err, errShutdown) {
					return errShutdown
				}
				w.sendError(err)
				return err
			}
			var dg uint64
			if u != nil {
				if dg, err = resultDigest(u); err != nil {
					w.sendError(err)
					return err
				}
			}
			if err := w.send(msgBatchDone, encodeBatchDone(batch, dg)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: worker got unexpected frame type %d between batches", typ)
		}
	}
}

// buildReplica constructs the worker's engine from the Setup blueprint,
// following the same catalog → planner → engine path the root package uses,
// so plan shape and operator numbering match the coordinator exactly.
// Scheduling-only options are chosen locally: replicas run memory-only (no
// spill budget) and size their own pools.
func buildReplica(s *setupMsg, wopts WorkerOptions, exch core.Exchanger) (*core.Engine, error) {
	db := exec.NewDB()
	cat := sql.NewCatalog()
	for _, t := range s.tables {
		db.Put(t.name, t.rel)
		cat.AddTable(t.name, t.rel.Schema, t.streamed)
	}
	stmt, err := sql.Parse(s.sqlText)
	if err != nil {
		return nil, fmt.Errorf("dist: worker parse: %w", err)
	}
	// Fresh registries: queries using custom UDFs/UDAs cannot run
	// distributed (the planner errors here and Setup fails loudly).
	node, _, err := sql.NewPlanner(cat, expr.NewRegistry(), agg.NewRegistry()).Plan(stmt)
	if err != nil {
		return nil, fmt.Errorf("dist: worker plan: %w", err)
	}
	opts := s.opts
	opts.Exchange = exch
	opts.Workers = wopts.Workers
	opts.ParThreshold = 0
	opts.StateBudgetBytes = 0
	opts.SpillFS = nil
	opts.SpillDir = ""
	opts.CostSeed = nil
	return core.NewEngine(node, db, opts)
}

// Exchange implements core.Exchanger for the worker side of a site: compute
// this replica's span (derived from its position in the frozen live list),
// ship it, then serve compute requests (re-dispatched spans of dead peers)
// until the merged site arrives, and apply it.
func (w *workerSession) Exchange(class cluster.OpClass, n int, compute func(lo, hi int) ([]byte, error), merge func(lo, hi int, payload []byte) error) error {
	seq := w.seq
	w.seq++
	p := len(w.live) + 1
	idx := -1
	for i, rk := range w.live {
		if rk == w.rank {
			idx = i + 1
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("dist: worker rank %d missing from live set %v", w.rank, w.live)
	}
	spans := assignSpans(n, p)
	lo, hi := spans[idx][0], spans[idx][1]
	pl, err := compute(lo, hi)
	if err != nil {
		return err
	}
	// Empty spans still ship: the frame doubles as a liveness signal and
	// keeps the collection sequence identical on both ends.
	if err := w.send(msgSpan, encodeSpan(seq, lo, hi, pl)); err != nil {
		return err
	}
	for {
		typ, fp, err := w.read()
		if err != nil {
			return err
		}
		switch typ {
		case msgPing:
			if err := w.send(msgPong, nil); err != nil {
				return err
			}
		case msgCompute:
			cseq, clo, chi, err := decodeCompute(fp)
			if err != nil {
				return err
			}
			if cseq != seq {
				return fmt.Errorf("dist: compute request for seq %d during seq %d", cseq, seq)
			}
			cpl, err := compute(clo, chi)
			if err != nil {
				return err
			}
			if err := w.send(msgSpan, encodeSpan(seq, clo, chi, cpl)); err != nil {
				return err
			}
		case msgMerged:
			mseq, msSpans, err := decodeMerged(fp)
			if err != nil {
				return err
			}
			if mseq != seq {
				return fmt.Errorf("dist: merged site for seq %d during seq %d", mseq, seq)
			}
			for _, sm := range msSpans {
				if err := merge(sm.lo, sm.hi, sm.payload); err != nil {
					return err
				}
			}
			return nil
		case msgShutdown:
			return errShutdown
		default:
			return fmt.Errorf("dist: worker got unexpected frame type %d mid-site", typ)
		}
	}
}

// MinRows implements core.Exchanger.
func (w *workerSession) MinRows() int { return w.minRows }

// WireStats implements core.Exchanger: from the worker's perspective, bytes
// it sends toward the coordinator are shuffle (collection) and bytes it
// receives are broadcast (fan-out) — the same classification the coordinator
// applies to the same frames.
func (w *workerSession) WireStats() (shuffle, broadcast int64) {
	return w.wireShuffle, w.wireBroadcast
}

func (w *workerSession) read() (byte, []byte, error) {
	w.conn.SetReadDeadline(time.Now().Add(w.opts.IdleTimeout))
	typ, pl, err := readFrame(w.conn)
	if err != nil {
		return 0, nil, err
	}
	w.wireBroadcast += int64(frameOverhead + len(pl))
	return typ, pl, nil
}

func (w *workerSession) send(typ byte, payload []byte) error {
	w.conn.SetWriteDeadline(time.Now().Add(w.opts.IdleTimeout))
	if err := writeFrame(w.conn, typ, payload); err != nil {
		return err
	}
	w.wireShuffle += int64(frameOverhead + len(payload))
	return nil
}

// sendError best-effort ships a fatal error to the coordinator so it can
// report the cause instead of a bare timeout.
func (w *workerSession) sendError(err error) {
	_ = w.send(msgError, []byte(err.Error()))
}
