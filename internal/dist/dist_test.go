package dist

import (
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"iolap/internal/agg"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/rel"
	"iolap/internal/sql"
)

// ---------------------------------------------------------------------------
// Fixtures: the same synthetic sessions workload the core equivalence suites
// use, so "distributed equals local" is checked on exactly the shapes the
// engine's own bit-identity suites pin down.

func sessionsSchema() rel.Schema {
	return rel.Schema{
		{Name: "session_id", Type: rel.KString},
		{Name: "buffer_time", Type: rel.KFloat},
		{Name: "play_time", Type: rel.KFloat},
		{Name: "cdn", Type: rel.KString},
	}
}

func cdnsSchema() rel.Schema {
	return rel.Schema{
		{Name: "cdn", Type: rel.KString},
		{Name: "region", Type: rel.KString},
	}
}

// genSessions builds a deterministic synthetic sessions table. skew > 0
// biases that fraction of rows onto the "east" CDN (the skew fixture).
func genSessions(n int, seed int64, skew float64) *rel.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := rel.NewRelation(sessionsSchema())
	cdns := []string{"east", "west", "eu"}
	for i := 0; i < n; i++ {
		bt := 10 + rng.ExpFloat64()*25
		pt := 30 + rng.Float64()*600
		cdn := cdns[rng.Intn(len(cdns))]
		if skew > 0 && rng.Float64() < skew {
			cdn = "east"
		}
		r.Append(
			rel.String("s"+itoa(i)),
			rel.Float(math.Round(bt*10)/10),
			rel.Float(math.Round(pt*10)/10),
			rel.String(cdn),
		)
	}
	return r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

func testDB(n int, seed int64, skew float64) *exec.DB {
	db := exec.NewDB()
	db.Put("sessions", genSessions(n, seed, skew))
	cdns := rel.NewRelation(cdnsSchema())
	cdns.Append(rel.String("east"), rel.String("us-east"))
	cdns.Append(rel.String("west"), rel.String("us-west"))
	cdns.Append(rel.String("eu"), rel.String("europe"))
	db.Put("cdns", cdns)
	return db
}

// sortByBufferTime is the adversarial recovery fixture: ascending
// buffer_time makes the running inner average drift monotonically, forcing
// §5.1 integrity failures and replay.
func sortByBufferTime(db *exec.DB) {
	sessions, _ := db.Get("sessions")
	sort.Slice(sessions.Tuples, func(i, j int) bool {
		return sessions.Tuples[i].Vals[1].Float() < sessions.Tuples[j].Vals[1].Float()
	})
}

var streamedTables = map[string]bool{"sessions": true}

func buildEngine(t testing.TB, db *exec.DB, query string, opts core.Options) *core.Engine {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cat := sql.NewCatalog()
	cat.AddTable("sessions", sessionsSchema(), true)
	cat.AddTable("cdns", cdnsSchema(), false)
	node, _, err := sql.NewPlanner(cat, expr.NewRegistry(), agg.NewRegistry()).Plan(stmt)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	eng, err := core.NewEngine(node, db, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return eng
}

// summary captures every per-batch Update field the equivalence contract
// covers: everything except Duration (wall clock) and the Wire* bytes (which
// depend on the live worker set by design). Result and Estimates are folded
// through the same digest the batch-done protocol uses — FNV-1a over exact
// float bit patterns.
type summary struct {
	batch, batches            int
	fracBits                  uint64
	recomputed, ndset         int
	jsb, osb, jsrb            int
	shuffle, broadcast        int64
	spillW, spillR            int64
	recoveries, recoveredFrom int
	digest                    uint64
}

func summarize(t testing.TB, u *core.Update) summary {
	t.Helper()
	dg, err := resultDigest(u)
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	return summary{
		batch: u.Batch, batches: u.Batches,
		fracBits:   math.Float64bits(u.Fraction),
		recomputed: u.Recomputed, ndset: u.NDSetRows,
		jsb: u.JoinStateBytes, osb: u.OtherStateBytes, jsrb: u.JoinStateResidentBytes,
		shuffle: u.ShuffleBytes, broadcast: u.BroadcastBytes,
		spillW: u.SpillBytesWritten, spillR: u.SpillBytesRead,
		recoveries: u.Recoveries, recoveredFrom: u.RecoveredFrom,
		digest: dg,
	}
}

// runLocal executes the sequential oracle: Workers=1, no exchanger.
func runLocal(t testing.TB, db *exec.DB, query string, opts core.Options) []summary {
	t.Helper()
	opts.Workers = 1
	opts.Exchange = nil
	eng := buildEngine(t, db, query, opts)
	defer eng.Close()
	var out []summary
	for !eng.Done() {
		u, err := eng.Step()
		if err != nil {
			t.Fatalf("local step: %v", err)
		}
		out = append(out, summarize(t, u))
	}
	return out
}

// runDist executes the query through a coordinator over the given worker
// connections and returns the per-batch summaries plus the coordinator (for
// liveness/redispatch assertions; it is already closed).
func runDist(t testing.TB, conns []net.Conn, db *exec.DB, query string, opts core.Options, cfg Config) ([]summary, *Coordinator) {
	t.Helper()
	coord := NewCoordinator(conns, cfg)
	defer coord.Close()
	if err := coord.Setup(db, streamedTables, query, opts); err != nil {
		t.Fatalf("setup: %v", err)
	}
	opts.Exchange = coord
	eng := buildEngine(t, db, query, opts)
	defer eng.Close()
	var out []summary
	for !eng.Done() {
		u, err := coord.Step(eng)
		if err != nil {
			t.Fatalf("dist step: %v", err)
		}
		out = append(out, summarize(t, u))
	}
	return out, coord
}

func assertSameRun(t testing.TB, name string, got, want []summary) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d batches, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: batch %d diverged from local oracle:\ngot:  %+v\nwant: %+v",
				name, i+1, got[i], want[i])
		}
	}
}

// startTCPWorkers listens n real TCP workers on loopback ports and returns
// their addresses.
func startTCPWorkers(t testing.TB, n int, opts WorkerOptions) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { l.Close() })
		go Serve(l, opts)
		addrs[i] = l.Addr().String()
	}
	return addrs
}

var distQueries = []struct {
	name  string
	query string
}{
	{"flat_group_by", `SELECT cdn, COUNT(*) AS n, AVG(play_time) AS apt FROM sessions GROUP BY cdn`},
	{"join_dim_group", `SELECT c.region, SUM(s.play_time) AS spt FROM sessions s, cdns c
		WHERE s.cdn = c.cdn GROUP BY c.region`},
	{"sbi_nested_scalar", `SELECT AVG(play_time) AS apt FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`},
	{"nested_in_having", `SELECT AVG(play_time) AS apt FROM sessions
		WHERE cdn IN (SELECT cdn FROM sessions GROUP BY cdn HAVING AVG(buffer_time) > 20)`},
}

func baseOpts() core.Options {
	return core.Options{Mode: core.ModeIOLAP, Batches: 5, Trials: 15, Seed: 3, ParThreshold: 1}
}

// forceDist makes every site distributed regardless of size, so the small
// fixtures exercise every span codec and merge path.
func forceDist() Config { return Config{MinRows: 1} }

// TestDistEquivalence is the core acceptance sweep: loopback and real TCP
// transports, 2 and 3 remote workers, coordinator pools of 1 and 2 local
// workers — every combination must match the sequential local oracle on every
// per-batch field, bit for bit.
func TestDistEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		transport string
		workers   int
		localW    int
	}{
		{"loopback_w2", "loopback", 2, 1},
		{"loopback_w3", "loopback", 3, 1},
		{"loopback_w2_pool2", "loopback", 2, 2},
		{"tcp_w2", "tcp", 2, 1},
		{"tcp_w3", "tcp", 3, 1},
	}
	for _, q := range distQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			local := runLocal(t, testDB(120, 11, 0), q.query, baseOpts())
			for _, tc := range cases {
				var conns []net.Conn
				var stop func()
				switch tc.transport {
				case "loopback":
					conns, stop = StartLoopback(tc.workers, WorkerOptions{Workers: 2})
				case "tcp":
					addrs := startTCPWorkers(t, tc.workers, WorkerOptions{Workers: 2})
					var err error
					conns, err = Dial(addrs, time.Second)
					if err != nil {
						t.Fatalf("%s: %v", tc.name, err)
					}
					stop = func() {}
				}
				opts := baseOpts()
				opts.Workers = tc.localW
				got, _ := runDist(t, conns, testDB(120, 11, 0), q.query, opts, forceDist())
				stop()
				assertSameRun(t, q.name+"/"+tc.name, got, local)
			}
		})
	}
}

// TestDistEquivalenceSkew repeats the check on a 90%-east key distribution,
// where span boundaries cut through heavily duplicated join keys.
func TestDistEquivalenceSkew(t *testing.T) {
	query := distQueries[1].query // join_dim_group
	local := runLocal(t, testDB(150, 5, 0.9), query, baseOpts())
	conns, stop := StartLoopback(3, WorkerOptions{})
	defer stop()
	got, _ := runDist(t, conns, testDB(150, 5, 0.9), query, baseOpts(), forceDist())
	assertSameRun(t, "skew", got, local)
}

// TestDistEquivalenceUnderRecovery runs the adversarial §5.1 fixture —
// ascending buffer_time forces variation-range integrity failures and
// replays — and checks the replicas stay in lockstep through recovery (the
// replays re-run the distributed sites in the same order on every replica).
func TestDistEquivalenceUnderRecovery(t *testing.T) {
	query := `SELECT AVG(play_time) AS apt FROM sessions
		WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)`
	opts := core.Options{Mode: core.ModeIOLAP, Batches: 10, Trials: 20, Slack: 0, Seed: 4, ParThreshold: 1}

	ldb := testDB(200, 7, 0)
	sortByBufferTime(ldb)
	local := runLocal(t, ldb, query, opts)
	recovered := 0
	for _, s := range local {
		recovered += s.recoveries
	}
	if recovered == 0 {
		t.Fatal("recovery fixture produced no recoveries; the test is vacuous")
	}

	ddb := testDB(200, 7, 0)
	sortByBufferTime(ddb)
	conns, stop := StartLoopback(2, WorkerOptions{})
	defer stop()
	got, _ := runDist(t, conns, ddb, query, opts, forceDist())
	assertSameRun(t, "recovery", got, local)
}

// TestWorkerKilledMidBatch kills worker 1's connection at a sweep of frame
// ordinals — landing the death inside different sites and batches — and
// requires bit-identical results every time, with the dead worker's spans
// re-dispatched and the worker expelled from later batches.
func TestWorkerKilledMidBatch(t *testing.T) {
	query := distQueries[1].query // join_dim_group: exercises row-span shipping
	local := runLocal(t, testDB(120, 11, 0), query, baseOpts())

	anyRedispatch, anyKilled := false, false
	for failAt := 6; failAt <= 40; failAt += 4 {
		conns, stop := StartLoopback(2, WorkerOptions{})
		fc := NewFaultConn(conns[0])
		fc.KillOnFault(true)
		fc.FailReadAt(failAt)
		cfg := forceDist()
		cfg.SpanDeadline = 100 * time.Millisecond
		cfg.Retries = 1
		got, coord := runDist(t, []net.Conn{fc, conns[1]}, testDB(120, 11, 0), query, baseOpts(), cfg)
		assertSameRun(t, "killed@"+itoa(failAt), got, local)
		if coord.LiveWorkers() < 2 {
			anyKilled = true
			if err := coord.WorkerErrors()[1]; err == nil {
				t.Errorf("failAt=%d: dead worker 1 has no recorded error", failAt)
			}
		}
		if total, _ := coord.Redispatched(); total > 0 {
			anyRedispatch = true
		}
		stop()
	}
	if !anyKilled {
		t.Error("fault sweep never killed the worker; increase the ordinal range")
	}
	if !anyRedispatch {
		t.Error("fault sweep never exercised span re-dispatch")
	}
}

// TestSilentWorkerTimesOutAndRedispatches covers the deadline-escalation
// death path: a worker that completes setup and then goes silent must be
// declared dead after the escalated deadlines expire, its spans re-dispatched
// to the surviving worker, and the results must still match the oracle.
func TestSilentWorkerTimesOutAndRedispatches(t *testing.T) {
	query := distQueries[0].query
	local := runLocal(t, testDB(100, 2, 0), query, baseOpts())

	live, stopLive := StartLoopback(1, WorkerOptions{})
	defer stopLive()
	cConn, sConn := net.Pipe()
	silentDone := make(chan struct{})
	go func() { // a worker that acks setup, then absorbs frames forever
		defer close(silentDone)
		if _, _, err := readFrame(sConn); err != nil {
			return
		}
		writeFrame(sConn, msgSetupOK, nil)
		io.Copy(io.Discard, sConn)
	}()

	cfg := forceDist()
	cfg.SpanDeadline = 20 * time.Millisecond
	cfg.Retries = 2
	got, coord := runDist(t, []net.Conn{live[0], cConn}, testDB(100, 2, 0), query, baseOpts(), cfg)
	assertSameRun(t, "silent", got, local)
	if coord.LiveWorkers() != 1 {
		t.Fatalf("live workers: %d, want 1", coord.LiveWorkers())
	}
	total, remote := coord.Redispatched()
	if total == 0 || remote == 0 {
		t.Fatalf("redispatched total=%d remote=%d, want both > 0", total, remote)
	}
	cConn.Close()
	<-silentDone
}

// TestHeartbeatDropsDeadLinkBetweenBatches severs a worker's link between
// batches; the pre-batch heartbeat sweep must expel it before the next
// frozen live set, and results must stay identical.
func TestHeartbeatDropsDeadLinkBetweenBatches(t *testing.T) {
	query := distQueries[0].query
	local := runLocal(t, testDB(100, 2, 0), query, baseOpts())

	conns, stop := StartLoopback(2, WorkerOptions{})
	defer stop()
	cfg := forceDist()
	cfg.HeartbeatInterval = time.Nanosecond // ping before every batch
	coord := NewCoordinator(conns, cfg)
	defer coord.Close()
	if err := coord.Setup(testDB(100, 2, 0), streamedTables, query, baseOpts()); err != nil {
		t.Fatalf("setup: %v", err)
	}
	opts := baseOpts()
	opts.Exchange = coord
	eng := buildEngine(t, testDB(100, 2, 0), query, opts)
	defer eng.Close()
	var got []summary
	step := 0
	for !eng.Done() {
		u, err := coord.Step(eng)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		got = append(got, summarize(t, u))
		step++
		if step == 2 {
			conns[1].Close() // sever worker 2 between batches
		}
	}
	assertSameRun(t, "heartbeat", got, local)
	if coord.LiveWorkers() != 1 {
		t.Fatalf("live workers: %d, want 1", coord.LiveWorkers())
	}
}

// TestWireAccountingMatchesConnBytes wraps every coordinator connection in a
// byte counter and checks the acceptance criterion directly: reported
// shuffle bytes equal bytes read off the wire and reported broadcast bytes
// equal bytes written onto it — exactly, frame headers included.
func TestWireAccountingMatchesConnBytes(t *testing.T) {
	query := distQueries[1].query
	conns, stop := StartLoopback(2, WorkerOptions{})
	defer stop()
	counted := []*countingConn{newCountingConn(conns[0]), newCountingConn(conns[1])}

	coord := NewCoordinator([]net.Conn{counted[0], counted[1]}, forceDist())
	if err := coord.Setup(testDB(120, 11, 0), streamedTables, query, baseOpts()); err != nil {
		t.Fatalf("setup: %v", err)
	}
	opts := baseOpts()
	opts.Exchange = coord
	eng := buildEngine(t, testDB(120, 11, 0), query, opts)
	defer eng.Close()
	var sumShuffle, sumBroadcast int64
	for !eng.Done() {
		u, err := coord.Step(eng)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		sumShuffle += u.WireShuffleBytes
		sumBroadcast += u.WireBroadcastBytes
	}
	coord.Close() // shutdown frames count too

	shuffle, broadcast := coord.WireStats()
	var read, written int64
	for _, cc := range counted {
		r, w := cc.Totals()
		read += r
		written += w
	}
	if shuffle != read {
		t.Errorf("shuffle: reported %d, measured %d on the wire", shuffle, read)
	}
	if broadcast != written {
		t.Errorf("broadcast: reported %d, measured %d on the wire", broadcast, written)
	}
	if shuffle == 0 || broadcast == 0 {
		t.Error("wire counters are zero; the distributed path did not run")
	}
	// Per-batch Update figures cover batch traffic only (setup and shutdown
	// frames belong to no batch), so they must sum to at most the totals —
	// and must have observed real traffic.
	if sumShuffle <= 0 || sumShuffle > shuffle {
		t.Errorf("sum of per-batch wire shuffle %d outside (0, %d]", sumShuffle, shuffle)
	}
	if sumBroadcast <= 0 || sumBroadcast > broadcast {
		t.Errorf("sum of per-batch wire broadcast %d outside (0, %d]", sumBroadcast, broadcast)
	}
}

// TestSetupTimeout: a connection nobody serves must fail Setup with a
// timeout, not hang.
func TestSetupTimeout(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go io.Copy(io.Discard, sConn) // absorb the setup frame, never reply
	cfg := forceDist()
	cfg.SetupDeadline = 50 * time.Millisecond
	coord := NewCoordinator([]net.Conn{cConn}, cfg)
	defer coord.Close()
	err := coord.Setup(testDB(20, 1, 0), streamedTables, distQueries[0].query, baseOpts())
	if err == nil {
		t.Fatal("setup against a silent peer should fail")
	}
}

// TestWorkerRejectsGarbageSetup: a malformed setup frame must produce a
// worker-side error reply, not a crash or a hang.
func TestWorkerRejectsGarbageSetup(t *testing.T) {
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	done := make(chan error, 1)
	go func() { done <- ServeConn(sConn, WorkerOptions{IdleTimeout: time.Second}) }()
	if err := writeFrame(cConn, msgSetup, []byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readFrame(cConn)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if typ != msgError {
		t.Fatalf("reply type %d, want msgError", typ)
	}
	if err := <-done; err == nil {
		t.Fatal("worker session should report the setup failure")
	}
}

// TestDistEquivalenceCompressed: WireCompression changes bytes on the wire,
// never results. The compressed distributed run matches the local oracle on
// every per-batch field bit for bit, and total coordinator→worker wire bytes
// (dominated by the Setup table broadcast) drop materially.
func TestDistEquivalenceCompressed(t *testing.T) {
	query := distQueries[1].query // join_dim_group
	local := runLocal(t, testDB(1200, 11, 0), query, baseOpts())
	run := func(compress bool) ([]summary, int64) {
		conns, stop := StartLoopback(2, WorkerOptions{Workers: 2})
		defer stop()
		opts := baseOpts()
		opts.WireCompression = compress
		got, coord := runDist(t, conns, testDB(1200, 11, 0), query, opts, forceDist())
		_, broadcast := coord.WireStats()
		return got, broadcast
	}
	plain, rawBytes := run(false)
	compressed, compBytes := run(true)
	assertSameRun(t, "compress_off", plain, local)
	assertSameRun(t, "compress_on", compressed, local)
	if compBytes >= rawBytes {
		t.Fatalf("compressed broadcast %d B not below uncompressed %d B", compBytes, rawBytes)
	}
	t.Logf("broadcast bytes: %d raw, %d compressed (%.1fx)", rawBytes, compBytes, float64(rawBytes)/float64(compBytes))
}
