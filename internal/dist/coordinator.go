// The coordinator side: owns the worker connections, drives the lockstep
// batch protocol around its own engine replica, and implements the engine's
// core.Exchanger by collecting worker spans, merging in span order, and
// broadcasting the merged site back.
//
// Failure model (the §5.1 story carried onto the wire): the coordinator is
// the single failure detector. A worker is declared dead on a connection
// error or when a span/pong/batch-done read times out after the per-task
// deadline has been exponentially escalated Retries times. A worker that
// dies mid-batch stays in that batch's frozen span assignment — span
// boundaries never shift mid-flight — and its spans are re-dispatched:
// shipped to a surviving worker (round-robin from the dead rank) or, when
// none can take them, computed by the coordinator itself. Either way the
// merged site holds byte-identical payloads to the all-alive run, because
// every span is a pure function of the replicated batch state — which is the
// whole re-dispatch determinism argument. Dead workers are dropped from the
// next batch's frozen live set and cannot rejoin.
package dist

import (
	"fmt"
	"net"
	"time"

	"iolap/internal/cluster"
	"iolap/internal/core"
	"iolap/internal/exec"
)

// Config tunes coordinator failure detection. The zero value is ready to use.
type Config struct {
	// MinRows is the smallest operator site worth distributing (default
	// 32). Shipped to workers in Setup so every replica gates identically.
	MinRows int
	// SpanDeadline is the initial read deadline when awaiting a span or
	// acknowledgement from a worker (default 2s). Each expiry doubles it.
	SpanDeadline time.Duration
	// Retries is how many deadline escalations a silent worker is granted
	// before being declared dead (default 3: total patience is
	// SpanDeadline·(2^(Retries+1)−1)).
	Retries int
	// HeartbeatInterval is the worker-idle span after which the coordinator
	// pings before starting a batch (default 30s). Heartbeats only run
	// between batches, where a dead worker can still be dropped from the
	// next frozen live set cheaply.
	HeartbeatInterval time.Duration
	// SetupDeadline bounds the wait for a worker to build its replica
	// (default 60s — setup decodes whole tables and compiles the plan).
	SetupDeadline time.Duration
	// Logf, when set, receives diagnostics (default: discard).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.MinRows <= 0 {
		c.MinRows = 32
	}
	if c.SpanDeadline <= 0 {
		c.SpanDeadline = 2 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 30 * time.Second
	}
	if c.SetupDeadline <= 0 {
		c.SetupDeadline = 60 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// maxWait is the total patience granted a silent worker.
func (c Config) maxWait() time.Duration {
	d := c.SpanDeadline
	total := time.Duration(0)
	for i := 0; i <= c.Retries; i++ {
		total += d
		d *= 2
	}
	return total
}

// peer is one worker connection plus its liveness state.
type peer struct {
	rank      int // participant rank (1-based; 0 is the coordinator itself)
	conn      net.Conn
	dead      bool
	err       error     // why it died
	lastHeard time.Time // last frame received (heartbeat bookkeeping)
	// pending stashes current-seq span frames read while awaiting a
	// different span from this worker (its own span arriving while it
	// serves a re-dispatched compute request).
	pending []spanMsg
}

// Coordinator drives a set of remote workers in lockstep with a local engine
// replica. It implements core.Exchanger; plug it into core.Options.Exchange
// of the engine whose Step it drives. Not safe for concurrent use — it is
// driven from the engine goroutine, like the engine itself.
type Coordinator struct {
	cfg   Config
	peers []*peer
	batch int
	seq   uint64
	// batchLive is the frozen membership of the in-flight batch: the peers
	// whose ranks were announced in msgStep, in rank order, including any
	// that died after the freeze.
	batchLive []*peer

	metrics            cluster.Metrics // wire byte counters only
	redispatched       int             // spans of dead workers handled (any way)
	redispatchedRemote int             // of those, spans shipped to a survivor

	setup  bool
	closed bool
}

// NewCoordinator wraps already-dialed worker connections. Connection order
// fixes worker ranks (conns[i] is rank i+1), so pass the same order every
// run for reproducible placement.
func NewCoordinator(conns []net.Conn, cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults()}
	for i, conn := range conns {
		c.peers = append(c.peers, &peer{rank: i + 1, conn: conn})
	}
	return c
}

// Setup ships the replica blueprint — tables, streamed flags, SQL text and
// the result-relevant engine options — to every worker and waits for each to
// build its engine. Any worker failing setup fails the whole call: a
// mis-provisioned cluster should be loud, not silently smaller.
func (c *Coordinator) Setup(db *exec.DB, streamed map[string]bool, sqlText string, opts core.Options) error {
	if c.setup {
		return fmt.Errorf("dist: coordinator already set up")
	}
	c.setup = true
	for _, p := range c.peers {
		payload, err := encodeSetup(p.rank, c.cfg.MinRows, opts, sqlText, db, streamed)
		if err != nil {
			return err
		}
		if err := c.send(p, msgSetup, payload); err != nil {
			return fmt.Errorf("dist: setup worker %d: %w", p.rank, err)
		}
	}
	for _, p := range c.peers {
		typ, pl, err := c.recv(p, c.cfg.SetupDeadline)
		if err != nil {
			return fmt.Errorf("dist: setup worker %d: %w", p.rank, err)
		}
		switch typ {
		case msgSetupOK:
		case msgError:
			return fmt.Errorf("dist: worker %d setup failed: %s", p.rank, pl)
		default:
			return fmt.Errorf("dist: worker %d: unexpected frame type %d during setup", p.rank, typ)
		}
	}
	return nil
}

// Step drives one lockstep mini-batch: freeze membership and announce the
// batch, step the local replica (whose distributed sites call back into
// Exchange), then collect and verify every worker's result digest.
func (c *Coordinator) Step(e *core.Engine) (*core.Update, error) {
	c.beginBatch()
	u, err := e.Step()
	if err != nil {
		return nil, err
	}
	c.finishBatch(u)
	return u, nil
}

// beginBatch runs the heartbeat sweep, freezes the live set and announces
// the batch. A send failure marks the worker dead but does not shrink the
// frozen set: the assignment is already announced to the survivors, so the
// dead worker's spans will be re-dispatched instead.
func (c *Coordinator) beginBatch() {
	c.batch++
	c.heartbeat()
	live := make([]*peer, 0, len(c.peers))
	ranks := make([]int, 0, len(c.peers))
	for _, p := range c.peers {
		if !p.dead {
			live = append(live, p)
			ranks = append(ranks, p.rank)
		}
	}
	c.batchLive = live
	payload := encodeStep(c.batch, ranks)
	for _, p := range live {
		if err := c.send(p, msgStep, payload); err != nil {
			c.cfg.Logf("dist: batch %d: announcing to worker %d: %v", c.batch, p.rank, err)
		}
	}
}

// heartbeat pings workers that have been silent past the interval. Runs only
// between batches (mid-batch silence is covered by span deadlines).
func (c *Coordinator) heartbeat() {
	for _, p := range c.peers {
		if p.dead || time.Since(p.lastHeard) < c.cfg.HeartbeatInterval {
			continue
		}
		if err := c.send(p, msgPing, nil); err != nil {
			continue
		}
		c.expect(p, msgPong, "heartbeat")
	}
}

// finishBatch collects each live worker's msgBatchDone and compares digests.
// A diverging worker is expelled: its replica can no longer be trusted to
// compute spans, and every later batch it touched would be corrupt.
func (c *Coordinator) finishBatch(u *core.Update) {
	var want uint64
	if u != nil {
		dg, err := resultDigest(u)
		if err != nil {
			c.cfg.Logf("dist: batch %d: local digest: %v", c.batch, err)
			return
		}
		want = dg
	}
	for _, p := range c.batchLive {
		if p.dead {
			continue
		}
		pl, ok := c.expect(p, msgBatchDone, "batch done")
		if !ok {
			continue
		}
		batch, dg, err := decodeBatchDone(pl)
		if err != nil || batch != c.batch {
			c.markDead(p, fmt.Errorf("dist: worker %d: bad batch-done (batch %d, want %d): %v", p.rank, batch, c.batch, err))
			continue
		}
		if dg != want {
			c.markDead(p, fmt.Errorf("dist: worker %d diverged on batch %d: digest %#x, want %#x", p.rank, c.batch, dg, want))
		}
	}
}

// Exchange implements core.Exchanger for the coordinator side of a site.
// See the package comment for the failure model.
func (c *Coordinator) Exchange(class cluster.OpClass, n int, compute func(lo, hi int) ([]byte, error), merge func(lo, hi int, payload []byte) error) error {
	seq := c.seq
	c.seq++
	parts := c.batchLive // frozen; may contain peers that died mid-batch
	spans := assignSpans(n, len(parts)+1)
	payloads := make([][]byte, len(spans))

	// Own span first: the workers compute theirs concurrently.
	own, err := compute(spans[0][0], spans[0][1])
	if err != nil {
		return err
	}
	payloads[0] = own

	// Collect worker spans in rank order; a dead worker's span is
	// re-dispatched to a survivor or computed locally.
	for i, w := range parts {
		lo, hi := spans[i+1][0], spans[i+1][1]
		if pl, ok := c.awaitSpan(w, seq, lo, hi); ok {
			payloads[i+1] = pl
			continue
		}
		pl, err := c.redispatch(parts, spans, i, seq, compute)
		if err != nil {
			return err
		}
		payloads[i+1] = pl
	}

	// Merge in ascending span order. A payload the site rejects means the
	// worker that produced it is unsound: expel it and recompute locally
	// (decoders validate before mutating, so the re-merge is clean).
	for i := range spans {
		lo, hi := spans[i][0], spans[i][1]
		if err := merge(lo, hi, payloads[i]); err != nil {
			if i == 0 {
				return err // our own payload: a local bug, not a peer failure
			}
			c.markDead(parts[i-1], fmt.Errorf("dist: worker %d sent unmergeable span: %w", parts[i-1].rank, err))
			pl, cerr := compute(lo, hi)
			if cerr != nil {
				return cerr
			}
			payloads[i] = pl
			if err := merge(lo, hi, pl); err != nil {
				return err
			}
		}
	}

	// Broadcast the complete merged site so every surviving replica applies
	// the identical bytes.
	mp := encodeMerged(seq, spans, payloads)
	for _, w := range parts {
		if !w.dead {
			if err := c.send(w, msgMerged, mp); err != nil {
				c.cfg.Logf("dist: seq %d: merged broadcast to worker %d: %v", seq, w.rank, err)
			}
		}
	}
	return nil
}

// redispatch recovers the dead worker deadIdx's span: first over the wire to
// a survivor (round-robin from the dead rank), falling back to local
// compute. Survivors whose own span is still in flight are drained first —
// on synchronous in-memory pipes, writing a compute request to a worker that
// is itself blocked writing its span would deadlock.
func (c *Coordinator) redispatch(parts []*peer, spans [][2]int, deadIdx int, seq uint64, compute func(lo, hi int) ([]byte, error)) ([]byte, error) {
	lo, hi := spans[deadIdx+1][0], spans[deadIdx+1][1]
	c.redispatched++
	if hi > lo { // empty spans are not worth a round-trip
		for off := 1; off < len(parts); off++ {
			j := (deadIdx + off) % len(parts)
			s := parts[j]
			if s.dead {
				continue
			}
			if j > deadIdx {
				ownLo, ownHi := spans[j+1][0], spans[j+1][1]
				pl, ok := c.awaitSpan(s, seq, ownLo, ownHi)
				if !ok {
					continue // died while draining
				}
				s.pending = append(s.pending, spanMsg{seq: seq, lo: ownLo, hi: ownHi, payload: pl})
			}
			if err := c.send(s, msgCompute, encodeCompute(seq, lo, hi)); err != nil {
				continue
			}
			if pl, ok := c.awaitSpan(s, seq, lo, hi); ok {
				c.redispatchedRemote++
				c.cfg.Logf("dist: seq %d: span [%d,%d) of dead worker %d recomputed by worker %d",
					seq, lo, hi, parts[deadIdx].rank, s.rank)
				return pl, nil
			}
		}
	}
	return compute(lo, hi)
}

// awaitSpan returns the (seq, lo, hi) span payload from w: from the pending
// stash if already read, else from the wire with deadline escalation. A
// false return means w is now dead.
func (c *Coordinator) awaitSpan(w *peer, seq uint64, lo, hi int) ([]byte, bool) {
	for i, sm := range w.pending {
		if sm.seq == seq && sm.lo == lo && sm.hi == hi {
			w.pending = append(w.pending[:i], w.pending[i+1:]...)
			return sm.payload, true
		}
	}
	if w.dead {
		return nil, false
	}
	deadline := c.cfg.SpanDeadline
	for attempt := 0; ; attempt++ {
		typ, pl, err := c.recv(w, deadline)
		if err != nil {
			if isTimeout(err) && attempt < c.cfg.Retries {
				deadline *= 2 // exponential escalation before declaring death
				continue
			}
			c.markDead(w, err)
			return nil, false
		}
		switch typ {
		case msgSpan:
			sm, err := decodeSpan(pl)
			if err != nil || sm.seq != seq {
				c.markDead(w, fmt.Errorf("dist: worker %d: bad span frame (seq %d, want %d): %v", w.rank, sm.seq, seq, err))
				return nil, false
			}
			if sm.lo == lo && sm.hi == hi {
				return sm.payload, true
			}
			// Its own span arriving while we await a re-dispatched one
			// (or vice versa): stash for the other collection turn.
			w.pending = append(w.pending, sm)
		case msgPong:
			// Stale heartbeat reply; the frame already refreshed lastHeard.
		case msgError:
			c.markDead(w, fmt.Errorf("dist: worker %d failed: %s", w.rank, pl))
			return nil, false
		default:
			c.markDead(w, fmt.Errorf("dist: worker %d: unexpected frame type %d mid-site", w.rank, typ))
			return nil, false
		}
	}
}

// expect reads frames from w until one of the wanted type arrives, tolerating
// stale pongs, with the same escalation-then-death policy as awaitSpan.
func (c *Coordinator) expect(w *peer, want byte, what string) ([]byte, bool) {
	deadline := c.cfg.SpanDeadline
	for attempt := 0; ; attempt++ {
		typ, pl, err := c.recv(w, deadline)
		if err != nil {
			if isTimeout(err) && attempt < c.cfg.Retries {
				deadline *= 2
				continue
			}
			c.markDead(w, fmt.Errorf("dist: worker %d: awaiting %s: %w", w.rank, what, err))
			return nil, false
		}
		switch typ {
		case want:
			return pl, true
		case msgPong:
		case msgError:
			c.markDead(w, fmt.Errorf("dist: worker %d failed: %s", w.rank, pl))
			return nil, false
		default:
			c.markDead(w, fmt.Errorf("dist: worker %d: unexpected frame type %d awaiting %s", w.rank, typ, what))
			return nil, false
		}
	}
}

// MinRows implements core.Exchanger.
func (c *Coordinator) MinRows() int { return c.cfg.MinRows }

// WireStats implements core.Exchanger: cumulative measured wire traffic.
// Worker→coordinator frames are shuffle (collection), coordinator→worker
// frames are broadcast (fan-out); their sum is exactly the bytes on the wire.
func (c *Coordinator) WireStats() (shuffle, broadcast int64) {
	return c.metrics.WireShuffleBytes(), c.metrics.WireBroadcastBytes()
}

// LiveWorkers reports how many workers are still considered alive.
func (c *Coordinator) LiveWorkers() int {
	n := 0
	for _, p := range c.peers {
		if !p.dead {
			n++
		}
	}
	return n
}

// Redispatched reports how many spans of dead workers were recovered, and how
// many of those a surviving worker computed (the rest fell back to the
// coordinator).
func (c *Coordinator) Redispatched() (total, remote int) {
	return c.redispatched, c.redispatchedRemote
}

// WorkerErrors returns the death cause of each dead worker, keyed by rank.
func (c *Coordinator) WorkerErrors() map[int]error {
	m := make(map[int]error)
	for _, p := range c.peers {
		if p.dead {
			m[p.rank] = p.err
		}
	}
	return m
}

// Close sends an orderly shutdown to live workers and closes every
// connection. Safe to call more than once. The shutdown frame is a
// courtesy — workers treat a closed connection between batches as orderly
// too — so it gets a short deadline rather than the full silent-worker
// patience: a peer stuck mid-write (e.g. an unread setup reply on a
// synchronous pipe) must not stall Close.
func (c *Coordinator) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, p := range c.peers {
		if !p.dead {
			p.conn.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
			if writeFrame(p.conn, msgShutdown, nil) == nil {
				c.metrics.RecordWireBroadcast(frameOverhead)
			}
		}
		p.conn.Close()
	}
	return nil
}

func (c *Coordinator) markDead(p *peer, err error) {
	if p.dead {
		return
	}
	p.dead = true
	p.err = err
	p.conn.Close()
	c.cfg.Logf("dist: worker %d declared dead: %v", p.rank, err)
}

// send writes one frame to p, recording its bytes as broadcast traffic. A
// write failure kills the peer.
func (c *Coordinator) send(p *peer, typ byte, payload []byte) error {
	if p.dead {
		return fmt.Errorf("dist: worker %d is dead", p.rank)
	}
	p.conn.SetWriteDeadline(time.Now().Add(c.cfg.maxWait()))
	if err := writeFrame(p.conn, typ, payload); err != nil {
		c.markDead(p, err)
		return err
	}
	c.metrics.RecordWireBroadcast(frameOverhead + len(payload))
	return nil
}

// recv reads one frame from p under the given deadline, recording its bytes
// as shuffle traffic. Timeouts are returned to the caller for escalation;
// they do not kill the peer here.
func (c *Coordinator) recv(p *peer, deadline time.Duration) (byte, []byte, error) {
	if p.dead {
		return 0, nil, fmt.Errorf("dist: worker %d is dead", p.rank)
	}
	p.conn.SetReadDeadline(time.Now().Add(deadline))
	typ, pl, err := readFrame(p.conn)
	if err != nil {
		return 0, nil, err
	}
	p.lastHeard = time.Now()
	c.metrics.RecordWireShuffle(frameOverhead + len(pl))
	return typ, pl, nil
}

var _ core.Exchanger = (*Coordinator)(nil)
var _ core.Exchanger = (*workerSession)(nil)
