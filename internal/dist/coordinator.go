// The coordinator side: owns the worker connections, drives the lockstep
// batch protocol around its own engine replica, and implements the engine's
// core.Exchanger by collecting worker spans, merging in span order, and
// broadcasting the merged site back.
//
// Failure model (the §5.1 story carried onto the wire): the coordinator is
// the single failure detector. A worker is declared dead on a connection
// error or when a span/pong/batch-done read times out after the per-task
// deadline has been exponentially escalated Retries times. A worker that
// dies mid-batch stays in that batch's frozen span assignment — span
// boundaries never shift mid-flight — and its spans are re-dispatched:
// shipped to a surviving worker (round-robin from the dead rank) or, when
// none can take them, computed by the coordinator itself. Either way the
// merged site holds byte-identical payloads to the all-alive run, because
// every span is a pure function of the replicated batch state — which is the
// whole re-dispatch determinism argument. Dead workers are dropped from the
// next batch's frozen live set.
//
// Membership is elastic in the other direction too: new workers admitted via
// Admit (or an AcceptJoiners listener) are handed the retained replica
// blueprint plus a catch-up count, replay every completed batch locally in
// self-exchange mode, prove convergence against the coordinator's last
// result digest, and enter the next batch's frozen live set at a fresh,
// never-reused rank. Because replay is deterministic and span-decomposition
// insensitive, a joiner's replica is bit-identical to one that was present
// from the start.
//
// Span sizing is cost-driven: every span frame carries the sender's measured
// compute nanos, each peer (and the coordinator itself) feeds a
// cluster.CostModel EWMA, and each batch freezes a weight vector — announced
// in msgStep — from which all replicas derive the same weightedSpans
// assignment. A persistently slow worker gets proportionally smaller spans
// before deadline escalation ever has to expel it. Weights affect placement
// only, never merged bytes.
package dist

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"iolap/internal/agg"
	"iolap/internal/cluster"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/expr"
	"iolap/internal/rel"
	"iolap/internal/sql"
)

// Config tunes coordinator failure detection. The zero value is ready to use.
type Config struct {
	// MinRows is the smallest operator site worth distributing (default
	// 32). Shipped to workers in Setup so every replica gates identically.
	MinRows int
	// SpanDeadline is the initial read deadline when awaiting a span or
	// acknowledgement from a worker (default 2s). Each expiry doubles it.
	SpanDeadline time.Duration
	// Retries is how many deadline escalations a silent worker is granted
	// before being declared dead (default 3: total patience is
	// SpanDeadline·(2^(Retries+1)−1)).
	Retries int
	// HeartbeatInterval is the worker-idle span after which the coordinator
	// pings before starting a batch (default 30s). Heartbeats only run
	// between batches, where a dead worker can still be dropped from the
	// next frozen live set cheaply.
	HeartbeatInterval time.Duration
	// SetupDeadline bounds the wait for a worker to build its replica
	// (default 60s — setup decodes whole tables and compiles the plan, and
	// for a mid-query joiner also covers the catch-up replay).
	SetupDeadline time.Duration
	// Logf, when set, receives diagnostics (default: discard).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.MinRows <= 0 {
		c.MinRows = 32
	}
	if c.SpanDeadline <= 0 {
		c.SpanDeadline = 2 * time.Second
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 30 * time.Second
	}
	if c.SetupDeadline <= 0 {
		c.SetupDeadline = 60 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// maxWait is the total patience granted a silent worker.
func (c Config) maxWait() time.Duration {
	d := c.SpanDeadline
	total := time.Duration(0)
	for i := 0; i <= c.Retries; i++ {
		total += d
		d *= 2
	}
	return total
}

// Span-weight scale: the coordinator's own weight is weightScale, a worker's
// is weightScale scaled by the ratio of mean per-row cost estimates, clamped
// to [1, weightMax]. Both ends seed identical cold-start priors, so the
// ratio starts at 1 and only drifts on real measurements.
const (
	weightScale = 16
	weightMax   = 64
)

// peer is one worker connection plus its liveness state.
type peer struct {
	rank      int // participant rank (1-based; 0 is the coordinator itself)
	conn      net.Conn
	dead      bool
	err       error     // why it died
	lastHeard time.Time // last frame received (heartbeat bookkeeping)
	// pending stashes current-seq span frames read while awaiting a
	// different span from this worker (its own span arriving while it
	// serves a re-dispatched compute request).
	pending []spanMsg
	// cost tracks this worker's measured per-row compute cost (EWMA over
	// the nanos its span frames report), driving its span weight.
	cost *cluster.CostModel
	// rbuf is the connection's reusable frame-read buffer; recv's payloads
	// alias it and are consumed (decoded with copying readers) before the
	// next recv on the same peer.
	rbuf []byte
}

// Coordinator drives a set of remote workers in lockstep with a local engine
// replica. It implements core.Exchanger; plug it into core.Options.Exchange
// of the engine whose Step it drives. The protocol runs on the engine
// goroutine, but Admit and Close are safe to call concurrently with it.
type Coordinator struct {
	cfg   Config
	batch int
	seq   uint64
	// batchLive is the frozen membership of the in-flight batch: the peers
	// whose ranks were announced in msgStep, in rank order, including any
	// that died after the freeze.
	batchLive []*peer
	// batchWeights is the frozen span-weight vector of the in-flight batch:
	// index 0 is the coordinator, index i+1 the peer at batchLive[i].
	batchWeights []int

	// mu guards peers (the slice and each peer's dead/err), closed, and the
	// membership counters — the fields that Close and Admit-driven joins
	// touch off the engine goroutine.
	mu    sync.Mutex
	peers []*peer
	// nextRank is the rank the next admitted joiner receives. Ranks are
	// never reused: a rank identifies one replica incarnation, and reusing
	// one after expulsion would let a stale frame merge.
	nextRank int

	metrics            cluster.Metrics // wire byte counters only
	redispatched       int             // spans of dead workers handled (any way)
	redispatchedRemote int             // of those, spans shipped to a survivor

	selfCost *cluster.CostModel // the coordinator replica's own measured cost

	// Replica blueprint, retained from Setup so mid-query joiners can be
	// handed the same construction inputs plus a catch-up count.
	bpDB       *exec.DB
	bpStreamed map[string]bool
	bpSQL      string
	bpOpts     core.Options
	// partParts maps each partitioned table to its P hash partitions;
	// initial worker rank r ≤ P is shipped only partition r-1.
	partParts map[string][]*rel.Relation

	completed  int    // batches fully finished (joiner catch-up count)
	lastDigest uint64 // result digest of the last completed batch

	joinMu  sync.Mutex
	joiners []net.Conn // admitted but not yet set-up connections

	setup  bool
	closed bool
}

// NewCoordinator wraps already-dialed worker connections. Connection order
// fixes worker ranks (conns[i] is rank i+1), so pass the same order every
// run for reproducible placement.
func NewCoordinator(conns []net.Conn, cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg.withDefaults(), selfCost: cluster.NewCostModel(0)}
	for i, conn := range conns {
		c.peers = append(c.peers, &peer{rank: i + 1, conn: conn, cost: cluster.NewCostModel(0)})
	}
	c.nextRank = len(conns) + 1
	return c
}

// Setup ships the replica blueprint — tables, streamed flags, SQL text and
// the result-relevant engine options — to every worker and waits for each to
// build its engine. Any worker failing setup fails the whole call: a
// mis-provisioned cluster should be loud, not silently smaller. When
// opts.PartitionTables is set, the named build-side tables are hash-
// partitioned here and each initial worker rank r ≤ opts.Partitions receives
// only partition r-1 of them, shrinking setup wire bytes; every other table
// (and every later joiner) ships whole.
func (c *Coordinator) Setup(db *exec.DB, streamed map[string]bool, sqlText string, opts core.Options) error {
	if c.setup {
		return fmt.Errorf("dist: coordinator already set up")
	}
	c.setup = true
	c.bpDB, c.bpStreamed, c.bpSQL, c.bpOpts = db, streamed, sqlText, opts
	if len(opts.PartitionTables) > 0 {
		if err := c.partitionTables(db, streamed, sqlText, opts); err != nil {
			return err
		}
	}
	for _, p := range c.peers {
		payload, err := encodeSetup(p.rank, c.cfg.MinRows, opts, sqlText, db, streamed, 0, 0, 0, c.sliceFor(p.rank))
		if err != nil {
			return err
		}
		if err := c.send(p, msgSetup, payload); err != nil {
			return fmt.Errorf("dist: setup worker %d: %w", p.rank, err)
		}
	}
	for _, p := range c.peers {
		typ, pl, err := c.recv(p, c.cfg.SetupDeadline)
		if err != nil {
			return fmt.Errorf("dist: setup worker %d: %w", p.rank, err)
		}
		switch typ {
		case msgSetupOK:
		case msgError:
			return fmt.Errorf("dist: worker %d setup failed: %s", p.rank, pl)
		default:
			return fmt.Errorf("dist: worker %d: unexpected frame type %d during setup", p.rank, typ)
		}
	}
	return nil
}

// partitionTables validates the partitioned-shipping request against the
// query plan (the same core.PartitionKeys check every replica's compile
// performs) and slices each eligible table into opts.Partitions hash
// partitions by its join key.
func (c *Coordinator) partitionTables(db *exec.DB, streamed map[string]bool, sqlText string, opts core.Options) error {
	cat := sql.NewCatalog()
	for _, name := range db.Tables() {
		r, ok := db.Get(name)
		if !ok {
			return fmt.Errorf("dist: table %q vanished during setup", name)
		}
		cat.AddTable(name, r.Schema, streamed[name])
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return fmt.Errorf("dist: partition setup parse: %w", err)
	}
	node, _, err := sql.NewPlanner(cat, expr.NewRegistry(), agg.NewRegistry()).Plan(stmt)
	if err != nil {
		return fmt.Errorf("dist: partition setup plan: %w", err)
	}
	keys, err := core.PartitionKeys(node, opts)
	if err != nil {
		return err
	}
	c.partParts = make(map[string][]*rel.Relation, len(keys))
	for name, cols := range keys {
		r, ok := db.Get(name)
		if !ok {
			return fmt.Errorf("dist: table %q vanished during setup", name)
		}
		c.partParts[name] = cluster.PartitionByKey(r, cols, opts.Partitions)
	}
	return nil
}

// sliceFor returns the per-table partition overrides for a worker rank, or
// nil when the rank owns no partition (rank 0, ranks beyond P, and every
// joiner — joiners need full tables for the catch-up replay).
func (c *Coordinator) sliceFor(rank int) map[string]*rel.Relation {
	if len(c.partParts) == 0 || rank < 1 || rank > c.bpOpts.Partitions {
		return nil
	}
	m := make(map[string]*rel.Relation, len(c.partParts))
	for name, parts := range c.partParts {
		m[name] = parts[rank-1]
	}
	return m
}

// Admit queues a freshly-connected worker for admission at the next batch
// boundary. Safe to call from any goroutine (an accept loop, typically); the
// connection is handed the blueprint and replays completed batches inside
// the next beginBatch, before the live set freezes.
func (c *Coordinator) Admit(conn net.Conn) {
	c.joinMu.Lock()
	c.joiners = append(c.joiners, conn)
	c.joinMu.Unlock()
}

// AcceptJoiners runs an accept loop on l in a new goroutine, admitting every
// inbound connection. It stops when the listener is closed.
func (c *Coordinator) AcceptJoiners(l net.Listener) {
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			c.Admit(conn)
		}
	}()
}

// Step drives one lockstep mini-batch: freeze membership and announce the
// batch, step the local replica (whose distributed sites call back into
// Exchange), then collect and verify every worker's result digest.
func (c *Coordinator) Step(e *core.Engine) (*core.Update, error) {
	c.beginBatch()
	u, err := e.Step()
	if err != nil {
		return nil, err
	}
	c.finishBatch(u)
	return u, nil
}

// beginBatch admits queued joiners, runs the heartbeat sweep, freezes the
// live set and the span weights, and announces the batch. A send failure
// marks the worker dead but does not shrink the frozen set: the assignment
// is already announced to the survivors, so the dead worker's spans will be
// re-dispatched instead.
func (c *Coordinator) beginBatch() {
	c.batch++
	c.drainJoiners()
	c.heartbeat()
	c.mu.Lock()
	live := make([]*peer, 0, len(c.peers))
	ranks := make([]int, 0, len(c.peers))
	for _, p := range c.peers {
		if !p.dead {
			live = append(live, p)
			ranks = append(ranks, p.rank)
		}
	}
	c.mu.Unlock()
	c.batchLive = live
	c.batchWeights = c.computeWeights(live)
	payload := encodeStep(c.batch, ranks, c.batchWeights)
	for _, p := range live {
		if err := c.send(p, msgStep, payload); err != nil {
			c.cfg.Logf("dist: batch %d: announcing to worker %d: %v", c.batch, p.rank, err)
		}
	}
}

// drainJoiners admits every queued joiner connection. Runs before the live
// freeze, so a successful joiner participates in the batch about to start.
func (c *Coordinator) drainJoiners() {
	c.joinMu.Lock()
	pending := c.joiners
	c.joiners = nil
	c.joinMu.Unlock()
	for _, conn := range pending {
		if err := c.admitJoiner(conn); err != nil {
			c.cfg.Logf("dist: joiner rejected: %v", err)
		}
	}
}

// admitJoiner hands one new connection the replica blueprint (full tables —
// the replay probes every partition) with the catch-up count, the exchange
// sequence to adopt, and the digest its replay must reproduce, then waits
// for it to report ready. The joiner replays all completed batches before
// answering, so a msgSetupOK means its replica state is bit-identical to
// every incumbent's.
func (c *Coordinator) admitJoiner(conn net.Conn) error {
	if !c.setup {
		conn.Close()
		return fmt.Errorf("dist: joiner before setup")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return fmt.Errorf("dist: coordinator closed")
	}
	rank := c.nextRank
	c.nextRank++
	p := &peer{rank: rank, conn: conn, cost: cluster.NewCostModel(0), lastHeard: time.Now()}
	c.peers = append(c.peers, p)
	c.mu.Unlock()
	payload, err := encodeSetup(rank, c.cfg.MinRows, c.bpOpts, c.bpSQL, c.bpDB, c.bpStreamed, c.completed, c.seq, c.lastDigest, nil)
	if err != nil {
		c.markDead(p, err)
		return err
	}
	if err := c.send(p, msgSetup, payload); err != nil {
		return fmt.Errorf("dist: joiner rank %d setup: %w", rank, err)
	}
	typ, pl, err := c.recv(p, c.cfg.SetupDeadline)
	if err != nil {
		err = fmt.Errorf("dist: joiner rank %d setup: %w", rank, err)
		c.markDead(p, err)
		return err
	}
	switch typ {
	case msgSetupOK:
		c.cfg.Logf("dist: worker %d joined at batch %d (replayed %d)", rank, c.batch, c.completed)
		return nil
	case msgError:
		err := fmt.Errorf("dist: joiner rank %d setup failed: %s", rank, pl)
		c.markDead(p, err)
		return err
	default:
		err := fmt.Errorf("dist: joiner rank %d: unexpected frame type %d during setup", rank, typ)
		c.markDead(p, err)
		return err
	}
}

// heartbeat pings workers that have been silent past the interval. Runs only
// between batches (mid-batch silence is covered by span deadlines).
func (c *Coordinator) heartbeat() {
	c.mu.Lock()
	peers := append([]*peer(nil), c.peers...)
	c.mu.Unlock()
	for _, p := range peers {
		if p.dead || time.Since(p.lastHeard) < c.cfg.HeartbeatInterval {
			continue
		}
		if err := c.send(p, msgPing, nil); err != nil {
			continue
		}
		c.expect(p, msgPong, "heartbeat")
	}
}

// computeWeights freezes the batch's span-weight vector: the coordinator at
// weightScale, each live worker at the cost-estimate ratio. Mean per-row
// nanos over every op class is the slowness signal — classes a pair never
// exercised contribute identical cold-start priors to both sides, so they
// pull the ratio toward 1 rather than injecting noise.
func (c *Coordinator) computeWeights(live []*peer) []int {
	ws := make([]int, len(live)+1)
	ws[0] = weightScale
	self := avgPerRowNs(c.selfCost)
	for i, p := range live {
		w := weightScale
		if pa := avgPerRowNs(p.cost); pa > 0 && self > 0 {
			w = int(math.Round(weightScale * self / pa))
		}
		if w < 1 {
			w = 1
		}
		if w > weightMax {
			w = weightMax
		}
		ws[i+1] = w
	}
	return ws
}

// avgPerRowNs is the mean per-row EWMA estimate across all operator classes.
func avgPerRowNs(m *cluster.CostModel) float64 {
	snap := m.Snapshot()
	if len(snap) == 0 {
		return 0
	}
	var sum float64
	for _, v := range snap {
		sum += v
	}
	return sum / float64(len(snap))
}

// finishBatch collects each live worker's msgBatchDone and compares digests.
// A diverging worker is expelled: its replica can no longer be trusted to
// compute spans, and every later batch it touched would be corrupt.
func (c *Coordinator) finishBatch(u *core.Update) {
	var want uint64
	if u != nil {
		dg, err := resultDigest(u)
		if err != nil {
			c.cfg.Logf("dist: batch %d: local digest: %v", c.batch, err)
			return
		}
		want = dg
	}
	for _, p := range c.batchLive {
		if p.dead {
			continue
		}
		pl, ok := c.expect(p, msgBatchDone, "batch done")
		if !ok {
			continue
		}
		batch, dg, err := decodeBatchDone(pl)
		if err != nil || batch != c.batch {
			c.markDead(p, fmt.Errorf("dist: worker %d: bad batch-done (batch %d, want %d): %v", p.rank, batch, c.batch, err))
			continue
		}
		if dg != want {
			c.markDead(p, fmt.Errorf("dist: worker %d diverged on batch %d: digest %#x, want %#x", p.rank, c.batch, dg, want))
		}
	}
	c.completed = c.batch
	c.lastDigest = want
}

// Exchange implements core.Exchanger for the coordinator side of a site.
// See the package comment for the failure model.
func (c *Coordinator) Exchange(class cluster.OpClass, n int, compute func(lo, hi int) ([]byte, error), merge func(lo, hi int, payload []byte) error) error {
	seq := c.seq
	c.seq++
	parts := c.batchLive // frozen; may contain peers that died mid-batch
	if class == cluster.CostProbePart {
		return c.exchangePartitioned(seq, class, n, parts, compute, merge)
	}
	var spans [][2]int
	if len(c.batchWeights) == len(parts)+1 {
		spans = weightedSpans(n, c.batchWeights)
	} else {
		spans = assignSpans(n, len(parts)+1)
	}
	payloads := make([][]byte, len(spans))

	// Own span first: the workers compute theirs concurrently.
	t0 := time.Now()
	own, err := compute(spans[0][0], spans[0][1])
	if err != nil {
		return err
	}
	c.selfCost.Observe(class, spans[0][1]-spans[0][0], time.Since(t0), 1)
	payloads[0] = own

	// Collect worker spans in rank order; a dead worker's span is
	// re-dispatched to a survivor or computed locally.
	for i, w := range parts {
		lo, hi := spans[i+1][0], spans[i+1][1]
		if pl, nanos, ok := c.awaitSpan(w, seq, lo, hi); ok {
			payloads[i+1] = pl
			w.cost.Observe(class, hi-lo, time.Duration(nanos), 1)
			continue
		}
		pl, err := c.redispatch(parts, spans, i, seq, class, compute)
		if err != nil {
			return err
		}
		payloads[i+1] = pl
	}

	// Merge in ascending span order. A payload the site rejects means the
	// worker that produced it is unsound: expel it and recompute locally
	// (decoders validate before mutating, so the re-merge is clean).
	for i := range spans {
		lo, hi := spans[i][0], spans[i][1]
		if err := merge(lo, hi, payloads[i]); err != nil {
			if i == 0 {
				return err // our own payload: a local bug, not a peer failure
			}
			c.markDead(parts[i-1], fmt.Errorf("dist: worker %d sent unmergeable span: %w", parts[i-1].rank, err))
			pl, cerr := compute(lo, hi)
			if cerr != nil {
				return cerr
			}
			payloads[i] = pl
			if err := merge(lo, hi, pl); err != nil {
				return err
			}
		}
	}

	// Broadcast the complete merged site so every surviving replica applies
	// the identical bytes.
	mp := encodeMerged(seq, spans, payloads, c.bpOpts.WireCompression)
	for _, w := range parts {
		if !w.dead {
			if err := c.send(w, msgMerged, mp); err != nil {
				c.cfg.Logf("dist: seq %d: merged broadcast to worker %d: %v", seq, w.rank, err)
			}
		}
	}
	return nil
}

// exchangePartitioned runs a partitioned-probe site. The geometry is n hash
// buckets, not row spans: worker rank r (1 ≤ r ≤ n) owns bucket r-1 as the
// singleton span [r-1, r), every other live worker ships an empty [0, 0)
// span as a liveness marker, and the coordinator computes every orphaned
// bucket — one with no live owner — against its own full build store.
// Restricting a full-store probe to bucket b's probe rows yields exactly the
// partition-b results (all rows of a key hash to one bucket, per-key
// insertion order is preserved), so local recovery needs no partition state
// and partitioned spans are never re-dispatched to other workers, which in
// general hold only their own partition.
func (c *Coordinator) exchangePartitioned(seq uint64, class cluster.OpClass, n int, parts []*peer, compute func(lo, hi int) ([]byte, error), merge func(lo, hi int, payload []byte) error) error {
	payloads := make([][]byte, n)
	owner := make([]*peer, n) // frozen owner of each bucket, nil if none
	for _, w := range parts {
		lo, hi := 0, 0
		if w.rank >= 1 && w.rank <= n {
			lo, hi = w.rank-1, w.rank
			owner[lo] = w
		}
		pl, nanos, ok := c.awaitSpan(w, seq, lo, hi)
		if !ok {
			continue // a dead owner's bucket is recovered below
		}
		if hi > lo {
			payloads[lo] = pl
			w.cost.Observe(class, hi-lo, time.Duration(nanos), 1)
		}
	}
	spans := make([][2]int, n)
	for b := 0; b < n; b++ {
		spans[b] = [2]int{b, b + 1}
		if payloads[b] != nil {
			continue
		}
		if owner[b] != nil {
			c.redispatched++ // frozen owner died; the coordinator recovers its bucket
		}
		t0 := time.Now()
		pl, err := compute(b, b+1)
		if err != nil {
			return err
		}
		c.selfCost.Observe(class, 1, time.Since(t0), 1)
		payloads[b] = pl
	}
	for b := 0; b < n; b++ {
		if err := merge(b, b+1, payloads[b]); err != nil {
			if owner[b] == nil || owner[b].dead {
				return err // locally computed: a local bug, not a peer failure
			}
			c.markDead(owner[b], fmt.Errorf("dist: worker %d sent unmergeable bucket: %w", owner[b].rank, err))
			pl, cerr := compute(b, b+1)
			if cerr != nil {
				return cerr
			}
			payloads[b] = pl
			if err := merge(b, b+1, pl); err != nil {
				return err
			}
		}
	}
	mp := encodeMerged(seq, spans, payloads, c.bpOpts.WireCompression)
	for _, w := range parts {
		if !w.dead {
			if err := c.send(w, msgMerged, mp); err != nil {
				c.cfg.Logf("dist: seq %d: merged broadcast to worker %d: %v", seq, w.rank, err)
			}
		}
	}
	return nil
}

// redispatch recovers the dead worker deadIdx's span: first over the wire to
// a survivor (round-robin from the dead rank), falling back to local
// compute. Survivors whose own span is still in flight are drained first —
// on synchronous in-memory pipes, writing a compute request to a worker that
// is itself blocked writing its span would deadlock.
func (c *Coordinator) redispatch(parts []*peer, spans [][2]int, deadIdx int, seq uint64, class cluster.OpClass, compute func(lo, hi int) ([]byte, error)) ([]byte, error) {
	lo, hi := spans[deadIdx+1][0], spans[deadIdx+1][1]
	c.redispatched++
	if hi > lo { // empty spans are not worth a round-trip
		for off := 1; off < len(parts); off++ {
			j := (deadIdx + off) % len(parts)
			s := parts[j]
			if s.dead {
				continue
			}
			if j > deadIdx {
				ownLo, ownHi := spans[j+1][0], spans[j+1][1]
				pl, nanos, ok := c.awaitSpan(s, seq, ownLo, ownHi)
				if !ok {
					continue // died while draining
				}
				s.pending = append(s.pending, spanMsg{seq: seq, lo: ownLo, hi: ownHi, nanos: nanos, payload: pl})
			}
			if err := c.send(s, msgCompute, encodeCompute(seq, lo, hi)); err != nil {
				continue
			}
			if pl, nanos, ok := c.awaitSpan(s, seq, lo, hi); ok {
				c.redispatchedRemote++
				s.cost.Observe(class, hi-lo, time.Duration(nanos), 1)
				c.cfg.Logf("dist: seq %d: span [%d,%d) of dead worker %d recomputed by worker %d",
					seq, lo, hi, parts[deadIdx].rank, s.rank)
				return pl, nil
			}
		}
	}
	return compute(lo, hi)
}

// awaitSpan returns the (seq, lo, hi) span payload and its reported compute
// nanos from w: from the pending stash if already read, else from the wire
// with deadline escalation. A false return means w is now dead.
func (c *Coordinator) awaitSpan(w *peer, seq uint64, lo, hi int) ([]byte, uint64, bool) {
	for i, sm := range w.pending {
		if sm.seq == seq && sm.lo == lo && sm.hi == hi {
			w.pending = append(w.pending[:i], w.pending[i+1:]...)
			return sm.payload, sm.nanos, true
		}
	}
	if w.dead {
		return nil, 0, false
	}
	deadline := c.cfg.SpanDeadline
	for attempt := 0; ; attempt++ {
		typ, pl, err := c.recv(w, deadline)
		if err != nil {
			if isTimeout(err) && attempt < c.cfg.Retries {
				deadline *= 2 // exponential escalation before declaring death
				continue
			}
			c.markDead(w, err)
			return nil, 0, false
		}
		switch typ {
		case msgSpan:
			sm, err := decodeSpan(pl)
			if err != nil || sm.seq != seq {
				c.markDead(w, fmt.Errorf("dist: worker %d: bad span frame (seq %d, want %d): %v", w.rank, sm.seq, seq, err))
				return nil, 0, false
			}
			if sm.lo == lo && sm.hi == hi {
				return sm.payload, sm.nanos, true
			}
			// Its own span arriving while we await a re-dispatched one
			// (or vice versa): stash for the other collection turn.
			w.pending = append(w.pending, sm)
		case msgPong:
			// Stale heartbeat reply; the frame already refreshed lastHeard.
		case msgError:
			c.markDead(w, fmt.Errorf("dist: worker %d failed: %s", w.rank, pl))
			return nil, 0, false
		default:
			c.markDead(w, fmt.Errorf("dist: worker %d: unexpected frame type %d mid-site", w.rank, typ))
			return nil, 0, false
		}
	}
}

// expect reads frames from w until one of the wanted type arrives, tolerating
// stale pongs, with the same escalation-then-death policy as awaitSpan.
func (c *Coordinator) expect(w *peer, want byte, what string) ([]byte, bool) {
	deadline := c.cfg.SpanDeadline
	for attempt := 0; ; attempt++ {
		typ, pl, err := c.recv(w, deadline)
		if err != nil {
			if isTimeout(err) && attempt < c.cfg.Retries {
				deadline *= 2
				continue
			}
			c.markDead(w, fmt.Errorf("dist: worker %d: awaiting %s: %w", w.rank, what, err))
			return nil, false
		}
		switch typ {
		case want:
			return pl, true
		case msgPong:
		case msgError:
			c.markDead(w, fmt.Errorf("dist: worker %d failed: %s", w.rank, pl))
			return nil, false
		default:
			c.markDead(w, fmt.Errorf("dist: worker %d: unexpected frame type %d awaiting %s", w.rank, typ, what))
			return nil, false
		}
	}
}

// MinRows implements core.Exchanger.
func (c *Coordinator) MinRows() int { return c.cfg.MinRows }

// WireStats implements core.Exchanger: cumulative measured wire traffic.
// Worker→coordinator frames are shuffle (collection), coordinator→worker
// frames are broadcast (fan-out); their sum is exactly the bytes on the wire.
func (c *Coordinator) WireStats() (shuffle, broadcast int64) {
	return c.metrics.WireShuffleBytes(), c.metrics.WireBroadcastBytes()
}

// LiveWorkers reports how many workers are still considered alive.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.peers {
		if !p.dead {
			n++
		}
	}
	return n
}

// BatchWeights returns the span-weight vector frozen for the current batch
// (index 0 is the coordinator), for diagnostics and tests.
func (c *Coordinator) BatchWeights() []int {
	return append([]int(nil), c.batchWeights...)
}

// Redispatched reports how many spans of dead workers were recovered, and how
// many of those a surviving worker computed (the rest fell back to the
// coordinator).
func (c *Coordinator) Redispatched() (total, remote int) {
	return c.redispatched, c.redispatchedRemote
}

// WorkerErrors returns the death cause of each dead worker, keyed by rank.
func (c *Coordinator) WorkerErrors() map[int]error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[int]error)
	for _, p := range c.peers {
		if p.dead {
			m[p.rank] = p.err
		}
	}
	return m
}

// Close sends an orderly shutdown to live workers and closes every
// connection. Safe to call more than once and concurrently with an in-flight
// batch (the peer set and closed flag are snapshotted under the lock; the
// frame write itself is a single conn.Write, which net.Conn allows
// concurrently). The shutdown frame is a courtesy — workers treat a closed
// connection between batches as orderly too — so it gets a short deadline
// rather than the full silent-worker patience: a peer stuck mid-write (e.g.
// an unread setup reply on a synchronous pipe) must not stall Close.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	peers := make([]*peer, 0, len(c.peers))
	deadAt := make([]bool, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
		deadAt = append(deadAt, p.dead)
	}
	c.mu.Unlock()
	for i, p := range peers {
		if !deadAt[i] {
			p.conn.SetWriteDeadline(time.Now().Add(250 * time.Millisecond))
			if writeFrame(p.conn, msgShutdown, nil) == nil {
				c.metrics.RecordWireBroadcast(frameOverhead)
			}
		}
		p.conn.Close()
	}
	c.joinMu.Lock()
	pending := c.joiners
	c.joiners = nil
	c.joinMu.Unlock()
	for _, conn := range pending {
		conn.Close()
	}
	return nil
}

func (c *Coordinator) markDead(p *peer, err error) {
	c.mu.Lock()
	if p.dead {
		c.mu.Unlock()
		return
	}
	p.dead = true
	p.err = err
	c.mu.Unlock()
	p.conn.Close()
	c.cfg.Logf("dist: worker %d declared dead: %v", p.rank, err)
}

// send writes one frame to p, recording its bytes as broadcast traffic. A
// write failure kills the peer. The write deadline is cleared after a
// successful frame: a stale deadline left armed would poison later writes
// issued without one (Close's courtesy shutdown, external conn reuse).
func (c *Coordinator) send(p *peer, typ byte, payload []byte) error {
	if p.dead {
		return fmt.Errorf("dist: worker %d is dead", p.rank)
	}
	p.conn.SetWriteDeadline(time.Now().Add(c.cfg.maxWait()))
	if err := writeFrame(p.conn, typ, payload); err != nil {
		c.markDead(p, err)
		return err
	}
	p.conn.SetWriteDeadline(time.Time{})
	c.metrics.RecordWireBroadcast(frameOverhead + len(payload))
	return nil
}

// recv reads one frame from p under the given deadline, recording its bytes
// as shuffle traffic. Timeouts are returned to the caller for escalation;
// they do not kill the peer here. The read deadline is cleared after a
// successful frame so a slow-but-alive peer's next frame is judged against a
// freshly-armed deadline, never a stale expired one.
func (c *Coordinator) recv(p *peer, deadline time.Duration) (byte, []byte, error) {
	if p.dead {
		return 0, nil, fmt.Errorf("dist: worker %d is dead", p.rank)
	}
	p.conn.SetReadDeadline(time.Now().Add(deadline))
	typ, pl, err := readFrameReuse(p.conn, &p.rbuf)
	if err != nil {
		return 0, nil, err
	}
	p.conn.SetReadDeadline(time.Time{})
	p.lastHeard = time.Now()
	c.metrics.RecordWireShuffle(frameOverhead + len(pl))
	return typ, pl, nil
}

var _ core.Exchanger = (*Coordinator)(nil)
var _ core.Exchanger = (*workerSession)(nil)
