// Elastic-membership tests: mid-query worker join via catch-up replay,
// join/leave sweeps (the autoscaling extension of the kill sweep),
// partitioned table shipping, cost-driven span weights, and the dist-protocol
// hygiene fixes (deadline clearing, Close under concurrency).
package dist

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"iolap/internal/cluster"
	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/rel"
)

// joinWorker spins up a fresh pipe-backed worker and queues it for admission
// at the coordinator's next batch boundary. wrap, when non-nil, intercepts
// the coordinator-side conn (fault injection on the joiner's link).
func joinWorker(coord *Coordinator, wopts WorkerOptions, wrap func(net.Conn) net.Conn) {
	cConn, sConn := net.Pipe()
	go func() {
		ServeConn(sConn, wopts)
		sConn.Close()
	}()
	if wrap != nil {
		cConn2 := wrap(cConn)
		coord.Admit(cConn2)
		return
	}
	coord.Admit(cConn)
}

// batchHook runs fn after the given number of completed batches.
type batchHook struct {
	after int
	fn    func(coord *Coordinator)
}

// runDistHooks is runDist with membership events injected between batches.
func runDistHooks(t testing.TB, conns []net.Conn, db *exec.DB, query string, opts core.Options, cfg Config, hooks []batchHook) ([]summary, *Coordinator) {
	t.Helper()
	coord := NewCoordinator(conns, cfg)
	defer coord.Close()
	if err := coord.Setup(db, streamedTables, query, opts); err != nil {
		t.Fatalf("setup: %v", err)
	}
	opts.Exchange = coord
	eng := buildEngine(t, db, query, opts)
	defer eng.Close()
	var out []summary
	done := 0
	for !eng.Done() {
		u, err := coord.Step(eng)
		if err != nil {
			t.Fatalf("dist step: %v", err)
		}
		out = append(out, summarize(t, u))
		done++
		for _, h := range hooks {
			if h.after == done {
				h.fn(coord)
			}
		}
	}
	return out, coord
}

// TestWorkerJoinsMidQuery is the basic elastic case: a worker that connects
// after two batches replays them from the blueprint, proves convergence, and
// serves the rest of the run — with results bit-identical to the local
// oracle and to the never-joined run by construction.
func TestWorkerJoinsMidQuery(t *testing.T) {
	for _, q := range distQueries {
		q := q
		t.Run(q.name, func(t *testing.T) {
			local := runLocal(t, testDB(120, 11, 0), q.query, baseOpts())
			hooks := []batchHook{{after: 2, fn: func(c *Coordinator) { joinWorker(c, WorkerOptions{}, nil) }}}
			conns, stop := StartLoopback(1, WorkerOptions{})
			defer stop()
			got, coord := runDistHooks(t, conns, testDB(120, 11, 0), q.query, baseOpts(), forceDist(), hooks)
			assertSameRun(t, q.name+"/join", got, local)
			if lw := coord.LiveWorkers(); lw != 2 {
				t.Fatalf("live workers after join: %d, want 2", lw)
			}
			if errs := coord.WorkerErrors(); len(errs) != 0 {
				t.Fatalf("worker errors after clean join: %v", errs)
			}
		})
	}
}

// TestJoinLeaveSweep is the autoscaling acceptance sweep: join mid-run, kill
// mid-run, and join+kill, at initial worker counts 2, 4 and 8 — every
// combination bit-identical to the local Workers=1 oracle.
func TestJoinLeaveSweep(t *testing.T) {
	query := distQueries[1].query // join_dim_group: exercises row-span shipping
	local := runLocal(t, testDB(120, 11, 0), query, baseOpts())
	scenarios := []string{"join", "kill", "join_kill"}
	for _, workers := range []int{2, 4, 8} {
		for _, sc := range scenarios {
			name := sc + "_w" + itoa(workers)
			conns, stop := StartLoopback(workers, WorkerOptions{})
			wire := make([]net.Conn, workers)
			copy(wire, conns)
			kill := sc == "kill" || sc == "join_kill"
			if kill {
				fc := NewFaultConn(conns[0])
				fc.KillOnFault(true)
				fc.FailReadAt(12)
				wire[0] = fc
			}
			var hooks []batchHook
			if sc == "join" || sc == "join_kill" {
				hooks = append(hooks, batchHook{after: 2, fn: func(c *Coordinator) { joinWorker(c, WorkerOptions{}, nil) }})
			}
			cfg := forceDist()
			cfg.SpanDeadline = 100 * time.Millisecond
			cfg.Retries = 1
			got, coord := runDistHooks(t, wire, testDB(120, 11, 0), query, baseOpts(), cfg, hooks)
			assertSameRun(t, name, got, local)
			if kill && coord.LiveWorkers() >= workers+len(hooks) {
				t.Errorf("%s: fault never killed a worker", name)
			}
			stop()
		}
	}
}

// TestJoinerDiesAndRejoins covers the satellite case: a joiner whose link
// dies immediately after connecting must be rejected cleanly (logged, never
// in a live set), and a later healthy joiner must still be admitted — with
// results bit-identical throughout.
func TestJoinerDiesAndRejoins(t *testing.T) {
	query := distQueries[1].query
	local := runLocal(t, testDB(120, 11, 0), query, baseOpts())
	hooks := []batchHook{
		{after: 1, fn: func(c *Coordinator) {
			joinWorker(c, WorkerOptions{}, func(conn net.Conn) net.Conn {
				fc := NewFaultConn(conn)
				fc.KillOnFault(true)
				fc.FailReadAt(1) // dies before its setup reply is read
				return fc
			})
		}},
		{after: 3, fn: func(c *Coordinator) { joinWorker(c, WorkerOptions{}, nil) }},
	}
	conns, stop := StartLoopback(2, WorkerOptions{})
	defer stop()
	cfg := forceDist()
	cfg.SpanDeadline = 100 * time.Millisecond
	cfg.Retries = 1
	got, coord := runDistHooks(t, conns, testDB(120, 11, 0), query, baseOpts(), cfg, hooks)
	assertSameRun(t, "die_rejoin", got, local)
	// 2 initial + 1 rejoined survivor; the dead joiner must carry an error.
	if lw := coord.LiveWorkers(); lw != 3 {
		t.Fatalf("live workers: %d, want 3", lw)
	}
	if err := coord.WorkerErrors()[3]; err == nil {
		t.Fatal("dead joiner (rank 3) has no recorded error")
	}
}

// bigDB is the partitioned-shipping fixture: a fact table joining a build
// dimension large enough that shipping it whole to every worker dominates
// setup wire bytes.
func bigDB(nSessions, nCdns int, seed int64) *exec.DB {
	rng := rand.New(rand.NewSource(seed))
	db := exec.NewDB()
	r := rel.NewRelation(sessionsSchema())
	for i := 0; i < nSessions; i++ {
		r.Append(
			rel.String("s"+itoa(i)),
			rel.Float(float64(10+rng.Intn(500))/10),
			rel.Float(float64(300+rng.Intn(6000))/10),
			rel.String("c"+itoa(rng.Intn(nCdns))),
		)
	}
	db.Put("sessions", r)
	cdns := rel.NewRelation(cdnsSchema())
	for i := 0; i < nCdns; i++ {
		cdns.Append(rel.String("c"+itoa(i)), rel.String("r"+itoa(i%8)))
	}
	db.Put("cdns", cdns)
	return db
}

// runDistOpts is runDist but records the post-setup wire broadcast bytes, so
// the partitioned-shipping saving can be isolated from batch traffic.
func runDistSetupBytes(t testing.TB, conns []net.Conn, db *exec.DB, query string, opts core.Options, cfg Config) ([]summary, int64) {
	t.Helper()
	coord := NewCoordinator(conns, cfg)
	defer coord.Close()
	if err := coord.Setup(db, streamedTables, query, opts); err != nil {
		t.Fatalf("setup: %v", err)
	}
	_, setupBytes := coord.WireStats()
	opts.Exchange = coord
	eng := buildEngine(t, db, query, opts)
	defer eng.Close()
	var out []summary
	for !eng.Done() {
		u, err := coord.Step(eng)
		if err != nil {
			t.Fatalf("dist step: %v", err)
		}
		out = append(out, summarize(t, u))
	}
	return out, setupBytes
}

// TestPartitionedShippingEquivalenceAndWireSavings runs the dim-join with the
// build table shipped whole (replicated) and hash-partitioned, checks both
// against the local oracle bit-for-bit, and checks that partitioned setup
// ships measurably fewer bytes.
func TestPartitionedShippingEquivalenceAndWireSavings(t *testing.T) {
	query := distQueries[1].query
	const workers = 4
	popts := baseOpts()
	popts.PartitionTables = []string{"cdns"}
	popts.Partitions = workers

	// Partition options must not perturb the local oracle.
	local := runLocal(t, bigDB(160, 64, 9), query, baseOpts())
	localPart := runLocal(t, bigDB(160, 64, 9), query, popts)
	assertSameRun(t, "local_part_vs_local", localPart, local)

	connsR, stopR := StartLoopback(workers, WorkerOptions{})
	gotR, setupRepl := runDistSetupBytes(t, connsR, bigDB(160, 64, 9), query, baseOpts(), forceDist())
	stopR()
	assertSameRun(t, "replicated", gotR, local)

	connsP, stopP := StartLoopback(workers, WorkerOptions{})
	gotP, setupPart := runDistSetupBytes(t, connsP, bigDB(160, 64, 9), query, popts, forceDist())
	stopP()
	assertSameRun(t, "partitioned", gotP, local)

	if setupPart >= setupRepl {
		t.Fatalf("partitioned setup shipped %d bytes, replicated %d: no saving", setupPart, setupRepl)
	}
	t.Logf("setup broadcast: replicated %d B, partitioned %d B (%.1f%% saved)",
		setupRepl, setupPart, 100*(1-float64(setupPart)/float64(setupRepl)))
}

// TestPartitionedElasticKillAndJoin exercises the partitioned geometry under
// membership churn: the owner of bucket 0 dies mid-run (the coordinator must
// recover the orphaned bucket from its full store) and a full-table joiner
// arrives — results stay bit-identical at every fault point. At least one
// fault point must land mid-exchange, so the frozen-owner redispatch path is
// exercised, not just the already-dead orphan path.
func TestPartitionedElasticKillAndJoin(t *testing.T) {
	query := distQueries[1].query
	const workers = 2
	popts := baseOpts()
	popts.PartitionTables = []string{"cdns"}
	popts.Partitions = workers
	local := runLocal(t, bigDB(160, 64, 9), query, popts)

	sawRedispatch := false
	for failAt := 8; failAt <= 28; failAt += 4 {
		conns, stop := StartLoopback(workers, WorkerOptions{})
		fc := NewFaultConn(conns[0]) // rank 1: owner of bucket 0
		fc.KillOnFault(true)
		fc.FailReadAt(failAt)
		cfg := forceDist()
		cfg.SpanDeadline = 100 * time.Millisecond
		cfg.Retries = 1
		hooks := []batchHook{{after: 2, fn: func(c *Coordinator) { joinWorker(c, WorkerOptions{}, nil) }}}
		got, coord := runDistHooks(t, []net.Conn{fc, conns[1]}, bigDB(160, 64, 9), query, popts, cfg, hooks)
		assertSameRun(t, "part_kill_join_"+itoa(failAt), got, local)
		if coord.LiveWorkers() >= workers+1 {
			t.Errorf("failAt=%d: fault never killed the bucket owner", failAt)
		}
		if total, _ := coord.Redispatched(); total > 0 {
			sawRedispatch = true
		}
		stop()
	}
	if !sawRedispatch {
		t.Error("no fault point landed mid-exchange: orphaned-bucket recovery never counted a frozen owner")
	}
}

// TestPartitionSetupRejectsIneligible: asking to partition a table that is
// not a static build side must fail Setup loudly, not silently replicate.
func TestPartitionSetupRejectsIneligible(t *testing.T) {
	popts := baseOpts()
	popts.PartitionTables = []string{"sessions"} // streamed probe side
	popts.Partitions = 2
	conns, stop := StartLoopback(1, WorkerOptions{})
	defer stop()
	coord := NewCoordinator(conns, forceDist())
	defer coord.Close()
	if err := coord.Setup(testDB(30, 1, 0), streamedTables, distQueries[1].query, popts); err == nil {
		t.Fatal("partitioning a streamed table must fail setup")
	}
}

// TestSlowButAliveWorkerSurvives: a worker whose frames arrive late — but
// inside the escalated deadline budget — must never be declared dead, and
// the run must stay bit-identical. This is the regression guard for the
// sticky-deadline fix: every await arms a fresh deadline, so one slow frame
// cannot poison the next read.
func TestSlowButAliveWorkerSurvives(t *testing.T) {
	query := distQueries[0].query
	opts := baseOpts()
	opts.Batches = 3
	local := runLocal(t, testDB(60, 2, 0), query, opts)

	cConn, sConn := net.Pipe()
	slow := NewFaultConn(sConn)
	// Every frame after setup-ok arrives 45ms late: past the first two
	// deadline attempts (expiring at 10ms and 30ms) and safely inside the
	// third (30..70ms), so no deadline can expire mid-frame.
	slow.DelayWritesFrom(2, 45*time.Millisecond)
	go func() {
		ServeConn(slow, WorkerOptions{})
		sConn.Close()
	}()
	cfg := forceDist()
	cfg.SpanDeadline = 10 * time.Millisecond
	cfg.Retries = 3 // patience 10+20+40+80 = 150ms per frame
	got, coord := runDist(t, []net.Conn{cConn}, testDB(60, 2, 0), query, opts, cfg)
	assertSameRun(t, "slow_alive", got, local)
	if lw := coord.LiveWorkers(); lw != 1 {
		t.Fatalf("slow-but-alive worker was expelled: %v", coord.WorkerErrors())
	}
}

// deadlineConn records SetReadDeadline/SetWriteDeadline calls, remembering
// whether the last call on each side was a clear (zero time).
type deadlineConn struct {
	net.Conn
	mu                  sync.Mutex
	readSets, writeSets int
	lastRead, lastWrite time.Time
}

func (d *deadlineConn) SetReadDeadline(t time.Time) error {
	d.mu.Lock()
	if !t.IsZero() {
		d.readSets++
	}
	d.lastRead = t
	d.mu.Unlock()
	return d.Conn.SetReadDeadline(t)
}

func (d *deadlineConn) SetWriteDeadline(t time.Time) error {
	d.mu.Lock()
	if !t.IsZero() {
		d.writeSets++
	}
	d.lastWrite = t
	d.mu.Unlock()
	return d.Conn.SetWriteDeadline(t)
}

func (d *deadlineConn) state() (readSets, writeSets int, readArmed, writeArmed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readSets, d.writeSets, !d.lastRead.IsZero(), !d.lastWrite.IsZero()
}

// TestDeadlinesClearedAfterFrames is the direct satellite-1 regression: after
// a clean run, neither side of the connection may be left with an armed
// read or write deadline — every successful frame clears the deadline it set.
func TestDeadlinesClearedAfterFrames(t *testing.T) {
	query := distQueries[0].query
	opts := baseOpts()
	opts.Batches = 3
	local := runLocal(t, testDB(60, 2, 0), query, opts)

	cConn, sConn := net.Pipe()
	cd := &deadlineConn{Conn: cConn}
	sd := &deadlineConn{Conn: sConn}
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		ServeConn(sd, WorkerOptions{})
		sConn.Close()
	}()

	coord := NewCoordinator([]net.Conn{cd}, forceDist())
	if err := coord.Setup(testDB(60, 2, 0), streamedTables, query, opts); err != nil {
		t.Fatalf("setup: %v", err)
	}
	ropts := opts
	ropts.Exchange = coord
	eng := buildEngine(t, testDB(60, 2, 0), query, ropts)
	defer eng.Close()
	var got []summary
	for !eng.Done() {
		u, err := coord.Step(eng)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		got = append(got, summarize(t, u))
	}
	assertSameRun(t, "deadline_conn", got, local)

	// Before Close: the coordinator's conn must be fully disarmed.
	rs, ws, ra, wa := cd.state()
	if rs == 0 || ws == 0 {
		t.Fatal("deadline wrapper saw no deadline activity; test is vacuous")
	}
	if ra || wa {
		t.Fatalf("coordinator left deadlines armed after last frame (read=%v write=%v)", ra, wa)
	}
	coord.Close()
	<-workerDone
	// The worker side must end disarmed too (its last read was msgShutdown,
	// its last write the final batch-done — both cleared after success).
	if _, _, ra, wa := sd.state(); ra || wa {
		t.Fatalf("worker left deadlines armed after session end (read=%v write=%v)", ra, wa)
	}
}

// TestCloseConcurrentWithBatches hammers satellite 2: Close racing an
// in-flight batch (whose heartbeats call markDead on failure), a concurrent
// duplicate Close, and a concurrent Admit must be data-race-free and leave
// Close idempotent. Run with -race to get the actual guarantee.
func TestCloseConcurrentWithBatches(t *testing.T) {
	query := distQueries[0].query
	for i := 0; i < 6; i++ {
		conns, stop := StartLoopback(2, WorkerOptions{})
		cfg := forceDist()
		cfg.HeartbeatInterval = time.Nanosecond // ping before every batch
		cfg.SpanDeadline = 20 * time.Millisecond
		cfg.Retries = 1
		coord := NewCoordinator(conns, cfg)
		if err := coord.Setup(testDB(60, 2, 0), streamedTables, query, baseOpts()); err != nil {
			t.Fatalf("setup: %v", err)
		}
		opts := baseOpts()
		opts.Exchange = coord
		eng := buildEngine(t, testDB(60, 2, 0), query, opts)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for !eng.Done() {
				if _, err := coord.Step(eng); err != nil {
					return // a Close mid-batch surfaces as a transport error
				}
			}
		}()
		joinWorker(coord, WorkerOptions{}, nil) // Admit racing Close
		time.Sleep(time.Duration(i) * 2 * time.Millisecond)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); coord.Close() }()
		go func() { defer wg.Done(); coord.Close() }()
		wg.Wait()
		<-done
		if err := coord.Close(); err != nil {
			t.Fatalf("repeat close: %v", err)
		}
		eng.Close()
		stop()
	}
}

// TestCostWeightsAdaptAndWeightedSpans pins the span-sizing mechanics: a
// worker whose observed per-row cost is several times the coordinator's gets
// a proportionally smaller clamped weight, weighted spans shrink its share,
// and equal weights reduce weightedSpans exactly to assignSpans.
func TestCostWeightsAdaptAndWeightedSpans(t *testing.T) {
	c := NewCoordinator(nil, Config{})
	p := &peer{rank: 1, cost: cluster.NewCostModel(0)}
	for i := 0; i < 60; i++ {
		c.selfCost.Observe(cluster.CostJoinProbe, 1000, time.Millisecond, 1)
		p.cost.Observe(cluster.CostJoinProbe, 1000, 8*time.Millisecond, 1)
	}
	ws := c.computeWeights([]*peer{p})
	if ws[0] != weightScale {
		t.Fatalf("coordinator weight %d, want %d", ws[0], weightScale)
	}
	if ws[1] >= weightScale {
		t.Fatalf("8x-slower worker weight %d, want < %d", ws[1], weightScale)
	}
	if ws[1] < 1 || ws[1] > weightMax {
		t.Fatalf("weight %d outside [1, %d]", ws[1], weightMax)
	}
	spans := weightedSpans(1000, ws)
	if own, theirs := spans[0][1]-spans[0][0], spans[1][1]-spans[1][0]; theirs >= own {
		t.Fatalf("slow worker span %d not smaller than coordinator span %d", theirs, own)
	}
	// Coverage invariant at awkward sizes and weights.
	for _, n := range []int{0, 1, 7, 97, 1000} {
		for _, w := range [][]int{{16, 5}, {1, 64, 16}, {16, 16, 16}, {0, 0}} {
			spans := weightedSpans(n, w)
			prev := 0
			for _, sp := range spans {
				if sp[0] != prev || sp[1] < sp[0] {
					t.Fatalf("n=%d w=%v: bad span %v after %d", n, w, sp, prev)
				}
				prev = sp[1]
			}
			if prev != n {
				t.Fatalf("n=%d w=%v: spans cover [0,%d)", n, w, prev)
			}
		}
		// Equal weights must reduce exactly to assignSpans — the proof that
		// enabling span sizing changes nothing until costs actually diverge.
		if got, want := weightedSpans(n, []int{16, 16, 16}), assignSpans(n, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: equal weights %v != assignSpans %v", n, got, want)
		}
	}
}
