// Message payload codecs. Everything a worker needs to build its engine
// replica travels in one Setup frame: the engine options that affect results,
// the SQL text, and the full serialized tables. Since protocol v3 tables ship
// as columnar blocks (the internal/storage block codec: per-column banks,
// optional flate compression) with a per-table row-codec fallback for
// contents the block codec rejects; both round-trip values — float bit
// patterns included — exactly. Scheduling-only options (Workers,
// ParThreshold, the spill budget) are deliberately not shipped: they affect
// placement, never results, so each participant picks its own. Compression
// is transport-only the same way: it changes bytes on the wire, never the
// decoded rows, so digests and the bit-identity contract are computed over
// decoded contents and hold at any compression setting.
package dist

import (
	"fmt"
	"hash/fnv"
	"math"

	"iolap/internal/core"
	"iolap/internal/exec"
	"iolap/internal/rel"
	"iolap/internal/storage"
)

// Setup table serialization formats (1 byte per table).
const (
	tableFormatRows  = 0 // spill-row codec, one row per frame entry
	tableFormatBlock = 1 // columnar blocks (internal/storage block codec)
)

// wireCompressMin is the payload size below which span/merged blobs are
// never compressed: small payloads don't amortize the flate header, and the
// deflate call itself costs more than shipping the bytes.
const wireCompressMin = 1 << 10

// Blob flags: a blob is a length-framed byte payload that is optionally
// flate-compressed. Unlike spill chunks (which are self-describing by a
// magic byte), wire payloads are arbitrary bytes, so the flag is explicit.
const (
	blobRaw   = 0
	blobFlate = 1
)

// appendBlob appends payload b as a blob, compressing when enabled, the
// payload is large enough, and flate actually wins.
func appendBlob(dst []byte, b []byte, compress bool) []byte {
	if compress && len(b) >= wireCompressMin {
		if comp := storage.Deflate(nil, b); len(comp) < len(b) {
			dst = append(dst, blobFlate)
			dst = appendUvarint(dst, uint64(len(b)))
			dst = appendUvarint(dst, uint64(len(comp)))
			return append(dst, comp...)
		}
	}
	dst = append(dst, blobRaw)
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// blob reads a blob, always returning bytes the caller owns: raw payloads
// are copied out of the (reused) frame buffer, compressed ones decompress
// into a fresh buffer. Never aliases r.b.
func (r *reader) blob(what string) []byte {
	flag := r.byteVal(what)
	switch flag {
	case blobRaw:
		b := r.bytes(what)
		if r.err != nil {
			return nil
		}
		return append([]byte(nil), b...)
	case blobFlate:
		rawLen := r.uvarint(what)
		comp := r.bytes(what)
		if r.err != nil {
			return nil
		}
		if rawLen > maxFrame {
			r.fail(what)
			return nil
		}
		out, err := storage.Inflate(comp, int(rawLen))
		if err != nil {
			r.err = fmt.Errorf("dist: %s: %w", what, err)
			return nil
		}
		return out
	default:
		if r.err == nil {
			r.err = fmt.Errorf("dist: %s: bad blob flag %d", what, flag)
		}
		return nil
	}
}

// setupMsg is the decoded msgSetup payload.
type setupMsg struct {
	rank    int // this worker's participant rank (1-based; 0 is the coordinator)
	minRows int
	// catchUp is how many already-completed batches the worker must replay
	// locally (self-exchange mode) before entering the live set — zero for
	// workers present from the start. startSeq is the coordinator's exchange
	// sequence at admission, adopted after the replay; lastDigest is the
	// last completed batch's result digest the replay must reproduce.
	catchUp    int
	startSeq   uint64
	lastDigest uint64
	opts       core.Options
	sqlText    string
	tables     []tableData
}

// tableData is one serialized table: its catalog entry plus contents.
type tableData struct {
	name     string
	streamed bool
	rel      *rel.Relation
}

// encodeSetup serializes the replica blueprint for one worker. Tables are
// emitted in exec.DB.Tables() order (sorted), so every worker sees the same
// catalog construction order. partSlices, when a table name is present,
// substitutes that relation for the full table — partitioned shipping sends
// each initial worker only its hash partition of the build-side tables.
// Joiners always receive full tables: the catch-up replay probes every
// bucket locally.
func encodeSetup(rank, minRows int, opts core.Options, sqlText string, db *exec.DB, streamed map[string]bool, catchUp int, startSeq, lastDigest uint64, partSlices map[string]*rel.Relation) ([]byte, error) {
	p := appendUvarint(nil, protoVersion)
	p = appendUvarint(p, uint64(rank))
	p = appendUvarint(p, uint64(minRows))
	p = appendUvarint(p, uint64(catchUp))
	p = appendUvarint(p, startSeq)
	p = appendU64(p, lastDigest)

	p = appendVarint(p, int64(opts.Mode))
	p = appendVarint(p, int64(opts.Batches))
	p = appendVarint(p, int64(opts.Trials)) // negative means "bootstrap off"
	p = appendU64(p, math.Float64bits(opts.Slack))
	p = appendU64(p, opts.Seed)
	p = appendVarint(p, int64(opts.SnapshotKeep))
	p = appendVarint(p, int64(opts.MinRangeSupport))
	p = appendBool(p, opts.PreShuffle)
	p = appendBool(p, opts.NoViewletRewrites)
	p = appendVarint(p, int64(opts.BlockRows))
	p = appendString(p, opts.StratifyBy)
	p = appendVarint(p, int64(opts.Partitions))
	p = appendUvarint(p, uint64(len(opts.PartitionTables)))
	for _, t := range opts.PartitionTables {
		p = appendString(p, t)
	}
	p = appendBool(p, opts.WireCompression)

	p = appendString(p, sqlText)

	names := db.Tables()
	p = appendUvarint(p, uint64(len(names)))
	for _, name := range names {
		r, ok := db.Get(name)
		if !ok {
			return nil, fmt.Errorf("dist: table %q vanished during setup", name)
		}
		if slice, ok := partSlices[name]; ok {
			r = slice
		}
		p = appendString(p, name)
		p = appendBool(p, streamed[name])
		p = appendUvarint(p, uint64(len(r.Schema)))
		for _, c := range r.Schema {
			p = appendString(p, c.Table)
			p = appendString(p, c.Name)
			p = append(p, byte(c.Type))
		}
		var err error
		if p, err = appendTable(p, r, opts.WireCompression); err != nil {
			return nil, fmt.Errorf("dist: serialize table %q: %w", name, err)
		}
	}
	return p, nil
}

// appendTable serializes one relation's contents. Columnar blocks are the
// default; contents the block codec rejects (KRef lineage values — possible
// only for mid-pipeline state, never base catalogs, but the fallback keeps
// the codec total) ship row-at-a-time with the spill-row codec.
func appendTable(p []byte, r *rel.Relation, compress bool) ([]byte, error) {
	blocks, err := appendTableBlocks(nil, r, compress)
	if err == nil {
		p = append(p, tableFormatBlock)
		return append(p, blocks...), nil
	}
	p = append(p, tableFormatRows)
	p = appendUvarint(p, uint64(len(r.Tuples)))
	for _, t := range r.Tuples {
		if p, err = storage.AppendSpillRow(p, t.Vals, t.Mult, nil); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// appendTableBlocks encodes the relation as length-framed columnar blocks of
// at most storage.BlockMaxRows rows each.
func appendTableBlocks(p []byte, r *rel.Relation, compress bool) ([]byte, error) {
	nb := (len(r.Tuples) + storage.BlockMaxRows - 1) / storage.BlockMaxRows
	p = appendUvarint(p, uint64(nb))
	for lo := 0; lo < len(r.Tuples); lo += storage.BlockMaxRows {
		hi := lo + storage.BlockMaxRows
		if hi > len(r.Tuples) {
			hi = len(r.Tuples)
		}
		enc, err := storage.EncodeBlock(nil, r.Schema, r.Tuples[lo:hi], compress)
		if err != nil {
			return nil, err
		}
		p = appendUvarint(p, uint64(len(enc)))
		p = append(p, enc...)
	}
	return p, nil
}

func decodeSetup(p []byte) (*setupMsg, error) {
	r := &reader{b: p}
	if v := r.uvarint("version"); r.err == nil && v != protoVersion {
		return nil, fmt.Errorf("dist: protocol version mismatch: coordinator %d, worker %d", v, protoVersion)
	}
	s := &setupMsg{
		rank:    int(r.uvarint("rank")),
		minRows: int(r.uvarint("minRows")),
	}
	s.catchUp = int(r.uvarint("catchUp"))
	s.startSeq = r.uvarint("startSeq")
	s.lastDigest = r.u64("lastDigest")
	s.opts.Mode = core.Mode(r.varint("mode"))
	s.opts.Batches = int(r.varint("batches"))
	s.opts.Trials = int(r.varint("trials"))
	s.opts.Slack = math.Float64frombits(r.u64("slack"))
	s.opts.Seed = r.u64("seed")
	s.opts.SnapshotKeep = int(r.varint("snapshotKeep"))
	s.opts.MinRangeSupport = int(r.varint("minRangeSupport"))
	s.opts.PreShuffle = r.boolean("preShuffle")
	s.opts.NoViewletRewrites = r.boolean("noViewletRewrites")
	s.opts.BlockRows = int(r.varint("blockRows"))
	s.opts.StratifyBy = r.str("stratifyBy")
	s.opts.Partitions = int(r.varint("partitions"))
	npt := r.count("partition table count")
	for i := 0; i < npt && r.err == nil; i++ {
		s.opts.PartitionTables = append(s.opts.PartitionTables, r.str("partition table"))
	}
	s.opts.WireCompression = r.boolean("wireCompression")
	s.sqlText = r.str("sql")

	nt := r.count("table count")
	for i := 0; i < nt && r.err == nil; i++ {
		var t tableData
		t.name = r.str("table name")
		t.streamed = r.boolean("table streamed")
		nc := r.count("column count")
		schema := make(rel.Schema, 0, nc)
		for j := 0; j < nc && r.err == nil; j++ {
			col := rel.Column{Table: r.str("column table"), Name: r.str("column name")}
			col.Type = rel.Kind(r.byteVal("column kind"))
			schema = append(schema, col)
		}
		t.rel = decodeTable(r, t.name, schema)
		s.tables = append(s.tables, t)
	}
	if err := r.done("setup"); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeTable reads one table's contents in either serialization format.
// Counts are bounded by the remaining payload before any allocation is sized
// from them (every row and every block consumes at least one byte, so
// remaining-bytes is a sound upper bound for both).
func decodeTable(r *reader, name string, schema rel.Schema) *rel.Relation {
	rln := rel.NewRelation(schema)
	switch format := r.byteVal("table format"); format {
	case tableFormatBlock:
		nb := r.count("block count")
		for i := 0; i < nb && r.err == nil; i++ {
			enc := r.bytes("block")
			if r.err != nil {
				break
			}
			tuples, err := storage.DecodeBlock(enc, schema)
			if err != nil {
				r.err = fmt.Errorf("dist: table %q block %d: %w", name, i, err)
				break
			}
			rln.Tuples = append(rln.Tuples, tuples...)
		}
	case tableFormatRows:
		nr := r.count("row count")
		for j := 0; j < nr && r.err == nil; j++ {
			vals, mult, _, sz, err := storage.DecodeSpillRow(r.b)
			if err != nil {
				r.err = fmt.Errorf("dist: table %q row %d: %w", name, j, err)
				break
			}
			r.b = r.b[sz:]
			rln.Tuples = append(rln.Tuples, rel.Tuple{Vals: vals, Mult: mult})
		}
	default:
		if r.err == nil {
			r.err = fmt.Errorf("dist: table %q: unknown serialization format %d", name, format)
		}
	}
	return rln
}

// encodeStep freezes a batch's membership: the batch number plus the ranks of
// every worker the coordinator believes alive, plus the span weights for the
// batch (index 0 is the coordinator's weight, index i+1 belongs to the worker
// at liveRanks[i]). Workers derive their span from their position in this
// list via weightedSpans; the coordinator uses the identical list even for
// workers that die mid-batch (their spans are re-dispatched, the assignment
// never shifts).
func encodeStep(batch int, liveRanks []int, weights []int) []byte {
	p := appendUvarint(nil, uint64(batch))
	p = appendUvarint(p, uint64(len(liveRanks)))
	for _, rk := range liveRanks {
		p = appendUvarint(p, uint64(rk))
	}
	p = appendUvarint(p, uint64(len(weights)))
	for _, w := range weights {
		p = appendUvarint(p, uint64(w))
	}
	return p
}

func decodeStep(p []byte) (batch int, liveRanks []int, weights []int, err error) {
	r := &reader{b: p}
	batch = int(r.uvarint("batch"))
	n := r.count("live count")
	liveRanks = make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		liveRanks = append(liveRanks, int(r.uvarint("live rank")))
	}
	nw := r.count("weight count")
	weights = make([]int, 0, nw)
	for i := 0; i < nw && r.err == nil; i++ {
		weights = append(weights, int(r.uvarint("weight")))
	}
	if r.err == nil && len(weights) != len(liveRanks)+1 {
		r.err = fmt.Errorf("dist: step: %d weights for %d live ranks", len(weights), len(liveRanks))
	}
	return batch, liveRanks, weights, r.done("step")
}

// spanMsg is one computed span: seq orders the exchange calls within a batch
// so a frame from the wrong site can never be merged. nanos is the sender's
// measured compute time for the span, feeding the coordinator's per-worker
// cost model (span sizing); it never affects results.
type spanMsg struct {
	seq     uint64
	lo, hi  int
	nanos   uint64
	payload []byte
}

func encodeSpan(seq uint64, lo, hi int, nanos uint64, payload []byte, compress bool) []byte {
	p := appendUvarint(nil, seq)
	p = appendUvarint(p, uint64(lo))
	p = appendUvarint(p, uint64(hi))
	p = appendUvarint(p, nanos)
	return appendBlob(p, payload, compress)
}

func decodeSpan(p []byte) (spanMsg, error) {
	r := &reader{b: p}
	sm := spanMsg{
		seq:   r.uvarint("seq"),
		lo:    int(r.uvarint("lo")),
		hi:    int(r.uvarint("hi")),
		nanos: r.uvarint("nanos"),
	}
	sm.payload = r.blob("span payload")
	if err := r.done("span"); err != nil {
		return spanMsg{}, err
	}
	return sm, nil
}

func encodeCompute(seq uint64, lo, hi int) []byte {
	p := appendUvarint(nil, seq)
	p = appendUvarint(p, uint64(lo))
	return appendUvarint(p, uint64(hi))
}

func decodeCompute(p []byte) (seq uint64, lo, hi int, err error) {
	r := &reader{b: p}
	seq = r.uvarint("seq")
	lo = int(r.uvarint("lo"))
	hi = int(r.uvarint("hi"))
	return seq, lo, hi, r.done("compute")
}

// encodeMerged carries the complete merged site: every span's payload in
// ascending span order. All replicas — the coordinator included — apply these
// identical bytes, which is the bit-identity argument in one sentence.
func encodeMerged(seq uint64, spans [][2]int, payloads [][]byte, compress bool) []byte {
	p := appendUvarint(nil, seq)
	p = appendUvarint(p, uint64(len(spans)))
	for i, sp := range spans {
		p = appendUvarint(p, uint64(sp[0]))
		p = appendUvarint(p, uint64(sp[1]))
		p = appendBlob(p, payloads[i], compress)
	}
	return p
}

func decodeMerged(p []byte) (seq uint64, spans []spanMsg, err error) {
	r := &reader{b: p}
	seq = r.uvarint("seq")
	n := r.count("span count")
	spans = make([]spanMsg, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		sm := spanMsg{seq: seq}
		sm.lo = int(r.uvarint("merged lo"))
		sm.hi = int(r.uvarint("merged hi"))
		sm.payload = r.blob("merged payload")
		spans = append(spans, sm)
	}
	return seq, spans, r.done("merged")
}

func encodeBatchDone(batch int, digest uint64) []byte {
	p := appendUvarint(nil, uint64(batch))
	return appendU64(p, digest)
}

func decodeBatchDone(p []byte) (batch int, digest uint64, err error) {
	r := &reader{b: p}
	batch = int(r.uvarint("batch"))
	digest = r.u64("digest")
	return batch, digest, r.done("batchDone")
}

// resultDigest folds a batch result into 64 bits: FNV-1a over every result
// tuple (spill-row encoded, so float bit patterns are covered exactly) and
// every estimate's five float64 bit patterns. Workers send it after each
// batch; the coordinator compares against its own replica's digest and
// expels any diverging worker — a replica that drifted once would corrupt
// every later batch it participates in.
func resultDigest(u *core.Update) (uint64, error) {
	h := fnv.New64a()
	var buf []byte
	var err error
	for _, t := range u.Result.Tuples {
		buf, err = storage.AppendSpillRow(buf[:0], t.Vals, t.Mult, nil)
		if err != nil {
			return 0, err
		}
		h.Write(buf)
	}
	var f [8]byte
	for _, row := range u.Estimates {
		for _, e := range row {
			for _, v := range [5]float64{e.Value, e.Stdev, e.CILo, e.CIHi, e.RelStd} {
				putU64LE(f[:], math.Float64bits(v))
				h.Write(f[:])
			}
		}
	}
	return h.Sum64(), nil
}

func putU64LE(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}
