// Package dist is the distributed-execution transport for the iOLAP engine:
// a coordinator process drives remote worker processes over a length-prefixed
// frame protocol (stdlib net only), plugging into the engine through the
// core.Exchanger seam.
//
// The execution model is SPMD replica lockstep (see internal/core/exchange.go
// and DESIGN.md §9): every participant holds a full deterministic engine
// replica built from a Setup message carrying the serialized tables, the SQL
// text and the engine options. Replicas step mini-batches in lockstep; at
// each row-parallel operator site the participants compute disjoint
// contiguous spans, the coordinator collects them, and all replicas apply the
// identical merged byte payloads — so distributed output is bit-identical to
// the local Workers=1 run at any worker count, including after mid-batch
// worker failure (the coordinator re-dispatches a dead worker's spans to
// survivors, or computes them itself).
//
// Wire format: every frame is a 4-byte big-endian length, one type byte, and
// the payload (length counts the type byte plus payload). The coordinator
// dials; workers listen and serve one coordinator per connection.
package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Frame types. Direction is fixed per type: the coordinator never sends a
// worker→coordinator frame and vice versa, which is what lets the wire
// accounting classify traffic by direction alone (coordinator→worker =
// broadcast fan-out, worker→coordinator = shuffle collection).
const (
	msgSetup     byte = iota + 1 // c→w: version, rank, minRows, options, sql, tables
	msgSetupOK                   // w→c: replica built and ready
	msgStep                      // c→w: batch number + frozen live ranks
	msgSpan                      // w→c: seq, lo, hi, span payload
	msgCompute                   // c→w: seq, lo, hi — compute an extra (re-dispatched) span
	msgMerged                    // c→w: seq + every span of the site, in span order
	msgBatchDone                 // w→c: batch number + result digest
	msgPing                      // c→w: liveness probe
	msgPong                      // w→c: liveness reply
	msgShutdown                  // c→w: orderly teardown
	msgError                     // w→c: fatal worker-side error text
)

// protoVersion guards against mixed binaries: replicas must run identical
// code for bit-identical floats, so a version mismatch at Setup is fatal.
// Version 2 added elastic membership (catch-up fields in Setup, per-batch
// span weights in Step, compute nanos in Span) and partitioned shipping.
// Version 3 switched Setup table shipping to the columnar block codec (with
// a row-codec fallback flag per table), added the WireCompression option to
// the Setup payload, and framed span/merged payloads as compressible blobs.
const protoVersion = 3

// maxFrame bounds a single frame (1 GiB). Large sites split across spans stay
// far below it; the limit exists so a corrupt length prefix cannot drive a
// multi-gigabyte allocation.
const maxFrame = 1 << 30

// frameOverhead is the wire cost of a frame beyond its payload: the 4-byte
// length prefix plus the type byte.
const frameOverhead = 5

// writeFrame sends one frame as a single Write (header and payload in one
// buffer, so counting wrappers see whole frames).
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("dist: frame type %d too large: %d bytes", typ, len(payload))
	}
	buf := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)+1))
	buf[4] = typ
	copy(buf[frameOverhead:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, returning its type and a freshly allocated
// payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var scratch []byte
	return readFrameReuse(r, &scratch)
}

// readFrameReuse reads one frame into *buf (grown as needed and kept for the
// next call), returning its type and payload. The payload aliases *buf and
// is valid only until the next readFrameReuse with the same buffer — every
// decoder that retains payload bytes past the call (decodeSpan, decodeMerged)
// must copy, which the blob reader does by construction. Reusing the buffer
// removes the per-frame allocation from the protocol hot loop.
func readFrameReuse(r io.Reader, buf *[]byte) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("dist: bad frame length %d", n)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	*buf = b
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, nil, err
	}
	return b[0], b[1:], nil
}

// assignSpans splits [0, n) into p contiguous spans with boundaries i·n/p —
// the same arithmetic as cluster.Pool.MapChunks, and a pure function of
// (n, p), so every replica derives the identical assignment without
// communication. Participant 0 is the coordinator; participant i+1 is the
// worker at index i of the batch's frozen live list.
func assignSpans(n, p int) [][2]int {
	spans := make([][2]int, p)
	for i := 0; i < p; i++ {
		spans[i] = [2]int{i * n / p, (i + 1) * n / p}
	}
	return spans
}

// weightedSpans splits [0, n) into len(ws) contiguous spans whose sizes are
// proportional to the weights, with boundaries ⌊cum_i·n/tot⌋ — for equal
// weights the cumulative sums are equal rationals, so this reduces exactly
// to assignSpans. Like assignSpans it is a pure function of its inputs: the
// coordinator freezes the weights per batch (announced in msgStep) and every
// replica derives the identical assignment. Non-positive totals fall back to
// equal spans.
func weightedSpans(n int, ws []int) [][2]int {
	tot := 0
	for _, w := range ws {
		if w > 0 {
			tot += w
		}
	}
	if tot <= 0 {
		return assignSpans(n, len(ws))
	}
	spans := make([][2]int, len(ws))
	cum, prev := 0, 0
	for i, w := range ws {
		if w > 0 {
			cum += w
		}
		hi := int(int64(cum) * int64(n) / int64(tot))
		spans[i] = [2]int{prev, hi}
		prev = hi
	}
	return spans
}

// isTimeout reports whether err is a network read/write deadline expiry.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// ---------------------------------------------------------------------------
// Payload primitives: uvarint / varint / string / fixed 64-bit appends with a
// matching error-accumulating reader.

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// reader decodes payload primitives, latching the first error: callers chain
// reads and check err once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated or corrupt %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

// count reads a uvarint length and bounds it by the remaining payload, so a
// corrupt count cannot drive a huge allocation.
func (r *reader) count(what string) int {
	v := r.uvarint(what)
	if r.err == nil && v > uint64(len(r.b)) {
		r.fail(what)
		return 0
	}
	return int(v)
}

func (r *reader) str(what string) string {
	n := r.count(what)
	if r.err != nil {
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) bytes(what string) []byte {
	n := r.count(what)
	if r.err != nil {
		return nil
	}
	b := r.b[:n:n]
	r.b = r.b[n:]
	return b
}

func (r *reader) boolean(what string) bool {
	if r.err != nil {
		return false
	}
	if len(r.b) < 1 || r.b[0] > 1 {
		r.fail(what)
		return false
	}
	v := r.b[0] == 1
	r.b = r.b[1:]
	return v
}

func (r *reader) byteVal(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail(what)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("dist: %s: %d trailing bytes", what, len(r.b))
	}
	return nil
}
