// FaultConn: deterministic connection-fault injection, the transport twin of
// storage.FaultFS. Tests schedule "the Nth read/write/close on this conn
// fails", pointed at either end of a loopback or TCP pair, to prove the
// coordinator detects the death, re-dispatches the dead worker's spans, and
// still produces bit-identical results.
package dist

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error every injected fault returns.
var ErrInjected = errors.New("dist: injected connection fault")

// FaultConn wraps a conn and fails configured operations by ordinal (1-based,
// 0 = never). With KillOnFault set, a fault also closes the underlying conn,
// so the peer observes the death too — the closest stdlib-only approximation
// of a worker process dying mid-batch.
type FaultConn struct {
	net.Conn

	mu                    sync.Mutex
	reads, writes, closes int
	failReadAt            int
	failWriteAt           int
	failCloseAt           int
	killOnFault           bool
	writeDelay            time.Duration
	delayWriteFrom        int
	readDelay             time.Duration
	delayReadFrom         int
}

// NewFaultConn wraps inner with no faults scheduled.
func NewFaultConn(inner net.Conn) *FaultConn { return &FaultConn{Conn: inner} }

// FailReadAt makes the nth Read (1-based) fail. 0 disables.
func (c *FaultConn) FailReadAt(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failReadAt = n
}

// FailWriteAt makes the nth Write (1-based) fail. 0 disables.
func (c *FaultConn) FailWriteAt(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failWriteAt = n
}

// FailCloseAt makes the nth Close (1-based) fail (the underlying conn is
// still closed). 0 disables.
func (c *FaultConn) FailCloseAt(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failCloseAt = n
}

// DelayWritesFrom makes every Write from the nth on (1-based) sleep d before
// touching the underlying conn: a slow-but-alive peer, as opposed to a dead
// one. The peer's read deadline keeps running during the sleep, so this
// exercises the coordinator's deadline escalation without any fault firing.
func (c *FaultConn) DelayWritesFrom(n int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delayWriteFrom = n
	c.writeDelay = d
}

// DelayReadsFrom makes every Read from the nth on (1-based) sleep d before
// touching the underlying conn — frames arrive late but intact. An armed
// read deadline keeps running during the sleep, so the underlying read can
// time out; a retried read sleeps again.
func (c *FaultConn) DelayReadsFrom(n int, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delayReadFrom = n
	c.readDelay = d
}

// KillOnFault makes read/write faults also close the underlying conn.
func (c *FaultConn) KillOnFault(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killOnFault = on
}

// Ops returns how many reads, writes and closes have been attempted.
func (c *FaultConn) Ops() (reads, writes, closes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads, c.writes, c.closes
}

func (c *FaultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	c.reads++
	hit := c.failReadAt != 0 && c.reads == c.failReadAt
	kill := hit && c.killOnFault
	delay := time.Duration(0)
	if c.delayReadFrom != 0 && c.reads >= c.delayReadFrom {
		delay = c.readDelay
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if hit {
		if kill {
			c.Conn.Close()
		}
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

func (c *FaultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	hit := c.failWriteAt != 0 && c.writes == c.failWriteAt
	kill := hit && c.killOnFault
	delay := time.Duration(0)
	if c.delayWriteFrom != 0 && c.writes >= c.delayWriteFrom {
		delay = c.writeDelay
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if hit {
		if kill {
			c.Conn.Close()
		}
		return 0, ErrInjected
	}
	return c.Conn.Write(p)
}

func (c *FaultConn) Close() error {
	c.mu.Lock()
	c.closes++
	hit := c.failCloseAt != 0 && c.closes == c.failCloseAt
	c.mu.Unlock()
	err := c.Conn.Close()
	if hit {
		return ErrInjected
	}
	return err
}
